(* Redis under redis-benchmark (Sec. 2.3):

     dune exec examples/redis_benchmark.exe

   Simulates the paper's Redis v7.0.8 benchmark setup — single-threaded,
   a 100K-key keyspace of ~1000 B values, high request rate — and prints a
   redis-benchmark-style summary plus the allocator's view.  Redis is the
   workload the paper excludes from the multi-threaded optimizations
   (Figs. 10/14, Table 1) but includes for the lifetime-aware filler
   (Table 2: +1.05% throughput, -7.02% memory). *)

open Core
module Units = Substrate.Units
module Malloc = Tcmalloc.Malloc
module Driver = Workload.Driver

let () =
  let app = Workload.Apps.redis in
  Printf.printf "simulating redis-benchmark: single-threaded, ~100K-key keyspace, 1000B values\n%!";
  let job = Quick.run_app ~duration_ns:(30.0 *. Units.sec) app in
  let driver = job.Fleet_sim.Machine.driver in
  let requests = Driver.requests_completed driver in
  Printf.printf "\n====== simulated workload ======\n";
  Printf.printf "  %.0f requests completed in 30.00 seconds\n" requests;
  Printf.printf "  %.2f requests per second (allocator-visible)\n" (requests /. 30.0);
  Printf.printf "  %d allocations issued, %d objects still live\n"
    (Driver.allocations driver) (Driver.live_objects driver);
  let stats = Backend.heap_stats job.Fleet_sim.Machine.backend in
  Printf.printf "\n====== allocator view ======\n";
  Printf.printf "  keyspace + working set : %s live\n"
    (Units.bytes_to_string stats.Malloc.live_requested_bytes);
  Printf.printf "  simulated RSS          : %s (peak %s)\n"
    (Units.bytes_to_string stats.Malloc.resident_bytes)
    (Units.bytes_to_string (Driver.peak_rss_bytes driver));
  Printf.printf "  fragmentation ratio    : %.1f%%\n"
    (100.0 *. Malloc.fragmentation_ratio stats);
  Printf.printf "  hugepage coverage      : %.1f%%\n"
    (100.0 *. Backend.hugepage_coverage job.Fleet_sim.Machine.backend);
  (* Redis is single-threaded: exactly one per-CPU cache gets populated,
     which is why the paper omits it from the per-CPU cache study. *)
  Printf.printf "  populated per-CPU caches: %d (single-threaded)\n"
    (Tcmalloc.Per_cpu_cache.populated_caches
       (Malloc.per_cpu_caches (Backend.tc_exn job.Fleet_sim.Machine.backend)))
