(* Quickstart: drive the TCMalloc model directly through the public API.

     dune exec examples/quickstart.exe

   Creates one allocator on a chiplet platform, performs a few thousand
   allocations by hand (no workload driver), and prints where requests were
   satisfied and what the heap looks like. *)

open Core
module Units = Substrate.Units
module Malloc = Tcmalloc.Malloc
module Telemetry = Tcmalloc.Telemetry

let () =
  let clock = Substrate.Clock.create () in
  let topology = Hw.Topology.default in
  let malloc = Malloc.create ~config:Tcmalloc.Config.baseline ~topology ~clock () in

  (* A little producer/consumer: CPU 0 allocates, CPU 20 (another LLC
     domain) frees half of it, exercising the transfer cache. *)
  let live = ref [] in
  for round = 1 to 50 do
    Substrate.Clock.advance clock Units.ms;
    for i = 1 to 100 do
      let size = 16 + ((round * i) mod 1000) in
      let addr = Malloc.malloc malloc ~cpu:0 ~size in
      live := (addr, size) :: !live
    done;
    (* Free the older half, alternating CPUs. *)
    let rec free_half n = function
      | (addr, size) :: rest when n > 0 ->
        let cpu = if n mod 2 = 0 then 0 else 20 in
        Malloc.free malloc ~cpu addr ~size;
        free_half (n - 1) rest
      | rest -> rest
    in
    live := free_half 50 (List.rev !live) |> List.rev
  done;

  (* One large allocation goes straight to the pageheap. *)
  let big = Malloc.malloc malloc ~cpu:0 ~size:(5 * Units.mib) in
  Printf.printf "5 MiB object placed at %#x (pageheap-direct)\n" big;

  let tel = Malloc.telemetry malloc in
  Printf.printf "allocations: %d, frees: %d\n" (Telemetry.alloc_count tel)
    (Telemetry.free_count tel);
  List.iter
    (fun tier ->
      Printf.printf "  %-16s satisfied %d allocations\n" (Hw.Cost_model.tier_name tier)
        (Telemetry.hits tel tier))
    Hw.Cost_model.all_tiers;

  let stats = Malloc.heap_stats malloc in
  Printf.printf "live: %s requested (%s after size-class rounding)\n"
    (Units.bytes_to_string stats.Malloc.live_requested_bytes)
    (Units.bytes_to_string stats.Malloc.live_rounded_bytes);
  Printf.printf "cached by the allocator: front-end %s, transfer %s, CFL %s, pageheap %s\n"
    (Units.bytes_to_string stats.Malloc.front_end_cached_bytes)
    (Units.bytes_to_string stats.Malloc.transfer_cached_bytes)
    (Units.bytes_to_string stats.Malloc.cfl_fragmented_bytes)
    (Units.bytes_to_string stats.Malloc.pageheap_fragmented_bytes);
  Printf.printf "simulated RSS: %s, hugepage coverage: %.1f%%\n"
    (Units.bytes_to_string stats.Malloc.resident_bytes)
    (100.0 *. Malloc.hugepage_coverage malloc)
