(* Lifetime-aware hugepage filler A/B (Sec. 4.4, Table 2 / Fig. 17):

     dune exec examples/lifetime_filler.exe

   Runs Monarch — the paper's most TLB-sensitive workload (20.34% of cycles
   in dTLB walks) — against the baseline and the lifetime-aware filler that
   packs short-lived spans (object capacity < C = 16) on dedicated
   hugepages, and reports the coverage, dTLB and productivity deltas. *)

open Core
module Config = Tcmalloc.Config
module Ab = Fleet_sim.Ab_test

let () =
  let app = Workload.Apps.monarch in
  Printf.printf "A/B: %s, baseline vs lifetime-aware hugepage filler (C = %d)...\n%!"
    app.Workload.Profile.name Config.baseline.Config.lifetime_capacity_threshold;
  let o =
    Quick.ab app ~experiment:(Config.with_lifetime_aware_filler true Config.baseline)
  in
  Printf.printf "\nhugepage coverage : %5.1f%% -> %5.1f%%   (paper fleet: 54.4%% -> 56.2%%)\n"
    (100.0 *. o.Ab.coverage_before) (100.0 *. o.Ab.coverage_after);
  Printf.printf "dTLB walk cycles  : %5.2f%% -> %5.2f%%   (paper monarch: 20.34%% -> 15.55%%)\n"
    o.Ab.walk_before_pct o.Ab.walk_after_pct;
  Printf.printf "throughput change : %+.2f%%            (paper monarch: +3.30%%)\n"
    o.Ab.throughput_change_pct;
  Printf.printf "CPI change        : %+.2f%%            (paper monarch: -10.10%%)\n"
    o.Ab.cpi_change_pct;
  Printf.printf "memory change     : %+.2f%%            (paper monarch: -0.05%%)\n"
    o.Ab.memory_change_pct
