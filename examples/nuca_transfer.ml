(* NUCA-aware transfer caches across platform generations (Sec. 4.2):

     dune exec examples/nuca_transfer.exe

   The same producer/consumer workload is run on a monolithic-LLC platform
   and on a chiplet platform, with and without NUCA-aware transfer caches.
   On the monolithic part there is nothing to win; on the chiplet part the
   sharded caches keep object reuse domain-local, cutting the modeled LLC
   miss rate (the paper's Table 1). *)

open Core
module Config = Tcmalloc.Config
module Ab = Fleet_sim.Ab_test
module Topology = Hw.Topology

let run platform =
  Printf.printf "\n%s\n" (Format.asprintf "%a" Topology.pp platform);
  let o =
    Ab.run_app ~replicas:2 ~platform ~control:Config.baseline
      ~experiment:(Config.with_nuca_transfer_cache true Config.baseline)
      Workload.Apps.tensorflow
  in
  Printf.printf "  remote object reuse : %5.1f%% -> %5.1f%%\n"
    (100.0 *. o.Ab.remote_before) (100.0 *. o.Ab.remote_after);
  Printf.printf "  modeled LLC MPKI    : %.2f -> %.2f   (paper tensorflow: 1.88 -> 1.41)\n"
    o.Ab.mpki_before o.Ab.mpki_after;
  Printf.printf "  throughput change   : %+.2f%%         (paper tensorflow: +3.80%%)\n"
    o.Ab.throughput_change_pct

let () =
  Printf.printf "inter-domain transfer costs %.2fx the intra-domain latency (Fig. 11)\n"
    (Hw.Latency.inter_domain_ns /. Hw.Latency.intra_domain_ns);
  run Topology.generations.(2) (* monolithic LLC: one domain per socket *);
  run Topology.default (* chiplet: 8 LLC domains per socket *)
