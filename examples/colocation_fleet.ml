(* Fleet co-location study (Sec. 2.2/3):

     dune exec examples/colocation_fleet.exe

   Builds a small heterogeneous fleet — machines drawn from five platform
   generations, jobs drawn from a Zipf-popular binary population — runs it,
   and prints a GWP-style profile: malloc cycle share, fragmentation, and
   the per-binary concentration behind the paper's Fig. 3. *)

open Core
module Units = Substrate.Units
module Fleet = Fleet_sim.Fleet
module Gwp = Fleet_sim.Gwp
module Machine = Fleet_sim.Machine

let () =
  let fleet = Fleet.create ~seed:3 ~num_machines:10 ~num_binaries:40 () in
  Printf.printf "running 10 machines x 2 co-located jobs for 30 simulated seconds...\n%!";
  let summaries = Fleet.run fleet ~duration_ns:(30.0 *. Units.sec) ~epoch_ns:Units.ms in
  Printf.printf "collected %d machine summaries\n"
    (List.length summaries);
  let jobs = Fleet.jobs fleet in

  Printf.printf "\nfleet malloc cycle share: %.2f%% (paper: 4.3%%)\n"
    (100.0 *. Gwp.fleet_malloc_cycle_fraction jobs);
  let ext, internal = Gwp.fragmentation_ratio jobs in
  Printf.printf "fleet fragmentation: %.1f%% external + %.1f%% internal (paper: 18.8 + 3.4)\n"
    (100.0 *. ext) (100.0 *. internal);

  let usage = Gwp.binary_usage jobs in
  let total = List.fold_left (fun a u -> a +. u.Gwp.malloc_ns) 0.0 usage in
  Printf.printf "\nmalloc cycles by binary (Fig. 3 concentration):\n";
  let cumulative = ref 0.0 in
  List.iteri
    (fun i u ->
      cumulative := !cumulative +. u.Gwp.malloc_ns;
      if i < 8 then
        Printf.printf "  %-14s %5.1f%%  (cumulative %5.1f%%)\n" u.Gwp.binary
          (100.0 *. u.Gwp.malloc_ns /. total)
          (100.0 *. !cumulative /. total))
    usage;

  Printf.printf "\nper-machine RSS:\n";
  List.iteri
    (fun i machine ->
      Printf.printf "  machine %2d (%-16s): %s\n" i
        (Fleet_sim.Machine.platform machine).Hw.Topology.name
        (Units.bytes_to_string (Machine.total_rss machine)))
    (Fleet.machines fleet)
