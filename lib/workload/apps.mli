(** Application profiles (Sec. 2.3).

    Five production workloads with the fleet's highest malloc usage —
    Spanner (distributed SQL node), Monarch (in-memory time-series store),
    Bigtable (tablet server), F1 query (distributed query engine), Disk
    (distributed storage server) — plus the four dedicated-server
    benchmarks (Redis, a data-processing pipeline, an image-processing
    server, TensorFlow Serving), a SPEC CPU2006-style contrast profile, a
    fleet-aggregate profile, and the middle-tier search service whose
    thread dynamics appear in Fig. 9a.

    Allocation mixes are synthetic but shaped to each system's published
    behaviour (e.g. Monarch holds stream data in memory — long-lived small
    objects and the highest fragmentation; Redis is single-threaded with
    ~1000 B values; the data pipeline churns tiny short-lived strings).
    Productivity parameters come from the paper's "Before" columns (LLC
    MPKI from Table 1, dTLB walk % from Table 2).

    App lifetime tables use seconds-scale tails so that 10–60 s simulations
    reach quasi-steady state; the [fleet] profile keeps the day-scale tails
    of Fig. 8 for characterization runs. *)

val fleet : Profile.t
(** Runnable fleet-aggregate profile (tail capped at ~96 MiB, lifetimes
    compressed to the simulation horizon) for A/B experiments. *)

val fleet_characterization : Profile.t
(** Full-tail, day-scale-lifetime fleet profile for the Fig. 7/8
    characterization runs. *)

val spanner : Profile.t
val monarch : Profile.t
val bigtable : Profile.t
val f1_query : Profile.t
val disk : Profile.t
val redis : Profile.t
val data_pipeline : Profile.t
val image_processing : Profile.t
val tensorflow : Profile.t
val spec2006 : Profile.t
val search_middle_tier : Profile.t

val top5 : Profile.t list
(** The five production workloads, in the paper's order. *)

val benchmarks : Profile.t list
(** The four dedicated-server benchmarks, in the paper's order. *)

val all : Profile.t list
(** Every profile above. *)

val by_name : string -> Profile.t
(** @raise Not_found for unknown names. *)

val fleet_binary : rank:int -> Profile.t
(** Synthetic binary number [rank] of the fleet's long tail (Fig. 3): a
    perturbed variant of the fleet profile whose allocation intensity and
    footprint shrink with rank. *)
