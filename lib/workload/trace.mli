(** Allocation trace record and replay.

    A trace is a portable, deterministic recording of an allocation stream:
    alloc/free events with object identities, issuing CPUs and simulated
    timestamps.  Traces serve three purposes in an allocator study:

    - {b reproducibility}: a trace replays bit-identically against any
      allocator configuration, making A/B comparisons free of workload
      noise (the strongest form of the paper's paired experiments);
    - {b portability}: traces can be saved to a simple line-oriented text
      format, shared, and replayed elsewhere;
    - {b debugging}: a failing allocator state can be reduced to the trace
      that produced it.

    Traces can be synthesized from any {!Profile} (capturing exactly what a
    {!Driver} would have done) or constructed programmatically. *)

type event =
  | Alloc of { id : int; size : int; cpu : int }
      (** Allocate [size] bytes on [cpu]; later events refer to [id]. *)
  | Free of { id : int; cpu : int }  (** Free a previously allocated object. *)
  | Advance of { dt_ns : float }  (** Advance simulated time. *)

type t

val of_events : event list -> t
(** Build a trace, validating it: every [Free] must name a previously
    allocated, not-yet-freed id, and sizes/ids must be positive.
    @raise Invalid_argument on malformed event streams. *)

val events : t -> event list
val length : t -> int

val synthesize :
  ?seed:int ->
  ?epoch_ns:float ->
  profile:Profile.t ->
  duration_ns:float ->
  unit ->
  t
(** Generate the exact event stream a {!Driver} with the same seed would
    issue for [profile] over [duration_ns] (allocations, lifetime-driven
    frees, cross-thread frees, time advances). *)

type replay_result = {
  allocations : int;
  frees : int;
  peak_rss_bytes : int;
  final_stats : Wsc_tcmalloc.Malloc.heap_stats;
  malloc_ns : float;  (** Modeled allocator CPU time consumed. *)
}

val replay :
  ?config:Wsc_tcmalloc.Config.t ->
  ?topology:Wsc_hw.Topology.t ->
  t ->
  replay_result
(** Run the trace against a fresh allocator.  Replaying the same trace with
    two configs isolates the allocator's contribution exactly. *)

(** {2 Persistence}

    One event per line: [a <id> <size> <cpu>], [f <id> <cpu>],
    [t <dt_ns>].  Lines starting with [#] are comments. *)

val save : t -> string -> unit
(** Write to a file path. *)

val load : string -> t
(** Read from a file path.  @raise Invalid_argument on parse errors. *)
