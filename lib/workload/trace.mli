(** Allocation trace vocabulary: the event type, the streaming generator,
    and the text v1 line codec.

    A trace is a portable, deterministic recording of an allocation stream:
    alloc/free events with object identities, issuing CPUs and simulated
    timestamps.  This module holds the pieces shared by every trace
    pipeline; the actual storage and replay machinery is the streaming
    [wsc_trace] library ({!module:Wsc_trace.Writer} /
    {!module:Wsc_trace.Reader} for constant-memory binary persistence,
    {!module:Wsc_trace.Recorder} to capture live {!Driver} runs,
    {!module:Wsc_trace.Replay} for streaming replay).  The legacy
    list-materializing API ([of_events] / [events] / [replay] /
    [save] / [load]) that previously lived here has been removed — it held
    whole streams in memory and nothing used it outside its own tests. *)

type event =
  | Alloc of { id : int; size : int; cpu : int }
      (** Allocate [size] bytes on [cpu]; later events refer to [id]. *)
  | Free of { id : int; cpu : int }  (** Free a previously allocated object. *)
  | Advance of { dt_ns : float }  (** Advance simulated time. *)
  | Retire of { cpu : int; flush : bool }
      (** The process stopped running threads on [cpu]
          ({!Wsc_tcmalloc.Malloc.cpu_idle}); with [flush] the retired
          per-CPU cache drains to the transfer cache immediately.  Recorded
          driver runs include these so replay reproduces the allocator's
          cache state bit-exactly. *)

val synthesize_into :
  ?seed:int ->
  ?epoch_ns:float ->
  ?num_cpus:int ->
  profile:Profile.t ->
  duration_ns:float ->
  (event -> unit) ->
  unit
(** Generate the exact event stream a {!Driver} with the same seed would
    issue for [profile] over [duration_ns] (allocations, lifetime-driven
    frees, cross-thread frees, time advances), feeding each event to the
    callback as it is generated (e.g. [Wsc_trace.Writer.add]) — memory is
    proportional to the live-object population, not the stream length.
    The stream ends balanced: every live object is freed at the end.
    [num_cpus] is the CPU count threads are folded onto (default: the CPU
    count of {!Wsc_hw.Topology.default}).
    @raise Invalid_argument if [num_cpus <= 0]. *)

(** {2 Text v1 line codec}

    One event per line: [a <id> <size> <cpu>], [f <id> <cpu>],
    [t <dt_ns>], [r <cpu> <0|1>].  Lines starting with [#] are comments.
    The streaming binary v2 format ([Wsc_trace]) is ~5x smaller and
    integrity-checked; the text form remains for hand-written fixtures and
    [wscalloc trace convert] upgrades it to binary. *)

val line_of_event : event -> string
(** Render one event as its text v1 line (no trailing newline).
    Round-trips exactly through {!parse_line}. *)

val parse_line : fail:(unit -> event) -> string -> event
(** Parse one non-comment, non-blank line of the text v1 format; calls
    [fail] (which should raise) on a malformed line.  The text format is
    defined here; [Wsc_trace.Reader] reuses this to stream v1 files without
    materializing them. *)
