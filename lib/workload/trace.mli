(** Allocation trace record and replay (legacy in-memory facility).

    A trace is a portable, deterministic recording of an allocation stream:
    alloc/free events with object identities, issuing CPUs and simulated
    timestamps.  Traces serve three purposes in an allocator study:

    - {b reproducibility}: a trace replays bit-identically against any
      allocator configuration, making A/B comparisons free of workload
      noise (the strongest form of the paper's paired experiments);
    - {b portability}: traces can be saved, shared, and replayed elsewhere;
    - {b debugging}: a failing allocator state can be reduced to the trace
      that produced it.

    {b Deprecation note.}  The list-materializing API of this module
    ({!of_events}, {!events}, {!replay}, {!save}/{!load}) holds the whole
    event stream in memory and persists it in the line-per-event text v1
    format.  It remains exported as a compatibility shim for small traces
    and its own tests, but no other code in this repository calls it any
    more and it is scheduled for removal in a later change; new code
    should use the streaming [wsc_trace] library instead
    ({!module:Wsc_trace.Writer} / {!module:Wsc_trace.Reader} for
    constant-memory binary persistence, {!module:Wsc_trace.Recorder} to
    capture live {!Driver} runs, {!module:Wsc_trace.Replay} for streaming
    replay) together with {!synthesize_into} for generator-only streams.
    The {!event} type, {!parse_line}, and {!synthesize_into} are {e not}
    deprecated — they are the shared vocabulary of both pipelines.
    [Wsc_trace.Reader] reads the text v1 files written by {!save}, and
    [wscalloc trace convert] upgrades them to binary. *)

type event =
  | Alloc of { id : int; size : int; cpu : int }
      (** Allocate [size] bytes on [cpu]; later events refer to [id]. *)
  | Free of { id : int; cpu : int }  (** Free a previously allocated object. *)
  | Advance of { dt_ns : float }  (** Advance simulated time. *)
  | Retire of { cpu : int; flush : bool }
      (** The process stopped running threads on [cpu]
          ({!Wsc_tcmalloc.Malloc.cpu_idle}); with [flush] the retired
          per-CPU cache drains to the transfer cache immediately.  Recorded
          driver runs include these so replay reproduces the allocator's
          cache state bit-exactly. *)

type t

val of_events : event list -> t
(** Build a trace, validating it in a single pass: every [Free] must name a
    previously allocated, not-yet-freed id, and sizes/ids must be positive.
    @raise Invalid_argument on malformed event streams.
    @deprecated Prefer the streaming [Wsc_trace] pipeline for anything
    larger than a test fixture. *)

val events : t -> event list
val length : t -> int

val synthesize :
  ?seed:int ->
  ?epoch_ns:float ->
  ?num_cpus:int ->
  profile:Profile.t ->
  duration_ns:float ->
  unit ->
  t
(** Generate the exact event stream a {!Driver} with the same seed would
    issue for [profile] over [duration_ns] (allocations, lifetime-driven
    frees, cross-thread frees, time advances).  [num_cpus] is the CPU count
    threads are folded onto (default: the CPU count of
    {!Wsc_hw.Topology.default}, so recorded cpus agree with {!replay}'s
    [cpu mod num_cpus] remapping on the default topology instead of
    silently aliasing).
    @raise Invalid_argument if [num_cpus <= 0].
    @deprecated Materializes the stream as a list; use {!synthesize_into}. *)

val synthesize_into :
  ?seed:int ->
  ?epoch_ns:float ->
  ?num_cpus:int ->
  profile:Profile.t ->
  duration_ns:float ->
  (event -> unit) ->
  unit
(** Streaming form of {!synthesize}: feed each event to the callback as it
    is generated (e.g. [Wsc_trace.Writer.add]) instead of materializing a
    list, so generating a trace takes memory proportional to the live-object
    population, not the stream length.  Event-for-event identical to
    {!synthesize} for the same parameters.
    @raise Invalid_argument if [num_cpus <= 0]. *)

type replay_result = {
  allocations : int;
  frees : int;
  peak_rss_bytes : int;
  final_stats : Wsc_tcmalloc.Malloc.heap_stats;
  malloc_ns : float;  (** Modeled allocator CPU time consumed. *)
}

val replay :
  ?config:Wsc_tcmalloc.Config.t ->
  ?topology:Wsc_hw.Topology.t ->
  t ->
  replay_result
(** Run the trace against a fresh allocator.  Replaying the same trace with
    two configs isolates the allocator's contribution exactly. *)

(** {2 Persistence (text v1)}

    One event per line: [a <id> <size> <cpu>], [f <id> <cpu>],
    [t <dt_ns>], [r <cpu> <0|1>].  Lines starting with [#] are comments.
    The streaming binary v2 format ([Wsc_trace]) is ~5x smaller and
    integrity-checked; prefer it for anything but throwaway traces. *)

val save : t -> string -> unit
(** Write to a file path. *)

val load : string -> t
(** Read from a file path.  @raise Invalid_argument on parse errors. *)

val parse_line : fail:(unit -> event) -> string -> event
(** Parse one non-comment, non-blank line of the text v1 format; calls
    [fail] (which should raise) on a malformed line.  The text format is
    defined here; [Wsc_trace.Reader] reuses this to stream v1 files without
    materializing them. *)
