open Wsc_substrate
module Productivity = Wsc_hw.Productivity

let kib = Units.kib
let exp_ms mean_ms = Dist.exponential ~mean:(mean_ms *. Units.ms)
let exp_s mean_s = Dist.exponential ~mean:(mean_s *. Units.sec)

(* A three-band size-conditioned lifetime table with seconds-scale tails:
   [short_ms] governs the small-object churn, [pin_frac] the share of
   objects that pin memory for ~[pin_s]. *)
let lifetimes ~short_ms ~pin_s ~pin_frac =
  assert (pin_frac >= 0.0 && pin_frac <= 0.2);
  let short = exp_ms short_ms in
  let mid = exp_ms (short_ms *. 50.0) in
  let long = exp_ms (short_ms *. 2000.0) in
  let pin = exp_s pin_s in
  [
    ( kib,
      Dist.mixture
        [ (0.50, short); (0.28, mid); (0.22 -. pin_frac, long); (pin_frac, pin) ] );
    ( 256 * kib,
      (* Mid-size buffers churn with the request flow; spans of these
         classes have low object capacity and drain quickly (Fig. 16). *)
      Dist.mixture
        [
          (0.35, short);
          (0.35, mid);
          (0.30 -. (pin_frac /. 2.0), long);
          (pin_frac /. 2.0, pin);
        ] );
    ( max_int,
      (* Fig. 8: the larger the object, the longer it lives — big buffers
         are mostly pinned for the whole load phase. *)
      Dist.mixture
        [ (0.10, short); (0.30, mid); (0.40, long); (0.20, Dist.scaled 1.5 pin) ] );
  ]

(* Instructions per request are derived, not free: with ~9 ns of allocator
   work per alloc/free pair (per-CPU fast paths plus amortized refills), the
   request's total CPU is fixed by the app's malloc cycle share (Fig. 5a),
   and instructions follow from CPI at 3 GHz.  This keeps the productivity
   model self-consistent, so the GWP profiler's measured malloc cycle
   fractions land near the paper's. *)
let malloc_ns_per_pair = 9.0

let productivity ~base_cpi ~mpki ~locality_share ~walk_pct ~allocs_per_request
    ~malloc_frac =
  let walk = walk_pct /. 100.0 in
  let cpi = (base_cpi +. (mpki /. 1000.0 *. 60.0)) /. (1.0 -. walk) in
  let malloc_ns_per_request = allocs_per_request *. malloc_ns_per_pair in
  let cpu_ns_per_request = malloc_ns_per_request /. malloc_frac in
  let instr = cpu_ns_per_request *. 3.0 /. cpi in
  {
    Productivity.base_cpi;
    llc_mpki = mpki;
    llc_miss_penalty = 60.0;
    alloc_locality_share = locality_share;
    dtlb_walk_fraction = walk;
    instructions_per_request = instr;
    malloc_cycle_fraction = malloc_frac;
  }

(* Runnable fleet-aggregate profile: the Fig. 7 size mix with the extreme
   (>96 MiB) tail capped and lifetimes compressed to the simulated horizon,
   suitable for A/B experiments. *)
let fleet =
  {
    Profile.name = "fleet";
    size_dist = Dist.clamped ~lo:1.0 ~hi:1.6e7 Profile.fleet_size_dist;
    lifetime_table = lifetimes ~short_ms:0.5 ~pin_s:12.0 ~pin_frac:0.08;
    allocs_per_request = 12.0;
    requests_per_thread_per_sec = 100.0;
    cross_thread_free_fraction = 0.25;
    size_drift_amplitude = 0.4;
    size_drift_period_ns = 25.0 *. Units.sec;
    startup_burst_allocs = 0;
    threads = Threads.diurnal ~period_ns:(40.0 *. Units.sec) ~base:8.0 ~max_threads:16 ();
    productivity =
      productivity ~base_cpi:0.85 ~mpki:2.52 ~locality_share:0.06 ~walk_pct:9.16
        ~allocs_per_request:12.0 ~malloc_frac:0.043;
  }

(* Spanner: distributed SQL node with an in-memory cache of storage data
   that adapts to provisioned memory — block-sized mid/large objects with a
   pinned cache component. *)
let spanner =
  {
    Profile.name = "spanner";
    size_dist =
      Dist.mixture
        [
          (0.80, Dist.empirical [ (0.0, 16.0); (0.6, 96.0); (1.0, 1024.0) ]);
          (0.17, Dist.empirical [ (0.0, 1024.0); (0.7, 8192.0); (1.0, 65536.0) ]);
          (0.02, Dist.constant 524288.0 (* cache block *));
          (0.01, Dist.constant 2.25e6 (* compaction buffer, slightly over a hugepage *));
        ];
    lifetime_table = lifetimes ~short_ms:0.5 ~pin_s:10.0 ~pin_frac:0.08;
    allocs_per_request = 20.0;
    requests_per_thread_per_sec = 25.0;
    cross_thread_free_fraction = 0.30;
    size_drift_amplitude = 0.4;
    size_drift_period_ns = 25.0 *. Units.sec;
    startup_burst_allocs = 2_000;
    threads = Threads.diurnal ~period_ns:(40.0 *. Units.sec) ~base:10.0 ~max_threads:20 ();
    productivity =
      productivity ~base_cpi:0.90 ~mpki:3.80 ~locality_share:0.20 ~walk_pct:7.92
        ~allocs_per_request:20.0 ~malloc_frac:0.058;
  }

(* Monarch: planet-scale in-memory time-series store — huge numbers of
   small, long-lived stream points; the paper's highest malloc share and
   fragmentation. *)
let monarch =
  {
    Profile.name = "monarch";
    size_dist =
      Dist.mixture
        [
          (0.92, Dist.empirical [ (0.0, 16.0); (0.5, 48.0); (0.9, 192.0); (1.0, 1024.0) ]);
          (0.07, Dist.empirical [ (0.0, 1024.0); (1.0, 32768.0) ]);
          (0.01, Dist.empirical [ (0.0, 32768.0); (1.0, 2.0e6) ]);
        ];
    lifetime_table = lifetimes ~short_ms:0.3 ~pin_s:12.0 ~pin_frac:0.18;
    allocs_per_request = 30.0;
    requests_per_thread_per_sec = 60.0;
    cross_thread_free_fraction = 0.35;
    size_drift_amplitude = 0.4;
    size_drift_period_ns = 25.0 *. Units.sec;
    startup_burst_allocs = 1_000;
    threads = Threads.diurnal ~period_ns:(40.0 *. Units.sec) ~base:12.0 ~max_threads:24 ();
    productivity =
      productivity ~base_cpi:0.80 ~mpki:2.64 ~locality_share:0.13 ~walk_pct:20.34
        ~allocs_per_request:30.0 ~malloc_frac:0.101;
  }

(* Bigtable: tablet server — SSTable blocks and small index entries,
   moderate churn from compactions. *)
let bigtable =
  {
    Profile.name = "bigtable";
    size_dist =
      Dist.mixture
        [
          (0.75, Dist.empirical [ (0.0, 24.0); (0.7, 256.0); (1.0, 1024.0) ]);
          (0.22, Dist.empirical [ (0.0, 1024.0); (0.6, 16384.0); (1.0, 65536.0) ]);
          (0.02, Dist.constant 262144.0 (* SSTable block *));
          (0.01, Dist.constant 2.25e6 (* compaction buffer, slightly over a hugepage *));
        ];
    lifetime_table = lifetimes ~short_ms:0.8 ~pin_s:8.0 ~pin_frac:0.10;
    allocs_per_request = 16.0;
    requests_per_thread_per_sec = 35.0;
    cross_thread_free_fraction = 0.28;
    size_drift_amplitude = 0.4;
    size_drift_period_ns = 25.0 *. Units.sec;
    startup_burst_allocs = 1_500;
    threads = Threads.diurnal ~period_ns:(40.0 *. Units.sec) ~base:10.0 ~max_threads:20 ();
    productivity =
      productivity ~base_cpi:0.85 ~mpki:2.09 ~locality_share:0.08 ~walk_pct:17.25
        ~allocs_per_request:16.0 ~malloc_frac:0.065;
  }

(* F1 query: distributed query engine — RPC-dominated, bursty, short-lived
   row buffers. *)
let f1_query =
  {
    Profile.name = "f1-query";
    size_dist =
      Dist.mixture
        [
          (0.85, Dist.empirical [ (0.0, 16.0); (0.6, 128.0); (1.0, 2048.0) ]);
          (0.145, Dist.empirical [ (0.0, 2048.0); (1.0, 65536.0) ]);
          (0.005, Dist.constant 1.048576e6 (* row batch buffer *));
        ];
    lifetime_table = lifetimes ~short_ms:0.4 ~pin_s:10.0 ~pin_frac:0.08;
    allocs_per_request = 40.0;
    requests_per_thread_per_sec = 40.0;
    cross_thread_free_fraction = 0.40;
    size_drift_amplitude = 0.4;
    size_drift_period_ns = 25.0 *. Units.sec;
    startup_burst_allocs = 500;
    threads =
      Threads.diurnal ~period_ns:(40.0 *. Units.sec) ~base:8.0 ~max_threads:32
        ~noise:0.25 ~spike_probability:0.03 ();
    productivity =
      productivity ~base_cpi:0.90 ~mpki:2.28 ~locality_share:0.074 ~walk_pct:9.62
        ~allocs_per_request:40.0 ~malloc_frac:0.049;
  }

(* Disk: low-level distributed storage — big short-lived I/O buffers, the
   lowest malloc cycle share of the top five. *)
let disk =
  {
    Profile.name = "disk";
    size_dist =
      Dist.mixture
        [
          (0.82, Dist.empirical [ (0.0, 32.0); (1.0, 512.0) ]);
          (0.12, Dist.constant 65536.0 (* standard block buffer *));
          (0.05, Dist.constant 1.048576e6 (* standard 1 MiB I/O buffer *));
          (0.01, Dist.constant 4.194304e6 (* readahead buffer *));
        ];
    lifetime_table = lifetimes ~short_ms:1.0 ~pin_s:12.0 ~pin_frac:0.05;
    allocs_per_request = 6.0;
    requests_per_thread_per_sec = 80.0;
    cross_thread_free_fraction = 0.45;
    size_drift_amplitude = 0.4;
    size_drift_period_ns = 25.0 *. Units.sec;
    startup_burst_allocs = 200;
    threads =
      Threads.diurnal ~period_ns:(40.0 *. Units.sec) ~amplitude:0.15 ~base:8.0
        ~max_threads:16 ();
    productivity =
      productivity ~base_cpi:0.75 ~mpki:4.60 ~locality_share:0.17 ~walk_pct:8.42
        ~allocs_per_request:6.0 ~malloc_frac:0.036;
  }

(* Redis v7.0.8 under redis-benchmark: single-threaded, 500 connections,
   100K ops of 1000 B values. *)
let redis =
  {
    Profile.name = "redis";
    size_dist =
      Dist.mixture
        [
          (0.55, Dist.empirical [ (0.0, 16.0); (1.0, 128.0) ]);
          (0.45, Dist.constant 1000.0);
        ];
    lifetime_table = lifetimes ~short_ms:0.2 ~pin_s:8.0 ~pin_frac:0.12;
    allocs_per_request = 3.0;
    requests_per_thread_per_sec = 3000.0;
    cross_thread_free_fraction = 0.0;
    size_drift_amplitude = 0.4;
    size_drift_period_ns = 25.0 *. Units.sec;
    startup_burst_allocs = 300_000 (* the keyspace; 3 objects per key *);
    threads = Threads.steady ~threads:1;
    productivity =
      productivity ~base_cpi:0.70 ~mpki:1.20 ~locality_share:0.0 ~walk_pct:10.34
        ~allocs_per_request:3.0 ~malloc_frac:0.030;
  }

(* Data-processing pipeline: word count over 1 GB / 100M words in one
   process — torrents of tiny, short-lived strings. *)
let data_pipeline =
  {
    Profile.name = "data-pipeline";
    size_dist =
      Dist.mixture
        [
          (0.94, Dist.empirical [ (0.0, 8.0); (0.7, 32.0); (1.0, 256.0) ]);
          (0.055, Dist.empirical [ (0.0, 256.0); (1.0, 8192.0) ]);
          (0.005, Dist.empirical [ (0.0, 8192.0); (1.0, 1.0e6) ]);
        ];
    lifetime_table = lifetimes ~short_ms:0.1 ~pin_s:8.0 ~pin_frac:0.04;
    allocs_per_request = 50.0;
    requests_per_thread_per_sec = 60.0;
    cross_thread_free_fraction = 0.50;
    size_drift_amplitude = 0.4;
    size_drift_period_ns = 25.0 *. Units.sec;
    startup_burst_allocs = 100_000 (* the word-count dictionary *);
    threads = Threads.steady ~threads:8;
    productivity =
      productivity ~base_cpi:0.80 ~mpki:1.82 ~locality_share:0.31 ~walk_pct:5.36
        ~allocs_per_request:50.0 ~malloc_frac:0.070;
  }

(* Image-processing server: concurrent image filter/transform requests —
   MiB-scale short-lived frame buffers plus request metadata. *)
let image_processing =
  {
    Profile.name = "image-processing";
    size_dist =
      Dist.mixture
        [
          (0.78, Dist.empirical [ (0.0, 32.0); (1.0, 1024.0) ]);
          (0.16, Dist.empirical [ (0.0, 16384.0); (1.0, 262144.0) ]);
          (0.04, Dist.constant 2.359296e6 (* 1024x768 RGB frame *));
          (0.02, Dist.constant 6.291456e6 (* 2MP RGB frame *));
        ];
    lifetime_table = lifetimes ~short_ms:2.0 ~pin_s:5.0 ~pin_frac:0.02;
    allocs_per_request = 12.0;
    requests_per_thread_per_sec = 40.0;
    cross_thread_free_fraction = 0.35;
    size_drift_amplitude = 0.4;
    size_drift_period_ns = 25.0 *. Units.sec;
    startup_burst_allocs = 100;
    threads = Threads.diurnal ~period_ns:(40.0 *. Units.sec) ~base:8.0 ~max_threads:16 ();
    productivity =
      productivity ~base_cpi:0.90 ~mpki:0.81 ~locality_share:0.46 ~walk_pct:1.46
        ~allocs_per_request:12.0 ~malloc_frac:0.050;
  }

(* TensorFlow Serving running InceptionV3 — Eigen's tensor buffers: large
   power-of-two-ish blocks with complex reuse. *)
let tensorflow =
  {
    Profile.name = "tensorflow";
    size_dist =
      Dist.mixture
        [
          (0.68, Dist.empirical [ (0.0, 32.0); (1.0, 2048.0) ]);
          (0.24, Dist.empirical [ (0.0, 4096.0); (1.0, 131072.0) ]);
          (0.05, Dist.constant 1.048576e6 (* 35x35x256 activations *));
          (0.025, Dist.constant 4.194304e6 (* 17x17x1024 activations *));
          (0.005, Dist.constant 1.2582912e7 (* batch input tensor *));
        ];
    lifetime_table = lifetimes ~short_ms:1.5 ~pin_s:8.0 ~pin_frac:0.06;
    allocs_per_request = 25.0;
    requests_per_thread_per_sec = 20.0;
    cross_thread_free_fraction = 0.40;
    size_drift_amplitude = 0.4;
    size_drift_period_ns = 25.0 *. Units.sec;
    startup_burst_allocs = 2_000;
    threads = Threads.steady ~threads:8;
    productivity =
      productivity ~base_cpi:0.95 ~mpki:1.88 ~locality_share:0.32 ~walk_pct:6.79
        ~allocs_per_request:25.0 ~malloc_frac:0.060;
  }

(* SPEC CPU2006 contrast: allocate the working set at startup, then almost
   no steady-state churn, with bimodal lifetimes (Sec. 3: unsuitable for
   allocator studies). *)
let spec2006 =
  {
    Profile.name = "spec2006";
    size_dist =
      Dist.mixture
        [
          (0.85, Dist.empirical [ (0.0, 16.0); (1.0, 4096.0) ]);
          (0.15, Dist.empirical [ (0.0, 8192.0); (1.0, 262144.0) ]);
        ];
    lifetime_table =
      [
        ( max_int,
          Dist.mixture [ (0.55, exp_ms 0.2); (0.45, Dist.constant 1e17) ] );
      ];
    allocs_per_request = 1.0;
    requests_per_thread_per_sec = 50.0 (* near-zero churn relative to SPEC compute *);
    cross_thread_free_fraction = 0.0;
    size_drift_amplitude = 0.0;
    size_drift_period_ns = 30.0 *. Units.sec;
    startup_burst_allocs = 20_000;
    threads = Threads.steady ~threads:1;
    productivity =
      productivity ~base_cpi:0.9 ~mpki:3.0 ~locality_share:0.0 ~walk_pct:4.0
        ~allocs_per_request:1.0 ~malloc_frac:0.004;
  }

(* The middle-tier search service whose worker-thread dynamics the paper
   plots in Fig. 9a. *)
let search_middle_tier =
  {
    fleet with
    Profile.name = "search-middle-tier";
    threads =
      Threads.diurnal ~period_ns:(40.0 *. Units.sec) ~base:14.0 ~max_threads:48
        ~amplitude:0.65 ~noise:0.3 ~spike_probability:0.03 ();
    cross_thread_free_fraction = 0.3;
  }

(* The productivity helper assumed 9 ns of allocator work per alloc/free
   pair, which is right for size-class traffic but not for large objects
   that ride the pageheap (137 ns each way) and occasionally mmap.  Estimate
   each profile's true expected pair cost by sampling its size mix, and
   rescale instructions-per-request so the modeled malloc cycle share still
   matches the target. *)
let expected_pair_cost_ns profile =
  let rng = Rng.create 0x5eed in
  let samples = 20_000 in
  let total = ref 0.0 in
  let large_pair_cost = 2500.0 (* 2x pageheap + amortized mmap *) in
  for _ = 1 to samples do
    let size = Profile.sample_size profile rng in
    total :=
      !total
      +. (if size <= Wsc_tcmalloc.Size_class.max_size then malloc_ns_per_pair
          else large_pair_cost)
  done;
  !total /. float_of_int samples

let calibrate profile =
  let p = profile.Profile.productivity in
  let scale = expected_pair_cost_ns profile /. malloc_ns_per_pair in
  {
    profile with
    Profile.productivity =
      {
        p with
        Productivity.instructions_per_request =
          p.Productivity.instructions_per_request *. scale;
      };
  }

let fleet = calibrate fleet
let spanner = calibrate spanner
let monarch = calibrate monarch
let bigtable = calibrate bigtable
let f1_query = calibrate f1_query
let disk = calibrate disk
let redis = calibrate redis
let data_pipeline = calibrate data_pipeline
let image_processing = calibrate image_processing
let tensorflow = calibrate tensorflow
let spec2006 = calibrate spec2006
let search_middle_tier = calibrate search_middle_tier

(* Full-tail fleet profile for the Fig. 7/8 characterization: keeps the
   multi-GiB object tail and the day-scale lifetime diversity (objects that
   outlive the simulation simply stay live, as they would over a profiling
   window much shorter than their lifetime). *)
let fleet_characterization =
  calibrate
    {
      fleet with
      Profile.name = "fleet-characterization";
      size_dist = Profile.fleet_size_dist;
      lifetime_table = Profile.fleet_lifetime_table;
    }

let top5 = [ spanner; monarch; bigtable; f1_query; disk ]
let benchmarks = [ redis; data_pipeline; image_processing; tensorflow ]

let all =
  fleet :: search_middle_tier :: spec2006 :: (top5 @ benchmarks)

let by_name name =
  match List.find_opt (fun p -> p.Profile.name = name) all with
  | Some p -> p
  | None -> raise Not_found

(* The fleet's long tail (Fig. 3): popularity and footprint shrink with
   rank; a mild per-rank perturbation keeps the binaries distinguishable. *)
let fleet_binary ~rank =
  if rank < 0 then invalid_arg "Apps.fleet_binary: negative rank";
  let scale = 1.0 /. (1.0 +. (0.05 *. float_of_int rank)) in
  {
    fleet with
    Profile.name = Printf.sprintf "binary-%03d" rank;
    requests_per_thread_per_sec = fleet.Profile.requests_per_thread_per_sec *. scale;
    allocs_per_request =
      fleet.Profile.allocs_per_request *. (0.8 +. (0.4 *. Float.rem (float_of_int rank) 3.0 /. 3.0));
    threads =
      Threads.diurnal
        ~base:(Float.max 2.0 (16.0 *. scale))
        ~max_threads:(max 4 (int_of_float (48.0 *. scale)))
        ();
  }
