(** The workload driver: turns a {!Profile} into a live allocation stream
    against one allocator instance.

    The driver is a discrete-event simulation: every allocated object draws
    a lifetime and is entered into a pending-free heap; each [step] first
    retires the frees that came due, then issues the epoch's new allocations
    from the currently-active worker threads (whose count follows the
    profile's {!Threads} model, releasing vCPUs when the pool shrinks).
    Cross-thread frees happen with the profile's configured probability and
    are what drives traffic through the transfer cache.

    Besides driving the allocator, the driver records the observability
    streams the paper's figures need: thread-count time series (Fig. 9a),
    RSS and fragmentation averages (Figs. 10/14, Tables 1/2), and sampled
    (size, lifetime) pairs fed into the allocator's telemetry (Fig. 8 —
    drawn lifetimes are recorded so that lifetimes longer than the simulated
    horizon are represented; the in-allocator sampler only sees frees that
    actually happen). *)

type t

type probe = {
  on_alloc : addr:int -> size:int -> cpu:int -> unit;
  on_free : addr:int -> cpu:int -> unit;
  on_advance : dt_ns:float -> unit;
  on_retire : cpu:int -> flush:bool -> unit;
}
(** Passive observation hooks fired for every allocator-visible action the
    driver takes, in exact issue order: [on_advance] at the top of each
    {!step} (after the caller advanced the shared clock), then one callback
    per vCPU retirement, free, and allocation.  A probe must not touch the
    allocator; it exists so a trace recorder ({!Wsc_trace.Recorder}) can
    capture a {e real} driver run — threads, churn, faults and all — as a
    replayable event stream. *)

val create :
  ?seed:int ->
  ?lifetime_sample_every:int ->
  ?series_cap:int ->
  ?faults:Wsc_os.Fault.t ->
  ?probe:probe ->
  ?audit_interval_ns:float ->
  profile:Profile.t ->
  sched:Wsc_os.Sched.t ->
  backend:Wsc_backend.Backend.t ->
  clock:Wsc_substrate.Clock.t ->
  unit ->
  t
(** The startup burst (if the profile has one) is issued on the first
    step.

    [series_cap] bounds the {!thread_series}/{!rseq_series} accumulators:
    once a series reaches the cap, every other sample is dropped in place
    and the recording stride doubles, so arbitrarily long runs keep at most
    [series_cap] evenly spaced samples per series instead of growing
    without bound.  [0] (the default) keeps every sample.  Only the
    recording cadence changes; the simulation is unaffected.

    [faults] makes the driver consume the stream's CPU-churn bursts: when
    one fires, every active vCPU retires with its cache flushed to the
    transfer cache ({!Wsc_backend.Backend.cpu_idle} with [flush:true]) and
    the next thread update re-acquires CPUs.  Installing the
    stream's mmap/pressure hooks into the allocator's VM is the caller's
    job ({!Wsc_os.Fault.install}).

    [audit_interval_ns] runs the backend's self-audit ({!Wsc_backend.Backend.audit})
    every interval of simulated time; reports accumulate for {!audit_reports}. *)

val step : t -> dt:float -> unit
(** Process one epoch ending at the clock's current time: the caller (or
    {!run}) must have advanced the shared clock by [dt] beforehand. *)

val run : t -> duration_ns:float -> epoch_ns:float -> unit
(** Convenience for single-process experiments: repeatedly advance the
    driver's clock by [epoch_ns] and step, for [duration_ns]. *)

(** {2 Results} *)

val requests_completed : t -> float
val allocations : t -> int
val live_objects : t -> int
(** Objects allocated and not yet freed (pending-free heap size). *)

val thread_series : t -> (float * int) list
(** [(time, active_threads)] samples, ascending. *)

val rseq_series : t -> (float * int * int) list
(** [(time, cumulative rseq restarts, cumulative stranded-reclaim bytes)]
    samples taken alongside {!thread_series} — the restart-overhead and
    stranded-memory trajectories under churn.  All-zero counters without a
    live injector. *)

val series_samples : t -> int
(** Samples currently kept per series (both series share the cadence). *)

val series_stride : t -> int
(** Current recording stride: 1 until [series_cap] is first hit, then
    doubling at each subsequent halving. *)

val avg_rss_bytes : t -> float
val peak_rss_bytes : t -> int
val avg_fragmentation_ratio : t -> float

val avg_hugepage_coverage : t -> float
(** Time-averaged hugepage coverage (sampled every 0.5 s of simulated
    time); falls back to the instantaneous value before the first sample. *)

val profile : t -> Profile.t
val backend : t -> Wsc_backend.Backend.t
val faults : t -> Wsc_os.Fault.t option

val audit_reports : t -> Wsc_tcmalloc.Audit.report list
(** Every audit taken so far, oldest first (empty without
    [audit_interval_ns]). *)

val audit_violations : t -> int
(** Total violations across all audits (0 = heap consistent throughout). *)

val reset_measurements : t -> unit
(** Zero the request counter and the RSS/fragmentation accumulators
    (call after a warmup phase so steady-state metrics exclude the
    transient heap build-up).  The allocator state itself is untouched. *)

val measured_malloc_ns : t -> float
(** Allocator CPU time accumulated since the last {!reset_measurements}
    (or since creation). *)

val drain : t -> unit
(** Free every pending object immediately (end-of-run cleanup for leak
    checks in tests). *)

(** {2 Warm-state checkpointing} *)

val checkpoint : t -> string
(** Serialize the driver and everything it drives — the allocator (via
    {!Wsc_backend.Backend.snapshot}'s representation), the shared clock
    and its tickers, the pending-free event heap, the thread pool and
    vCPU occupancy, fault stream, audit history, and the driver's RNG
    cursor — into one [Marshal]-with-closures blob.  Resuming
    ({!resume}) and continuing is bit-identical to never having
    checkpointed.  A {!probe} is {e not} captured (it may hold an output
    channel); the restored driver runs without one.  Same-binary only;
    {!Wsc_persist} adds the durable, checked file container. *)

val resume : string -> t
(** Inverse of {!checkpoint}.  The restored driver owns private copies of
    the clock/allocator it shared at checkpoint time; resume co-located
    jobs at the machine level ({!Wsc_fleet.Machine}) to keep sharing. *)

val with_probe_detached : t -> (unit -> 'a) -> 'a
(** Run [f] with the probe unhooked (restored afterwards, also on raise).
    Used by machine- and fleet-level checkpointing. *)
