open Wsc_substrate
module Backend = Wsc_backend.Backend
module Telemetry = Wsc_tcmalloc.Telemetry
module Audit = Wsc_tcmalloc.Audit
module Sched = Wsc_os.Sched
module Fault = Wsc_os.Fault

type probe = {
  on_alloc : addr:int -> size:int -> cpu:int -> unit;
  on_free : addr:int -> cpu:int -> unit;
  on_advance : dt_ns:float -> unit;
  on_retire : cpu:int -> flush:bool -> unit;
}

type t = {
  profile : Profile.t;
  sched : Sched.t;
  backend : Backend.t;
  clock : Clock.t;
  rng : Rng.t;
  (* Pending frees as (free_time, addr, size, thread) in an int-payload
     calendar queue: no per-event record, no per-drain list, O(1) amortized
     push/pop (Event_heap remains the differential-testing reference). *)
  pending_frees : Calendar.t;
  mutable active_threads : int;
  (* CPUs the pool currently occupies, ascending in [active_cpus.(0 ..
     n_active_cpus-1)]; [cpu_mark] is the dedup/membership scratch that
     keeps recomputation allocation-free. *)
  mutable active_cpus : int array;
  mutable n_active_cpus : int;
  mutable cpu_mark : bool array;
  (* Thread slots hold OS thread identities; a slot vacated by a pool
     shrink gets a *fresh* thread id when the pool regrows (thread pools
     kill and respawn workers), which is what strands per-thread caches. *)
  mutable thread_ids : int array;
  mutable next_thread_id : int;
  mutable requests : float;
  mutable allocs : int;
  mutable started : bool;
  lifetime_sample_every : int;
  mutable lifetime_countdown : int;
  (* Telemetry time series in parallel unboxed arrays (one slot per kept
     control-plane tick).  With [series_cap > 0], hitting the cap halves
     the series in place and doubles [series_stride], so memory stays
     bounded on arbitrarily long runs while the samples remain evenly
     spaced; the simulation itself is unaffected. *)
  series_cap : int;
  mutable series_stride : int;
  mutable series_tick : int;
  thread_times : Fvec.t;
  thread_values : Int_stack.t;
  rseq_restart_values : Int_stack.t;
  rseq_stranded_values : Int_stack.t;
  mutable next_thread_update : float;
  mutable rss_stats : Stats.Running.t;
  mutable frag_stats : Stats.Running.t;
  mutable coverage_stats : Stats.Running.t;
  mutable next_coverage_sample : float;
  mutable peak_rss : int;
  mutable malloc_ns_at_reset : float;
  faults : Fault.t option;
  (* Mutable so checkpointing can detach it: probes may capture
     unmarshalable resources (a trace writer's output channel). *)
  mutable probe : probe option;
  audit_interval_ns : float option;
  mutable next_audit : float;
  audit_reports : Audit.report Vec.t;
  (* Preallocated pending-free drain callback (captures [t] once). *)
  mutable on_free : a:int -> b:int -> c:int -> unit;
}

let record_lifetime_sample t ~size ~lifetime =
  t.lifetime_countdown <- t.lifetime_countdown - 1;
  (* Large objects are rare but carry the interesting lifetime tail
     (Fig. 8's >1 GiB rows); record all of them, and every k-th small one. *)
  if t.lifetime_countdown <= 0 || size >= 1_048_576 then begin
    if t.lifetime_countdown <= 0 then t.lifetime_countdown <- t.lifetime_sample_every;
    Telemetry.record_lifetime (Backend.telemetry t.backend) ~size ~lifetime_ns:lifetime
  end

let execute_free t ~addr ~size ~thread =
  let cross = Rng.bernoulli t.rng t.profile.Profile.cross_thread_free_fraction in
  let thread = if cross then Rng.int t.rng t.active_threads else thread mod t.active_threads in
  let cpu = Sched.cpu_of_thread t.sched ~thread in
  Backend.free_th t.backend ~thread:t.thread_ids.(thread) ~cpu addr ~size;
  match t.probe with Some p -> p.on_free ~addr ~cpu | None -> ()

let create ?(seed = 1) ?(lifetime_sample_every = 64) ?(series_cap = 0) ?faults ?probe
    ?audit_interval_ns ~profile ~sched ~backend ~clock () =
  let num_cpus = Wsc_hw.Topology.num_cpus (Backend.topology backend) in
  let t =
    {
      profile;
      sched;
      backend;
      clock;
      rng = Rng.create seed;
      pending_frees = Calendar.create ();
      active_threads = 1;
      active_cpus = Array.make (max 1 num_cpus) 0;
      n_active_cpus = 0;
      cpu_mark = Array.make (max 1 num_cpus) false;
      thread_ids = [| 0 |];
      next_thread_id = 1;
      requests = 0.0;
      allocs = 0;
      started = false;
      lifetime_sample_every;
      lifetime_countdown = lifetime_sample_every;
      series_cap;
      series_stride = 1;
      series_tick = 0;
      thread_times = Fvec.create ();
      thread_values = Int_stack.create ();
      rseq_restart_values = Int_stack.create ();
      rseq_stranded_values = Int_stack.create ();
      next_thread_update = 0.0;
      rss_stats = Stats.Running.create ();
      frag_stats = Stats.Running.create ();
      coverage_stats = Stats.Running.create ();
      next_coverage_sample = 0.0;
      peak_rss = 0;
      malloc_ns_at_reset = 0.0;
      faults;
      probe;
      audit_interval_ns;
      next_audit = 0.0;
      audit_reports = Vec.create ();
      on_free = (fun ~a:_ ~b:_ ~c:_ -> ());
    }
  in
  t.on_free <- (fun ~a ~b ~c -> execute_free t ~addr:a ~size:b ~thread:c);
  t

let ensure_mark t cpu =
  let n = Array.length t.cpu_mark in
  if cpu >= n then begin
    let bigger_mark = Array.make (max (cpu + 1) (2 * n)) false in
    Array.blit t.cpu_mark 0 bigger_mark 0 n;
    t.cpu_mark <- bigger_mark;
    let bigger = Array.make (Array.length bigger_mark) 0 in
    Array.blit t.active_cpus 0 bigger 0 (Array.length t.active_cpus);
    t.active_cpus <- bigger
  end

(* Recompute the occupied-CPU set for [n_threads] workers: mark, retire
   vCPUs for cores no longer touched, then sweep the marks in id order so
   [active_cpus] stays ascending (the order the old IntSet computation
   produced). *)
let update_cpus t n_threads =
  for thread = 0 to n_threads - 1 do
    let cpu = Sched.cpu_of_thread t.sched ~thread in
    ensure_mark t cpu;
    t.cpu_mark.(cpu) <- true
  done;
  for i = 0 to t.n_active_cpus - 1 do
    let cpu = t.active_cpus.(i) in
    if not t.cpu_mark.(cpu) then begin
      Backend.cpu_idle t.backend ~cpu;
      match t.probe with Some p -> p.on_retire ~cpu ~flush:false | None -> ()
    end
  done;
  let k = ref 0 in
  for cpu = 0 to Array.length t.cpu_mark - 1 do
    if t.cpu_mark.(cpu) then begin
      t.active_cpus.(!k) <- cpu;
      incr k;
      t.cpu_mark.(cpu) <- false
    end
  done;
  t.n_active_cpus <- !k

(* Worker pools resize on control-plane timescales, not per epoch. *)
let thread_update_interval = 0.25 *. Units.sec

let record_series t ~now =
  t.series_tick <- t.series_tick + 1;
  if t.series_tick mod t.series_stride = 0 then begin
    Fvec.push t.thread_times now;
    Int_stack.push t.thread_values t.active_threads;
    let tel = Backend.telemetry t.backend in
    Int_stack.push t.rseq_restart_values (Telemetry.rseq_restarts tel);
    Int_stack.push t.rseq_stranded_values (Telemetry.stranded_reclaim_bytes tel);
    if t.series_cap > 0 && Fvec.length t.thread_times >= t.series_cap then begin
      (* At the cap: keep every other sample in place and double the
         recording stride. *)
      let n = Fvec.length t.thread_times in
      let k = ref 0 in
      let i = ref 0 in
      while !i < n do
        Fvec.set t.thread_times !k (Fvec.get t.thread_times !i);
        Int_stack.set t.thread_values !k (Int_stack.get t.thread_values !i);
        Int_stack.set t.rseq_restart_values !k (Int_stack.get t.rseq_restart_values !i);
        Int_stack.set t.rseq_stranded_values !k (Int_stack.get t.rseq_stranded_values !i);
        incr k;
        i := !i + 2
      done;
      Fvec.truncate t.thread_times !k;
      Int_stack.truncate t.thread_values !k;
      Int_stack.truncate t.rseq_restart_values !k;
      Int_stack.truncate t.rseq_stranded_values !k;
      t.series_stride <- t.series_stride * 2
    end
  end

let update_threads t ~now =
  if now < t.next_thread_update && t.n_active_cpus > 0 then ()
  else begin
    t.next_thread_update <- now +. thread_update_interval;
    let n = Threads.count t.profile.Profile.threads t.rng ~now in
    if n <> t.active_threads || t.n_active_cpus = 0 then begin
      if n > Array.length t.thread_ids then begin
        let old = t.thread_ids in
        t.thread_ids <- Array.make n 0;
        Array.blit old 0 t.thread_ids 0 (Array.length old);
        for slot = Array.length old to n - 1 do
          t.thread_ids.(slot) <- t.next_thread_id;
          t.next_thread_id <- t.next_thread_id + 1
        done
      end
      else if n > t.active_threads then
        (* Regrown slots within the array get fresh worker identities. *)
        for slot = t.active_threads to n - 1 do
          t.thread_ids.(slot) <- t.next_thread_id;
          t.next_thread_id <- t.next_thread_id + 1
        done;
      t.active_threads <- n;
      update_cpus t n
    end;
    record_series t ~now
  end

(* Issue one tick's allocations as a batch: the drift factor (a [sin] of
   the tick clock), the probe presence check, and the schedule/profile
   field loads are hoisted out of the per-event loop. *)
let allocate_batch t ~now n =
  let drift = Profile.size_drift_factor t.profile ~now in
  let profile = t.profile and rng = t.rng and backend = t.backend in
  (match t.probe with
  | None ->
    for _ = 1 to n do
      let thread = Rng.int rng t.active_threads in
      let cpu = Sched.cpu_of_thread t.sched ~thread in
      let size = Profile.sample_size_drifted profile rng ~drift in
      let addr = Backend.malloc_th backend ~thread:t.thread_ids.(thread) ~cpu ~size in
      let lifetime = Profile.sample_lifetime profile rng ~size in
      record_lifetime_sample t ~size ~lifetime;
      Calendar.push t.pending_frees (now +. lifetime) ~a:addr ~b:size ~c:thread
    done
  | Some probe ->
    for _ = 1 to n do
      let thread = Rng.int rng t.active_threads in
      let cpu = Sched.cpu_of_thread t.sched ~thread in
      let size = Profile.sample_size_drifted profile rng ~drift in
      let addr = Backend.malloc_th backend ~thread:t.thread_ids.(thread) ~cpu ~size in
      probe.on_alloc ~addr ~size ~cpu;
      let lifetime = Profile.sample_lifetime profile rng ~size in
      record_lifetime_sample t ~size ~lifetime;
      Calendar.push t.pending_frees (now +. lifetime) ~a:addr ~b:size ~c:thread
    done);
  t.allocs <- t.allocs + n

let startup_burst t =
  (* Startup allocations live "forever": model them with a free time far
     beyond any simulation horizon so they pin memory like SPEC's
     allocate-once working sets. *)
  let far_future = 1e18 in
  for _ = 1 to t.profile.Profile.startup_burst_allocs do
    let thread = Rng.int t.rng t.active_threads in
    let cpu = Sched.cpu_of_thread t.sched ~thread in
    let size = Profile.sample_size t.profile t.rng in
    let addr = Backend.malloc_th t.backend ~thread:t.thread_ids.(thread) ~cpu ~size in
    (match t.probe with Some p -> p.on_alloc ~addr ~size ~cpu | None -> ());
    record_lifetime_sample t ~size ~lifetime:far_future;
    Calendar.push t.pending_frees far_future ~a:addr ~b:size ~c:thread;
    t.allocs <- t.allocs + 1
  done

(* Hugepage coverage requires a full pageheap walk; sample it coarsely. *)
let coverage_sample_interval = 0.5 *. Units.sec

let observe_memory t ~now =
  let rss = Backend.resident_bytes t.backend in
  Stats.Running.add t.rss_stats (float_of_int rss);
  if rss > t.peak_rss then t.peak_rss <- rss;
  Stats.Running.add t.frag_stats (Backend.live_fragmentation_ratio t.backend);
  if now >= t.next_coverage_sample then begin
    t.next_coverage_sample <- now +. coverage_sample_interval;
    Stats.Running.add t.coverage_stats (Backend.hugepage_coverage t.backend)
  end

let step t ~dt =
  let now = Clock.now t.clock in
  (match t.probe with Some p -> p.on_advance ~dt_ns:dt | None -> ());
  (* CPU-churn burst: the scheduler migrated this process, every active
     vCPU retires (dense ids become reusable) and the next thread update
     re-acquires CPUs.  Each retired cache is flushed to the transfer
     cache as it goes — the pre-flush model silently orphaned those
     objects in caches nothing indexed anymore. *)
  (match t.faults with
  | Some f when Fault.churn_due f ~now ->
    for i = 0 to t.n_active_cpus - 1 do
      let cpu = t.active_cpus.(i) in
      Backend.cpu_idle ~flush:true t.backend ~cpu;
      match t.probe with Some p -> p.on_retire ~cpu ~flush:true | None -> ()
    done;
    t.n_active_cpus <- 0;
    t.next_thread_update <- now
  | Some _ | None -> ());
  update_threads t ~now;
  if not t.started then begin
    t.started <- true;
    if t.profile.Profile.startup_burst_allocs > 0 then startup_burst t
  end;
  (* Retire frees that came due during this epoch (frees never push new
     events, so in-place draining is safe). *)
  Calendar.drain_payloads t.pending_frees now t.on_free;
  (* Issue the epoch's allocations. *)
  let rate =
    t.profile.Profile.requests_per_thread_per_sec
    *. t.profile.Profile.allocs_per_request
    *. float_of_int t.active_threads
  in
  let expected = rate *. dt /. Units.sec in
  let n =
    let whole = int_of_float expected in
    whole + (if Rng.bernoulli t.rng (expected -. float_of_int whole) then 1 else 0)
  in
  allocate_batch t ~now n;
  t.requests <- t.requests +. (float_of_int n /. t.profile.Profile.allocs_per_request);
  observe_memory t ~now;
  match t.audit_interval_ns with
  | Some interval when now >= t.next_audit ->
    t.next_audit <- now +. interval;
    Vec.push t.audit_reports (Backend.audit t.backend)
  | Some _ | None -> ()

let run t ~duration_ns ~epoch_ns =
  let until = Clock.now t.clock +. duration_ns in
  while Clock.now t.clock < until do
    let dt = Float.min epoch_ns (until -. Clock.now t.clock) in
    Clock.advance t.clock dt;
    step t ~dt
  done

let requests_completed t = t.requests
let allocations t = t.allocs
let live_objects t = Calendar.length t.pending_frees

let thread_series t =
  let out = ref [] in
  for i = Fvec.length t.thread_times - 1 downto 0 do
    out := (Fvec.get t.thread_times i, Int_stack.get t.thread_values i) :: !out
  done;
  !out

let rseq_series t =
  let out = ref [] in
  for i = Fvec.length t.thread_times - 1 downto 0 do
    out :=
      ( Fvec.get t.thread_times i,
        Int_stack.get t.rseq_restart_values i,
        Int_stack.get t.rseq_stranded_values i )
      :: !out
  done;
  !out

let series_samples t = Fvec.length t.thread_times
let series_stride t = t.series_stride
let avg_rss_bytes t = Stats.Running.mean t.rss_stats
let peak_rss_bytes t = t.peak_rss
let avg_fragmentation_ratio t = Stats.Running.mean t.frag_stats

let avg_hugepage_coverage t =
  if Stats.Running.count t.coverage_stats = 0 then Backend.hugepage_coverage t.backend
  else Stats.Running.mean t.coverage_stats
let profile t = t.profile
let backend t = t.backend
let faults t = t.faults
let audit_reports t = Vec.to_list t.audit_reports

let audit_violations t =
  Vec.fold t.audit_reports 0 (fun acc r -> acc + List.length r.Audit.violations)

let reset_measurements t =
  t.requests <- 0.0;
  t.rss_stats <- Stats.Running.create ();
  t.frag_stats <- Stats.Running.create ();
  t.coverage_stats <- Stats.Running.create ();
  t.peak_rss <- 0;
  Telemetry.mark (Backend.telemetry t.backend);
  t.malloc_ns_at_reset <- Telemetry.total_malloc_ns (Backend.telemetry t.backend)

let measured_malloc_ns t =
  Telemetry.total_malloc_ns (Backend.telemetry t.backend) -. t.malloc_ns_at_reset

let drain t = Calendar.drain_payloads t.pending_frees infinity t.on_free

(* --- Warm-state checkpointing ----------------------------------------- *)

let with_probe_detached t f =
  let saved = t.probe in
  t.probe <- None;
  Fun.protect ~finally:(fun () -> t.probe <- saved) f

let checkpoint t =
  with_probe_detached t (fun () -> Marshal.to_string t [ Marshal.Closures ])

let resume blob : t = Marshal.from_string blob 0
