open Wsc_substrate
module Malloc = Wsc_tcmalloc.Malloc
module Telemetry = Wsc_tcmalloc.Telemetry
module Audit = Wsc_tcmalloc.Audit
module Sched = Wsc_os.Sched
module Fault = Wsc_os.Fault

type pending = { addr : int; size : int; thread : int }

type t = {
  profile : Profile.t;
  sched : Sched.t;
  malloc : Malloc.t;
  clock : Clock.t;
  rng : Rng.t;
  pending_frees : pending Binheap.t;
  mutable active_threads : int;
  mutable active_cpus : int list;
  (* Thread slots hold OS thread identities; a slot vacated by a pool
     shrink gets a *fresh* thread id when the pool regrows (thread pools
     kill and respawn workers), which is what strands per-thread caches. *)
  mutable thread_ids : int array;
  mutable next_thread_id : int;
  mutable requests : float;
  mutable allocs : int;
  mutable started : bool;
  lifetime_sample_every : int;
  mutable lifetime_countdown : int;
  mutable thread_series_rev : (float * int) list;
  mutable rseq_series_rev : (float * int * int) list;
  mutable next_thread_update : float;
  mutable rss_stats : Stats.Running.t;
  mutable frag_stats : Stats.Running.t;
  mutable coverage_stats : Stats.Running.t;
  mutable next_coverage_sample : float;
  mutable peak_rss : int;
  mutable malloc_ns_at_reset : float;
  faults : Fault.t option;
  audit_interval_ns : float option;
  mutable next_audit : float;
  mutable audit_reports_rev : Audit.report list;
}

let create ?(seed = 1) ?(lifetime_sample_every = 64) ?faults ?audit_interval_ns ~profile
    ~sched ~malloc ~clock () =
  {
    profile;
    sched;
    malloc;
    clock;
    rng = Rng.create seed;
    pending_frees = Binheap.create ();
    active_threads = 1;
    active_cpus = [];
    thread_ids = [| 0 |];
    next_thread_id = 1;
    requests = 0.0;
    allocs = 0;
    started = false;
    lifetime_sample_every;
    lifetime_countdown = lifetime_sample_every;
    thread_series_rev = [];
    rseq_series_rev = [];
    next_thread_update = 0.0;
    rss_stats = Stats.Running.create ();
    frag_stats = Stats.Running.create ();
    coverage_stats = Stats.Running.create ();
    next_coverage_sample = 0.0;
    peak_rss = 0;
    malloc_ns_at_reset = 0.0;
    faults;
    audit_interval_ns;
    next_audit = 0.0;
    audit_reports_rev = [];
  }

let cpus_for t n_threads =
  let module IntSet = Set.Make (Int) in
  let set = ref IntSet.empty in
  for thread = 0 to n_threads - 1 do
    set := IntSet.add (Sched.cpu_of_thread t.sched ~thread) !set
  done;
  IntSet.elements !set

(* Worker pools resize on control-plane timescales, not per epoch. *)
let thread_update_interval = 0.25 *. Units.sec

let update_threads t ~now =
  if now < t.next_thread_update && t.active_cpus <> [] then ()
  else begin
  t.next_thread_update <- now +. thread_update_interval;
  let n = Threads.count t.profile.Profile.threads t.rng ~now in
  if n <> t.active_threads || t.active_cpus = [] then begin
    if n > Array.length t.thread_ids then begin
      let old = t.thread_ids in
      t.thread_ids <- Array.make n 0;
      Array.blit old 0 t.thread_ids 0 (Array.length old);
      for slot = Array.length old to n - 1 do
        t.thread_ids.(slot) <- t.next_thread_id;
        t.next_thread_id <- t.next_thread_id + 1
      done
    end
    else if n > t.active_threads then
      (* Regrown slots within the array get fresh worker identities. *)
      for slot = t.active_threads to n - 1 do
        t.thread_ids.(slot) <- t.next_thread_id;
        t.next_thread_id <- t.next_thread_id + 1
      done;
    let new_cpus = cpus_for t n in
    (* Release vCPUs for cores the shrunken pool no longer touches. *)
    List.iter
      (fun cpu -> if not (List.mem cpu new_cpus) then Malloc.cpu_idle t.malloc ~cpu)
      t.active_cpus;
    t.active_threads <- n;
    t.active_cpus <- new_cpus
  end;
  t.thread_series_rev <- (now, t.active_threads) :: t.thread_series_rev;
  let tel = Malloc.telemetry t.malloc in
  t.rseq_series_rev <-
    (now, Telemetry.rseq_restarts tel, Telemetry.stranded_reclaim_bytes tel)
    :: t.rseq_series_rev
  end

let record_lifetime_sample t ~size ~lifetime =
  t.lifetime_countdown <- t.lifetime_countdown - 1;
  (* Large objects are rare but carry the interesting lifetime tail
     (Fig. 8's >1 GiB rows); record all of them, and every k-th small one. *)
  if t.lifetime_countdown <= 0 || size >= 1_048_576 then begin
    if t.lifetime_countdown <= 0 then t.lifetime_countdown <- t.lifetime_sample_every;
    Telemetry.record_lifetime (Malloc.telemetry t.malloc) ~size ~lifetime_ns:lifetime
  end

let allocate_one t ~now =
  let thread = Rng.int t.rng t.active_threads in
  let cpu = Sched.cpu_of_thread t.sched ~thread in
  let size = Profile.sample_size ~now t.profile t.rng in
  let addr = Malloc.malloc ~thread:t.thread_ids.(thread) t.malloc ~cpu ~size in
  let lifetime = Profile.sample_lifetime t.profile t.rng ~size in
  record_lifetime_sample t ~size ~lifetime;
  Binheap.push t.pending_frees (now +. lifetime) { addr; size; thread };
  t.allocs <- t.allocs + 1

let startup_burst t =
  (* Startup allocations live "forever": model them with a free time far
     beyond any simulation horizon so they pin memory like SPEC's
     allocate-once working sets. *)
  let far_future = 1e18 in
  for _ = 1 to t.profile.Profile.startup_burst_allocs do
    let thread = Rng.int t.rng t.active_threads in
    let cpu = Sched.cpu_of_thread t.sched ~thread in
    let size = Profile.sample_size t.profile t.rng in
    let addr = Malloc.malloc ~thread:t.thread_ids.(thread) t.malloc ~cpu ~size in
    record_lifetime_sample t ~size ~lifetime:far_future;
    Binheap.push t.pending_frees far_future { addr; size; thread };
    t.allocs <- t.allocs + 1
  done

let execute_free t p =
  let cross = Rng.bernoulli t.rng t.profile.Profile.cross_thread_free_fraction in
  let thread = if cross then Rng.int t.rng t.active_threads else p.thread mod t.active_threads in
  let cpu = Sched.cpu_of_thread t.sched ~thread in
  Malloc.free ~thread:t.thread_ids.(thread) t.malloc ~cpu p.addr ~size:p.size

(* Hugepage coverage requires a full pageheap walk; sample it coarsely. *)
let coverage_sample_interval = 0.5 *. Units.sec

let observe_memory t ~now =
  let stats = Malloc.heap_stats t.malloc in
  let rss = stats.Malloc.resident_bytes in
  Stats.Running.add t.rss_stats (float_of_int rss);
  if rss > t.peak_rss then t.peak_rss <- rss;
  Stats.Running.add t.frag_stats (Malloc.fragmentation_ratio stats);
  if now >= t.next_coverage_sample then begin
    t.next_coverage_sample <- now +. coverage_sample_interval;
    Stats.Running.add t.coverage_stats (Malloc.hugepage_coverage t.malloc)
  end

let step t ~dt =
  let now = Clock.now t.clock in
  (* CPU-churn burst: the scheduler migrated this process, every active
     vCPU retires (dense ids become reusable) and the next thread update
     re-acquires CPUs.  Each retired cache is flushed to the transfer
     cache as it goes — the pre-flush model silently orphaned those
     objects in caches nothing indexed anymore. *)
  (match t.faults with
  | Some f when Fault.churn_due f ~now ->
    List.iter (fun cpu -> Malloc.cpu_idle ~flush:true t.malloc ~cpu) t.active_cpus;
    t.active_cpus <- [];
    t.next_thread_update <- now
  | Some _ | None -> ());
  update_threads t ~now;
  if not t.started then begin
    t.started <- true;
    if t.profile.Profile.startup_burst_allocs > 0 then startup_burst t
  end;
  (* Retire frees that came due during this epoch. *)
  List.iter (fun (_, p) -> execute_free t p) (Binheap.pop_until t.pending_frees now);
  (* Issue the epoch's allocations. *)
  let rate =
    t.profile.Profile.requests_per_thread_per_sec
    *. t.profile.Profile.allocs_per_request
    *. float_of_int t.active_threads
  in
  let expected = rate *. dt /. Units.sec in
  let n =
    let whole = int_of_float expected in
    whole + (if Rng.bernoulli t.rng (expected -. float_of_int whole) then 1 else 0)
  in
  for _ = 1 to n do
    allocate_one t ~now
  done;
  t.requests <- t.requests +. (float_of_int n /. t.profile.Profile.allocs_per_request);
  observe_memory t ~now;
  match t.audit_interval_ns with
  | Some interval when now >= t.next_audit ->
    t.next_audit <- now +. interval;
    t.audit_reports_rev <- Audit.run t.malloc :: t.audit_reports_rev
  | Some _ | None -> ()

let run t ~duration_ns ~epoch_ns =
  let until = Clock.now t.clock +. duration_ns in
  while Clock.now t.clock < until do
    let dt = Float.min epoch_ns (until -. Clock.now t.clock) in
    Clock.advance t.clock dt;
    step t ~dt
  done

let requests_completed t = t.requests
let allocations t = t.allocs
let live_objects t = Binheap.length t.pending_frees
let thread_series t = List.rev t.thread_series_rev
let rseq_series t = List.rev t.rseq_series_rev
let avg_rss_bytes t = Stats.Running.mean t.rss_stats
let peak_rss_bytes t = t.peak_rss
let avg_fragmentation_ratio t = Stats.Running.mean t.frag_stats

let avg_hugepage_coverage t =
  if Stats.Running.count t.coverage_stats = 0 then Malloc.hugepage_coverage t.malloc
  else Stats.Running.mean t.coverage_stats
let profile t = t.profile
let malloc t = t.malloc
let faults t = t.faults
let audit_reports t = List.rev t.audit_reports_rev

let audit_violations t =
  List.fold_left (fun acc r -> acc + List.length r.Audit.violations) 0 t.audit_reports_rev

let reset_measurements t =
  t.requests <- 0.0;
  t.rss_stats <- Stats.Running.create ();
  t.frag_stats <- Stats.Running.create ();
  t.coverage_stats <- Stats.Running.create ();
  t.peak_rss <- 0;
  Telemetry.mark (Malloc.telemetry t.malloc);
  t.malloc_ns_at_reset <- Telemetry.total_malloc_ns (Malloc.telemetry t.malloc)

let measured_malloc_ns t =
  Telemetry.total_malloc_ns (Malloc.telemetry t.malloc) -. t.malloc_ns_at_reset

let drain t =
  let rec go () =
    match Binheap.pop t.pending_frees with
    | None -> ()
    | Some (_, p) ->
      execute_free t p;
      go ()
  in
  go ()
