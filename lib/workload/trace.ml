open Wsc_substrate
module Malloc = Wsc_tcmalloc.Malloc
module Telemetry = Wsc_tcmalloc.Telemetry

type event =
  | Alloc of { id : int; size : int; cpu : int }
  | Free of { id : int; cpu : int }
  | Advance of { dt_ns : float }
  | Retire of { cpu : int; flush : bool }

type t = { events : event list; length : int }

(* Validate and count in one traversal (the old implementation walked the
   list a second time just for [List.length]). *)
let validate events =
  let live = Hashtbl.create 1024 in
  let n = ref 0 in
  List.iter
    (fun ev ->
      let i = !n in
      (match ev with
      | Alloc { id; size; cpu } ->
        if size <= 0 then invalid_arg (Printf.sprintf "Trace: event %d: size <= 0" i);
        if cpu < 0 then invalid_arg (Printf.sprintf "Trace: event %d: negative cpu" i);
        if Hashtbl.mem live id then
          invalid_arg (Printf.sprintf "Trace: event %d: id %d already live" i id);
        Hashtbl.replace live id ()
      | Free { id; cpu } ->
        if cpu < 0 then invalid_arg (Printf.sprintf "Trace: event %d: negative cpu" i);
        if not (Hashtbl.mem live id) then
          invalid_arg (Printf.sprintf "Trace: event %d: free of unknown id %d" i id);
        Hashtbl.remove live id
      | Advance { dt_ns } ->
        if dt_ns < 0.0 || Float.is_nan dt_ns then
          invalid_arg (Printf.sprintf "Trace: event %d: negative dt" i)
      | Retire { cpu; flush = _ } ->
        if cpu < 0 then invalid_arg (Printf.sprintf "Trace: event %d: negative cpu" i));
      incr n)
    events;
  !n

let of_events events =
  let length = validate events in
  { events; length }

let events t = t.events
let length t = t.length

(* Mirror the driver's event generation, but emit events instead of calling
   the allocator.  Object ids are allocation ordinals. *)
let synthesize_into ?(seed = 1) ?(epoch_ns = Units.ms)
    ?(num_cpus = Wsc_hw.Topology.num_cpus Wsc_hw.Topology.default) ~profile
    ~duration_ns emit =
  if num_cpus <= 0 then invalid_arg "Trace.synthesize: num_cpus <= 0";
  let rng = Rng.create seed in
  let pending : (int * int) Binheap.t = Binheap.create () (* (id, thread) *) in
  let next_id = ref 0 in
  let now = ref 0.0 in
  let active_threads = ref 1 in
  let next_thread_update = ref 0.0 in
  let cpu_of_thread thread = thread mod num_cpus in
  let allocate () =
    let thread = Rng.int rng !active_threads in
    let size = Profile.sample_size ~now:!now profile rng in
    let id = !next_id in
    incr next_id;
    emit (Alloc { id; size; cpu = cpu_of_thread thread });
    let lifetime = Profile.sample_lifetime profile rng ~size in
    Binheap.push pending (!now +. lifetime) (id, thread)
  in
  while !now < duration_ns do
    now := !now +. epoch_ns;
    emit (Advance { dt_ns = epoch_ns });
    if !now >= !next_thread_update then begin
      next_thread_update := !now +. (0.25 *. Units.sec);
      active_threads := Threads.count profile.Profile.threads rng ~now:!now
    end;
    List.iter
      (fun (_, (id, thread)) ->
        let cross = Rng.bernoulli rng profile.Profile.cross_thread_free_fraction in
        let thread = if cross then Rng.int rng !active_threads else thread in
        emit (Free { id; cpu = cpu_of_thread thread }))
      (Binheap.pop_until pending !now);
    let rate =
      profile.Profile.requests_per_thread_per_sec
      *. profile.Profile.allocs_per_request
      *. float_of_int !active_threads
    in
    let expected = rate *. epoch_ns /. Units.sec in
    let n =
      let whole = int_of_float expected in
      whole + (if Rng.bernoulli rng (expected -. float_of_int whole) then 1 else 0)
    in
    for _ = 1 to n do
      allocate ()
    done
  done;
  (* Close the trace: free every live object so replays end balanced. *)
  Binheap.iter pending (fun _ (id, thread) ->
      emit (Free { id; cpu = cpu_of_thread thread }))

let synthesize ?seed ?epoch_ns ?num_cpus ~profile ~duration_ns () =
  let out = ref [] in
  let n_out = ref 0 in
  synthesize_into ?seed ?epoch_ns ?num_cpus ~profile ~duration_ns (fun ev ->
      out := ev :: !out;
      incr n_out);
  { events = List.rev !out; length = !n_out }

type replay_result = {
  allocations : int;
  frees : int;
  peak_rss_bytes : int;
  final_stats : Malloc.heap_stats;
  malloc_ns : float;
}

let replay ?(config = Wsc_tcmalloc.Config.baseline)
    ?(topology = Wsc_hw.Topology.default) t =
  let clock = Clock.create () in
  let malloc = Malloc.create ~config ~topology ~clock () in
  let num_cpus = Wsc_hw.Topology.num_cpus topology in
  let addr_of_id = Hashtbl.create 4096 in
  let peak = ref 0 in
  let allocations = ref 0 and frees = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Alloc { id; size; cpu } ->
        let addr = Malloc.malloc malloc ~cpu:(cpu mod num_cpus) ~size in
        Hashtbl.replace addr_of_id id (addr, size);
        incr allocations
      | Free { id; cpu } ->
        let addr, size =
          match Hashtbl.find_opt addr_of_id id with
          | Some entry -> entry
          | None -> invalid_arg "Trace.replay: free of unknown id"
        in
        Hashtbl.remove addr_of_id id;
        Malloc.free malloc ~cpu:(cpu mod num_cpus) addr ~size;
        incr frees
      | Advance { dt_ns } ->
        Clock.advance clock dt_ns;
        let rss = (Malloc.heap_stats malloc).Malloc.resident_bytes in
        if rss > !peak then peak := rss
      | Retire { cpu; flush } -> Malloc.cpu_idle ~flush malloc ~cpu:(cpu mod num_cpus))
    t.events;
  {
    allocations = !allocations;
    frees = !frees;
    peak_rss_bytes = !peak;
    final_stats = Malloc.heap_stats malloc;
    malloc_ns = Telemetry.total_malloc_ns (Malloc.telemetry malloc);
  }

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# wsc-alloc trace v1\n";
      List.iter
        (fun ev ->
          match ev with
          | Alloc { id; size; cpu } -> Printf.fprintf oc "a %d %d %d\n" id size cpu
          | Free { id; cpu } -> Printf.fprintf oc "f %d %d\n" id cpu
          | Advance { dt_ns } -> Printf.fprintf oc "t %.17g\n" dt_ns
          | Retire { cpu; flush } ->
            Printf.fprintf oc "r %d %d\n" cpu (if flush then 1 else 0))
        t.events)

let parse_line ~fail line =
  match String.split_on_char ' ' line with
  | [ "a"; id; size; cpu ] -> (
    match (int_of_string_opt id, int_of_string_opt size, int_of_string_opt cpu) with
    | Some id, Some size, Some cpu -> Alloc { id; size; cpu }
    | _ -> fail ())
  | [ "f"; id; cpu ] -> (
    match (int_of_string_opt id, int_of_string_opt cpu) with
    | Some id, Some cpu -> Free { id; cpu }
    | _ -> fail ())
  | [ "t"; dt ] -> (
    match float_of_string_opt dt with
    | Some dt_ns -> Advance { dt_ns }
    | None -> fail ())
  | [ "r"; cpu; flush ] -> (
    match (int_of_string_opt cpu, int_of_string_opt flush) with
    | Some cpu, Some flush -> Retire { cpu; flush = flush <> 0 }
    | _ -> fail ())
  | _ -> fail ()

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           let line = String.trim line in
           if line <> "" && line.[0] <> '#' then begin
             let fail () =
               invalid_arg (Printf.sprintf "Trace.load: parse error at line %d" !line_no)
             in
             out := parse_line ~fail line :: !out
           end
         done
       with End_of_file -> ());
      of_events (List.rev !out))
