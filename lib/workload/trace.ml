open Wsc_substrate

type event =
  | Alloc of { id : int; size : int; cpu : int }
  | Free of { id : int; cpu : int }
  | Advance of { dt_ns : float }
  | Retire of { cpu : int; flush : bool }

(* Mirror the driver's event generation, but emit events instead of calling
   the allocator.  Object ids are allocation ordinals. *)
let synthesize_into ?(seed = 1) ?(epoch_ns = Units.ms)
    ?(num_cpus = Wsc_hw.Topology.num_cpus Wsc_hw.Topology.default) ~profile
    ~duration_ns emit =
  if num_cpus <= 0 then invalid_arg "Trace.synthesize_into: num_cpus <= 0";
  let rng = Rng.create seed in
  let pending : (int * int) Binheap.t = Binheap.create () (* (id, thread) *) in
  let next_id = ref 0 in
  let now = ref 0.0 in
  let active_threads = ref 1 in
  let next_thread_update = ref 0.0 in
  let cpu_of_thread thread = thread mod num_cpus in
  let allocate () =
    let thread = Rng.int rng !active_threads in
    let size = Profile.sample_size ~now:!now profile rng in
    let id = !next_id in
    incr next_id;
    emit (Alloc { id; size; cpu = cpu_of_thread thread });
    let lifetime = Profile.sample_lifetime profile rng ~size in
    Binheap.push pending (!now +. lifetime) (id, thread)
  in
  while !now < duration_ns do
    now := !now +. epoch_ns;
    emit (Advance { dt_ns = epoch_ns });
    if !now >= !next_thread_update then begin
      next_thread_update := !now +. (0.25 *. Units.sec);
      active_threads := Threads.count profile.Profile.threads rng ~now:!now
    end;
    List.iter
      (fun (_, (id, thread)) ->
        let cross = Rng.bernoulli rng profile.Profile.cross_thread_free_fraction in
        let thread = if cross then Rng.int rng !active_threads else thread in
        emit (Free { id; cpu = cpu_of_thread thread }))
      (Binheap.pop_until pending !now);
    let rate =
      profile.Profile.requests_per_thread_per_sec
      *. profile.Profile.allocs_per_request
      *. float_of_int !active_threads
    in
    let expected = rate *. epoch_ns /. Units.sec in
    let n =
      let whole = int_of_float expected in
      whole + (if Rng.bernoulli rng (expected -. float_of_int whole) then 1 else 0)
    in
    for _ = 1 to n do
      allocate ()
    done
  done;
  (* Close the trace: free every live object so replays end balanced. *)
  Binheap.iter pending (fun _ (id, thread) ->
      emit (Free { id; cpu = cpu_of_thread thread }))

(* --- Text v1 line format ----------------------------------------------- *)

let line_of_event = function
  | Alloc { id; size; cpu } -> Printf.sprintf "a %d %d %d" id size cpu
  | Free { id; cpu } -> Printf.sprintf "f %d %d" id cpu
  | Advance { dt_ns } -> Printf.sprintf "t %.17g" dt_ns
  | Retire { cpu; flush } -> Printf.sprintf "r %d %d" cpu (if flush then 1 else 0)

let parse_line ~fail line =
  match String.split_on_char ' ' line with
  | [ "a"; id; size; cpu ] -> (
    match (int_of_string_opt id, int_of_string_opt size, int_of_string_opt cpu) with
    | Some id, Some size, Some cpu -> Alloc { id; size; cpu }
    | _ -> fail ())
  | [ "f"; id; cpu ] -> (
    match (int_of_string_opt id, int_of_string_opt cpu) with
    | Some id, Some cpu -> Free { id; cpu }
    | _ -> fail ())
  | [ "t"; dt ] -> (
    match float_of_string_opt dt with
    | Some dt_ns -> Advance { dt_ns }
    | None -> fail ())
  | [ "r"; cpu; flush ] -> (
    match (int_of_string_opt cpu, int_of_string_opt flush) with
    | Some cpu, Some flush -> Retire { cpu; flush = flush <> 0 }
    | _ -> fail ())
  | _ -> fail ()
