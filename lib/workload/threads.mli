(** Worker-thread count dynamics (Fig. 9a).

    WSC applications handle dynamic load by varying the number of worker
    threads: the paper's middle-tier search service fluctuates constantly
    with diurnal swings, noise, and occasional load spikes.  The model is a
    sinusoid with multiplicative noise plus rare spikes, evaluated at any
    simulated time. *)

type t = {
  base : float;  (** Mean thread count. *)
  amplitude : float;  (** Diurnal swing as a fraction of [base] (0..1). *)
  period_ns : float;  (** Diurnal period (24 h for real services; scaled
                           down for short simulations). *)
  noise : float;  (** Multiplicative noise amplitude (0..1). *)
  spike_probability : float;  (** Per-evaluation chance of a load spike. *)
  spike_multiplier : float;  (** Thread multiplier during a spike. *)
  max_threads : int;
}

val steady : threads:int -> t
(** A constant thread count (benchmarks on a dedicated server). *)

val diurnal :
  ?amplitude:float ->
  ?noise:float ->
  ?spike_probability:float ->
  ?period_ns:float ->
  base:float ->
  max_threads:int ->
  unit ->
  t

val count : t -> Wsc_substrate.Rng.t -> now:float -> int
(** Active worker threads at [now]; always in [\[1, max_threads\]]. *)
