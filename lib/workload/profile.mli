(** Application allocation profiles.

    A profile is everything the workload driver needs to emit a realistic
    allocation stream for one application: the object-size distribution
    (Fig. 7), the size-conditioned lifetime distributions (Fig. 8), request
    and allocation rates, the cross-thread free fraction that drives
    transfer-cache traffic, thread-count dynamics (Fig. 9a) and the
    productivity-model parameters ("Before" columns of Tables 1/2). *)

type t = {
  name : string;
  size_dist : Wsc_substrate.Dist.t;
      (** Object sizes in bytes (sampled values are rounded to ints >= 1). *)
  lifetime_table : (int * Wsc_substrate.Dist.t) list;
      (** [(size_upper_bound, lifetime_dist_ns)] rows, ascending; the last
          row catches everything above the previous bound. *)
  allocs_per_request : float;
  requests_per_thread_per_sec : float;
  cross_thread_free_fraction : float;
      (** Probability an object is freed by a different thread than the one
          that allocated it. *)
  size_drift_amplitude : float;
      (** Slow oscillation of the size mix (fraction, 0..1): real services
          shift their allocation mix across size classes over time (request
          mix changes, compactions, batch phases), which strands freed
          objects on central-free-list spans — the paper's dominant
          middle-tier fragmentation.  0 disables drift. *)
  size_drift_period_ns : float;
  startup_burst_allocs : int;
      (** Allocations issued at t=0 with effectively-infinite lifetime
          (SPEC-style allocate-at-startup behaviour). *)
  threads : Threads.t;
  productivity : Wsc_hw.Productivity.params;
}

val lifetime_dist : t -> size:int -> Wsc_substrate.Dist.t
(** The lifetime distribution governing an object of [size] bytes. *)

val sample_size : ?now:float -> t -> Wsc_substrate.Rng.t -> int
(** One object size (>= 1 byte, integer); [now] applies the size drift. *)

val size_drift_factor : t -> now:float -> float
(** The size-drift multiplier at [now] (1.0 when drift is disabled).  The
    factor only depends on the clock, so batch issuers compute it once per
    tick and draw with {!sample_size_drifted}. *)

val sample_size_drifted : t -> Wsc_substrate.Rng.t -> drift:float -> int
(** [sample_size] with a precomputed {!size_drift_factor}; the two paths
    produce bit-identical draws for the same RNG state. *)

val sample_lifetime : t -> Wsc_substrate.Rng.t -> size:int -> float
(** One lifetime in ns for an object of the given size. *)

val fleet_size_dist : Wsc_substrate.Dist.t
(** The fleet-aggregate object-size distribution, calibrated to Fig. 7:
    ~98% of objects under 1 KiB carrying ~28% of bytes, >8 KiB carrying
    ~50%, >256 KiB carrying ~22%. *)

val fleet_lifetime_table : (int * Wsc_substrate.Dist.t) list
(** Fleet-aggregate size-conditioned lifetimes, calibrated to Fig. 8: 46%
    of sub-KiB objects live under 1 ms; objects over 1 GiB mostly live for
    days. *)

val scale_lifetimes : float -> (int * Wsc_substrate.Dist.t) list -> (int * Wsc_substrate.Dist.t) list
(** Multiply every lifetime in a table by a constant (used to compress real
    hours into simulable seconds while preserving relative diversity). *)
