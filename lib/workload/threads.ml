open Wsc_substrate

type t = {
  base : float;
  amplitude : float;
  period_ns : float;
  noise : float;
  spike_probability : float;
  spike_multiplier : float;
  max_threads : int;
}

let steady ~threads =
  {
    base = float_of_int threads;
    amplitude = 0.0;
    period_ns = Units.day;
    noise = 0.0;
    spike_probability = 0.0;
    spike_multiplier = 1.0;
    max_threads = threads;
  }

let diurnal ?(amplitude = 0.35) ?(noise = 0.15) ?(spike_probability = 0.01)
    ?(period_ns = 24.0 *. Units.hour) ~base ~max_threads () =
  {
    base;
    amplitude;
    period_ns;
    noise;
    spike_probability;
    spike_multiplier = 1.8;
    max_threads;
  }

let count t rng ~now =
  let phase = 2.0 *. Float.pi *. now /. t.period_ns in
  let diurnal_factor = 1.0 +. (t.amplitude *. sin phase) in
  let noise_factor = 1.0 +. (t.noise *. ((2.0 *. Rng.unit_float rng) -. 1.0)) in
  let spike_factor =
    if t.spike_probability > 0.0 && Rng.bernoulli rng t.spike_probability then
      t.spike_multiplier
    else 1.0
  in
  let n = t.base *. diurnal_factor *. noise_factor *. spike_factor in
  max 1 (min t.max_threads (int_of_float (Float.round n)))
