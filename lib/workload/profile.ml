open Wsc_substrate

type t = {
  name : string;
  size_dist : Dist.t;
  lifetime_table : (int * Dist.t) list;
  allocs_per_request : float;
  requests_per_thread_per_sec : float;
  cross_thread_free_fraction : float;
  size_drift_amplitude : float;
  size_drift_period_ns : float;
  startup_burst_allocs : int;
  threads : Threads.t;
  productivity : Wsc_hw.Productivity.params;
}

(* Toplevel recursion (not a local closure capturing [size]) keeps the
   per-allocation lookup allocation-free. *)
let rec pick_lifetime table size =
  match table with
  | [] -> invalid_arg "Profile.lifetime_dist: empty lifetime table"
  | [ (_, d) ] -> d
  | (bound, d) :: rest -> if size <= bound then d else pick_lifetime rest size

let[@inline] lifetime_dist t ~size = pick_lifetime t.lifetime_table size

(* The drift multiplier depends only on [now], so the driver computes it
   once per tick instead of paying a [sin] per allocation. *)
let[@inline] size_drift_factor t ~now =
  if t.size_drift_amplitude <= 0.0 then 1.0
  else begin
    let phase = 2.0 *. Float.pi *. now /. t.size_drift_period_ns in
    1.0 +. (t.size_drift_amplitude *. sin phase)
  end

let[@inline] sample_size_drifted t rng ~drift =
  let v = Dist.sample t.size_dist rng in
  (* Drift shifts the small-object mix across neighbouring size classes;
     large buffers keep their standard sizes. *)
  let v = if drift = 1.0 || v > 262144.0 then v else v *. drift in
  max 1 (int_of_float (Float.round v))

let sample_size ?(now = 0.0) t rng =
  sample_size_drifted t rng ~drift:(size_drift_factor t ~now)

let[@inline] sample_lifetime t rng ~size = Dist.sample (lifetime_dist t ~size) rng

(* Fleet object-size inverse CDF, numerically calibrated (Monte-Carlo) so
   the count CDF has ~98% of objects below 1 KiB while bytes split
   ~28% / ~22% / ~28% / ~22% across (<=1K / 1K-8K / 8K-256K / >256K) —
   Fig. 7's anchors.  The multi-GiB extreme of the paper's axis cannot be
   represented at simulation scale: a single such draw would dominate the
   byte CDF of a run with millions (not billions) of allocations, so the
   tail tops out at ~10 MiB (see EXPERIMENTS.md). *)
let fleet_size_dist =
  Dist.empirical
    [
      (0.00, 8.0);
      (0.35, 24.0);
      (0.65, 64.0);
      (0.85, 160.0);
      (0.95, 448.0);
      (0.98, 1024.0);
      (0.9885, 2048.0);
      (0.99926, 8192.0);
      (0.99946, 65536.0);
      (0.999975, 262144.0);
      (1.0, 1.0e7);
    ]

let exp_ms mean_ms = Dist.exponential ~mean:(mean_ms *. Units.ms)

(* Size-conditioned lifetime mixtures (Fig. 8): small objects skew very
   short (46% under 1 ms) but retain a heavy tail; multi-GiB objects mostly
   live for days. *)
let fleet_lifetime_table =
  let kib = Units.kib and mib = Units.mib and gib = Units.gib in
  [
    ( kib,
      Dist.mixture
        [
          (0.46, exp_ms 0.3);
          (0.22, exp_ms 50.0);
          (0.16, exp_ms 5_000.0);
          (0.10, exp_ms 300_000.0);
          (0.06, Dist.exponential ~mean:(2.0 *. Units.day));
        ] );
    ( 64 * kib,
      Dist.mixture
        [
          (0.30, exp_ms 1.0);
          (0.25, exp_ms 100.0);
          (0.20, exp_ms 10_000.0);
          (0.15, exp_ms 600_000.0);
          (0.10, Dist.exponential ~mean:(2.0 *. Units.day));
        ] );
    ( mib,
      Dist.mixture
        [
          (0.20, exp_ms 5.0);
          (0.25, exp_ms 500.0);
          (0.25, exp_ms 30_000.0);
          (0.15, Dist.exponential ~mean:(30.0 *. Units.minute));
          (0.15, Dist.exponential ~mean:(3.0 *. Units.day));
        ] );
    ( 64 * mib,
      Dist.mixture
        [
          (0.10, exp_ms 20.0);
          (0.20, exp_ms 2_000.0);
          (0.30, Dist.exponential ~mean:(2.0 *. Units.minute));
          (0.20, Dist.exponential ~mean:(1.0 *. Units.hour));
          (0.20, Dist.exponential ~mean:(3.0 *. Units.day));
        ] );
    ( gib,
      Dist.mixture
        [
          (0.05, exp_ms 100.0);
          (0.15, exp_ms 10_000.0);
          (0.25, Dist.exponential ~mean:(10.0 *. Units.minute));
          (0.25, Dist.exponential ~mean:(2.0 *. Units.hour));
          (0.30, Dist.exponential ~mean:(2.0 *. Units.day));
        ] );
    ( max_int,
      Dist.mixture
        [
          (0.05, exp_ms 1_000.0);
          (0.10, Dist.exponential ~mean:(1.0 *. Units.minute));
          (0.20, Dist.exponential ~mean:(1.0 *. Units.hour));
          (0.65, Dist.exponential ~mean:(3.0 *. Units.day));
        ] );
  ]

let scale_lifetimes factor table =
  List.map (fun (bound, d) -> (bound, Dist.scaled factor d)) table
