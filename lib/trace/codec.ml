module Event = Wsc_workload.Trace

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* ------------------------------------------------------------------ *)
(* Format constants.                                                   *)
(* ------------------------------------------------------------------ *)

let magic = "WSCTRACE"
let version = 2

(* magic (8) + version u8 + flags u8 + 6 reserved zero bytes. *)
let header_len = 16

(* A declared block length beyond this is corruption, not a real block:
   the writer flushes at 1024 events / 1 MiB, whichever comes first.
   The block is the integrity unit — one corrupted byte costs at most one
   block in salvage — so the event cap trades frame overhead (~18 bytes
   per ~2.3 KiB block, under 1%) against corruption blast radius. *)
let max_block_bytes = 1 lsl 26
let block_flush_events = 1024
let block_flush_bytes = 1 lsl 20

let header () =
  let b = Bytes.make header_len '\000' in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  Bytes.set b 8 (Char.chr version);
  b

(* ------------------------------------------------------------------ *)
(* Varints (LEB128) and zigzag, over full-width 63-bit OCaml ints.     *)
(* ------------------------------------------------------------------ *)

let put_uvarint buf v =
  let v = ref v in
  while !v land lnot 0x7f <> 0 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !v)

let get_uvarint b ~limit pos =
  let v = ref 0 and shift = ref 0 and n = ref 0 and continue = ref true in
  while !continue do
    if !pos >= limit then malformed "varint runs past block end";
    if !n = 9 then malformed "varint longer than 9 bytes";
    let byte = Char.code (Bytes.unsafe_get b !pos) in
    incr pos;
    incr n;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte < 0x80 then continue := false
  done;
  !v

(* Bijective on the 63-bit int ring (shifts wrap; [lsr] is logical). *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))

let put_fixed64 buf bits =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done

let get_fixed64 b ~limit pos =
  if !pos + 8 > limit then malformed "fixed64 runs past block end";
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.unsafe_get b (!pos + i))))
  done;
  pos := !pos + 8;
  !v

(* ------------------------------------------------------------------ *)
(* Event encoding.                                                     *)
(*                                                                     *)
(* Every event starts with byte0 = tag (low 2 bits) | field (high 6):  *)
(*   tag 0  Alloc, implicit id = prev_alloc_id + 1; field = cpu code;  *)
(*          then uvarint size.                                         *)
(*   tag 1  Alloc, explicit id; field = cpu code; then zigzag uvarint  *)
(*          (id - prev_alloc_id - 1), then uvarint size.               *)
(*   tag 2  Free; field = cpu code; then uvarint recency rank (0 =     *)
(*          most recently allocated live object, via Live_index).      *)
(*   tag 3  field is a subcode:                                        *)
(*            0  Advance, dt equal to the previous Advance's dt.       *)
(*            1  Advance, new dt: 8-byte LE IEEE double follows.       *)
(*            2  Retire (flush=false): uvarint cpu follows.            *)
(*            3  Retire (flush=true): uvarint cpu follows.             *)
(* cpu code: 0..62 literal; 63 = escape, uvarint cpu follows byte0.    *)
(*                                                                     *)
(* Encoder and decoder share mutable context (previous alloc id,       *)
(* previous dt bits, the live-object order statistics); the context    *)
(* spans blocks, so blocks are an integrity boundary, not a decode     *)
(* restart point.                                                      *)
(* ------------------------------------------------------------------ *)

type context = {
  live : Live_index.t;
  mutable prev_alloc_id : int;
  mutable prev_dt_bits : int64;
  mutable dt_anchored : bool;
      (* Encoder-side: has this block emitted an explicit dt yet?  The
         first Advance of every block is written explicitly even when it
         repeats, so a salvage resync never loses the step width for more
         than the damaged block itself.  Decoding is unaffected (explicit
         dt is always decodable). *)
}

let context () =
  {
    live = Live_index.create ();
    prev_alloc_id = -1;
    prev_dt_bits = -1L;
    dt_anchored = false;
  }

let new_block ctx = ctx.dt_anchored <- false

let live_length ctx = Live_index.length ctx.live

let cpu_escape = 63

let put_byte0 buf ~tag ~cpu =
  if cpu < cpu_escape then Buffer.add_char buf (Char.unsafe_chr ((cpu lsl 2) lor tag))
  else begin
    Buffer.add_char buf (Char.unsafe_chr ((cpu_escape lsl 2) lor tag));
    put_uvarint buf cpu
  end

let encode ctx buf (ev : Event.event) =
  match ev with
  | Event.Alloc { id; size; cpu } ->
    if size <= 0 then invalid_arg "Wsc_trace: encode: alloc size <= 0";
    if cpu < 0 then invalid_arg "Wsc_trace: encode: negative cpu";
    if Live_index.mem ctx.live id then
      invalid_arg (Printf.sprintf "Wsc_trace: encode: id %d already live" id);
    let delta = id - ctx.prev_alloc_id - 1 in
    if delta = 0 then put_byte0 buf ~tag:0 ~cpu
    else begin
      put_byte0 buf ~tag:1 ~cpu;
      put_uvarint buf (zigzag delta)
    end;
    put_uvarint buf size;
    ctx.prev_alloc_id <- id;
    Live_index.append ctx.live id
  | Event.Free { id; cpu } ->
    if cpu < 0 then invalid_arg "Wsc_trace: encode: negative cpu";
    if not (Live_index.mem ctx.live id) then
      invalid_arg (Printf.sprintf "Wsc_trace: encode: free of unknown id %d" id);
    put_byte0 buf ~tag:2 ~cpu;
    put_uvarint buf (Live_index.remove_rank ctx.live id)
  | Event.Advance { dt_ns } ->
    if dt_ns < 0.0 || Float.is_nan dt_ns then
      invalid_arg "Wsc_trace: encode: negative dt";
    let bits = Int64.bits_of_float dt_ns in
    if bits = ctx.prev_dt_bits && ctx.dt_anchored then
      Buffer.add_char buf (Char.unsafe_chr 3)
    else begin
      Buffer.add_char buf (Char.unsafe_chr ((1 lsl 2) lor 3));
      put_fixed64 buf bits;
      ctx.prev_dt_bits <- bits;
      ctx.dt_anchored <- true
    end
  | Event.Retire { cpu; flush } ->
    if cpu < 0 then invalid_arg "Wsc_trace: encode: negative cpu";
    Buffer.add_char buf (Char.unsafe_chr (((if flush then 3 else 2) lsl 2) lor 3));
    put_uvarint buf cpu

let get_cpu ~field b ~limit pos =
  if field = cpu_escape then get_uvarint b ~limit pos else field

let decode ctx b ~limit pos : Event.event =
  if !pos >= limit then malformed "event runs past block end";
  let byte0 = Char.code (Bytes.unsafe_get b !pos) in
  incr pos;
  let tag = byte0 land 3 and field = byte0 lsr 2 in
  match tag with
  | 0 | 1 ->
    let cpu = get_cpu ~field b ~limit pos in
    let id =
      if tag = 0 then ctx.prev_alloc_id + 1
      else ctx.prev_alloc_id + 1 + unzigzag (get_uvarint b ~limit pos)
    in
    let size = get_uvarint b ~limit pos in
    if size <= 0 then malformed "alloc size <= 0";
    if Live_index.mem ctx.live id then malformed "alloc of already-live id %d" id;
    ctx.prev_alloc_id <- id;
    Live_index.append ctx.live id;
    Event.Alloc { id; size; cpu }
  | 2 ->
    let cpu = get_cpu ~field b ~limit pos in
    let rank = get_uvarint b ~limit pos in
    if rank < 0 || rank >= Live_index.length ctx.live then
      malformed "free rank %d out of range (%d live)" rank (Live_index.length ctx.live);
    Event.Free { id = Live_index.remove_select ctx.live rank; cpu }
  | _ -> (
    match field with
    | 0 -> Event.Advance { dt_ns = Int64.float_of_bits ctx.prev_dt_bits }
    | 1 ->
      let bits = get_fixed64 b ~limit pos in
      let dt_ns = Int64.float_of_bits bits in
      if dt_ns < 0.0 || Float.is_nan dt_ns then malformed "negative dt";
      ctx.prev_dt_bits <- bits;
      Event.Advance { dt_ns }
    | 2 -> Event.Retire { cpu = get_uvarint b ~limit pos; flush = false }
    | 3 -> Event.Retire { cpu = get_uvarint b ~limit pos; flush = true }
    | n -> malformed "unknown subcode %d" n)

(* ------------------------------------------------------------------ *)
(* Lenient decode for salvage.                                         *)
(*                                                                     *)
(* After the salvage reader skips a damaged block, the shared context  *)
(* is stale: the live set is missing the skipped allocs/frees, the     *)
(* previous alloc id lags the true stream, and the previous dt may be  *)
(* unset or outdated.  Strict [decode] would raise on the resulting    *)
(* impossibilities; this variant repairs or drops them instead:        *)
(*   - an alloc whose decoded id is already live (or negative, from a  *)
(*     stale delta base) is remapped to a caller-supplied fresh id —   *)
(*     rank-based frees select by position, so pairing still works;    *)
(*   - a free whose rank exceeds the (shrunken) live set is dropped;   *)
(*   - a repeat-dt advance with no valid previous dt is dropped.       *)
(* None of these states is reachable on an undamaged trace, so on a    *)
(* clean input this decodes the exact event stream [decode] would.     *)
(* Structural damage (bad varint, unknown subcode, non-positive size)  *)
(* still raises [Malformed]: inside a CRC-valid block it means the     *)
(* remainder of the block cannot be trusted at all.                    *)
(* ------------------------------------------------------------------ *)

type salvage_outcome =
  | S_event of Event.event
  | S_remapped of Event.event
  | S_dropped of string

let decode_salvage ctx ~fresh_id b ~limit pos : salvage_outcome =
  if !pos >= limit then malformed "event runs past block end";
  let byte0 = Char.code (Bytes.unsafe_get b !pos) in
  incr pos;
  let tag = byte0 land 3 and field = byte0 lsr 2 in
  match tag with
  | 0 | 1 ->
    let cpu = get_cpu ~field b ~limit pos in
    let id =
      if tag = 0 then ctx.prev_alloc_id + 1
      else ctx.prev_alloc_id + 1 + unzigzag (get_uvarint b ~limit pos)
    in
    let size = get_uvarint b ~limit pos in
    if size <= 0 then malformed "alloc size <= 0";
    ctx.prev_alloc_id <- id;
    if id < 0 || Live_index.mem ctx.live id then begin
      let id' = fresh_id () in
      Live_index.append ctx.live id';
      S_remapped (Event.Alloc { id = id'; size; cpu })
    end
    else begin
      Live_index.append ctx.live id;
      S_event (Event.Alloc { id; size; cpu })
    end
  | 2 ->
    let cpu = get_cpu ~field b ~limit pos in
    let rank = get_uvarint b ~limit pos in
    if rank < 0 || rank >= Live_index.length ctx.live then
      S_dropped
        (Printf.sprintf "free rank %d out of range (%d live)" rank
           (Live_index.length ctx.live))
    else S_event (Event.Free { id = Live_index.remove_select ctx.live rank; cpu })
  | _ -> (
    match field with
    | 0 ->
      let dt_ns = Int64.float_of_bits ctx.prev_dt_bits in
      if Float.is_nan dt_ns || dt_ns < 0.0 then
        S_dropped "repeated dt with no valid previous dt"
      else S_event (Event.Advance { dt_ns })
    | 1 ->
      let bits = get_fixed64 b ~limit pos in
      let dt_ns = Int64.float_of_bits bits in
      if dt_ns < 0.0 || Float.is_nan dt_ns then malformed "negative dt";
      ctx.prev_dt_bits <- bits;
      S_event (Event.Advance { dt_ns })
    | 2 -> S_event (Event.Retire { cpu = get_uvarint b ~limit pos; flush = false })
    | 3 -> S_event (Event.Retire { cpu = get_uvarint b ~limit pos; flush = true })
    | n -> malformed "unknown subcode %d" n)
