(** Capture a live {!Wsc_workload.Driver} run as a streaming trace.

    The recorder turns the driver's passive {!Wsc_workload.Driver.probe}
    callbacks into trace events, mapping volatile heap addresses to stable
    allocation ordinals (addresses are reused; ordinals are not, which is
    what makes the trace replayable against a {e different} allocator
    configuration).  Events stream straight into a {!Writer}; nothing is
    materialized.

    Unlike [Trace.synthesize_into] — which mirrors only the driver's event
    generator — a recorded run captures whatever actually happened:
    thread-count dynamics, CPU-churn retirements, fault-driven behavior. *)

module Driver = Wsc_workload.Driver
module Profile = Wsc_workload.Profile

type t

val create : Writer.t -> t
(** The recorder writes into [writer]; the caller closes it when the run
    is over. *)

val probe : t -> Driver.probe
(** Pass to {!Driver.create}'s [?probe] to capture that driver's stream. *)

val events_recorded : t -> int

val record_app :
  ?seed:int ->
  ?config:Wsc_tcmalloc.Config.t ->
  ?platform:Wsc_hw.Topology.t ->
  ?epoch_ns:float ->
  duration_ns:float ->
  writer:Writer.t ->
  Profile.t ->
  Driver.t
(** Run one application profile solo — the same CPU slice/spread scheduling
    and seed derivation as a one-job {!Wsc_fleet.Machine} — with a recorder
    attached, and return the finished driver (its allocator is reachable
    via {!Driver.backend}).  Because the probe only observes, the run is
    step-for-step identical to the same run without a recorder.  The caller
    closes [writer]. *)
