(** Degraded-mode trace reading and repair.

    {!Reader} is fail-stop: the first CRC mismatch raises and everything
    after it is abandoned.  This module reads through damage instead — it
    resynchronizes on the next valid block frame (block headers carry no
    magic, so the payload CRC is the validity oracle), decodes the
    surviving blocks leniently against the stale codec context
    ({!Codec.decode_salvage}), and returns a loss report.  The degraded-
    mode guarantee: every delivered event is semantically valid (an
    alcotest-grade stream {!Writer} will re-encode without complaint), and
    loss is always quantified, never silent.

    On an undamaged trace, salvage delivers the identical event stream the
    strict reader would, so {!repair} of a clean file is byte-identical to
    its input (the writer's flush thresholds are deterministic).

    Salvage is an offline tool and holds the file in memory (byte-level
    resync needs random access); use {!Reader} for streaming reads of
    trusted artifacts. *)

module Event = Wsc_workload.Trace

type damage = {
  d_start : int;  (** First damaged byte offset. *)
  d_end : int;  (** Offset where decoding resumed (exclusive). *)
  d_blocks : int option;
      (** Blocks lost, when the damaged frame's header could be trusted
          (its declared boundary landed on a valid frame). *)
  d_events : int option;  (** Events lost, same condition. *)
}

type report = {
  path : string;
  input_bytes : int;
  format : Reader.format;
  blocks_recovered : int;
  events_recovered : int;
  events_dropped : int;
      (** Events decoded from valid blocks but unresolvable against the
          post-damage context (free rank out of range, repeat-dt with no
          previous dt) — or, for text traces, damaged lines. *)
  remapped_allocs : int;
      (** Allocations whose id collided after a skipped block and were
          rewritten to fresh ids. *)
  events_lost : int;
      (** Events in damaged regions, summed over trusted headers; a lower
          bound when [loss_exact] is false. *)
  loss_exact : bool;
      (** Every damaged region was measured via a trusted frame header. *)
  bytes_skipped : int;
  damage : damage list;  (** Damaged byte ranges, ascending. *)
  missing_eos : bool;
      (** The file does not end with the end-of-stream marker (truncation
          or torn final write). *)
}

val clean : report -> bool
(** No damage of any kind: the input would also satisfy the strict reader. *)

val describe : report -> string
(** One human-readable summary line. *)

val scan : ?on_event:(Event.event -> unit) -> string -> report
(** Salvage-read a trace file, streaming every recovered event through
    [on_event] (in order).  Handles binary traces (block resync) and text
    traces (damaged lines dropped); a binary header with up to two damaged
    magic bytes is still recognized as binary.
    @raise Sys_error if the file cannot be read. *)

val repair : ?storage:Wsc_os.Storage.t -> src:string -> dst:string -> unit -> report
(** Salvage [src] and re-encode the recovered stream as a fresh, valid
    binary trace at [dst].  A clean [src] produces a byte-identical [dst].
    [storage] threads the output through a fault-injection shim (tests). *)
