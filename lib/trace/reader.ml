module Event = Wsc_workload.Trace

exception Corrupt of { block : int; reason : string }

let () =
  Printexc.register_printer (function
    | Corrupt { block; reason } ->
      Some (Printf.sprintf "Wsc_trace.Reader.Corrupt: block %d: %s" block reason)
    | _ -> None)

let corrupt ~block fmt =
  Printf.ksprintf (fun reason -> raise (Corrupt { block; reason })) fmt

type format = [ `Binary | `Text_v1 ]

type t = {
  ic : in_channel;
  format : format;
  mutable consumed : bool;
  mutable events_read : int;
  mutable blocks_read : int;
}

let format t = t.format
let events_read t = t.events_read
let blocks_read t = t.blocks_read

let input_byte_opt ic = try Some (input_byte ic) with End_of_file -> None

let open_file path =
  let ic = open_in_bin path in
  try
    let file_len = in_channel_length ic in
    let magic_len = String.length Codec.magic in
    let is_binary =
      file_len >= magic_len && really_input_string ic magic_len = Codec.magic
    in
    let format =
      if is_binary then begin
        if file_len < Codec.header_len then
          corrupt ~block:0 "truncated header (%d bytes)" file_len;
        let version = input_byte ic in
        if version <> Codec.version then
          corrupt ~block:0 "unsupported format version %d (expected %d)" version
            Codec.version;
        seek_in ic Codec.header_len;
        `Binary
      end
      else begin
        seek_in ic 0;
        `Text_v1
      end
    in
    { ic; format; consumed = false; events_read = 0; blocks_read = 0 }
  with e ->
    close_in_noerr ic;
    raise e

let close t = close_in_noerr t.ic

let with_file path f =
  let t = open_file path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Binary stream.                                                      *)
(* ------------------------------------------------------------------ *)

let read_uvarint ?first ic ~block ~what =
  let v = ref 0 and shift = ref 0 and n = ref 0 and fin = ref false in
  (match first with
  | Some b when b < 0x80 ->
    v := b;
    fin := true
  | Some b ->
    v := b land 0x7f;
    shift := 7;
    n := 1
  | None -> ());
  while not !fin do
    match input_byte_opt ic with
    | None -> corrupt ~block "truncated %s varint" what
    | Some byte ->
      if !n = 9 then corrupt ~block "%s varint longer than 9 bytes" what;
      incr n;
      v := !v lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte < 0x80 then fin := true
  done;
  !v

let read_fixed32 ic ~block =
  let v = ref 0 in
  for i = 0 to 3 do
    match input_byte_opt ic with
    | None -> corrupt ~block "truncated block checksum"
    | Some b -> v := !v lor (b lsl (8 * i))
  done;
  !v

let iter_binary t f =
  let ctx = Codec.context () in
  let rec loop block =
    (* EOF is only legal after the end-of-stream marker; at a frame
       boundary it means the trace was cut off between blocks. *)
    match input_byte_opt t.ic with
    | None -> corrupt ~block "truncated trace: missing end-of-stream marker"
    | Some first ->
      let len = read_uvarint ~first t.ic ~block ~what:"block length" in
      let count = read_uvarint t.ic ~block ~what:"event count" in
      let crc = read_fixed32 t.ic ~block in
      if len = 0 && count = 0 then begin
        (* End-of-stream marker; its checksum field is zero and nothing
           may follow it. *)
        if crc <> 0 then corrupt ~block "end-of-stream marker with nonzero checksum";
        match input_byte_opt t.ic with
        | Some _ -> corrupt ~block "data after end-of-stream marker"
        | None -> ()
      end
      else begin
        if len < 0 || len > Codec.max_block_bytes then
          corrupt ~block "implausible block length %d" len;
        if count <= 0 then corrupt ~block "implausible event count %d" count;
        if len = 0 then corrupt ~block "empty payload declaring %d events" count;
        let payload = Bytes.create len in
        (try really_input t.ic payload 0 len
         with End_of_file ->
           corrupt ~block "truncated block payload (%d bytes declared)" len);
        let actual = Crc32.bytes payload in
        if actual <> crc then
          corrupt ~block "CRC mismatch (stored %08lx, computed %08lx)"
            (Int32.of_int crc) (Int32.of_int actual);
        let pos = ref 0 in
        for _ = 1 to count do
          let ev =
            try Codec.decode ctx payload ~limit:len pos
            with Codec.Malformed reason -> corrupt ~block "%s" reason
          in
          t.events_read <- t.events_read + 1;
          f ev
        done;
        if !pos <> len then
          corrupt ~block "%d trailing bytes after last event" (len - !pos);
        t.blocks_read <- t.blocks_read + 1;
        loop (block + 1)
      end
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Text v1 stream: the [Wsc_workload.Trace.line_of_event] line format,  *)
(* semantically validated (live-id discipline, positive sizes) streamed. *)
(* ------------------------------------------------------------------ *)

let iter_text t f =
  let live = Hashtbl.create 1024 in
  let line_no = ref 0 in
  let bad fmt =
    Printf.ksprintf
      (fun s -> invalid_arg (Printf.sprintf "Wsc_trace.Reader: line %d: %s" !line_no s))
      fmt
  in
  try
    while true do
      let line = input_line t.ic in
      incr line_no;
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let ev = Event.parse_line ~fail:(fun () -> bad "parse error") line in
        (match ev with
        | Event.Alloc { id; size; cpu } ->
          if size <= 0 then bad "alloc size <= 0";
          if cpu < 0 then bad "negative cpu";
          if Hashtbl.mem live id then bad "id %d already live" id;
          Hashtbl.replace live id ()
        | Event.Free { id; cpu } ->
          if cpu < 0 then bad "negative cpu";
          if not (Hashtbl.mem live id) then bad "free of unknown id %d" id;
          Hashtbl.remove live id
        | Event.Advance { dt_ns } ->
          if dt_ns < 0.0 || Float.is_nan dt_ns then bad "negative dt"
        | Event.Retire { cpu; flush = _ } -> if cpu < 0 then bad "negative cpu");
        t.events_read <- t.events_read + 1;
        f ev
      end
    done
  with End_of_file -> ()

let iter t f =
  if t.consumed then invalid_arg "Wsc_trace.Reader.iter: stream already consumed";
  t.consumed <- true;
  match t.format with `Binary -> iter_binary t f | `Text_v1 -> iter_text t f

let fold t init f =
  let acc = ref init in
  iter t (fun ev -> acc := f !acc ev);
  !acc

let copy_into t w =
  iter t (Writer.add w);
  t.events_read

(* ------------------------------------------------------------------ *)
(* Verification.                                                       *)
(* ------------------------------------------------------------------ *)

type summary = {
  summary_format : format;
  events : int;
  allocations : int;
  frees : int;
  advances : int;
  retires : int;
  blocks : int;
  live_at_end : int;
  duration_ns : float;
}

let verify path =
  with_file path (fun t ->
      let allocations = ref 0
      and frees = ref 0
      and advances = ref 0
      and retires = ref 0
      and duration = ref 0.0 in
      iter t (fun ev ->
          match ev with
          | Event.Alloc _ -> incr allocations
          | Event.Free _ -> incr frees
          | Event.Advance { dt_ns } ->
            incr advances;
            duration := !duration +. dt_ns
          | Event.Retire _ -> incr retires);
      {
        summary_format = t.format;
        events = t.events_read;
        allocations = !allocations;
        frees = !frees;
        advances = !advances;
        retires = !retires;
        blocks = t.blocks_read;
        live_at_end = !allocations - !frees;
        duration_ns = !duration;
      })
