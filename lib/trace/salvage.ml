module Event = Wsc_workload.Trace

(* Degraded-mode trace reading: where {!Reader} is fail-stop (first CRC
   mismatch raises), this module resynchronizes on the next valid block
   frame after damage, decodes leniently through the stale codec context
   (see {!Codec.decode_salvage}) and quantifies the loss.  Salvage is an
   offline repair tool, so unlike the streaming reader it holds the whole
   file in memory: byte-level resync needs random access.

   Resync per damaged region scans forward one byte at a time for the
   next CRC-valid frame (or the end-of-stream marker in its legal
   position).  Block frames carry no magic, so the payload CRC is the
   only oracle; a false positive needs a 2^-32 CRC collision on
   plausibly-framed garbage.  When the damaged frame's own header
   declares exactly the boundary the scan found, the header survived the
   damage and its event count is an exact loss figure; a declared
   boundary that disagrees with the scan is not trusted.  The CRC guards
   only the payload, so a flipped header [count] over an intact payload
   is detected by decoding the (self-delimiting) payload to its end and
   reported as a measured zero-loss damaged region.  Loss is exact when
   every damaged region was measured, approximate (flagged) otherwise. *)

type damage = {
  d_start : int;
  d_end : int;
  d_blocks : int option;
  d_events : int option;
}

type report = {
  path : string;
  input_bytes : int;
  format : Reader.format;
  blocks_recovered : int;
  events_recovered : int;
  events_dropped : int;
  remapped_allocs : int;
  events_lost : int;
  loss_exact : bool;
  bytes_skipped : int;
  damage : damage list;
  missing_eos : bool;
}

let clean r =
  r.damage = [] && (not r.missing_eos) && r.events_dropped = 0
  && r.remapped_allocs = 0

let describe r =
  if clean r then
    Printf.sprintf "clean: %d events in %d blocks" r.events_recovered
      r.blocks_recovered
  else
    Printf.sprintf
      "salvaged: %d events recovered (%d blocks), %s%d lost, %d dropped, %d \
       remapped, %d damaged region%s (%d bytes)%s"
      r.events_recovered r.blocks_recovered
      (if r.loss_exact then "" else ">=")
      r.events_lost r.events_dropped r.remapped_allocs (List.length r.damage)
      (if List.length r.damage = 1 then "" else "s")
      r.bytes_skipped
      (if r.missing_eos then ", end-of-stream marker missing" else "")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

(* ------------------------------------------------------------------ *)
(* Frame parsing with plausibility bounds.                             *)
(* ------------------------------------------------------------------ *)

(* Our writer flushes at [block_flush_bytes]; one oversized event can
   overshoot by its own encoding, never by more. *)
let plaus_max_len = Codec.block_flush_bytes + 64
let plaus_max_events = Codec.block_flush_events

type frame =
  | F_eos of { next : int }
  | F_block of { body : int; len : int; count : int; crc : int; fits : bool }
      (* [body] = offset of the payload; [fits] = payload lies within the
         file.  [next] of a block is [body + len]. *)

let parse_frame data off =
  let limit = Bytes.length data in
  let pos = ref off in
  let uvarint () =
    try Some (Codec.get_uvarint data ~limit pos) with Codec.Malformed _ -> None
  in
  match uvarint () with
  | None -> None
  | Some len -> (
    match uvarint () with
    | None -> None
    | Some count ->
      if !pos + 4 > limit then None
      else begin
        let crc = ref 0 in
        for i = 0 to 3 do
          crc := !crc lor (Char.code (Bytes.unsafe_get data (!pos + i)) lsl (8 * i))
        done;
        let body = !pos + 4 in
        if len = 0 && count = 0 && !crc = 0 then Some (F_eos { next = body })
        else if len <= 0 || len > plaus_max_len || count <= 0 || count > plaus_max_events
        then None
        else
          Some (F_block { body; len; count; crc = !crc; fits = body + len <= limit })
      end)

let crc_valid data = function
  | F_block { body; len; crc; fits = true; _ } ->
    Crc32.bytes ~pos:body ~len data = crc
  | _ -> false

(* A valid resync point: a CRC-valid block, or the end-of-stream marker in
   its one legal position (the last 6 bytes of the file). *)
let valid_at data off =
  let file_len = Bytes.length data in
  match parse_frame data off with
  | Some (F_eos { next }) -> next = file_len
  | Some (F_block _ as f) -> crc_valid data f
  | None -> false

(* ------------------------------------------------------------------ *)
(* Binary scan.                                                        *)
(* ------------------------------------------------------------------ *)

let scan_binary ~on_event path data ~header_damage =
  let file_len = Bytes.length data in
  let ctx = Codec.context () in
  let max_id = ref (-1) in
  let fresh_id () =
    incr max_id;
    !max_id
  in
  let blocks = ref 0
  and events = ref 0
  and dropped = ref 0
  and remapped = ref 0 in
  let deliver ev =
    (match ev with
    | Event.Alloc { id; _ } -> if id > !max_id then max_id := id
    | _ -> ());
    incr events;
    on_event ev
  in
  let damage = ref []
  and lost = ref 0
  and skipped_bytes = ref 0
  and exact = ref true
  and missing_eos = ref false in
  let add_damage ~d_start ~d_end ~d_blocks ~d_events =
    damage := { d_start; d_end; d_blocks; d_events } :: !damage;
    skipped_bytes := !skipped_bytes + (d_end - d_start);
    match d_events with
    | Some n -> lost := !lost + n
    | None -> exact := false
  in
  (* The payload CRC does not cover the frame header, so [count] is
     advisory even on a CRC-valid block: decode the (self-delimiting)
     payload to its verified end instead of counting, and report a count
     that disagrees as a measured zero-loss damaged header. *)
  let decode_block ~frame_start ~body ~len ~count =
    let limit = body + len in
    let pos = ref body in
    let decoded = ref 0 in
    (try
       while !pos < limit do
         (match Codec.decode_salvage ctx ~fresh_id data ~limit pos with
         | Codec.S_event ev -> deliver ev
         | Codec.S_remapped ev ->
           incr remapped;
           deliver ev
         | Codec.S_dropped _ -> incr dropped);
         incr decoded
       done;
       if !decoded <> count then
         add_damage ~d_start:frame_start ~d_end:body ~d_blocks:(Some 0)
           ~d_events:(Some 0)
     with Codec.Malformed _ ->
       (* A CRC-valid payload our own writer cannot produce (a CRC
          collision on garbage): the remainder is untrustworthy, and so is
          the header's count. *)
       add_damage ~d_start:!pos ~d_end:limit ~d_blocks:None ~d_events:None);
    incr blocks
  in
  (match header_damage with
  | Some (d_start, d_end) ->
    add_damage ~d_start ~d_end ~d_blocks:(Some 0) ~d_events:(Some 0)
  | None -> ());
  let rec walk off =
    if off >= file_len then missing_eos := true
    else
      match parse_frame data off with
      | Some (F_eos { next }) when next = file_len -> ()
      | Some (F_block { body; len; count; fits = true; _ } as f)
        when crc_valid data f ->
        decode_block ~frame_start:off ~body ~len ~count;
        walk (body + len)
      | parsed -> resync off parsed
  and resync off parsed =
    (* Byte scan for the next CRC-valid frame — the one oracle.  The
       damaged frame's declared boundary is trusted (making its count an
       exact loss figure) only when it agrees with the scan; a corrupted
       length that happens to point at some later valid frame would
       otherwise swallow the intervening blocks while claiming exactness. *)
    let declared_next =
      match parsed with
      | Some (F_block { body; len; count; fits = true; _ }) ->
        Some (body + len, count)
      | _ -> None
    in
    let found = ref None in
    let cand = ref (off + 1) in
    while !found = None && !cand < file_len do
      if valid_at data !cand then found := Some !cand else incr cand
    done;
    match !found with
    | Some cand ->
      (match declared_next with
      | Some (next, count) when next = cand ->
        add_damage ~d_start:off ~d_end:cand ~d_blocks:(Some 1)
          ~d_events:(Some count)
      | _ -> add_damage ~d_start:off ~d_end:cand ~d_blocks:None ~d_events:None);
      walk cand
    | None -> (
      (* Nothing valid to the end of the file.  A header whose payload
         runs exactly to EOF (the end-of-stream marker was destroyed) or
         past it (a truncated final block) still gives an exact loss
         figure. *)
      missing_eos := true;
      match parsed with
      | Some (F_block { count; fits = false; _ }) ->
        add_damage ~d_start:off ~d_end:file_len ~d_blocks:(Some 1)
          ~d_events:(Some count)
      | _ -> (
        match declared_next with
        | Some (next, count) when next = file_len ->
          add_damage ~d_start:off ~d_end:file_len ~d_blocks:(Some 1)
            ~d_events:(Some count)
        | _ ->
          add_damage ~d_start:off ~d_end:file_len ~d_blocks:None ~d_events:None))
  in
  if file_len > Codec.header_len then walk Codec.header_len
  else missing_eos := true;
  {
    path;
    input_bytes = file_len;
    format = `Binary;
    blocks_recovered = !blocks;
    events_recovered = !events;
    events_dropped = !dropped;
    remapped_allocs = !remapped;
    events_lost = !lost;
    loss_exact = !exact;
    bytes_skipped = !skipped_bytes;
    damage = List.rev !damage;
    missing_eos = !missing_eos;
  }

(* ------------------------------------------------------------------ *)
(* Text scan: lines are self-synchronizing, so salvage just drops any    *)
(* line that fails to parse or violates live-id discipline.             *)
(* ------------------------------------------------------------------ *)

exception Bad_line

let scan_text ~on_event path data =
  let live = Hashtbl.create 1024 in
  let events = ref 0 and dropped = ref 0 in
  let handle line =
    let line = String.trim line in
    if line <> "" && line.[0] <> '#' then begin
      match
        let ev = Event.parse_line ~fail:(fun () -> raise Bad_line) line in
        (match ev with
        | Event.Alloc { id; size; cpu } ->
          if size <= 0 || cpu < 0 || Hashtbl.mem live id then raise Bad_line;
          Hashtbl.replace live id ()
        | Event.Free { id; cpu } ->
          if cpu < 0 || not (Hashtbl.mem live id) then raise Bad_line;
          Hashtbl.remove live id
        | Event.Advance { dt_ns } ->
          if dt_ns < 0.0 || Float.is_nan dt_ns then raise Bad_line
        | Event.Retire { cpu; flush = _ } -> if cpu < 0 then raise Bad_line);
        ev
      with
      | ev ->
        incr events;
        on_event ev
      | exception Bad_line -> incr dropped
    end
  in
  String.split_on_char '\n' (Bytes.to_string data) |> List.iter handle;
  {
    path;
    input_bytes = Bytes.length data;
    format = `Text_v1;
    blocks_recovered = 0;
    events_recovered = !events;
    events_dropped = !dropped;
    remapped_allocs = 0;
    events_lost = 0;
    loss_exact = true;
    bytes_skipped = 0;
    damage = [];
    missing_eos = false;
  }

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)
(* ------------------------------------------------------------------ *)

(* Format sniffing that survives a damaged header: accept the binary path
   when at least 6 of the 8 magic bytes match, recording the header bytes
   as a damaged region when the match is not exact. *)
let sniff data =
  let len = Bytes.length data in
  let magic_len = String.length Codec.magic in
  if len < magic_len then begin
    (* Too short to hold the magic.  A torn header write leaves a strict
       prefix of the magic (possibly empty), which must report as damaged
       binary — never as a clean zero-event text trace; anything else this
       short is real text content. *)
    let is_magic_prefix = ref true in
    for i = 0 to len - 1 do
      if Bytes.get data i <> Codec.magic.[i] then is_magic_prefix := false
    done;
    if !is_magic_prefix then `Binary_damaged_header else `Text
  end
  else begin
    let matches = ref 0 in
    for i = 0 to magic_len - 1 do
      if Bytes.get data i = Codec.magic.[i] then incr matches
    done;
    if !matches = magic_len then
      if len > 8 && Char.code (Bytes.get data 8) = Codec.version then `Binary
      else `Binary_damaged_header
    else if !matches >= magic_len - 2 then `Binary_damaged_header
    else `Text
  end

let scan ?(on_event = fun (_ : Event.event) -> ()) path =
  let data = read_file path in
  match sniff data with
  | `Binary -> scan_binary ~on_event path data ~header_damage:None
  | `Binary_damaged_header ->
    scan_binary ~on_event path data
      ~header_damage:(Some (0, min (Bytes.length data) Codec.header_len))
  | `Text -> scan_text ~on_event path data

let repair ?storage ~src ~dst () =
  Writer.with_file ?storage dst (fun w ->
      scan ~on_event:(fun ev -> Writer.add w ev) src)
