(** CRC-32 (IEEE 802.3), the per-block integrity check of the binary trace
    format.  Checksums are 32-bit values carried in non-negative OCaml
    ints. *)

val update : int -> bytes -> pos:int -> len:int -> int
(** [update crc b ~pos ~len] extends a running checksum over a byte range.
    Start from [0].  @raise Invalid_argument on an out-of-bounds range. *)

val bytes : ?pos:int -> ?len:int -> bytes -> int
(** One-shot checksum of a byte range (default: the whole buffer). *)

val string : string -> int
(** One-shot checksum of a string ([string "123456789" = 0xCBF43926]). *)
