open Wsc_substrate
module Event = Wsc_workload.Trace

type report = {
  events : int;
  allocations : int;
  frees : int;
  advances : int;
  retires : int;
  duration_ns : float;
  allocated_bytes : float;
  freed_bytes : float;
  live_objects_at_end : int;
  live_bytes_at_end : int;
  peak_live_bytes : int;
  peak_live_at_ns : float;
  cross_cpu_frees : int;
  interarrival : Stats.Running.t;
  size_count : Histogram.t;  (** Object sizes, weighted by count (Fig. 7a). *)
  size_bytes : Histogram.t;  (** Object sizes, weighted by bytes (Fig. 7b). *)
  lifetime_count : Histogram.t;  (** Lifetimes of freed objects (Fig. 8a). *)
  lifetime_bytes : Histogram.t;  (** Lifetimes, byte-weighted (Fig. 8b). *)
  live_curve : (float * int) list;  (** (time_ns, live_bytes), bounded. *)
}

let cross_cpu_fraction r =
  if r.frees = 0 then 0.0 else float_of_int r.cross_cpu_frees /. float_of_int r.frees

let alloc_rate_per_sec r =
  if r.duration_ns <= 0.0 then 0.0
  else float_of_int r.allocations /. (r.duration_ns /. Units.sec)

(* Bounded live-bytes series, same cap/stride-doubling discipline as the
   driver's series accumulators: when the series hits [cap] samples, every
   other one is dropped in place and the sampling stride doubles, keeping
   at most [cap] evenly spaced points however long the trace runs. *)
type series = {
  mutable samples : (float * int) list;  (* newest first *)
  mutable n : int;
  mutable stride : int;
  mutable tick : int;
  cap : int;
}

let series_add s point =
  s.tick <- s.tick + 1;
  if s.tick mod s.stride = 0 then begin
    s.samples <- point :: s.samples;
    s.n <- s.n + 1;
    if s.cap > 0 && s.n >= s.cap then begin
      let keep = ref [] and k = ref 0 in
      List.iter
        (fun p ->
          if !k mod 2 = 0 then keep := p :: !keep;
          incr k)
        (List.rev s.samples);
      s.samples <- List.rev !keep;
      s.n <- List.length s.samples;
      s.stride <- s.stride * 2
    end
  end

let scan ?(curve_cap = 512) reader =
  let live : (int, int * int * float) Hashtbl.t = Hashtbl.create 4096 in
  (* id -> (size, cpu, birth_ns) *)
  let allocations = ref 0
  and frees = ref 0
  and advances = ref 0
  and retires = ref 0 in
  let now = ref 0.0
  and allocated_bytes = ref 0.0
  and freed_bytes = ref 0.0
  and live_bytes = ref 0
  and peak_live = ref 0
  and peak_at = ref 0.0
  and cross = ref 0
  and last_alloc_at = ref nan in
  let interarrival = Stats.Running.create () in
  let size_count = Histogram.create ()
  and size_bytes = Histogram.create ()
  and lifetime_count = Histogram.create ()
  and lifetime_bytes = Histogram.create () in
  let curve = { samples = []; n = 0; stride = 1; tick = 0; cap = curve_cap } in
  Reader.iter reader (fun ev ->
      match ev with
      | Event.Alloc { id; size; cpu } ->
        incr allocations;
        allocated_bytes := !allocated_bytes +. float_of_int size;
        live_bytes := !live_bytes + size;
        if !live_bytes > !peak_live then begin
          peak_live := !live_bytes;
          peak_at := !now
        end;
        Hashtbl.replace live id (size, cpu, !now);
        let fsize = float_of_int size in
        let bin = Histogram.bin_index size_count fsize in
        Histogram.add_at size_count bin ~weight:1.0;
        Histogram.add_at size_bytes bin ~weight:fsize;
        if not (Float.is_nan !last_alloc_at) then
          Stats.Running.add interarrival (!now -. !last_alloc_at);
        last_alloc_at := !now
      | Event.Free { id; cpu } ->
        incr frees;
        let size, birth_cpu, birth_ns =
          match Hashtbl.find_opt live id with
          | Some entry -> entry
          | None -> invalid_arg "Wsc_trace.Analyzer: free of unknown id"
        in
        Hashtbl.remove live id;
        live_bytes := !live_bytes - size;
        freed_bytes := !freed_bytes +. float_of_int size;
        if cpu <> birth_cpu then incr cross;
        let lifetime = !now -. birth_ns in
        let bin = Histogram.bin_index lifetime_count lifetime in
        Histogram.add_at lifetime_count bin ~weight:1.0;
        Histogram.add_at lifetime_bytes bin ~weight:(float_of_int size)
      | Event.Advance { dt_ns } ->
        incr advances;
        now := !now +. dt_ns;
        series_add curve (!now, !live_bytes)
      | Event.Retire _ -> incr retires);
  {
    events = !allocations + !frees + !advances + !retires;
    allocations = !allocations;
    frees = !frees;
    advances = !advances;
    retires = !retires;
    duration_ns = !now;
    allocated_bytes = !allocated_bytes;
    freed_bytes = !freed_bytes;
    live_objects_at_end = Hashtbl.length live;
    live_bytes_at_end = !live_bytes;
    peak_live_bytes = !peak_live;
    peak_live_at_ns = !peak_at;
    cross_cpu_frees = !cross;
    interarrival;
    size_count;
    size_bytes;
    lifetime_count;
    lifetime_bytes;
    live_curve = List.rev curve.samples;
  }

let scan_file ?curve_cap path =
  Reader.with_file path (fun reader -> scan ?curve_cap reader)

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)
(* ------------------------------------------------------------------ *)

let quantiles = [ 0.5; 0.9; 0.99; 0.999 ]

let summary_table r =
  let t = Table.create ~title:"Trace summary" ~columns:[ "metric"; "value" ] in
  let row k v = Table.add_row t [ k; v ] in
  row "events" (string_of_int r.events);
  row "allocations" (string_of_int r.allocations);
  row "frees" (string_of_int r.frees);
  row "advances" (string_of_int r.advances);
  row "retires" (string_of_int r.retires);
  row "duration" (Table.cell_duration r.duration_ns);
  row "allocated" (Table.cell_bytes (int_of_float r.allocated_bytes));
  row "alloc rate" (Printf.sprintf "%.0f/s" (alloc_rate_per_sec r));
  row "mean inter-arrival"
    (Table.cell_duration
       (if Stats.Running.count r.interarrival = 0 then 0.0
        else Stats.Running.mean r.interarrival));
  row "live at end"
    (Printf.sprintf "%d obj / %s" r.live_objects_at_end
       (Table.cell_bytes r.live_bytes_at_end));
  row "peak live"
    (Printf.sprintf "%s @ %s" (Table.cell_bytes r.peak_live_bytes)
       (Table.cell_duration r.peak_live_at_ns));
  row "cross-CPU frees"
    (Printf.sprintf "%d (%s)" r.cross_cpu_frees (Table.cell_pct (100.0 *. cross_cpu_fraction r)));
  t

let cdf_table ~title ~pp hist_count hist_bytes =
  let t = Table.create ~title ~columns:[ "quantile"; "by count"; "by bytes" ] in
  List.iter
    (fun q ->
      Table.add_row t
        [
          Printf.sprintf "p%g" (q *. 100.0);
          (if Histogram.count hist_count = 0 then "-" else pp (Histogram.quantile hist_count q));
          (if Histogram.count hist_bytes = 0 then "-" else pp (Histogram.quantile hist_bytes q));
        ])
    quantiles;
  t

let live_curve_table ?(rows = 12) r =
  let t =
    Table.create ~title:"Live bytes over time" ~columns:[ "time"; "live bytes" ]
  in
  let curve = Array.of_list r.live_curve in
  let n = Array.length curve in
  if n > 0 then begin
    let rows = min rows n in
    for i = 0 to rows - 1 do
      let at, bytes = curve.(i * (n - 1) / max 1 (rows - 1)) in
      Table.add_row t [ Table.cell_duration at; Table.cell_bytes bytes ]
    done
  end;
  t

let render r =
  String.concat "\n"
    [
      Table.render (summary_table r);
      Table.render
        (cdf_table ~title:"Object size CDF (Fig. 7)"
           ~pp:(fun v -> Table.cell_bytes (int_of_float v))
           r.size_count r.size_bytes);
      Table.render
        (cdf_table ~title:"Object lifetime CDF (Fig. 8)" ~pp:Table.cell_duration
           r.lifetime_count r.lifetime_bytes);
      Table.render (live_curve_table r);
    ]
