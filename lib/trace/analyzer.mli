(** One-pass streaming trace analysis.

    Computes, in a single pass over a {!Reader} and in memory proportional
    to the live set (never the trace length):

    - object-size CDFs by count and by bytes (the Fig. 7 views);
    - lifetime CDFs of freed objects, by count and by bytes (Fig. 8);
    - allocation inter-arrival statistics and rate;
    - the cross-CPU-free fraction (frees issued on a different CPU than
      the allocation — the transfer-cache traffic driver);
    - the live-bytes curve (bounded, stride-doubling samples) and its
      peak. *)

open Wsc_substrate

type report = {
  events : int;
  allocations : int;
  frees : int;
  advances : int;
  retires : int;
  duration_ns : float;
  allocated_bytes : float;
  freed_bytes : float;
  live_objects_at_end : int;
  live_bytes_at_end : int;
  peak_live_bytes : int;
  peak_live_at_ns : float;
  cross_cpu_frees : int;
  interarrival : Stats.Running.t;
      (** Simulated time between consecutive allocations. *)
  size_count : Histogram.t;  (** Object sizes, weighted by count (Fig. 7a). *)
  size_bytes : Histogram.t;  (** Object sizes, weighted by bytes (Fig. 7b). *)
  lifetime_count : Histogram.t;  (** Lifetimes of freed objects (Fig. 8a). *)
  lifetime_bytes : Histogram.t;  (** Lifetimes, byte-weighted (Fig. 8b). *)
  live_curve : (float * int) list;
      (** [(time_ns, live_bytes)] at bounded, evenly spaced points. *)
}

val cross_cpu_fraction : report -> float
val alloc_rate_per_sec : report -> float

val scan : ?curve_cap:int -> Reader.t -> report
(** Stream the reader (consuming it) into a report.  [curve_cap] bounds
    the live-curve sample count (default 512; [0] keeps every epoch). *)

val scan_file : ?curve_cap:int -> string -> report

val render : report -> string
(** The report as aligned ASCII tables: summary, size CDF, lifetime CDF,
    live-bytes curve. *)
