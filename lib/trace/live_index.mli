(** Order-statistic index over the live-object set.

    The binary codec encodes a free not by its object id (large, effectively
    random) but by the object's {e recency rank}: how many currently-live
    objects were allocated after it.  Short-lived objects — the vast
    majority, per Fig. 8 — have tiny ranks, which varint-encode in one or
    two bytes.  Encoder and decoder each maintain one of these structures in
    lockstep; both sides apply allocations and frees in stream order, so the
    rank written by one side is decoded to the same id by the other.

    All operations are O(log live); memory is O(live set), independent of
    trace length (dead slots are compacted away). *)

type t

val create : unit -> t
val length : t -> int
(** Number of live objects. *)

val mem : t -> int -> bool
(** Is this id currently live? *)

val append : t -> int -> unit
(** Record an allocation (the id becomes the most recent live object).
    @raise Invalid_argument if the id is already live. *)

val remove_rank : t -> int -> int
(** Encoder side: remove a live id and return its recency rank — 0 for the
    most recently allocated live object.  @raise Invalid_argument if the id
    is not live. *)

val remove_select : t -> int -> int
(** Decoder side: remove and return the id at the given recency rank.
    @raise Invalid_argument if the rank is out of range. *)
