module Event = Wsc_workload.Trace

(* The writer pushes bytes through a sink so the same encode path can feed
   a plain channel or a fault-injecting Wsc_os.Storage shim. *)
type sink = { write : bytes -> int -> int -> unit; close_sink : unit -> unit }

type t = {
  sink : sink;
  payload : Buffer.t;  (* current block, encoded events *)
  frame : Buffer.t;  (* scratch for the block frame *)
  ctx : Codec.context;
  mutable block_events : int;
  mutable blocks : int;
  mutable events : int;
  mutable bytes : int;
  mutable closed : bool;
}

let to_sink sink =
  let header = Codec.header () in
  sink.write header 0 (Bytes.length header);
  {
    sink;
    payload = Buffer.create Codec.block_flush_bytes;
    frame = Buffer.create 32;
    ctx = Codec.context ();
    block_events = 0;
    blocks = 0;
    events = 0;
    bytes = Bytes.length header;
    closed = false;
  }

let to_channel oc =
  to_sink
    {
      write = (fun b pos len -> Stdlib.output oc b pos len);
      close_sink = (fun () -> close_out oc);
    }

let to_file ?storage path =
  match storage with
  | None -> to_channel (open_out_bin path)
  | Some st ->
      let soc = Wsc_os.Storage.open_out st path in
      to_sink
        {
          write = (fun b pos len -> Wsc_os.Storage.output soc b pos len);
          close_sink = (fun () -> Wsc_os.Storage.close soc);
        }

let events_written t = t.events
let blocks_written t = t.blocks
let bytes_written t = t.bytes
let live_objects t = Codec.live_length t.ctx

(* Frame layout: uvarint payload length, uvarint event count, 4-byte LE
   CRC-32 of the payload, then the payload itself. *)
let write_frame t ~len ~count ~crc payload =
  Buffer.clear t.frame;
  Codec.put_uvarint t.frame len;
  Codec.put_uvarint t.frame count;
  for i = 0 to 3 do
    Buffer.add_char t.frame (Char.unsafe_chr ((crc lsr (8 * i)) land 0xff))
  done;
  let hdr = Buffer.to_bytes t.frame in
  t.sink.write hdr 0 (Bytes.length hdr);
  t.sink.write payload 0 (Bytes.length payload);
  t.bytes <- t.bytes + Bytes.length hdr + Bytes.length payload

let flush_block t =
  if t.block_events > 0 then begin
    let payload = Buffer.to_bytes t.payload in
    write_frame t ~len:(Bytes.length payload) ~count:t.block_events
      ~crc:(Crc32.bytes payload) payload;
    t.blocks <- t.blocks + 1;
    t.block_events <- 0;
    Buffer.clear t.payload;
    Codec.new_block t.ctx
  end

let add t ev =
  if t.closed then invalid_arg "Wsc_trace.Writer.add: writer is closed";
  Codec.encode t.ctx t.payload ev;
  t.block_events <- t.block_events + 1;
  t.events <- t.events + 1;
  if
    t.block_events >= Codec.block_flush_events
    || Buffer.length t.payload >= Codec.block_flush_bytes
  then flush_block t

let close t =
  if not t.closed then begin
    t.closed <- true;
    flush_block t;
    (* End-of-stream marker: an empty block.  Its absence is how the
       reader distinguishes truncation from a clean end. *)
    write_frame t ~len:0 ~count:0 ~crc:0 Bytes.empty;
    t.sink.close_sink ()
  end

let with_file ?storage path f =
  let t = to_file ?storage path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
