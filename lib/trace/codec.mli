(** Binary trace codec (format v2).

    A binary trace is a 16-byte header followed by length-prefixed blocks,
    each carrying its event count and a CRC-32 of its payload, terminated
    by an explicit end-of-stream marker (an empty block).  Framing lives in
    {!Writer} and {!Reader}; this module holds the shared constants and the
    per-event encode/decode state machine.

    Events are delta-encoded against a mutable {!context}: allocation ids
    against the previous allocation (sequential ids cost zero id bytes),
    frees as the freed object's recency rank in the live set (small for the
    mostly-die-young fleet profile, via {!Live_index}), clock advances
    against the previous step width (a repeat costs one byte).  The context
    persists {e across} blocks — a block is an integrity boundary, not a
    decode restart point. *)

module Event = Wsc_workload.Trace

exception Malformed of string
(** Raised by {!decode} and the varint readers on structurally or
    semantically invalid input.  {!Reader} wraps it with the block index. *)

(** {1 Format constants} *)

val magic : string
(** ["WSCTRACE"] — first 8 bytes of a binary trace. *)

val version : int
val header_len : int

val max_block_bytes : int
(** Upper bound on a declared block payload length; anything larger is
    treated as corruption. *)

val block_flush_events : int
val block_flush_bytes : int
(** Writer flush thresholds: a block is sealed after this many events or
    payload bytes, whichever comes first. *)

val header : unit -> bytes
(** A fresh 16-byte file header. *)

(** {1 Primitives} *)

val put_uvarint : Buffer.t -> int -> unit
(** LEB128.  Negative ints are emitted as their 63-bit two's-complement
    bit pattern (9 bytes); [get_uvarint] restores them exactly. *)

val get_uvarint : bytes -> limit:int -> int ref -> int

val zigzag : int -> int
val unzigzag : int -> int
(** Bijective on the full 63-bit int range, including overflow cases. *)

(** {1 Event codec} *)

type context
(** Shared encoder/decoder state: previous allocation id, previous dt bits,
    and the live-object order-statistic index. *)

val context : unit -> context

val new_block : context -> unit
(** Encoder-side block-boundary hook: the first [Advance] of every block
    is encoded with an explicit dt even when it repeats the previous one,
    so each block re-anchors the step width and a salvage resync never
    loses [Advance] events beyond the damaged block itself.  Decoding is
    unaffected. *)

val live_length : context -> int
(** Number of currently-live objects in the context's live set. *)

val encode : context -> Buffer.t -> Event.event -> unit
(** Append one event to a block payload.  Enforces semantic validity so
    that written traces are well-formed by construction.
    @raise Invalid_argument on a non-positive size, negative cpu, negative
    or NaN dt, an allocation of an already-live id, or a free of an id
    that is not live. *)

val decode : context -> bytes -> limit:int -> int ref -> Event.event
(** Decode one event from a block payload, advancing [pos].
    @raise Malformed on truncated or invalid input. *)

(** {1 Salvage decode}

    Because the context spans blocks, skipping a damaged block leaves it
    stale for every block after the damage.  {!decode_salvage} decodes
    through that staleness without ever emitting a semantically invalid
    event; on an undamaged stream it yields exactly what {!decode} would
    (the lenient branches are unreachable then). *)

type salvage_outcome =
  | S_event of Event.event  (** Decoded exactly as strict {!decode} would. *)
  | S_remapped of Event.event
      (** An alloc whose decoded id collided with a live object (or went
          negative) after a skipped block; the event carries a fresh
          substitute id.  Rank-based frees pair by live-set position, so
          later frees of this object still resolve. *)
  | S_dropped of string
      (** An event that cannot be resolved against the stale context (free
          rank out of range, repeat-dt with no valid previous dt); the
          reason is human-readable. *)

val decode_salvage :
  context -> fresh_id:(unit -> int) -> bytes -> limit:int -> int ref ->
  salvage_outcome
(** Lenient {!decode}.  [fresh_id] must return an id that is neither live
    nor previously issued (the salvage reader tracks the max id seen).
    @raise Malformed on structural damage — the remainder of the block is
    then untrustworthy and should be dropped. *)
