(* Order-statistic index over the live-object set, in allocation order.

   Both codec sides keep one of these in lockstep: the encoder turns a
   freed id into its recency rank (how many live objects were allocated
   after it), the decoder turns that rank back into the id.  Because most
   objects die young (Fig. 8), recency ranks are small and varint-encode in
   1-2 bytes where raw ids need 3-4 — the single biggest win of the binary
   format.

   Representation: an append-only slot array in allocation order, a
   liveness Fenwick tree over the slots for O(log n) rank/select, and an
   id -> slot table.  Dead slots are tombstones; when the array fills and
   at least half the slots are dead, the live slots are compacted in place
   of growing, so memory stays proportional to the live set, not the trace
   length. *)

type t = {
  mutable ids : int array;  (* slot -> id, in allocation order *)
  mutable live : Bytes.t;  (* slot -> 0/1 *)
  mutable fenwick : int array;  (* 1-indexed liveness counts *)
  mutable cap : int;  (* power of two *)
  mutable n_slots : int;  (* next append position *)
  mutable n_live : int;
  pos_of_id : (int, int) Hashtbl.t;
}

let create () =
  let cap = 1024 in
  {
    ids = Array.make cap 0;
    live = Bytes.make cap '\000';
    fenwick = Array.make (cap + 1) 0;
    cap;
    n_slots = 0;
    n_live = 0;
    pos_of_id = Hashtbl.create 1024;
  }

let length t = t.n_live
let mem t id = Hashtbl.mem t.pos_of_id id

(* Fenwick primitives, 1-indexed over [1 .. cap]. *)

let fenwick_add t i delta =
  let i = ref i in
  while !i <= t.cap do
    t.fenwick.(!i) <- t.fenwick.(!i) + delta;
    i := !i + (!i land - !i)
  done

let fenwick_prefix t i =
  let i = ref i and s = ref 0 in
  while !i > 0 do
    s := !s + t.fenwick.(!i);
    i := !i - (!i land - !i)
  done;
  !s

(* Smallest 1-indexed position whose prefix sum reaches [target]
   (binary lifting; [cap] is a power of two). *)
let fenwick_select t target =
  let pos = ref 0 and rem = ref target and step = ref t.cap in
  while !step > 0 do
    let next = !pos + !step in
    if next <= t.cap && t.fenwick.(next) < !rem then begin
      pos := next;
      rem := !rem - t.fenwick.(next)
    end;
    step := !step / 2
  done;
  !pos + 1

(* Rebuild with the live slots only, into [new_cap] slots. *)
let rebuild t new_cap =
  let ids = Array.make new_cap 0 in
  let live = Bytes.make new_cap '\000' in
  let fenwick = Array.make (new_cap + 1) 0 in
  let k = ref 0 in
  for slot = 0 to t.n_slots - 1 do
    if Bytes.unsafe_get t.live slot = '\001' then begin
      ids.(!k) <- t.ids.(slot);
      Bytes.unsafe_set live !k '\001';
      Hashtbl.replace t.pos_of_id t.ids.(slot) !k;
      incr k
    end
  done;
  t.ids <- ids;
  t.live <- live;
  t.fenwick <- fenwick;
  t.cap <- new_cap;
  t.n_slots <- !k;
  for slot = 0 to !k - 1 do
    fenwick_add t (slot + 1) 1
  done

let append t id =
  if Hashtbl.mem t.pos_of_id id then invalid_arg "Live_index.append: id already live";
  if t.n_slots = t.cap then
    if 2 * t.n_live <= t.cap then rebuild t t.cap else rebuild t (2 * t.cap);
  let slot = t.n_slots in
  t.ids.(slot) <- id;
  Bytes.unsafe_set t.live slot '\001';
  fenwick_add t (slot + 1) 1;
  Hashtbl.replace t.pos_of_id id slot;
  t.n_slots <- slot + 1;
  t.n_live <- t.n_live + 1

let remove_slot t slot =
  Bytes.unsafe_set t.live slot '\000';
  fenwick_add t (slot + 1) (-1);
  Hashtbl.remove t.pos_of_id t.ids.(slot);
  t.n_live <- t.n_live - 1

let remove_rank t id =
  match Hashtbl.find_opt t.pos_of_id id with
  | None -> invalid_arg "Live_index.remove_rank: id not live"
  | Some slot ->
    let rank_from_end = t.n_live - fenwick_prefix t (slot + 1) in
    remove_slot t slot;
    rank_from_end

let remove_select t k =
  if k < 0 || k >= t.n_live then invalid_arg "Live_index.remove_select: rank out of range";
  let slot = fenwick_select t (t.n_live - k) - 1 in
  let id = t.ids.(slot) in
  remove_slot t slot;
  id
