open Wsc_substrate
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Telemetry = Wsc_tcmalloc.Telemetry
module Event = Wsc_workload.Trace

type result = {
  allocations : int;
  frees : int;
  retires : int;
  peak_rss_bytes : int;
  final_stats : Malloc.heap_stats;
  malloc_ns : float;
}

(* Replay a recorded event stream against a fresh allocator, fed from a streaming
   reader: memory is the live-object address map plus one block. *)
let run_events ?(config = Wsc_tcmalloc.Config.baseline)
    ?(topology = Wsc_hw.Topology.default) iter =
  let clock = Clock.create () in
  let backend = Backend.create ~config ~topology ~clock () in
  let num_cpus = Wsc_hw.Topology.num_cpus topology in
  let addr_of_id = Hashtbl.create 4096 in
  let peak = ref 0 in
  let allocations = ref 0 and frees = ref 0 and retires = ref 0 in
  iter (fun ev ->
      match ev with
      | Event.Alloc { id; size; cpu } ->
        let addr = Backend.malloc backend ~cpu:(cpu mod num_cpus) ~size in
        Hashtbl.replace addr_of_id id (addr, size);
        incr allocations
      | Event.Free { id; cpu } ->
        let addr, size =
          match Hashtbl.find_opt addr_of_id id with
          | Some entry -> entry
          | None -> invalid_arg "Wsc_trace.Replay: free of unknown id"
        in
        Hashtbl.remove addr_of_id id;
        Backend.free backend ~cpu:(cpu mod num_cpus) addr ~size;
        incr frees
      | Event.Advance { dt_ns } ->
        Clock.advance clock dt_ns;
        let rss = (Backend.heap_stats backend).Malloc.resident_bytes in
        if rss > !peak then peak := rss
      | Event.Retire { cpu; flush } ->
        Backend.cpu_idle ~flush backend ~cpu:(cpu mod num_cpus);
        incr retires);
  {
    allocations = !allocations;
    frees = !frees;
    retires = !retires;
    peak_rss_bytes = !peak;
    final_stats = Backend.heap_stats backend;
    malloc_ns = Telemetry.total_malloc_ns (Backend.telemetry backend);
  }

let run ?config ?topology reader =
  run_events ?config ?topology (fun f -> Reader.iter reader f)

let run_file ?config ?topology path =
  Reader.with_file path (fun reader -> run ?config ?topology reader)

(* Degraded-mode replay: feed the allocator from the salvage scanner
   instead of the strict reader, so a damaged trace replays its surviving
   events (salvage guarantees they are semantically valid) and the loss is
   returned alongside the result instead of raising. *)
let run_salvage ?config ?topology path =
  let report = ref None in
  let res =
    run_events ?config ?topology (fun f ->
        report := Some (Salvage.scan ~on_event:f path))
  in
  match !report with Some rep -> (res, rep) | None -> assert false

(* One replay per configuration, fanned over the domain pool.  Each arm
   opens its own reader, so the trace file is the only shared state and
   every arm sees the identical event stream; [Parallel.map_list]
   preserves order, so output is deterministic regardless of [jobs]. *)
let run_configs ?jobs ?topology ~configs path =
  Parallel.map_list ?jobs
    (fun (name, config) -> (name, run_file ~config ?topology path))
    configs

(* Preloaded replay: decode the trace once into an immutable event array
   and share it read-only across arms.  Events are immutable records, so
   cross-domain sharing is safe, and iteration order is the array order —
   identical to the streaming reader — so results match [run_file] bit for
   bit.  This is what a tune generation wants: a 50-candidate fan-out pays
   one decode (and zero Dist guide-table builds) instead of 50 decodes. *)
let preload path =
  let cap = ref 4096 in
  let buf = ref (Array.make !cap (Event.Advance { dt_ns = 0.0 })) in
  let len = ref 0 in
  Reader.with_file path (fun reader ->
      Reader.iter reader (fun ev ->
          if !len = !cap then begin
            cap := 2 * !cap;
            let grown = Array.make !cap (Event.Advance { dt_ns = 0.0 }) in
            Array.blit !buf 0 grown 0 !len;
            buf := grown
          end;
          !buf.(!len) <- ev;
          incr len));
  Array.sub !buf 0 !len

let run_preloaded ?config ?topology events =
  run_events ?config ?topology (fun f -> Array.iter f events)

let run_configs_preloaded ?jobs ?topology ~configs events =
  Parallel.map_list ?jobs
    (fun (name, config) -> (name, run_preloaded ~config ?topology events))
    configs
