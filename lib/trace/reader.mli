(** Streaming trace source.

    Reads both trace formats, detected from the file's first bytes:

    - {b binary v2} (written by {!Writer}): header + CRC-checked blocks.
      Any damage — a flipped bit, a truncated tail, a missing end-of-stream
      marker, garbage past the end — raises {!Corrupt} carrying the index
      of the offending block.
    - {b text v1} (the [Wsc_workload.Trace.line_of_event] line format):
      streamed line by line with full semantic validation (live-id
      discipline, positive sizes);
      errors raise [Invalid_argument] with the line number.

    Either way, memory use is one block (or line) plus the live-set index —
    independent of trace length. *)

module Event = Wsc_workload.Trace

exception Corrupt of { block : int; reason : string }
(** A binary trace failed an integrity check.  [block] is the 0-based index
    of the block where the damage was detected. *)

type format = [ `Binary | `Text_v1 ]
type t

val open_file : string -> t
(** Detect the format and position the stream at the first event.
    @raise Corrupt if the file has a binary magic but a damaged or
    unsupported header. *)

val close : t -> unit
val with_file : string -> (t -> 'a) -> 'a

val format : t -> format

val iter : t -> (Event.event -> unit) -> unit
(** Stream every event through the callback, in order.  Single-shot: a
    reader can be iterated once.
    @raise Corrupt (binary) or [Invalid_argument] (text) on damaged input;
    events already delivered before the damage point stand. *)

val fold : t -> 'a -> ('a -> Event.event -> 'a) -> 'a

val copy_into : t -> Writer.t -> int
(** Stream this reader into a binary writer (format conversion / re-encode);
    returns the number of events copied.  The caller closes the writer. *)

val events_read : t -> int
val blocks_read : t -> int
(** Events / binary blocks delivered so far (useful after [iter]). *)

(** {1 Verification} *)

type summary = {
  summary_format : format;
  events : int;
  allocations : int;
  frees : int;
  advances : int;
  retires : int;
  blocks : int;  (** Binary blocks ([0] for text traces). *)
  live_at_end : int;  (** Objects allocated but never freed. *)
  duration_ns : float;  (** Sum of all [Advance] steps. *)
}

val verify : string -> summary
(** Fully stream a trace, checking structure, checksums and semantic
    validity, without building anything but counters.
    @raise Corrupt or [Invalid_argument] as {!iter} does. *)
