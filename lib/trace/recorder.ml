open Wsc_substrate
module Topology = Wsc_hw.Topology
module Sched = Wsc_os.Sched
module Malloc = Wsc_tcmalloc.Malloc
module Config = Wsc_tcmalloc.Config
module Driver = Wsc_workload.Driver
module Profile = Wsc_workload.Profile
module Threads = Wsc_workload.Threads
module Event = Wsc_workload.Trace

type t = {
  writer : Writer.t;
  (* Unboxed int->int table: the recorder probe runs on every simulated
     alloc/free, and a boxed Hashtbl here allocated on each replace. *)
  id_of_addr : Int_table.t;
  mutable next_id : int;
}

let create writer =
  { writer; id_of_addr = Int_table.create ~initial_capacity:4096 (); next_id = 0 }
let events_recorded t = Writer.events_written t.writer

(* Addresses are reused by the allocator; ordinals are not, which is what
   makes the trace replayable against any allocator configuration.  An
   address maps to the id of its *current* live object: set on alloc,
   cleared on free, so reuse is unambiguous. *)
let probe t : Driver.probe =
  {
    on_alloc =
      (fun ~addr ~size ~cpu ->
        let id = t.next_id in
        t.next_id <- id + 1;
        Int_table.set t.id_of_addr addr id;
        Writer.add t.writer (Event.Alloc { id; size; cpu }));
    on_free =
      (fun ~addr ~cpu ->
        let id = Int_table.find t.id_of_addr addr ~default:(-1) in
        if id >= 0 then begin
          Int_table.remove t.id_of_addr addr;
          Writer.add t.writer (Event.Free { id; cpu })
        end
        else
          invalid_arg
            (Printf.sprintf "Wsc_trace.Recorder: free of unrecorded address %#x" addr));
    on_advance = (fun ~dt_ns -> Writer.add t.writer (Event.Advance { dt_ns }));
    on_retire =
      (fun ~cpu ~flush -> Writer.add t.writer (Event.Retire { cpu; flush }));
  }

(* Mirror of [Wsc_fleet.Machine]'s solo-job stack (same scheduler choice,
   same seed derivation), so a recorded run is step-for-step identical to
   running the same app on a one-job machine — the probe only observes. *)
let record_app ?(seed = 1) ?(config = Config.baseline)
    ?(platform = Topology.default) ?(epoch_ns = Units.ms) ~duration_ns ~writer
    profile =
  let clock = Clock.create () in
  let cpus = min (Topology.num_cpus platform) profile.Profile.threads.Threads.max_threads in
  let domains = max 1 (min 4 (cpus / 4)) in
  let sched =
    if domains > 1 && Topology.num_domains platform > 1 then
      Sched.spread platform ~first_cpu:0 ~cpus ~domains
    else Sched.slice platform ~first_cpu:0 ~cpus
  in
  let backend = Wsc_backend.Backend.create ~config ~topology:platform ~clock () in
  let recorder = create writer in
  let driver =
    Driver.create ~seed ~probe:(probe recorder) ~profile ~sched ~backend ~clock ()
  in
  Driver.run driver ~duration_ns ~epoch_ns;
  driver
