(** Streaming binary trace sink.

    Writes the binary v2 format: a {!Codec.header}, then length-prefixed
    blocks of varint/delta-encoded events — each block carrying its event
    count and a CRC-32 of its payload — terminated by an explicit empty
    end-of-stream block.  Memory use is one block buffer plus the live-set
    index, independent of trace length.

    Events are validated as they are added (see {!Codec.encode}), so a
    written trace is well-formed by construction. *)

module Event = Wsc_workload.Trace

type t

val to_file : ?storage:Wsc_os.Storage.t -> string -> t
(** Open a file and write the header.  The file is invalid (truncated)
    until {!close} seals it.  With [storage], every byte goes through the
    fault-injecting shim — a no-fault shim produces a bit-identical file —
    so seeded storage chaos (bit flips, torn writes, truncation) lands at
    reproducible offsets for the salvage layer to chew on. *)

val to_channel : out_channel -> t
(** Same, over an existing binary channel; {!close} closes the channel. *)

val add : t -> Event.event -> unit
(** Append one event, flushing a block when it reaches the size/count
    thresholds.  @raise Invalid_argument on a semantically invalid event
    or a closed writer. *)

val close : t -> unit
(** Flush the open block, write the end-of-stream marker and close the
    underlying channel.  Idempotent. *)

val with_file : ?storage:Wsc_os.Storage.t -> string -> (t -> 'a) -> 'a
(** [with_file path f] runs [f] over a fresh writer, closing it on all
    exits. *)

val events_written : t -> int
val blocks_written : t -> int

val bytes_written : t -> int
(** Bytes emitted so far, including the header and sealed block frames
    (the open block's buffered payload is not counted until it flushes). *)

val live_objects : t -> int
(** Objects allocated but not yet freed in the stream written so far. *)
