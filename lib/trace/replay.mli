(** Streaming trace replay.

    Feeds a trace into a fresh allocator event by event, never
    materializing the stream: memory use is the live-object address map
    plus one I/O block, so million-event traces replay in constant memory.

    Replaying one trace under several configurations isolates the
    allocator's contribution exactly — every arm sees the identical
    allocation stream (the paper's paired-experiment methodology, minus
    workload noise). *)

type result = {
  allocations : int;
  frees : int;
  retires : int;
  peak_rss_bytes : int;
  final_stats : Wsc_tcmalloc.Malloc.heap_stats;
  malloc_ns : float;  (** Modeled allocator CPU time consumed. *)
}

val run :
  ?config:Wsc_tcmalloc.Config.t ->
  ?topology:Wsc_hw.Topology.t ->
  Reader.t ->
  result
(** Stream the reader into a fresh allocator.  Consumes the reader.
    Event cpus are folded onto the topology ([cpu mod num_cpus]), and
    [Retire] events re-issue the recorded {!Wsc_backend.Backend.cpu_idle}
    calls, so a recorded run replays to the allocator state of the
    original. *)

val run_file :
  ?config:Wsc_tcmalloc.Config.t ->
  ?topology:Wsc_hw.Topology.t ->
  string ->
  result

val run_salvage :
  ?config:Wsc_tcmalloc.Config.t ->
  ?topology:Wsc_hw.Topology.t ->
  string ->
  result * Salvage.report
(** Degraded-mode replay: feed the allocator from {!Salvage.scan} instead
    of the strict reader, so a damaged trace replays its surviving events
    and returns the quantified loss instead of raising {!Reader.Corrupt}.
    On a clean trace the result equals {!run_file}'s. *)

val run_configs :
  ?jobs:int ->
  ?topology:Wsc_hw.Topology.t ->
  configs:(string * Wsc_tcmalloc.Config.t) list ->
  string ->
  (string * result) list
(** Replay one trace file under each named configuration, fanned across
    the {!Wsc_substrate.Parallel} domain pool.  Each arm opens the file
    independently and results preserve input order, so the output is
    bit-identical whatever [jobs] is. *)

val preload : string -> Wsc_workload.Trace.event array
(** Decode a trace file once into an immutable in-memory event array.
    Events are immutable records, safe to share read-only across domains.
    @raise Reader.Corrupt as {!run_file} would. *)

val run_preloaded :
  ?config:Wsc_tcmalloc.Config.t ->
  ?topology:Wsc_hw.Topology.t ->
  Wsc_workload.Trace.event array ->
  result
(** Replay a preloaded event array.  Bit-identical to {!run_file} on the
    file the array was preloaded from. *)

val run_configs_preloaded :
  ?jobs:int ->
  ?topology:Wsc_hw.Topology.t ->
  configs:(string * Wsc_tcmalloc.Config.t) list ->
  Wsc_workload.Trace.event array ->
  (string * result) list
(** {!run_configs} over a preloaded array: the repeated-evaluation path
    for search loops — one decode (and zero {!Wsc_substrate.Dist} table
    builds) however many arms are fanned out. *)
