open Wsc_substrate

type addr = int
type run = { base : addr; hugepages : int }
type t = {
  vm : Wsc_os.Vm.t;
  mutable runs : run list;
  mutable cached : int;
  mutable low_watermark : int;  (* fewest cached hugepages since last release *)
}

let create vm = { vm; runs = []; cached = 0; low_watermark = 0 }

type grant = { base : addr; fresh : bool }

let allocate t ~hugepages =
  if hugepages <= 0 then invalid_arg "Hugepage_cache.allocate: need positive count";
  let rec take acc = function
    | [] -> None
    | run :: rest when run.hugepages >= hugepages ->
      let leftover =
        if run.hugepages = hugepages then []
        else
          [ { base = run.base + (hugepages * Units.hugepage_size);
              hugepages = run.hugepages - hugepages } ]
      in
      t.runs <- List.rev_append acc (leftover @ rest);
      t.cached <- t.cached - hugepages;
      if t.cached < t.low_watermark then t.low_watermark <- t.cached;
      Some run.base
    | run :: rest -> take (run :: acc) rest
  in
  match take [] t.runs with
  | Some base ->
    (* A cached hugepage may carry subreleased holes from its time in the
       filler; the grantee is about to touch every page, so fault them
       back (no-op on never-subreleased hugepages). *)
    for i = 0 to hugepages - 1 do
      Wsc_os.Vm.reclaim t.vm
        (base + (i * Units.hugepage_size))
        ~pages:Units.pages_per_hugepage
    done;
    { base; fresh = false }
  | None -> { base = Wsc_os.Vm.mmap t.vm ~hugepages; fresh = true }

let free t base ~hugepages =
  t.runs <- { base; hugepages } :: t.runs;
  t.cached <- t.cached + hugepages

let release t ~max_hugepages =
  let max_hugepages = min max_hugepages t.low_watermark in
  let sorted = List.sort (fun a b -> compare b.hugepages a.hugepages) t.runs in
  let rec drop released kept = function
    | [] -> (released, kept)
    | run :: rest ->
      if released + run.hugepages <= max_hugepages then begin
        Wsc_os.Vm.munmap t.vm run.base ~hugepages:run.hugepages;
        drop (released + run.hugepages) kept rest
      end
      else drop released (run :: kept) rest
  in
  let released, kept = drop 0 [] sorted in
  t.runs <- kept;
  t.cached <- t.cached - released;
  t.low_watermark <- t.cached;
  released

let cached_hugepages t = t.cached
let cached_bytes t = t.cached * Units.hugepage_size
