open Wsc_substrate

type addr = int

let pages_per_hugepage = Units.pages_per_hugepage
let page_size = Units.tcmalloc_page_size
let hugepage_size = Units.hugepage_size

type placement =
  | In_filler
  | In_region
  | In_cache of { run_base : addr; full_hugepages : int; tail_pages : int }

type t = {
  config : Config.t;
  vm : Wsc_os.Vm.t;
  filler : Hugepage_filler.t;
  region : Hugepage_region.t;
  cache : Hugepage_cache.t;
  page_map : Page_map.t;
  placements : (int, placement) Hashtbl.t;
  mutable next_span_id : int;
  mutable cache_used_pages : int;  (* pages of large spans on whole hugepages *)
}

let create ?(config = Config.baseline) vm =
  {
    config;
    vm;
    filler = Hugepage_filler.create ();
    region = Hugepage_region.create vm ~hugepages_per_region:32;
    cache = Hugepage_cache.create vm;
    page_map = Page_map.create ();
    placements = Hashtbl.create 1024;
    next_span_id = 0;
    cache_used_pages = 0;
  }

let vm t = t.vm

let fresh_id t =
  let id = t.next_span_id in
  t.next_span_id <- id + 1;
  id

(* Spans with small object capacity are statistically short-lived (Fig. 16);
   in lifetime-aware mode they get their own hugepage set. *)
let filler_kind t ~capacity =
  if t.config.Config.lifetime_aware_filler
     && capacity < t.config.Config.lifetime_capacity_threshold
  then Hugepage_filler.Short_lived
  else Hugepage_filler.Long_lived

(* Allocate [pages] from the filler, feeding it fresh hugepages on demand.
   Returns (addr, mmaps incurred). *)
let filler_allocate t ~kind ~pages =
  match Hugepage_filler.allocate t.filler ~kind ~pages with
  | Some a -> (a, 0)
  | None ->
    let grant = Hugepage_cache.allocate t.cache ~hugepages:1 in
    Hugepage_filler.add_hugepage t.filler ~base:grant.Hugepage_cache.base ~kind
      ~donated:false ~t_used:0;
    (match Hugepage_filler.allocate t.filler ~kind ~pages with
    | Some a -> (a, if grant.Hugepage_cache.fresh then 1 else 0)
    | None -> assert false)

let new_small_span t ~size_class ~now =
  let info = Size_class.info size_class in
  let kind = filler_kind t ~capacity:info.Size_class.capacity in
  let base, mmaps = filler_allocate t ~kind ~pages:info.Size_class.pages in
  let span = Span.create_small ~id:(fresh_id t) ~base ~size_class ~birth_time:now in
  Page_map.register t.page_map span;
  Hashtbl.replace t.placements span.Span.id In_filler;
  (span, mmaps)

(* Large allocations "slightly exceeding" whole hugepages (Sec. 4.4, e.g.
   2.1 MiB) would waste most of a hugepage if rounded up; they go to the
   region when the rounding slack is at least half the allocation itself.
   (4.5 MiB with 1.5 MiB slack stays in the cache and donates its tail.) *)
let routes_to_region ~pages =
  let tail = pages mod pages_per_hugepage in
  tail > 0 && 2 * (pages_per_hugepage - tail) >= pages

let new_large_span t ~pages ~now =
  if pages <= 0 then invalid_arg "Pageheap.new_large_span: nonpositive pages";
  let id = fresh_id t in
  let base, placement, mmaps =
    if pages < pages_per_hugepage then begin
      (* One-object spans have capacity 1 < C: short-lived set when aware. *)
      let kind = filler_kind t ~capacity:1 in
      let base, mmaps = filler_allocate t ~kind ~pages in
      (base, In_filler, mmaps)
    end
    else begin
      if routes_to_region ~pages then
        (Hugepage_region.allocate t.region ~pages, In_region, 0)
      else begin
        let tail = pages mod pages_per_hugepage in
        let full = pages / pages_per_hugepage in
        let hugepages = full + (if tail > 0 then 1 else 0) in
        let grant = Hugepage_cache.allocate t.cache ~hugepages in
        let run_base = grant.Hugepage_cache.base in
        if tail > 0 then begin
          (* Donate the partial tail hugepage to the filler: its first
             [tail] pages belong to this span, the rest become allocatable
             slack (Sec. 4.4 "1.5 MB slack from a 4.5 MB allocation"). *)
          let tail_base = run_base + (full * hugepage_size) in
          Hugepage_filler.add_hugepage t.filler ~base:tail_base
            ~kind:Hugepage_filler.Long_lived ~donated:true ~t_used:tail
        end;
        t.cache_used_pages <- t.cache_used_pages + (full * pages_per_hugepage);
        ( run_base,
          In_cache { run_base; full_hugepages = full; tail_pages = tail },
          if grant.Hugepage_cache.fresh then 1 else 0 )
      end
    end
  in
  let span = Span.create_large ~id ~base ~pages ~birth_time:now in
  Page_map.register t.page_map span;
  Hashtbl.replace t.placements span.Span.id placement;
  (span, mmaps)

let free_via_filler t a ~pages =
  match Hugepage_filler.free t.filler a ~pages with
  | Hugepage_filler.Still_tracked -> ()
  | Hugepage_filler.Hugepage_empty base -> Hugepage_cache.free t.cache base ~hugepages:1

let free_span t span =
  if not (Span.is_idle span) then invalid_arg "Pageheap.free_span: span not idle";
  let placement =
    match Hashtbl.find_opt t.placements span.Span.id with
    | Some p -> p
    | None -> invalid_arg "Pageheap.free_span: unknown span"
  in
  Page_map.unregister t.page_map span;
  Hashtbl.remove t.placements span.Span.id;
  match placement with
  | In_filler -> free_via_filler t span.Span.base ~pages:span.Span.pages
  | In_region -> Hugepage_region.free t.region span.Span.base ~pages:span.Span.pages
  | In_cache { run_base; full_hugepages; tail_pages } ->
    if tail_pages > 0 then begin
      let tail_base = run_base + (full_hugepages * hugepage_size) in
      free_via_filler t tail_base ~pages:tail_pages
    end;
    if full_hugepages > 0 then begin
      Hugepage_cache.free t.cache run_base ~hugepages:full_hugepages;
      t.cache_used_pages <- t.cache_used_pages - (full_hugepages * pages_per_hugepage)
    end

let span_of_addr t a = Page_map.lookup t.page_map a
let page_map t = t.page_map
let filler t = t.filler

(* Free bytes the release path could hand back to the OS right now without
   touching upper tiers: cached whole hugepages plus filler free pages. *)
let release_backlog_bytes t =
  Hugepage_cache.cached_bytes t.cache + Hugepage_filler.free_bytes t.filler

let release_memory t ~max_bytes =
  if max_bytes <= 0 then 0
  else begin
    let max_hugepages = max_bytes / hugepage_size in
    let released_hp = Hugepage_cache.release t.cache ~max_hugepages in
    let released = released_hp * hugepage_size in
    let remaining_pages = (max_bytes - released) / page_size in
    let subreleased =
      if remaining_pages > 0 then
        Hugepage_filler.subrelease t.filler t.vm ~max_pages:remaining_pages
      else 0
    in
    released + (subreleased * page_size)
  end

(* Whole cached hugepages are cheap to give back and cheap to get wrong
   (re-acquiring one costs a full mmap), so they release at a quarter of the
   configured rate; the filler's stranded free pages are the expensive kind
   of idle memory and subrelease at the full rate. *)
let background_release t =
  let cache_target =
    int_of_float
      (t.config.Config.pageheap_release_fraction /. 4.0
      *. float_of_int (Hugepage_cache.cached_bytes t.cache))
  in
  ignore (Hugepage_cache.release t.cache ~max_hugepages:(cache_target / hugepage_size));
  let subrelease_target =
    int_of_float
      (t.config.Config.pageheap_release_fraction
      *. float_of_int (Hugepage_filler.free_bytes t.filler))
  in
  if subrelease_target > 0 then
    ignore
      (Hugepage_filler.subrelease t.filler t.vm ~max_pages:(subrelease_target / page_size))

type component_stats = { in_use_bytes : int; fragmented_bytes : int }

let filler_stats t =
  {
    in_use_bytes = Hugepage_filler.used_bytes t.filler;
    fragmented_bytes = Hugepage_filler.free_bytes t.filler;
  }

let region_stats t =
  {
    in_use_bytes = Hugepage_region.used_bytes t.region;
    fragmented_bytes = Hugepage_region.free_bytes t.region;
  }

let cache_stats t =
  {
    in_use_bytes = t.cache_used_pages * page_size;
    fragmented_bytes = Hugepage_cache.cached_bytes t.cache;
  }

(* Component totals read directly (not via the [component_stats] records):
   these run every driver epoch and the three records would be the epoch
   loop's only allocations here. *)
let fragmented_bytes t =
  Hugepage_filler.free_bytes t.filler
  + Hugepage_region.free_bytes t.region
  + Hugepage_cache.cached_bytes t.cache

let in_use_bytes t =
  Hugepage_filler.used_bytes t.filler + Hugepage_region.used_bytes t.region
  + (cache_stats t).in_use_bytes

let hugepage_coverage t =
  let total = ref 0 and covered = ref 0 in
  let visit ~base ~used_pages =
    total := !total + used_pages;
    if Wsc_os.Vm.is_huge_backed t.vm base then covered := !covered + used_pages
  in
  Hugepage_filler.iter_hugepages t.filler visit;
  Hugepage_region.iter_hugepages t.region visit;
  Hashtbl.iter
    (fun _ placement ->
      match placement with
      | In_cache { run_base; full_hugepages; _ } ->
        for hp = 0 to full_hugepages - 1 do
          visit ~base:(run_base + (hp * hugepage_size)) ~used_pages:pages_per_hugepage
        done
      | In_filler | In_region -> ())
    t.placements;
  if !total = 0 then 1.0 else float_of_int !covered /. float_of_int !total

let spans_outstanding t = Hashtbl.length t.placements
