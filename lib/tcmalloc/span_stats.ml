open Wsc_substrate

type observation = { span_id : int; cls : int; outstanding : int; time : float }

type t = {
  mutable observations : observation list;
  mutable observation_count : int;
  release_times : (int, float) Hashtbl.t;
  created : (int, int) Hashtbl.t;  (* cls -> count *)
  released : (int, int) Hashtbl.t;
}

let create () =
  {
    observations = [];
    observation_count = 0;
    release_times = Hashtbl.create 4096;
    created = Hashtbl.create 64;
    released = Hashtbl.create 64;
  }

let bump table key =
  Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

let note_created t ~span_id:_ ~cls ~now:_ = bump t.created cls

let note_released t ~span_id ~cls ~now =
  Hashtbl.replace t.release_times span_id now;
  bump t.released cls

let observe t ~span_id ~cls ~outstanding ~now =
  t.observations <- { span_id; cls; outstanding; time = now } :: t.observations;
  t.observation_count <- t.observation_count + 1

let observation_count t = t.observation_count
let spans_created t ~cls = Option.value ~default:0 (Hashtbl.find_opt t.created cls)
let spans_released t ~cls = Option.value ~default:0 (Hashtbl.find_opt t.released cls)

let return_rate_by_live_allocations t ~cls ~window_ns ~bucket =
  if bucket <= 0 then invalid_arg "Span_stats: bucket must be positive";
  let totals : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun obs ->
      if obs.cls = cls then begin
        let key = obs.outstanding / bucket * bucket in
        let returned =
          match Hashtbl.find_opt t.release_times obs.span_id with
          | Some release -> release >= obs.time && release -. obs.time <= window_ns
          | None -> false
        in
        let n, r = Option.value ~default:(0, 0) (Hashtbl.find_opt totals key) in
        Hashtbl.replace totals key (n + 1, if returned then r + 1 else r)
      end)
    t.observations;
  Hashtbl.fold
    (fun key (n, r) acc -> (key, float_of_int r /. float_of_int n, n) :: acc)
    totals []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let return_rate_by_class t =
  Hashtbl.fold
    (fun cls created acc ->
      if created = 0 then acc
      else begin
        let released = spans_released t ~cls in
        (cls, float_of_int released /. float_of_int created, created) :: acc
      end)
    t.created []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let capacity_return_correlation t =
  let pairs =
    List.map
      (fun (cls, rate, _) -> (float_of_int (Size_class.capacity cls), rate))
      (return_rate_by_class t)
  in
  if List.length pairs < 2 then 0.0 else Stats.spearman pairs
