(** The per-CPU (front-end) caches (Sec. 2.1 item 1, Sec. 4.1).

    One cache per virtual CPU, indexed by the dense vCPU ids of
    {!Wsc_os.Vcpu}; each holds per-size-class stacks of object pointers and
    serves the lock-free fast path (3.1 ns in Fig. 4).  A cache is populated
    lazily the first time its vCPU allocates, with a byte budget of
    {!Config.t.per_cpu_cache_bytes} (statically 3 MiB).

    An allocation miss means the class stack is empty; a deallocation miss
    means the cache is at its byte budget.  Both spill to the transfer
    cache and are counted per vCPU — the skew of these counts across vCPU
    ids is Fig. 9b.

    With {b dynamic sizing} ({!Config.t.dynamic_per_cpu_caches}), a
    background pass every 5 s grows the budgets of the
    {!Config.t.resize_grow_candidates} caches with the most misses in the
    last interval, stealing budget round-robin from the others and evicting
    from their largest size classes first (small objects dominate
    allocations, Fig. 7).

    Every fast-path operation is a {b restartable sequence}: staging reads
    the cache and records a decision, a single commit holds all mutation,
    so {!Wsc_os.Rseq} can abort a preempted attempt without tearing the
    cache.  The per-event operations exist in three shapes, hottest first:
    the plain [alloc]/[dealloc] fuse stage and commit into one direct,
    allocation-free call (the no-preemption fast path);
    [prepare_alloc]/[prepare_dealloc] + [commit_staged] stage into a
    reusable buffer for {!Wsc_os.Rseq.run_op} (allocation-free under a
    live injector); and the [stage_*] closures return a first-class
    {!Wsc_os.Rseq.staged} value (batch flush/fill, tests). *)

type addr = int

type t

val create : ?config:Config.t -> unit -> t

val alloc : t -> vcpu:int -> cls:int -> addr
(** Fast-path allocation; [-1] is a front-end miss (counted). *)

val dealloc : t -> vcpu:int -> cls:int -> addr -> bool
(** Fast-path deallocation; [false] means the cache is full (counted as a
    miss) and the caller must flush a batch to the transfer cache. *)

val flush_batch : t -> vcpu:int -> cls:int -> n:int -> addr list
(** Pop up to [n] cached objects of a class (used on deallocation misses). *)

val fill : t -> vcpu:int -> cls:int -> addrs:addr list -> addr list
(** Insert refilled objects; returns those that did not fit the budget. *)

val flush_batch_into : t -> vcpu:int -> cls:int -> n:int -> buf:addr array -> pos:int -> int
(** Allocation-free {!flush_batch}: up to [n] objects (most-recent first)
    land in [buf.(pos) ..]; returns how many. *)

val fill_from : t -> vcpu:int -> cls:int -> buf:addr array -> lo:int -> hi:int -> int
(** Allocation-free {!fill}: offer [buf.(lo) .. buf.(hi-1)] in order and
    accept the budget-bounded prefix; returns how many were accepted (the
    suffix from [buf.(lo + accepted)] was rejected). *)

(** {2 Restartable fast-path operations — reusable staged-op buffer}

    Protocol: call one [prepare_*] (pure, allocation-free — it only
    records the decision in the cache-wide op buffer), then
    {!commit_staged} to apply it.  A restart overwrites the buffer with a
    fresh [prepare_*]; an abort that never commits leaves the cache
    untouched.  At most one staged op may be outstanding. *)

val prepare_alloc : t -> vcpu:int -> cls:int -> addr
(** Stage one allocation; returns the address committing would pop, or
    [-1] to stage a miss (whose commit only bumps the miss counter). *)

val prepare_dealloc : t -> vcpu:int -> cls:int -> addr -> bool
(** Stage one deallocation; [false] stages a cache-full miss. *)

val commit_staged : t -> unit
(** Apply the op staged by the last [prepare_*]; no-op if none pending. *)

(** {2 Restartable (staged) fast-path operations — first-class form} *)

val stage_alloc : t -> vcpu:int -> cls:int -> addr option Wsc_os.Rseq.staged
(** Stage one allocation: the value is the object that committing would
    pop ([None] stages a miss, whose commit only bumps the miss counter). *)

val stage_dealloc : t -> vcpu:int -> cls:int -> addr -> bool Wsc_os.Rseq.staged
(** Stage one deallocation; [false] stages a cache-full miss. *)

val stage_flush_batch : t -> vcpu:int -> cls:int -> n:int -> addr list Wsc_os.Rseq.staged
(** Stage a batch flush: the value is the batch committing would pop. *)

val stage_fill : t -> vcpu:int -> cls:int -> addrs:addr list -> addr list Wsc_os.Rseq.staged
(** Stage a refill: the value is the rejected suffix; committing inserts
    the accepted prefix. *)

val decay_tick : t -> evict:(vcpu:int -> cls:int -> addrs:addr list -> unit) -> unit
(** Demand-based capacity decay (TCMalloc shrinks per-class capacity that
    goes unused): flush half of each (vCPU, class) stack's low watermark —
    the objects that sat untouched for the whole previous interval.  Runs
    in both baseline and optimized configs. *)

val drain : t -> evict:(vcpu:int -> cls:int -> addrs:addr list -> unit) -> int
(** Memory-pressure shrink (first stage of the reclaim cascade): flush every
    cached object of every vCPU to [evict] and return the bytes drained.
    Capacity budgets are preserved; only contents are evicted. *)

val drain_vcpu : t -> vcpu:int -> evict:(vcpu:int -> cls:int -> addrs:addr list -> unit) -> int
(** Stranded-cache reclaim: flush every cached object of {e one} vCPU to
    [evict] and return the bytes drained (0 for an unpopulated id).  The
    cache keeps its capacity budget, so a reused id finds it warm. *)

val resize : t -> evict:(vcpu:int -> cls:int -> addrs:addr list -> unit) -> unit
(** One dynamic-sizing pass (no-op when the config disables it).  Evicted
    objects from shrunk caches are handed to [evict] for routing to the
    transfer cache.  Resets the per-interval miss counters. *)

val used_bytes : t -> vcpu:int -> int
val capacity_bytes : t -> vcpu:int -> int
val cached_bytes : t -> int
(** Total bytes cached across vCPUs (front-end external fragmentation). *)

val capacity_total : t -> int
val populated_caches : t -> int

val populated_vcpus : t -> int list
(** vCPU ids whose caches have been populated, ascending. *)

val iter_addrs : t -> (vcpu:int -> cls:int -> addr -> unit) -> unit
(** Walk every cached object address (the auditor's torn-operation and
    duplicate detection). *)

val misses_per_vcpu : t -> int array
(** Cumulative (allocation + deallocation) misses per vCPU id. *)
