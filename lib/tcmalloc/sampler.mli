(** Allocation sampling (Sec. 3, "Sampled").

    Production TCMalloc samples roughly one allocation per 2 MiB of
    allocated bytes, recording a stack trace; the samples drive heap
    profiling and the fleet's object size/lifetime characterization
    (Figs. 7, 8).  The model implements the byte-counter scheme: an
    allocation is sampled when the running byte counter crosses the period,
    and a sampled object's lifetime is measured when it is freed. *)

type addr = int

type t

val create : period_bytes:int -> t

val on_alloc : t -> addr -> size:int -> now:float -> bool
(** Advance the byte counter; [true] when this allocation is sampled (its
    address is then tracked until freed).  Equivalent to {!tick} followed by
    {!track} on a hit; the split form lets hot callers defer the clock
    reading to the rare sampled case. *)

val tick : t -> size:int -> bool
(** Advance the byte counter only; [true] means this allocation crossed a
    sample boundary and the caller must {!track} it. *)

val track : t -> addr -> size:int -> now:float -> unit
(** Record a sampled allocation (after {!tick} returned [true]). *)

val is_tracked : t -> addr -> bool
(** Whether this address is currently sampled — an allocation-free probe for
    the per-free miss path; a [true] result is confirmed by {!on_free}. *)

val on_free : t -> addr -> now:float -> (int * float) option
(** If the freed address was sampled, stop tracking it and return
    [(size, lifetime_ns)]. *)

val sampled_count : t -> int
val live_tracked : t -> int

(** {2 Heap profiling}

    Because one allocation is sampled per [period_bytes] allocated, each
    live sampled object statistically represents [period_bytes] of live
    heap — the estimator production heap profilers are built on. *)

val live_heap_estimate_bytes : t -> int
(** [live_tracked * period_bytes]. *)

val live_profile : t -> (int * int) list
(** [(power_of_two_size_bin, live_sampled_objects)] pairs, ascending —
    the sampled composition of the live heap. *)
