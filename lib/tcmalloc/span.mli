(** Spans: contiguous runs of TCMalloc pages carved into same-class objects
    (Sec. 2.1, Fig. 2).

    A small-object span belongs to exactly one size class and tracks which
    of its [capacity] object slots are outstanding.  "Outstanding" counts
    objects held anywhere above the central free list — by the application
    *or* cached in the per-CPU/transfer tiers; only objects returned to the
    central free list are free within the span.  A span whose outstanding
    count drops to zero may be returned to the pageheap.

    A large span (one allocation > 256 KiB) bypasses the object machinery:
    it has no size class and is returned whole. *)

type addr = int

type t = private {
  id : int;
  base : addr;
  pages : int;
  size_class : int;  (** -1 for large spans. *)
  obj_size : int;  (** Class object size; for large spans, the span bytes. *)
  capacity : int;  (** Objects per span; 1 for large spans. *)
  mutable outstanding : int;  (** Objects currently extracted from the span. *)
  free_slots : Wsc_substrate.Int_stack.t;  (** Free object indices. *)
  slot_taken : Bytes.t;  (** Per-slot occupancy, for double-free detection. *)
  mutable list_index : int;  (** Central-free-list bucket, -1 if not listed. *)
  birth_time : float;  (** Simulated creation time (for lifetime studies). *)
}

val create_small : id:int -> base:addr -> size_class:int -> birth_time:float -> t
(** A fresh, fully-free span of the given class (geometry from
    {!Size_class}). *)

val create_large : id:int -> base:addr -> pages:int -> birth_time:float -> t

val span_bytes : t -> int
val is_large : t -> bool

val free_objects : t -> int
(** [capacity - outstanding]. *)

val is_exhausted : t -> bool
(** No free object slots remain. *)

val is_idle : t -> bool
(** No outstanding objects; the span can return to the pageheap. *)

val pop_object : t -> addr
(** Extract one object.  @raise Invalid_argument when exhausted. *)

val pop_objects : t -> n:int -> addr list
(** Extract up to [n] objects. *)

val pop_objects_into : t -> n:int -> buf:addr array -> pos:int -> int
(** [pop_objects_into t ~n ~buf ~pos] is {!pop_objects} without the list:
    up to [n] objects land in [buf.(pos) ..] in pop order; returns how
    many.  The cache-miss batch path uses this with a preallocated
    scratch buffer. *)

val push_object : t -> addr -> unit
(** Return an object to the span.  @raise Invalid_argument if the address
    does not belong to this span, is misaligned, or the slot is already
    free (double free). *)

val contains : t -> addr -> bool

val object_is_free : t -> addr -> bool
(** Whether the object slot holding [addr] is currently free within the
    span (i.e. pushing it again would be a double free).  For large spans,
    whether the whole span is idle.
    @raise Invalid_argument if the address is outside the span. *)

val fragmented_bytes : t -> int
(** Free object slots x object size — the external fragmentation this span
    contributes while sitting in the central free list. *)

val set_list_index : t -> int -> unit
