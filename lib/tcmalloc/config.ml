open Wsc_substrate

type front_end_mode = Per_cpu_caches | Per_thread_caches

type backend_kind = Tcmalloc | Rpmalloc | Jemalloc

let backend_name = function
  | Tcmalloc -> "tcmalloc"
  | Rpmalloc -> "rpmalloc"
  | Jemalloc -> "jemalloc"

let backend_of_name = function
  | "tcmalloc" -> Some Tcmalloc
  | "rpmalloc" -> Some Rpmalloc
  | "jemalloc" -> Some Jemalloc
  | _ -> None

let all_backends = [ Tcmalloc; Rpmalloc; Jemalloc ]

type t = {
  backend : backend_kind;
  max_small_size : int;
  front_end : front_end_mode;
  per_cpu_cache_bytes : int;
  per_cpu_class_cap_objects : int;
  dynamic_per_cpu_caches : bool;
  resize_interval_ns : float;
  resize_grow_candidates : int;
  resize_step_bytes : int;
  nuca_aware_transfer_cache : bool;
  transfer_cache_bytes_per_class : int;
  transfer_release_interval_ns : float;
  span_prioritization : bool;
  cfl_lists : int;
  lifetime_aware_filler : bool;
  lifetime_capacity_threshold : int;
  pageheap_release_interval_ns : float;
  pageheap_release_fraction : float;
  sample_period_bytes : int;
  reclaim_retries : int;
  reclaim_min_target_bytes : int;
  soft_limit_check_interval_ns : float;
  rseq_max_restarts : int;
  stranded_reclaim_interval_ns : float;
}

let baseline =
  {
    backend = Tcmalloc;
    max_small_size = 256 * Units.kib;
    front_end = Per_cpu_caches;
    per_cpu_cache_bytes = 3 * Units.mib;
    per_cpu_class_cap_objects = 2048;
    dynamic_per_cpu_caches = false;
    resize_interval_ns = 5.0 *. Units.sec;
    resize_grow_candidates = 5;
    resize_step_bytes = 64 * Units.kib;
    nuca_aware_transfer_cache = false;
    transfer_cache_bytes_per_class = 64 * Units.kib;
    transfer_release_interval_ns = 1.0 *. Units.sec;
    span_prioritization = false;
    cfl_lists = 8;
    lifetime_aware_filler = false;
    lifetime_capacity_threshold = 16;
    pageheap_release_interval_ns = 1.0 *. Units.sec;
    pageheap_release_fraction = 0.2;
    sample_period_bytes = 2 * Units.mib;
    reclaim_retries = 3;
    reclaim_min_target_bytes = 8 * Units.mib;
    soft_limit_check_interval_ns = 100.0 *. Units.ms;
    rseq_max_restarts = 3;
    stranded_reclaim_interval_ns = 1.0 *. Units.sec;
  }

let legacy_per_thread = { baseline with front_end = Per_thread_caches }

let with_dynamic_per_cpu enabled t =
  {
    t with
    dynamic_per_cpu_caches = enabled;
    per_cpu_cache_bytes = (if enabled then 3 * Units.mib / 2 else 3 * Units.mib);
  }

let with_backend backend t = { t with backend }
let rpmalloc = { baseline with backend = Rpmalloc }
let jemalloc = { baseline with backend = Jemalloc }

let with_nuca_transfer_cache enabled t = { t with nuca_aware_transfer_cache = enabled }
let with_span_prioritization enabled t = { t with span_prioritization = enabled }
let with_lifetime_aware_filler enabled t = { t with lifetime_aware_filler = enabled }

let all_optimizations =
  baseline
  |> with_dynamic_per_cpu true
  |> with_nuca_transfer_cache true
  |> with_span_prioritization true
  |> with_lifetime_aware_filler true

let describe t =
  match t.backend with
  | Rpmalloc | Jemalloc -> "backend " ^ backend_name t.backend
  | Tcmalloc ->
    let flag name enabled = if enabled then name else "no-" ^ name in
    String.concat ", "
      [
        flag "dynamic-cpu-caches" t.dynamic_per_cpu_caches;
        flag "nuca-transfer-cache" t.nuca_aware_transfer_cache;
        flag "span-prioritization" t.span_prioritization;
        flag "lifetime-filler" t.lifetime_aware_filler;
      ]
