(** The hugepage region (Sec. 4.4).

    Serves allocations that slightly exceed a whole number of hugepages
    (e.g. 2.1 MiB): rounding them up in the hugepage cache would waste most
    of a hugepage each, so they are instead packed first-fit onto shared
    contiguous runs of hugepages ("regions"), where allocations may straddle
    hugepage boundaries. *)

type addr = int

type t

val create : Wsc_os.Vm.t -> hugepages_per_region:int -> t
(** Regions are carved from [hugepages_per_region]-hugepage mappings. *)

val allocate : t -> pages:int -> addr
(** First-fit a run of [pages] into an existing region, mapping a new region
    when none fits.  @raise Invalid_argument if [pages] exceeds one region. *)

val free : t -> addr -> pages:int -> unit
(** Return a run.  Fully-empty regions are unmapped.  @raise
    Invalid_argument if the run is not currently allocated. *)

val regions : t -> int
val used_pages : t -> int
val free_pages : t -> int
val used_bytes : t -> int
val free_bytes : t -> int

val iter_hugepages : t -> (base:addr -> used_pages:int -> unit) -> unit
(** Per-hugepage used-page counts across all regions (for coverage). *)
