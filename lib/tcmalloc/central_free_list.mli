(** The central free lists (Sec. 2.1 item 3, Sec. 4.3).

    One logical free list per size class manages that class's spans and
    serves batch requests from the transfer cache by extracting objects from
    spans (and returning freed objects to their spans).  A span goes back to
    the pageheap only when every object it issued has come home — so a
    single long-lived object pins a whole span (the paper's central source
    of middle-tier fragmentation).

    The baseline keeps one list per class and draws from an arbitrary
    non-exhausted span.  With {b span prioritization}
    ({!Config.t.span_prioritization}), each class keeps L occupancy-indexed
    lists: a span with A outstanding objects lives in list
    [clamp(0, L-1, L-1-floor(log2 A))], and allocation always draws from the
    lowest-indexed (fullest) available list, steering allocations away from
    nearly-free spans so those can drain and be released. *)

type addr = int

type t

val create : ?config:Config.t -> ?span_stats:Span_stats.t -> Pageheap.t -> t
(** One structure managing every size class, backed by the given pageheap.
    When [span_stats] is supplied, span creation/release events and
    {!snapshot} observations feed it. *)

val remove_objects : t -> cls:int -> n:int -> now:float -> addr list * int
(** Extract [n] objects of the class, pulling fresh spans from the pageheap
    as needed.  Returns the object addresses and the number of mmap calls
    incurred below.  When a span grow fails with {!Wsc_os.Vm.Mmap_failed}
    (memory pressure or an injected fault), the failure is absorbed and
    whatever was gathered so far is returned — possibly the empty list,
    which callers must treat as "reclaim and retry". *)

val remove_objects_into :
  t -> cls:int -> n:int -> now:float -> buf:addr array -> pos:int -> mmaps:int ref -> int
(** Allocation-free twin of {!remove_objects} for the cache-miss batch
    path: up to [n] objects land in [buf.(pos) ..] in chronological pop
    order (the list form returns them reversed), mmap calls accumulate
    into [mmaps], and the count gathered is returned ([0] under an
    absorbed {!Wsc_os.Vm.Mmap_failed} means "reclaim and retry"). *)

val return_objects : t -> cls:int -> addrs:addr list -> now:float -> unit
(** Give objects back to their spans; spans whose last object returns are
    released to the pageheap. *)

val fragmented_bytes : t -> int
(** Free-object bytes sitting in partially-used spans across all classes. *)

val released_span_bytes : t -> int
(** Cumulative bytes of spans that fully drained and went back to the
    pageheap; the reclaim cascade diffs this across stages to attribute
    span returns to pressure. *)

val iter_spans : t -> (Span.t -> unit) -> unit
(** Visit every span currently owned by any class (listed or exhausted);
    used by the heap auditor. *)

val span_count : t -> cls:int -> int
(** Spans currently held (listed + exhausted) for a class. *)

val total_span_count : t -> int

val snapshot : t -> now:float -> unit
(** Record a (span, outstanding) observation for every held span into the
    attached {!Span_stats} collector (no-op without one). *)
