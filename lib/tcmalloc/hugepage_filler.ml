open Wsc_substrate

type addr = int
type set_kind = Long_lived | Short_lived

let kind_slot = function Long_lived -> 0 | Short_lived -> 1
let pages_per_hugepage = Units.pages_per_hugepage
let page_size = Units.tcmalloc_page_size
let hugepage_size = Units.hugepage_size

(* page states *)
let st_free = '\000'
let st_used = '\001'
let st_released = '\002'

type hugepage = {
  base : addr;
  page_state : Bytes.t;
  mutable free_count : int;
  mutable used_count : int;
  mutable released_count : int;
  kind : set_kind;
}

type t = {
  hugepages : (addr, hugepage) Hashtbl.t;
  (* buckets.(kind).(free_count) = hugepage bases with that many free pages *)
  buckets : (addr, unit) Hashtbl.t array array;
  mutable used_pages : int;
  mutable free_pages : int;
  mutable released_pages : int;
}

let create () =
  {
    hugepages = Hashtbl.create 256;
    buckets =
      Array.init 2 (fun _ -> Array.init (pages_per_hugepage + 1) (fun _ -> Hashtbl.create 4));
    used_pages = 0;
    free_pages = 0;
    released_pages = 0;
  }

let bucket_of t hp = t.buckets.(kind_slot hp.kind).(hp.free_count)
let bucket_remove t hp = Hashtbl.remove (bucket_of t hp) hp.base
let bucket_insert t hp = Hashtbl.replace (bucket_of t hp) hp.base ()

let hugepage_of_addr t a =
  match Hashtbl.find_opt t.hugepages (a - (a mod hugepage_size)) with
  | Some hp -> hp
  | None -> invalid_arg "Hugepage_filler: address not in a tracked hugepage"

let add_hugepage t ~base ~kind ~donated:_ ~t_used =
  if Hashtbl.mem t.hugepages base then
    invalid_arg "Hugepage_filler.add_hugepage: already tracked";
  if t_used < 0 || t_used > pages_per_hugepage then
    invalid_arg "Hugepage_filler.add_hugepage: bad used prefix";
  let page_state = Bytes.make pages_per_hugepage st_free in
  for i = 0 to t_used - 1 do
    Bytes.set page_state i st_used
  done;
  let hp =
    {
      base;
      page_state;
      free_count = pages_per_hugepage - t_used;
      used_count = t_used;
      released_count = 0;
      kind;
    }
  in
  Hashtbl.replace t.hugepages base hp;
  bucket_insert t hp;
  t.used_pages <- t.used_pages + t_used;
  t.free_pages <- t.free_pages + hp.free_count

(* First free run of length [n] in the hugepage, or -1. *)
let find_run hp n =
  let rec scan i run_start run_len =
    if run_len = n then run_start
    else if i = pages_per_hugepage then -1
    else if Bytes.get hp.page_state i = st_free then
      scan (i + 1) (if run_len = 0 then i else run_start) (run_len + 1)
    else scan (i + 1) 0 0
  in
  scan 0 0 0

let mark hp first n state delta_used delta_free =
  for i = first to first + n - 1 do
    Bytes.set hp.page_state i state
  done;
  hp.used_count <- hp.used_count + delta_used;
  hp.free_count <- hp.free_count + delta_free

let allocate t ~kind ~pages =
  if pages <= 0 || pages >= pages_per_hugepage then
    invalid_arg "Hugepage_filler.allocate: pages must be in (0, 256)";
  let slot = kind_slot kind in
  (* Densest-first: scan buckets from the fewest free pages able to fit. *)
  let found = ref None in
  let f = ref pages in
  while !found = None && !f <= pages_per_hugepage do
    let bucket = t.buckets.(slot).(!f) in
    (try
       Hashtbl.iter
         (fun base () ->
           let hp = Hashtbl.find t.hugepages base in
           let run = find_run hp pages in
           if run >= 0 then begin
             found := Some (hp, run);
             raise Exit
           end)
         bucket
     with Exit -> ());
    incr f
  done;
  match !found with
  | None -> None
  | Some (hp, run) ->
    bucket_remove t hp;
    mark hp run pages st_used pages (-pages);
    bucket_insert t hp;
    t.used_pages <- t.used_pages + pages;
    t.free_pages <- t.free_pages - pages;
    Some (hp.base + (run * page_size))

type free_outcome = Still_tracked | Hugepage_empty of addr

let free t a ~pages =
  let hp = hugepage_of_addr t a in
  let first = (a - hp.base) / page_size in
  if first + pages > pages_per_hugepage then
    invalid_arg "Hugepage_filler.free: run exceeds hugepage";
  for i = first to first + pages - 1 do
    if Bytes.get hp.page_state i <> st_used then
      invalid_arg "Hugepage_filler.free: page not in use"
  done;
  bucket_remove t hp;
  mark hp first pages st_free (-pages) pages;
  t.used_pages <- t.used_pages - pages;
  t.free_pages <- t.free_pages + pages;
  if hp.used_count = 0 then begin
    (* Fully drained: stop tracking; caller unmaps or caches it. *)
    Hashtbl.remove t.hugepages hp.base;
    t.free_pages <- t.free_pages - hp.free_count;
    t.released_pages <- t.released_pages - hp.released_count;
    Hugepage_empty hp.base
  end
  else begin
    bucket_insert t hp;
    Still_tracked
  end

let subrelease t vm ~max_pages =
  (* Sparsest-first: hugepages with the most free pages yield the most
     memory per broken hugepage. *)
  let released = ref 0 in
  let f = ref (pages_per_hugepage - 1) in
  while !released < max_pages && !f > 0 do
    for slot = 0 to 1 do
      if !released < max_pages then begin
        let bucket = t.buckets.(slot).(!f) in
        let bases = Hashtbl.fold (fun base () acc -> base :: acc) bucket [] in
        List.iter
          (fun base ->
            if !released < max_pages then begin
              let hp = Hashtbl.find t.hugepages base in
              let want = min hp.free_count (max_pages - !released) in
              if want > 0 then begin
                bucket_remove t hp;
                (* Release [want] free pages, scanning from the end where
                   frees accumulate. *)
                let remaining = ref want in
                for i = pages_per_hugepage - 1 downto 0 do
                  if !remaining > 0 && Bytes.get hp.page_state i = st_free then begin
                    Bytes.set hp.page_state i st_released;
                    decr remaining
                  end
                done;
                hp.free_count <- hp.free_count - want;
                hp.released_count <- hp.released_count + want;
                t.free_pages <- t.free_pages - want;
                t.released_pages <- t.released_pages + want;
                Wsc_os.Vm.subrelease vm hp.base ~pages:want;
                bucket_insert t hp;
                released := !released + want
              end
            end)
          bases
      end
    done;
    decr f
  done;
  !released

let tracked_hugepages t = Hashtbl.length t.hugepages
let used_pages t = t.used_pages
let free_pages t = t.free_pages
let released_pages t = t.released_pages
let used_bytes t = t.used_pages * page_size
let free_bytes t = t.free_pages * page_size

let iter_hugepages t f =
  Hashtbl.iter (fun base hp -> f ~base ~used_pages:hp.used_count) t.hugepages
