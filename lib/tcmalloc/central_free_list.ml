type addr = int

(* Each occupancy list is a LIFO stack of spans with lazy invalidation: a
   span entry is live only while the span's [list_index] still names this
   list and the span has free objects.  Baseline mode uses a single list, so
   allocation draws from whatever span was touched most recently — the
   occupancy-oblivious behaviour Sec. 4.3 identifies as the fragmentation
   source. *)
type span_list = { mutable stack : Span.t list }

type class_state = {
  lists : span_list array;
  spans : (int, Span.t) Hashtbl.t;  (* every span owned by this class *)
  mutable free_objects : int;
}

type t = {
  config : Config.t;
  pageheap : Pageheap.t;
  span_stats : Span_stats.t option;
  classes : class_state array;
  mutable released_span_bytes : int;
      (* cumulative bytes of drained spans returned to the pageheap *)
}

let create ?(config = Config.baseline) ?span_stats pageheap =
  let n_lists = if config.Config.span_prioritization then config.Config.cfl_lists else 1 in
  let make_class _ =
    {
      lists = Array.init n_lists (fun _ -> { stack = [] });
      spans = Hashtbl.create 16;
      free_objects = 0;
    }
  in
  {
    config;
    pageheap;
    span_stats;
    classes = Array.init Size_class.count make_class;
    released_span_bytes = 0;
  }

(* List housing a span with [a] outstanding objects: fuller spans in lower
   indices (allocated from first), nearly-free spans in higher indices
   (left alone to drain).  Paper formula: max(0, L - log2 A), clamped. *)
let target_index t span =
  if Span.free_objects span = 0 then -1
  else if not t.config.Config.span_prioritization then 0
  else begin
    let l = t.config.Config.cfl_lists in
    let a = span.Span.outstanding in
    if a <= 0 then l - 1
    else begin
      let log2 =
        let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
        go a 0
      in
      max 0 (min (l - 1) (l - 1 - log2))
    end
  end

let push_to_list cs span idx =
  Span.set_list_index span idx;
  if idx >= 0 then begin
    let list = cs.lists.(idx) in
    list.stack <- span :: list.stack
  end

(* Re-home a span after its occupancy changed.  Skips the push when the
   span is already validly listed at its target index. *)
let relist t cs span ~force =
  let idx = target_index t span in
  if force || idx <> span.Span.list_index then push_to_list cs span idx

let rec pop_valid cs idx =
  let list = cs.lists.(idx) in
  match list.stack with
  | [] -> None
  | span :: rest ->
    list.stack <- rest;
    if span.Span.list_index = idx && Span.free_objects span > 0 then Some span
    else pop_valid cs idx

let pick_span cs =
  let n = Array.length cs.lists in
  let rec scan idx =
    if idx = n then None
    else begin
      match pop_valid cs idx with Some span -> Some span | None -> scan (idx + 1)
    end
  in
  scan 0

let note_created t span ~now =
  match t.span_stats with
  | None -> ()
  | Some stats ->
    Span_stats.note_created stats ~span_id:span.Span.id ~cls:span.Span.size_class ~now

let note_released t span ~now =
  match t.span_stats with
  | None -> ()
  | Some stats ->
    Span_stats.note_released stats ~span_id:span.Span.id ~cls:span.Span.size_class ~now

let remove_objects t ~cls ~n ~now =
  let cs = t.classes.(cls) in
  let mmaps = ref 0 in
  let out = ref [] in
  let need = ref n in
  (try
     while !need > 0 do
       let span =
         match pick_span cs with
         | Some span -> span
         | None ->
           let span, m = Pageheap.new_small_span t.pageheap ~size_class:cls ~now in
           mmaps := !mmaps + m;
           Hashtbl.replace cs.spans span.Span.id span;
           cs.free_objects <- cs.free_objects + span.Span.capacity;
           note_created t span ~now;
           Span.set_list_index span (-1);
           span
       in
       let take = min !need (Span.free_objects span) in
       let addrs = Span.pop_objects span ~n:take in
       cs.free_objects <- cs.free_objects - take;
       need := !need - take;
       out := List.rev_append addrs !out;
       (* The span left its list when popped (or was never listed if fresh);
          always re-push if it still has capacity. *)
       relist t cs span ~force:(Span.free_objects span > 0)
     done
   with Wsc_os.Vm.Mmap_failed _ ->
     (* Graceful degradation under memory pressure: hand back whatever was
        gathered before the failed span grow.  An empty result tells the
        caller the allocation itself must reclaim and retry. *)
     ());
  (!out, !mmaps)

(* Allocation-free twin of [remove_objects]: objects land in [buf.(pos)..]
   in chronological pop order (note [remove_objects] returns them
   REVERSED — callers of each take the order that function documents). *)
let remove_objects_into t ~cls ~n ~now ~buf ~pos ~mmaps =
  let cs = t.classes.(cls) in
  let need = ref n in
  let k = ref pos in
  (try
     while !need > 0 do
       let span =
         match pick_span cs with
         | Some span -> span
         | None ->
           let span, m = Pageheap.new_small_span t.pageheap ~size_class:cls ~now in
           mmaps := !mmaps + m;
           Hashtbl.replace cs.spans span.Span.id span;
           cs.free_objects <- cs.free_objects + span.Span.capacity;
           note_created t span ~now;
           Span.set_list_index span (-1);
           span
       in
       let take = Span.pop_objects_into span ~n:!need ~buf ~pos:!k in
       cs.free_objects <- cs.free_objects - take;
       need := !need - take;
       k := !k + take;
       (* The span left its list when popped (or was never listed if fresh);
          always re-push if it still has capacity. *)
       relist t cs span ~force:(Span.free_objects span > 0)
     done
   with Wsc_os.Vm.Mmap_failed _ ->
     (* Graceful degradation under memory pressure: hand back whatever was
        gathered before the failed span grow.  An empty result tells the
        caller the allocation itself must reclaim and retry. *)
     ());
  !k - pos

let return_objects t ~cls ~addrs ~now =
  let cs = t.classes.(cls) in
  List.iter
    (fun a ->
      let span =
        match Pageheap.span_of_addr t.pageheap a with
        | Some span -> span
        | None -> invalid_arg "Central_free_list.return_objects: wild pointer"
      in
      if span.Span.size_class <> cls then
        invalid_arg "Central_free_list.return_objects: class mismatch";
      let was_exhausted = Span.free_objects span = 0 in
      Span.push_object span a;
      cs.free_objects <- cs.free_objects + 1;
      if Span.is_idle span then begin
        cs.free_objects <- cs.free_objects - span.Span.capacity;
        Hashtbl.remove cs.spans span.Span.id;
        Span.set_list_index span (-1);
        note_released t span ~now;
        t.released_span_bytes <- t.released_span_bytes + Span.span_bytes span;
        Pageheap.free_span t.pageheap span
      end
      else relist t cs span ~force:was_exhausted)
    addrs

(* Plain index loop: this runs every driver epoch, and the closure the
   [Array.iteri] form captures its accumulator in would allocate. *)
let fragmented_bytes t =
  let total = ref 0 in
  for cls = 0 to Array.length t.classes - 1 do
    let cs = Array.unsafe_get t.classes cls in
    total := !total + (cs.free_objects * Size_class.size cls)
  done;
  !total

let released_span_bytes t = t.released_span_bytes

let iter_spans t f = Array.iter (fun cs -> Hashtbl.iter (fun _ span -> f span) cs.spans) t.classes

let span_count t ~cls = Hashtbl.length t.classes.(cls).spans
let total_span_count t = Array.fold_left (fun acc cs -> acc + Hashtbl.length cs.spans) 0 t.classes

let snapshot t ~now =
  match t.span_stats with
  | None -> ()
  | Some stats ->
    Array.iteri
      (fun cls cs ->
        Hashtbl.iter
          (fun _ span ->
            Span_stats.observe stats ~span_id:span.Span.id ~cls
              ~outstanding:span.Span.outstanding ~now)
          cs.spans)
      t.classes
