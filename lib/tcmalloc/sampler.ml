open Wsc_substrate

type addr = int

type t = {
  period : int;
  mutable bytes_until_sample : int;
  tracked : (addr, int * float) Hashtbl.t;  (* addr -> size, alloc time *)
  (* Membership mirror of [tracked]: the per-free "was this sampled?" probe
     is almost always a miss, and an Int_table miss neither hashes through
     a bucket chain nor needs the clock, so the hot free path stays
     allocation-free.  [tracked] keeps the payload for the rare hits. *)
  tracked_set : Int_table.t;
  mutable sampled : int;
}

let create ~period_bytes =
  if period_bytes <= 0 then invalid_arg "Sampler.create: period must be positive";
  {
    period = period_bytes;
    bytes_until_sample = period_bytes;
    tracked = Hashtbl.create 256;
    tracked_set = Int_table.create ~initial_capacity:256 ();
    sampled = 0;
  }

(* Advance the byte counter; [true] means this allocation crossed a sample
   boundary and the caller must [track] it (with a clock reading — deferred
   so the sampled-or-not decision itself never touches the clock). *)
let[@inline] tick t ~size =
  let left = t.bytes_until_sample - size in
  t.bytes_until_sample <- left;
  left <= 0

let track t a ~size ~now =
  t.bytes_until_sample <- t.bytes_until_sample + t.period;
  (* Very large single allocations may cross several periods at once. *)
  if t.bytes_until_sample <= 0 then
    t.bytes_until_sample <- t.period - (-t.bytes_until_sample mod t.period);
  Hashtbl.replace t.tracked a (size, now);
  Int_table.set t.tracked_set a 1;
  t.sampled <- t.sampled + 1

let on_alloc t a ~size ~now =
  if tick t ~size then begin
    track t a ~size ~now;
    true
  end
  else false

let[@inline] is_tracked t a = Int_table.mem t.tracked_set a

let on_free t a ~now =
  match Hashtbl.find_opt t.tracked a with
  | None -> None
  | Some (size, born) ->
    Hashtbl.remove t.tracked a;
    Int_table.remove t.tracked_set a;
    Some (size, now -. born)

let sampled_count t = t.sampled
let live_tracked t = Hashtbl.length t.tracked
let live_heap_estimate_bytes t = Hashtbl.length t.tracked * t.period

let live_profile t =
  let bins = Hashtbl.create 48 in
  Hashtbl.iter
    (fun _ (size, _) ->
      let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
      let bin = 1 lsl log2 (max 1 size) 0 in
      Hashtbl.replace bins bin (1 + Option.value ~default:0 (Hashtbl.find_opt bins bin)))
    t.tracked;
  Hashtbl.fold (fun bin n acc -> (bin, n) :: acc) bins []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
