type addr = int

type t = {
  period : int;
  mutable bytes_until_sample : int;
  tracked : (addr, int * float) Hashtbl.t;  (* addr -> size, alloc time *)
  mutable sampled : int;
}

let create ~period_bytes =
  if period_bytes <= 0 then invalid_arg "Sampler.create: period must be positive";
  { period = period_bytes; bytes_until_sample = period_bytes; tracked = Hashtbl.create 256; sampled = 0 }

let on_alloc t a ~size ~now =
  t.bytes_until_sample <- t.bytes_until_sample - size;
  if t.bytes_until_sample <= 0 then begin
    t.bytes_until_sample <- t.bytes_until_sample + t.period;
    (* Very large single allocations may cross several periods at once. *)
    if t.bytes_until_sample <= 0 then
      t.bytes_until_sample <- t.period - (-t.bytes_until_sample mod t.period);
    Hashtbl.replace t.tracked a (size, now);
    t.sampled <- t.sampled + 1;
    true
  end
  else false

let on_free t a ~now =
  match Hashtbl.find_opt t.tracked a with
  | None -> None
  | Some (size, born) ->
    Hashtbl.remove t.tracked a;
    Some (size, now -. born)

let sampled_count t = t.sampled
let live_tracked t = Hashtbl.length t.tracked
let live_heap_estimate_bytes t = Hashtbl.length t.tracked * t.period

let live_profile t =
  let bins = Hashtbl.create 48 in
  Hashtbl.iter
    (fun _ (size, _) ->
      let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
      let bin = 1 lsl log2 (max 1 size) 0 in
      Hashtbl.replace bins bin (1 + Option.value ~default:0 (Hashtbl.find_opt bins bin)))
    t.tracked;
  Hashtbl.fold (fun bin n acc -> (bin, n) :: acc) bins []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
