(** The pagemap: object address -> owning span.

    [free(ptr)] must recover the span (and hence size class) of an arbitrary
    address.  Real TCMalloc uses a radix tree over page numbers; the model
    uses a hash table keyed by TCMalloc page index, registering every page
    of a span when the pageheap carves it and unregistering on return. *)

type t

val create : unit -> t

val register : t -> Span.t -> unit
(** Map all pages of the span.  @raise Invalid_argument if any page is
    already owned (overlapping spans indicate allocator corruption). *)

val unregister : t -> Span.t -> unit
(** Remove the span's pages.  @raise Invalid_argument if a page was not
    registered to this span. *)

val lookup : t -> int -> Span.t option
(** Span owning the page that contains the given address. *)

val lookup_exn : t -> int -> Span.t
(** @raise Invalid_argument when the address belongs to no span (wild or
    already-unmapped free). *)

val span_count : t -> int
(** Number of distinct registered spans. *)

val iter_spans : t -> (Span.t -> unit) -> unit
(** Visit each registered span exactly once (order unspecified); used by
    the heap auditor to walk the whole heap. *)
