open Wsc_substrate

type addr = int

type t = {
  id : int;
  base : addr;
  pages : int;
  size_class : int;
  obj_size : int;
  capacity : int;
  mutable outstanding : int;
  free_slots : Int_stack.t;
  slot_taken : Bytes.t;
  mutable list_index : int;
  birth_time : float;
}

let page_size = Units.tcmalloc_page_size

let create_small ~id ~base ~size_class ~birth_time =
  let info = Size_class.info size_class in
  let free_slots = Int_stack.create ~initial_capacity:info.capacity () in
  (* Push high indices first so allocation proceeds from the span base up,
     matching the address-order carving of the real allocator. *)
  for slot = info.capacity - 1 downto 0 do
    Int_stack.push free_slots slot
  done;
  {
    id;
    base;
    pages = info.pages;
    size_class;
    obj_size = info.size;
    capacity = info.capacity;
    outstanding = 0;
    free_slots;
    slot_taken = Bytes.make info.capacity '\000';
    list_index = -1;
    birth_time;
  }

let create_large ~id ~base ~pages ~birth_time =
  {
    id;
    base;
    pages;
    size_class = -1;
    obj_size = pages * page_size;
    capacity = 1;
    outstanding = 0;
    free_slots = Int_stack.create ~initial_capacity:1 ();
    slot_taken = Bytes.make 1 '\000';
    list_index = -1;
    birth_time;
  }

let span_bytes t = t.pages * page_size
let is_large t = t.size_class < 0
let free_objects t = t.capacity - t.outstanding
let is_exhausted t = t.outstanding = t.capacity
let is_idle t = t.outstanding = 0

let pop_object t =
  if is_large t then begin
    if t.outstanding > 0 then invalid_arg "Span.pop_object: large span already taken";
    t.outstanding <- 1;
    t.base
  end
  else begin
    match Int_stack.pop_opt t.free_slots with
    | None -> invalid_arg "Span.pop_object: exhausted"
    | Some slot ->
      assert (Bytes.get t.slot_taken slot = '\000');
      Bytes.set t.slot_taken slot '\001';
      t.outstanding <- t.outstanding + 1;
      t.base + (slot * t.obj_size)
  end

let pop_objects t ~n =
  let k = min n (free_objects t) in
  List.init k (fun _ -> pop_object t)

let pop_objects_into t ~n ~buf ~pos =
  let k = min n (free_objects t) in
  for i = 0 to k - 1 do
    buf.(pos + i) <- pop_object t
  done;
  k

let contains t addr = addr >= t.base && addr < t.base + span_bytes t

let push_object t addr =
  if not (contains t addr) then invalid_arg "Span.push_object: address outside span";
  if is_large t then begin
    if t.outstanding = 0 then invalid_arg "Span.push_object: large span double free";
    t.outstanding <- 0
  end
  else begin
    let offset = addr - t.base in
    if offset mod t.obj_size <> 0 then invalid_arg "Span.push_object: misaligned object";
    let slot = offset / t.obj_size in
    if Bytes.get t.slot_taken slot = '\000' then
      invalid_arg "Span.push_object: double free";
    Bytes.set t.slot_taken slot '\000';
    Int_stack.push t.free_slots slot;
    t.outstanding <- t.outstanding - 1
  end

let object_is_free t addr =
  if not (contains t addr) then invalid_arg "Span.object_is_free: address outside span";
  if is_large t then t.outstanding = 0
  else begin
    let offset = addr - t.base in
    offset mod t.obj_size = 0 && Bytes.get t.slot_taken (offset / t.obj_size) = '\000'
  end

let fragmented_bytes t = free_objects t * t.obj_size
let set_list_index t i = t.list_index <- i
