(** Allocator telemetry.

    Mirrors the counters behind the paper's characterization figures: CPU
    cycles per allocator component (Fig. 6a), tier hit counts (Fig. 4
    context), object-size distributions by count and by bytes (Fig. 7),
    size-conditioned lifetime distributions (Fig. 8), per-vCPU front-end
    misses (Fig. 9b), NUCA object-reuse locality (Table 1), and the running
    internal-fragmentation balance (Fig. 5b/6b).  Time is charged in
    nanoseconds of allocator work; callers convert to cycle fractions using
    the platform frequency and total runtime. *)

type t

val create : unit -> t

(** {2 Cost charging (ns of allocator CPU)} *)

val charge_tier : t -> Wsc_hw.Cost_model.tier -> float -> unit
val charge_prefetch : t -> float -> unit
val charge_sampled : t -> float -> unit
val charge_other : t -> float -> unit

val tier_ns : t -> Wsc_hw.Cost_model.tier -> float
val prefetch_ns : t -> float
val sampled_ns : t -> float
val other_ns : t -> float

val total_malloc_ns : t -> float
(** Sum of all charged allocator time. *)

(** {2 Measurement windows}

    Profiling windows exclude warmup: {!mark} snapshots every cycle
    category, and the [*_since_mark] accessors report deltas since the
    last mark (since creation if never marked). *)

val mark : t -> unit
val tier_ns_since_mark : t -> Wsc_hw.Cost_model.tier -> float
val prefetch_ns_since_mark : t -> float
val sampled_ns_since_mark : t -> float
val other_ns_since_mark : t -> float
val total_malloc_ns_since_mark : t -> float

(** {2 Allocation stream} *)

val record_alloc : t -> requested:int -> rounded:int -> unit
(** One successful allocation: [requested] bytes asked, [rounded] bytes
    granted (size-class size, or page-rounded for large objects). *)

val record_free : t -> requested:int -> rounded:int -> unit

val record_hit : t -> Wsc_hw.Cost_model.tier -> unit
(** Deepest tier touched while satisfying one allocation. *)

val alloc_count : t -> int
val free_count : t -> int
val live_requested_bytes : t -> int
(** Application-live bytes as requested. *)

val live_rounded_bytes : t -> int
(** Application-live bytes as granted (>= requested). *)

val internal_fragmentation_bytes : t -> int
(** [live_rounded - live_requested]: the size-class rounding slack. *)

val hits : t -> Wsc_hw.Cost_model.tier -> int

(** {2 Distributions} *)

val size_histogram_count : t -> Wsc_substrate.Histogram.t
(** Allocations by object size, weighted by count (Fig. 7 "Object Count"). *)

val size_histogram_bytes : t -> Wsc_substrate.Histogram.t
(** Allocations by object size, weighted by bytes (Fig. 7 "Memory"). *)

val record_lifetime : t -> size:int -> lifetime_ns:float -> unit
(** One sampled object's (size, lifetime) pair (Fig. 8). *)

val lifetime_bins : t -> (int * Wsc_substrate.Histogram.t) list
(** [(size_bin_lower_bound, lifetime histogram)] pairs, ascending by size;
    only bins with samples appear. *)

val lifetime_fraction :
  t -> size_min:int -> size_max:int -> lifetime_below_ns:float -> float
(** Fraction of sampled objects in the given size range whose lifetime is
    below the bound (e.g. "46% of <1 KiB objects live < 1 ms"). *)

(** {2 Front-end miss accounting (Fig. 9b)} *)

val record_front_end_miss : t -> vcpu:int -> unit
val front_end_misses : t -> int array
(** Cumulative misses per vCPU id (index = vCPU). *)

(** {2 Transfer-cache locality (Table 1)} *)

val record_object_reuse : t -> remote:bool -> unit
(** An allocation was satisfied with an object freed on another LLC domain
    ([remote = true]) or the local one. *)

val remote_reuses : t -> int
val local_reuses : t -> int

val remote_reuse_fraction : t -> float
(** [remote / (remote + local)]; 0 when no reuse occurred. *)

(** {2 Reclaim cascade (memory-pressure survival)} *)

type reclaim_tier =
  | Front_end  (** Per-CPU cache objects flushed to the transfer cache. *)
  | Transfer  (** Transfer-cache objects (all shards) drained to the CFL. *)
  | Cfl_spans  (** Bytes of spans that drained and returned to the pageheap. *)
  | Os_release  (** Bytes actually given back to the OS (resident drop). *)

val reclaim_tier_name : reclaim_tier -> string
val all_reclaim_tiers : reclaim_tier list

val record_reclaim : t -> reclaim_tier -> int -> unit
(** Bytes moved out of one tier by a cascade invocation. *)

val record_reclaim_event : t -> unit
(** One invocation of the reclaim cascade. *)

val record_reclaim_retry : t -> unit
(** One allocation retry after an mmap failure triggered the cascade. *)

val record_oom : t -> unit
(** The retry budget ran out and [Out_of_memory] surfaced. *)

val reclaimed_bytes : t -> reclaim_tier -> int
val total_reclaimed_bytes : t -> int
val reclaim_events : t -> int
val reclaim_retries : t -> int
val oom_events : t -> int

(** {2 Restartable sequences (preemption-safe fast path)} *)

val record_rseq_op : t -> restarts:int -> fell_back:bool -> unit
(** One fast-path operation run under {!Wsc_os.Rseq}: [restarts] aborted
    attempts preceded it, and [fell_back] means the restart budget ran out
    and the operation took the transfer-cache slow path instead. *)

val rseq_ops : t -> int
val rseq_restarts : t -> int
(** Total aborted attempts — each one re-ran the 3.1 ns fast path
    (Fig. 4), which is the restart overhead the CLI quantifies. *)

val rseq_fallbacks : t -> int

val record_stranded_reclaim : t -> bytes:int -> unit
(** One stranded-cache drain: a per-CPU cache whose vCPU id was retired
    by churn or pool shrink gave [bytes] back to the transfer cache. *)

val stranded_reclaim_bytes : t -> int
val stranded_reclaim_events : t -> int
