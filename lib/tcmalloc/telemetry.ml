open Wsc_substrate
module Cost_model = Wsc_hw.Cost_model

let tier_slot = function
  | Cost_model.Per_cpu_cache -> 0
  | Cost_model.Transfer_cache -> 1
  | Cost_model.Central_free_list -> 2
  | Cost_model.Pageheap -> 3
  | Cost_model.Mmap -> 4

type t = {
  tier_ns : float array;
  (* prefetch / sampled / other, as float-array slots so the per-event
     accumulation stores stay unboxed *)
  aux_ns : float array;
  tier_hits : int array;
  mutable allocs : int;
  mutable frees : int;
  mutable live_requested : int;
  mutable live_rounded : int;
  size_count : Histogram.t;
  size_bytes : Histogram.t;
  (* lifetime histograms keyed by log2 size bin *)
  lifetimes : (int, Histogram.t) Hashtbl.t;
  mutable vcpu_misses : int array;
  mutable remote_reuses : int;
  mutable local_reuses : int;
  (* reclaim cascade: bytes drained per tier, in cascade order *)
  reclaim_bytes : int array;
  mutable reclaim_events : int;
  mutable reclaim_retries : int;
  mutable oom_events : int;
  (* restartable-sequence fast path *)
  mutable rseq_ops : int;
  mutable rseq_restarts : int;
  mutable rseq_fallbacks : int;
  mutable stranded_reclaim_bytes : int;
  mutable stranded_reclaim_events : int;
  (* measurement-window baselines (snapshot at [mark]) *)
  mark_tier_ns : float array;
  mark_aux_ns : float array;
}

let aux_prefetch = 0
let aux_sampled = 1
let aux_other = 2

let size_hist () = Histogram.create ~base:2.0 ~lo:8.0 ~hi:1.1e12 ()
let lifetime_hist () = Histogram.create ~base:10.0 ~lo:100.0 ~hi:1e15 ()

let create () =
  {
    tier_ns = Array.make 5 0.0;
    aux_ns = Array.make 3 0.0;
    tier_hits = Array.make 5 0;
    allocs = 0;
    frees = 0;
    live_requested = 0;
    live_rounded = 0;
    size_count = size_hist ();
    size_bytes = size_hist ();
    lifetimes = Hashtbl.create 48;
    vcpu_misses = Array.make 8 0;
    remote_reuses = 0;
    local_reuses = 0;
    reclaim_bytes = Array.make 4 0;
    reclaim_events = 0;
    reclaim_retries = 0;
    oom_events = 0;
    rseq_ops = 0;
    rseq_restarts = 0;
    rseq_fallbacks = 0;
    stranded_reclaim_bytes = 0;
    stranded_reclaim_events = 0;
    mark_tier_ns = Array.make 5 0.0;
    mark_aux_ns = Array.make 3 0.0;
  }

let[@inline] charge_tier t tier ns = t.tier_ns.(tier_slot tier) <- t.tier_ns.(tier_slot tier) +. ns
let[@inline] charge_prefetch t ns = t.aux_ns.(aux_prefetch) <- t.aux_ns.(aux_prefetch) +. ns
let[@inline] charge_sampled t ns = t.aux_ns.(aux_sampled) <- t.aux_ns.(aux_sampled) +. ns
let[@inline] charge_other t ns = t.aux_ns.(aux_other) <- t.aux_ns.(aux_other) +. ns
let tier_ns t tier = t.tier_ns.(tier_slot tier)
let prefetch_ns t = t.aux_ns.(aux_prefetch)
let sampled_ns t = t.aux_ns.(aux_sampled)
let other_ns t = t.aux_ns.(aux_other)

let total_malloc_ns t =
  Array.fold_left ( +. ) 0.0 t.tier_ns +. Array.fold_left ( +. ) 0.0 t.aux_ns

let mark t =
  Array.blit t.tier_ns 0 t.mark_tier_ns 0 5;
  Array.blit t.aux_ns 0 t.mark_aux_ns 0 3

let tier_ns_since_mark t tier = t.tier_ns.(tier_slot tier) -. t.mark_tier_ns.(tier_slot tier)
let prefetch_ns_since_mark t = t.aux_ns.(aux_prefetch) -. t.mark_aux_ns.(aux_prefetch)
let sampled_ns_since_mark t = t.aux_ns.(aux_sampled) -. t.mark_aux_ns.(aux_sampled)
let other_ns_since_mark t = t.aux_ns.(aux_other) -. t.mark_aux_ns.(aux_other)

let total_malloc_ns_since_mark t =
  let tiers = ref 0.0 in
  for i = 0 to 4 do
    tiers := !tiers +. t.tier_ns.(i) -. t.mark_tier_ns.(i)
  done;
  for i = 0 to 2 do
    tiers := !tiers +. t.aux_ns.(i) -. t.mark_aux_ns.(i)
  done;
  !tiers

let record_alloc t ~requested ~rounded =
  t.allocs <- t.allocs + 1;
  t.live_requested <- t.live_requested + requested;
  t.live_rounded <- t.live_rounded + rounded;
  let fsize = float_of_int requested in
  (* both size views share geometry: pay for the log-bin lookup once *)
  let bin = Histogram.bin_index t.size_count fsize in
  Histogram.add_at t.size_count bin ~weight:1.0;
  Histogram.add_at t.size_bytes bin ~weight:fsize

let[@inline] record_free t ~requested ~rounded =
  t.frees <- t.frees + 1;
  t.live_requested <- t.live_requested - requested;
  t.live_rounded <- t.live_rounded - rounded

let[@inline] record_hit t tier = t.tier_hits.(tier_slot tier) <- t.tier_hits.(tier_slot tier) + 1
let alloc_count t = t.allocs
let free_count t = t.frees
let live_requested_bytes t = t.live_requested
let live_rounded_bytes t = t.live_rounded
let internal_fragmentation_bytes t = t.live_rounded - t.live_requested
let hits t tier = t.tier_hits.(tier_slot tier)
let size_histogram_count t = t.size_count
let size_histogram_bytes t = t.size_bytes

let size_bin_of size =
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  log2 (max 1 size) 0

let record_lifetime t ~size ~lifetime_ns =
  let bin = size_bin_of size in
  let hist =
    match Hashtbl.find_opt t.lifetimes bin with
    | Some h -> h
    | None ->
      let h = lifetime_hist () in
      Hashtbl.replace t.lifetimes bin h;
      h
  in
  Histogram.add hist lifetime_ns

let lifetime_bins t =
  Hashtbl.fold (fun bin h acc -> ((1 lsl bin), h) :: acc) t.lifetimes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let lifetime_fraction t ~size_min ~size_max ~lifetime_below_ns =
  let total = ref 0.0 and below = ref 0.0 in
  Hashtbl.iter
    (fun bin h ->
      let size = 1 lsl bin in
      if size >= size_min && size <= size_max then begin
        total := !total +. Histogram.total_weight h;
        below :=
          !below +. (Histogram.fraction_below h lifetime_below_ns *. Histogram.total_weight h)
      end)
    t.lifetimes;
  if !total <= 0.0 then 0.0 else !below /. !total

let record_front_end_miss t ~vcpu =
  let n = Array.length t.vcpu_misses in
  if vcpu >= n then begin
    let bigger = Array.make (max (vcpu + 1) (2 * n)) 0 in
    Array.blit t.vcpu_misses 0 bigger 0 n;
    t.vcpu_misses <- bigger
  end;
  t.vcpu_misses.(vcpu) <- t.vcpu_misses.(vcpu) + 1

let front_end_misses t = Array.copy t.vcpu_misses

let record_object_reuse t ~remote =
  if remote then t.remote_reuses <- t.remote_reuses + 1
  else t.local_reuses <- t.local_reuses + 1

let remote_reuses t = t.remote_reuses
let local_reuses t = t.local_reuses

type reclaim_tier = Front_end | Transfer | Cfl_spans | Os_release

let reclaim_slot = function
  | Front_end -> 0
  | Transfer -> 1
  | Cfl_spans -> 2
  | Os_release -> 3

let reclaim_tier_name = function
  | Front_end -> "front-end"
  | Transfer -> "transfer"
  | Cfl_spans -> "cfl-spans"
  | Os_release -> "os-release"

let all_reclaim_tiers = [ Front_end; Transfer; Cfl_spans; Os_release ]

let record_reclaim t tier bytes =
  let slot = reclaim_slot tier in
  t.reclaim_bytes.(slot) <- t.reclaim_bytes.(slot) + bytes

let record_reclaim_event t = t.reclaim_events <- t.reclaim_events + 1
let record_reclaim_retry t = t.reclaim_retries <- t.reclaim_retries + 1
let record_oom t = t.oom_events <- t.oom_events + 1
let reclaimed_bytes t tier = t.reclaim_bytes.(reclaim_slot tier)
let total_reclaimed_bytes t = Array.fold_left ( + ) 0 t.reclaim_bytes
let reclaim_events t = t.reclaim_events
let reclaim_retries t = t.reclaim_retries
let oom_events t = t.oom_events

let record_rseq_op t ~restarts ~fell_back =
  t.rseq_ops <- t.rseq_ops + 1;
  t.rseq_restarts <- t.rseq_restarts + restarts;
  if fell_back then t.rseq_fallbacks <- t.rseq_fallbacks + 1

let rseq_ops t = t.rseq_ops
let rseq_restarts t = t.rseq_restarts
let rseq_fallbacks t = t.rseq_fallbacks

let record_stranded_reclaim t ~bytes =
  t.stranded_reclaim_events <- t.stranded_reclaim_events + 1;
  t.stranded_reclaim_bytes <- t.stranded_reclaim_bytes + bytes

let stranded_reclaim_bytes t = t.stranded_reclaim_bytes
let stranded_reclaim_events t = t.stranded_reclaim_events

let remote_reuse_fraction t =
  let total = t.remote_reuses + t.local_reuses in
  if total = 0 then 0.0 else float_of_int t.remote_reuses /. float_of_int total
