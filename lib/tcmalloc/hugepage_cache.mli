(** The hugepage cache (Sec. 4.4).

    Holds runs of completely-free hugepages.  Whole-hugepage allocations are
    served from cached runs (splitting larger runs) before asking the kernel
    for fresh memory; freed runs re-enter the cache instead of being
    unmapped immediately, and a background policy gradually returns cached
    runs to the OS (the "release memory gradually" behaviour of Sec. 3). *)

type addr = int

type t

val create : Wsc_os.Vm.t -> t

type grant = { base : addr; fresh : bool  (** [true] if the run came from mmap. *) }

val allocate : t -> hugepages:int -> grant
(** A run of [hugepages] contiguous hugepages: reused from the cache when a
    cached run is large enough (first fit, splitting), otherwise mmapped. *)

val free : t -> addr -> hugepages:int -> unit
(** Insert a fully-free run into the cache. *)

val release : t -> max_hugepages:int -> int
(** Unmap up to [max_hugepages] cached hugepages back to the OS, largest
    runs first, but never more than the cache's low watermark — the
    portion of the cache that went untouched since the previous release is
    surplus; the rest is working set about to be reused (TCMalloc's
    HugeCache demand-based release).  Returns hugepages actually
    released. *)

val cached_hugepages : t -> int
val cached_bytes : t -> int
