(** Allocator configuration and the four optimization flags.

    [baseline] reproduces the state of TCMalloc before the paper's changes:
    statically sized 3 MiB per-CPU caches, one centralized transfer cache,
    singly-listed central free lists, and the OSDI'21 hugepage-aware filler.
    Each Sec. 4 optimization is an independent flag so fleet A/B experiments
    can toggle exactly one dimension. *)

type front_end_mode =
  | Per_cpu_caches
      (** Modern TCMalloc: caches indexed by dense vCPU id (Sec. 2.1). *)
  | Per_thread_caches
      (** The legacy design the paper's footnote 2 retires: one cache per
          software thread.  Inaccessible to other threads, such caches
          strand memory when their thread goes idle, and scale poorly in
          applications with thousands of threads. *)

type backend_kind =
  | Tcmalloc  (** The paper's allocator: the full model in this library. *)
  | Rpmalloc
      (** rpmalloc-style rival (span ownership, deferred cross-CPU frees,
          span caches) implemented in [Wsc_backend.Rpmalloc_model]. *)
  | Jemalloc
      (** jemalloc-style rival (independent arenas, 25%-spaced classes,
          extent allocation) implemented in [Wsc_backend.Jemalloc_model]. *)

val backend_name : backend_kind -> string
val backend_of_name : string -> backend_kind option
val all_backends : backend_kind list

type t = {
  (* Which allocator model serves this process.  The selection rides in the
     config so it flows unchanged through [Machine]/[Fleet]/[Campaign]/
     [Ab_test]/[Replay]; only the TCMalloc-specific knobs below apply to the
     rival backends' shared surface (limits, reclaim budget). *)
  backend : backend_kind;
  (* Sizes and structural constants *)
  max_small_size : int;  (** Largest size served by the cache hierarchy: 256 KiB. *)
  front_end : front_end_mode;
  (* Sec. 4.1 — per-CPU cache *)
  per_cpu_cache_bytes : int;
      (** Capacity budget of one per-CPU cache (3 MiB static / 1.5 MiB when
          dynamic resizing is on). *)
  per_cpu_class_cap_objects : int;
      (** Upper bound on objects one (vCPU, size-class) list may hold
          (TCMalloc's per-class capacity, 2048); overflow past it spills a
          batch to the transfer cache even when the byte budget has room. *)
  dynamic_per_cpu_caches : bool;  (** Heterogeneous usage-based sizing. *)
  resize_interval_ns : float;  (** 5 s between resize passes. *)
  resize_grow_candidates : int;  (** Top-k missing caches that grow: 5. *)
  resize_step_bytes : int;  (** Capacity moved per victim per pass. *)
  (* Sec. 4.2 — transfer cache *)
  nuca_aware_transfer_cache : bool;
  transfer_cache_bytes_per_class : int;
      (** Per-size-class object capacity of a transfer cache shard. *)
  transfer_release_interval_ns : float;
      (** Period of the background release that drains NUCA shards to the
          central transfer cache to prevent stranding. *)
  (* Sec. 4.3 — central free list *)
  span_prioritization : bool;
  cfl_lists : int;  (** L, number of occupancy-indexed lists: 8. *)
  (* Sec. 4.4 — pageheap *)
  lifetime_aware_filler : bool;
  lifetime_capacity_threshold : int;
      (** C: spans with capacity < C are treated as short-lived: 16. *)
  pageheap_release_interval_ns : float;
  pageheap_release_fraction : float;
      (** Fraction of the free backlog released to the OS per release tick;
          the paper notes TCMalloc "releases memory gradually". *)
  (* Telemetry *)
  sample_period_bytes : int;  (** One sampled allocation per 2 MiB allocated. *)
  (* Memory-pressure survival *)
  reclaim_retries : int;
      (** Failed-mmap retry budget: each retry runs the reclaim cascade and
          reattempts before {!Malloc.malloc} surfaces [Out_of_memory]: 3. *)
  reclaim_min_target_bytes : int;
      (** Floor on the cascade's per-invocation target, so a failed small
          allocation still reclaims a useful batch: 8 MiB. *)
  soft_limit_check_interval_ns : float;
      (** Period of the soft-limit watchdog ticker that triggers the
          reclaim cascade while resident bytes exceed the soft limit. *)
  rseq_max_restarts : int;
      (** Restart budget of one restartable fast-path operation: a
          preempted attempt aborts and retries at most this many times
          before the allocator takes the transfer-cache slow path: 3. *)
  stranded_reclaim_interval_ns : float;
      (** Period of the background pass that drains per-CPU caches whose
          vCPU id was retired (churn / pool shrink) back to the transfer
          cache — the paper's cold-cache reclaim (Sec. 4.1). *)
}

val baseline : t
(** All four optimizations off; per-CPU front-end. *)

val legacy_per_thread : t
(** [baseline] with the retired per-thread front-end (footnote 2), for the
    stranded-memory ablation. *)

val all_optimizations : t
(** All four optimizations on (Sec. 4.5 "putting it all together"). *)

val with_dynamic_per_cpu : bool -> t -> t
(** Toggle Sec. 4.1; when enabling, also halves the per-CPU budget to
    1.5 MiB as the paper's deployment did. *)

val with_backend : backend_kind -> t -> t

val rpmalloc : t
(** [baseline] served by the rpmalloc-style backend. *)

val jemalloc : t
(** [baseline] served by the jemalloc-style backend. *)

val with_nuca_transfer_cache : bool -> t -> t
val with_span_prioritization : bool -> t -> t
val with_lifetime_aware_filler : bool -> t -> t

val describe : t -> string
(** One-line summary of which optimizations are enabled. *)
