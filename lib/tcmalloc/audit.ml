open Wsc_substrate
module Vm = Wsc_os.Vm

type violation = { check : string; detail : string }

type report = {
  time : float;
  spans_walked : int;
  hugepages_walked : int;
  stranded_bytes : int;
  violations : violation list;
}

let page_size = Units.tcmalloc_page_size
let hugepage_size = Units.hugepage_size
let pages_per_hugepage = Units.pages_per_hugepage

let is_clean r = r.violations = []

let span_kind s = if Span.is_large s then "large" else "small"

let run m =
  let violations = ref [] in
  let add check fmt =
    Printf.ksprintf (fun detail -> violations := { check; detail } :: !violations) fmt
  in
  let pageheap = Malloc.pageheap m in
  let pm = Pageheap.page_map pageheap in
  let vm = Malloc.vm m in
  let spans = ref [] in
  Page_map.iter_spans pm (fun s -> spans := s :: !spans);
  let spans = List.sort (fun a b -> compare a.Span.base b.Span.base) !spans in
  let n_spans = List.length spans in

  (* 1. Cross-tier byte conservation.  Every carved object byte is either
     live in the application (rounded), cached in the per-CPU or transfer
     tiers, or free in its span (central-free-list fragmentation). *)
  let stats = Malloc.heap_stats m in
  let carved =
    List.fold_left (fun acc s -> acc + (s.Span.capacity * s.Span.obj_size)) 0 spans
  in
  let accounted =
    stats.Malloc.live_rounded_bytes + stats.Malloc.front_end_cached_bytes
    + stats.Malloc.transfer_cached_bytes + stats.Malloc.cfl_fragmented_bytes
  in
  if carved <> accounted then
    add "byte-conservation"
      "carved span bytes %d <> live %d + front-end %d + transfer %d + cfl free %d = %d"
      carved stats.Malloc.live_rounded_bytes stats.Malloc.front_end_cached_bytes
      stats.Malloc.transfer_cached_bytes stats.Malloc.cfl_fragmented_bytes accounted;

  (* 2. Central-free-list bookkeeping vs a direct heap walk: its cached
     fragmentation counter must equal the free slots actually found in
     spans, and every span it holds must be a registered small span. *)
  let cfl = Malloc.central_free_list m in
  let walked_free =
    List.fold_left
      (fun acc s -> if Span.is_large s then acc else acc + Span.fragmented_bytes s)
      0 spans
  in
  let cfl_fragmented = Central_free_list.fragmented_bytes cfl in
  if walked_free <> cfl_fragmented then
    add "cfl-accounting" "walked free-object bytes %d <> cfl fragmented_bytes %d"
      walked_free cfl_fragmented;
  let registered_small = Hashtbl.create 256 in
  List.iter
    (fun s -> if not (Span.is_large s) then Hashtbl.replace registered_small s.Span.id ())
    spans;
  let cfl_spans = ref 0 in
  Central_free_list.iter_spans cfl (fun s ->
      incr cfl_spans;
      if not (Hashtbl.mem registered_small s.Span.id) then
        add "cfl-accounting" "cfl holds span %d (base=0x%x) absent from the page map"
          s.Span.id s.Span.base);
  if !cfl_spans <> Hashtbl.length registered_small then
    add "cfl-accounting" "cfl holds %d spans, page map registers %d small spans"
      !cfl_spans
      (Hashtbl.length registered_small);

  (* 3. Page-map coverage: every page of every span resolves back to that
     span, and the span census matches the pageheap's placement table. *)
  List.iter
    (fun s ->
      let first = s.Span.base / page_size in
      for p = first to first + s.Span.pages - 1 do
        match Page_map.lookup pm (p * page_size) with
        | Some owner when owner.Span.id = s.Span.id -> ()
        | Some owner ->
          add "page-map-coverage" "page %d of span %d resolves to span %d" p s.Span.id
            owner.Span.id
        | None -> add "page-map-coverage" "page %d of span %d is unmapped" p s.Span.id
      done)
    spans;
  if Page_map.span_count pm <> Pageheap.spans_outstanding pageheap then
    add "page-map-coverage" "page map registers %d spans, pageheap tracks %d placements"
      (Page_map.span_count pm)
      (Pageheap.spans_outstanding pageheap);

  (* 4. Span address-range disjointness, and every span page backed by a
     mapped hugepage in the simulated VM. *)
  let prev : Span.t option ref = ref None in
  List.iter
    (fun s ->
      (match !prev with
      | Some p when p.Span.base + Span.span_bytes p > s.Span.base ->
        add "span-disjointness" "%s span %d [0x%x,0x%x) overlaps %s span %d [0x%x,0x%x)"
          (span_kind p) p.Span.id p.Span.base
          (p.Span.base + Span.span_bytes p)
          (span_kind s) s.Span.id s.Span.base
          (s.Span.base + Span.span_bytes s)
      | Some _ | None -> ());
      prev := Some s;
      let first = s.Span.base / page_size in
      for p = first to first + s.Span.pages - 1 do
        if not (Vm.is_mapped vm (p * page_size)) then
          add "vm-backing" "page %d of span %d lies on an unmapped hugepage" p s.Span.id
      done)
    spans;

  (* 5. VM aggregate counters vs a full hugepage walk (the O(1) resident /
     huge-backed accounting must agree with ground truth). *)
  let mapped = ref 0 and huge = ref 0 and subreleased = ref 0 in
  Vm.iter_hugepages vm (fun ~base ~huge:h ~subreleased_pages ->
      incr mapped;
      if h then incr huge;
      subreleased := !subreleased + subreleased_pages;
      if subreleased_pages < 0 || subreleased_pages > pages_per_hugepage then
        add "vm-accounting" "hugepage 0x%x has impossible subreleased_pages=%d" base
          subreleased_pages);
  let n_hugepages = !mapped in
  if !mapped * hugepage_size <> Vm.mapped_bytes vm then
    add "vm-accounting" "walked mapped bytes %d <> Vm.mapped_bytes %d"
      (!mapped * hugepage_size) (Vm.mapped_bytes vm);
  if !huge * hugepage_size <> Vm.huge_backed_bytes vm then
    add "vm-accounting" "walked huge-backed bytes %d <> Vm.huge_backed_bytes %d"
      (!huge * hugepage_size) (Vm.huge_backed_bytes vm);
  let walked_resident = (!mapped * hugepage_size) - (!subreleased * page_size) in
  if walked_resident <> Vm.resident_bytes vm then
    add "vm-accounting" "walked resident bytes %d <> Vm.resident_bytes %d" walked_resident
      (Vm.resident_bytes vm);

  (* 6. Hard memory limit: resident memory may never exceed it. *)
  (match Vm.hard_limit vm with
  | Some limit when Vm.resident_bytes vm > limit ->
    add "hard-limit" "resident %d exceeds hard limit %d" (Vm.resident_bytes vm) limit
  | Some _ | None -> ());

  (* 7. Filler page-state accounting: used + free + released covers every
     page of every tracked hugepage exactly. *)
  let filler = Pageheap.filler pageheap in
  let filler_pages =
    Hugepage_filler.used_pages filler
    + Hugepage_filler.free_pages filler
    + Hugepage_filler.released_pages filler
  in
  let filler_tracked = Hugepage_filler.tracked_hugepages filler * pages_per_hugepage in
  if filler_pages <> filler_tracked then
    add "filler-accounting" "used+free+released pages %d <> %d tracked hugepage pages"
      filler_pages filler_tracked;

  (* 8. Front-end accounting: each per-CPU cache's used_bytes counter must
     equal the bytes actually sitting in its class stacks — a torn commit
     would desynchronize them. *)
  let pcc = Malloc.per_cpu_caches m in
  let walked_pcc = Hashtbl.create 64 in
  Per_cpu_cache.iter_addrs pcc (fun ~vcpu ~cls _ ->
      let prev = Option.value (Hashtbl.find_opt walked_pcc vcpu) ~default:0 in
      Hashtbl.replace walked_pcc vcpu (prev + Size_class.size cls));
  List.iter
    (fun vcpu ->
      let walked = Option.value (Hashtbl.find_opt walked_pcc vcpu) ~default:0 in
      let counted = Per_cpu_cache.used_bytes pcc ~vcpu in
      if walked <> counted then
        add "front-end-accounting" "vcpu %d caches %d walked bytes but counts used_bytes %d"
          vcpu walked counted)
    (Per_cpu_cache.populated_vcpus pcc);

  (* 9. Torn-operation detection: no object address may appear twice across
     the per-CPU and transfer tiers (a replayed commit would duplicate it),
     and every cached address must belong to a registered small span of the
     same class with its slot marked allocated (a lost commit would leave it
     free in the span while a cache still hands it out). *)
  let tc = Malloc.transfer_cache m in
  let locations : (int, string list) Hashtbl.t = Hashtbl.create 4096 in
  let note_addr a where =
    Hashtbl.replace locations a (where :: Option.value (Hashtbl.find_opt locations a) ~default:[])
  in
  let check_cached a ~cls ~where =
    note_addr a where;
    match Page_map.lookup pm a with
    | None -> add "torn-operation" "%s caches wild address 0x%x (class %d)" where a cls
    | Some span ->
      if Span.is_large span then
        add "torn-operation" "%s caches 0x%x, which lies in large span %d" where a
          span.Span.id
      else begin
        if span.Span.size_class <> cls then
          add "torn-operation" "%s caches 0x%x as class %d but span %d holds class %d"
            where a cls span.Span.id span.Span.size_class;
        if Span.object_is_free span a then
          add "torn-operation" "%s caches 0x%x, which is also free in span %d (lost commit)"
            where a span.Span.id
      end
  in
  Per_cpu_cache.iter_addrs pcc (fun ~vcpu ~cls a ->
      check_cached a ~cls ~where:(Printf.sprintf "per-cpu cache %d" vcpu));
  Transfer_cache.iter_addrs tc (fun ~cls a ->
      check_cached a ~cls ~where:"transfer cache");
  Hashtbl.iter
    (fun a where ->
      if List.length where > 1 then
        add "torn-operation" "address 0x%x cached %d times (%s) — duplicated object" a
          (List.length where)
          (String.concat ", " (List.rev where)))
    locations;

  (* 10. Stranded ownership: a populated cache whose vCPU id is retired must
     be on the stranded-reclaim work list (otherwise its bytes leak until
     the id is coincidentally reused).  Meaningless for the per-thread
     front-end, whose cache indices are thread ids, not vCPU ids. *)
  let stranded = ref 0 in
  if (Malloc.config m).Config.front_end = Config.Per_cpu_caches then begin
    let vcpus = Malloc.vcpus m in
    let pending = Malloc.stranded_pending_ids m in
    List.iter
      (fun vcpu ->
        let bytes = Per_cpu_cache.used_bytes pcc ~vcpu in
        if bytes > 0 && not (Wsc_os.Vcpu.is_id_active vcpus vcpu) then begin
          stranded := !stranded + bytes;
          if not (List.mem vcpu pending) then
            add "stranded-ownership"
              "retired vcpu %d still caches %d bytes but is not pending reclaim" vcpu bytes
        end)
      (Per_cpu_cache.populated_vcpus pcc)
  end;
  {
    time = Clock.now (Malloc.clock m);
    spans_walked = n_spans;
    hugepages_walked = n_hugepages;
    stranded_bytes = !stranded;
    violations = List.rev !violations;
  }

let to_string r =
  if is_clean r then
    Printf.sprintf "audit@%.3fs: clean (%d spans, %d hugepages)" (r.time /. Units.sec)
      r.spans_walked r.hugepages_walked
  else begin
    let header =
      Printf.sprintf "audit@%.3fs: %d violation(s) (%d spans, %d hugepages)"
        (r.time /. Units.sec)
        (List.length r.violations)
        r.spans_walked r.hugepages_walked
    in
    let lines = List.map (fun v -> Printf.sprintf "  [%s] %s" v.check v.detail) r.violations in
    String.concat "\n" (header :: lines)
  end
