(** The size-class table (Sec. 2.1).

    Small allocations (<= 256 KiB) round up to one of ~85 size classes.  The
    table is generated with TCMalloc-style spacing: 8-byte granularity for
    tiny sizes, then eight classes per power-of-two octave up to 4 KiB, then
    four per octave up to the 256 KiB ceiling.  Each class carries the pages
    per span (chosen to bound tail waste), the resulting objects-per-span
    capacity, and the batch size used when moving objects between cache
    tiers (TCMalloc's [num_objects_to_move]). *)

type info = {
  index : int;
  size : int;  (** Object size in bytes. *)
  pages : int;  (** TCMalloc pages per span of this class. *)
  capacity : int;  (** Objects per span: [pages * page_size / size]. *)
  batch : int;  (** Objects moved per inter-tier transfer. *)
}

val count : int
(** Number of classes (between 80 and 90, per the paper). *)

val info : int -> info
(** @raise Invalid_argument on an out-of-range index. *)

val size : int -> int
(** Object size of a class. *)

val capacity : int -> int
val batch : int -> int
val pages : int -> int

val of_size : int -> int option
(** [of_size n] is the smallest class whose size is [>= n], or [None] when
    [n] exceeds the largest class (the request then bypasses the cache
    hierarchy and goes to the pageheap).  [n] must be positive.  O(1) via a
    lookup table. *)

val index_of_size : int -> int
(** Allocation-free twin of {!of_size}: the class index, or [-1] when the
    request is pageheap-direct.  [n] must be positive. *)

val max_size : int
(** Size of the largest class: 256 KiB. *)

val internal_slack : requested:int -> int
(** Bytes wasted by rounding [requested] up to its class (0 for pageheap
    allocations, which round to whole pages instead). *)

val all : info array
(** The whole table, ascending by size. *)
