(** The hugepage filler (Sec. 4.4).

    The filler packs sub-hugepage span allocations into 2 MiB hugepages.  It
    prioritizes carving spans out of the hugepages that already have the
    most allocations ("densest first", per Hunter et al. OSDI'21), so that
    sparsely-used hugepages drain and become releasable.

    The lifetime-aware variant adds a second, disjoint set of hugepages:
    spans whose object capacity is below the threshold C are statistically
    short-lived (Fig. 16) and are packed together on dedicated hugepages so
    those hugepages become *entirely* free soon and can be released intact —
    raising hugepage coverage instead of forcing subrelease.

    Page states inside a tracked hugepage: free (allocatable), used (owned
    by a span), or released (subreleased to the OS; unavailable until the
    hugepage empties and is unmapped). *)

type addr = int

type set_kind =
  | Long_lived  (** Spans with capacity >= C; the only set in baseline mode. *)
  | Short_lived  (** Spans with capacity < C (lifetime-aware mode). *)

type t

val create : unit -> t

val add_hugepage : t -> base:addr -> kind:set_kind -> donated:bool -> t_used:int -> unit
(** Start tracking a hugepage whose first [t_used] pages are already used
    (nonzero only for donated slack tails of large allocations). *)

val allocate : t -> kind:set_kind -> pages:int -> addr option
(** Carve a contiguous run of [pages] (< 256) from the densest hugepage of
    the requested set that can hold it.  [None] when no tracked hugepage has
    a large-enough free run — the pageheap then feeds a fresh hugepage in
    via {!add_hugepage} and retries. *)

type free_outcome =
  | Still_tracked  (** The hugepage retains other used pages. *)
  | Hugepage_empty of addr
      (** The hugepage holds no used pages anymore; the filler stopped
          tracking it and the caller must unmap it or hand it to the
          hugepage cache. *)

val free : t -> addr -> pages:int -> free_outcome
(** Return a page run previously obtained from {!allocate} (or the used tail
    of a donated hugepage).  @raise Invalid_argument if any page is not
    currently used. *)

val subrelease : t -> Wsc_os.Vm.t -> max_pages:int -> int
(** Break the sparsest partially-used hugepages, subreleasing up to
    [max_pages] free pages to the OS.  Returns pages actually released.
    Released pages stop being allocatable and the hugepage loses THP
    backing. *)

(** {2 Introspection} *)

val tracked_hugepages : t -> int
val used_pages : t -> int
val free_pages : t -> int
(** Allocatable (not used, not released) pages across tracked hugepages. *)

val released_pages : t -> int

val used_bytes : t -> int
val free_bytes : t -> int

val iter_hugepages : t -> (base:addr -> used_pages:int -> unit) -> unit
(** For hugepage-coverage accounting. *)
