open Wsc_substrate
module Rseq = Wsc_os.Rseq

type addr = int

type cpu_cache = {
  stacks : Int_stack.t array;
  low_watermark : int array;  (* fewest objects held since the last decay tick *)
  mutable used_bytes : int;
  mutable capacity_bytes : int;
  mutable interval_misses : int;
  mutable total_misses : int;
}

(* Reusable staged-op buffer for the restartable fast paths: [prepare_*]
   records the decision here (no mutation, no allocation) and
   [commit_staged] applies it.  A preempted attempt simply overwrites the
   buffer on restart, so a torn operation cannot lose or duplicate an
   object — same contract as the closure-based [stage_*] API, minus the
   per-attempt record and closure. *)
type op_kind = Op_none | Op_alloc_hit | Op_alloc_miss | Op_dealloc_ok | Op_dealloc_miss

type t = {
  config : Config.t;
  mutable caches : cpu_cache option array;
  mutable populated : int;
  mutable next_victim : int;  (* round-robin rotation for capacity stealing *)
  mutable op_kind : op_kind;
  mutable op_cache : cpu_cache;  (* cache the staged op applies to *)
  mutable op_cls : int;
  mutable op_addr : int;
}

let min_capacity_bytes = 128 * 1024

(* Per-(vCPU, class) object cap: the hard per-class limit, further bounded
   so no single class can monopolize more than half the byte budget. *)
let class_cap config cls =
  let size = Size_class.size cls in
  let byte_bound = max (Size_class.batch cls) (config.Config.per_cpu_cache_bytes / 2 / size) in
  min config.Config.per_cpu_class_cap_objects byte_bound

let dummy_cache () =
  {
    stacks = [||];
    low_watermark = [||];
    used_bytes = 0;
    capacity_bytes = 0;
    interval_misses = 0;
    total_misses = 0;
  }

let create ?(config = Config.baseline) () =
  {
    config;
    caches = Array.make 8 None;
    populated = 0;
    next_victim = 0;
    op_kind = Op_none;
    op_cache = dummy_cache ();
    op_cls = 0;
    op_addr = 0;
  }

let cache_of t vcpu =
  let n = Array.length t.caches in
  if vcpu >= n then begin
    let bigger = Array.make (max (vcpu + 1) (2 * n)) None in
    Array.blit t.caches 0 bigger 0 n;
    t.caches <- bigger
  end;
  match t.caches.(vcpu) with
  | Some c -> c
  | None ->
    let c =
      {
        stacks = Array.init Size_class.count (fun _ -> Int_stack.create ());
        low_watermark = Array.make Size_class.count 0;
        used_bytes = 0;
        capacity_bytes = t.config.Config.per_cpu_cache_bytes;
        interval_misses = 0;
        total_misses = 0;
      }
    in
    t.caches.(vcpu) <- Some c;
    t.populated <- t.populated + 1;
    c

let miss c =
  c.interval_misses <- c.interval_misses + 1;
  c.total_misses <- c.total_misses + 1

(* Every fast-path operation is expressed as a restartable sequence
   (Wsc_os.Rseq): the staging phase only reads the cache and records the
   decision; all mutation happens in a single commit.  An attempt that the
   preemption injector aborts simply never commits, so a torn operation
   cannot lose or duplicate an object.

   The per-event paths come in two shapes: [prepare_alloc]/[prepare_dealloc]
   stage into the reusable op buffer and [commit_staged] applies it
   (allocation-free, used under a live injector via {!Wsc_os.Rseq.run_op}),
   while the plain [alloc]/[dealloc] below fuse stage and commit into one
   direct, allocation-free step (the no-preemption fast path).  The
   closure-based [stage_*] forms remain for the batch ops (flush/fill,
   which traffic in lists anyway) and for tests that need a first-class
   staged value. *)

let commit_alloc_hit c ~cls =
  ignore (Int_stack.pop c.stacks.(cls));
  c.used_bytes <- c.used_bytes - Size_class.size cls;
  let len = Int_stack.length c.stacks.(cls) in
  if len < c.low_watermark.(cls) then c.low_watermark.(cls) <- len

let commit_dealloc_ok c ~cls a =
  Int_stack.push c.stacks.(cls) a;
  c.used_bytes <- c.used_bytes + Size_class.size cls

let prepare_alloc t ~vcpu ~cls =
  let c = cache_of t vcpu in
  t.op_cache <- c;
  t.op_cls <- cls;
  let s = c.stacks.(cls) in
  if Int_stack.is_empty s then begin
    t.op_kind <- Op_alloc_miss;
    -1
  end
  else begin
    let a = Int_stack.get s (Int_stack.length s - 1) in
    t.op_kind <- Op_alloc_hit;
    t.op_addr <- a;
    a
  end

let prepare_dealloc t ~vcpu ~cls a =
  let c = cache_of t vcpu in
  t.op_cache <- c;
  t.op_cls <- cls;
  t.op_addr <- a;
  if
    c.used_bytes + Size_class.size cls <= c.capacity_bytes
    && Int_stack.length c.stacks.(cls) < class_cap t.config cls
  then begin
    t.op_kind <- Op_dealloc_ok;
    true
  end
  else begin
    t.op_kind <- Op_dealloc_miss;
    false
  end

let commit_staged t =
  let c = t.op_cache in
  (match t.op_kind with
  | Op_none -> ()
  | Op_alloc_hit -> commit_alloc_hit c ~cls:t.op_cls
  | Op_alloc_miss -> miss c
  | Op_dealloc_ok -> commit_dealloc_ok c ~cls:t.op_cls t.op_addr
  | Op_dealloc_miss -> miss c);
  t.op_kind <- Op_none

let stage_alloc t ~vcpu ~cls =
  let c = cache_of t vcpu in
  match Int_stack.peek_opt c.stacks.(cls) with
  | Some a -> { Rseq.value = Some a; commit = (fun () -> commit_alloc_hit c ~cls) }
  | None -> { Rseq.value = None; commit = (fun () -> miss c) }

let stage_dealloc t ~vcpu ~cls a =
  let c = cache_of t vcpu in
  if
    c.used_bytes + Size_class.size cls <= c.capacity_bytes
    && Int_stack.length c.stacks.(cls) < class_cap t.config cls
  then { Rseq.value = true; commit = (fun () -> commit_dealloc_ok c ~cls a) }
  else { Rseq.value = false; commit = (fun () -> miss c) }

let stage_flush_batch t ~vcpu ~cls ~n =
  let c = cache_of t vcpu in
  let addrs = Int_stack.peek_up_to c.stacks.(cls) n in
  {
    Rseq.value = addrs;
    commit =
      (fun () ->
        ignore (Int_stack.pop_up_to c.stacks.(cls) (List.length addrs));
        c.used_bytes <- c.used_bytes - (List.length addrs * Size_class.size cls);
        let len = Int_stack.length c.stacks.(cls) in
        if len < c.low_watermark.(cls) then c.low_watermark.(cls) <- len);
  }

let stage_fill t ~vcpu ~cls ~addrs =
  let c = cache_of t vcpu in
  let size = Size_class.size cls in
  let cap = class_cap t.config cls in
  (* The first rejection leaves the cache untouched, so every later address
     is rejected too: acceptance is a prefix bounded by both the byte
     budget and the per-class object cap. *)
  let room_bytes = max 0 ((c.capacity_bytes - c.used_bytes) / size) in
  let room_objects = max 0 (cap - Int_stack.length c.stacks.(cls)) in
  let k = min room_bytes room_objects in
  let rec split i acc rest =
    match rest with
    | _ when i = k -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | a :: tail -> split (i + 1) (a :: acc) tail
  in
  let accepted, rest = split 0 [] addrs in
  {
    Rseq.value = List.rev rest;  (* rejected, in [fill]'s historical order *)
    commit =
      (fun () ->
        List.iter
          (fun a ->
            Int_stack.push c.stacks.(cls) a;
            c.used_bytes <- c.used_bytes + size)
          accepted);
  }

(* Direct fast paths: stage-and-commit fused, zero allocation per call.
   [alloc] returns the address or [-1] on a front-end miss. *)

let alloc t ~vcpu ~cls =
  let c = cache_of t vcpu in
  let s = c.stacks.(cls) in
  if Int_stack.is_empty s then begin
    miss c;
    -1
  end
  else begin
    let a = Int_stack.pop s in
    c.used_bytes <- c.used_bytes - Size_class.size cls;
    let len = Int_stack.length s in
    if len < c.low_watermark.(cls) then c.low_watermark.(cls) <- len;
    a
  end

let dealloc t ~vcpu ~cls a =
  let c = cache_of t vcpu in
  if
    c.used_bytes + Size_class.size cls <= c.capacity_bytes
    && Int_stack.length c.stacks.(cls) < class_cap t.config cls
  then begin
    Int_stack.push c.stacks.(cls) a;
    c.used_bytes <- c.used_bytes + Size_class.size cls;
    true
  end
  else begin
    miss c;
    false
  end

let flush_batch t ~vcpu ~cls ~n =
  let s = stage_flush_batch t ~vcpu ~cls ~n in
  s.Rseq.commit ();
  s.Rseq.value

let fill t ~vcpu ~cls ~addrs =
  let s = stage_fill t ~vcpu ~cls ~addrs in
  s.Rseq.commit ();
  s.Rseq.value

(* Buffer twins of [flush_batch]/[fill] — same pop order, byte accounting,
   and watermark updates, with no list cells or staged records. *)
let flush_batch_into t ~vcpu ~cls ~n ~buf ~pos =
  let c = cache_of t vcpu in
  let m = Int_stack.pop_into c.stacks.(cls) buf ~pos ~n in
  c.used_bytes <- c.used_bytes - (m * Size_class.size cls);
  let len = Int_stack.length c.stacks.(cls) in
  if len < c.low_watermark.(cls) then c.low_watermark.(cls) <- len;
  m

let fill_from t ~vcpu ~cls ~buf ~lo ~hi =
  let c = cache_of t vcpu in
  let size = Size_class.size cls in
  let cap = class_cap t.config cls in
  let room_bytes = max 0 ((c.capacity_bytes - c.used_bytes) / size) in
  let room_objects = max 0 (cap - Int_stack.length c.stacks.(cls)) in
  let k = min (min room_bytes room_objects) (hi - lo) in
  for i = lo to lo + k - 1 do
    Int_stack.push c.stacks.(cls) buf.(i);
    c.used_bytes <- c.used_bytes + size
  done;
  k

(* Shrink a cache to its (reduced) budget by evicting whole stacks of the
   largest classes first — the paper prioritizes shrinking larger size
   classes since small objects dominate the allocation mix. *)
let enforce_budget c ~vcpu ~evict =
  let cls = ref (Size_class.count - 1) in
  while c.used_bytes > c.capacity_bytes && !cls >= 0 do
    let stack = c.stacks.(!cls) in
    if not (Int_stack.is_empty stack) then begin
      let size = Size_class.size !cls in
      let excess_objects =
        ((c.used_bytes - c.capacity_bytes + size - 1) / size) |> min (Int_stack.length stack)
      in
      let addrs = Int_stack.pop_up_to stack excess_objects in
      c.used_bytes <- c.used_bytes - (List.length addrs * size);
      evict ~vcpu ~cls:!cls ~addrs
    end;
    decr cls
  done

let decay_tick t ~evict =
  Array.iteri
    (fun vcpu slot ->
      match slot with
      | None -> ()
      | Some c ->
        Array.iteri
          (fun cls stack ->
            (* Objects below the class's low watermark went untouched the
               whole interval: surplus capacity to give back (TCMalloc's
               demand-based per-class capacity shrinking). *)
            let n = min (c.low_watermark.(cls) / 2) (Int_stack.length stack) in
            if n > 0 then begin
              let addrs = Int_stack.pop_up_to stack n in
              c.used_bytes <- c.used_bytes - (List.length addrs * Size_class.size cls);
              evict ~vcpu ~cls ~addrs
            end;
            c.low_watermark.(cls) <- Int_stack.length stack)
          c.stacks)
    t.caches

(* Pressure-driven shrink: empty every (vCPU, class) stack, handing the
   objects to [evict] for routing down the hierarchy.  Capacity budgets are
   untouched — demand refills the caches once pressure passes. *)
let drain t ~evict =
  let drained = ref 0 in
  Array.iteri
    (fun vcpu slot ->
      match slot with
      | None -> ()
      | Some c ->
        Array.iteri
          (fun cls stack ->
            let n = Int_stack.length stack in
            if n > 0 then begin
              let addrs = Int_stack.pop_up_to stack n in
              let bytes = List.length addrs * Size_class.size cls in
              c.used_bytes <- c.used_bytes - bytes;
              drained := !drained + bytes;
              evict ~vcpu ~cls ~addrs
            end;
            c.low_watermark.(cls) <- 0)
          c.stacks)
    t.caches;
  !drained

(* Stranded-cache reclaim: drain every class stack of one (retired) vCPU's
   cache, handing the objects to [evict].  The background reclaim pass and
   churn-time flushes use this; the cache stays populated (budget intact)
   so a reused id finds a warm, correctly sized cache. *)
let drain_vcpu t ~vcpu ~evict =
  match
    if vcpu < 0 || vcpu >= Array.length t.caches then None else t.caches.(vcpu)
  with
  | None -> 0
  | Some c ->
    let drained = ref 0 in
    Array.iteri
      (fun cls stack ->
        let n = Int_stack.length stack in
        if n > 0 then begin
          let addrs = Int_stack.pop_up_to stack n in
          let bytes = List.length addrs * Size_class.size cls in
          c.used_bytes <- c.used_bytes - bytes;
          drained := !drained + bytes;
          evict ~vcpu ~cls ~addrs
        end;
        c.low_watermark.(cls) <- 0)
      c.stacks;
    !drained

let populated_list t =
  let out = ref [] in
  Array.iteri
    (fun vcpu slot -> match slot with Some c -> out := (vcpu, c) :: !out | None -> ())
    t.caches;
  List.rev !out

let resize t ~evict =
  if t.config.Config.dynamic_per_cpu_caches then begin
    let caches = populated_list t in
    let by_misses =
      List.sort (fun (_, a) (_, b) -> compare b.interval_misses a.interval_misses) caches
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | (vcpu, c) :: rest ->
        if c.interval_misses > 0 then (vcpu, c) :: take (n - 1) rest else []
    in
    let growers = take t.config.Config.resize_grow_candidates by_misses in
    if growers <> [] then begin
      let grower_ids = List.map fst growers in
      let victims =
        List.filter
          (fun (vcpu, c) ->
            (not (List.mem vcpu grower_ids))
            && c.capacity_bytes - t.config.Config.resize_step_bytes >= min_capacity_bytes)
          caches
      in
      if victims <> [] then begin
        let victims = Array.of_list victims in
        let n_victims = Array.length victims in
        List.iter
          (fun (_, grower) ->
            let vcpu_v, victim = victims.(t.next_victim mod n_victims) in
            t.next_victim <- t.next_victim + 1;
            if victim.capacity_bytes - t.config.Config.resize_step_bytes >= min_capacity_bytes
            then begin
              victim.capacity_bytes <-
                victim.capacity_bytes - t.config.Config.resize_step_bytes;
              grower.capacity_bytes <-
                grower.capacity_bytes + t.config.Config.resize_step_bytes;
              enforce_budget victim ~vcpu:vcpu_v ~evict
            end)
          growers
      end
    end;
    List.iter (fun (_, c) -> c.interval_misses <- 0) caches
  end

let slot t vcpu = if vcpu < 0 || vcpu >= Array.length t.caches then None else t.caches.(vcpu)
let used_bytes t ~vcpu = match slot t vcpu with Some c -> c.used_bytes | None -> 0
let capacity_bytes t ~vcpu = match slot t vcpu with Some c -> c.capacity_bytes | None -> 0

let cached_bytes t =
  Array.fold_left
    (fun acc slot -> match slot with Some c -> acc + c.used_bytes | None -> acc)
    0 t.caches

let capacity_total t =
  Array.fold_left
    (fun acc slot -> match slot with Some c -> acc + c.capacity_bytes | None -> acc)
    0 t.caches

let populated_caches t = t.populated
let populated_vcpus t = List.map fst (populated_list t)

let iter_addrs t f =
  Array.iteri
    (fun vcpu slot ->
      match slot with
      | None -> ()
      | Some c ->
        Array.iteri
          (fun cls stack -> Int_stack.iter stack (fun a -> f ~vcpu ~cls a))
          c.stacks)
    t.caches

let misses_per_vcpu t =
  Array.map (function Some c -> c.total_misses | None -> 0) t.caches
