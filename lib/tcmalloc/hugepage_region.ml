open Wsc_substrate

type addr = int

type region = {
  base : addr;
  total_pages : int;
  page_used : Bytes.t;
  mutable used_count : int;
}

type t = {
  vm : Wsc_os.Vm.t;
  hugepages_per_region : int;
  mutable regions : region list;
  mutable used_pages : int;
}

let page_size = Units.tcmalloc_page_size
let pages_per_hugepage = Units.pages_per_hugepage

let create vm ~hugepages_per_region =
  if hugepages_per_region <= 0 then
    invalid_arg "Hugepage_region.create: need positive region size";
  { vm; hugepages_per_region; regions = []; used_pages = 0 }

let find_run region n =
  let total = region.total_pages in
  let rec scan i run_start run_len =
    if run_len = n then run_start
    else if i = total then -1
    else if Bytes.get region.page_used i = '\000' then
      scan (i + 1) (if run_len = 0 then i else run_start) (run_len + 1)
    else scan (i + 1) 0 0
  in
  scan 0 0 0

let mark region first n used =
  let c = if used then '\001' else '\000' in
  for i = first to first + n - 1 do
    Bytes.set region.page_used i c
  done;
  region.used_count <- (region.used_count + if used then n else -n)

let new_region t =
  let base = Wsc_os.Vm.mmap t.vm ~hugepages:t.hugepages_per_region in
  let total_pages = t.hugepages_per_region * pages_per_hugepage in
  let region = { base; total_pages; page_used = Bytes.make total_pages '\000'; used_count = 0 } in
  t.regions <- region :: t.regions;
  region

let allocate t ~pages =
  if pages <= 0 || pages > t.hugepages_per_region * pages_per_hugepage then
    invalid_arg "Hugepage_region.allocate: run exceeds region size";
  let rec try_regions = function
    | [] ->
      let region = new_region t in
      let run = find_run region pages in
      assert (run = 0);
      (region, run)
    | region :: rest ->
      let run = find_run region pages in
      if run >= 0 then (region, run) else try_regions rest
  in
  let region, run = try_regions t.regions in
  mark region run pages true;
  t.used_pages <- t.used_pages + pages;
  region.base + (run * page_size)

let region_of t a =
  let rec search = function
    | [] -> invalid_arg "Hugepage_region.free: address not in any region"
    | region :: rest ->
      if a >= region.base && a < region.base + (region.total_pages * page_size) then region
      else search rest
  in
  search t.regions

let free t a ~pages =
  let region = region_of t a in
  let first = (a - region.base) / page_size in
  if first + pages > region.total_pages then
    invalid_arg "Hugepage_region.free: run exceeds region";
  for i = first to first + pages - 1 do
    if Bytes.get region.page_used i <> '\001' then
      invalid_arg "Hugepage_region.free: page not in use"
  done;
  mark region first pages false;
  t.used_pages <- t.used_pages - pages;
  if region.used_count = 0 then begin
    t.regions <- List.filter (fun r -> r.base <> region.base) t.regions;
    Wsc_os.Vm.munmap t.vm region.base ~hugepages:t.hugepages_per_region
  end

let regions t = List.length t.regions
let used_pages t = t.used_pages

let free_pages t =
  List.fold_left (fun acc r -> acc + r.total_pages - r.used_count) 0 t.regions

let used_bytes t = used_pages t * page_size
let free_bytes t = free_pages t * page_size

let iter_hugepages t f =
  List.iter
    (fun region ->
      for hp = 0 to (region.total_pages / pages_per_hugepage) - 1 do
        let used = ref 0 in
        for p = hp * pages_per_hugepage to ((hp + 1) * pages_per_hugepage) - 1 do
          if Bytes.get region.page_used p = '\001' then incr used
        done;
        f ~base:(region.base + (hp * Units.hugepage_size)) ~used_pages:!used
      done)
    t.regions
