(** Heap auditor: a whole-heap invariant checker for the simulated
    allocator.

    [run] walks every registered span and every mapped hugepage and checks
    the structural invariants that memory-pressure machinery (reclaim
    cascade, fault injection, hard limits) is most likely to corrupt:

    - {b byte-conservation} — every carved object byte is live, cached in
      the per-CPU/transfer tiers, or free in its span;
    - {b cfl-accounting} — the central free list's fragmentation counter
      and span census match a direct heap walk;
    - {b page-map-coverage} — every span page resolves back to its span,
      and the span count matches the pageheap's placement table;
    - {b span-disjointness} — no two spans overlap in the address space;
    - {b vm-backing} — every span page lies on a mapped hugepage;
    - {b vm-accounting} — the VM's O(1) resident/huge-backed aggregates
      agree with a full hugepage walk;
    - {b hard-limit} — resident bytes never exceed the configured hard
      limit;
    - {b filler-accounting} — filler used + free + released pages cover
      its tracked hugepages exactly;
    - {b front-end-accounting} — each per-CPU cache's used_bytes counter
      equals a direct walk of its class stacks;
    - {b torn-operation} — no address is cached twice across the per-CPU
      and transfer tiers (duplicated object), and every cached address
      belongs to a matching-class small span with its slot allocated (a
      lost commit leaves it free in the span);
    - {b stranded-ownership} — every populated cache of a retired vCPU id
      is on the stranded-reclaim work list.

    Violations come back as a structured report (never asserts), so a
    damaged heap can be inspected rather than aborting the simulation. *)

type violation = { check : string;  (** Invariant family, e.g. ["byte-conservation"]. *)
                   detail : string  (** Human-readable specifics with addresses/sizes. *) }

type report = {
  time : float;  (** Simulated time of the audit. *)
  spans_walked : int;
  hugepages_walked : int;
  stranded_bytes : int;
      (** Bytes cached by retired vCPU ids awaiting stranded reclaim —
          informational, not a violation when properly registered. *)
  violations : violation list;  (** Empty iff the heap is consistent. *)
}

val run : Malloc.t -> report
(** Full heap walk — O(spans x pages + hugepages); call at audit points,
    not per allocation. *)

val is_clean : report -> bool

val to_string : report -> string
(** One line when clean; a header plus one indented line per violation
    otherwise. *)
