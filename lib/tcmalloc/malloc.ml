open Wsc_substrate
module Cost_model = Wsc_hw.Cost_model
module Topology = Wsc_hw.Topology
module Vm = Wsc_os.Vm
module Vcpu = Wsc_os.Vcpu
module Rseq = Wsc_os.Rseq

type addr = int

(* Preallocated closures plus parameter slots for the allocation-free
   restartable fast paths ({!Wsc_os.Rseq.run_op}): per-event parameters are
   written into the mutable slots instead of being captured, so the hot
   alloc/free paths build no closure, option, or staged record per
   operation. *)
type fast_ops = {
  mutable fo_thread : int;  (* cache-index thread id; -1 = none *)
  mutable fo_cpu : int;
  mutable fo_cls : int;
  mutable fo_addr : int;  (* dealloc: the object being freed *)
  mutable fo_res_addr : int;  (* prepare_alloc result (-1 = staged miss) *)
  mutable fo_res_ok : bool;  (* prepare_dealloc result *)
  mutable fo_observed : int;  (* vCPU the last attempt read; -1 = none *)
  mutable fo_read_vcpu : unit -> int;
  mutable fo_prep_alloc : int -> unit;
  mutable fo_prep_dealloc : int -> unit;
  mutable fo_commit : unit -> unit;
}

type t = {
  config : Config.t;
  topology : Topology.t;
  clock : Clock.t;
  vm : Vm.t;
  vcpus : Vcpu.t;
  pcc : Per_cpu_cache.t;
  tc : Transfer_cache.t;
  cfl : Central_free_list.t;
  pageheap : Pageheap.t;
  sampler : Sampler.t;
  telemetry : Telemetry.t;
  span_stats : Span_stats.t;
  mutable vcpu_domain : int array;  (* vcpu -> LLC domain of its physical CPU *)
  (* Addresses currently cached in the per-CPU or transfer tiers (freed by
     the app or prefilled, not yet re-issued).  Entries for objects that
     drained back to their spans go stale harmlessly: they are purged the
     moment the address is issued again, so an address the application
     holds is never in this set.  Used to detect double frees of objects
     still sitting in a cache, which the span-level occupancy check cannot
     see. *)
  in_flight : Int_table.t;
  (* Preemption injector; None runs the fast path atomically (pre-rseq). *)
  rseq : Rseq.t option;
  (* vCPU ids retired with a still-populated cache, awaiting the background
     stranded-cache reclaim pass (cleared on reuse or drain). *)
  stranded_pending : (int, unit) Hashtbl.t;
  fast : fast_ops;
  (* Scratch for the cache-miss batch paths (refill and batch flush): the
     non-rseq slow paths move whole batches through this preallocated
     buffer instead of building a list per miss.  Sized for the largest
     per-class batch. *)
  batch_buf : int array;
  tc_stats : Transfer_cache.remove_stats;
}

let page_size = Units.tcmalloc_page_size

let max_batch =
  let m = ref 1 in
  for cls = 0 to Size_class.count - 1 do
    m := max !m (Size_class.batch cls)
  done;
  !m

let evict_to_transfer t ~now ~vcpu ~cls ~addrs =
  let domain = if vcpu < Array.length t.vcpu_domain then t.vcpu_domain.(vcpu) else 0 in
  ignore (Transfer_cache.insert t.tc ~cls ~addrs ~domain ~now)

type reclaim_outcome = {
  front_end_bytes : int;
  transfer_bytes : int;
  cfl_span_bytes : int;
  os_released_bytes : int;
}

let zero_reclaim =
  { front_end_bytes = 0; transfer_bytes = 0; cfl_span_bytes = 0; os_released_bytes = 0 }

(* The graceful reclaim cascade (TCMalloc's ReleaseMemoryToSystem under
   memory-limit pressure): drain tiers in cost order — per-CPU caches, then
   the transfer cache, letting drained spans fall back to the pageheap —
   and finally hand hugepages/pages back to the OS.  The two cache-drain
   stages are skipped when the pageheap's immediately-releasable backlog
   already covers the target, so mild pressure does not trash hot caches. *)
let release_memory t ~target_bytes =
  if target_bytes <= 0 then zero_reclaim
  else begin
    let now = Clock.now t.clock in
    Telemetry.record_reclaim_event t.telemetry;
    let cfl_before = Central_free_list.released_span_bytes t.cfl in
    let fe =
      if Pageheap.release_backlog_bytes t.pageheap >= target_bytes then 0
      else Per_cpu_cache.drain t.pcc ~evict:(evict_to_transfer t ~now)
    in
    let tr =
      if Pageheap.release_backlog_bytes t.pageheap >= target_bytes then 0
      else Transfer_cache.drain t.tc ~now
    in
    let cfl = Central_free_list.released_span_bytes t.cfl - cfl_before in
    let os = Pageheap.release_memory t.pageheap ~max_bytes:target_bytes in
    Telemetry.record_reclaim t.telemetry Telemetry.Front_end fe;
    Telemetry.record_reclaim t.telemetry Telemetry.Transfer tr;
    Telemetry.record_reclaim t.telemetry Telemetry.Cfl_spans cfl;
    Telemetry.record_reclaim t.telemetry Telemetry.Os_release os;
    { front_end_bytes = fe; transfer_bytes = tr; cfl_span_bytes = cfl; os_released_bytes = os }
  end

let remember_domain t ~vcpu ~cpu =
  let n = Array.length t.vcpu_domain in
  if vcpu >= n then begin
    let bigger = Array.make (max (vcpu + 1) (2 * n)) 0 in
    Array.blit t.vcpu_domain 0 bigger 0 n;
    t.vcpu_domain <- bigger
  end;
  t.vcpu_domain.(vcpu) <- Topology.domain_of_cpu t.topology cpu

(* Front-end cache index: dense vCPU id normally; raw thread id in the
   legacy per-thread mode (footnote 2), where idle threads strand their
   caches because no other thread may touch them.  [-1] means "no thread
   id" (the int-sentinel form the preallocated fast-path closures use). *)
let cache_index_id t ~thread ~cpu =
  match t.config.Config.front_end with
  | Config.Per_thread_caches when thread >= 0 -> thread
  | Config.Per_thread_caches | Config.Per_cpu_caches ->
    let id = Vcpu.acquire t.vcpus ~phys_cpu:cpu in
    (* A reused id reclaims its own (warm) cache; it is no longer stranded.
       (The table is almost always empty: skip the hash.) *)
    if Hashtbl.length t.stranded_pending > 0 then Hashtbl.remove t.stranded_pending id;
    id

let create ?(config = Config.baseline) ?rseq ?span_snapshot_interval_ns ~topology ~clock () =
  let vm = Vm.create () in
  let pageheap = Pageheap.create ~config vm in
  let span_stats = Span_stats.create () in
  let cfl = Central_free_list.create ~config ~span_stats pageheap in
  let tc = Transfer_cache.create ~config ~topology cfl in
  let pcc = Per_cpu_cache.create ~config () in
  let t =
    {
      config;
      topology;
      clock;
      vm;
      vcpus = Vcpu.create ();
      pcc;
      tc;
      cfl;
      pageheap;
      sampler = Sampler.create ~period_bytes:config.Config.sample_period_bytes;
      telemetry = Telemetry.create ();
      span_stats;
      vcpu_domain = Array.make 16 0;
      in_flight = Int_table.create ~initial_capacity:4096 ();
      rseq;
      stranded_pending = Hashtbl.create 16;
      batch_buf = Array.make max_batch 0;
      tc_stats = Transfer_cache.make_remove_stats ();
      fast =
        {
          fo_thread = -1;
          fo_cpu = 0;
          fo_cls = 0;
          fo_addr = 0;
          fo_res_addr = -1;
          fo_res_ok = false;
          fo_observed = -1;
          fo_read_vcpu = (fun () -> 0);
          fo_prep_alloc = ignore;
          fo_prep_dealloc = ignore;
          fo_commit = (fun () -> ());
        };
    }
  in
  (* Install the fast-path closures once; they read their per-event
     parameters from the [fast] slots. *)
  let fo = t.fast in
  fo.fo_read_vcpu <-
    (fun () ->
      let vcpu = cache_index_id t ~thread:fo.fo_thread ~cpu:fo.fo_cpu in
      remember_domain t ~vcpu ~cpu:fo.fo_cpu;
      fo.fo_observed <- vcpu;
      vcpu);
  fo.fo_prep_alloc <-
    (fun vcpu -> fo.fo_res_addr <- Per_cpu_cache.prepare_alloc t.pcc ~vcpu ~cls:fo.fo_cls);
  fo.fo_prep_dealloc <-
    (fun vcpu ->
      fo.fo_res_ok <- Per_cpu_cache.prepare_dealloc t.pcc ~vcpu ~cls:fo.fo_cls fo.fo_addr);
  fo.fo_commit <- (fun () -> Per_cpu_cache.commit_staged t.pcc);
  if config.Config.dynamic_per_cpu_caches then begin
    let resize now = Per_cpu_cache.resize t.pcc ~evict:(evict_to_transfer t ~now) in
    ignore (Clock.every clock ~period:config.Config.resize_interval_ns resize)
  end;
  let decay now = Per_cpu_cache.decay_tick t.pcc ~evict:(evict_to_transfer t ~now) in
  ignore (Clock.every clock ~period:Units.sec decay);
  (* Soft-limit watchdog: when resident + external pressure exceeds the soft
     limit, run the reclaim cascade for the excess. *)
  let soft_limit_check _now =
    let excess = Vm.soft_limit_excess t.vm in
    if excess > 0 then ignore (release_memory t ~target_bytes:excess)
  in
  ignore (Clock.every clock ~period:config.Config.soft_limit_check_interval_ns soft_limit_check);
  (* Stranded-cache reclaim: periodically drain the caches of vCPU ids that
     churn or pool shrink retired, so their contents rejoin the transfer
     cache instead of stranding until the id happens to be reused. *)
  let stranded_reclaim now =
    let pending =
      Hashtbl.fold (fun id () acc -> id :: acc) t.stranded_pending [] |> List.sort compare
    in
    List.iter
      (fun vcpu ->
        if not (Vcpu.is_id_active t.vcpus vcpu) then begin
          let bytes = Per_cpu_cache.drain_vcpu t.pcc ~vcpu ~evict:(evict_to_transfer t ~now) in
          if bytes > 0 then Telemetry.record_stranded_reclaim t.telemetry ~bytes
        end;
        Hashtbl.remove t.stranded_pending vcpu)
      pending
  in
  ignore
    (Clock.every clock ~period:config.Config.stranded_reclaim_interval_ns stranded_reclaim);
  let release now = Transfer_cache.release_tick t.tc ~now in
  ignore (Clock.every clock ~period:config.Config.transfer_release_interval_ns release);
  let pageheap_release _now = Pageheap.background_release t.pageheap in
  ignore (Clock.every clock ~period:config.Config.pageheap_release_interval_ns pageheap_release);
  (match span_snapshot_interval_ns with
  | None -> ()
  | Some period ->
    let snapshot now = Central_free_list.snapshot t.cfl ~now in
    ignore (Clock.every clock ~period snapshot));
  t

let charge t tier = Telemetry.charge_tier t.telemetry tier (Cost_model.tier_hit_ns tier)

(* Both sampler probes defer the clock reading to their rare hit branches,
   keeping the common per-event path free of float returns. *)
let maybe_sample t a ~size =
  if Sampler.tick t.sampler ~size then begin
    Sampler.track t.sampler a ~size ~now:(Clock.now t.clock);
    Telemetry.charge_sampled t.telemetry Cost_model.sampling_ns
  end

let record_sampled_free t a =
  if Sampler.is_tracked t.sampler a then
    match Sampler.on_free t.sampler a ~now:(Clock.now t.clock) with
    | None -> ()
    | Some (size, lifetime_ns) -> Telemetry.record_lifetime t.telemetry ~size ~lifetime_ns

let malloc_large t ~size =
  let now = Clock.now t.clock in
  let pages = (size + page_size - 1) / page_size in
  let span, mmaps = Pageheap.new_large_span t.pageheap ~pages ~now in
  charge t Cost_model.Pageheap;
  if mmaps > 0 then begin
    Telemetry.charge_tier t.telemetry Cost_model.Mmap
      (float_of_int mmaps *. Cost_model.mmap_ns);
    Telemetry.record_hit t.telemetry Cost_model.Mmap
  end
  else Telemetry.record_hit t.telemetry Cost_model.Pageheap;
  let a = Span.pop_object span in
  Telemetry.record_alloc t.telemetry ~requested:size ~rounded:(pages * page_size);
  maybe_sample t a ~size;
  a

(* Refill the per-CPU cache from the transfer cache, recording where the
   batch actually came from and the locality of reused objects. *)
let refill t ~cls ~domain ~now =
  let batch = Size_class.batch cls in
  let result = Transfer_cache.remove t.tc ~cls ~n:batch ~domain ~now in
  charge t Cost_model.Transfer_cache;
  for _ = 1 to result.Transfer_cache.local_reuse do
    Telemetry.record_object_reuse t.telemetry ~remote:false
  done;
  for _ = 1 to result.Transfer_cache.remote_reuse do
    Telemetry.record_object_reuse t.telemetry ~remote:true
  done;
  let deepest =
    if result.Transfer_cache.mmaps > 0 then begin
      Telemetry.charge_tier t.telemetry Cost_model.Mmap
        (float_of_int result.Transfer_cache.mmaps *. Cost_model.mmap_ns);
      charge t Cost_model.Central_free_list;
      Cost_model.Mmap
    end
    else if result.Transfer_cache.from_cfl > 0 then begin
      charge t Cost_model.Central_free_list;
      Cost_model.Central_free_list
    end
    else Cost_model.Transfer_cache
  in
  (result.Transfer_cache.addrs, deepest)

(* [refill] through the preallocated scratch buffer: the batch lands in
   [t.batch_buf.(0) .. t.tc_stats.rs_count) and the same telemetry is
   charged in the same order, with no per-miss list or record. *)
let refill_into t ~cls ~domain ~now =
  let batch = Size_class.batch cls in
  let stats = t.tc_stats in
  Transfer_cache.remove_into t.tc ~cls ~n:batch ~domain ~now ~buf:t.batch_buf ~stats;
  charge t Cost_model.Transfer_cache;
  for _ = 1 to stats.Transfer_cache.rs_local do
    Telemetry.record_object_reuse t.telemetry ~remote:false
  done;
  for _ = 1 to stats.Transfer_cache.rs_remote do
    Telemetry.record_object_reuse t.telemetry ~remote:true
  done;
  if stats.Transfer_cache.rs_mmaps > 0 then begin
    Telemetry.charge_tier t.telemetry Cost_model.Mmap
      (float_of_int stats.Transfer_cache.rs_mmaps *. Cost_model.mmap_ns);
    charge t Cost_model.Central_free_list;
    Cost_model.Mmap
  end
  else if stats.Transfer_cache.rs_from_cfl > 0 then begin
    charge t Cost_model.Central_free_list;
    Cost_model.Central_free_list
  end
  else Cost_model.Transfer_cache

(* Run one fast-path operation under the restartable-sequence protocol:
   every attempt re-reads the vCPU id (a migration between attempts lands
   the restart on a different cache), each restart re-runs the 3.1 ns fast
   path (the Fig. 4 restart overhead), and exhausting the restart budget
   surfaces [None] so the caller takes its slow path.  Returns the vCPU id
   the last attempt observed (read once explicitly if every attempt aborted
   before reading it). *)
let run_rseq t r ~thread ~cpu ~stage =
  let observed = ref (-1) in
  let read_vcpu () =
    let vcpu = cache_index_id t ~thread ~cpu in
    remember_domain t ~vcpu ~cpu;
    observed := vcpu;
    vcpu
  in
  let result = Rseq.run r ~read_vcpu ~stage in
  Telemetry.record_rseq_op t.telemetry ~restarts:result.Rseq.restarts
    ~fell_back:(Option.is_none result.Rseq.outcome);
  if result.Rseq.restarts > 0 then
    Telemetry.charge_tier t.telemetry Cost_model.Per_cpu_cache
      (float_of_int result.Rseq.restarts
      *. Cost_model.tier_hit_ns Cost_model.Per_cpu_cache);
  if !observed < 0 then ignore (read_vcpu ());
  (result.Rseq.outcome, !observed)

(* Bookkeeping tail of a {!Rseq.run_op} fast path: same telemetry as
   [run_rseq] (per-op record, per-restart fast-path charge, guaranteed
   vCPU observation).  Returns [true] when the restart budget ran out. *)
let finish_rseq_op t ~ret =
  let restarts, fell_back = if ret >= 0 then (ret, false) else (-1 - ret, true) in
  Telemetry.record_rseq_op t.telemetry ~restarts ~fell_back;
  if restarts > 0 then
    Telemetry.charge_tier t.telemetry Cost_model.Per_cpu_cache
      (float_of_int restarts *. Cost_model.tier_hit_ns Cost_model.Per_cpu_cache);
  if t.fast.fo_observed < 0 then ignore (t.fast.fo_read_vcpu ());
  fell_back

(* Front-end allocation miss: pull a batch from the transfer cache, keep the
   first object, and offer the rest to the per-CPU cache (under rseq when the
   injector is on; a refill whose restart budget runs out caches nothing and
   the whole batch returns to the transfer cache). *)
let alloc_miss t ~thread ~cpu ~vcpu ~cls =
  let now = Clock.now t.clock in
  Telemetry.record_front_end_miss t.telemetry ~vcpu;
  Telemetry.charge_other t.telemetry 0.4;
  let domain = Topology.domain_of_cpu t.topology cpu in
  match t.rseq with
  | None ->
    (* Allocation-free slow path: the whole batch moves through the scratch
       buffer — transfer-cache pull, per-CPU fill, rejected-suffix
       reinsertion — with no list cells per miss. *)
    let deepest = refill_into t ~cls ~domain ~now in
    Telemetry.record_hit t.telemetry deepest;
    let count = t.tc_stats.Transfer_cache.rs_count in
    if count = 0 then
      (* The central free list absorbed an mmap failure and returned
         nothing; surface it so the retry-with-reclaim loop engages. *)
      raise (Vm.Mmap_failed Vm.Transient_fault);
    let buf = t.batch_buf in
    let first = buf.(0) in
    for i = 1 to count - 1 do
      Int_table.set t.in_flight buf.(i) 1
    done;
    let accepted = Per_cpu_cache.fill_from t.pcc ~vcpu ~cls ~buf ~lo:1 ~hi:count in
    if 1 + accepted < count then
      ignore
        (Transfer_cache.insert_rev_from t.tc ~cls ~domain ~now ~buf ~lo:(1 + accepted)
           ~hi:count);
    first
  | Some r -> (
    let addrs, deepest = refill t ~cls ~domain ~now in
    Telemetry.record_hit t.telemetry deepest;
    match addrs with
    | [] ->
      (* The central free list absorbed an mmap failure and returned
         nothing; surface it so the retry-with-reclaim loop engages. *)
      raise (Vm.Mmap_failed Vm.Transient_fault)
    | first :: rest ->
      List.iter (fun a -> Int_table.set t.in_flight a 1) rest;
      let rejected =
        match
          run_rseq t r ~thread ~cpu
            ~stage:(fun ~vcpu -> Per_cpu_cache.stage_fill t.pcc ~vcpu ~cls ~addrs:rest)
        with
        | Some rejected, _ -> rejected
        | None, _ -> rest
      in
      if rejected <> [] then
        ignore (Transfer_cache.insert t.tc ~cls ~addrs:rejected ~domain ~now);
      first)

let malloc_attempt t ~thread ~cpu ~size =
  Telemetry.charge_prefetch t.telemetry Cost_model.prefetch_ns;
  let cls = Size_class.index_of_size size in
  if cls < 0 then malloc_large t ~size
  else begin
    charge t Cost_model.Per_cpu_cache;
    let a =
      match t.rseq with
      | None ->
        let vcpu = cache_index_id t ~thread ~cpu in
        remember_domain t ~vcpu ~cpu;
        let a = Per_cpu_cache.alloc t.pcc ~vcpu ~cls in
        if a >= 0 then begin
          Telemetry.record_hit t.telemetry Cost_model.Per_cpu_cache;
          a
        end
        else alloc_miss t ~thread ~cpu ~vcpu ~cls
      | Some r ->
        let fo = t.fast in
        fo.fo_thread <- thread;
        fo.fo_cpu <- cpu;
        fo.fo_cls <- cls;
        fo.fo_observed <- -1;
        let ret =
          Rseq.run_op r ~read_vcpu:fo.fo_read_vcpu ~prepare:fo.fo_prep_alloc
            ~commit:fo.fo_commit
        in
        let fell_back = finish_rseq_op t ~ret in
        if (not fell_back) && fo.fo_res_addr >= 0 then begin
          Telemetry.record_hit t.telemetry Cost_model.Per_cpu_cache;
          fo.fo_res_addr
        end
        else
          (* Committed miss, or restart budget exhausted: either way the
             front end yielded nothing — take the refill slow path. *)
          alloc_miss t ~thread ~cpu ~vcpu:fo.fo_observed ~cls
    in
    Int_table.remove t.in_flight a;
    Telemetry.record_alloc t.telemetry ~requested:size ~rounded:(Size_class.size cls);
    maybe_sample t a ~size;
    a
  end

(* Allocation entry point with the bounded retry-with-reclaim loop: an mmap
   failure (transient fault or hard memory limit) triggers the reclaim
   cascade and a retry; only after [reclaim_retries] exhausted attempts does
   the allocator surface [Out_of_memory]. *)
let reclaim_target t ~size = max t.config.Config.reclaim_min_target_bytes (2 * size)

(* Toplevel recursion (not a local closure capturing the parameters): the
   closure would cost several minor words on every allocation. *)
let rec malloc_retry t ~thread ~cpu ~size retries_left =
  match malloc_attempt t ~thread ~cpu ~size with
  | a -> a
  | exception Vm.Mmap_failed _ ->
    ignore (release_memory t ~target_bytes:(reclaim_target t ~size));
    if retries_left > 0 then begin
      Telemetry.record_reclaim_retry t.telemetry;
      malloc_retry t ~thread ~cpu ~size (retries_left - 1)
    end
    else begin
      Telemetry.record_oom t.telemetry;
      raise Stdlib.Out_of_memory
    end

let malloc_th t ~thread ~cpu ~size =
  if size <= 0 then invalid_arg "Malloc.malloc: size must be positive";
  malloc_retry t ~thread ~cpu ~size t.config.Config.reclaim_retries

let malloc ?thread t ~cpu ~size =
  malloc_th t ~thread:(match thread with Some th -> th | None -> -1) ~cpu ~size

let free_error ~what ~a ~size ~tier =
  invalid_arg
    (Printf.sprintf "Malloc.free: %s (addr=0x%x, size=%d, tier=%s)" what a size tier)

let free_large t a ~size =
  match Pageheap.span_of_addr t.pageheap a with
  | None -> free_error ~what:"wild pointer" ~a ~size ~tier:"page-map"
  | Some span ->
    if not (Span.is_large span) then
      free_error ~what:"size mismatch: allocation is small" ~a ~size ~tier:"page-map";
    let pages = (size + page_size - 1) / page_size in
    if pages <> span.Span.pages then
      free_error ~what:"size mismatch: wrong page count" ~a ~size ~tier:"pageheap";
    if a <> span.Span.base then
      free_error ~what:"misaligned free: interior pointer" ~a ~size ~tier:"pageheap";
    if Span.is_idle span then free_error ~what:"double free" ~a ~size ~tier:"pageheap";
    charge t Cost_model.Pageheap;
    record_sampled_free t a;
    Telemetry.record_free t.telemetry ~requested:size
      ~rounded:(span.Span.pages * page_size);
    Span.push_object span a;
    Pageheap.free_span t.pageheap span

(* Validate a small free before touching any cache state: wild pointers,
   size-class mismatches, misaligned interior pointers, and double frees
   (both of objects sitting free in their span and of objects still cached
   in the per-CPU/transfer tiers) raise descriptive [Invalid_argument]. *)
let check_small_free t a ~size ~cls =
  match Pageheap.span_of_addr t.pageheap a with
  | None -> free_error ~what:"wild pointer" ~a ~size ~tier:"page-map"
  | Some span ->
    if Span.is_large span then
      free_error ~what:"size mismatch: allocation is large" ~a ~size ~tier:"page-map";
    if span.Span.size_class <> cls then
      free_error
        ~what:
          (Printf.sprintf "size mismatch: class %d given, span holds class %d" cls
             span.Span.size_class)
        ~a ~size ~tier:"central-free-list";
    if (a - span.Span.base) mod span.Span.obj_size <> 0 then
      free_error ~what:"misaligned free: interior pointer" ~a ~size ~tier:"central-free-list";
    (* Span-tier check first: an object that drained back to its span may
       still have a stale cache-tier marker, and the span is ground truth. *)
    if Span.object_is_free span a then
      free_error ~what:"double free" ~a ~size ~tier:"central-free-list";
    if Int_table.mem t.in_flight a then
      free_error ~what:"double free" ~a ~size ~tier:"front-end"

(* Deallocation miss: flush a batch (including this object) to the transfer
   cache.  Under rseq the flush is itself restartable; a flush whose budget
   runs out sends only the freed object. *)
let dealloc_miss t ~thread ~cpu ~vcpu ~cls a =
  let now = Clock.now t.clock in
  Telemetry.record_front_end_miss t.telemetry ~vcpu;
  Telemetry.charge_other t.telemetry 0.4;
  let domain = Topology.domain_of_cpu t.topology cpu in
  let batch = Size_class.batch cls in
  match t.rseq with
  | None ->
    (* Allocation-free slow path: the freed object plus the flushed batch
       travel through the scratch buffer, in [insert]'s [a :: flushed]
       order. *)
    let buf = t.batch_buf in
    buf.(0) <- a;
    let m = Per_cpu_cache.flush_batch_into t.pcc ~vcpu ~cls ~n:(batch - 1) ~buf ~pos:1 in
    charge t Cost_model.Transfer_cache;
    let overflow = Transfer_cache.insert_from t.tc ~cls ~domain ~now ~buf ~lo:0 ~hi:(1 + m) in
    if overflow > 0 then charge t Cost_model.Central_free_list
  | Some r ->
    let flushed =
      match
        run_rseq t r ~thread ~cpu
          ~stage:(fun ~vcpu -> Per_cpu_cache.stage_flush_batch t.pcc ~vcpu ~cls ~n:(batch - 1))
      with
      | Some flushed, _ -> flushed
      | None, _ -> []
    in
    charge t Cost_model.Transfer_cache;
    let overflow = Transfer_cache.insert t.tc ~cls ~addrs:(a :: flushed) ~domain ~now in
    if overflow > 0 then charge t Cost_model.Central_free_list

let free_th t ~thread ~cpu a ~size =
  if size <= 0 then invalid_arg "Malloc.free: size must be positive";
  let cls = Size_class.index_of_size size in
  if cls < 0 then free_large t a ~size
  else begin
    check_small_free t a ~size ~cls;
    charge t Cost_model.Per_cpu_cache;
    record_sampled_free t a;
    Telemetry.record_free t.telemetry ~requested:size ~rounded:(Size_class.size cls);
    Int_table.set t.in_flight a 1;
    match t.rseq with
    | None ->
      let vcpu = cache_index_id t ~thread ~cpu in
      remember_domain t ~vcpu ~cpu;
      if not (Per_cpu_cache.dealloc t.pcc ~vcpu ~cls a) then
        dealloc_miss t ~thread ~cpu ~vcpu ~cls a
    | Some r ->
      let fo = t.fast in
      fo.fo_thread <- thread;
      fo.fo_cpu <- cpu;
      fo.fo_cls <- cls;
      fo.fo_addr <- a;
      fo.fo_observed <- -1;
      let ret =
        Rseq.run_op r ~read_vcpu:fo.fo_read_vcpu ~prepare:fo.fo_prep_dealloc
          ~commit:fo.fo_commit
      in
      let fell_back = finish_rseq_op t ~ret in
      if fell_back then begin
        (* Restart budget exhausted before the cache accepted the object:
           bypass the front end and hand it straight to the transfer cache
           (the real allocator's slow path), without charging a front-end
           miss to the vCPU. *)
        let domain = Topology.domain_of_cpu t.topology cpu in
        charge t Cost_model.Transfer_cache;
        let overflow =
          Transfer_cache.insert t.tc ~cls ~addrs:[ a ] ~domain ~now:(Clock.now t.clock)
        in
        if overflow > 0 then charge t Cost_model.Central_free_list
      end
      else if not fo.fo_res_ok then dealloc_miss t ~thread ~cpu ~vcpu:fo.fo_observed ~cls a
  end

let free ?thread t ~cpu a ~size =
  free_th t ~thread:(match thread with Some th -> th | None -> -1) ~cpu a ~size

let rseq t = t.rseq

let stranded_pending_ids t =
  Hashtbl.fold (fun id () acc -> id :: acc) t.stranded_pending [] |> List.sort compare

(* A physical CPU stops running this process: retire its vCPU id.  The
   retired cache either flushes to the transfer cache right away
   ([flush:true], what churn-aware consumers of {!Wsc_os.Fault.churn_due}
   must do) or registers for the background stranded-cache reclaim pass.
   A live injector is told about the migration so the next fast-path
   attempt aborts on its stale CPU id. *)
let cpu_idle ?(flush = false) t ~cpu =
  let vcpu = Vcpu.lookup t.vcpus ~phys_cpu:cpu in
  Vcpu.release t.vcpus ~phys_cpu:cpu;
  match vcpu with
  | None -> ()
  | Some vcpu ->
    (match t.rseq with Some r -> Rseq.note_migration r | None -> ());
    if t.config.Config.front_end = Config.Per_cpu_caches then begin
      if flush then begin
        let now = Clock.now t.clock in
        let bytes = Per_cpu_cache.drain_vcpu t.pcc ~vcpu ~evict:(evict_to_transfer t ~now) in
        Hashtbl.remove t.stranded_pending vcpu;
        if bytes > 0 then Telemetry.record_stranded_reclaim t.telemetry ~bytes
      end
      else if Per_cpu_cache.used_bytes t.pcc ~vcpu > 0 then
        Hashtbl.replace t.stranded_pending vcpu ()
    end

type heap_stats = {
  live_requested_bytes : int;
  live_rounded_bytes : int;
  front_end_cached_bytes : int;
  transfer_cached_bytes : int;
  cfl_fragmented_bytes : int;
  pageheap_fragmented_bytes : int;
  internal_fragmentation_bytes : int;
  external_fragmentation_bytes : int;
  resident_bytes : int;
}

let heap_stats t =
  let front_end = Per_cpu_cache.cached_bytes t.pcc in
  let transfer = Transfer_cache.cached_bytes t.tc in
  let cfl = Central_free_list.fragmented_bytes t.cfl in
  let ph = Pageheap.fragmented_bytes t.pageheap in
  {
    live_requested_bytes = Telemetry.live_requested_bytes t.telemetry;
    live_rounded_bytes = Telemetry.live_rounded_bytes t.telemetry;
    front_end_cached_bytes = front_end;
    transfer_cached_bytes = transfer;
    cfl_fragmented_bytes = cfl;
    pageheap_fragmented_bytes = ph;
    internal_fragmentation_bytes = Telemetry.internal_fragmentation_bytes t.telemetry;
    external_fragmentation_bytes = front_end + transfer + cfl + ph;
    resident_bytes = Vm.resident_bytes t.vm;
  }

let hugepage_coverage t = Pageheap.hugepage_coverage t.pageheap

(* Allocation-free observation accessors for the driver's per-epoch memory
   sampling: [heap_stats] builds a record (plus three component walks) each
   call, which dominated the epoch loop's allocation budget. *)
let resident_bytes t = Vm.resident_bytes t.vm

let[@inline] live_fragmentation_ratio t =
  let live = Telemetry.live_requested_bytes t.telemetry in
  if live <= 0 then 0.0
  else begin
    let fragmented =
      Per_cpu_cache.cached_bytes t.pcc + Transfer_cache.cached_bytes t.tc
      + Central_free_list.fragmented_bytes t.cfl
      + Pageheap.fragmented_bytes t.pageheap
      + Telemetry.internal_fragmentation_bytes t.telemetry
    in
    float_of_int fragmented /. float_of_int live
  end

let fragmentation_ratio stats =
  if stats.live_requested_bytes <= 0 then 0.0
  else begin
    let fragmented =
      stats.external_fragmentation_bytes + stats.internal_fragmentation_bytes
    in
    float_of_int fragmented /. float_of_int stats.live_requested_bytes
  end

let telemetry t = t.telemetry
let span_stats t = t.span_stats
let per_cpu_caches t = t.pcc
let transfer_cache t = t.tc
let central_free_list t = t.cfl
let pageheap t = t.pageheap
let vm t = t.vm
let vcpus t = t.vcpus
let sampler t = t.sampler
let config t = t.config
let topology t = t.topology
let clock t = t.clock
let snapshot_spans t = Central_free_list.snapshot t.cfl ~now:(Clock.now t.clock)

(* Warm-state snapshot: one [Marshal] blob of the whole allocator graph.
   [Marshal.Closures] carries the background tickers registered on the
   clock (they capture [t]), so a restored allocator resumes with every
   periodic activity — cache resize, decay, stranded reclaim, span
   snapshots — exactly where it left off.  Sharing is preserved, so spans
   referenced from both the central free lists and the page map come back
   as one object, and float counters round-trip bit-for-bit. *)
let snapshot t = Marshal.to_string t [ Marshal.Closures ]
let restore blob : t = Marshal.from_string blob 0
