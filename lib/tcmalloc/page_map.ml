open Wsc_substrate

(* Two-level radix tree over TCMalloc page numbers, the shape real TCMalloc
   uses: a root array of Bigarray leaves, each leaf mapping a page to
   1 + the owning span's slot (0 = unowned).  Leaves are Bigarray int
   vectors so the GC never scans them, and [lookup] returns the span's
   construction-time [Some] cell, so the per-free address check allocates
   nothing — against a hash plus an allocated option per probe for the old
   Hashtbl page map. *)

type leaf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable root : leaf option array;  (* page lsr leaf_bits -> leaf *)
  mutable slots : Span.t option array;  (* slot -> shared [Some span] *)
  mutable free_slots : int list;
  mutable next_slot : int;
  mutable spans : int;
}

let page_size = Units.tcmalloc_page_size
let leaf_bits = 15
let leaf_pages = 1 lsl leaf_bits  (* 32 K pages = 256 MiB of VA per leaf *)
let leaf_mask = leaf_pages - 1

let create () =
  {
    root = Array.make 64 None;
    slots = Array.make 64 None;
    free_slots = [];
    next_slot = 0;
    spans = 0;
  }

let leaf_of t hi =
  let n = Array.length t.root in
  if hi >= n then begin
    let bigger = Array.make (max (hi + 1) (2 * n)) None in
    Array.blit t.root 0 bigger 0 n;
    t.root <- bigger
  end;
  match t.root.(hi) with
  | Some leaf -> leaf
  | None ->
    let leaf = Bigarray.Array1.create Bigarray.int Bigarray.c_layout leaf_pages in
    Bigarray.Array1.fill leaf 0;
    t.root.(hi) <- Some leaf;
    leaf

let register t span =
  let slot =
    match t.free_slots with
    | s :: rest ->
      t.free_slots <- rest;
      s
    | [] ->
      let s = t.next_slot in
      t.next_slot <- s + 1;
      let n = Array.length t.slots in
      if s >= n then begin
        let bigger = Array.make (2 * n) None in
        Array.blit t.slots 0 bigger 0 n;
        t.slots <- bigger
      end;
      s
  in
  t.slots.(slot) <- Some span;
  let first = span.Span.base / page_size in
  for page = first to first + span.Span.pages - 1 do
    let leaf = leaf_of t (page lsr leaf_bits) in
    if Bigarray.Array1.get leaf (page land leaf_mask) <> 0 then
      invalid_arg "Page_map.register: page already owned";
    Bigarray.Array1.set leaf (page land leaf_mask) (slot + 1)
  done;
  t.spans <- t.spans + 1

let unregister t span =
  let first = span.Span.base / page_size in
  let slot = ref (-1) in
  for page = first to first + span.Span.pages - 1 do
    let hi = page lsr leaf_bits in
    let leaf =
      if hi >= Array.length t.root then None else t.root.(hi)
    in
    match leaf with
    | None -> invalid_arg "Page_map.unregister: page not owned by span"
    | Some leaf ->
      let v = Bigarray.Array1.get leaf (page land leaf_mask) in
      let matches =
        v <> 0
        &&
        match t.slots.(v - 1) with
        | Some owner -> owner.Span.id = span.Span.id
        | None -> false
      in
      if not matches then invalid_arg "Page_map.unregister: page not owned by span";
      Bigarray.Array1.set leaf (page land leaf_mask) 0;
      slot := v - 1
  done;
  if !slot >= 0 then begin
    t.slots.(!slot) <- None;
    t.free_slots <- !slot :: t.free_slots
  end;
  t.spans <- t.spans - 1

let[@inline] lookup t addr =
  let page = addr / page_size in
  let hi = page lsr leaf_bits in
  if hi >= Array.length t.root then None
  else
    match Array.unsafe_get t.root hi with
    | None -> None
    | Some leaf ->
      let v = Bigarray.Array1.unsafe_get leaf (page land leaf_mask) in
      if v = 0 then None else Array.unsafe_get t.slots (v - 1)

let lookup_exn t addr =
  match lookup t addr with
  | Some span -> span
  | None -> invalid_arg "Page_map.lookup_exn: address not in any span"

let span_count t = t.spans

let iter_spans t f =
  Array.iter (function Some span -> f span | None -> ()) t.slots
