open Wsc_substrate

type t = { pages : (int, Span.t) Hashtbl.t; mutable spans : int }

let page_size = Units.tcmalloc_page_size
let create () = { pages = Hashtbl.create 4096; spans = 0 }

let register t span =
  let first = span.Span.base / page_size in
  for page = first to first + span.Span.pages - 1 do
    if Hashtbl.mem t.pages page then invalid_arg "Page_map.register: page already owned";
    Hashtbl.replace t.pages page span
  done;
  t.spans <- t.spans + 1

let unregister t span =
  let first = span.Span.base / page_size in
  for page = first to first + span.Span.pages - 1 do
    match Hashtbl.find_opt t.pages page with
    | Some owner when owner.Span.id = span.Span.id -> Hashtbl.remove t.pages page
    | Some _ | None -> invalid_arg "Page_map.unregister: page not owned by span"
  done;
  t.spans <- t.spans - 1

let lookup t addr = Hashtbl.find_opt t.pages (addr / page_size)

let lookup_exn t addr =
  match lookup t addr with
  | Some span -> span
  | None -> invalid_arg "Page_map.lookup_exn: address not in any span"

let span_count t = t.spans

let iter_spans t f =
  (* The table holds one entry per page; visit each span once. *)
  let seen = Hashtbl.create (max 16 t.spans) in
  Hashtbl.iter
    (fun _ span ->
      if not (Hashtbl.mem seen span.Span.id) then begin
        Hashtbl.replace seen span.Span.id ();
        f span
      end)
    t.pages
