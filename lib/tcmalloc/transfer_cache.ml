open Wsc_substrate

type addr = int

(* Parallel stacks: object address and the LLC domain that freed it. *)
type class_slot = {
  addrs : Int_stack.t;
  homes : Int_stack.t;
  capacity : int;
  mutable low_watermark : int;  (* fewest objects held since the last release tick *)
}
type shard = { slots : class_slot array; mutable cached_bytes : int }

type t = {
  config : Config.t;
  cfl : Central_free_list.t;
  central : shard;
  domain_shards : shard array;  (* empty when NUCA-awareness is off *)
}

let slot_capacity config cls =
  let size = Size_class.size cls in
  max
    (2 * Size_class.batch cls)
    (config.Config.transfer_cache_bytes_per_class / size)

let make_shard config =
  {
    slots =
      Array.init Size_class.count (fun cls ->
          {
            addrs = Int_stack.create ();
            homes = Int_stack.create ();
            capacity = slot_capacity config cls;
            low_watermark = 0;
          });
    cached_bytes = 0;
  }

let create ?(config = Config.baseline) ~topology cfl =
  let domain_shards =
    if config.Config.nuca_aware_transfer_cache then
      Array.init (Wsc_hw.Topology.num_domains topology) (fun _ -> make_shard config)
    else [||]
  in
  { config; cfl; central = make_shard config; domain_shards }

let shard_push shard cls a home =
  let slot = shard.slots.(cls) in
  Int_stack.push slot.addrs a;
  Int_stack.push slot.homes home;
  shard.cached_bytes <- shard.cached_bytes + Size_class.size cls

let shard_pop shard cls =
  let slot = shard.slots.(cls) in
  match Int_stack.pop_opt slot.addrs with
  | None -> None
  | Some a ->
    let home = Int_stack.pop slot.homes in
    shard.cached_bytes <- shard.cached_bytes - Size_class.size cls;
    let len = Int_stack.length slot.addrs in
    if len < slot.low_watermark then slot.low_watermark <- len;
    Some (a, home)

let shard_room shard cls =
  let slot = shard.slots.(cls) in
  slot.capacity - Int_stack.length slot.addrs

type remove_result = {
  addrs : addr list;
  local_reuse : int;
  remote_reuse : int;
  from_cfl : int;
  mmaps : int;
}

let remove t ~cls ~n ~domain ~now =
  let out = ref [] in
  let local = ref 0 and remote = ref 0 in
  let need = ref n in
  let drain shard =
    let continue = ref true in
    while !need > 0 && !continue do
      match shard_pop shard cls with
      | None -> continue := false
      | Some (a, home) ->
        out := a :: !out;
        decr need;
        if home = domain then incr local else incr remote
    done
  in
  if Array.length t.domain_shards > 0 then drain t.domain_shards.(domain);
  if !need > 0 then drain t.central;
  let from_cfl = !need in
  let mmaps =
    if !need > 0 then begin
      let addrs, mmaps = Central_free_list.remove_objects t.cfl ~cls ~n:!need ~now in
      out := List.rev_append addrs !out;
      need := 0;
      mmaps
    end
    else 0
  in
  { addrs = !out; local_reuse = !local; remote_reuse = !remote; from_cfl; mmaps }

type remove_stats = {
  mutable rs_count : int;
  mutable rs_local : int;
  mutable rs_remote : int;
  mutable rs_from_cfl : int;
  mutable rs_mmaps : int;
}

let make_remove_stats () =
  { rs_count = 0; rs_local = 0; rs_remote = 0; rs_from_cfl = 0; rs_mmaps = 0 }

(* In-place [lo, hi) reversal, for matching [remove]'s list order below. *)
let rev_range buf lo hi =
  let i = ref lo and j = ref (hi - 1) in
  while !i < !j do
    let v = buf.(!i) in
    buf.(!i) <- buf.(!j);
    buf.(!j) <- v;
    incr i;
    decr j
  done

(* Allocation-free twin of [remove]: the batch lands in [buf.(0) ..
   stats.rs_count) in exactly the order the list form would have produced
   ([CFL objects in pop order] then [shard pops, most recent first]), so
   the per-CPU refill sees an identical stream. *)
let remove_into t ~cls ~n ~domain ~now ~buf ~stats =
  let k = ref 0 in
  let need = ref n in
  let drain shard =
    let slot = shard.slots.(cls) in
    while !need > 0 && Int_stack.length slot.addrs > 0 do
      let a = Int_stack.pop slot.addrs in
      let home = Int_stack.pop slot.homes in
      shard.cached_bytes <- shard.cached_bytes - Size_class.size cls;
      let len = Int_stack.length slot.addrs in
      if len < slot.low_watermark then slot.low_watermark <- len;
      buf.(!k) <- a;
      incr k;
      decr need;
      if home = domain then stats.rs_local <- stats.rs_local + 1
      else stats.rs_remote <- stats.rs_remote + 1
    done
  in
  stats.rs_local <- 0;
  stats.rs_remote <- 0;
  if Array.length t.domain_shards > 0 then drain t.domain_shards.(domain);
  if !need > 0 then drain t.central;
  let shard_pops = !k in
  stats.rs_from_cfl <- !need;
  let mmaps = ref 0 in
  if !need > 0 then
    k :=
      !k
      + Central_free_list.remove_objects_into t.cfl ~cls ~n:!need ~now ~buf
          ~pos:shard_pops ~mmaps;
  stats.rs_mmaps <- !mmaps;
  stats.rs_count <- !k;
  (* [remove] returns [rev cfl-pops @ rev shard-pops]; the buffer holds
     [shard-pops ++ cfl-pops], so reverse the CFL segment then the whole
     prefix to land on the same order. *)
  rev_range buf shard_pops !k;
  rev_range buf 0 !k

let insert t ~cls ~addrs ~domain ~now =
  let overflow = ref [] in
  let store shard a =
    if shard_room shard cls > 0 then begin
      shard_push shard cls a domain;
      true
    end
    else false
  in
  List.iter
    (fun a ->
      let stored =
        if Array.length t.domain_shards > 0 then
          store t.domain_shards.(domain) a || store t.central a
        else store t.central a
      in
      if not stored then overflow := a :: !overflow)
    addrs;
  let n_overflow = List.length !overflow in
  if n_overflow > 0 then Central_free_list.return_objects t.cfl ~cls ~addrs:!overflow ~now;
  n_overflow

(* Buffer twins of [insert] for the cache-miss batch path.  Storage order
   matches the list form exactly — including the cons-accumulated overflow
   that goes back to the central free list — so span occupancy evolves
   bit-identically.  [insert_from] walks [buf.(lo) .. buf.(hi-1)] forward
   (the [a :: flushed] dealloc order); [insert_rev_from] walks it backward
   (the reversed-rejected-suffix refill order). *)
let store_one t ~cls ~domain a =
  let store shard =
    if shard_room shard cls > 0 then begin
      shard_push shard cls a domain;
      true
    end
    else false
  in
  if Array.length t.domain_shards > 0 then
    store t.domain_shards.(domain) || store t.central
  else store t.central

let insert_from t ~cls ~domain ~now ~buf ~lo ~hi =
  let overflow = ref [] in
  let n_overflow = ref 0 in
  for i = lo to hi - 1 do
    let a = buf.(i) in
    if not (store_one t ~cls ~domain a) then begin
      overflow := a :: !overflow;
      incr n_overflow
    end
  done;
  if !n_overflow > 0 then
    Central_free_list.return_objects t.cfl ~cls ~addrs:!overflow ~now;
  !n_overflow

let insert_rev_from t ~cls ~domain ~now ~buf ~lo ~hi =
  let overflow = ref [] in
  let n_overflow = ref 0 in
  for i = hi - 1 downto lo do
    let a = buf.(i) in
    if not (store_one t ~cls ~domain a) then begin
      overflow := a :: !overflow;
      incr n_overflow
    end
  done;
  if !n_overflow > 0 then
    Central_free_list.return_objects t.cfl ~cls ~addrs:!overflow ~now;
  !n_overflow

(* Objects a slot never dipped into since the previous tick are surplus:
   NUCA shards drain half of that low watermark to the central cache (so
   idle domains do not strand memory while busy shards keep their working
   sets local); the central cache drains its own surplus down to the
   central free list, letting idle-class objects rejoin their spans. *)
let release_tick t ~now =
  Array.iter
    (fun shard ->
      Array.iteri
        (fun cls (slot : class_slot) ->
          let drain = min (slot.low_watermark / 2) (Int_stack.length slot.addrs) in
          for _ = 1 to drain do
            match shard_pop shard cls with
            | None -> ()
            | Some (a, home) ->
              if shard_room t.central cls > 0 then shard_push t.central cls a home
              else Central_free_list.return_objects t.cfl ~cls ~addrs:[ a ] ~now
          done;
          slot.low_watermark <- Int_stack.length slot.addrs)
        shard.slots)
    t.domain_shards;
  Array.iteri
    (fun cls (slot : class_slot) ->
      let drain = min (slot.low_watermark / 2) (Int_stack.length slot.addrs) in
      let drained = ref [] in
      for _ = 1 to drain do
        match shard_pop t.central cls with
        | None -> ()
        | Some (a, _) -> drained := a :: !drained
      done;
      if !drained <> [] then Central_free_list.return_objects t.cfl ~cls ~addrs:!drained ~now;
      slot.low_watermark <- Int_stack.length slot.addrs)
    t.central.slots

(* Pressure-driven drain (second cascade stage): return every cached object
   — NUCA shards and central alike — to its span in the central free list,
   so drained spans can flow back to the pageheap for release. *)
let drain t ~now =
  let drained = ref 0 in
  let drain_shard shard =
    Array.iteri
      (fun cls (slot : class_slot) ->
        let addrs = ref [] in
        let continue = ref true in
        while !continue do
          match shard_pop shard cls with
          | None -> continue := false
          | Some (a, _) ->
            addrs := a :: !addrs;
            drained := !drained + Size_class.size cls
        done;
        if !addrs <> [] then Central_free_list.return_objects t.cfl ~cls ~addrs:!addrs ~now;
        slot.low_watermark <- 0)
      shard.slots
  in
  Array.iter drain_shard t.domain_shards;
  drain_shard t.central;
  !drained

let cached_bytes t =
  t.central.cached_bytes
  + Array.fold_left (fun acc shard -> acc + shard.cached_bytes) 0 t.domain_shards

let cached_objects t ~cls =
  Int_stack.length t.central.slots.(cls).addrs
  + Array.fold_left
      (fun acc shard -> acc + Int_stack.length shard.slots.(cls).addrs)
      0 t.domain_shards

let iter_addrs t f =
  let walk shard =
    Array.iteri
      (fun cls (slot : class_slot) -> Int_stack.iter slot.addrs (fun a -> f ~cls a))
      shard.slots
  in
  walk t.central;
  Array.iter walk t.domain_shards

let shard_count t = Array.length t.domain_shards
