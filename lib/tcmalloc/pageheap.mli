(** The back-end pageheap (Sec. 2.1 item 4, Sec. 4.4).

    Manages memory in hugepage units and carves spans for the central free
    list and for large (> 256 KiB) allocations.  Requests route to one of
    three components:

    - {b hugepage filler} — spans smaller than a hugepage;
    - {b hugepage region} — multi-hugepage allocations whose tail would
      waste most of a hugepage (e.g. 2.1 MiB);
    - {b hugepage cache} — whole-hugepage allocations; a partial tail
      hugepage is donated to the filler so its slack is reusable.

    The pageheap also implements the gradual release policy: completely
    free hugepages are returned to the OS intact, and, when free memory
    still lingers inside partially-used hugepages, the filler subreleases
    (breaking THP backing, which is what the lifetime-aware filler is
    designed to avoid). *)

type addr = int

type t

val create : ?config:Config.t -> Wsc_os.Vm.t -> t

val vm : t -> Wsc_os.Vm.t

val new_small_span : t -> size_class:int -> now:float -> Span.t * int
(** A fresh span for a size class, registered in the page map.  The second
    component counts mmap calls incurred (0 or 1), so the caller can charge
    the syscall latency. *)

val new_large_span : t -> pages:int -> now:float -> Span.t * int
(** A span for one large allocation of [pages] TCMalloc pages. *)

val free_span : t -> Span.t -> unit
(** Return an idle span.  @raise Invalid_argument if the span still has
    outstanding objects or is unknown. *)

val span_of_addr : t -> addr -> Span.t option
(** Page-map lookup used by [free(ptr)]. *)

val page_map : t -> Page_map.t
(** The page -> span index (exposed for the heap auditor). *)

val filler : t -> Hugepage_filler.t
(** The hugepage filler (exposed for the heap auditor). *)

val release_backlog_bytes : t -> int
(** Bytes {!release_memory} could return to the OS immediately: cached
    whole hugepages plus the filler's free (not yet subreleased) pages. *)

val release_memory : t -> max_bytes:int -> int
(** Release up to [max_bytes] to the OS: cached whole hugepages first
    (intact), then filler subrelease (breaking hugepages).  Returns bytes
    released. *)

val background_release : t -> unit
(** One tick of the gradual release policy
    ({!Config.t.pageheap_release_fraction} of the current free backlog). *)

(** {2 Statistics (Fig. 15, Fig. 17a)} *)

type component_stats = { in_use_bytes : int; fragmented_bytes : int }

val filler_stats : t -> component_stats
val region_stats : t -> component_stats
val cache_stats : t -> component_stats

val fragmented_bytes : t -> int
(** Total pageheap external fragmentation (sum over components). *)

val in_use_bytes : t -> int

val hugepage_coverage : t -> float
(** Fraction of in-use span bytes residing on intact (THP-backed)
    hugepages.  1.0 when nothing is in use. *)

val spans_outstanding : t -> int
