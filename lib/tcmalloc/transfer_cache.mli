(** The transfer cache (Sec. 2.1 item 2, Sec. 4.2).

    A mutex-protected flat array of free-object pointers per size class,
    letting memory flow rapidly between per-CPU caches (CPU 0 frees what
    CPU 1 later allocates).  Objects are moved in batches.

    The legacy design is one machine-wide (per-process) cache; on chiplet
    platforms it silently hands objects across LLC domains, so the consumer
    pays the ~2x inter-domain transfer latency on first touch.  The
    {b NUCA-aware} design ({!Config.t.nuca_aware_transfer_cache}) shards the
    cache per LLC domain, serving each domain's traffic from objects freed
    in that domain, with the legacy central cache retained as a second level
    (still cheaper than the central free list).  A periodic release tick
    drains half of each shard into the central cache so objects cannot
    strand in idle domains.

    Every cached entry remembers the LLC domain that freed it; removals
    report how many reused objects were domain-local vs remote, which feeds
    the locality/MPKI model behind Table 1. *)

type addr = int

type t

val create :
  ?config:Config.t -> topology:Wsc_hw.Topology.t -> Central_free_list.t -> t

type remove_result = {
  addrs : addr list;
  local_reuse : int;  (** Objects reused from the requesting LLC domain. *)
  remote_reuse : int;  (** Objects that must migrate across domains. *)
  from_cfl : int;  (** Objects that fell through to the central free list. *)
  mmaps : int;  (** mmap calls incurred below the central free list. *)
}

val remove : t -> cls:int -> n:int -> domain:int -> now:float -> remove_result
(** Fetch [n] objects of a class for a consumer in [domain]. *)

val insert : t -> cls:int -> addrs:addr list -> domain:int -> now:float -> int
(** Store freed objects coming from [domain]; returns how many overflowed
    to the central free list (0 when the cache had room). *)

(** Mutable scratch record filled by {!remove_into} — the counters
    {!remove_result} carries, without the per-miss record allocation. *)
type remove_stats = {
  mutable rs_count : int;  (** Objects delivered into the buffer. *)
  mutable rs_local : int;
  mutable rs_remote : int;
  mutable rs_from_cfl : int;
  mutable rs_mmaps : int;
}

val make_remove_stats : unit -> remove_stats

val remove_into :
  t ->
  cls:int ->
  n:int ->
  domain:int ->
  now:float ->
  buf:addr array ->
  stats:remove_stats ->
  unit
(** Allocation-free twin of {!remove} for the cache-miss batch path: up to
    [n] objects land in [buf.(0) .. stats.rs_count) in exactly the order
    {!remove} would have listed them, and the counters land in [stats].
    [buf] must have room for [n] objects. *)

val insert_from :
  t -> cls:int -> domain:int -> now:float -> buf:addr array -> lo:int -> hi:int -> int
(** {!insert} of [buf.(lo) .. buf.(hi-1)] in forward order, without the
    list; returns the overflow count. *)

val insert_rev_from :
  t -> cls:int -> domain:int -> now:float -> buf:addr array -> lo:int -> hi:int -> int
(** {!insert} of [buf.(hi-1) .. buf.(lo)] (reverse order — the refill
    path's rejected suffix is stored reversed); returns the overflow
    count. *)

val release_tick : t -> now:float -> unit
(** Background release: every NUCA shard drains half of its untouched
    surplus (low watermark) to the central cache, and the central cache
    drains half of its own untouched surplus to the central free list —
    TCMalloc's defense against idle size classes stranding memory in the
    middle tier.  Runs in both legacy and NUCA modes. *)

val drain : t -> now:float -> int
(** Memory-pressure drain (second stage of the reclaim cascade): return
    every cached object in every shard to the central free list and report
    the bytes moved.  Spans whose last object comes home are released to the
    pageheap as a side effect. *)

val cached_bytes : t -> int
(** Bytes of objects currently cached (external fragmentation in this
    tier). *)

val cached_objects : t -> cls:int -> int

val iter_addrs : t -> (cls:int -> addr -> unit) -> unit
(** Walk every cached object address across the central cache and every
    NUCA shard (the auditor's duplicate detection). *)

val shard_count : t -> int
(** Number of NUCA shards (0 for the legacy design). *)
