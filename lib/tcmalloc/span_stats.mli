(** Span lifecycle telemetry for the Sec. 4.3/4.4 correlation studies.

    Fig. 13 relates the number of live allocations observed on a span to the
    probability the span is returned to the pageheap soon after; Fig. 16
    relates a span's object capacity to its overall return rate.  The
    collector records periodic (span, live-allocation) observations plus
    creation/release events and computes both correlations post hoc. *)

type t

val create : unit -> t

val note_created : t -> span_id:int -> cls:int -> now:float -> unit
val note_released : t -> span_id:int -> cls:int -> now:float -> unit

val observe : t -> span_id:int -> cls:int -> outstanding:int -> now:float -> unit
(** One periodic snapshot of a live span. *)

val observation_count : t -> int
val spans_created : t -> cls:int -> int
val spans_released : t -> cls:int -> int

val return_rate_by_live_allocations :
  t -> cls:int -> window_ns:float -> bucket:int -> (int * float * int) list
(** For the given size class: [(live_allocation_bucket_lower, return_rate,
    observations)] where [return_rate] is the fraction of observations whose
    span was released within [window_ns]; live allocations are grouped in
    buckets of width [bucket]. *)

val return_rate_by_class : t -> (int * float * int) list
(** [(cls, lifetime_return_rate, spans_created)] for classes with at least
    one span, where the rate is [released / created] over the whole run. *)

val capacity_return_correlation : t -> float
(** Spearman correlation between span capacity and per-class return rate
    (the paper reports about -0.75, Fig. 16). *)
