open Wsc_substrate

type info = { index : int; size : int; pages : int; capacity : int; batch : int }

let page_size = Units.tcmalloc_page_size
let max_size = 256 * Units.kib

(* Spacing: multiples of 8 to 128 B; eight classes per octave (step size/8)
   from 128 B to 4 KiB; four per octave (step size/4) from 4 KiB to 256 KiB. *)
let sizes =
  let out = ref [] in
  let add s = out := s :: !out in
  let s = ref 8 in
  while !s <= 128 do
    add !s;
    s := !s + 8
  done;
  let octave = ref 128 in
  while !octave < 4096 do
    let step = !octave / 8 in
    for i = 1 to 8 do
      add (!octave + (i * step))
    done;
    octave := !octave * 2
  done;
  let octave = ref 4096 in
  while !octave < max_size do
    let step = !octave / 4 in
    for i = 1 to 4 do
      add (!octave + (i * step))
    done;
    octave := !octave * 2
  done;
  Array.of_list (List.rev !out)

(* Pages per span: smallest run of 1..64 pages keeping tail waste <= 12.5%
   and, for small classes, giving a reasonably large capacity so refills
   amortize (TCMalloc keeps small-class spans at one page, which already
   holds >= 64 objects). *)
let pages_for size =
  let waste_ok p =
    let span_bytes = p * page_size in
    let tail = span_bytes mod size in
    float_of_int tail /. float_of_int span_bytes <= 0.125
  in
  let rec search p = if p >= 64 then 64 else if waste_ok p then p else search (p + 1) in
  search (max 1 ((size + page_size - 1) / page_size))

let batch_for size =
  let moved = 64 * Units.kib / size in
  max 2 (min 32 moved)

let all =
  Array.mapi
    (fun index size ->
      let pages = pages_for size in
      let capacity = pages * page_size / size in
      { index; size; pages; capacity; batch = batch_for size })
    sizes

let count = Array.length all

let info i =
  if i < 0 || i >= count then invalid_arg "Size_class.info: out of range";
  all.(i)

let size i = (info i).size
let capacity i = (info i).capacity
let batch i = (info i).batch
let pages i = (info i).pages

(* O(1) class lookup: direct table for every multiple of 8 up to max_size. *)
let lookup =
  let slots = (max_size / 8) + 1 in
  let table = Array.make slots 0 in
  let cls = ref 0 in
  for slot = 1 to slots - 1 do
    let needed = slot * 8 in
    while !cls < count && all.(!cls).size < needed do
      incr cls
    done;
    table.(slot) <- (if !cls < count then !cls else -1)
  done;
  table

let of_size n =
  if n <= 0 then invalid_arg "Size_class.of_size: nonpositive size";
  if n > max_size then None
  else begin
    let slot = (n + 7) / 8 in
    let cls = lookup.(slot) in
    if cls < 0 then None else Some cls
  end

(* Allocation-free twin of [of_size] for the per-event hot paths: -1 means
   "large" (pageheap-direct), no [Some] box per lookup. *)
let index_of_size n =
  if n <= 0 then invalid_arg "Size_class.index_of_size: nonpositive size";
  if n > max_size then -1 else lookup.((n + 7) / 8)

let internal_slack ~requested =
  match of_size requested with None -> 0 | Some cls -> size cls - requested
