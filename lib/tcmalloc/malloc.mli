(** The allocator facade: TCMalloc's public malloc/free, wired through the
    full cache hierarchy (Fig. 1).

    [malloc] rounds small requests (<= 256 KiB) to a size class and serves
    them per-CPU cache -> transfer cache -> central free list -> pageheap,
    charging the calibrated per-tier latencies (Fig. 4) into {!Telemetry}.
    Large requests go straight to the pageheap.  [free] retraces the same
    path downward.  Callers identify the physical CPU issuing each call; the
    facade maps it to a dense vCPU id and maintains every background
    activity (dynamic cache resizing, NUCA shard release, gradual pageheap
    release) as tickers on the supplied {!Wsc_substrate.Clock}. *)

type addr = int

type t

val create :
  ?config:Config.t ->
  ?rseq:Wsc_os.Rseq.t ->
  ?span_snapshot_interval_ns:float ->
  topology:Wsc_hw.Topology.t ->
  clock:Wsc_substrate.Clock.t ->
  unit ->
  t
(** A fresh allocator instance (one simulated process).  When
    [span_snapshot_interval_ns] is given, central-free-list span occupancy
    is observed periodically into {!span_stats} (Figs. 13/16).

    When [rseq] is given, every per-CPU fast-path operation runs under the
    restartable-sequence protocol: the injector may preempt it at any of
    the four steps, forcing abort-and-restart on a freshly read vCPU id up
    to {!Config.t.rseq_max_restarts} times, after which the operation
    bypasses the front end to the transfer cache.  Restart counts, restart
    CPU overhead (one extra fast-path hit per restart, Fig. 4), and
    fallbacks are recorded in {!Telemetry}.  Without it the fast path
    commits atomically (identical to the pre-rseq model). *)

val malloc : ?thread:int -> t -> cpu:int -> size:int -> addr
(** Allocate [size > 0] bytes from a thread running on physical [cpu].
    [thread] identifies the calling software thread; it is only consulted
    by the legacy {!Config.Per_thread_caches} front-end, which indexes its
    caches by thread instead of vCPU (and without it falls back to vCPU
    indexing).

    When the simulated VM refuses backing memory (injected transient fault
    or hard memory limit), the allocator runs the {!release_memory} reclaim
    cascade and retries up to {!Config.t.reclaim_retries} times before
    surfacing [Out_of_memory]. *)

val free : ?thread:int -> t -> cpu:int -> addr -> size:int -> unit
(** Free a block previously returned by {!malloc} with the same [size].
    @raise Invalid_argument on erroneous frees, with a message naming the
    defect, the address, the size, and the deepest tier consulted:
    wild pointers, size mismatches (wrong class or wrong large page count),
    misaligned interior pointers, and double frees — whether the object is
    free in its span or still cached in the per-CPU/transfer tiers. *)

val malloc_th : t -> thread:int -> cpu:int -> size:int -> addr
val free_th : t -> thread:int -> cpu:int -> addr -> size:int -> unit
(** Int-sentinel twins of {!malloc}/{!free} ([thread = -1] means "no thread
    id") for per-event hot paths: no [Some] box per call.  Semantics are
    otherwise identical. *)

(** {2 Memory pressure} *)

type reclaim_outcome = {
  front_end_bytes : int;  (** Drained from per-CPU caches into the TC. *)
  transfer_bytes : int;  (** Drained from the transfer cache to spans. *)
  cfl_span_bytes : int;  (** Idle span bytes returned to the pageheap. *)
  os_released_bytes : int;  (** Bytes actually unmapped/subreleased. *)
}

val release_memory : t -> target_bytes:int -> reclaim_outcome
(** Run the graceful reclaim cascade for [target_bytes]: drain per-CPU
    caches into the transfer cache, drain the transfer cache back to spans
    (idle spans fall to the pageheap), then release hugepages and
    subrelease filler tail pages to the OS.  The cache-drain stages are
    skipped when the pageheap's immediately-releasable backlog already
    covers the target.  Each tier's contribution is recorded in
    {!Telemetry} and returned.  [target_bytes <= 0] is a no-op.

    Also runs automatically from the soft-limit watchdog ticker (period
    {!Config.t.soft_limit_check_interval_ns}) whenever
    {!Wsc_os.Vm.soft_limit_excess} is positive, and from [malloc]'s
    retry-with-reclaim loop after an mmap failure. *)

val cpu_idle : ?flush:bool -> t -> cpu:int -> unit
(** Tell the allocator a physical CPU stopped running this process's
    threads (its vCPU id becomes reusable).  With [flush:true] — what CPU
    churn should do — the retired cache's contents are drained to the
    transfer cache immediately; otherwise a populated cache is registered
    for the background stranded-cache reclaim pass (period
    {!Config.t.stranded_reclaim_interval_ns}), which drains every
    registered cache whose id is still inactive.  Either way the bytes are
    recorded as stranded reclaim in {!Telemetry}.  When an rseq injector is
    live, the retirement also arms a forced abort of the next fast-path
    attempt (the thread migrated; its CPU id is stale). *)

val rseq : t -> Wsc_os.Rseq.t option
(** The preemption injector the allocator runs under, if any. *)

val stranded_pending_ids : t -> int list
(** vCPU ids retired with a populated cache and not yet drained or reused,
    ascending (the stranded-cache reclaim pass's work list). *)

(** {2 Introspection} *)

type heap_stats = {
  live_requested_bytes : int;  (** Application-requested live bytes. *)
  live_rounded_bytes : int;  (** Live bytes after size-class rounding. *)
  front_end_cached_bytes : int;
  transfer_cached_bytes : int;
  cfl_fragmented_bytes : int;
  pageheap_fragmented_bytes : int;
  internal_fragmentation_bytes : int;
  external_fragmentation_bytes : int;  (** Sum of the four cache tiers. *)
  resident_bytes : int;  (** Simulated RSS. *)
}

val heap_stats : t -> heap_stats
(** Cheap (O(size classes + vCPUs)) snapshot, safe to sample every epoch. *)

val hugepage_coverage : t -> float
(** Fraction of in-use bytes on intact hugepages (Fig. 17a).  Walks every
    hugepage and span placement — call sparingly. *)

val fragmentation_ratio : heap_stats -> float
(** (external + internal) / live requested — the Fig. 5b metric. *)

val resident_bytes : t -> int
(** [(heap_stats t).resident_bytes] without building the record. *)

val live_fragmentation_ratio : t -> float
(** [fragmentation_ratio (heap_stats t)] without building the record —
    the allocation-free form for per-epoch sampling loops. *)

val telemetry : t -> Telemetry.t
val span_stats : t -> Span_stats.t
val per_cpu_caches : t -> Per_cpu_cache.t
val transfer_cache : t -> Transfer_cache.t
val central_free_list : t -> Central_free_list.t
val pageheap : t -> Pageheap.t
val vm : t -> Wsc_os.Vm.t
val vcpus : t -> Wsc_os.Vcpu.t
val sampler : t -> Sampler.t
val config : t -> Config.t
val topology : t -> Wsc_hw.Topology.t
val clock : t -> Wsc_substrate.Clock.t

val snapshot_spans : t -> unit
(** Manually record one span-occupancy observation pass. *)

(** {2 Warm-state snapshot} *)

val snapshot : t -> string
(** Serialize the entire allocator — every cache tier, the pageheap and
    its hugepage components, the page map, sampler, telemetry, span
    telemetry, the OS layer underneath ({!Wsc_os.Vm}, {!Wsc_os.Vcpu},
    {!Wsc_os.Rseq}), the shared clock with all registered background
    tickers, and every RNG cursor — into one binary blob.  Restoring
    ({!restore}) resumes the allocator bit-identically: continuing a
    restored instance produces exactly the same stats and telemetry as
    never having snapshotted.  The blob uses [Marshal] with closures and
    is therefore only readable by the same binary that wrote it; the
    {!Wsc_persist} library wraps it in a checked, versioned container. *)

val restore : string -> t
(** Inverse of {!snapshot}.  The restored allocator owns a private copy of
    the clock that was shared at snapshot time; callers resuming a whole
    machine should restore at the machine level instead so clock sharing
    is preserved across co-located jobs. *)
