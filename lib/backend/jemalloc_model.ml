(* jemalloc-style allocator model: multiple independent arenas with
   round-robin CPU binding, 25%-spaced size classes, and extent-based page
   allocation with first-fit coalescing.

   Structure (after jemalloc, see SNIPPETS.md snippet 2):
   - four arenas; a vCPU is bound to arena [vcpu mod 4];
   - size classes are quantum-spaced (16 B) up to 128 B, then four classes
     per doubling (25% spacing) up to 16 KiB;
   - small classes are served from slabs (page runs sized per class)
     carved out of per-arena extents; 2 MiB chunks arrive from
     [Wsc_os.Vm.mmap] and are split into 4 KiB-page extents;
   - freed extents coalesce with address-adjacent neighbours of the same
     chunk (first-fit allocation keeps low addresses warm); a chunk whose
     pages coalesce back into one extent is munmapped whole;
   - every vCPU has a tcache (per-class object stack, 16 objects); frees
     land in the *freeing* CPU's tcache and flush back to the owning slab
     in batch, which is how jemalloc crosses arenas.

   Deliberate modeling simplifications: no slab bitmaps (a slot stack plus
   a taken bitmap), no decay-based purging (memory returns only via whole
   chunk munmap or the reclaim cascade), no transfer tier (the
   [transfer_cached_bytes] stat is always 0), and object-reuse locality
   telemetry is not recorded (remote_reuse_fraction reads 0). *)

module Clock = Wsc_substrate.Clock
module Vm = Wsc_os.Vm
module Vcpu = Wsc_os.Vcpu
module Cost = Wsc_hw.Cost_model
module Config = Wsc_tcmalloc.Config
module Telemetry = Wsc_tcmalloc.Telemetry
module Audit = Wsc_tcmalloc.Audit
module Malloc = Wsc_tcmalloc.Malloc

type addr = int

let page_size = 4096
let pages_per_hugepage = (2 * 1024 * 1024) / page_size
let num_arenas = 4
let small_max = 16 * 1024
let tcache_cap = 16
let tcache_fill = 8

(* 16,32,...,128, then four classes per doubling: 160,192,224,256, 320,...
   — the jemalloc spacing where no class is more than 25% above the last. *)
let class_sizes =
  let sizes = ref [] in
  for i = 8 downto 1 do
    sizes := (i * 16) :: !sizes
  done;
  let rev = ref (List.rev !sizes) in
  let base = ref 128 and delta = ref 32 in
  while !base < small_max do
    for i = 1 to 4 do
      let s = !base + (i * !delta) in
      if s <= small_max then rev := s :: !rev
    done;
    base := !base * 2;
    delta := !delta * 2
  done;
  Array.of_list (List.rev !rev)

let class_count = Array.length class_sizes
let class_size cls = class_sizes.(cls)

(* O(1) size -> class via a quantum-granular lookup table. *)
let class_lut =
  let lut = Array.make ((small_max / 16) + 1) 0 in
  let cls = ref 0 in
  for q = 1 to small_max / 16 do
    while class_sizes.(!cls) < q * 16 do
      incr cls
    done;
    lut.(q) <- !cls
  done;
  lut

let class_of_size size = class_lut.((size + 15) / 16)

(* Slab geometry: the smallest page run holding at least four objects. *)
let slab_pages_of cls =
  let size = class_size cls in
  (4 * size + page_size - 1) / page_size

type chunk = {
  c_base : addr;
  c_hugepages : int;
  c_pages : int;
  c_arena : int;
}

type extent = { x_base : addr; x_pages : int; x_chunk : chunk }

type slab_state = Sl_current | Sl_nonfull | Sl_full | Sl_dead

type slab = {
  s_base : addr;
  s_pages : int;
  s_cls : int;
  s_obj : int;
  s_cap : int;
  s_slack : int;
  s_arena : int;
  s_chunk : chunk;
  taken : bool array;
  free_stack : int array;
  mutable n_free : int;
  mutable state : slab_state;
}

type arena = {
  a_index : int;
  mutable extents : extent list;  (* free extents, ascending base *)
  mutable a_chunks : chunk list;
  current : slab option array;  (* per size class *)
  nonfull : slab list array;  (* per size class; dead entries skipped lazily *)
}

type tcache = { stacks : addr array array; counts : int array }

type large = { l_pages : int; l_chunk : chunk; l_arena : int }

type t = {
  config : Config.t;
  topology : Wsc_hw.Topology.t;
  clock : Clock.t;
  vm : Vm.t;
  vcpus : Vcpu.t;
  tel : Telemetry.t;
  arenas : arena array;
  page_map : (addr, slab) Hashtbl.t;  (* page base -> owning slab *)
  larges : (addr, large) Hashtbl.t;
  mutable tcaches : tcache option array;  (* indexed by vCPU id *)
  (* Tier byte counters (audited against full walks). *)
  mutable fe_bytes : int;  (* objects parked in tcaches *)
  mutable cfl_bytes : int;  (* slab free-stack bytes + slab slack *)
  mutable ph_bytes : int;  (* free extent bytes *)
}

let new_arena i =
  {
    a_index = i;
    extents = [];
    a_chunks = [];
    current = Array.make class_count None;
    nonfull = Array.make class_count [];
  }

let create ?(config = Config.baseline) ~topology ~clock () =
  {
    config;
    topology;
    clock;
    vm = Vm.create ();
    vcpus = Vcpu.create ();
    tel = Telemetry.create ();
    arenas = Array.init num_arenas new_arena;
    page_map = Hashtbl.create 1024;
    larges = Hashtbl.create 64;
    tcaches = [||];
    fe_bytes = 0;
    cfl_bytes = 0;
    ph_bytes = 0;
  }

let new_tcache () =
  {
    stacks = Array.init class_count (fun _ -> Array.make tcache_cap 0);
    counts = Array.make class_count 0;
  }

let tcache_for t vcpu =
  let n = Array.length t.tcaches in
  if vcpu >= n then begin
    let size = max (vcpu + 1) (max 4 (2 * n)) in
    t.tcaches <- Array.init size (fun i -> if i < n then t.tcaches.(i) else None)
  end;
  match t.tcaches.(vcpu) with
  | Some tc -> tc
  | None ->
    let tc = new_tcache () in
    t.tcaches.(vcpu) <- Some tc;
    tc

let charge t tier = Telemetry.charge_tier t.tel tier (Cost.tier_hit_ns tier)
let arena_of t vcpu = t.arenas.(vcpu mod num_arenas)

(* Fresh chunk for an arena; its whole page run becomes one free extent.
   (Inserted directly — the coalescing inserter would instantly see a
   fully-free chunk and unmap it again.) *)
let mmap_chunk t arena ~pages =
  let hugepages = max 1 ((pages + pages_per_hugepage - 1) / pages_per_hugepage) in
  let base = Vm.mmap t.vm ~hugepages in
  let chunk =
    { c_base = base; c_hugepages = hugepages; c_pages = hugepages * pages_per_hugepage;
      c_arena = arena.a_index }
  in
  arena.a_chunks <- chunk :: arena.a_chunks;
  let extent = { x_base = base; x_pages = chunk.c_pages; x_chunk = chunk } in
  let rec ins = function
    | [] -> [ extent ]
    | x :: rest when x.x_base < base -> x :: ins rest
    | rest -> extent :: rest
  in
  arena.extents <- ins arena.extents;
  t.ph_bytes <- t.ph_bytes + (chunk.c_pages * page_size);
  charge t Cost.Mmap;
  chunk

(* First-fit extent allocation: lowest-address extent that fits; the run
   is taken from the extent's front. *)
let alloc_extent t arena ~pages =
  let rec take acc = function
    | [] -> None
    | x :: rest when x.x_pages >= pages ->
      let remainder =
        if x.x_pages > pages then
          [ { x_base = x.x_base + (pages * page_size); x_pages = x.x_pages - pages;
              x_chunk = x.x_chunk } ]
        else []
      in
      arena.extents <- List.rev_append acc (remainder @ rest);
      Some (x.x_base, x.x_chunk)
    | x :: rest -> take (x :: acc) rest
  in
  match take [] arena.extents with
  | Some (base, chunk) ->
    t.ph_bytes <- t.ph_bytes - (pages * page_size);
    Some (base, chunk)
  | None -> None

(* Insert a freed run, coalescing with address-adjacent free neighbours of
   the same chunk; a chunk that coalesces back whole is unmapped. *)
let insert_extent t arena ~base ~pages ~chunk =
  t.ph_bytes <- t.ph_bytes + (pages * page_size);
  let extent = { x_base = base; x_pages = pages; x_chunk = chunk } in
  let rec ins = function
    | [] -> [ extent ]
    | x :: rest when x.x_base < extent.x_base -> x :: ins rest
    | rest -> extent :: rest
  in
  let merged =
    let rec merge = function
      | a :: b :: rest
        when a.x_chunk == b.x_chunk && a.x_base + (a.x_pages * page_size) = b.x_base ->
        merge ({ a with x_pages = a.x_pages + b.x_pages } :: rest)
      | a :: rest -> a :: merge rest
      | [] -> []
    in
    merge (ins arena.extents)
  in
  let whole, kept =
    List.partition (fun x -> x.x_pages = x.x_chunk.c_pages) merged
  in
  arena.extents <- kept;
  List.iter
    (fun x ->
      let c = x.x_chunk in
      Vm.munmap t.vm c.c_base ~hugepages:c.c_hugepages;
      t.ph_bytes <- t.ph_bytes - (c.c_pages * page_size);
      arena.a_chunks <- List.filter (fun c' -> c' != c) arena.a_chunks)
    whole

let make_slab t arena cls =
  let obj = class_size cls in
  let pages = slab_pages_of cls in
  let base, chunk, tier =
    match alloc_extent t arena ~pages with
    | Some (base, chunk) -> (base, chunk, Cost.Pageheap)
    | None ->
      let (_ : chunk) = mmap_chunk t arena ~pages in
      (match alloc_extent t arena ~pages with
      | Some (base, chunk) -> (base, chunk, Cost.Mmap)
      | None -> assert false)
  in
  let bytes = pages * page_size in
  let cap = bytes / obj in
  let slab =
    {
      s_base = base;
      s_pages = pages;
      s_cls = cls;
      s_obj = obj;
      s_cap = cap;
      s_slack = bytes - (cap * obj);
      s_arena = arena.a_index;
      s_chunk = chunk;
      taken = Array.make cap false;
      free_stack = Array.init cap (fun i -> cap - 1 - i);
      n_free = cap;
      state = Sl_current;
    }
  in
  for p = 0 to pages - 1 do
    Hashtbl.replace t.page_map (base + (p * page_size)) slab
  done;
  t.cfl_bytes <- t.cfl_bytes + bytes;
  (slab, tier)

let release_slab t slab =
  let arena = t.arenas.(slab.s_arena) in
  slab.state <- Sl_dead;
  for p = 0 to slab.s_pages - 1 do
    Hashtbl.remove t.page_map (slab.s_base + (p * page_size))
  done;
  t.cfl_bytes <- t.cfl_bytes - (slab.s_pages * page_size);
  insert_extent t arena ~base:slab.s_base ~pages:slab.s_pages ~chunk:slab.s_chunk

(* Pop one object out of the slab machinery of [arena] for [cls]:
   current slab -> next nonfull -> fresh slab.  Returns the object address
   and the deepest tier touched. *)
let rec slab_pop t arena cls =
  match arena.current.(cls) with
  | Some slab when slab.n_free > 0 ->
    slab.n_free <- slab.n_free - 1;
    let slot = slab.free_stack.(slab.n_free) in
    slab.taken.(slot) <- true;
    t.cfl_bytes <- t.cfl_bytes - slab.s_obj;
    (slab.s_base + (slot * slab.s_obj), Cost.Central_free_list)
  | current -> (
    (match current with
    | Some slab ->
      slab.state <- Sl_full;
      arena.current.(cls) <- None
    | None -> ());
    let rec next_nonfull () =
      match arena.nonfull.(cls) with
      | [] -> None
      | slab :: rest ->
        arena.nonfull.(cls) <- rest;
        if slab.state = Sl_nonfull && slab.n_free > 0 then Some slab else next_nonfull ()
    in
    match next_nonfull () with
    | Some slab ->
      slab.state <- Sl_current;
      arena.current.(cls) <- Some slab;
      let addr, _ = slab_pop t arena cls in
      (addr, Cost.Central_free_list)
    | None ->
      let slab, tier = make_slab t arena cls in
      arena.current.(cls) <- Some slab;
      let addr, _ = slab_pop t arena cls in
      (addr, tier))

(* Return one object to its slab's free stack (tcache flush path). *)
let push_to_slab t slab slot =
  slab.free_stack.(slab.n_free) <- slot;
  slab.n_free <- slab.n_free + 1;
  t.cfl_bytes <- t.cfl_bytes + slab.s_obj;
  (match slab.state with
  | Sl_full ->
    slab.state <- Sl_nonfull;
    let arena = t.arenas.(slab.s_arena) in
    arena.nonfull.(slab.s_cls) <- slab :: arena.nonfull.(slab.s_cls)
  | Sl_current | Sl_nonfull | Sl_dead -> ());
  if slab.n_free = slab.s_cap && slab.state <> Sl_current then release_slab t slab

let flush_tcache_class t tc cls =
  let stack = tc.stacks.(cls) and obj = class_size cls in
  for i = 0 to tc.counts.(cls) - 1 do
    let addr = stack.(i) in
    let slab = Hashtbl.find t.page_map (addr land lnot (page_size - 1)) in
    push_to_slab t slab ((addr - slab.s_base) / slab.s_obj)
  done;
  let bytes = tc.counts.(cls) * obj in
  t.fe_bytes <- t.fe_bytes - bytes;
  tc.counts.(cls) <- 0;
  bytes

let alloc_small t vcpu cls =
  let tc = tcache_for t vcpu in
  charge t Cost.Per_cpu_cache;
  let count = tc.counts.(cls) in
  if count > 0 then begin
    Telemetry.record_hit t.tel Cost.Per_cpu_cache;
    let addr = tc.stacks.(cls).(count - 1) in
    tc.counts.(cls) <- count - 1;
    t.fe_bytes <- t.fe_bytes - class_size cls;
    (* Re-arm the taken bit: the object leaves the cache for the app. *)
    let slab = Hashtbl.find t.page_map (addr land lnot (page_size - 1)) in
    slab.taken.((addr - slab.s_base) / slab.s_obj) <- true;
    addr
  end
  else begin
    Telemetry.record_front_end_miss t.tel ~vcpu;
    let arena = arena_of t vcpu in
    charge t Cost.Central_free_list;
    let obj = class_size cls in
    let deepest = ref Cost.Central_free_list in
    (* The caller's object first: a mapping failure here unwinds to the
       reclaim-retry loop with nothing popped yet. *)
    let first, first_tier = slab_pop t arena cls in
    if Cost.tier_hit_ns first_tier > Cost.tier_hit_ns !deepest then deepest := first_tier;
    (* Batch refill of the tcache is best-effort: a mapping failure
       mid-refill must not unwind (the objects already popped would leak
       out of both the live and cached accounts), so stop refilling and
       serve the caller from what we have. *)
    (try
       for _ = 2 to tcache_fill do
         let addr, tier = slab_pop t arena cls in
         if Cost.tier_hit_ns tier > Cost.tier_hit_ns !deepest then deepest := tier;
         (* Parked objects are not live with the app. *)
         let slab = Hashtbl.find t.page_map (addr land lnot (page_size - 1)) in
         slab.taken.((addr - slab.s_base) / slab.s_obj) <- false;
         tc.stacks.(cls).(tc.counts.(cls)) <- addr;
         tc.counts.(cls) <- tc.counts.(cls) + 1;
         t.fe_bytes <- t.fe_bytes + obj
       done
     with Vm.Mmap_failed _ -> ());
    (match !deepest with
    | Cost.Pageheap | Cost.Mmap -> charge t Cost.Pageheap
    | _ -> ());
    Telemetry.record_hit t.tel !deepest;
    first
  end

let free_small t vcpu cls addr =
  let slab =
    match Hashtbl.find_opt t.page_map (addr land lnot (page_size - 1)) with
    | Some slab -> slab
    | None -> invalid_arg (Printf.sprintf "Jemalloc_model.free: wild pointer 0x%x" addr)
  in
  if slab.s_cls <> cls then
    invalid_arg (Printf.sprintf "Jemalloc_model.free: size-class mismatch at 0x%x" addr);
  let off = addr - slab.s_base in
  if off mod slab.s_obj <> 0 then
    invalid_arg (Printf.sprintf "Jemalloc_model.free: misaligned interior pointer 0x%x" addr);
  let slot = off / slab.s_obj in
  if not slab.taken.(slot) then
    invalid_arg (Printf.sprintf "Jemalloc_model.free: double free of 0x%x" addr);
  slab.taken.(slot) <- false;
  charge t Cost.Per_cpu_cache;
  let tc = tcache_for t vcpu in
  if tc.counts.(cls) = tcache_cap then begin
    charge t Cost.Central_free_list;
    ignore (flush_tcache_class t tc cls)
  end;
  tc.stacks.(cls).(tc.counts.(cls)) <- addr;
  tc.counts.(cls) <- tc.counts.(cls) + 1;
  t.fe_bytes <- t.fe_bytes + class_size cls

let alloc_large t vcpu ~size =
  let pages = (size + page_size - 1) / page_size in
  let arena = arena_of t vcpu in
  charge t Cost.Pageheap;
  let base, chunk, tier =
    match alloc_extent t arena ~pages with
    | Some (base, chunk) -> (base, chunk, Cost.Pageheap)
    | None ->
      let (_ : chunk) = mmap_chunk t arena ~pages in
      (match alloc_extent t arena ~pages with
      | Some (base, chunk) -> (base, chunk, Cost.Mmap)
      | None -> assert false)
  in
  Telemetry.record_hit t.tel tier;
  Hashtbl.replace t.larges base { l_pages = pages; l_chunk = chunk; l_arena = arena.a_index };
  base

let free_large t addr ~size =
  match Hashtbl.find_opt t.larges addr with
  | None -> invalid_arg (Printf.sprintf "Jemalloc_model.free: wild large pointer 0x%x" addr)
  | Some l ->
    if l.l_pages <> (size + page_size - 1) / page_size then
      invalid_arg (Printf.sprintf "Jemalloc_model.free: large size mismatch at 0x%x" addr);
    charge t Cost.Pageheap;
    Hashtbl.remove t.larges addr;
    insert_extent t t.arenas.(l.l_arena) ~base:addr ~pages:l.l_pages ~chunk:l.l_chunk

let rounded_of_size size =
  if size <= small_max then class_size (class_of_size size)
  else (size + page_size - 1) / page_size * page_size

let malloc_attempt t ~cpu ~size =
  let vcpu = Vcpu.acquire t.vcpus ~phys_cpu:cpu in
  let addr =
    if size <= small_max then alloc_small t vcpu (class_of_size size)
    else alloc_large t vcpu ~size
  in
  Telemetry.record_alloc t.tel ~requested:size ~rounded:(rounded_of_size size);
  addr

(* Reclaim: flush every tcache, release fully-free current slabs, let
   extent coalescing unmap empty chunks. *)
let release_memory t ~target_bytes =
  if target_bytes <= 0 then
    { Malloc.front_end_bytes = 0; transfer_bytes = 0; cfl_span_bytes = 0; os_released_bytes = 0 }
  else begin
    let before = Vm.resident_bytes t.vm in
    let front = ref 0 and slab_bytes = ref 0 in
    Array.iter
      (function
        | None -> ()
        | Some tc ->
          for cls = 0 to class_count - 1 do
            front := !front + flush_tcache_class t tc cls
          done)
      t.tcaches;
    Array.iter
      (fun arena ->
        for cls = 0 to class_count - 1 do
          match arena.current.(cls) with
          | Some slab when slab.n_free = slab.s_cap ->
            arena.current.(cls) <- None;
            slab.state <- Sl_nonfull;
            slab_bytes := !slab_bytes + (slab.s_pages * page_size);
            release_slab t slab
          | Some _ | None -> ()
        done)
      t.arenas;
    let os = before - Vm.resident_bytes t.vm in
    Telemetry.record_reclaim_event t.tel;
    Telemetry.record_reclaim t.tel Telemetry.Front_end !front;
    Telemetry.record_reclaim t.tel Telemetry.Cfl_spans !slab_bytes;
    Telemetry.record_reclaim t.tel Telemetry.Os_release os;
    {
      Malloc.front_end_bytes = !front;
      transfer_bytes = 0;
      cfl_span_bytes = !slab_bytes;
      os_released_bytes = os;
    }
  end

let rec malloc_retry t ~cpu ~size ~attempts =
  try malloc_attempt t ~cpu ~size
  with Vm.Mmap_failed _ ->
    if attempts >= t.config.Config.reclaim_retries then begin
      Telemetry.record_oom t.tel;
      raise Stdlib.Out_of_memory
    end
    else begin
      Telemetry.record_reclaim_retry t.tel;
      let target = max size t.config.Config.reclaim_min_target_bytes in
      ignore (release_memory t ~target_bytes:target);
      malloc_retry t ~cpu ~size ~attempts:(attempts + 1)
    end

let malloc_th t ~thread:_ ~cpu ~size =
  if size <= 0 then invalid_arg "Jemalloc_model.malloc: size must be positive";
  malloc_retry t ~cpu ~size ~attempts:0

let free_th t ~thread:_ ~cpu addr ~size =
  if size <= 0 then invalid_arg "Jemalloc_model.free: size must be positive";
  if size <= small_max then begin
    let vcpu = Vcpu.acquire t.vcpus ~phys_cpu:cpu in
    free_small t vcpu (class_of_size size) addr
  end
  else free_large t addr ~size;
  Telemetry.record_free t.tel ~requested:size ~rounded:(rounded_of_size size)

let cpu_idle ?(flush = false) t ~cpu =
  (match Vcpu.lookup t.vcpus ~phys_cpu:cpu with
  | Some vcpu when flush && vcpu < Array.length t.tcaches -> (
    match t.tcaches.(vcpu) with
    | Some tc ->
      let moved = ref 0 in
      for cls = 0 to class_count - 1 do
        moved := !moved + flush_tcache_class t tc cls
      done;
      if !moved > 0 then Telemetry.record_stranded_reclaim t.tel ~bytes:!moved
    | None -> ())
  | Some _ | None -> ());
  Vcpu.release t.vcpus ~phys_cpu:cpu

let heap_stats t =
  {
    Malloc.live_requested_bytes = Telemetry.live_requested_bytes t.tel;
    live_rounded_bytes = Telemetry.live_rounded_bytes t.tel;
    front_end_cached_bytes = t.fe_bytes;
    transfer_cached_bytes = 0;
    cfl_fragmented_bytes = t.cfl_bytes;
    pageheap_fragmented_bytes = t.ph_bytes;
    internal_fragmentation_bytes = Telemetry.internal_fragmentation_bytes t.tel;
    external_fragmentation_bytes = t.fe_bytes + t.cfl_bytes + t.ph_bytes;
    resident_bytes = Vm.resident_bytes t.vm;
  }

let resident_bytes t = Vm.resident_bytes t.vm

let live_fragmentation_ratio t =
  let live = Telemetry.live_requested_bytes t.tel in
  if live = 0 then 0.0
  else begin
    let internal = Telemetry.internal_fragmentation_bytes t.tel in
    float_of_int (t.fe_bytes + t.cfl_bytes + t.ph_bytes + internal) /. float_of_int live
  end

(* No subrelease in this model either: mapped hugepages stay intact. *)
let hugepage_coverage t =
  let mapped = Vm.mapped_bytes t.vm in
  if mapped = 0 then 1.0 else float_of_int (Vm.huge_backed_bytes t.vm) /. float_of_int mapped

let telemetry t = t.tel
let vm t = t.vm
let vcpus t = t.vcpus
let config t = t.config
let topology t = t.topology
let clock t = t.clock

let audit t =
  let violations = ref [] in
  let add check detail = violations := { Audit.check; detail } :: !violations in
  (* The page map holds one entry per slab page; walk distinct slabs. *)
  let seen = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ slab -> if not (Hashtbl.mem seen slab.s_base) then Hashtbl.replace seen slab.s_base slab)
    t.page_map;
  let cfl = ref 0 and tcache_held = ref 0 and spans_walked = ref 0 in
  Hashtbl.iter
    (fun _ slab ->
      incr spans_walked;
      cfl := !cfl + (slab.n_free * slab.s_obj) + slab.s_slack;
      let taken = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 slab.taken in
      let held = slab.s_cap - taken - slab.n_free in
      if held < 0 then
        add "byte-conservation"
          (Printf.sprintf "slab 0x%x: taken %d + free %d exceeds capacity %d" slab.s_base
             taken slab.n_free slab.s_cap);
      tcache_held := !tcache_held + (held * slab.s_obj))
    seen;
  if !cfl <> t.cfl_bytes then
    add "cfl-accounting" (Printf.sprintf "slab walk %d B <> counter %d B" !cfl t.cfl_bytes);
  let fe = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some tc ->
        for cls = 0 to class_count - 1 do
          fe := !fe + (tc.counts.(cls) * class_size cls)
        done)
    t.tcaches;
  if !fe <> t.fe_bytes then
    add "front-end-accounting"
      (Printf.sprintf "tcache walk %d B <> counter %d B" !fe t.fe_bytes);
  if !fe <> !tcache_held then
    add "torn-operation"
      (Printf.sprintf "tcache holds %d B but slabs miss %d B" !fe !tcache_held);
  let ph = ref 0 in
  Array.iter
    (fun arena -> List.iter (fun x -> ph := !ph + (x.x_pages * page_size)) arena.extents)
    t.arenas;
  if !ph <> t.ph_bytes then
    add "filler-accounting"
      (Printf.sprintf "extent walk %d B <> counter %d B" !ph t.ph_bytes);
  let resident = Vm.resident_bytes t.vm in
  let live_rounded = Telemetry.live_rounded_bytes t.tel in
  let accounted = live_rounded + t.fe_bytes + t.cfl_bytes + t.ph_bytes in
  if accounted <> resident then
    add "byte-conservation"
      (Printf.sprintf "live %d + cached %d <> resident %d" live_rounded
         (accounted - live_rounded) resident);
  (match Vm.hard_limit t.vm with
  | Some limit when resident > limit ->
    add "hard-limit" (Printf.sprintf "resident %d B above hard limit %d B" resident limit)
  | Some _ | None -> ());
  let hugepages = ref 0 in
  Vm.iter_hugepages t.vm (fun ~base:_ ~huge:_ ~subreleased_pages:_ -> incr hugepages);
  {
    Audit.time = Clock.now t.clock;
    spans_walked = !spans_walked;
    hugepages_walked = !hugepages;
    stranded_bytes = 0;
    violations = List.rev !violations;
  }
