(** The allocator backend dispatcher: one value type covering every
    allocator model the simulator can run a process on.

    The rest of the repo (driver, machine, fleet, traces, persistence)
    consumes allocators exclusively through this module.  Selection rides
    in {!Wsc_tcmalloc.Config.t.backend}, so a config value names both the
    allocator and its knobs and flows unchanged through fleet campaigns,
    A/B arms and trace replays.

    The contract every backend satisfies:
    - [malloc]/[free] with physical-CPU context, the same erroneous-free
      diagnostics (wild pointer, size mismatch, misaligned interior
      pointer, double free), and the reclaim-retry-then-[Out_of_memory]
      protocol under {!Wsc_os.Vm} memory pressure;
    - [release_memory] running a graceful reclaim cascade with its
      contributions recorded in {!Wsc_tcmalloc.Telemetry};
    - [cpu_idle] retiring a physical CPU's vCPU id (with optional flush);
    - O(1)-ish {!heap_stats} whose [external_fragmentation_bytes] is the
      sum of the four cache-tier fields and whose byte conservation
      ([resident = live_rounded + the four tiers]) is checked by {!audit};
    - a self-audit returning the shared {!Wsc_tcmalloc.Audit.report};
    - full determinism: no wall clock, no unseeded randomness, so any
      [--jobs N] fleet run is bit-identical to [--jobs 1].

    To add a backend: write a model exposing the surface consumed here
    (see [Rpmalloc_model] for the shape), add a constructor to {!t} and a
    {!Wsc_tcmalloc.Config.backend_kind} case, and extend every dispatch
    below — the compiler's exhaustiveness check walks you through the
    rest.  Then add it to {!Config.all_backends} so the qcheck
    conformance suite and the arena cover it. *)

module Config = Wsc_tcmalloc.Config
module Malloc = Wsc_tcmalloc.Malloc

type kind = Config.backend_kind = Tcmalloc | Rpmalloc | Jemalloc

val kind_name : kind -> string
val kind_of_name : string -> kind option
val all_kinds : kind list

type t =
  | Tc of Malloc.t
  | Rp of Rpmalloc_model.t
  | Je of Jemalloc_model.t

type heap_stats = Malloc.heap_stats
(** All backends report the same stats record; rivals map their tiers onto
    it (rpmalloc: deferred frees in [transfer_cached_bytes], span slack in
    [cfl_fragmented_bytes]; jemalloc: tcaches in [front_end_cached_bytes],
    slab free+slack in [cfl_fragmented_bytes], free extents in
    [pageheap_fragmented_bytes]). *)

val create :
  ?config:Config.t ->
  ?rseq:Wsc_os.Rseq.t ->
  ?span_snapshot_interval_ns:float ->
  topology:Wsc_hw.Topology.t ->
  clock:Wsc_substrate.Clock.t ->
  unit ->
  t
(** Dispatches on [config.backend].  [rseq] models TCMalloc's restartable
    sequences and is rejected ([Invalid_argument]) for the rival backends;
    [span_snapshot_interval_ns] is likewise TCMalloc-only and ignored by
    rivals. *)

val kind : t -> kind

val tc_exn : t -> Malloc.t
(** The underlying TCMalloc instance, for tcmalloc-only introspection
    (span stats, per-CPU caches, pageheap).
    @raise Invalid_argument on a rival backend. *)

val malloc : ?thread:int -> t -> cpu:int -> size:int -> int
val free : ?thread:int -> t -> cpu:int -> int -> size:int -> unit

val malloc_th : t -> thread:int -> cpu:int -> size:int -> int
val free_th : t -> thread:int -> cpu:int -> int -> size:int -> unit
(** Int-sentinel twins ([thread = -1] = no thread id) for per-event hot
    paths; rival backends ignore the thread id (no per-thread mode). *)

val release_memory : t -> target_bytes:int -> Malloc.reclaim_outcome
val cpu_idle : ?flush:bool -> t -> cpu:int -> unit

val heap_stats : t -> heap_stats
val resident_bytes : t -> int
val live_fragmentation_ratio : t -> float
val hugepage_coverage : t -> float

val fragmentation_ratio : heap_stats -> float
(** (external + internal) / live requested — backend-independent. *)

val telemetry : t -> Wsc_tcmalloc.Telemetry.t
val vm : t -> Wsc_os.Vm.t
val vcpus : t -> Wsc_os.Vcpu.t
val config : t -> Config.t
val topology : t -> Wsc_hw.Topology.t
val clock : t -> Wsc_substrate.Clock.t

val rseq : t -> Wsc_os.Rseq.t option
(** The preemption injector, if any (always [None] on rivals). *)

val sampler : t -> Wsc_tcmalloc.Sampler.t option
(** The GWP-style heap sampler (TCMalloc only). *)

val stranded_pending_ids : t -> int list
(** Stranded-cache work list (TCMalloc only; rivals flush inline). *)

val audit : t -> Wsc_tcmalloc.Audit.report
(** Whole-heap invariant walk in the shared report format. *)

val snapshot : t -> string
val restore : kind:kind -> string -> t
(** Warm-state snapshot/restore.  Like {!Malloc.snapshot} the blob is
    binary-private; machine-level checkpoints embed the backend value
    directly instead. *)
