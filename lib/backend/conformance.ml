(* Backend conformance checker: the backend-agnostic slice of
   [Wsc_tcmalloc.Audit] lifted into a scripted harness every backend must
   pass.

   A script is a flat list of operations (allocations with CPU context,
   frees of live objects, CPU churn, memory-pressure reclaims, and
   explicit check points).  The harness keeps a shadow live set and at
   every check point verifies the invariants no allocator may break,
   whatever its internal architecture:

   - conservation against the shadow: telemetry live bytes and
     outstanding-object counts equal the shadow set exactly;
   - no double-allocation: a returned address is never inside a live
     object (exact-address duplicates caught at alloc time, range overlap
     at check points);
   - free-of-live succeeds: no free in a generated script may raise;
   - stats sanity: every heap_stats field is non-negative,
     external fragmentation is exactly the sum of the four tier fields,
     and resident >= live rounded >= live requested;
   - limit compliance: resident never exceeds the configured hard limit;
   - the backend's own audit comes back clean.  *)

module Rng = Wsc_substrate.Rng
module Clock = Wsc_substrate.Clock
module Config = Wsc_tcmalloc.Config
module Malloc = Wsc_tcmalloc.Malloc
module Telemetry = Wsc_tcmalloc.Telemetry
module Audit = Wsc_tcmalloc.Audit

type op =
  | Alloc of { cpu : int; size : int }
  | Free of { cpu : int; index : int }
      (** Free the [index mod live]-th live object (no-op when none). *)
  | Churn of { cpu : int; flush : bool }
  | Pressure of { target_bytes : int }
  | Check

type failure = { step : int; invariant : string; detail : string }

let describe_failure f =
  Printf.sprintf "step %d: %s: %s" f.step f.invariant f.detail

(* The alloc-size mix leans small the way Fig. 7 does, with a tail of
   large and huge objects so span runs / extents get exercised. *)
let gen_size rng =
  match Rng.int rng 100 with
  | n when n < 55 -> Rng.int_in rng 8 256
  | n when n < 80 -> Rng.int_in rng 257 4096
  | n when n < 92 -> Rng.int_in rng 4097 (64 * 1024)
  | n when n < 98 -> Rng.int_in rng (64 * 1024) (512 * 1024)
  | _ -> Rng.int_in rng (512 * 1024) (4 * 1024 * 1024)

let script ~seed ~length =
  let rng = Rng.create (0x5eed + (seed * 7919)) in
  let ops = ref [] in
  for step = 1 to length do
    let op =
      match Rng.int rng 100 with
      | n when n < 48 -> Alloc { cpu = Rng.int rng 16; size = gen_size rng }
      | n when n < 88 -> Free { cpu = Rng.int rng 16; index = Rng.bits rng land 0xffff }
      | n when n < 93 -> Churn { cpu = Rng.int rng 16; flush = Rng.bool rng }
      | n when n < 96 -> Pressure { target_bytes = (1 + Rng.int rng 32) * 1024 * 1024 }
      | _ -> Check
    in
    ops := op :: !ops;
    if step = length then ops := Check :: !ops
  done;
  List.rev !ops

type live = { mutable addrs : int array; mutable sizes : int array; mutable n : int }

let live_push l addr size =
  if l.n = Array.length l.addrs then begin
    let cap = max 64 (2 * l.n) in
    let addrs = Array.make cap 0 and sizes = Array.make cap 0 in
    Array.blit l.addrs 0 addrs 0 l.n;
    Array.blit l.sizes 0 sizes 0 l.n;
    l.addrs <- addrs;
    l.sizes <- sizes
  end;
  l.addrs.(l.n) <- addr;
  l.sizes.(l.n) <- size;
  l.n <- l.n + 1

(* Swap-remove keeps frees O(1) and the index->object mapping a pure
   function of the op sequence. *)
let live_take l index =
  let addr = l.addrs.(index) and size = l.sizes.(index) in
  l.n <- l.n - 1;
  l.addrs.(index) <- l.addrs.(l.n);
  l.sizes.(index) <- l.sizes.(l.n);
  (addr, size)

let check_invariants backend l ~step =
  let failures = ref [] in
  let fail invariant detail = failures := { step; invariant; detail } :: !failures in
  let tel = Backend.telemetry backend in
  let shadow_bytes = ref 0 in
  for i = 0 to l.n - 1 do
    shadow_bytes := !shadow_bytes + l.sizes.(i)
  done;
  let live_req = Telemetry.live_requested_bytes tel in
  if live_req <> !shadow_bytes then
    fail "shadow-conservation"
      (Printf.sprintf "telemetry live %d B <> shadow %d B" live_req !shadow_bytes);
  let outstanding = Telemetry.alloc_count tel - Telemetry.free_count tel in
  if outstanding <> l.n then
    fail "shadow-conservation"
      (Printf.sprintf "outstanding %d objects <> shadow %d" outstanding l.n);
  (* Range disjointness over the live set. *)
  let order = Array.init l.n (fun i -> i) in
  Array.sort (fun a b -> compare l.addrs.(a) l.addrs.(b)) order;
  for k = 0 to l.n - 2 do
    let a = order.(k) and b = order.(k + 1) in
    if l.addrs.(a) + l.sizes.(a) > l.addrs.(b) then
      fail "double-allocation"
        (Printf.sprintf "live ranges overlap: 0x%x+%d and 0x%x" l.addrs.(a) l.sizes.(a)
           l.addrs.(b))
  done;
  let s = Backend.heap_stats backend in
  let tiers =
    s.Malloc.front_end_cached_bytes + s.Malloc.transfer_cached_bytes
    + s.Malloc.cfl_fragmented_bytes + s.Malloc.pageheap_fragmented_bytes
  in
  if s.Malloc.external_fragmentation_bytes <> tiers then
    fail "stats-consistency"
      (Printf.sprintf "external fragmentation %d B <> tier sum %d B"
         s.Malloc.external_fragmentation_bytes tiers);
  List.iter
    (fun (name, v) ->
      if v < 0 then fail "stats-consistency" (Printf.sprintf "%s is negative: %d" name v))
    [
      ("front_end_cached_bytes", s.Malloc.front_end_cached_bytes);
      ("transfer_cached_bytes", s.Malloc.transfer_cached_bytes);
      ("cfl_fragmented_bytes", s.Malloc.cfl_fragmented_bytes);
      ("pageheap_fragmented_bytes", s.Malloc.pageheap_fragmented_bytes);
      ("live_requested_bytes", s.Malloc.live_requested_bytes);
      ("resident_bytes", s.Malloc.resident_bytes);
    ];
  if s.Malloc.live_rounded_bytes < s.Malloc.live_requested_bytes then
    fail "stats-consistency"
      (Printf.sprintf "live rounded %d B below live requested %d B"
         s.Malloc.live_rounded_bytes s.Malloc.live_requested_bytes);
  if s.Malloc.resident_bytes < s.Malloc.live_rounded_bytes then
    fail "byte-conservation"
      (Printf.sprintf "resident %d B below live rounded %d B" s.Malloc.resident_bytes
         s.Malloc.live_rounded_bytes);
  (match Wsc_os.Vm.hard_limit (Backend.vm backend) with
  | Some limit when s.Malloc.resident_bytes > limit ->
    fail "limit-compliance"
      (Printf.sprintf "resident %d B above hard limit %d B" s.Malloc.resident_bytes limit)
  | Some _ | None -> ());
  let report = Backend.audit backend in
  if not (Audit.is_clean report) then
    List.iter (fun v -> fail ("audit:" ^ v.Audit.check) v.Audit.detail)
      report.Audit.violations;
  List.rev !failures

type result = {
  ops_run : int;
  allocs : int;
  frees : int;
  checks : int;
  failures : failure list;
}

let passed r = r.failures = []

let run ?(config = Config.baseline) ?hard_limit_bytes ?(topology = Wsc_hw.Topology.default)
    ~script:ops () =
  let clock = Clock.create () in
  let backend = Backend.create ~config ~topology ~clock () in
  (match hard_limit_bytes with
  | Some b ->
    Wsc_os.Vm.set_hard_limit (Backend.vm backend) (Some b);
    Wsc_os.Vm.set_soft_limit (Backend.vm backend) (Some (b * 85 / 100))
  | None -> ());
  let l = { addrs = Array.make 64 0; sizes = Array.make 64 0; n = 0 } in
  let seen = Hashtbl.create 256 in
  let allocs = ref 0 and frees = ref 0 and checks = ref 0 and step = ref 0 in
  let failures = ref [] in
  let fail invariant detail =
    failures := { step = !step; invariant; detail } :: !failures
  in
  List.iter
    (fun op ->
      incr step;
      match op with
      | Alloc { cpu; size } -> (
        match Backend.malloc_th backend ~thread:(-1) ~cpu ~size with
        | addr ->
          incr allocs;
          if Hashtbl.mem seen addr then
            fail "double-allocation" (Printf.sprintf "0x%x returned while live" addr)
          else begin
            Hashtbl.replace seen addr ();
            live_push l addr size
          end
        | exception Stdlib.Out_of_memory ->
          (* A legal outcome under a hard limit; the shadow set is simply
             not extended. *)
          ())
      | Free { cpu; index } ->
        if l.n > 0 then begin
          let addr, size = live_take l (index mod l.n) in
          Hashtbl.remove seen addr;
          (match Backend.free_th backend ~thread:(-1) ~cpu addr ~size with
          | () -> incr frees
          | exception exn ->
            fail "free-of-live"
              (Printf.sprintf "free of live 0x%x (%d B) raised %s" addr size
                 (Printexc.to_string exn)))
        end
      | Churn { cpu; flush } -> Backend.cpu_idle ~flush backend ~cpu
      | Pressure { target_bytes } ->
        ignore (Backend.release_memory backend ~target_bytes)
      | Check ->
        incr checks;
        failures := List.rev_append (check_invariants backend l ~step:!step) !failures)
    ops;
  {
    ops_run = !step;
    allocs = !allocs;
    frees = !frees;
    checks = !checks;
    failures = List.rev !failures;
  }
