(* rpmalloc-style allocator model: single-span thread ownership, deferred
   cross-CPU free lists, and span caches instead of a central free list.

   Structure (after rpmalloc, see SNIPPETS.md snippet 2):
   - memory arrives as 2 MiB chunks ([Wsc_os.Vm.mmap ~hugepages:1]) carved
     into 32 spans of 64 KiB;
   - each vCPU owns a heap with one *active* span per size class plus a
     list of partial spans; allocation is a bump/pop on the active span;
   - a free on the owning vCPU pushes straight onto the span's free stack;
     a cross-CPU free pushes onto the span's *deferred* list, which the
     owner adopts lazily on its next miss (the lock-free MPSC list in real
     rpmalloc);
   - fully-free spans go to a per-heap span cache, overflowing to a global
     span cache, overflowing back to their chunk; fully-free chunks are
     munmapped whole (rpmalloc never subreleases partial chunks, so
     hugepage coverage stays 1.0 by construction);
   - size classes are 16-byte granular up to 2 KiB and 512-byte granular
     up to 32 KiB; 32 KiB..2 MiB become contiguous span runs (first fit in
     a chunk's span mask); larger requests map dedicated hugepage runs.

   Deliberate modeling simplifications: no thread/heap orphaning protocol
   (a reused vCPU id adopts the previous heap, which is what rpmalloc's
   heap cache achieves), deferred adoption also triggers when a deferred
   free completes a span (bounds stranding deterministically), and there
   are no background threads — everything runs inline and deterministic. *)

module Clock = Wsc_substrate.Clock
module Vm = Wsc_os.Vm
module Vcpu = Wsc_os.Vcpu
module Cost = Wsc_hw.Cost_model
module Config = Wsc_tcmalloc.Config
module Telemetry = Wsc_tcmalloc.Telemetry
module Audit = Wsc_tcmalloc.Audit
module Malloc = Wsc_tcmalloc.Malloc

type addr = int

let span_size = 64 * 1024
let spans_per_chunk = 32
let chunk_bytes = span_size * spans_per_chunk
let full_mask = (1 lsl spans_per_chunk) - 1
let small_max = 2048
let medium_max = 32 * 1024
let small_classes = small_max / 16
let heap_cache_cap = 4
let global_cache_cap = 64

let class_of_size size =
  if size <= small_max then ((size + 15) / 16) - 1
  else small_classes + ((size - small_max + 511) / 512) - 1

let class_size cls =
  if cls < small_classes then (cls + 1) * 16
  else small_max + ((cls - small_classes + 1) * 512)

let class_count = class_of_size medium_max + 1

type chunk = {
  c_base : addr;
  mutable c_free_mask : int;  (* bit i set = span slot i is free in the chunk *)
  mutable c_free_spans : int;
}

type span_state = Sp_active | Sp_partial | Sp_full | Sp_dead

type span = {
  sp_base : addr;
  sp_chunk : chunk;
  sp_cls : int;
  sp_obj : int;
  sp_cap : int;
  sp_slack : int;  (* span tail bytes no object fits in *)
  taken : bool array;  (* slot is live with the application *)
  free_stack : int array;
  mutable n_free : int;
  mutable deferred : addr list;  (* cross-CPU frees awaiting owner adoption *)
  mutable n_deferred : int;
  mutable owner : int;  (* owning vCPU id *)
  mutable state : span_state;
  mutable recycled : int;  (* free-stack entries that came from local frees *)
}

type heap = {
  h_active : span option array;  (* per size class *)
  h_partial : span list array;  (* per size class; dead entries skipped lazily *)
  mutable h_cache : (addr * chunk) list;  (* free spans kept warm per heap *)
  mutable h_cache_len : int;
}

type large_run = { lr_spans : int; lr_chunk : chunk; lr_index : int }

type t = {
  config : Config.t;
  topology : Wsc_hw.Topology.t;
  clock : Clock.t;
  vm : Vm.t;
  vcpus : Vcpu.t;
  tel : Telemetry.t;
  spans : (addr, span) Hashtbl.t;  (* span base -> live class span *)
  larges : (addr, large_run) Hashtbl.t;  (* span-run base -> run *)
  huges : (addr, int) Hashtbl.t;  (* dedicated-map base -> hugepages *)
  mutable chunks : chunk list;  (* ascending base order *)
  mutable heaps : heap array;  (* indexed by vCPU id *)
  mutable g_cache : (addr * chunk) list;
  mutable g_cache_len : int;
  (* Tier byte counters, kept so heap_stats is O(1) and the audit can
     cross-check them against a full walk. *)
  mutable fe_bytes : int;  (* free objects on span free stacks *)
  mutable def_bytes : int;  (* deferred cross-CPU freed bytes *)
  mutable slack_bytes : int;  (* carve slack of live class spans *)
  mutable ph_bytes : int;  (* free span bytes: caches + chunk free slots *)
}

let create ?(config = Config.baseline) ~topology ~clock () =
  let vm = Vm.create () in
  {
    config;
    topology;
    clock;
    vm;
    vcpus = Vcpu.create ();
    tel = Telemetry.create ();
    spans = Hashtbl.create 256;
    larges = Hashtbl.create 64;
    huges = Hashtbl.create 16;
    chunks = [];
    heaps = [||];
    g_cache = [];
    g_cache_len = 0;
    fe_bytes = 0;
    def_bytes = 0;
    slack_bytes = 0;
    ph_bytes = 0;
  }

let new_heap () =
  {
    h_active = Array.make class_count None;
    h_partial = Array.make class_count [];
    h_cache = [];
    h_cache_len = 0;
  }

let heap_for t vcpu =
  let n = Array.length t.heaps in
  if vcpu >= n then begin
    let size = max (vcpu + 1) (max 4 (2 * n)) in
    t.heaps <- Array.init size (fun i -> if i < n then t.heaps.(i) else new_heap ())
  end;
  t.heaps.(vcpu)

let charge t tier = Telemetry.charge_tier t.tel tier (Cost.tier_hit_ns tier)

(* Chunks stay sorted by base so first-fit scans are deterministic even if
   the VM ever hands addresses back out of order. *)
let insert_chunk t chunk =
  let rec ins = function
    | [] -> [ chunk ]
    | c :: rest when c.c_base < chunk.c_base -> c :: ins rest
    | rest -> chunk :: rest
  in
  t.chunks <- ins t.chunks

let mmap_chunk t =
  let base = Vm.mmap t.vm ~hugepages:1 in
  let chunk = { c_base = base; c_free_mask = full_mask; c_free_spans = spans_per_chunk } in
  insert_chunk t chunk;
  t.ph_bytes <- t.ph_bytes + chunk_bytes;
  charge t Cost.Mmap;
  chunk

let munmap_chunk t chunk =
  Vm.munmap t.vm chunk.c_base ~hugepages:1;
  t.ph_bytes <- t.ph_bytes - chunk_bytes;
  t.chunks <- List.filter (fun c -> c != chunk) t.chunks

(* Return one free span slot to its chunk's mask; unmap the chunk when it
   becomes entirely free.  Spans held in caches keep their slot marked used
   so a cached span can never be unmapped underneath the cache. *)
let return_span_to_chunk t base chunk =
  let index = (base - chunk.c_base) / span_size in
  chunk.c_free_mask <- chunk.c_free_mask lor (1 lsl index);
  chunk.c_free_spans <- chunk.c_free_spans + 1;
  if chunk.c_free_spans = spans_per_chunk then munmap_chunk t chunk

let pop_chunk_span t =
  match List.find_opt (fun c -> c.c_free_spans > 0) t.chunks with
  | None -> None
  | Some chunk ->
    let rec lowest i = if chunk.c_free_mask land (1 lsl i) <> 0 then i else lowest (i + 1) in
    let index = lowest 0 in
    chunk.c_free_mask <- chunk.c_free_mask land lnot (1 lsl index);
    chunk.c_free_spans <- chunk.c_free_spans - 1;
    Some (chunk.c_base + (index * span_size), chunk)

(* Acquire one free 64 KiB span: heap cache -> global cache -> chunk slot
   -> fresh chunk.  Returns the span base, its chunk, and the deepest tier
   touched (for telemetry). *)
let acquire_span t heap =
  match heap.h_cache with
  | (base, chunk) :: rest ->
    heap.h_cache <- rest;
    heap.h_cache_len <- heap.h_cache_len - 1;
    (base, chunk, Cost.Pageheap)
  | [] -> (
    match t.g_cache with
    | (base, chunk) :: rest ->
      t.g_cache <- rest;
      t.g_cache_len <- t.g_cache_len - 1;
      (base, chunk, Cost.Pageheap)
    | [] -> (
      match pop_chunk_span t with
      | Some (base, chunk) -> (base, chunk, Cost.Pageheap)
      | None ->
        let (_ : chunk) = mmap_chunk t in
        (match pop_chunk_span t with
        | Some (base, c) -> (base, c, Cost.Mmap)
        | None -> assert false)))

let make_span t ~cls ~owner (base, chunk) =
  let obj = class_size cls in
  let cap = span_size / obj in
  let slack = span_size - (cap * obj) in
  let free_stack = Array.init cap (fun i -> cap - 1 - i) in
  let span =
    {
      sp_base = base;
      sp_chunk = chunk;
      sp_cls = cls;
      sp_obj = obj;
      sp_cap = cap;
      sp_slack = slack;
      taken = Array.make cap false;
      free_stack;
      n_free = cap;
      deferred = [];
      n_deferred = 0;
      owner;
      state = Sp_active;
      recycled = 0;
    }
  in
  Hashtbl.replace t.spans base span;
  t.ph_bytes <- t.ph_bytes - span_size;
  t.fe_bytes <- t.fe_bytes + (cap * obj);
  t.slack_bytes <- t.slack_bytes + slack;
  span

(* A fully-free span leaves the class machinery: heap cache, then global
   cache, then back to its chunk. *)
let release_span t span =
  Hashtbl.remove t.spans span.sp_base;
  t.fe_bytes <- t.fe_bytes - (span.sp_cap * span.sp_obj);
  t.slack_bytes <- t.slack_bytes - span.sp_slack;
  t.ph_bytes <- t.ph_bytes + span_size;
  span.state <- Sp_dead;
  let heap = heap_for t span.owner in
  if heap.h_cache_len < heap_cache_cap then begin
    heap.h_cache <- (span.sp_base, span.sp_chunk) :: heap.h_cache;
    heap.h_cache_len <- heap.h_cache_len + 1
  end
  else if t.g_cache_len < global_cache_cap then begin
    t.g_cache <- (span.sp_base, span.sp_chunk) :: t.g_cache;
    t.g_cache_len <- t.g_cache_len + 1
  end
  else return_span_to_chunk t span.sp_base span.sp_chunk

(* The owner adopts every pending cross-CPU free at once (rpmalloc's
   deferred-list swap). *)
let drain_deferred t span =
  if span.n_deferred > 0 then begin
    List.iter
      (fun a ->
        let slot = (a - span.sp_base) / span.sp_obj in
        span.free_stack.(span.n_free) <- slot;
        span.n_free <- span.n_free + 1;
        Telemetry.record_object_reuse t.tel ~remote:true)
      span.deferred;
    let bytes = span.n_deferred * span.sp_obj in
    t.def_bytes <- t.def_bytes - bytes;
    t.fe_bytes <- t.fe_bytes + bytes;
    span.deferred <- [];
    span.n_deferred <- 0
  end

let maybe_release t span =
  if span.state <> Sp_active && span.state <> Sp_dead
     && span.n_free + span.n_deferred = span.sp_cap
  then begin
    drain_deferred t span;
    release_span t span
  end

let pop_object t span =
  span.n_free <- span.n_free - 1;
  let slot = span.free_stack.(span.n_free) in
  span.taken.(slot) <- true;
  t.fe_bytes <- t.fe_bytes - span.sp_obj;
  if span.recycled > 0 then begin
    span.recycled <- span.recycled - 1;
    Telemetry.record_object_reuse t.tel ~remote:false
  end;
  span.sp_base + (slot * span.sp_obj)

(* Promote the next usable partial span, skipping entries invalidated by
   release or re-promotion. *)
let rec pop_partial t heap cls =
  match heap.h_partial.(cls) with
  | [] -> None
  | span :: rest ->
    heap.h_partial.(cls) <- rest;
    if span.state = Sp_partial then begin
      drain_deferred t span;
      if span.n_free > 0 then Some span else (span.state <- Sp_full; pop_partial t heap cls)
    end
    else pop_partial t heap cls

let alloc_small t vcpu cls =
  let heap = heap_for t vcpu in
  charge t Cost.Per_cpu_cache;
  match heap.h_active.(cls) with
  | Some span when span.n_free > 0 ->
    Telemetry.record_hit t.tel Cost.Per_cpu_cache;
    pop_object t span
  | Some span when span.n_deferred > 0 ->
    charge t Cost.Transfer_cache;
    Telemetry.record_hit t.tel Cost.Transfer_cache;
    drain_deferred t span;
    pop_object t span
  | active ->
    Telemetry.record_front_end_miss t.tel ~vcpu;
    (match active with
    | Some span ->
      span.state <- Sp_full;
      heap.h_active.(cls) <- None
    | None -> ());
    (match pop_partial t heap cls with
    | Some span ->
      charge t Cost.Central_free_list;
      Telemetry.record_hit t.tel Cost.Central_free_list;
      span.state <- Sp_active;
      span.owner <- vcpu;
      heap.h_active.(cls) <- Some span;
      pop_object t span
    | None ->
      let base, chunk, tier = acquire_span t heap in
      charge t Cost.Pageheap;
      Telemetry.record_hit t.tel tier;
      let span = make_span t ~cls ~owner:vcpu (base, chunk) in
      heap.h_active.(cls) <- Some span;
      pop_object t span)

let free_small t span vcpu addr =
  let off = addr - span.sp_base in
  if off mod span.sp_obj <> 0 then
    invalid_arg
      (Printf.sprintf "Rpmalloc_model.free: misaligned interior pointer 0x%x" addr);
  let slot = off / span.sp_obj in
  if not span.taken.(slot) then
    invalid_arg (Printf.sprintf "Rpmalloc_model.free: double free of 0x%x" addr);
  span.taken.(slot) <- false;
  if span.owner = vcpu then begin
    charge t Cost.Per_cpu_cache;
    span.free_stack.(span.n_free) <- slot;
    span.n_free <- span.n_free + 1;
    t.fe_bytes <- t.fe_bytes + span.sp_obj;
    if span.recycled < span.sp_cap then span.recycled <- span.recycled + 1;
    if span.state = Sp_full then begin
      span.state <- Sp_partial;
      let heap = heap_for t span.owner in
      heap.h_partial.(span.sp_cls) <- span :: heap.h_partial.(span.sp_cls)
    end;
    maybe_release t span
  end
  else begin
    (* Cross-CPU free: enqueue on the span's deferred list for the owner. *)
    charge t Cost.Transfer_cache;
    span.deferred <- addr :: span.deferred;
    span.n_deferred <- span.n_deferred + 1;
    t.def_bytes <- t.def_bytes + span.sp_obj;
    maybe_release t span
  end

(* Span runs: 32 KiB .. 2 MiB as k contiguous spans, first fit over the
   chunk span masks. *)
let run_mask k index = ((1 lsl k) - 1) lsl index

let find_run t k =
  let fit chunk =
    if chunk.c_free_spans < k then None
    else begin
      let rec scan i =
        if i > spans_per_chunk - k then None
        else if chunk.c_free_mask land run_mask k i = run_mask k i then Some i
        else scan (i + 1)
      in
      scan 0
    end
  in
  let rec over = function
    | [] -> None
    | chunk :: rest -> (
      match fit chunk with Some i -> Some (chunk, i) | None -> over rest)
  in
  over t.chunks

let alloc_large t ~size =
  let k = (size + span_size - 1) / span_size in
  let chunk, index, tier =
    match find_run t k with
    | Some (chunk, index) -> (chunk, index, Cost.Pageheap)
    | None ->
      let chunk = mmap_chunk t in
      (chunk, 0, Cost.Mmap)
  in
  charge t Cost.Pageheap;
  Telemetry.record_hit t.tel tier;
  chunk.c_free_mask <- chunk.c_free_mask land lnot (run_mask k index);
  chunk.c_free_spans <- chunk.c_free_spans - k;
  t.ph_bytes <- t.ph_bytes - (k * span_size);
  let addr = chunk.c_base + (index * span_size) in
  Hashtbl.replace t.larges addr { lr_spans = k; lr_chunk = chunk; lr_index = index };
  addr

let free_large t addr run =
  charge t Cost.Pageheap;
  Hashtbl.remove t.larges addr;
  let chunk = run.lr_chunk in
  chunk.c_free_mask <- chunk.c_free_mask lor run_mask run.lr_spans run.lr_index;
  chunk.c_free_spans <- chunk.c_free_spans + run.lr_spans;
  t.ph_bytes <- t.ph_bytes + (run.lr_spans * span_size);
  if chunk.c_free_spans = spans_per_chunk then munmap_chunk t chunk

(* Dedicated mappings for > 2 MiB. *)
let alloc_huge t ~size =
  let hugepages = (size + chunk_bytes - 1) / chunk_bytes in
  let addr = Vm.mmap t.vm ~hugepages in
  charge t Cost.Mmap;
  Telemetry.record_hit t.tel Cost.Mmap;
  Hashtbl.replace t.huges addr hugepages;
  addr

let rounded_of_size size =
  if size <= medium_max then class_size (class_of_size size)
  else if size <= chunk_bytes then (size + span_size - 1) / span_size * span_size
  else (size + chunk_bytes - 1) / chunk_bytes * chunk_bytes

let malloc_attempt t ~cpu ~size =
  let vcpu = Vcpu.acquire t.vcpus ~phys_cpu:cpu in
  let addr =
    if size <= medium_max then alloc_small t vcpu (class_of_size size)
    else if size <= chunk_bytes then alloc_large t ~size
    else alloc_huge t ~size
  in
  Telemetry.record_alloc t.tel ~requested:size ~rounded:(rounded_of_size size);
  addr

(* Reclaim sweep: adopt every deferred free, release every fully-free
   span (actives included), flush the span caches back to chunks, unmap
   empty chunks.  Span bases are sorted so the sweep order never depends
   on hash-table internals. *)
let release_memory t ~target_bytes =
  if target_bytes <= 0 then
    { Malloc.front_end_bytes = 0; transfer_bytes = 0; cfl_span_bytes = 0; os_released_bytes = 0 }
  else begin
    let before = Vm.resident_bytes t.vm in
    let transfer = ref 0 and span_bytes = ref 0 in
    let bases = Hashtbl.fold (fun base _ acc -> base :: acc) t.spans [] in
    List.iter
      (fun base ->
        match Hashtbl.find_opt t.spans base with
        | None -> ()
        | Some span ->
          transfer := !transfer + (span.n_deferred * span.sp_obj);
          drain_deferred t span;
          if span.n_free = span.sp_cap then begin
            if span.state = Sp_active then begin
              let heap = heap_for t span.owner in
              heap.h_active.(span.sp_cls) <- None
            end;
            span.state <- Sp_partial;
            span_bytes := !span_bytes + span_size;
            release_span t span
          end)
      (List.sort compare bases);
    Array.iter
      (fun heap ->
        List.iter (fun (base, chunk) -> return_span_to_chunk t base chunk) heap.h_cache;
        heap.h_cache <- [];
        heap.h_cache_len <- 0)
      t.heaps;
    List.iter (fun (base, chunk) -> return_span_to_chunk t base chunk) t.g_cache;
    t.g_cache <- [];
    t.g_cache_len <- 0;
    let os = before - Vm.resident_bytes t.vm in
    Telemetry.record_reclaim_event t.tel;
    Telemetry.record_reclaim t.tel Telemetry.Transfer !transfer;
    Telemetry.record_reclaim t.tel Telemetry.Cfl_spans !span_bytes;
    Telemetry.record_reclaim t.tel Telemetry.Os_release os;
    {
      Malloc.front_end_bytes = 0;
      transfer_bytes = !transfer;
      cfl_span_bytes = !span_bytes;
      os_released_bytes = os;
    }
  end

let rec malloc_retry t ~cpu ~size ~attempts =
  try malloc_attempt t ~cpu ~size
  with Vm.Mmap_failed _ ->
    if attempts >= t.config.Config.reclaim_retries then begin
      Telemetry.record_oom t.tel;
      raise Stdlib.Out_of_memory
    end
    else begin
      Telemetry.record_reclaim_retry t.tel;
      let target = max size t.config.Config.reclaim_min_target_bytes in
      ignore (release_memory t ~target_bytes:target);
      malloc_retry t ~cpu ~size ~attempts:(attempts + 1)
    end

let malloc_th t ~thread:_ ~cpu ~size =
  if size <= 0 then invalid_arg "Rpmalloc_model.malloc: size must be positive";
  malloc_retry t ~cpu ~size ~attempts:0

let free_th t ~thread:_ ~cpu addr ~size =
  if size <= 0 then invalid_arg "Rpmalloc_model.free: size must be positive";
  if size <= medium_max then begin
    let base = addr land lnot (span_size - 1) in
    match Hashtbl.find_opt t.spans base with
    | Some span ->
      if span.sp_cls <> class_of_size size then
        invalid_arg
          (Printf.sprintf "Rpmalloc_model.free: size-class mismatch at 0x%x" addr);
      let vcpu = Vcpu.acquire t.vcpus ~phys_cpu:cpu in
      free_small t span vcpu addr
    | None ->
      invalid_arg (Printf.sprintf "Rpmalloc_model.free: wild pointer 0x%x" addr)
  end
  else if size <= chunk_bytes then begin
    match Hashtbl.find_opt t.larges addr with
    | Some run ->
      if run.lr_spans <> (size + span_size - 1) / span_size then
        invalid_arg (Printf.sprintf "Rpmalloc_model.free: span-run size mismatch at 0x%x" addr);
      free_large t addr run
    | None -> invalid_arg (Printf.sprintf "Rpmalloc_model.free: wild large pointer 0x%x" addr)
  end
  else begin
    match Hashtbl.find_opt t.huges addr with
    | Some hugepages ->
      if hugepages <> (size + chunk_bytes - 1) / chunk_bytes then
        invalid_arg (Printf.sprintf "Rpmalloc_model.free: huge size mismatch at 0x%x" addr);
      charge t Cost.Mmap;
      Hashtbl.remove t.huges addr;
      Vm.munmap t.vm addr ~hugepages
    | None -> invalid_arg (Printf.sprintf "Rpmalloc_model.free: wild huge pointer 0x%x" addr)
  end;
  Telemetry.record_free t.tel ~requested:size ~rounded:(rounded_of_size size)

let cpu_idle ?(flush = false) t ~cpu =
  (match Vcpu.lookup t.vcpus ~phys_cpu:cpu with
  | None -> ()
  | Some vcpu when flush && vcpu < Array.length t.heaps ->
    let heap = t.heaps.(vcpu) in
    let moved = ref 0 in
    for cls = 0 to class_count - 1 do
      (match heap.h_active.(cls) with
      | Some span ->
        drain_deferred t span;
        if span.n_free = span.sp_cap then begin
          heap.h_active.(cls) <- None;
          span.state <- Sp_partial;
          moved := !moved + span_size;
          release_span t span
        end
      | None -> ());
      List.iter
        (fun span ->
          if span.state = Sp_partial then begin
            drain_deferred t span;
            if span.n_free = span.sp_cap then begin
              moved := !moved + span_size;
              release_span t span
            end
          end)
        heap.h_partial.(cls)
    done;
    List.iter
      (fun (base, chunk) ->
        moved := !moved + span_size;
        return_span_to_chunk t base chunk)
      heap.h_cache;
    heap.h_cache <- [];
    heap.h_cache_len <- 0;
    if !moved > 0 then Telemetry.record_stranded_reclaim t.tel ~bytes:!moved
  | Some _ -> ());
  Vcpu.release t.vcpus ~phys_cpu:cpu

let heap_stats t =
  let live_requested = Telemetry.live_requested_bytes t.tel in
  let live_rounded = Telemetry.live_rounded_bytes t.tel in
  let external_frag = t.fe_bytes + t.def_bytes + t.slack_bytes + t.ph_bytes in
  {
    Malloc.live_requested_bytes = live_requested;
    live_rounded_bytes = live_rounded;
    front_end_cached_bytes = t.fe_bytes;
    transfer_cached_bytes = t.def_bytes;
    cfl_fragmented_bytes = t.slack_bytes;
    pageheap_fragmented_bytes = t.ph_bytes;
    internal_fragmentation_bytes = Telemetry.internal_fragmentation_bytes t.tel;
    external_fragmentation_bytes = external_frag;
    resident_bytes = Vm.resident_bytes t.vm;
  }

let resident_bytes t = Vm.resident_bytes t.vm

let live_fragmentation_ratio t =
  let live = Telemetry.live_requested_bytes t.tel in
  if live = 0 then 0.0
  else begin
    let internal = Telemetry.internal_fragmentation_bytes t.tel in
    let external_frag = t.fe_bytes + t.def_bytes + t.slack_bytes + t.ph_bytes in
    float_of_int (external_frag + internal) /. float_of_int live
  end

(* rpmalloc never subreleases inside a chunk, so every mapped hugepage
   stays intact: coverage is 1.0 whenever anything is mapped. *)
let hugepage_coverage t =
  let mapped = Vm.mapped_bytes t.vm in
  if mapped = 0 then 1.0 else float_of_int (Vm.huge_backed_bytes t.vm) /. float_of_int mapped

let telemetry t = t.tel
let vm t = t.vm
let vcpus t = t.vcpus
let config t = t.config
let topology t = t.topology
let clock t = t.clock

let audit t =
  let violations = ref [] in
  let add check detail = violations := { Audit.check; detail } :: !violations in
  let fe = ref 0 and def = ref 0 and slack = ref 0 and spans_walked = ref 0 in
  Hashtbl.iter
    (fun _ span ->
      incr spans_walked;
      fe := !fe + (span.n_free * span.sp_obj);
      def := !def + (span.n_deferred * span.sp_obj);
      slack := !slack + span.sp_slack;
      let taken = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 span.taken in
      if taken + span.n_free + span.n_deferred <> span.sp_cap then
        add "byte-conservation"
          (Printf.sprintf
             "span 0x%x: %d taken + %d free + %d deferred <> capacity %d" span.sp_base
             taken span.n_free span.n_deferred span.sp_cap))
    t.spans;
  if !fe <> t.fe_bytes then
    add "front-end-accounting"
      (Printf.sprintf "free-stack walk %d B <> counter %d B" !fe t.fe_bytes);
  if !def <> t.def_bytes then
    add "torn-operation"
      (Printf.sprintf "deferred walk %d B <> counter %d B" !def t.def_bytes);
  if !slack <> t.slack_bytes then
    add "cfl-accounting"
      (Printf.sprintf "slack walk %d B <> counter %d B" !slack t.slack_bytes);
  let cached = ref t.g_cache_len in
  Array.iter (fun heap -> cached := !cached + heap.h_cache_len) t.heaps;
  let chunk_free = List.fold_left (fun acc c -> acc + c.c_free_spans) 0 t.chunks in
  let ph = (!cached + chunk_free) * span_size in
  if ph <> t.ph_bytes then
    add "filler-accounting"
      (Printf.sprintf "free-span walk %d B <> counter %d B" ph t.ph_bytes);
  let resident = Vm.resident_bytes t.vm in
  let live_rounded = Telemetry.live_rounded_bytes t.tel in
  let accounted = live_rounded + t.fe_bytes + t.def_bytes + t.slack_bytes + t.ph_bytes in
  if accounted <> resident then
    add "byte-conservation"
      (Printf.sprintf "live %d + cached %d <> resident %d" live_rounded
         (accounted - live_rounded) resident);
  (match Vm.hard_limit t.vm with
  | Some limit when resident > limit ->
    add "hard-limit" (Printf.sprintf "resident %d B above hard limit %d B" resident limit)
  | Some _ | None -> ());
  let hugepages = ref 0 in
  Vm.iter_hugepages t.vm (fun ~base:_ ~huge:_ ~subreleased_pages:_ -> incr hugepages);
  {
    Audit.time = Clock.now t.clock;
    spans_walked = !spans_walked;
    hugepages_walked = !hugepages;
    stranded_bytes = 0;
    violations = List.rev !violations;
  }
