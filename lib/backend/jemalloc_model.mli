(** jemalloc-style allocator model (see the .ml header for the design and
    its deliberate simplifications).  Consumed via {!Backend}; the direct
    API exists for the conformance suite and unit tests. *)

type addr = int
type t

val page_size : int
val num_arenas : int
val small_max : int
val class_count : int
val class_of_size : int -> int
val class_size : int -> int
val slab_pages_of : int -> int

val create :
  ?config:Wsc_tcmalloc.Config.t ->
  topology:Wsc_hw.Topology.t ->
  clock:Wsc_substrate.Clock.t ->
  unit ->
  t

val malloc_th : t -> thread:int -> cpu:int -> size:int -> addr
val free_th : t -> thread:int -> cpu:int -> addr -> size:int -> unit
val release_memory : t -> target_bytes:int -> Wsc_tcmalloc.Malloc.reclaim_outcome
val cpu_idle : ?flush:bool -> t -> cpu:int -> unit

val heap_stats : t -> Wsc_tcmalloc.Malloc.heap_stats
val resident_bytes : t -> int
val live_fragmentation_ratio : t -> float
val hugepage_coverage : t -> float
val telemetry : t -> Wsc_tcmalloc.Telemetry.t
val vm : t -> Wsc_os.Vm.t
val vcpus : t -> Wsc_os.Vcpu.t
val config : t -> Wsc_tcmalloc.Config.t
val topology : t -> Wsc_hw.Topology.t
val clock : t -> Wsc_substrate.Clock.t
val audit : t -> Wsc_tcmalloc.Audit.report
