(** Shared backend conformance checker: the backend-agnostic invariants of
    {!Wsc_tcmalloc.Audit} (byte conservation, no double-allocation of a
    live address, free-of-live succeeds, limit compliance) run as a
    scripted harness against any {!Backend}.  Every backend — TCMalloc
    included — must pass every generated script; the qcheck suite in
    [test/test_backend.ml] drives this over random scripts. *)

type op =
  | Alloc of { cpu : int; size : int }
  | Free of { cpu : int; index : int }
      (** Frees the [index mod live]-th shadow-live object; no-op when
          nothing is live. *)
  | Churn of { cpu : int; flush : bool }  (** {!Backend.cpu_idle}. *)
  | Pressure of { target_bytes : int }  (** {!Backend.release_memory}. *)
  | Check  (** Run every invariant now. *)

type failure = { step : int; invariant : string; detail : string }

val describe_failure : failure -> string

val script : seed:int -> length:int -> op list
(** Deterministic pseudo-random script: Fig. 7-leaning size mix with a
    large/huge tail, ~16 CPUs of context, churn and pressure sprinkled in,
    always ending in a [Check]. *)

type result = {
  ops_run : int;
  allocs : int;
  frees : int;
  checks : int;
  failures : failure list;
}

val passed : result -> bool

val run :
  ?config:Wsc_tcmalloc.Config.t ->
  ?hard_limit_bytes:int ->
  ?topology:Wsc_hw.Topology.t ->
  script:op list ->
  unit ->
  result
(** Execute a script against a fresh backend chosen by [config.backend].
    [hard_limit_bytes] also sets a soft limit at 85% so the reclaim path
    runs; [Out_of_memory] from an allocation under a hard limit is a legal
    outcome, not a failure. *)
