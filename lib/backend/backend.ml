module Config = Wsc_tcmalloc.Config
module Malloc = Wsc_tcmalloc.Malloc
module Audit = Wsc_tcmalloc.Audit
module Telemetry = Wsc_tcmalloc.Telemetry

type kind = Config.backend_kind = Tcmalloc | Rpmalloc | Jemalloc

let kind_name = Config.backend_name
let kind_of_name = Config.backend_of_name
let all_kinds = Config.all_backends

type t =
  | Tc of Malloc.t
  | Rp of Rpmalloc_model.t
  | Je of Jemalloc_model.t

type heap_stats = Malloc.heap_stats

let create ?(config = Config.baseline) ?rseq ?span_snapshot_interval_ns ~topology
    ~clock () =
  match config.Config.backend with
  | Tcmalloc -> Tc (Malloc.create ~config ?rseq ?span_snapshot_interval_ns ~topology ~clock ())
  | Rpmalloc ->
    if rseq <> None then
      invalid_arg "Backend.create: --rseq requires the tcmalloc backend";
    Rp (Rpmalloc_model.create ~config ~topology ~clock ())
  | Jemalloc ->
    if rseq <> None then
      invalid_arg "Backend.create: --rseq requires the tcmalloc backend";
    Je (Jemalloc_model.create ~config ~topology ~clock ())

let kind = function Tc _ -> Tcmalloc | Rp _ -> Rpmalloc | Je _ -> Jemalloc

let tc_exn = function
  | Tc m -> m
  | (Rp _ | Je _) as t ->
    invalid_arg
      (Printf.sprintf "Backend.tc_exn: tcmalloc-only introspection on a %s backend"
         (kind_name (kind t)))

let malloc_th t ~thread ~cpu ~size =
  match t with
  | Tc m -> Malloc.malloc_th m ~thread ~cpu ~size
  | Rp m -> Rpmalloc_model.malloc_th m ~thread ~cpu ~size
  | Je m -> Jemalloc_model.malloc_th m ~thread ~cpu ~size

let free_th t ~thread ~cpu addr ~size =
  match t with
  | Tc m -> Malloc.free_th m ~thread ~cpu addr ~size
  | Rp m -> Rpmalloc_model.free_th m ~thread ~cpu addr ~size
  | Je m -> Jemalloc_model.free_th m ~thread ~cpu addr ~size

let malloc ?(thread = -1) t ~cpu ~size = malloc_th t ~thread ~cpu ~size
let free ?(thread = -1) t ~cpu addr ~size = free_th t ~thread ~cpu addr ~size

let cpu_idle ?(flush = false) t ~cpu =
  match t with
  | Tc m -> Malloc.cpu_idle ~flush m ~cpu
  | Rp m -> Rpmalloc_model.cpu_idle ~flush m ~cpu
  | Je m -> Jemalloc_model.cpu_idle ~flush m ~cpu

let release_memory t ~target_bytes =
  match t with
  | Tc m -> Malloc.release_memory m ~target_bytes
  | Rp m -> Rpmalloc_model.release_memory m ~target_bytes
  | Je m -> Jemalloc_model.release_memory m ~target_bytes

let heap_stats = function
  | Tc m -> Malloc.heap_stats m
  | Rp m -> Rpmalloc_model.heap_stats m
  | Je m -> Jemalloc_model.heap_stats m

let resident_bytes = function
  | Tc m -> Malloc.resident_bytes m
  | Rp m -> Rpmalloc_model.resident_bytes m
  | Je m -> Jemalloc_model.resident_bytes m

let live_fragmentation_ratio = function
  | Tc m -> Malloc.live_fragmentation_ratio m
  | Rp m -> Rpmalloc_model.live_fragmentation_ratio m
  | Je m -> Jemalloc_model.live_fragmentation_ratio m

let hugepage_coverage = function
  | Tc m -> Malloc.hugepage_coverage m
  | Rp m -> Rpmalloc_model.hugepage_coverage m
  | Je m -> Jemalloc_model.hugepage_coverage m

let fragmentation_ratio = Malloc.fragmentation_ratio

let telemetry = function
  | Tc m -> Malloc.telemetry m
  | Rp m -> Rpmalloc_model.telemetry m
  | Je m -> Jemalloc_model.telemetry m

let vm = function
  | Tc m -> Malloc.vm m
  | Rp m -> Rpmalloc_model.vm m
  | Je m -> Jemalloc_model.vm m

let vcpus = function
  | Tc m -> Malloc.vcpus m
  | Rp m -> Rpmalloc_model.vcpus m
  | Je m -> Jemalloc_model.vcpus m

let config = function
  | Tc m -> Malloc.config m
  | Rp m -> Rpmalloc_model.config m
  | Je m -> Jemalloc_model.config m

let topology = function
  | Tc m -> Malloc.topology m
  | Rp m -> Rpmalloc_model.topology m
  | Je m -> Jemalloc_model.topology m

let clock = function
  | Tc m -> Malloc.clock m
  | Rp m -> Rpmalloc_model.clock m
  | Je m -> Jemalloc_model.clock m

let rseq = function Tc m -> Malloc.rseq m | Rp _ | Je _ -> None
let sampler = function Tc m -> Some (Malloc.sampler m) | Rp _ | Je _ -> None

let stranded_pending_ids = function
  | Tc m -> Malloc.stranded_pending_ids m
  | Rp _ | Je _ -> []

let audit = function
  | Tc m -> Audit.run m
  | Rp m -> Rpmalloc_model.audit m
  | Je m -> Jemalloc_model.audit m

let snapshot = function
  | Tc m -> Malloc.snapshot m
  | (Rp _ | Je _) as t -> Marshal.to_string t [ Marshal.Closures ]

let restore ~kind:k blob =
  match k with
  | Tcmalloc -> Tc (Malloc.restore blob)
  | Rpmalloc | Jemalloc -> (Marshal.from_string blob 0 : t)
