(** Public umbrella API for the warehouse-scale allocator study.

    Everything lives in seven focused libraries; this module re-exports
    them under stable names and adds the small amount of glue that examples
    and the CLI want.

    {ul
    {- {!Substrate} — PRNG, distributions, statistics, histograms, clock.}
    {- {!Hw} — platform topology, latency/TLB/cost models, productivity.}
    {- {!Os} — simulated virtual memory, vCPU ids, scheduling.}
    {- {!Tcmalloc} — the allocator model and its four optimizations.}
    {- {!Backend} — the allocator-backend dispatcher and rival models.}
    {- {!Workload} — application profiles and the event driver.}
    {- {!Fleet_sim} — machines, fleet builder, GWP profiling, A/B tests.}
    {- {!Trace_stream} — streaming binary traces: record, replay, analyze.}
    {- {!Persist} — warm-state checkpoint/restore with bit-identical resume.}
    {- {!Tune} — deterministic config search (Pareto front) over trace replay.}} *)

module Substrate = Wsc_substrate
module Hw = Wsc_hw
module Os = Wsc_os
module Tcmalloc = Wsc_tcmalloc
module Backend = Wsc_backend.Backend
module Backend_conformance = Wsc_backend.Conformance
module Workload = Wsc_workload
module Fleet_sim = Wsc_fleet
module Trace_stream = Wsc_trace
module Persist = Wsc_persist.Persist
module Tune = Wsc_tune

(** Convenience entry points used by the examples and the CLI. *)
module Quick = struct
  module Units = Wsc_substrate.Units

  (** Run one application on a dedicated default-platform machine and
      return the finished job for inspection.  Optional memory limits,
      fault injection, and periodic heap audits pass through to
      {!Wsc_fleet.Machine.create}. *)
  let run_app ?(seed = 1) ?(config = Wsc_tcmalloc.Config.baseline)
      ?(platform = Wsc_hw.Topology.default) ?(duration_ns = 10.0 *. Units.sec)
      ?(epoch_ns = Units.ms) ?soft_limit_bytes ?hard_limit_bytes ?faults ?rseq
      ?audit_interval_ns profile =
    let machine =
      Wsc_fleet.Machine.create ~seed ~config ?soft_limit_bytes ?hard_limit_bytes ?faults
        ?rseq ?audit_interval_ns ~platform ~jobs:[ profile ] ()
    in
    Wsc_fleet.Machine.run machine ~duration_ns ~epoch_ns;
    List.hd (Wsc_fleet.Machine.jobs machine)

  (** Run a default-shaped fleet and return the per-machine summaries
      ({!Wsc_fleet.Machine.summary}) in machine order — the streaming
      record {!Wsc_fleet.Fleet.run} now produces instead of discarding
      results. *)
  let run_fleet ?jobs ?(seed = 7) ?(num_machines = 24)
      ?(duration_ns = 10.0 *. Units.sec) ?(epoch_ns = Units.ms)
      ?(config = Wsc_tcmalloc.Config.baseline) () =
    let fleet = Wsc_fleet.Fleet.create ~seed ~num_machines ~config () in
    (fleet, Wsc_fleet.Fleet.run ?jobs fleet ~duration_ns ~epoch_ns)

  (** A/B one optimization flag for one application against the baseline.
      [jobs] fans the replica arms out over that many domains (the result
      is identical for any job count).  Fleet-level outcomes
      ({!Wsc_fleet.Ab_test.run_fleet}) are CPU-weighted from the measured
      run's machine summaries. *)
  let ab ?jobs ?seed ?duration_ns profile ~experiment =
    Wsc_fleet.Ab_test.run_app ?jobs ?seed ?duration_ns
      ~control:Wsc_tcmalloc.Config.baseline ~experiment profile
end
