(** The tunable configuration space.

    A candidate is a {e genome}: one int per knob, each an index into
    that knob's value grid.  Grids are chosen so the paper-default
    {!Wsc_tcmalloc.Config.baseline} is exactly representable
    ({!baseline} decodes to it), covering the per-CPU cache budget and
    class cap, the transfer-cache capacity [L]-list and filler-threshold
    [C] knobs of Sec. 4, the release/reclaim intervals and hugepage
    release policy, plus the reclaim knobs shared with the rival
    backends.

    {b Gating.}  The rpmalloc/jemalloc models read only the shared
    reclaim knobs, so under those backends every TCMalloc-specific gene
    is {e inactive}: {!clamp} freezes it at baseline and
    {!random}/{!mutate}/{!neighbors} never touch it — searches spend
    their budget only on dimensions the backend can feel.

    {b Totality.}  {!clamp} maps {e any} int array (any length, any
    values, any sign) to a canonical genome, and every decode goes
    through it — so arbitrary bytes always yield a config the backend
    accepts (the qcheck round-trip property). *)

type genome = int array

val num_genes : int
val cardinality : int -> int
(** Grid size of gene [i]. *)

val gene_name : int -> string

val active : Wsc_tcmalloc.Config.backend_kind -> int -> bool
(** Is gene [i] searchable under this backend? *)

val baseline : genome
(** The genome decoding to the paper-default config (any backend). *)

val clamp : backend:Wsc_tcmalloc.Config.backend_kind -> int array -> genome
(** Canonicalize: fold each gene into its grid (euclidean mod), freeze
    inactive genes at baseline, fix the length.  Idempotent. *)

val decode : backend:Wsc_tcmalloc.Config.backend_kind -> int array -> Wsc_tcmalloc.Config.t
(** [clamp] then apply every knob to [Config.baseline] under [backend]. *)

val of_bytes : backend:Wsc_tcmalloc.Config.backend_kind -> string -> genome
(** One byte per gene (missing bytes read as baseline), clamped. *)

val random : backend:Wsc_tcmalloc.Config.backend_kind -> Wsc_substrate.Rng.t -> genome
val mutate :
  ?rate:float ->
  backend:Wsc_tcmalloc.Config.backend_kind ->
  Wsc_substrate.Rng.t ->
  genome ->
  genome
(** Per-gene resample at [rate] (default 0.15); guaranteed to differ
    from its input whenever the active space has more than one point. *)

val crossover : Wsc_substrate.Rng.t -> genome -> genome -> genome
(** Uniform crossover of two canonical genomes. *)

val neighbors : backend:Wsc_tcmalloc.Config.backend_kind -> genome -> genome list
(** All one-step grid moves on active genes (the hill-climb
    neighborhood), in gene order, -1 before +1. *)

val key : genome -> string
(** Canonical dotted-index form, e.g. ["4.3.0.2..."]; injective on
    canonical genomes. *)

val render : int -> int -> string
(** [render gene value] pretty-prints grid point [value] of [gene]
    (e.g. ["3 MiB"], ["on"], ["8"]). *)

val describe : genome -> string
(** Human-readable diff vs the paper default (["paper-default"] when
    equal). *)
