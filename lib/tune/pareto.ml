type entry = { e_genome : int array; e_rss : int; e_ns : float }

(* The archive is an epsilon-grid: objective space is quantized into
   log-scale buckets and each bucket holds at most one representative —
   the minimum under a total order.  Two consequences the search leans
   on:

   - {e insertion-order independence}: "keep the per-bucket minimum" is
     commutative and idempotent, so the archive is a pure function of
     the {e set} of inserted entries — however a parallel fan-out
     ordered them (qcheck-pinned in test_tune.ml);
   - {e constant memory}: occupancy is bounded by the bucket grid
     (resolution^2 per doubling-pair of the objective ranges), not by
     the number of evaluations, so an unbounded search cannot grow it.

   The total order breaks objective ties by genome so the minimum is
   unique, never first-seen-wins. *)
type t = {
  resolution : int;  (* buckets per doubling of each objective *)
  buckets : (int * int, entry) Hashtbl.t;
}

let create ?(resolution = 16) () =
  if resolution <= 0 then invalid_arg "Pareto.create: resolution must be positive";
  { resolution; buckets = Hashtbl.create 64 }

let resolution t = t.resolution

let order a b =
  let c = compare a.e_rss b.e_rss in
  if c <> 0 then c
  else
    let c = compare a.e_ns b.e_ns in
    if c <> 0 then c else compare a.e_genome b.e_genome

let dominates a b =
  a.e_rss <= b.e_rss && a.e_ns <= b.e_ns && (a.e_rss < b.e_rss || a.e_ns < b.e_ns)

let log2 x = log x /. log 2.0

let bucket_of t e =
  let q v = int_of_float (Float.floor (float_of_int t.resolution *. log2 (1.0 +. v))) in
  (q (float_of_int e.e_rss), q e.e_ns)

let insert t e =
  if e.e_rss < 0 || not (Float.is_finite e.e_ns) || e.e_ns < 0.0 then
    invalid_arg "Pareto.insert: objectives must be non-negative and finite";
  let b = bucket_of t e in
  match Hashtbl.find_opt t.buckets b with
  | Some cur when order cur e <= 0 -> ()
  | _ -> Hashtbl.replace t.buckets b e

let size t = Hashtbl.length t.buckets

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.buckets [] |> List.sort order

let front t =
  let all = entries t in
  List.filter (fun e -> not (List.exists (fun o -> dominates o e) all)) all
