open Wsc_substrate
module Config = Wsc_tcmalloc.Config
module Replay = Wsc_trace.Replay
module Persist = Wsc_persist.Persist

type strategy = Sweep | Hillclimb | Evolve

let strategy_name = function
  | Sweep -> "sweep"
  | Hillclimb -> "hillclimb"
  | Evolve -> "evolve"

let strategy_of_name = function
  | "sweep" -> Some Sweep
  | "hillclimb" -> Some Hillclimb
  | "evolve" -> Some Evolve
  | _ -> None

type spec = {
  sp_seed : int;
  sp_budget : int;
  sp_batch : int;
  sp_strategy : strategy;
  sp_backend : Config.backend_kind;
}

let default_spec =
  { sp_seed = 42; sp_budget = 120; sp_batch = 24; sp_strategy = Evolve;
    sp_backend = Config.Tcmalloc }

let validate_spec spec =
  if spec.sp_budget < 1 then invalid_arg "Tune: budget must be at least 1";
  if spec.sp_batch < 1 then invalid_arg "Tune: batch must be at least 1";
  if spec.sp_seed < 0 then invalid_arg "Tune: seed must be non-negative"

(* Cheap deterministic identity of (spec, trace): a resumed search must
   be continuing the same search.  The trace part folds event counts and
   magnitudes, so swapping the trace file under a checkpoint is caught
   even when lengths happen to match. *)
let trace_fingerprint events =
  let allocs = ref 0 and frees = ref 0 and retires = ref 0 in
  let bytes = ref 0 and adv = ref 0.0 in
  Array.iter
    (fun ev ->
      match ev with
      | Wsc_workload.Trace.Alloc { size; _ } ->
        incr allocs;
        bytes := !bytes + size
      | Wsc_workload.Trace.Free _ -> incr frees
      | Wsc_workload.Trace.Advance { dt_ns } -> adv := !adv +. dt_ns
      | Wsc_workload.Trace.Retire _ -> incr retires)
    events;
  Printf.sprintf "e%d.a%d.f%d.r%d.b%d.t%.0f" (Array.length events) !allocs
    !frees !retires !bytes !adv

let spec_digest spec ~events =
  Printf.sprintf "tune.%s.%s.s%d.b%d.w%d.%s" (strategy_name spec.sp_strategy)
    (Config.backend_name spec.sp_backend)
    spec.sp_seed spec.sp_budget spec.sp_batch (trace_fingerprint events)

(* Everything the search loop carries between generations.  Closure-free
   by construction (plain records, int arrays, hashtables of scalars, the
   Rng state record), so checkpoints [Marshal] without flags and stay
   readable across binaries. *)
type state = {
  st_digest : string;
  st_rng : Rng.t;
  st_archive : Pareto.t;
  st_cache : (string, int * float) Hashtbl.t;  (* genome key -> objectives *)
  mutable st_evals : int;
  mutable st_gens : int;
  mutable st_baseline : (int * float) option;
  mutable st_best : (Space.genome * (int * float) * float) option;
      (* lowest-scalar evaluation so far: (genome, objectives, scalar) *)
  mutable st_pop : Space.genome array;  (* evolve population *)
  mutable st_finished : bool;
}

let evaluations st = st.st_evals
let generations st = st.st_gens
let finished st = st.st_finished

let fresh_state digest spec =
  {
    st_digest = digest;
    st_rng = Rng.create (spec.sp_seed lxor 0x7075_6e65);
    st_archive = Pareto.create ();
    st_cache = Hashtbl.create 256;
    st_evals = 0;
    st_gens = 0;
    st_baseline = None;
    st_best = None;
    st_pop = [||];
    st_finished = false;
  }

(* Scalarization for selection pressure only (the archive is what the
   search reports): the product of both objectives normalized by the
   paper default, so "half the RSS at equal speed" and "equal RSS at
   half the allocator time" score the same. *)
let scalar st ~rss ~ns =
  match st.st_baseline with
  | None -> infinity
  | Some (brss, bns) ->
    let brss = float_of_int (max 1 brss) and bns = Float.max 1.0 bns in
    float_of_int rss /. brss *. (Float.max 1.0 ns /. bns)

(* --- Candidate proposal ------------------------------------------------- *)

(* One generation's worth of candidates.  All randomness is drawn here,
   on the coordinating domain, in a fixed order — workers never touch an
   RNG — so the search trajectory is a function of (spec, trace) alone,
   independent of [jobs].  Returns candidates in draw order; an empty
   return means the strategy is out of moves and the search stops. *)
let propose spec st =
  let remaining = spec.sp_budget - st.st_evals in
  if remaining <= 0 then []
  else begin
    let want = min spec.sp_batch remaining in
    let backend = spec.sp_backend in
    let seen = Hashtbl.create 32 in
    let fresh g =
      let k = Space.key g in
      (not (Hashtbl.mem st.st_cache k)) && not (Hashtbl.mem seen k)
    in
    let take acc g =
      if List.length acc < want && fresh g then begin
        Hashtbl.replace seen (Space.key g) ();
        g :: acc
      end
      else acc
    in
    (* Top up with random genomes; bounded tries so a nearly exhausted
       space terminates instead of spinning. *)
    let fill acc =
      let acc = ref acc in
      let tries = ref 0 in
      while List.length !acc < want && !tries < want * 64 do
        incr tries;
        acc := take !acc (Space.random ~backend st.st_rng)
      done;
      !acc
    in
    let tournament scored =
      let n = Array.length scored in
      let best = ref scored.(Rng.int st.st_rng n) in
      for _ = 2 to 3 do
        let c = scored.(Rng.int st.st_rng n) in
        if snd c < snd !best then best := c
      done;
      fst !best
    in
    let picked =
      if st.st_gens = 0 then begin
        (* Every strategy opens with the paper default (the report's
           reference point and the dominance gate's anchor) plus a
           random sweep. *)
        let acc = fill (take [] Space.baseline) in
        st.st_pop <- Array.of_list (List.rev acc);
        acc
      end
      else
        match spec.sp_strategy with
        | Sweep -> fill []
        | Hillclimb -> (
          let cursor =
            match st.st_best with
            | Some (g, _, _) -> g
            | None -> Space.baseline
          in
          let moves = Space.neighbors ~backend cursor in
          match List.fold_left take [] moves with
          | [] -> fill []  (* local optimum fully explored: random restart *)
          | acc -> acc)
        | Evolve -> (
          let scored =
            Array.to_list st.st_pop
            |> List.filter_map (fun g ->
                   match Hashtbl.find_opt st.st_cache (Space.key g) with
                   | Some (rss, ns) -> Some (g, scalar st ~rss ~ns)
                   | None -> None)
            |> Array.of_list
          in
          if Array.length scored = 0 then fill []
          else begin
            (* Elitism: the incumbent best stays in the population (it
               is already cached, so it costs no evaluation). *)
            let pop = ref [] in
            (match st.st_best with
            | Some (g, _, _) -> pop := [ g ]
            | None -> ());
            let tries = ref 0 in
            while
              List.length !pop < spec.sp_batch && !tries < spec.sp_batch * 8
            do
              incr tries;
              let child =
                Space.mutate ~backend st.st_rng
                  (Space.crossover st.st_rng (tournament scored)
                     (tournament scored))
              in
              if not (List.exists (fun g -> g = child) !pop) then
                pop := child :: !pop
            done;
            let pop = List.rev !pop in
            st.st_pop <- Array.of_list pop;
            List.fold_left take [] pop
          end)
    in
    List.rev picked
  end

(* Results arrive in candidate order (the ordered-reduction rule), and
   this merge advances state strictly in that order, so the trajectory
   is identical for any [jobs]. *)
let merge st candidates results =
  List.iter2
    (fun g ((_, r) : string * Replay.result) ->
      let rss = r.Replay.peak_rss_bytes and ns = r.Replay.malloc_ns in
      Hashtbl.replace st.st_cache (Space.key g) (rss, ns);
      Pareto.insert st.st_archive { Pareto.e_genome = g; e_rss = rss; e_ns = ns };
      st.st_evals <- st.st_evals + 1;
      if g = Space.baseline then st.st_baseline <- Some (rss, ns);
      if st.st_baseline <> None then begin
        let s = scalar st ~rss ~ns in
        match st.st_best with
        | Some (_, _, bs) when bs <= s -> ()
        | _ -> st.st_best <- Some (g, (rss, ns), s)
      end)
    candidates results

(* --- Results ------------------------------------------------------------ *)

type report = {
  rp_strategy : strategy;
  rp_backend : Config.backend_kind;
  rp_seed : int;
  rp_budget : int;
  rp_batch : int;
  rp_trace : string;
  rp_evals : int;
  rp_generations : int;
  rp_finished : bool;
  rp_baseline : Pareto.entry;
  rp_front : Pareto.entry list;
  rp_best : Pareto.entry;
  rp_dominates : bool;
}

let report_of spec ~trace st =
  let base =
    match st.st_baseline with
    | Some (rss, ns) -> { Pareto.e_genome = Space.baseline; e_rss = rss; e_ns = ns }
    | None -> invalid_arg "Tune: search never evaluated the paper default"
  in
  let front = Pareto.front st.st_archive in
  let dominators =
    List.filter
      (fun (e : Pareto.entry) ->
        e.Pareto.e_rss < base.Pareto.e_rss && e.Pareto.e_ns <= base.Pareto.e_ns)
      front
  in
  let pick = function
    | [] -> base
    | e :: rest ->
      List.fold_left
        (fun acc c ->
          let s e = scalar st ~rss:e.Pareto.e_rss ~ns:e.Pareto.e_ns in
          if s c < s acc then c else acc)
        e rest
  in
  let best = match dominators with [] -> pick front | ds -> pick ds in
  {
    rp_strategy = spec.sp_strategy;
    rp_backend = spec.sp_backend;
    rp_seed = spec.sp_seed;
    rp_budget = spec.sp_budget;
    rp_batch = spec.sp_batch;
    rp_trace = trace;
    rp_evals = st.st_evals;
    rp_generations = st.st_gens;
    rp_finished = st.st_finished;
    rp_baseline = base;
    rp_front = front;
    rp_best = best;
    rp_dominates = dominators <> [];
  }

(* --- The search loop ---------------------------------------------------- *)

let run ?jobs ?(on_generation = fun ~generation:_ _ -> ()) ?resume
    ?max_generations ~events spec =
  validate_spec spec;
  let digest = spec_digest spec ~events in
  let st =
    match resume with
    | None -> fresh_state digest spec
    | Some st ->
      if st.st_digest <> digest then
        invalid_arg
          "Tune.run: checkpoint belongs to a different search (spec or trace \
           mismatch)";
      st
  in
  let gens_run = ref 0 in
  let stopped = ref false in
  while (not !stopped) && not st.st_finished do
    (match propose spec st with
    | [] -> st.st_finished <- true
    | candidates ->
      let configs =
        List.map
          (fun g -> (Space.key g, Space.decode ~backend:spec.sp_backend g))
          candidates
      in
      let results = Replay.run_configs_preloaded ?jobs ~configs events in
      merge st candidates results;
      st.st_gens <- st.st_gens + 1;
      if st.st_evals >= spec.sp_budget then st.st_finished <- true;
      on_generation ~generation:st.st_gens st;
      incr gens_run;
      match max_generations with
      | Some m when !gens_run >= m -> stopped := true
      | _ -> ());
    ()
  done;
  report_of spec ~trace:(trace_fingerprint events) st

(* --- Single-knob sweeps (plateau validation) ---------------------------- *)

let sweep_gene ?jobs ~backend ~gene ~base events =
  let base = Space.clamp ~backend base in
  let genomes =
    List.init (Space.cardinality gene) (fun v ->
        let g = Array.copy base in
        g.(gene) <- v;
        g)
  in
  let configs =
    List.map (fun g -> (Space.key g, Space.decode ~backend g)) genomes
  in
  let results = Replay.run_configs_preloaded ?jobs ~configs events in
  List.map2
    (fun g ((_, r) : string * Replay.result) ->
      ( Space.render gene g.(gene),
        {
          Pareto.e_genome = g;
          e_rss = r.Replay.peak_rss_bytes;
          e_ns = r.Replay.malloc_ns;
        } ))
    genomes results

(* --- Checkpoints -------------------------------------------------------- *)

let save_checkpoint ?storage ?(note = "") st ~path =
  Persist.save_blob ?storage ~note ~kind:"tune"
    ~progress:(float_of_int st.st_evals)
    (Marshal.to_string st []) ~path

let load_checkpoint ~path =
  let blob, _ = Persist.load_blob ~kind:"tune" ~path in
  try (Marshal.from_string blob 0 : state)
  with Failure reason ->
    raise (Persist.Corrupt { section = "state"; reason })

(* --- Rendering ---------------------------------------------------------- *)

(* The deterministic prefix of one archive entry's JSON line: what
   {!check_committed} matches byte-for-byte against the committed file.
   Wall-clock time is appended outside this prefix and never gated. *)
let entry_key (e : Pareto.entry) =
  Printf.sprintf "\"genome\":\"%s\",\"rss_bytes\":%d,\"malloc_ms\":%.6f,\"config\":\"%s\""
    (Space.key e.Pareto.e_genome)
    e.Pareto.e_rss
    (e.Pareto.e_ns /. 1e6)
    (Space.describe e.Pareto.e_genome)

let header_key r =
  Printf.sprintf
    "\"strategy\":\"%s\",\"backend\":\"%s\",\"seed\":%d,\"budget\":%d,\"batch\":%d,\"trace\":\"%s\",\"evals\":%d,\"generations\":%d,\"dominates_baseline\":%b"
    (strategy_name r.rp_strategy)
    (Config.backend_name r.rp_backend)
    r.rp_seed r.rp_budget r.rp_batch r.rp_trace r.rp_evals r.rp_generations
    r.rp_dominates

let to_json ?(wall_s = 0.0) ?(sweeps = []) r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"benchmark\": \"tune\",\n";
  Printf.bprintf b "  \"search\": {%s},\n" (header_key r);
  Printf.bprintf b "  \"baseline\": {%s},\n" (entry_key r.rp_baseline);
  Printf.bprintf b "  \"best\": {%s},\n" (entry_key r.rp_best);
  Buffer.add_string b "  \"front\": [\n";
  let n = List.length r.rp_front in
  List.iteri
    (fun i e ->
      Printf.bprintf b "    {%s}%s\n" (entry_key e)
        (if i = n - 1 then "" else ","))
    r.rp_front;
  Buffer.add_string b "  ],\n";
  List.iter
    (fun (name, cells) ->
      Printf.bprintf b "  \"%s\": [\n" name;
      let n = List.length cells in
      List.iteri
        (fun i (label, e) ->
          Printf.bprintf b "    {\"value\":\"%s\",%s}%s\n" label (entry_key e)
            (if i = n - 1 then "" else ","))
        cells;
      Buffer.add_string b "  ],\n")
    sweeps;
  Printf.bprintf b "  \"wall_s\": %.3f\n" wall_s;
  Buffer.add_string b "}\n";
  Buffer.contents b

let contains ~committed key =
  let klen = String.length key and len = String.length committed in
  let rec found i =
    if i + klen > len then false
    else String.sub committed i klen = key || found (i + 1)
  in
  found 0

let check_committed ?(sweeps = []) ~committed r =
  let miss what key =
    if contains ~committed key then None
    else
      Some
        (Printf.sprintf "%s: deterministic metrics differ from committed (%s)"
           what key)
  in
  List.filter_map Fun.id
    ([ miss "search" (header_key r);
       miss "baseline" (entry_key r.rp_baseline);
       miss "best" (entry_key r.rp_best) ]
    @ List.map (fun e -> miss "front" (entry_key e)) r.rp_front
    @ List.concat_map
        (fun (name, cells) ->
          List.map
            (fun (label, e) ->
              miss
                (Printf.sprintf "%s[%s]" name label)
                (Printf.sprintf "\"value\":\"%s\",%s" label (entry_key e)))
            cells)
        sweeps)

let pp_front ppf r =
  let pct x base =
    if base = 0.0 then 0.0 else (x -. base) /. base *. 100.0
  in
  let brss = float_of_int r.rp_baseline.Pareto.e_rss in
  let bns = r.rp_baseline.Pareto.e_ns in
  Format.fprintf ppf "search  : %s over %s, seed %d, %d/%d evaluations in %d generations@."
    (strategy_name r.rp_strategy)
    (Config.backend_name r.rp_backend)
    r.rp_seed r.rp_evals r.rp_budget r.rp_generations;
  Format.fprintf ppf "baseline: rss %s, alloc cpu %s@."
    (Units.bytes_to_string r.rp_baseline.Pareto.e_rss)
    (Units.duration_to_string r.rp_baseline.Pareto.e_ns);
  Format.fprintf ppf "%-10s %12s %8s %12s %8s  %s@." "" "peak_rss" "drss%"
    "alloc_cpu" "dns%" "config";
  List.iter
    (fun (e : Pareto.entry) ->
      let tag = if e = r.rp_best then "best ->" else "" in
      Format.fprintf ppf "%-10s %12d %7.2f%% %12.0f %7.2f%%  %s@." tag
        e.Pareto.e_rss
        (pct (float_of_int e.Pareto.e_rss) brss)
        e.Pareto.e_ns (pct e.Pareto.e_ns bns)
        (Space.describe e.Pareto.e_genome))
    r.rp_front;
  Format.fprintf ppf "verdict : best %s the paper default@."
    (if r.rp_dominates then "strictly dominates" else "does NOT dominate")
