(** Constant-memory Pareto archive over (peak RSS, allocator ns).

    An epsilon-grid archive: objective space is quantized into log-scale
    buckets ([resolution] buckets per doubling) and each bucket keeps
    exactly one representative — the minimum under a total order that
    breaks objective ties by genome.  Inserts are commutative and
    idempotent, so the archive is a pure function of the {e set} of
    entries ever inserted (insertion-order independent), and occupancy
    is bounded by the bucket grid, not the evaluation count.

    Values are closure-free (a record over a hashtable of plain
    records), so an archive marshals into a search checkpoint as-is. *)

type entry = {
  e_genome : int array;  (** Canonical {!Space.genome}. *)
  e_rss : int;  (** Peak resident bytes over the replay (minimize). *)
  e_ns : float;  (** Modeled allocator CPU ns (minimize; inverse throughput). *)
}

type t

val create : ?resolution:int -> unit -> t
(** Default resolution: 16 buckets per objective doubling. *)

val resolution : t -> int

val insert : t -> entry -> unit
(** @raise Invalid_argument on negative or non-finite objectives. *)

val size : t -> int
(** Occupied buckets. *)

val entries : t -> entry list
(** All bucket representatives, sorted by (rss, ns, genome). *)

val front : t -> entry list
(** The non-dominated subset of {!entries}, same order.  Never empty
    once anything was inserted. *)

val dominates : entry -> entry -> bool
(** Weakly better on both objectives, strictly on at least one. *)
