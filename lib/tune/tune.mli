(** Deterministic config search over trace replay (the GreenMalloc loop).

    Evaluates candidate {!Wsc_tcmalloc.Config} genomes against one
    preloaded trace ({!Wsc_trace.Replay.run_configs_preloaded}) and
    archives the Pareto front of peak RSS vs allocator CPU time.

    {b Determinism.}  All randomness is drawn by the coordinator while
    proposing a generation, evaluation fans out over the
    {!Wsc_substrate.Parallel} pool whose results come back in input
    order, and state advances strictly in that order — so for a fixed
    (spec, trace) the whole trajectory, front included, is bit-identical
    whatever [jobs] is.  Checkpoints cut at generation boundaries:
    resuming one replays the identical remaining trajectory, so a killed
    and resumed search equals an uninterrupted one. *)

type strategy =
  | Sweep  (** Pure random search over the active space. *)
  | Hillclimb
      (** Random opening sweep, then repeated evaluation of the
          incumbent's one-step grid neighborhood; random restarts once
          the local neighborhood is exhausted. *)
  | Evolve
      (** Generational GA: tournament selection (k=3) on a
          baseline-normalized product scalarization, uniform crossover,
          per-gene mutation, elitism of one. *)

val strategy_name : strategy -> string
val strategy_of_name : string -> strategy option

type spec = {
  sp_seed : int;
  sp_budget : int;  (** Total replay evaluations allowed. *)
  sp_batch : int;  (** Evaluations proposed per generation (parallel width). *)
  sp_strategy : strategy;
  sp_backend : Wsc_tcmalloc.Config.backend_kind;
}

val default_spec : spec
(** seed 42, budget 120, batch 24, {!Evolve}, tcmalloc. *)

val validate_spec : spec -> unit
(** @raise Invalid_argument on a nonsensical spec (budget/batch < 1,
    negative seed). *)

type state
(** Inter-generation search state; closure-free, so checkpoints survive
    across binaries. *)

val evaluations : state -> int
val generations : state -> int
val finished : state -> bool

type report = {
  rp_strategy : strategy;
  rp_backend : Wsc_tcmalloc.Config.backend_kind;
  rp_seed : int;
  rp_budget : int;
  rp_batch : int;
  rp_trace : string;  (** Trace fingerprint the search ran against. *)
  rp_evals : int;
  rp_generations : int;
  rp_finished : bool;
  rp_baseline : Pareto.entry;  (** The paper-default config's objectives. *)
  rp_front : Pareto.entry list;  (** Non-dominated archive, (rss, ns) order. *)
  rp_best : Pareto.entry;
      (** Lowest-scalar front member that strictly dominates the
          baseline; falls back to the lowest-scalar front member (and
          then the baseline itself) when none does. *)
  rp_dominates : bool;
      (** Does [rp_best] beat the baseline on RSS at equal-or-better
          allocator time?  The acceptance gate. *)
}

val run :
  ?jobs:int ->
  ?on_generation:(generation:int -> state -> unit) ->
  ?resume:state ->
  ?max_generations:int ->
  events:Wsc_workload.Trace.event array ->
  spec ->
  report
(** Run (or resume) a search to budget exhaustion.  [on_generation]
    fires after each generation merges (the checkpoint hook);
    [max_generations] bounds this invocation — the deterministic
    stand-in for a mid-search kill.  Every search evaluates the paper
    default first, so the report always has its reference point.
    @raise Invalid_argument when resuming against a different spec or
    trace. *)

val sweep_gene :
  ?jobs:int ->
  backend:Wsc_tcmalloc.Config.backend_kind ->
  gene:int ->
  base:Space.genome ->
  Wsc_workload.Trace.event array ->
  (string * Pareto.entry) list
(** Evaluate every grid point of one knob with the others pinned at
    [base] — the L/C plateau validation — returning (rendered value,
    objectives) in grid order. *)

(** {1 Checkpoints} *)

val save_checkpoint :
  ?storage:Wsc_os.Storage.t -> ?note:string -> state -> path:string -> unit
(** Atomic kind-["tune"] blob via {!Wsc_persist.Persist.save_blob};
    progress (evaluations done) is readable by [snapshot info]. *)

val load_checkpoint : path:string -> state
(** @raise Wsc_persist.Persist.Corrupt on damage or wrong kind. *)

(** {1 Rendering and gating} *)

val to_json :
  ?wall_s:float -> ?sweeps:(string * (string * Pareto.entry) list) list ->
  report -> string
(** BENCH_tune.json body.  Every search/baseline/front/best/sweep line
    is a deterministic function of the report; [wall_s] is the only
    host-dependent field and is never gated. *)

val check_committed :
  ?sweeps:(string * (string * Pareto.entry) list) list ->
  committed:string -> report -> string list
(** One message per deterministic line of {!to_json} missing from the
    committed file; empty means the gate passes. *)

val pp_front : Format.formatter -> report -> unit
(** Human-readable front table with deltas vs the paper default. *)
