open Wsc_substrate
module Config = Wsc_tcmalloc.Config

type genome = int array

(* One knob = one gene: a grid of values (every baseline value is a grid
   member, so the paper-default config is exactly representable), an
   applicator into [Config.t], and a gating predicate.  The rival
   backends only read the shared reclaim knobs (verified in
   test_tune.ml), so their searches freeze the TCMalloc-specific genes at
   baseline instead of burning evaluations on no-op dimensions. *)
type knob = {
  k_name : string;
  k_card : int;
  k_baseline : int;  (* grid index of the baseline value *)
  k_shared : bool;  (* read by the rpmalloc/jemalloc models too *)
  k_apply : Config.t -> int -> Config.t;
  k_render : int -> string;
}

let mib = Units.mib
let kib = Units.kib
let sec = Units.sec

let int_knob name ?(shared = false) values baseline apply =
  {
    k_name = name;
    k_card = Array.length values;
    k_baseline = baseline;
    k_shared = shared;
    k_apply = (fun cfg i -> apply cfg values.(i));
    k_render = (fun i -> string_of_int values.(i));
  }

let bytes_knob name ?shared values baseline apply =
  let k = int_knob name ?shared values baseline apply in
  { k with k_render = (fun i -> Units.bytes_to_string values.(i)) }

let bool_knob name baseline apply =
  {
    k_name = name;
    k_card = 2;
    k_baseline = (if baseline then 1 else 0);
    k_shared = false;
    k_apply = (fun cfg i -> apply cfg (i = 1));
    k_render = (fun i -> if i = 1 then "on" else "off");
  }

let interval_knob name values baseline apply =
  {
    k_name = name;
    k_card = Array.length values;
    k_baseline = baseline;
    k_shared = false;
    k_apply = (fun cfg i -> apply cfg values.(i));
    k_render = (fun i -> Units.duration_to_string values.(i));
  }

let intervals = [| 0.25 *. sec; 0.5 *. sec; 1.0 *. sec; 2.0 *. sec; 4.0 *. sec |]

let knobs =
  [|
    bytes_knob "per_cpu_cache_bytes"
      [| 512 * kib; mib; 3 * mib / 2; 2 * mib; 3 * mib; 4 * mib; 6 * mib; 8 * mib |]
      4
      (fun cfg v -> { cfg with Config.per_cpu_cache_bytes = v });
    int_knob "per_cpu_class_cap"
      [| 256; 512; 1024; 2048; 4096 |]
      3
      (fun cfg v -> { cfg with Config.per_cpu_class_cap_objects = v });
    bool_knob "dynamic_cpu_caches" false (fun cfg v ->
        { cfg with Config.dynamic_per_cpu_caches = v });
    bytes_knob "transfer_bytes_per_class"
      [| 16 * kib; 32 * kib; 64 * kib; 128 * kib; 256 * kib |]
      2
      (fun cfg v -> { cfg with Config.transfer_cache_bytes_per_class = v });
    bool_knob "nuca_transfer_cache" false (fun cfg v ->
        { cfg with Config.nuca_aware_transfer_cache = v });
    interval_knob "transfer_release_interval" intervals 2 (fun cfg v ->
        { cfg with Config.transfer_release_interval_ns = v });
    bool_knob "span_prioritization" false (fun cfg v ->
        { cfg with Config.span_prioritization = v });
    int_knob "cfl_lists"
      [| 1; 2; 4; 8; 16; 32 |]
      3
      (fun cfg v -> { cfg with Config.cfl_lists = v });
    bool_knob "lifetime_filler" false (fun cfg v ->
        { cfg with Config.lifetime_aware_filler = v });
    int_knob "lifetime_threshold"
      [| 2; 4; 8; 16; 32; 64 |]
      3
      (fun cfg v -> { cfg with Config.lifetime_capacity_threshold = v });
    interval_knob "pageheap_release_interval" intervals 2 (fun cfg v ->
        { cfg with Config.pageheap_release_interval_ns = v });
    {
      k_name = "pageheap_release_fraction";
      k_card = 6;
      k_baseline = 2;
      k_shared = false;
      k_apply =
        (fun cfg i ->
          { cfg with Config.pageheap_release_fraction = [| 0.05; 0.1; 0.2; 0.4; 0.8; 1.0 |].(i) });
      k_render = (fun i -> string_of_float [| 0.05; 0.1; 0.2; 0.4; 0.8; 1.0 |].(i));
    };
    interval_knob "stranded_reclaim_interval" intervals 2 (fun cfg v ->
        { cfg with Config.stranded_reclaim_interval_ns = v });
    int_knob "reclaim_retries" ~shared:true
      [| 0; 1; 2; 3; 5; 8 |]
      3
      (fun cfg v -> { cfg with Config.reclaim_retries = v });
    bytes_knob "reclaim_min_target" ~shared:true
      [| mib; 2 * mib; 4 * mib; 8 * mib; 16 * mib; 32 * mib |]
      3
      (fun cfg v -> { cfg with Config.reclaim_min_target_bytes = v });
  |]

let num_genes = Array.length knobs
let cardinality i = knobs.(i).k_card
let gene_name i = knobs.(i).k_name

let active backend i =
  match backend with Config.Tcmalloc -> true | _ -> knobs.(i).k_shared

let baseline = Array.map (fun k -> k.k_baseline) knobs

(* Any int array becomes a canonical genome: wrong length is cut/padded
   with baseline, each gene is folded into its grid (euclidean mod, so
   negative ints are fine), inactive genes are frozen at baseline.  Every
   search path and every decode funnels through here, which is what the
   qcheck round-trip property leans on: no int array can produce a
   config the backend rejects. *)
let clamp ~backend g =
  Array.init num_genes (fun i ->
      if not (active backend i) then knobs.(i).k_baseline
      else if i >= Array.length g then knobs.(i).k_baseline
      else
        let c = knobs.(i).k_card in
        ((g.(i) mod c) + c) mod c)

let decode ~backend g =
  let g = clamp ~backend g in
  let cfg = Config.with_backend backend Config.baseline in
  let cfg = ref cfg in
  Array.iteri (fun i gene -> cfg := knobs.(i).k_apply !cfg gene) g;
  !cfg

let of_bytes ~backend s =
  clamp ~backend (Array.init num_genes (fun i ->
      if i < String.length s then Char.code s.[i] else knobs.(i).k_baseline))

let random ~backend rng =
  Array.init num_genes (fun i ->
      if active backend i then Rng.int rng knobs.(i).k_card
      else knobs.(i).k_baseline)

(* Per-gene resample at [rate]; if no draw fired, one active gene is
   forced to a different value so mutation never returns its input
   (unless the backend leaves a single-point space). *)
let mutate ?(rate = 0.15) ~backend rng g =
  let g = clamp ~backend g in
  let out = Array.copy g in
  let changed = ref false in
  for i = 0 to num_genes - 1 do
    if active backend i && Rng.bernoulli rng rate then begin
      out.(i) <- Rng.int rng knobs.(i).k_card;
      if out.(i) <> g.(i) then changed := true
    end
  done;
  if not !changed then begin
    let eligible =
      Array.of_list
        (List.filter
           (fun i -> active backend i && knobs.(i).k_card > 1)
           (List.init num_genes Fun.id))
    in
    if Array.length eligible > 0 then begin
      let i = Rng.choose rng eligible in
      let shift = 1 + Rng.int rng (knobs.(i).k_card - 1) in
      out.(i) <- (g.(i) + shift) mod knobs.(i).k_card
    end
  end;
  out

let crossover rng a b =
  Array.init num_genes (fun i -> if Rng.bool rng then a.(i) else b.(i))

(* All +/-1 grid steps on active genes: the hill-climb neighborhood. *)
let neighbors ~backend g =
  let g = clamp ~backend g in
  let out = ref [] in
  for i = num_genes - 1 downto 0 do
    if active backend i then begin
      if g.(i) + 1 < knobs.(i).k_card then begin
        let n = Array.copy g in
        n.(i) <- g.(i) + 1;
        out := n :: !out
      end;
      if g.(i) > 0 then begin
        let n = Array.copy g in
        n.(i) <- g.(i) - 1;
        out := n :: !out
      end
    end
  done;
  !out

let key g = String.concat "." (Array.to_list (Array.map string_of_int g))

let render i v = knobs.(i).k_render v

let describe g =
  let parts = ref [] in
  for i = num_genes - 1 downto 0 do
    if g.(i) <> knobs.(i).k_baseline then
      parts := Printf.sprintf "%s=%s" knobs.(i).k_name (knobs.(i).k_render g.(i)) :: !parts
  done;
  match !parts with [] -> "paper-default" | parts -> String.concat " " parts
