open Wsc_substrate

type config = { seed : int; preempt_prob : float; max_restarts : int }

let default_preempt_prob = 0.001

let describe c =
  if c.preempt_prob <= 0.0 then
    Printf.sprintf "rseq: churn-driven aborts only, restart budget %d" c.max_restarts
  else
    Printf.sprintf "rseq: preempt-prob %g/step, restart budget %d" c.preempt_prob
      c.max_restarts

type step = Read_vcpu | Pick_class | Prepare | Commit

let all_steps = [ Read_vcpu; Pick_class; Prepare; Commit ]
let n_steps = List.length all_steps

let step_name = function
  | Read_vcpu -> "read-vcpu"
  | Pick_class -> "pick-class"
  | Prepare -> "prepare"
  | Commit -> "commit"

let step_of_index = function
  | 0 -> Read_vcpu
  | 1 -> Pick_class
  | 2 -> Prepare
  | 3 -> Commit
  | i -> invalid_arg (Printf.sprintf "Rseq.step_of_index: %d not in [0, %d)" i n_steps)

type 'a staged = { value : 'a; commit : unit -> unit }
type 'a result = { outcome : 'a option; restarts : int }

type stats = {
  ops : int;
  committed : int;
  restarts : int;
  fallbacks : int;
  forced_aborts : int;
}

type t = {
  config : config;
  rng : Rng.t;  (* involuntary-preemption stream, per-process *)
  mutable armed : step option;  (* one-shot forced abort (migration / test) *)
  mutable ops : int;
  mutable committed : int;
  mutable total_restarts : int;
  mutable fallbacks : int;
  mutable forced_aborts : int;
}

let create ?(index = 0) config =
  if config.preempt_prob < 0.0 || config.preempt_prob >= 1.0 then
    invalid_arg "Rseq.create: preempt_prob must be in [0, 1)";
  if config.max_restarts < 0 then invalid_arg "Rseq.create: max_restarts must be >= 0";
  {
    config;
    rng = Rng.create (config.seed + (7919 * index) + 13);
    armed = None;
    ops = 0;
    committed = 0;
    total_restarts = 0;
    fallbacks = 0;
    forced_aborts = 0;
  }

let config t = t.config
let note_migration t = t.armed <- Some Read_vcpu
let force_preempt t ~step = t.armed <- Some step

let preempted_at t step =
  match t.armed with
  | Some s when s = step ->
    t.armed <- None;
    t.forced_aborts <- t.forced_aborts + 1;
    true
  | Some _ | None ->
    t.config.preempt_prob > 0.0 && Rng.bernoulli t.rng t.config.preempt_prob

let run t ~read_vcpu ~stage =
  t.ops <- t.ops + 1;
  let rec attempt restarts =
    (* One pass through the critical section.  Every step may be the
       preemption point; past the last one the commit store is considered
       to have landed, so all mutation happens exactly once or never. *)
    let outcome =
      if preempted_at t Read_vcpu then None
      else begin
        let vcpu = read_vcpu () in
        if preempted_at t Pick_class then None
        else begin
          let staged = stage ~vcpu in
          if preempted_at t Prepare || preempted_at t Commit then None
          else begin
            staged.commit ();
            Some staged.value
          end
        end
      end
    in
    match outcome with
    | Some v ->
      t.committed <- t.committed + 1;
      { outcome = Some v; restarts }
    | None ->
      if restarts >= t.config.max_restarts then begin
        t.fallbacks <- t.fallbacks + 1;
        { outcome = None; restarts }
      end
      else begin
        t.total_restarts <- t.total_restarts + 1;
        attempt (restarts + 1)
      end
  in
  attempt 0

(* Allocation-free twin of [run] for the per-event fast paths: instead of a
   staged record per attempt, the caller supplies [prepare] (stages into a
   reusable buffer it owns) and [commit] (applies that buffer), both
   preallocated closures.  The preemption-point structure and RNG draw
   order are identical to [run], so swapping a call site between the two
   changes no simulated outcome.  Returns [restarts >= 0] when the
   operation committed after that many restarts, and [-1 - restarts] when
   the restart budget ran out (fallback). *)
let run_op t ~read_vcpu ~prepare ~commit =
  t.ops <- t.ops + 1;
  let rec attempt restarts =
    let committed =
      if preempted_at t Read_vcpu then false
      else begin
        let vcpu = read_vcpu () in
        if preempted_at t Pick_class then false
        else begin
          prepare vcpu;
          if preempted_at t Prepare || preempted_at t Commit then false
          else begin
            commit ();
            true
          end
        end
      end
    in
    if committed then begin
      t.committed <- t.committed + 1;
      restarts
    end
    else if restarts >= t.config.max_restarts then begin
      t.fallbacks <- t.fallbacks + 1;
      -1 - restarts
    end
    else begin
      t.total_restarts <- t.total_restarts + 1;
      attempt (restarts + 1)
    end
  in
  attempt 0

let stats t =
  {
    ops = t.ops;
    committed = t.committed;
    restarts = t.total_restarts;
    fallbacks = t.fallbacks;
    forced_aborts = t.forced_aborts;
  }
