(** Deterministic fault injection for memory-pressure experiments.

    Fleet machines fail in correlated, repeatable ways: transient mmap
    refusals under overcommit, memory-pressure spikes when a co-located job
    balloons, and scheduler churn that migrates a process across CPUs.  This
    module turns those into seeded, reproducible streams so that paired-seed
    A/B experiments can compare allocator configs under {e identical} fault
    schedules:

    - {b transient mmap failures} — a per-process Bernoulli stream (with
      optional consecutive-failure bursts) consulted by {!Vm.mmap} through
      the fault hook;
    - {b pressure spikes} — machine-level windows during which co-located
      jobs transiently consume extra bytes, tightening this process's
      effective memory limits.  A pure function of (seed, time), so every
      process and both A/B arms observe the same spike train;
    - {b CPU churn} — periodic bursts after which the driver retires every
      active vCPU, forcing dense-id reuse and cache restranding. *)

type config = {
  seed : int;  (** Root seed of every fault stream. *)
  mmap_failure_rate : float;  (** Per-mmap transient failure probability, [0, 1). *)
  mmap_failure_burst : int;
      (** Consecutive mmaps failed per injected fault (>= 1); models
          multi-call compaction stalls.  A burst longer than the allocator's
          reclaim retry budget turns a transient fault into an OOM. *)
  pressure_period_ns : float;  (** One spike per period; 0 disables spikes. *)
  pressure_duration_ns : float;  (** Length of each spike window. *)
  pressure_bytes : int;
      (** Nominal spike magnitude; each spike is deterministically scaled
          to [0.5x, 1.5x). *)
  cpu_churn_period_ns : float;  (** Interval between churn bursts; 0 disables. *)
}

val no_faults : config
(** All streams disabled (seed 0, every rate/period zero). *)

val describe : config -> string

type t

val create : ?index:int -> clock:Wsc_substrate.Clock.t -> config -> t
(** One per-process instance.  [index] (e.g. the job's slot on a machine)
    perturbs the transient-failure stream so co-located processes fail
    independently, while pressure windows stay machine-wide.
    @raise Invalid_argument on out-of-range rate or burst. *)

val install : t -> vm:Vm.t -> unit
(** Wire the transient-failure and pressure hooks into [vm] (only the
    streams the config enables). *)

val transient_mmap_failure : t -> bool
(** Draw the next transient-failure decision (advances the stream and the
    failure counter).  Normally called via the installed hook. *)

val pressure_bytes_at : t -> now:float -> int
(** Co-located pressure at an arbitrary time (pure). *)

val pressure_bytes : t -> int
(** Pressure at the clock's current time. *)

val churn_due : t -> now:float -> bool
(** Whether a churn burst fired since the last call; consumes it and
    schedules the next. *)

val injected_failures : t -> int
(** Transient failures injected so far. *)

val churn_bursts : t -> int
(** Churn bursts consumed so far via {!churn_due}.  Consumers must treat
    each burst as a migration: retire every active vCPU {e and} flush the
    retired caches (or register them for stranded-cache reclaim) — a burst
    that only drops the ids silently orphans their cache contents. *)

val config : t -> config

(** {2 Machine-level chaos}

    Campaign-grade failure injection: where the streams above perturb a
    {e running} process (mmap refusals, pressure, churn), chaos decides
    whether a whole simulated machine's run attempt crashes, hangs past
    its deadline, or returns a corrupted result.  The schedule is a pure
    function of (seed, machine index, attempt), so a retried or resumed
    machine replays the identical failure history regardless of domain
    count or execution order — the property {!Wsc_fleet.Campaign}'s
    bit-identical aggregation rests on. *)

type chaos = {
  chaos_seed : int;  (** Root seed of the schedule. *)
  crash_prob : float;  (** Per-attempt probability of a mid-run crash. *)
  hang_prob : float;
      (** Per-attempt probability of a simulated-clock stall past the
          machine's deadline (detected as a straggler). *)
  corrupt_prob : float;  (** Per-attempt probability of a damaged result. *)
}

val no_chaos : chaos
(** Every mode disabled. *)

val validate_chaos : chaos -> unit
(** @raise Invalid_argument unless each probability is in [0, 1] and the
    modes sum to at most 1 (they are mutually exclusive per attempt). *)

val describe_chaos : chaos -> string

type chaos_event =
  | Chaos_crash of { at_fraction : float }
      (** Raise after [at_fraction] of the attempt's simulated duration. *)
  | Chaos_hang of { at_fraction : float; stall_factor : float }
      (** At [at_fraction] of the run, stall the simulated clock by
          [stall_factor] times the machine's deadline — guaranteed to trip
          the straggler check. *)
  | Chaos_corrupt  (** Complete the run, then damage the result summary. *)

val chaos_event : chaos -> machine:int -> attempt:int -> chaos_event option
(** The (pure, seeded) failure drawn for this machine's [attempt]
    (1-based); [None] means the attempt runs clean. *)

(** {2 Storage chaos}

    Durable-artifact fault injection: bit rot, torn writes, truncations and
    rename failures applied to the bytes {!Wsc_trace.Writer} and
    [Wsc_persist.Persist] put on disk.  Every decision is a pure function of
    (seed, path, op index) — the op index counts IO operations per path — so
    a corruption scenario observed once can be replayed exactly in a test or
    bench.  The schedules are consumed by {!Storage}, the IO shim the
    writers thread their bytes through. *)

type storage = {
  storage_seed : int;  (** Root seed of every storage-fault stream. *)
  flip_rate : float;
      (** Per-byte probability that a written byte lands with one bit
          flipped (media bit rot).  [1e-6] ~ one flip per MiB written. *)
  torn_write_rate : float;
      (** Per-write-op probability the write is torn: a prefix of the
          buffer lands and everything after it (including later writes to
          the same file) is lost, modelling a crash mid-write. *)
  truncate_rate : float;
      (** Per-close probability the file loses a tail of deterministically
          chosen length (lost page-cache writeback). *)
  rename_failure_rate : float;
      (** Per-rename probability the atomic publish rename fails, leaving
          the temporary file behind and the destination untouched. *)
}

val no_storage_faults : storage
(** Every mode disabled. *)

val storage_active : storage -> bool
(** Whether any fault stream is enabled. *)

val validate_storage : storage -> unit
(** @raise Invalid_argument unless every rate is in [0, 1]. *)

val describe_storage : storage -> string

type write_damage = {
  torn_at : int option;
      (** [Some k]: only the first [k] bytes of this write land and the
          file is dead to further writes.  Flips at offsets >= [k] are
          moot. *)
  flips : (int * int) list;
      (** [(offset within the write, bit index)] pairs, ascending. *)
}

val no_write_damage : write_damage

val write_damage : storage -> path:string -> op_index:int -> len:int -> write_damage
(** The (pure) damage drawn for the [op_index]-th IO op on [path], a write
    of [len] bytes.  Flip offsets use geometric gap sampling, so cost is
    proportional to the number of flips, not [len]. *)

val truncate_loss : storage -> path:string -> op_index:int -> len:int -> int
(** Bytes to chop off the tail of a [len]-byte file at close (0 = none). *)

val rename_fails : storage -> path:string -> op_index:int -> bool
(** Whether the [op_index]-th IO op on [path], a rename, fails. *)
