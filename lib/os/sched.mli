(** Process CPU placement.

    The control plane confines each co-located job to a CPU quota — a subset
    of the machine's logical CPUs (Sec. 3, "workloads are often co-located,
    and constrained to run on a subset of CPUs").  A scheduler instance owns
    that quota and places worker threads on it round-robin, keeping SMT
    siblings and domain neighbours adjacent so that a small thread pool stays
    within few LLC domains while a large one spans several — the situation
    the NUCA-aware transfer cache targets. *)

type t

val create : Wsc_hw.Topology.t -> quota:int list -> t
(** [create topology ~quota] with [quota] the logical CPUs this process may
    use, in placement-preference order.  @raise Invalid_argument on an empty
    quota or out-of-range CPU ids. *)

val whole_machine : Wsc_hw.Topology.t -> t
(** Quota covering every logical CPU. *)

val slice : Wsc_hw.Topology.t -> first_cpu:int -> cpus:int -> t
(** Contiguous quota of [cpus] logical CPUs starting at [first_cpu]
    (wraps around the machine if needed). *)

val spread : Wsc_hw.Topology.t -> first_cpu:int -> cpus:int -> domains:int -> t
(** Quota of [cpus] CPUs interleaved round-robin across [domains]
    consecutive LLC domains starting at the domain of [first_cpu] — the
    placement a load-balancing scheduler produces for services too large
    (or too spiky) to pin to one cache domain (Sec. 4.2). *)

val quota_size : t -> int

val cpu_of_thread : t -> thread:int -> int
(** Physical CPU running worker thread [thread] (round-robin over the
    quota).  Threads beyond the quota share CPUs. *)

val domains_used : t -> active_threads:int -> int list
(** Distinct LLC domains touched when the first [active_threads] worker
    threads are running, ascending. *)

val topology : t -> Wsc_hw.Topology.t
val quota : t -> int array
