type t = {
  by_phys : (int, int) Hashtbl.t;
  by_id : (int, int) Hashtbl.t;  (* vCPU id -> phys CPU currently holding it *)
  mutable free_ids : int list;  (* sorted ascending *)
  mutable next_fresh : int;
  mutable high_water : int;
}

let create () =
  {
    by_phys = Hashtbl.create 64;
    by_id = Hashtbl.create 64;
    free_ids = [];
    next_fresh = 0;
    high_water = 0;
  }

let acquire t ~phys_cpu =
  match Hashtbl.find_opt t.by_phys phys_cpu with
  | Some id -> id
  | None ->
    let id =
      match t.free_ids with
      | id :: rest ->
        t.free_ids <- rest;
        id
      | [] ->
        let id = t.next_fresh in
        t.next_fresh <- id + 1;
        id
    in
    Hashtbl.replace t.by_phys phys_cpu id;
    Hashtbl.replace t.by_id id phys_cpu;
    if id + 1 > t.high_water then t.high_water <- id + 1;
    id

let release t ~phys_cpu =
  match Hashtbl.find_opt t.by_phys phys_cpu with
  | None -> ()
  | Some id ->
    Hashtbl.remove t.by_phys phys_cpu;
    Hashtbl.remove t.by_id id;
    t.free_ids <- List.sort compare (id :: t.free_ids)

let lookup t ~phys_cpu = Hashtbl.find_opt t.by_phys phys_cpu
let active_count t = Hashtbl.length t.by_phys
let high_water_mark t = t.high_water
let is_id_active t id = Hashtbl.mem t.by_id id

let active_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.by_id [] |> List.sort compare
