(* Dense int arrays, not hash tables: [acquire] runs on every malloc/free
   (the front-end cache index), where a Hashtbl lookup costs a hash plus an
   allocated [Some].  -1 marks an empty slot in both directions. *)
type t = {
  mutable by_phys : int array;  (* phys CPU -> vCPU id *)
  mutable by_id : int array;  (* vCPU id -> phys CPU currently holding it *)
  mutable free_ids : int list;  (* sorted ascending *)
  mutable next_fresh : int;
  mutable high_water : int;
  mutable active : int;
}

let create () =
  {
    by_phys = Array.make 64 (-1);
    by_id = Array.make 64 (-1);
    free_ids = [];
    next_fresh = 0;
    high_water = 0;
    active = 0;
  }

let ensure_slot arr i =
  let n = Array.length arr in
  if i < n then arr
  else begin
    let bigger = Array.make (max (i + 1) (2 * n)) (-1) in
    Array.blit arr 0 bigger 0 n;
    bigger
  end

let acquire_slow t ~phys_cpu =
  if phys_cpu < 0 then invalid_arg "Vcpu.acquire: negative physical CPU";
  let id =
    match t.free_ids with
    | id :: rest ->
      t.free_ids <- rest;
      id
    | [] ->
      let id = t.next_fresh in
      t.next_fresh <- id + 1;
      id
  in
  t.by_phys <- ensure_slot t.by_phys phys_cpu;
  t.by_id <- ensure_slot t.by_id id;
  t.by_phys.(phys_cpu) <- id;
  t.by_id.(id) <- phys_cpu;
  t.active <- t.active + 1;
  if id + 1 > t.high_water then t.high_water <- id + 1;
  id

let[@inline] acquire t ~phys_cpu =
  let by_phys = t.by_phys in
  if phys_cpu >= 0 && phys_cpu < Array.length by_phys then begin
    let id = Array.unsafe_get by_phys phys_cpu in
    if id >= 0 then id else acquire_slow t ~phys_cpu
  end
  else acquire_slow t ~phys_cpu

let release t ~phys_cpu =
  if phys_cpu >= 0 && phys_cpu < Array.length t.by_phys then begin
    let id = t.by_phys.(phys_cpu) in
    if id >= 0 then begin
      t.by_phys.(phys_cpu) <- -1;
      t.by_id.(id) <- -1;
      t.active <- t.active - 1;
      t.free_ids <- List.sort compare (id :: t.free_ids)
    end
  end

let lookup t ~phys_cpu =
  if phys_cpu >= 0 && phys_cpu < Array.length t.by_phys then begin
    let id = t.by_phys.(phys_cpu) in
    if id >= 0 then Some id else None
  end
  else None

let active_count t = t.active
let high_water_mark t = t.high_water

let is_id_active t id = id >= 0 && id < Array.length t.by_id && t.by_id.(id) >= 0

let active_ids t =
  let out = ref [] in
  for id = Array.length t.by_id - 1 downto 0 do
    if t.by_id.(id) >= 0 then out := id :: !out
  done;
  !out
