(* Storage-fault IO shim: durable-artifact writers (trace writer, snapshot
   saver) push their bytes through this layer so the deterministic damage
   schedules in {!Fault.storage} apply at the exact byte offsets a real
   fault would hit.  With [Fault.no_storage_faults] the shim is a thin
   wrapper over [out_channel] and produces bit-identical files. *)

type t = {
  faults : Fault.storage;
  ops : (string, int) Hashtbl.t;  (* per-path IO op counter *)
  mutable flips : int;
  mutable torn_writes : int;
  mutable truncations : int;
  mutable truncated_bytes : int;
  mutable rename_failures : int;
}

let create ?(faults = Fault.no_storage_faults) () =
  Fault.validate_storage faults;
  {
    faults;
    ops = Hashtbl.create 7;
    flips = 0;
    torn_writes = 0;
    truncations = 0;
    truncated_bytes = 0;
    rename_failures = 0;
  }

let faults t = t.faults
let active t = Fault.storage_active t.faults
let flips t = t.flips
let torn_writes t = t.torn_writes
let truncations t = t.truncations
let truncated_bytes t = t.truncated_bytes
let rename_failures t = t.rename_failures

let next_op t path =
  let n = try Hashtbl.find t.ops path with Not_found -> 0 in
  Hashtbl.replace t.ops path (n + 1);
  n

type oc = {
  owner : t;
  path : string;
  ch : out_channel;
  mutable written : int;
  mutable dead : bool;  (* a torn write happened: the tail of the file is
                           gone, so every later write is silently dropped *)
}

let open_out t path =
  { owner = t; path; ch = Stdlib.open_out_bin path; written = 0; dead = false }

let output oc buf pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Storage.output";
  if (not oc.dead) && len > 0 then begin
    let t = oc.owner in
    let damage =
      if active t then
        Fault.write_damage t.faults ~path:oc.path ~op_index:(next_op t oc.path)
          ~len
      else Fault.no_write_damage
    in
    match damage with
    | { Fault.torn_at = None; flips = [] } ->
        Stdlib.output oc.ch buf pos len;
        oc.written <- oc.written + len
    | { Fault.torn_at; flips } ->
        let cut = match torn_at with Some k -> k | None -> len in
        if torn_at <> None then begin
          oc.dead <- true;
          t.torn_writes <- t.torn_writes + 1
        end;
        if cut > 0 then begin
          let copy = Bytes.sub buf pos cut in
          List.iter
            (fun (off, bit) ->
              if off < cut then begin
                Bytes.set copy off
                  (Char.chr (Char.code (Bytes.get copy off) lxor (1 lsl bit)));
                t.flips <- t.flips + 1
              end)
            flips;
          Stdlib.output oc.ch copy 0 cut;
          oc.written <- oc.written + cut
        end
  end

let output_string oc s = output oc (Bytes.unsafe_of_string s) 0 (String.length s)

let fsync oc =
  Stdlib.flush oc.ch;
  try Unix.fsync (Unix.descr_of_out_channel oc.ch) with Unix.Unix_error _ -> ()

let close oc =
  let t = oc.owner in
  Stdlib.close_out oc.ch;
  if (not oc.dead) && active t then begin
    let loss =
      Fault.truncate_loss t.faults ~path:oc.path ~op_index:(next_op t oc.path)
        ~len:oc.written
    in
    if loss > 0 then begin
      let keep = max 0 (oc.written - loss) in
      Unix.truncate oc.path keep;
      t.truncations <- t.truncations + 1;
      t.truncated_bytes <- t.truncated_bytes + (oc.written - keep)
    end
  end

let rename t ~src ~dst =
  if active t && Fault.rename_fails t.faults ~path:dst ~op_index:(next_op t dst)
  then begin
    t.rename_failures <- t.rename_failures + 1;
    false
  end
  else begin
    Sys.rename src dst;
    true
  end

let write_file t path data =
  let oc = open_out t path in
  output oc data 0 (Bytes.length data);
  close oc

(* Fsync the directory itself so the rename that published an artifact
   survives a power cut.  Best-effort: some filesystems refuse directory
   fsync, and losing it only re-opens the crash window the rename closed. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
