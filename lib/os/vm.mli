(** Simulated per-process virtual memory with transparent hugepages.

    The pageheap requests hugepage-aligned blocks via {!mmap}; the kernel
    model backs each mapped 2 MiB region with a transparent hugepage.  A
    region loses its hugepage backing when the allocator {!subrelease}s part
    of it (returning non-hugepage-aligned pieces to the OS breaks the THP,
    Sec. 2.1/4.4) and regains it only if unmapped and remapped.

    Addresses are plain integers in a flat 63-bit space; nothing is ever
    actually stored at them — the simulator tracks placement, not contents. *)

type addr = int

type mmap_failure =
  | Transient_fault
      (** Injected by the fault layer: the kernel transiently refused the
          mapping (overcommit pressure, compaction stall).  Retryable. *)
  | Hard_limit_exceeded
      (** Mapping would push resident bytes (plus any co-located pressure)
          past the process's hard memory limit. *)

exception Mmap_failed of mmap_failure

val failure_name : mmap_failure -> string

type t

val create : unit -> t

val mmap : t -> hugepages:int -> addr
(** Map a run of [hugepages] contiguous, 2 MiB-aligned hugepages and return
    the base address.  Each hugepage starts intact (THP-backed).
    @raise Invalid_argument when [hugepages <= 0].
    @raise Mmap_failed when the fault hook injects a transient failure or
    the mapping would exceed the hard memory limit. *)

(** {2 Memory limits and fault hooks} *)

val set_soft_limit : t -> int option -> unit
(** Advisory limit: crossing it never fails an mmap, but
    {!soft_limit_excess} becomes positive so the allocator can start
    reclaiming.  @raise Invalid_argument on non-positive limits. *)

val set_hard_limit : t -> int option -> unit
(** Enforced limit: an {!mmap} that would leave resident bytes (plus
    external pressure) above it raises [Mmap_failed Hard_limit_exceeded]. *)

val soft_limit : t -> int option
val hard_limit : t -> int option

val soft_limit_excess : t -> int
(** Bytes by which resident + external pressure currently exceed the soft
    limit (0 without a soft limit or under it). *)

val set_fault_hook : t -> (bytes:int -> bool) option -> unit
(** Consulted on every {!mmap} before any state changes; returning [true]
    injects a [Transient_fault] failure.  Used by {!Fault}. *)

val set_pressure_hook : t -> (unit -> int) option -> unit
(** Bytes of machine memory transiently consumed by co-located jobs; they
    count against both limits but are not part of this process's RSS. *)

val mmap_failures : t -> int
(** Total failed {!mmap} calls (both failure kinds). *)

val transient_mmap_failures : t -> int
val limit_mmap_failures : t -> int

val munmap : t -> addr -> hugepages:int -> unit
(** Unmap whole hugepages previously obtained from {!mmap}.  [addr] must be
    hugepage-aligned and every hugepage in the run must currently be mapped.
    @raise Invalid_argument on misaligned or unmapped ranges. *)

val subrelease : t -> addr -> pages:int -> unit
(** Return [pages] TCMalloc pages inside the hugepage containing [addr] to
    the OS without unmapping the hugepage.  Breaks that hugepage's THP
    backing permanently (until remapped).  The pages remain addressable (the
    allocator may re-use them) but are not counted as resident.  The
    subreleased count saturates at the hugepage's page count: subreleasing
    more pages than remain resident releases only what is left.
    @raise Invalid_argument if the hugepage is not mapped or [pages <= 0]. *)

val reclaim : t -> addr -> pages:int -> unit
(** Fault back [pages] previously subreleased pages of the hugepage
    containing [addr] (the allocator reused them).  The hugepage stays
    broken.  Reclaiming more pages than were subreleased (including from a
    never-subreleased hugepage) clamps at zero.
    @raise Invalid_argument if the hugepage is not mapped or [pages <= 0]. *)

val is_mapped : t -> addr -> bool
(** Whether the hugepage containing [addr] is mapped. *)

val is_huge_backed : t -> addr -> bool
(** Whether the hugepage containing [addr] is mapped and still THP-backed. *)

val mapped_bytes : t -> int
(** Total bytes in mapped hugepages (whether intact or broken). *)

val resident_bytes : t -> int
(** Mapped bytes minus subreleased ones: the RSS the kernel would report. *)

val huge_backed_bytes : t -> int
(** Bytes residing in intact (THP-backed) hugepages. *)

val mmap_calls : t -> int
val munmap_calls : t -> int
val subrelease_calls : t -> int
val reclaim_calls : t -> int

val hugepage_base : addr -> addr
(** Round an address down to its containing hugepage boundary. *)

val iter_hugepages : t -> (base:addr -> huge:bool -> subreleased_pages:int -> unit) -> unit
(** Visit every mapped hugepage (order unspecified); used by the heap
    auditor to re-derive the aggregate counters. *)
