(** Simulated per-process virtual memory with transparent hugepages.

    The pageheap requests hugepage-aligned blocks via {!mmap}; the kernel
    model backs each mapped 2 MiB region with a transparent hugepage.  A
    region loses its hugepage backing when the allocator {!subrelease}s part
    of it (returning non-hugepage-aligned pieces to the OS breaks the THP,
    Sec. 2.1/4.4) and regains it only if unmapped and remapped.

    Addresses are plain integers in a flat 63-bit space; nothing is ever
    actually stored at them — the simulator tracks placement, not contents. *)

type addr = int

type t

val create : unit -> t

val mmap : t -> hugepages:int -> addr
(** Map a run of [hugepages] contiguous, 2 MiB-aligned hugepages and return
    the base address.  Each hugepage starts intact (THP-backed).
    @raise Invalid_argument when [hugepages <= 0]. *)

val munmap : t -> addr -> hugepages:int -> unit
(** Unmap whole hugepages previously obtained from {!mmap}.  [addr] must be
    hugepage-aligned and every hugepage in the run must currently be mapped.
    @raise Invalid_argument on misaligned or unmapped ranges. *)

val subrelease : t -> addr -> pages:int -> unit
(** Return [pages] TCMalloc pages inside the hugepage containing [addr] to
    the OS without unmapping the hugepage.  Breaks that hugepage's THP
    backing permanently (until remapped).  The pages remain addressable (the
    allocator may re-use them) but are not counted as resident.
    @raise Invalid_argument if the hugepage is not mapped. *)

val reclaim : t -> addr -> pages:int -> unit
(** Fault back [pages] previously subreleased pages of the hugepage
    containing [addr] (the allocator reused them).  The hugepage stays
    broken. *)

val is_mapped : t -> addr -> bool
(** Whether the hugepage containing [addr] is mapped. *)

val is_huge_backed : t -> addr -> bool
(** Whether the hugepage containing [addr] is mapped and still THP-backed. *)

val mapped_bytes : t -> int
(** Total bytes in mapped hugepages (whether intact or broken). *)

val resident_bytes : t -> int
(** Mapped bytes minus subreleased ones: the RSS the kernel would report. *)

val huge_backed_bytes : t -> int
(** Bytes residing in intact (THP-backed) hugepages. *)

val mmap_calls : t -> int
val munmap_calls : t -> int
val subrelease_calls : t -> int

val hugepage_base : addr -> addr
(** Round an address down to its containing hugepage boundary. *)
