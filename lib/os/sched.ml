type t = { topology : Wsc_hw.Topology.t; quota : int array }

let create topology ~quota =
  if quota = [] then invalid_arg "Sched.create: empty quota";
  let n = Wsc_hw.Topology.num_cpus topology in
  List.iter
    (fun cpu -> if cpu < 0 || cpu >= n then invalid_arg "Sched.create: CPU out of range")
    quota;
  { topology; quota = Array.of_list quota }

let whole_machine topology =
  create topology ~quota:(List.init (Wsc_hw.Topology.num_cpus topology) Fun.id)

let slice topology ~first_cpu ~cpus =
  let n = Wsc_hw.Topology.num_cpus topology in
  if cpus <= 0 || cpus > n then invalid_arg "Sched.slice: bad size";
  create topology ~quota:(List.init cpus (fun i -> (first_cpu + i) mod n))

let spread topology ~first_cpu ~cpus ~domains =
  if domains <= 0 then invalid_arg "Sched.spread: need positive domains";
  let total_domains = Wsc_hw.Topology.num_domains topology in
  let domains = min domains total_domains in
  let first_domain = Wsc_hw.Topology.domain_of_cpu topology first_cpu in
  let domain_cpus =
    Array.init domains (fun i ->
        Array.of_list
          (Wsc_hw.Topology.cpus_of_domain topology ((first_domain + i) mod total_domains)))
  in
  let quota =
    List.init cpus (fun i ->
        let d = domain_cpus.(i mod domains) in
        d.(i / domains mod Array.length d))
  in
  create topology ~quota

let quota_size t = Array.length t.quota
let cpu_of_thread t ~thread = t.quota.(thread mod Array.length t.quota)

let domains_used t ~active_threads =
  let k = min active_threads (Array.length t.quota) in
  let module IntSet = Set.Make (Int) in
  let set = ref IntSet.empty in
  for i = 0 to k - 1 do
    set := IntSet.add (Wsc_hw.Topology.domain_of_cpu t.topology t.quota.(i)) !set
  done;
  IntSet.elements !set

let topology t = t.topology
let quota t = Array.copy t.quota
