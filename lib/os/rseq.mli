(** Restartable-sequence (rseq) model for the per-CPU fast path (Sec. 2.1,
    4.1).

    The real allocator's per-CPU caches are only correct because of the
    kernel's restartable sequences: a critical section that reads the
    current CPU id and manipulates that CPU's cache is {e aborted} by the
    kernel whenever the thread is preempted or migrated mid-sequence, and
    the thread restarts it from the top on whatever CPU it now occupies.
    Mutation is confined to a single final commit, so an aborted attempt
    leaves no trace.

    This module reproduces that protocol as a four-step critical section

    {v read-vcpu -> pick-class -> prepare -> commit v}

    with a seeded injector that can preempt at {e any} step: a per-step
    Bernoulli draw models involuntary context switches, and one-shot armed
    aborts ({!note_migration}, {!force_preempt}) model scheduler migrations
    (CPU churn) and deterministic test injection.  A preempted attempt
    performs {e no} mutation; the operation restarts with a freshly read
    vCPU id, up to a bounded restart budget, after which the caller must
    take its lock-protected slow path (the transfer cache).

    The caller supplies the section body as a staged operation: a pure
    read/prepare phase producing a value plus a [commit] closure holding
    every mutation.  {!Wsc_tcmalloc.Per_cpu_cache} exposes its fast-path
    operations in exactly this shape. *)

type config = {
  seed : int;  (** Root seed of the preemption stream. *)
  preempt_prob : float;  (** Per-step preemption probability, [0, 1). *)
  max_restarts : int;  (** Restarts allowed before falling back (>= 0). *)
}

val default_preempt_prob : float
(** 0.001 — roughly one interrupted operation per 250 fast-path ops, the
    CLI's default when [--rseq] is given without [--preempt-prob]. *)

val describe : config -> string

(** The four preemption points of one fast-path operation. *)
type step =
  | Read_vcpu  (** Reading the dense vCPU id (stale after a migration). *)
  | Pick_class  (** Indexing the per-(vCPU, class) stack. *)
  | Prepare  (** Staging the pop/push (reads only; nothing written). *)
  | Commit  (** Preempted just before the single committing store lands. *)

val all_steps : step list
val n_steps : int
val step_name : step -> string

val step_of_index : int -> step
(** Inverse of position in {!all_steps}.  @raise Invalid_argument outside
    [0, n_steps). *)

(** A staged operation: [value] is what the attempt will return, [commit]
    performs every mutation.  The staging phase must be pure so that an
    abort (never calling [commit]) leaves no trace. *)
type 'a staged = { value : 'a; commit : unit -> unit }

type 'a result = {
  outcome : 'a option;
      (** [Some v] when an attempt committed; [None] when the restart
          budget ran out and the caller must take the slow path. *)
  restarts : int;  (** Aborted attempts that were retried. *)
}

type t

val create : ?index:int -> config -> t
(** One per-process injector.  [index] (the job's slot on a machine)
    perturbs the preemption stream so co-located processes are interrupted
    independently.  @raise Invalid_argument on out-of-range
    [preempt_prob] or negative [max_restarts]. *)

val config : t -> config

val run : t -> read_vcpu:(unit -> int) -> stage:(vcpu:int -> 'a staged) -> 'a result
(** Execute one restartable operation.  Each attempt draws a preemption
    decision at every step; surviving all four commits the staged
    operation.  A preempted attempt aborts without mutating (neither
    [read_vcpu] nor [stage] may mutate observable state) and restarts with
    a freshly read vCPU id, at most [max_restarts] times. *)

val run_op :
  t -> read_vcpu:(unit -> int) -> prepare:(int -> unit) -> commit:(unit -> unit) -> int
(** Allocation-free twin of {!run} for per-event fast paths: [prepare vcpu]
    stages into a reusable buffer owned by the caller and [commit] applies
    it, so no staged record is built per attempt.  Preemption points and
    RNG draw order are identical to {!run}.  Returns [restarts >= 0] when
    the operation committed after that many restarts, or [-1 - restarts]
    when the budget ran out and the caller must take its slow path.  All
    three closures are expected to be preallocated by the caller. *)

val note_migration : t -> unit
(** Arm a one-shot forced preemption at {!Read_vcpu}: the scheduler moved
    this process (CPU churn retired a vCPU), so the next fast-path attempt
    finds its CPU id stale and must abort-and-restart.  Idempotent until
    consumed. *)

val force_preempt : t -> step:step -> unit
(** Arm a one-shot forced preemption at an exact step (deterministic test
    injection, independent of [preempt_prob]). *)

type stats = {
  ops : int;  (** Operations entered. *)
  committed : int;  (** Operations whose final attempt committed. *)
  restarts : int;  (** Total abort-and-restart transitions. *)
  fallbacks : int;  (** Operations that exhausted the restart budget. *)
  forced_aborts : int;  (** Armed (migration / forced) preemptions consumed. *)
}

val stats : t -> stats
