(** Virtual CPU ids (Sec. 4.1).

    The kernel's rseq extension exposes a process-private, dense virtual CPU
    id space: if an application only ever runs on two cores at a time, its
    threads observe vCPU ids 0 and 1 regardless of which physical cores they
    occupy.  TCMalloc indexes its per-CPU caches by vCPU id, which decouples
    the front-end footprint from the physical CPU count of ever-larger
    platforms.

    The model assigns the lowest free vCPU id to each physical CPU that
    becomes active, and releases ids when the CPU goes idle, so a shrinking
    thread pool vacates the *highest* ids first — the source of the usage
    bias in Fig. 9b. *)

type t

val create : unit -> t

val acquire : t -> phys_cpu:int -> int
(** vCPU id for a physical CPU that is (about to be) running this process's
    threads.  Idempotent while the CPU stays active. *)

val release : t -> phys_cpu:int -> unit
(** The physical CPU no longer runs this process; its vCPU id becomes
    reusable.  Idempotent. *)

val lookup : t -> phys_cpu:int -> int option
(** Current vCPU id of an active physical CPU. *)

val active_count : t -> int
(** Number of currently assigned vCPU ids. *)

val high_water_mark : t -> int
(** Largest vCPU id ever assigned + 1 = number of per-CPU caches TCMalloc has
    had to populate. *)

val is_id_active : t -> int -> bool
(** Whether a vCPU id is currently assigned to some physical CPU.  A
    populated per-CPU cache whose id is inactive is {e stranded} until the
    id is reused or the stranded-cache reclaim pass drains it. *)

val active_ids : t -> int list
(** Currently assigned vCPU ids, ascending. *)
