(** Storage-fault IO shim for durable artifacts.

    {!Wsc_trace.Writer} and [Wsc_persist.Persist] write their bytes through
    this layer instead of a bare [out_channel].  A shim built with
    {!Fault.no_storage_faults} (the default) is transparent — files come
    out bit-identical to direct channel IO — while one built with an active
    {!Fault.storage} config injects the deterministic damage schedule
    (bit flips, torn writes, truncations, rename failures) at the exact
    byte offsets drawn for [(seed, path, op_index)], so every corruption
    scenario the salvage layer must survive is reproducible in tests and
    benches.

    One shim instance carries the per-path op counters; reuse the same
    instance for every file of one experiment so op indices (and therefore
    damage) stay stable across runs. *)

type t

val create : ?faults:Fault.storage -> unit -> t
(** A fresh shim (op counters at zero).  Default: no faults.
    @raise Invalid_argument if a fault rate is out of range. *)

val faults : t -> Fault.storage
val active : t -> bool
(** Whether any fault stream is enabled. *)

(** {2 Streaming writes} *)

type oc
(** A fault-injected output file, opened in binary mode. *)

val open_out : t -> string -> oc

val output : oc -> bytes -> int -> int -> unit
(** [output oc buf pos len] — one IO op.  Damage drawn for this op may
    flip bits within the landed bytes or tear the write: a torn write
    lands only a prefix and silently drops every later write to this file
    (the in-memory writer keeps going, as it would before a crash).
    @raise Invalid_argument on an out-of-bounds range. *)

val output_string : oc -> string -> unit

val fsync : oc -> unit
(** Flush and fsync (best-effort; errors are swallowed). *)

val close : oc -> unit
(** Close the file, then apply this path's truncation draw (a lost tail of
    deterministic length), if any. *)

(** {2 Whole files and publishing} *)

val write_file : t -> string -> bytes -> unit
(** Write [data] as a single IO op and close (applies flip, torn-write and
    truncation draws). *)

val rename : t -> src:string -> dst:string -> bool
(** Atomic publish.  [false] means the rename failure draw fired: [dst] is
    untouched and [src] is left behind, exactly like a crashed process —
    callers must treat it as a failed save, never retry silently. *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory, making a just-published rename
    durable. *)

(** {2 Damage counters} *)

val flips : t -> int
(** Bytes that landed with a flipped bit. *)

val torn_writes : t -> int
val truncations : t -> int
val truncated_bytes : t -> int
val rename_failures : t -> int
