open Wsc_substrate

type config = {
  seed : int;
  mmap_failure_rate : float;
  mmap_failure_burst : int;
  pressure_period_ns : float;
  pressure_duration_ns : float;
  pressure_bytes : int;
  cpu_churn_period_ns : float;
}

let no_faults =
  {
    seed = 0;
    mmap_failure_rate = 0.0;
    mmap_failure_burst = 1;
    pressure_period_ns = 0.0;
    pressure_duration_ns = 0.0;
    pressure_bytes = 0;
    cpu_churn_period_ns = 0.0;
  }

let describe c =
  let parts = ref [] in
  if c.cpu_churn_period_ns > 0.0 then
    parts := Printf.sprintf "cpu-churn every %.1fs" (c.cpu_churn_period_ns /. Units.sec) :: !parts;
  if c.pressure_period_ns > 0.0 && c.pressure_bytes > 0 then
    parts :=
      Printf.sprintf "pressure spikes ~%s every %.1fs"
        (Units.bytes_to_string c.pressure_bytes)
        (c.pressure_period_ns /. Units.sec)
      :: !parts;
  if c.mmap_failure_rate > 0.0 then
    parts := Printf.sprintf "mmap failure rate %.3f" c.mmap_failure_rate :: !parts;
  if !parts = [] then "no faults" else String.concat ", " !parts

type t = {
  config : config;
  clock : Clock.t;
  rng : Rng.t;  (* transient-failure stream, per-process *)
  mutable burst_remaining : int;
  mutable injected : int;
  mutable next_churn : float;
  mutable churn_bursts : int;
}

let create ?(index = 0) ~clock config =
  if config.mmap_failure_rate < 0.0 || config.mmap_failure_rate >= 1.0 then
    invalid_arg "Fault.create: mmap_failure_rate must be in [0, 1)";
  if config.mmap_failure_burst <= 0 then
    invalid_arg "Fault.create: mmap_failure_burst must be positive";
  {
    config;
    clock;
    rng = Rng.create (config.seed + (7919 * index) + 1);
    burst_remaining = 0;
    injected = 0;
    next_churn =
      (if config.cpu_churn_period_ns > 0.0 then
         Clock.now clock +. config.cpu_churn_period_ns
       else infinity);
    churn_bursts = 0;
  }

let transient_mmap_failure t =
  if t.burst_remaining > 0 then begin
    t.burst_remaining <- t.burst_remaining - 1;
    t.injected <- t.injected + 1;
    true
  end
  else if
    t.config.mmap_failure_rate > 0.0
    && Rng.bernoulli t.rng t.config.mmap_failure_rate
  then begin
    t.burst_remaining <- t.config.mmap_failure_burst - 1;
    t.injected <- t.injected + 1;
    true
  end
  else false

(* Pressure spikes are a pure function of (seed, time) so that every query
   order — and both arms of a paired-seed A/B — sees the identical
   machine-level stream.  Each period-long window hides one spike of
   deterministically jittered offset and magnitude. *)
let window_rng seed window = Rng.create ((seed * 1_000_003) lxor (window * 2_654_435_761))

let pressure_bytes_at t ~now =
  let c = t.config in
  if c.pressure_period_ns <= 0.0 || c.pressure_bytes <= 0 || now < 0.0 then 0
  else begin
    let duration = Float.min c.pressure_duration_ns c.pressure_period_ns in
    if duration <= 0.0 then 0
    else begin
      let window = int_of_float (now /. c.pressure_period_ns) in
      let rng = window_rng c.seed window in
      let slack = c.pressure_period_ns -. duration in
      let offset = if slack > 0.0 then Rng.float rng slack else 0.0 in
      let magnitude =
        int_of_float (float_of_int c.pressure_bytes *. (0.5 +. Rng.unit_float rng))
      in
      let into_window = now -. (float_of_int window *. c.pressure_period_ns) in
      if into_window >= offset && into_window < offset +. duration then magnitude else 0
    end
  end

let pressure_bytes t = pressure_bytes_at t ~now:(Clock.now t.clock)

let churn_due t ~now =
  if now >= t.next_churn then begin
    (* Skip any periods an idle driver slept through so the next burst is
       always in the future. *)
    while t.next_churn <= now do
      t.next_churn <- t.next_churn +. t.config.cpu_churn_period_ns
    done;
    t.churn_bursts <- t.churn_bursts + 1;
    true
  end
  else false

let install t ~vm =
  if t.config.mmap_failure_rate > 0.0 then
    Vm.set_fault_hook vm (Some (fun ~bytes:_ -> transient_mmap_failure t));
  if t.config.pressure_period_ns > 0.0 && t.config.pressure_bytes > 0 then
    Vm.set_pressure_hook vm (Some (fun () -> pressure_bytes t))

let injected_failures t = t.injected
let churn_bursts t = t.churn_bursts
let config t = t.config
