open Wsc_substrate

type config = {
  seed : int;
  mmap_failure_rate : float;
  mmap_failure_burst : int;
  pressure_period_ns : float;
  pressure_duration_ns : float;
  pressure_bytes : int;
  cpu_churn_period_ns : float;
}

let no_faults =
  {
    seed = 0;
    mmap_failure_rate = 0.0;
    mmap_failure_burst = 1;
    pressure_period_ns = 0.0;
    pressure_duration_ns = 0.0;
    pressure_bytes = 0;
    cpu_churn_period_ns = 0.0;
  }

let describe c =
  let parts = ref [] in
  if c.cpu_churn_period_ns > 0.0 then
    parts := Printf.sprintf "cpu-churn every %.1fs" (c.cpu_churn_period_ns /. Units.sec) :: !parts;
  if c.pressure_period_ns > 0.0 && c.pressure_bytes > 0 then
    parts :=
      Printf.sprintf "pressure spikes ~%s every %.1fs"
        (Units.bytes_to_string c.pressure_bytes)
        (c.pressure_period_ns /. Units.sec)
      :: !parts;
  if c.mmap_failure_rate > 0.0 then
    parts := Printf.sprintf "mmap failure rate %.3f" c.mmap_failure_rate :: !parts;
  if !parts = [] then "no faults" else String.concat ", " !parts

type t = {
  config : config;
  clock : Clock.t;
  rng : Rng.t;  (* transient-failure stream, per-process *)
  mutable burst_remaining : int;
  mutable injected : int;
  mutable next_churn : float;
  mutable churn_bursts : int;
}

let create ?(index = 0) ~clock config =
  if config.mmap_failure_rate < 0.0 || config.mmap_failure_rate >= 1.0 then
    invalid_arg "Fault.create: mmap_failure_rate must be in [0, 1)";
  if config.mmap_failure_burst <= 0 then
    invalid_arg "Fault.create: mmap_failure_burst must be positive";
  {
    config;
    clock;
    rng = Rng.create (config.seed + (7919 * index) + 1);
    burst_remaining = 0;
    injected = 0;
    next_churn =
      (if config.cpu_churn_period_ns > 0.0 then
         Clock.now clock +. config.cpu_churn_period_ns
       else infinity);
    churn_bursts = 0;
  }

let transient_mmap_failure t =
  if t.burst_remaining > 0 then begin
    t.burst_remaining <- t.burst_remaining - 1;
    t.injected <- t.injected + 1;
    true
  end
  else if
    t.config.mmap_failure_rate > 0.0
    && Rng.bernoulli t.rng t.config.mmap_failure_rate
  then begin
    t.burst_remaining <- t.config.mmap_failure_burst - 1;
    t.injected <- t.injected + 1;
    true
  end
  else false

(* Pressure spikes are a pure function of (seed, time) so that every query
   order — and both arms of a paired-seed A/B — sees the identical
   machine-level stream.  Each period-long window hides one spike of
   deterministically jittered offset and magnitude. *)
let window_rng seed window = Rng.create ((seed * 1_000_003) lxor (window * 2_654_435_761))

let pressure_bytes_at t ~now =
  let c = t.config in
  if c.pressure_period_ns <= 0.0 || c.pressure_bytes <= 0 || now < 0.0 then 0
  else begin
    let duration = Float.min c.pressure_duration_ns c.pressure_period_ns in
    if duration <= 0.0 then 0
    else begin
      let window = int_of_float (now /. c.pressure_period_ns) in
      let rng = window_rng c.seed window in
      let slack = c.pressure_period_ns -. duration in
      let offset = if slack > 0.0 then Rng.float rng slack else 0.0 in
      let magnitude =
        int_of_float (float_of_int c.pressure_bytes *. (0.5 +. Rng.unit_float rng))
      in
      let into_window = now -. (float_of_int window *. c.pressure_period_ns) in
      if into_window >= offset && into_window < offset +. duration then magnitude else 0
    end
  end

let pressure_bytes t = pressure_bytes_at t ~now:(Clock.now t.clock)

let churn_due t ~now =
  if now >= t.next_churn then begin
    (* Skip any periods an idle driver slept through so the next burst is
       always in the future. *)
    while t.next_churn <= now do
      t.next_churn <- t.next_churn +. t.config.cpu_churn_period_ns
    done;
    t.churn_bursts <- t.churn_bursts + 1;
    true
  end
  else false

(* --- Machine-level chaos (campaign failure injection) ----------------- *)

type chaos = {
  chaos_seed : int;
  crash_prob : float;
  hang_prob : float;
  corrupt_prob : float;
}

let no_chaos = { chaos_seed = 0; crash_prob = 0.0; hang_prob = 0.0; corrupt_prob = 0.0 }

let validate_chaos c =
  let check name p =
    if p < 0.0 || p > 1.0 || Float.is_nan p then
      invalid_arg (Printf.sprintf "Fault.validate_chaos: %s must be in [0, 1]" name)
  in
  check "crash_prob" c.crash_prob;
  check "hang_prob" c.hang_prob;
  check "corrupt_prob" c.corrupt_prob;
  if c.crash_prob +. c.hang_prob +. c.corrupt_prob > 1.0 then
    invalid_arg "Fault.validate_chaos: mode probabilities must sum to <= 1"

let describe_chaos c =
  if c.crash_prob = 0.0 && c.hang_prob = 0.0 && c.corrupt_prob = 0.0 then "no chaos"
  else
    Printf.sprintf "crash %.3f, hang %.3f, corrupt %.3f (seed %d)" c.crash_prob
      c.hang_prob c.corrupt_prob c.chaos_seed

type chaos_event =
  | Chaos_crash of { at_fraction : float }
  | Chaos_hang of { at_fraction : float; stall_factor : float }
  | Chaos_corrupt

(* Like pressure spikes, the schedule is a pure function of its
   coordinates — here (seed, machine, attempt) — so a machine retried on a
   different domain, or rebuilt after a resume, replays the identical
   failure history. *)
let chaos_event c ~machine ~attempt =
  if c.crash_prob = 0.0 && c.hang_prob = 0.0 && c.corrupt_prob = 0.0 then None
  else begin
    let rng =
      Rng.create
        (((c.chaos_seed * 1_000_003)
         lxor (machine * 2_654_435_761)
         lxor (attempt * 40_503))
        land max_int)
    in
    let u = Rng.unit_float rng in
    if u < c.crash_prob then Some (Chaos_crash { at_fraction = Rng.unit_float rng })
    else if u < c.crash_prob +. c.hang_prob then
      Some
        (Chaos_hang
           { at_fraction = Rng.unit_float rng; stall_factor = 1.0 +. Rng.unit_float rng })
    else if u < c.crash_prob +. c.hang_prob +. c.corrupt_prob then Some Chaos_corrupt
    else None
  end

(* --- Storage chaos (durable-artifact fault injection) ------------------ *)

type storage = {
  storage_seed : int;
  flip_rate : float;
  torn_write_rate : float;
  truncate_rate : float;
  rename_failure_rate : float;
}

let no_storage_faults =
  {
    storage_seed = 0;
    flip_rate = 0.0;
    torn_write_rate = 0.0;
    truncate_rate = 0.0;
    rename_failure_rate = 0.0;
  }

let storage_active c =
  c.flip_rate > 0.0 || c.torn_write_rate > 0.0 || c.truncate_rate > 0.0
  || c.rename_failure_rate > 0.0

let validate_storage c =
  let check name p =
    if p < 0.0 || p > 1.0 || Float.is_nan p then
      invalid_arg (Printf.sprintf "Fault.validate_storage: %s must be in [0, 1]" name)
  in
  check "flip_rate" c.flip_rate;
  check "torn_write_rate" c.torn_write_rate;
  check "truncate_rate" c.truncate_rate;
  check "rename_failure_rate" c.rename_failure_rate

let describe_storage c =
  if not (storage_active c) then "no storage faults"
  else
    Printf.sprintf
      "flip %.2g/byte, torn %.2g/write, truncate %.2g/close, rename-fail %.2g (seed %d)"
      c.flip_rate c.torn_write_rate c.truncate_rate c.rename_failure_rate
      c.storage_seed

(* Like the chaos schedule, every storage decision is a pure function of its
   coordinates — (seed, path, op_index) — so re-running the same write
   sequence against the same path reproduces the identical damage, byte for
   byte, regardless of process or wall time. *)
let storage_rng c ~path ~op_index =
  Rng.create
    (((c.storage_seed * 1_000_003)
     lxor (Hashtbl.hash path * 2_654_435_761)
     lxor (op_index * 40_503))
    land max_int)

type write_damage = { torn_at : int option; flips : (int * int) list }

let no_write_damage = { torn_at = None; flips = [] }

let write_damage c ~path ~op_index ~len =
  if len <= 0 || (c.flip_rate <= 0.0 && c.torn_write_rate <= 0.0) then
    no_write_damage
  else begin
    let rng = storage_rng c ~path ~op_index in
    let torn_at =
      if c.torn_write_rate > 0.0 && Rng.bernoulli rng c.torn_write_rate then
        Some (Rng.int rng (len + 1))
      else None
    in
    let flips = ref [] in
    if c.flip_rate > 0.0 then begin
      (* Geometric gaps between flips: O(flips) draws instead of O(bytes),
         which keeps even 1e-7 rates cheap over multi-megabyte writes. *)
      let log1m = Stdlib.log (1.0 -. c.flip_rate) in
      let pos = ref 0 in
      (try
         while !pos < len do
           let u = Rng.unit_float rng in
           let skip =
             if u <= 0.0 then 0
             else begin
               let s = Stdlib.log (1.0 -. u) /. log1m in
               if s >= float_of_int len then raise Exit else int_of_float s
             end
           in
           pos := !pos + skip;
           if !pos < len then begin
             flips := (!pos, Rng.int rng 8) :: !flips;
             incr pos
           end
         done
       with Exit -> ());
      flips := List.rev !flips
    end;
    { torn_at; flips = !flips }
  end

let truncate_loss c ~path ~op_index ~len =
  if c.truncate_rate <= 0.0 || len <= 0 then 0
  else begin
    let rng = storage_rng c ~path ~op_index in
    if Rng.bernoulli rng c.truncate_rate then 1 + Rng.int rng len else 0
  end

let rename_fails c ~path ~op_index =
  c.rename_failure_rate > 0.0
  && Rng.bernoulli (storage_rng c ~path ~op_index) c.rename_failure_rate

let install t ~vm =
  if t.config.mmap_failure_rate > 0.0 then
    Vm.set_fault_hook vm (Some (fun ~bytes:_ -> transient_mmap_failure t));
  if t.config.pressure_period_ns > 0.0 && t.config.pressure_bytes > 0 then
    Vm.set_pressure_hook vm (Some (fun () -> pressure_bytes t))

let injected_failures t = t.injected
let churn_bursts t = t.churn_bursts
let config t = t.config
