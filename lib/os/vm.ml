open Wsc_substrate

type addr = int

type hugepage_state = {
  mutable huge : bool;  (* false once broken by subrelease *)
  mutable subreleased_pages : int;
}

type mmap_failure = Transient_fault | Hard_limit_exceeded

exception Mmap_failed of mmap_failure

let failure_name = function
  | Transient_fault -> "transient-fault"
  | Hard_limit_exceeded -> "hard-limit"

type t = {
  mutable next_addr : addr;
  hugepages : (addr, hugepage_state) Hashtbl.t;  (* keyed by hugepage base *)
  mutable mmap_calls : int;
  mutable munmap_calls : int;
  mutable subrelease_calls : int;
  mutable reclaim_calls : int;
  (* Incremental aggregates so per-epoch sampling stays O(1). *)
  mutable mapped_count : int;
  mutable huge_count : int;
  mutable subreleased_total : int;
  (* Memory-pressure model: per-process limits plus external hooks. *)
  mutable soft_limit : int option;
  mutable hard_limit : int option;
  mutable fault_hook : (bytes:int -> bool) option;
  mutable pressure_hook : (unit -> int) option;
  mutable mmap_failures : int;
  mutable mmap_failures_transient : int;
  mutable mmap_failures_limit : int;
}

let hugepage_size = Units.hugepage_size
let page_size = Units.tcmalloc_page_size
let hugepage_base a = a - (a mod hugepage_size)

let create () =
  {
    (* Start away from 0 so address 0 never aliases a valid object. *)
    next_addr = 16 * hugepage_size;
    hugepages = Hashtbl.create 1024;
    mmap_calls = 0;
    munmap_calls = 0;
    subrelease_calls = 0;
    reclaim_calls = 0;
    mapped_count = 0;
    huge_count = 0;
    subreleased_total = 0;
    soft_limit = None;
    hard_limit = None;
    fault_hook = None;
    pressure_hook = None;
    mmap_failures = 0;
    mmap_failures_transient = 0;
    mmap_failures_limit = 0;
  }

let set_soft_limit t limit =
  (match limit with
  | Some b when b <= 0 -> invalid_arg "Vm.set_soft_limit: limit must be positive"
  | _ -> ());
  t.soft_limit <- limit

let set_hard_limit t limit =
  (match limit with
  | Some b when b <= 0 -> invalid_arg "Vm.set_hard_limit: limit must be positive"
  | _ -> ());
  t.hard_limit <- limit

let soft_limit t = t.soft_limit
let hard_limit t = t.hard_limit
let set_fault_hook t hook = t.fault_hook <- hook
let set_pressure_hook t hook = t.pressure_hook <- hook

let external_pressure_bytes t =
  match t.pressure_hook with None -> 0 | Some f -> max 0 (f ())

let resident_bytes_internal t =
  (t.mapped_count * hugepage_size) - (t.subreleased_total * page_size)

let soft_limit_excess t =
  match t.soft_limit with
  | None -> 0
  | Some soft -> max 0 (resident_bytes_internal t + external_pressure_bytes t - soft)

let fail t reason =
  t.mmap_failures <- t.mmap_failures + 1;
  (match reason with
  | Transient_fault -> t.mmap_failures_transient <- t.mmap_failures_transient + 1
  | Hard_limit_exceeded -> t.mmap_failures_limit <- t.mmap_failures_limit + 1);
  raise (Mmap_failed reason)

let mmap t ~hugepages =
  if hugepages <= 0 then invalid_arg "Vm.mmap: hugepages must be positive";
  let bytes = hugepages * hugepage_size in
  (match t.fault_hook with
  | Some hook when hook ~bytes -> fail t Transient_fault
  | Some _ | None -> ());
  (match t.hard_limit with
  | Some limit
    when resident_bytes_internal t + external_pressure_bytes t + bytes > limit ->
    fail t Hard_limit_exceeded
  | Some _ | None -> ());
  let base = t.next_addr in
  t.next_addr <- base + (hugepages * hugepage_size);
  for i = 0 to hugepages - 1 do
    Hashtbl.replace t.hugepages
      (base + (i * hugepage_size))
      { huge = true; subreleased_pages = 0 }
  done;
  t.mapped_count <- t.mapped_count + hugepages;
  t.huge_count <- t.huge_count + hugepages;
  t.mmap_calls <- t.mmap_calls + 1;
  base

let munmap t addr ~hugepages =
  if addr mod hugepage_size <> 0 then invalid_arg "Vm.munmap: misaligned address";
  for i = 0 to hugepages - 1 do
    let hp = addr + (i * hugepage_size) in
    match Hashtbl.find_opt t.hugepages hp with
    | None -> invalid_arg "Vm.munmap: range not mapped"
    | Some s ->
      t.mapped_count <- t.mapped_count - 1;
      if s.huge then t.huge_count <- t.huge_count - 1;
      t.subreleased_total <- t.subreleased_total - s.subreleased_pages;
      Hashtbl.remove t.hugepages hp
  done;
  t.munmap_calls <- t.munmap_calls + 1

let state_exn t addr op =
  match Hashtbl.find_opt t.hugepages (hugepage_base addr) with
  | Some s -> s
  | None -> invalid_arg (op ^ ": hugepage not mapped")

let pages_per_hugepage = hugepage_size / page_size

let subrelease t addr ~pages =
  if pages <= 0 then invalid_arg "Vm.subrelease: pages must be positive";
  let s = state_exn t addr "Vm.subrelease" in
  if s.huge then begin
    s.huge <- false;
    t.huge_count <- t.huge_count - 1
  end;
  let before = s.subreleased_pages in
  s.subreleased_pages <- min pages_per_hugepage (s.subreleased_pages + pages);
  t.subreleased_total <- t.subreleased_total + (s.subreleased_pages - before);
  t.subrelease_calls <- t.subrelease_calls + 1

let reclaim t addr ~pages =
  if pages <= 0 then invalid_arg "Vm.reclaim: pages must be positive";
  let s = state_exn t addr "Vm.reclaim" in
  let before = s.subreleased_pages in
  s.subreleased_pages <- max 0 (s.subreleased_pages - pages);
  t.subreleased_total <- t.subreleased_total - (before - s.subreleased_pages);
  t.reclaim_calls <- t.reclaim_calls + 1

let is_mapped t addr = Hashtbl.mem t.hugepages (hugepage_base addr)

let is_huge_backed t addr =
  match Hashtbl.find_opt t.hugepages (hugepage_base addr) with
  | Some s -> s.huge
  | None -> false

let mapped_bytes t = t.mapped_count * hugepage_size
let resident_bytes t = resident_bytes_internal t
let huge_backed_bytes t = t.huge_count * hugepage_size

let mmap_calls t = t.mmap_calls
let munmap_calls t = t.munmap_calls
let subrelease_calls t = t.subrelease_calls
let reclaim_calls t = t.reclaim_calls
let mmap_failures t = t.mmap_failures
let transient_mmap_failures t = t.mmap_failures_transient
let limit_mmap_failures t = t.mmap_failures_limit

let iter_hugepages t f =
  Hashtbl.iter
    (fun base s -> f ~base ~huge:s.huge ~subreleased_pages:s.subreleased_pages)
    t.hugepages
