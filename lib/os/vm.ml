open Wsc_substrate

type addr = int

type hugepage_state = {
  mutable huge : bool;  (* false once broken by subrelease *)
  mutable subreleased_pages : int;
}

type t = {
  mutable next_addr : addr;
  hugepages : (addr, hugepage_state) Hashtbl.t;  (* keyed by hugepage base *)
  mutable mmap_calls : int;
  mutable munmap_calls : int;
  mutable subrelease_calls : int;
  (* Incremental aggregates so per-epoch sampling stays O(1). *)
  mutable mapped_count : int;
  mutable huge_count : int;
  mutable subreleased_total : int;
}

let hugepage_size = Units.hugepage_size
let page_size = Units.tcmalloc_page_size
let hugepage_base a = a - (a mod hugepage_size)

let create () =
  {
    (* Start away from 0 so address 0 never aliases a valid object. *)
    next_addr = 16 * hugepage_size;
    hugepages = Hashtbl.create 1024;
    mmap_calls = 0;
    munmap_calls = 0;
    subrelease_calls = 0;
    mapped_count = 0;
    huge_count = 0;
    subreleased_total = 0;
  }

let mmap t ~hugepages =
  if hugepages <= 0 then invalid_arg "Vm.mmap: hugepages must be positive";
  let base = t.next_addr in
  t.next_addr <- base + (hugepages * hugepage_size);
  for i = 0 to hugepages - 1 do
    Hashtbl.replace t.hugepages
      (base + (i * hugepage_size))
      { huge = true; subreleased_pages = 0 }
  done;
  t.mapped_count <- t.mapped_count + hugepages;
  t.huge_count <- t.huge_count + hugepages;
  t.mmap_calls <- t.mmap_calls + 1;
  base

let munmap t addr ~hugepages =
  if addr mod hugepage_size <> 0 then invalid_arg "Vm.munmap: misaligned address";
  for i = 0 to hugepages - 1 do
    let hp = addr + (i * hugepage_size) in
    match Hashtbl.find_opt t.hugepages hp with
    | None -> invalid_arg "Vm.munmap: range not mapped"
    | Some s ->
      t.mapped_count <- t.mapped_count - 1;
      if s.huge then t.huge_count <- t.huge_count - 1;
      t.subreleased_total <- t.subreleased_total - s.subreleased_pages;
      Hashtbl.remove t.hugepages hp
  done;
  t.munmap_calls <- t.munmap_calls + 1

let state_exn t addr op =
  match Hashtbl.find_opt t.hugepages (hugepage_base addr) with
  | Some s -> s
  | None -> invalid_arg (op ^ ": hugepage not mapped")

let pages_per_hugepage = hugepage_size / page_size

let subrelease t addr ~pages =
  let s = state_exn t addr "Vm.subrelease" in
  if s.huge then begin
    s.huge <- false;
    t.huge_count <- t.huge_count - 1
  end;
  let before = s.subreleased_pages in
  s.subreleased_pages <- min pages_per_hugepage (s.subreleased_pages + pages);
  t.subreleased_total <- t.subreleased_total + (s.subreleased_pages - before);
  t.subrelease_calls <- t.subrelease_calls + 1

let reclaim t addr ~pages =
  let s = state_exn t addr "Vm.reclaim" in
  let before = s.subreleased_pages in
  s.subreleased_pages <- max 0 (s.subreleased_pages - pages);
  t.subreleased_total <- t.subreleased_total - (before - s.subreleased_pages)

let is_mapped t addr = Hashtbl.mem t.hugepages (hugepage_base addr)

let is_huge_backed t addr =
  match Hashtbl.find_opt t.hugepages (hugepage_base addr) with
  | Some s -> s.huge
  | None -> false

let mapped_bytes t = t.mapped_count * hugepage_size
let resident_bytes t = (t.mapped_count * hugepage_size) - (t.subreleased_total * page_size)
let huge_backed_bytes t = t.huge_count * hugepage_size

let mmap_calls t = t.mmap_calls
let munmap_calls t = t.munmap_calls
let subrelease_calls t = t.subrelease_calls
