(* Versioned snapshot container over Marshal-with-closures state blobs.
   Layout (all integers little-endian, mirroring the trace codec):

     header   : magic "WSCSNAPS" (8) | version u8 | 7 reserved zero bytes
     section* : name_len u8 | name | crc32 u32 | payload_len u64 | payload
     end      : a section literally named "end" with an empty payload
     trailer  : v2 redundancy blob (see below)
     suffix   : t_len u64 | crc32(trailer) u32 | magic "WSCSNAPT"

   The CRC (Wsc_trace.Crc32, IEEE 802.3) covers the payload bytes of each
   section, so a flipped byte is attributed to the section it damaged and
   a truncation to the section it cut short.

   The v2 trailer makes the container self-healing: it carries a directory
   of every section (name, header offset, payload length, CRC) plus full
   redundant copies of the closure-free "meta" and "manifest" payloads,
   all covered by one trailer CRC and found via the fixed-size suffix at
   EOF.  Damage to the sequential section structure is then recoverable
   through the directory (intact payloads are re-located by offset), and
   damage to the small summary sections through the redundant copies.
   Only the "state" payload has no second copy — it dominates the file
   size — so a flipped byte there is still fatal, but attributed.  A
   truncated file loses the trailer first, which costs redundancy, never
   correctness: the sequential parse still works and still attributes the
   damage to the section it cut. *)

open Wsc_substrate
module Crc32 = Wsc_trace.Crc32
module Machine = Wsc_fleet.Machine
module Fleet = Wsc_fleet.Fleet
module Campaign = Wsc_fleet.Campaign
module Driver = Wsc_workload.Driver
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Profile = Wsc_workload.Profile

exception Corrupt of { section : string; reason : string }

let () =
  Printexc.register_printer (function
    | Corrupt { section; reason } ->
      Some (Printf.sprintf "Persist.Corrupt(section %S: %s)" section reason)
    | _ -> None)

let corrupt ~section fmt =
  Printf.ksprintf (fun reason -> raise (Corrupt { section; reason })) fmt

let magic = "WSCSNAPS"
let trailer_magic = "WSCSNAPT"
let format_version = 2
let header_bytes = 16
let trailer_suffix_bytes = 20 (* t_len u64 | crc32 u32 | trailer magic (8) *)

(* --- Summary sections (closure-free, Marshal without flags) ----------- *)

type meta = { kind : string; note : string }

type job_manifest = {
  profile_name : string;
  requests : float;
  allocations : int;
  live_objects : int;
  heap : Malloc.heap_stats;
}

type manifest = { sim_now_ns : float; job_manifests : job_manifest list }

let job_manifest_of ~(profile : Profile.t) driver backend =
  {
    profile_name = profile.Profile.name;
    requests = Driver.requests_completed driver;
    allocations = Driver.allocations driver;
    live_objects = Driver.live_objects driver;
    heap = Backend.heap_stats backend;
  }

let manifest_of_machine machine =
  {
    sim_now_ns = Clock.now (Machine.clock machine);
    job_manifests =
      List.map
        (fun (job : Machine.job) ->
          job_manifest_of ~profile:job.Machine.profile job.Machine.driver
            job.Machine.backend)
        (Machine.jobs machine);
  }

let manifest_of_driver driver =
  {
    sim_now_ns = Clock.now (Backend.clock (Driver.backend driver));
    job_manifests =
      [ job_manifest_of ~profile:(Driver.profile driver) driver (Driver.backend driver) ];
  }

let manifest_of_fleet fleet =
  {
    (* Machines own independent clocks; the latest one is the fleet's
       notion of "now" (they advance in lockstep under Fleet.run). *)
    sim_now_ns =
      List.fold_left
        (fun acc m -> Float.max acc (Clock.now (Machine.clock m)))
        0.0 (Fleet.machines fleet);
    job_manifests =
      List.map
        (fun (job : Machine.job) ->
          job_manifest_of ~profile:job.Machine.profile job.Machine.driver
            job.Machine.backend)
        (Fleet.jobs fleet);
  }

(* --- Writing ---------------------------------------------------------- *)

let add_section buf ~name ~payload =
  Buffer.add_uint8 buf (String.length name);
  Buffer.add_string buf name;
  Buffer.add_int32_le buf (Int32.of_int (Crc32.string payload));
  Buffer.add_int64_le buf (Int64.of_int (String.length payload));
  Buffer.add_string buf payload

(* Build the canonical v2 container from raw section payloads.  This is
   the single construction path for both [save] and [repair], so a repair
   that recovered the original payloads reproduces the original file byte
   for byte. *)
let container_of_payloads ~meta ~manifest ~state =
  let buf = Buffer.create (String.length state + 4096) in
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf format_version;
  Buffer.add_string buf (String.make (header_bytes - String.length magic - 1) '\000');
  let dir = ref [] in
  let sec name payload =
    dir := (name, Buffer.length buf, String.length payload, Crc32.string payload)
           :: !dir;
    add_section buf ~name ~payload
  in
  sec "meta" meta;
  sec "manifest" manifest;
  sec "state" state;
  add_section buf ~name:"end" ~payload:"";
  let t = Buffer.create (String.length meta + String.length manifest + 256) in
  let entries = List.rev !dir in
  Buffer.add_uint8 t (List.length entries);
  List.iter
    (fun (name, off, len, crc) ->
      Buffer.add_uint8 t (String.length name);
      Buffer.add_string t name;
      Buffer.add_int64_le t (Int64.of_int off);
      Buffer.add_int64_le t (Int64.of_int len);
      Buffer.add_int32_le t (Int32.of_int crc))
    entries;
  Buffer.add_int32_le t (Int32.of_int (String.length meta));
  Buffer.add_string t meta;
  Buffer.add_int32_le t (Int32.of_int (String.length manifest));
  Buffer.add_string t manifest;
  let tp = Buffer.contents t in
  Buffer.add_string buf tp;
  Buffer.add_int64_le buf (Int64.of_int (String.length tp));
  Buffer.add_int32_le buf (Int32.of_int (Crc32.string tp));
  Buffer.add_string buf trailer_magic;
  buf

(* Atomic replace, hardened: any stale tmp from a crashed writer is
   removed first, the tmp is fsynced before the rename (so the publish
   can never expose a half-written file after a power cut), and the
   directory is fsynced after it (so the rename itself is durable).
   With [storage], bytes instead go through the fault-injection shim and
   the publish honors its rename-failure draws. *)
let write_atomic ?storage ~path buf =
  let tmp = path ^ ".tmp" in
  if Sys.file_exists tmp then (try Sys.remove tmp with Sys_error _ -> ());
  match storage with
  | None ->
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Buffer.output_buffer oc buf;
        flush oc;
        try Unix.fsync (Unix.descr_of_out_channel oc)
        with Unix.Unix_error _ -> ());
    Sys.rename tmp path;
    Wsc_os.Storage.fsync_dir (Filename.dirname path)
  | Some st ->
    Wsc_os.Storage.write_file st tmp (Buffer.to_bytes buf);
    if Wsc_os.Storage.rename st ~src:tmp ~dst:path then
      Wsc_os.Storage.fsync_dir (Filename.dirname path)

let save ?storage ~path ~kind ~note ~manifest state =
  write_atomic ?storage ~path
    (container_of_payloads
       ~meta:(Marshal.to_string { kind; note } [])
       ~manifest:(Marshal.to_string manifest [])
       ~state)

(* --- Reading ---------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- Tolerant parsing and recovery ------------------------------------ *)

let required_sections = [ "meta"; "manifest"; "state" ]

let name_plausible n =
  String.length n >= 1 && String.length n <= 16
  && String.for_all (fun c -> c >= 'a' && c <= 'z') n

(* Sequential (primary) parse: walk the section structure, CRC-checking
   every payload, but never raise — damaged sections are recorded with
   their reason, and a structural break (truncated or implausible header)
   stops the walk with an attribution.  [data] is the whole file. *)
type primary = {
  (* name -> payload, crc_ok, reason-if-damaged *)
  p_sections : (string * (string * bool * string option)) list;
  p_structural : (string * string) option;
  p_end_seen : bool;
}

let parse_primary data =
  let len = String.length data in
  let pos = ref header_bytes in
  let out = ref [] in
  let structural = ref None in
  let end_seen = ref false in
  let stop ~section fmt =
    Printf.ksprintf
      (fun reason ->
        structural := Some (section, reason);
        raise Exit)
      fmt
  in
  (try
     while not !end_seen do
       if len - !pos < 1 then
         stop ~section:"container" "truncated at byte %d: missing section header"
           !pos;
       let name_len = Char.code data.[!pos] in
       if len - !pos < 1 + name_len + 12 then
         stop ~section:"container" "truncated at byte %d: partial section header"
           !pos;
       let name = String.sub data (!pos + 1) name_len in
       let attribution = if name_plausible name then name else "container" in
       let crc =
         Int32.to_int (String.get_int32_le data (!pos + 1 + name_len))
         land 0xFFFFFFFF
       in
       let payload_len =
         Int64.to_int (String.get_int64_le data (!pos + 1 + name_len + 4))
       in
       let payload_start = !pos + 1 + name_len + 12 in
       if payload_len < 0 || payload_len > len - payload_start then
         stop ~section:attribution "truncated payload: need %d bytes, %d remain"
           payload_len (len - payload_start);
       let payload = String.sub data payload_start payload_len in
       let computed = Crc32.string payload in
       let reason =
         if computed = crc then None
         else
           Some
             (Printf.sprintf "CRC mismatch: stored %08x, computed %08x" crc
                computed)
       in
       pos := payload_start + payload_len;
       if name = "end" && payload_len = 0 && reason = None then end_seen := true
       else out := (name, (payload, reason = None, reason)) :: !out
     done
   with Exit -> ());
  { p_sections = List.rev !out; p_structural = !structural; p_end_seen = !end_seen }

(* The v2 trailer, or [None] if it is damaged, missing, or this walk of
   the bytes does not look like a trailer at all.  A valid trailer proves
   itself with its own CRC, so it can be trusted even when the sequential
   structure is shredded. *)
type trailer = {
  t_dir : (string * (int * int * int)) list; (* name -> header off, len, crc *)
  t_meta : string;
  t_manifest : string;
}

let parse_trailer data =
  let len = String.length data in
  if len < header_bytes + trailer_suffix_bytes then None
  else if String.sub data (len - 8) 8 <> trailer_magic then None
  else begin
    let t_len = Int64.to_int (String.get_int64_le data (len - 20)) in
    let crc = Int32.to_int (String.get_int32_le data (len - 12)) land 0xFFFFFFFF in
    let t_start = len - trailer_suffix_bytes - t_len in
    if t_len < 0 || t_start < header_bytes then None
    else if Crc32.string (String.sub data t_start t_len) <> crc then None
    else
      try
        let pos = ref t_start in
        let u8 () =
          let v = Char.code data.[!pos] in
          incr pos;
          v
        in
        let count = u8 () in
        let dir = ref [] in
        for _ = 1 to count do
          let nl = u8 () in
          let name = String.sub data !pos nl in
          pos := !pos + nl;
          let off = Int64.to_int (String.get_int64_le data !pos) in
          pos := !pos + 8;
          let slen = Int64.to_int (String.get_int64_le data !pos) in
          pos := !pos + 8;
          let scrc = Int32.to_int (String.get_int32_le data !pos) land 0xFFFFFFFF in
          pos := !pos + 4;
          dir := (name, (off, slen, scrc)) :: !dir
        done;
        let str32 () =
          let n = Int32.to_int (String.get_int32_le data !pos) in
          pos := !pos + 4;
          let s = String.sub data !pos n in
          pos := !pos + n;
          s
        in
        let t_meta = str32 () in
        let t_manifest = str32 () in
        if !pos <> t_start + t_len then None
        else Some { t_dir = List.rev !dir; t_meta; t_manifest }
      with Invalid_argument _ -> None
  end

(* Re-locate a section's payload bytes through the trailer directory and
   verify them against the directory's CRC — recovers sections whose
   payloads are intact but whose sequential headers are damaged. *)
let extract_via_dir data trailer name =
  match List.assoc_opt name trailer.t_dir with
  | None -> None
  | Some (off, slen, scrc) ->
    let payload_start = off + 1 + String.length name + 12 in
    if payload_start < header_bytes || slen < 0
       || payload_start + slen > String.length data
    then None
    else
      let payload = String.sub data payload_start slen in
      if Crc32.string payload = scrc then Some payload else None

type section_status = {
  s_name : string;
  s_bytes : int;  (* payload bytes, -1 when unknown *)
  s_intact : bool;  (* primary copy parsed and CRC-valid *)
  s_recovered : bool;  (* usable via the trailer despite primary damage *)
  s_reason : string option;  (* why the primary copy is unusable *)
}

type recovery = {
  rc_bytes : int;
  rc_payloads : (string * string) list;  (* usable payloads, canonical names *)
  rc_status : section_status list;  (* meta, manifest, state *)
  rc_trailer_intact : bool;
  rc_structural : (string * string) option;
  rc_end_seen : bool;
}

let recover data =
  let len = String.length data in
  (* The 16-byte header has no redundancy; damage there is beyond salvage
     (we cannot even be sure the file is a snapshot). *)
  if len < header_bytes then
    corrupt ~section:"header" "truncated header: %d bytes (need %d)" len
      header_bytes;
  if String.sub data 0 (String.length magic) <> magic then
    corrupt ~section:"header" "bad magic (not a wsc-alloc snapshot)";
  let version = Char.code data.[String.length magic] in
  if version <> format_version then
    corrupt ~section:"header" "unsupported snapshot version %d (expected %d)"
      version format_version;
  let p = parse_primary data in
  let trailer = parse_trailer data in
  let payloads = ref [] in
  let status =
    List.map
      (fun name ->
        let primary = List.assoc_opt name p.p_sections in
        let reason =
          match primary with
          | Some (_, true, _) -> None
          | Some (_, false, r) -> r
          | None -> (
            match p.p_structural with
            | Some (sec, r) when sec = name -> Some r
            | Some (sec, r) ->
              Some (Printf.sprintf "lost in structural damage (%s: %s)" sec r)
            | None -> Some "section missing from snapshot")
        in
        let usable, recovered =
          match primary with
          | Some (payload, true, _) -> (Some payload, false)
          | _ -> (
            (* Primary damaged: the trailer directory re-locates intact
               payload bytes; for the summary sections the trailer also
               carries whole redundant copies. *)
            match trailer with
            | None -> (None, false)
            | Some t -> (
              match extract_via_dir data t name with
              | Some payload -> (Some payload, true)
              | None -> (
                match name with
                | "meta" -> (Some t.t_meta, true)
                | "manifest" -> (Some t.t_manifest, true)
                | _ -> (None, false))))
        in
        (match usable with
        | Some payload -> payloads := (name, payload) :: !payloads
        | None -> ());
        {
          s_name = name;
          s_bytes =
            (match usable with
            | Some payload -> String.length payload
            | None -> -1);
          s_intact = (match primary with Some (_, true, _) -> true | _ -> false);
          s_recovered = recovered;
          s_reason = reason;
        })
      required_sections
  in
  {
    rc_bytes = len;
    rc_payloads = List.rev !payloads;
    rc_status = status;
    rc_trailer_intact = trailer <> None;
    rc_structural = p.p_structural;
    rc_end_seen = p.p_end_seen;
  }

(* The usable payload of a required section, or {!Corrupt} carrying the
   primary damage attribution. *)
let usable_section r name =
  match List.assoc_opt name r.rc_payloads with
  | Some payload -> payload
  | None ->
    let st = List.find (fun s -> s.s_name = name) r.rc_status in
    corrupt ~section:name "%s"
      (Option.value st.s_reason ~default:"section missing from snapshot")

(* Marshal.from_string on damaged or cross-binary data raises Failure;
   surface it as structured corruption of the owning section. *)
let unmarshal ~section payload =
  try Marshal.from_string payload 0
  with Failure reason -> corrupt ~section "unreadable payload: %s" reason

let load_sections path =
  let r = recover (read_file path) in
  let m : meta = unmarshal ~section:"meta" (usable_section r "meta") in
  let manifest : manifest =
    unmarshal ~section:"manifest" (usable_section r "manifest")
  in
  (m, manifest, usable_section r "state")

let check_kind ~expected (m : meta) =
  if m.kind <> expected then
    corrupt ~section:"meta" "snapshot holds a %s, expected a %s" m.kind expected

(* The restored graph must agree with the summary written alongside it:
   recompute the manifest from live state and compare field by field. *)
let check_manifest ~stored ~restored =
  if restored.sim_now_ns <> stored.sim_now_ns then
    corrupt ~section:"manifest" "clock mismatch after restore: %.0f ns vs stored %.0f ns"
      restored.sim_now_ns stored.sim_now_ns;
  if List.length restored.job_manifests <> List.length stored.job_manifests then
    corrupt ~section:"manifest" "job count mismatch after restore: %d vs stored %d"
      (List.length restored.job_manifests)
      (List.length stored.job_manifests);
  List.iter2
    (fun (got : job_manifest) (want : job_manifest) ->
      if got <> want then
        corrupt ~section:"manifest"
          "job %S disagrees with stored manifest after restore \
           (requests %.0f/%.0f, allocations %d/%d, live %d/%d, rss %d/%d)"
          want.profile_name got.requests want.requests got.allocations want.allocations
          got.live_objects want.live_objects got.heap.Malloc.resident_bytes
          want.heap.Malloc.resident_bytes)
    restored.job_manifests stored.job_manifests

(* --- Public save/load ------------------------------------------------- *)

let save_machine ?storage ?(note = "") machine ~path =
  save ?storage ~path ~kind:"machine" ~note ~manifest:(manifest_of_machine machine)
    (Machine.checkpoint machine)

let load_machine ~path =
  let m, stored, state = load_sections path in
  check_kind ~expected:"machine" m;
  let machine = try Machine.resume state with Failure reason -> corrupt ~section:"state" "unreadable payload: %s" reason in
  check_manifest ~stored ~restored:(manifest_of_machine machine);
  machine

let save_driver ?storage ?(note = "") driver ~path =
  save ?storage ~path ~kind:"driver" ~note ~manifest:(manifest_of_driver driver)
    (Driver.checkpoint driver)

let load_driver ~path =
  let m, stored, state = load_sections path in
  check_kind ~expected:"driver" m;
  let driver = try Driver.resume state with Failure reason -> corrupt ~section:"state" "unreadable payload: %s" reason in
  check_manifest ~stored ~restored:(manifest_of_driver driver);
  driver

let save_fleet ?storage ?(note = "") fleet ~path =
  save ?storage ~path ~kind:"fleet" ~note ~manifest:(manifest_of_fleet fleet)
    (Fleet.checkpoint fleet)

let load_fleet ~path =
  let m, stored, state = load_sections path in
  check_kind ~expected:"fleet" m;
  let fleet = try Fleet.resume state with Failure reason -> corrupt ~section:"state" "unreadable payload: %s" reason in
  check_manifest ~stored ~restored:(manifest_of_fleet fleet);
  fleet

(* --- Campaign shards --------------------------------------------------- *)

(* A campaign checkpoint is closure-free (plain records, float arrays and a
   string hashtable), so its state section marshals without flags and stays
   readable across binaries — unlike machine/fleet snapshots. *)

let save_campaign ?storage ?(note = "") ck ~path =
  save ?storage ~path ~kind:"campaign" ~note
    ~manifest:{ sim_now_ns = Campaign.checkpoint_sim_ns ck; job_manifests = [] }
    (Marshal.to_string ck [])

(* --- Generic blobs ----------------------------------------------------- *)

(* Kind-tagged opaque payloads in the same container (header, CRC'd
   sections, self-verifying trailer): other subsystems — the tune search
   checkpoints — get atomic writes, degraded-mode recovery, [info],
   [audit] and [repair] without this module knowing their state shape.
   The caller is responsible for the payload being closure-free if it
   wants cross-binary loads. *)

let save_blob ?storage ?(note = "") ~kind ~progress blob ~path =
  save ?storage ~path ~kind ~note
    ~manifest:{ sim_now_ns = progress; job_manifests = [] }
    blob

let load_blob ~kind ~path =
  let m, stored, state = load_sections path in
  check_kind ~expected:kind m;
  (state, stored.sim_now_ns)

let load_campaign ~path =
  let m, stored, state = load_sections path in
  check_kind ~expected:"campaign" m;
  let ck : Campaign.checkpoint = unmarshal ~section:"state" state in
  if Campaign.checkpoint_sim_ns ck <> stored.sim_now_ns then
    corrupt ~section:"manifest"
      "campaign clock mismatch after restore: %.0f ns vs stored %.0f ns"
      (Campaign.checkpoint_sim_ns ck) stored.sim_now_ns;
  ck

let campaign_shard_path ~dir shard =
  Filename.concat dir (Printf.sprintf "campaign-%04d.wsnap" shard)

(* Newest loadable shard in [dir]: damaged shards (torn writes are already
   impossible, but disk rot is not) are skipped in favor of older ones, so
   a campaign degrades to re-running a shard instead of restarting. *)
let scan_campaign_dir dir =
  let shard_of name =
    try Scanf.sscanf name "campaign-%d.wsnap%!" Option.some with _ -> None
  in
  let shards =
    Array.to_list (Sys.readdir dir)
    |> List.filter_map shard_of
    |> List.sort (fun a b -> compare b a)
  in
  let rec first_loadable = function
    | [] -> None
    | shard :: rest -> (
      match load_campaign ~path:(campaign_shard_path ~dir shard) with
      | ck -> Some (shard, ck)
      | exception Corrupt _ -> first_loadable rest)
  in
  first_loadable shards

let run_campaign ?jobs ?storage ?resume_dir ?max_shards spec =
  Campaign.validate_spec spec;
  match resume_dir with
  | None -> Campaign.run ?jobs ?max_shards spec
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    if not (Sys.is_directory dir) then
      invalid_arg (Printf.sprintf "Persist.run_campaign: %s is not a directory" dir);
    let resume =
      match scan_campaign_dir dir with
      | None -> None
      | Some (_, ck) ->
        if Campaign.checkpoint_spec_digest ck <> Campaign.spec_digest spec then
          corrupt ~section:"meta"
            "resume dir %s holds shards of a different campaign spec" dir;
        Some ck
    in
    let on_shard ~shard ck =
      save_campaign ?storage ck ~path:(campaign_shard_path ~dir shard)
        ~note:(Printf.sprintf "shard %d" shard)
    in
    Campaign.run ?jobs ~on_shard ?resume ?max_shards spec

(* --- Inspection ------------------------------------------------------- *)

type info = {
  kind : string;
  note : string;
  sim_now_ns : float;
  jobs : (string * int) list;
  file_bytes : int;
}

(* Reports from the meta/manifest summaries and the section CRCs only —
   the closure-bearing state payload is CRC-checked for usability but
   never unmarshalled, so inspecting an untrusted or damaged snapshot is
   always safe. *)
let info ~path =
  let data = read_file path in
  let r = recover data in
  let m : meta = unmarshal ~section:"meta" (usable_section r "meta") in
  let manifest : manifest =
    unmarshal ~section:"manifest" (usable_section r "manifest")
  in
  let (_ : string) = usable_section r "state" in
  {
    kind = m.kind;
    note = m.note;
    sim_now_ns = manifest.sim_now_ns;
    jobs =
      List.map
        (fun jm -> (jm.profile_name, jm.heap.Malloc.resident_bytes))
        manifest.job_manifests;
    file_bytes = String.length data;
  }

(* --- Integrity audit, repair, scrub ------------------------------------ *)

type audit = {
  a_bytes : int;
  a_sections : section_status list;
  a_trailer_intact : bool;
  a_end_seen : bool;
  a_structural : (string * string) option;
  a_intact : bool;
  a_salvageable : bool;
}

let audit_of_recovery r =
  {
    a_bytes = r.rc_bytes;
    a_sections = r.rc_status;
    a_trailer_intact = r.rc_trailer_intact;
    a_end_seen = r.rc_end_seen;
    a_structural = r.rc_structural;
    a_intact =
      List.for_all (fun s -> s.s_intact) r.rc_status
      && r.rc_trailer_intact && r.rc_end_seen && r.rc_structural = None;
    a_salvageable =
      List.for_all (fun s -> s.s_intact || s.s_recovered) r.rc_status;
  }

let audit ~path = audit_of_recovery (recover (read_file path))

let audit_notes a =
  List.filter_map
    (fun s ->
      if s.s_intact then None
      else
        Some
          (Printf.sprintf "%s: %s%s" s.s_name
             (Option.value s.s_reason ~default:"damaged")
             (if s.s_recovered then " (recovered via trailer)"
              else " (unrecoverable)")))
    a.a_sections
  @ (if a.a_trailer_intact then [] else [ "trailer: damaged or missing" ])
  @
  if a.a_end_seen || a.a_structural <> None then []
  else [ "container: end marker missing" ]

(* Rebuild a canonical, fully redundant snapshot from every recoverable
   section.  Because [container_of_payloads] is the construction path of
   [save], recovering all three original payloads reproduces the original
   file byte for byte — in particular, a snapshot whose only damage is in
   its primary manifest (or its trailer) repairs bit-identically. *)
let repair ?storage ~src ~dst () =
  let r = recover (read_file src) in
  let meta_p = usable_section r "meta" in
  let manifest_p = usable_section r "manifest" in
  let state = usable_section r "state" in
  write_atomic ?storage ~path:dst
    (container_of_payloads ~meta:meta_p ~manifest:manifest_p ~state);
  audit_of_recovery r

(* --- Campaign shard scrub ---------------------------------------------- *)

type shard_status =
  | Shard_intact
  | Shard_salvaged of string list
  | Shard_unrecoverable of string

type scrub_entry = {
  sc_shard : int;
  sc_path : string;
  sc_status : shard_status;
  sc_machines : int;
}

type scrub_report = {
  sr_dir : string;
  sr_entries : scrub_entry list;
  sr_quarantined : (string * string) list;
  sr_stale_tmp : (string * string) list;
  sr_best : (int * int) option;
}

let quarantine_path path =
  let rec go n =
    let cand =
      if n = 0 then path ^ ".quarantined"
      else Printf.sprintf "%s.quarantined.%d" path n
    in
    if Sys.file_exists cand then go (n + 1) else cand
  in
  go 0

(* Validate every shard of a resume directory.  Unrecoverable shards and
   stale tmp files are quarantined — renamed, never deleted — so a
   subsequent resume proceeds from the best surviving checkpoint while a
   human can still post-mortem the damaged bytes. *)
let scrub_campaign_dir ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    invalid_arg
      (Printf.sprintf "Persist.scrub_campaign_dir: %s is not a directory" dir);
  let names = Array.to_list (Sys.readdir dir) in
  let stale_tmp =
    List.filter_map
      (fun name ->
        if Filename.check_suffix name ".tmp" then begin
          let path = Filename.concat dir name in
          let q = quarantine_path path in
          Sys.rename path q;
          Some (path, q)
        end
        else None)
      names
  in
  let shard_of name =
    try Scanf.sscanf name "campaign-%d.wsnap%!" Option.some with _ -> None
  in
  let shards = List.filter_map shard_of names |> List.sort compare in
  let quarantined = ref [] in
  let entries =
    List.map
      (fun shard ->
        let path = campaign_shard_path ~dir shard in
        match load_campaign ~path with
        | ck ->
          let a = audit ~path in
          {
            sc_shard = shard;
            sc_path = path;
            sc_status =
              (if a.a_intact then Shard_intact else Shard_salvaged (audit_notes a));
            sc_machines = Campaign.checkpoint_next_index ck;
          }
        | exception Corrupt { section; reason } ->
          let q = quarantine_path path in
          Sys.rename path q;
          quarantined := (path, q) :: !quarantined;
          {
            sc_shard = shard;
            sc_path = path;
            sc_status =
              Shard_unrecoverable (Printf.sprintf "section %s: %s" section reason);
            sc_machines = 0;
          })
      shards
  in
  let best =
    List.fold_left
      (fun acc e ->
        match e.sc_status with
        | Shard_unrecoverable _ -> acc
        | Shard_intact | Shard_salvaged _ -> Some (e.sc_shard, e.sc_machines))
      None entries
  in
  {
    sr_dir = dir;
    sr_entries = entries;
    sr_quarantined = List.rev !quarantined;
    sr_stale_tmp = stale_tmp;
    sr_best = best;
  }

(* --- Checkpoint-aware run loop ---------------------------------------- *)

let run_machine ?checkpoint_every_ns ?checkpoint_path machine ~until_ns ~epoch_ns =
  let clock = Machine.clock machine in
  let every =
    match checkpoint_every_ns with Some e when e > 0.0 -> e | Some _ | None -> infinity
  in
  let next_checkpoint = ref (Clock.now clock +. every) in
  while Clock.now clock < until_ns do
    let dt = Float.min epoch_ns (until_ns -. Clock.now clock) in
    Clock.advance clock dt;
    Machine.step machine ~dt;
    match checkpoint_path with
    | Some path when Clock.now clock >= !next_checkpoint ->
      save_machine machine ~path;
      next_checkpoint := !next_checkpoint +. every
    | _ -> ()
  done;
  match checkpoint_path with
  | Some path -> save_machine machine ~path
  | None -> ()
