(* Versioned snapshot container over Marshal-with-closures state blobs.
   Layout (all integers little-endian, mirroring the trace codec):

     header   : magic "WSCSNAPS" (8) | version u8 | 7 reserved zero bytes
     section* : name_len u8 | name | crc32 u32 | payload_len u64 | payload
     end      : a section literally named "end" with an empty payload

   The CRC (Wsc_trace.Crc32, IEEE 802.3) covers the payload bytes of each
   section, so a flipped byte is attributed to the section it damaged and
   a truncation to the section it cut short. *)

open Wsc_substrate
module Crc32 = Wsc_trace.Crc32
module Machine = Wsc_fleet.Machine
module Fleet = Wsc_fleet.Fleet
module Campaign = Wsc_fleet.Campaign
module Driver = Wsc_workload.Driver
module Malloc = Wsc_tcmalloc.Malloc
module Profile = Wsc_workload.Profile

exception Corrupt of { section : string; reason : string }

let () =
  Printexc.register_printer (function
    | Corrupt { section; reason } ->
      Some (Printf.sprintf "Persist.Corrupt(section %S: %s)" section reason)
    | _ -> None)

let corrupt ~section fmt =
  Printf.ksprintf (fun reason -> raise (Corrupt { section; reason })) fmt

let magic = "WSCSNAPS"
let format_version = 1
let header_bytes = 16

(* --- Summary sections (closure-free, Marshal without flags) ----------- *)

type meta = { kind : string; note : string }

type job_manifest = {
  profile_name : string;
  requests : float;
  allocations : int;
  live_objects : int;
  heap : Malloc.heap_stats;
}

type manifest = { sim_now_ns : float; job_manifests : job_manifest list }

let job_manifest_of ~(profile : Profile.t) driver malloc =
  {
    profile_name = profile.Profile.name;
    requests = Driver.requests_completed driver;
    allocations = Driver.allocations driver;
    live_objects = Driver.live_objects driver;
    heap = Malloc.heap_stats malloc;
  }

let manifest_of_machine machine =
  {
    sim_now_ns = Clock.now (Machine.clock machine);
    job_manifests =
      List.map
        (fun (job : Machine.job) ->
          job_manifest_of ~profile:job.Machine.profile job.Machine.driver
            job.Machine.malloc)
        (Machine.jobs machine);
  }

let manifest_of_driver driver =
  {
    sim_now_ns = Clock.now (Malloc.clock (Driver.malloc driver));
    job_manifests =
      [ job_manifest_of ~profile:(Driver.profile driver) driver (Driver.malloc driver) ];
  }

let manifest_of_fleet fleet =
  {
    (* Machines own independent clocks; the latest one is the fleet's
       notion of "now" (they advance in lockstep under Fleet.run). *)
    sim_now_ns =
      List.fold_left
        (fun acc m -> Float.max acc (Clock.now (Machine.clock m)))
        0.0 (Fleet.machines fleet);
    job_manifests =
      List.map
        (fun (job : Machine.job) ->
          job_manifest_of ~profile:job.Machine.profile job.Machine.driver
            job.Machine.malloc)
        (Fleet.jobs fleet);
  }

(* --- Writing ---------------------------------------------------------- *)

let add_section buf ~name ~payload =
  Buffer.add_uint8 buf (String.length name);
  Buffer.add_string buf name;
  Buffer.add_int32_le buf (Int32.of_int (Crc32.string payload));
  Buffer.add_int64_le buf (Int64.of_int (String.length payload));
  Buffer.add_string buf payload

let save ~path ~kind ~note ~manifest ~state =
  let buf = Buffer.create (String.length state + 4096) in
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf format_version;
  Buffer.add_string buf (String.make (header_bytes - String.length magic - 1) '\000');
  add_section buf ~name:"meta" ~payload:(Marshal.to_string { kind; note } []);
  add_section buf ~name:"manifest" ~payload:(Marshal.to_string manifest []);
  add_section buf ~name:"state" ~payload:state;
  add_section buf ~name:"end" ~payload:"";
  (* Atomic replace: never leave a torn snapshot under the final name. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf);
  Sys.rename tmp path

(* --- Reading ---------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse the container into name->payload, CRC-checking every section and
   requiring the "end" marker.  [data] is the whole file. *)
let parse_sections data =
  let len = String.length data in
  if len < header_bytes then
    corrupt ~section:"header" "truncated header: %d bytes (need %d)" len header_bytes;
  if String.sub data 0 (String.length magic) <> magic then
    corrupt ~section:"header" "bad magic (not a wsc-alloc snapshot)";
  let version = Char.code data.[String.length magic] in
  if version <> format_version then
    corrupt ~section:"header" "unsupported snapshot version %d (expected %d)" version
      format_version;
  let pos = ref header_bytes in
  let sections = ref [] in
  let finished = ref false in
  while not !finished do
    if len - !pos < 1 then
      corrupt ~section:"container" "truncated at byte %d: missing section header" !pos;
    let name_len = Char.code data.[!pos] in
    if len - !pos < 1 + name_len + 12 then
      corrupt ~section:"container" "truncated at byte %d: partial section header" !pos;
    let name = String.sub data (!pos + 1) name_len in
    let crc =
      Int32.to_int (String.get_int32_le data (!pos + 1 + name_len)) land 0xFFFFFFFF
    in
    let payload_len = Int64.to_int (String.get_int64_le data (!pos + 1 + name_len + 4)) in
    let payload_start = !pos + 1 + name_len + 12 in
    if payload_len < 0 || payload_len > len - payload_start then
      corrupt ~section:name "truncated payload: need %d bytes, %d remain" payload_len
        (len - payload_start);
    let payload = String.sub data payload_start payload_len in
    let computed = Crc32.string payload in
    if computed <> crc then
      corrupt ~section:name "CRC mismatch: stored %08x, computed %08x" crc computed;
    pos := payload_start + payload_len;
    if name = "end" then finished := true else sections := (name, payload) :: !sections
  done;
  List.rev !sections

let find_section sections name =
  match List.assoc_opt name sections with
  | Some payload -> payload
  | None -> corrupt ~section:name "section missing from snapshot"

(* Marshal.from_string on damaged or cross-binary data raises Failure;
   surface it as structured corruption of the owning section. *)
let unmarshal ~section payload =
  try Marshal.from_string payload 0
  with Failure reason -> corrupt ~section "unreadable payload: %s" reason

let load_sections path =
  let sections = parse_sections (read_file path) in
  let m : meta = unmarshal ~section:"meta" (find_section sections "meta") in
  let manifest : manifest =
    unmarshal ~section:"manifest" (find_section sections "manifest")
  in
  (m, manifest, find_section sections "state")

let check_kind ~expected (m : meta) =
  if m.kind <> expected then
    corrupt ~section:"meta" "snapshot holds a %s, expected a %s" m.kind expected

(* The restored graph must agree with the summary written alongside it:
   recompute the manifest from live state and compare field by field. *)
let check_manifest ~stored ~restored =
  if restored.sim_now_ns <> stored.sim_now_ns then
    corrupt ~section:"manifest" "clock mismatch after restore: %.0f ns vs stored %.0f ns"
      restored.sim_now_ns stored.sim_now_ns;
  if List.length restored.job_manifests <> List.length stored.job_manifests then
    corrupt ~section:"manifest" "job count mismatch after restore: %d vs stored %d"
      (List.length restored.job_manifests)
      (List.length stored.job_manifests);
  List.iter2
    (fun (got : job_manifest) (want : job_manifest) ->
      if got <> want then
        corrupt ~section:"manifest"
          "job %S disagrees with stored manifest after restore \
           (requests %.0f/%.0f, allocations %d/%d, live %d/%d, rss %d/%d)"
          want.profile_name got.requests want.requests got.allocations want.allocations
          got.live_objects want.live_objects got.heap.Malloc.resident_bytes
          want.heap.Malloc.resident_bytes)
    restored.job_manifests stored.job_manifests

(* --- Public save/load ------------------------------------------------- *)

let save_machine ?(note = "") machine ~path =
  save ~path ~kind:"machine" ~note ~manifest:(manifest_of_machine machine)
    ~state:(Machine.checkpoint machine)

let load_machine ~path =
  let m, stored, state = load_sections path in
  check_kind ~expected:"machine" m;
  let machine = try Machine.resume state with Failure reason -> corrupt ~section:"state" "unreadable payload: %s" reason in
  check_manifest ~stored ~restored:(manifest_of_machine machine);
  machine

let save_driver ?(note = "") driver ~path =
  save ~path ~kind:"driver" ~note ~manifest:(manifest_of_driver driver)
    ~state:(Driver.checkpoint driver)

let load_driver ~path =
  let m, stored, state = load_sections path in
  check_kind ~expected:"driver" m;
  let driver = try Driver.resume state with Failure reason -> corrupt ~section:"state" "unreadable payload: %s" reason in
  check_manifest ~stored ~restored:(manifest_of_driver driver);
  driver

let save_fleet ?(note = "") fleet ~path =
  save ~path ~kind:"fleet" ~note ~manifest:(manifest_of_fleet fleet)
    ~state:(Fleet.checkpoint fleet)

let load_fleet ~path =
  let m, stored, state = load_sections path in
  check_kind ~expected:"fleet" m;
  let fleet = try Fleet.resume state with Failure reason -> corrupt ~section:"state" "unreadable payload: %s" reason in
  check_manifest ~stored ~restored:(manifest_of_fleet fleet);
  fleet

(* --- Campaign shards --------------------------------------------------- *)

(* A campaign checkpoint is closure-free (plain records, float arrays and a
   string hashtable), so its state section marshals without flags and stays
   readable across binaries — unlike machine/fleet snapshots. *)

let save_campaign ?(note = "") ck ~path =
  save ~path ~kind:"campaign" ~note
    ~manifest:{ sim_now_ns = Campaign.checkpoint_sim_ns ck; job_manifests = [] }
    ~state:(Marshal.to_string ck [])

let load_campaign ~path =
  let m, stored, state = load_sections path in
  check_kind ~expected:"campaign" m;
  let ck : Campaign.checkpoint = unmarshal ~section:"state" state in
  if Campaign.checkpoint_sim_ns ck <> stored.sim_now_ns then
    corrupt ~section:"manifest"
      "campaign clock mismatch after restore: %.0f ns vs stored %.0f ns"
      (Campaign.checkpoint_sim_ns ck) stored.sim_now_ns;
  ck

let campaign_shard_path ~dir shard =
  Filename.concat dir (Printf.sprintf "campaign-%04d.wsnap" shard)

(* Newest loadable shard in [dir]: damaged shards (torn writes are already
   impossible, but disk rot is not) are skipped in favor of older ones, so
   a campaign degrades to re-running a shard instead of restarting. *)
let scan_campaign_dir dir =
  let shard_of name =
    try Scanf.sscanf name "campaign-%d.wsnap%!" Option.some with _ -> None
  in
  let shards =
    Array.to_list (Sys.readdir dir)
    |> List.filter_map shard_of
    |> List.sort (fun a b -> compare b a)
  in
  let rec first_loadable = function
    | [] -> None
    | shard :: rest -> (
      match load_campaign ~path:(campaign_shard_path ~dir shard) with
      | ck -> Some (shard, ck)
      | exception Corrupt _ -> first_loadable rest)
  in
  first_loadable shards

let run_campaign ?jobs ?resume_dir ?max_shards spec =
  Campaign.validate_spec spec;
  match resume_dir with
  | None -> Campaign.run ?jobs ?max_shards spec
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    if not (Sys.is_directory dir) then
      invalid_arg (Printf.sprintf "Persist.run_campaign: %s is not a directory" dir);
    let resume =
      match scan_campaign_dir dir with
      | None -> None
      | Some (_, ck) ->
        if Campaign.checkpoint_spec_digest ck <> Campaign.spec_digest spec then
          corrupt ~section:"meta"
            "resume dir %s holds shards of a different campaign spec" dir;
        Some ck
    in
    let on_shard ~shard ck =
      save_campaign ck ~path:(campaign_shard_path ~dir shard)
        ~note:(Printf.sprintf "shard %d" shard)
    in
    Campaign.run ?jobs ~on_shard ?resume ?max_shards spec

(* --- Inspection ------------------------------------------------------- *)

type info = {
  kind : string;
  note : string;
  sim_now_ns : float;
  jobs : (string * int) list;
  file_bytes : int;
}

let info ~path =
  let data = read_file path in
  let sections = parse_sections data in
  let m : meta = unmarshal ~section:"meta" (find_section sections "meta") in
  let manifest : manifest =
    unmarshal ~section:"manifest" (find_section sections "manifest")
  in
  {
    kind = m.kind;
    note = m.note;
    sim_now_ns = manifest.sim_now_ns;
    jobs =
      List.map
        (fun jm -> (jm.profile_name, jm.heap.Malloc.resident_bytes))
        manifest.job_manifests;
    file_bytes = String.length data;
  }

(* --- Checkpoint-aware run loop ---------------------------------------- *)

let run_machine ?checkpoint_every_ns ?checkpoint_path machine ~until_ns ~epoch_ns =
  let clock = Machine.clock machine in
  let every =
    match checkpoint_every_ns with Some e when e > 0.0 -> e | Some _ | None -> infinity
  in
  let next_checkpoint = ref (Clock.now clock +. every) in
  while Clock.now clock < until_ns do
    let dt = Float.min epoch_ns (until_ns -. Clock.now clock) in
    Clock.advance clock dt;
    Machine.step machine ~dt;
    match checkpoint_path with
    | Some path when Clock.now clock >= !next_checkpoint ->
      save_machine machine ~path;
      next_checkpoint := !next_checkpoint +. every
    | _ -> ()
  done;
  match checkpoint_path with
  | Some path -> save_machine machine ~path
  | None -> ()
