(** Durable warm-state snapshots: checkpoint a simulation to disk and
    resume it bit-identically later (same binary).

    The paper's span telemetry spans two weeks of production time; every
    experiment in this reproduction previously had to start from a cold
    heap, capping windows at minutes (EXPERIMENTS.md gaps 3/6).  A
    snapshot captures the {e entire} simulator warm state — every
    allocator tier (per-CPU caches, transfer caches, central free lists
    and their spans, the pageheap with its hugepage filler/region/cache,
    the page map, sampler, telemetry, span telemetry), the OS layer
    underneath (VM mappings and accounting, the vCPU table, rseq state,
    scheduler, fault streams, every RNG cursor), and the workload side
    (driver event heaps, live-object tables, thread pools, the shared
    clock with its background tickers) — so a resumed run continues with
    the same heap stats, telemetry and audit reports as one that never
    stopped.

    On disk a snapshot is a versioned container in the style of the
    binary trace format: a 16-byte header (magic + format version), then
    named length-prefixed sections, each protected by the trace codec's
    CRC-32 ({!Wsc_trace.Crc32}), ending with an ["end"] marker section.
    The ["meta"] and ["manifest"] sections are closure-free summaries
    readable by {!info}; the ["state"] section is the full object graph
    ([Marshal] with closures, so it is only readable by the binary that
    wrote it — the embedded code checksum turns cross-binary loads into
    {!Corrupt} rather than undefined behavior).  After restoring, the
    manifest is recomputed from the live state and compared field by
    field, so silent deserialization drift fails loudly. *)

exception Corrupt of { section : string; reason : string }
(** Raised by every loader on damage: a bad or wrong-version header
    (section ["header"]), a truncated or checksum-failing section (named
    by the section), an unreadable payload, or restored state that
    disagrees with the stored manifest (section ["manifest"]).  A printer
    is registered. *)

val format_version : int
(** Version byte written after the magic; bumped on layout changes. *)

(** {1 Saving and loading} *)

val save_machine : ?note:string -> Wsc_fleet.Machine.t -> path:string -> unit
(** Snapshot one machine (all co-located jobs plus their shared clock).
    The write is atomic: a temporary file is renamed into place, so a
    crash mid-checkpoint leaves the previous snapshot intact. *)

val load_machine : path:string -> Wsc_fleet.Machine.t
(** @raise Corrupt on any damage or manifest disagreement. *)

val save_driver : ?note:string -> Wsc_workload.Driver.t -> path:string -> unit
(** Snapshot a standalone driver (solo-process experiments). *)

val load_driver : path:string -> Wsc_workload.Driver.t

val save_fleet : ?note:string -> Wsc_fleet.Fleet.t -> path:string -> unit
(** Snapshot a whole fleet; {!load_fleet} + [Fleet.run] is bit-identical
    for any [?jobs] parallelism, machines being independent tasks. *)

val load_fleet : path:string -> Wsc_fleet.Fleet.t

(** {1 Campaign shards}

    A {!Wsc_fleet.Campaign} checkpoints its streaming state at shard
    boundaries into numbered files [campaign-NNNN.wsnap] inside a resume
    directory.  Unlike machine/fleet snapshots, campaign checkpoints are
    closure-free, so they survive across binaries. *)

val save_campaign :
  ?note:string -> Wsc_fleet.Campaign.checkpoint -> path:string -> unit
(** Atomic write-then-rename of one campaign checkpoint (kind
    ["campaign"]); a kill mid-write leaves the previous shard intact. *)

val load_campaign : path:string -> Wsc_fleet.Campaign.checkpoint
(** @raise Corrupt on damage, wrong kind, or a checkpoint whose restored
    simulated clock disagrees with the stored manifest. *)

val campaign_shard_path : dir:string -> int -> string
(** [campaign_shard_path ~dir n] is [dir/campaign-NNNN.wsnap]. *)

val run_campaign :
  ?jobs:int ->
  ?resume_dir:string ->
  ?max_shards:int ->
  Wsc_fleet.Campaign.spec ->
  Wsc_fleet.Campaign.result
(** Run (or resume) a campaign with durable shard checkpoints.  With
    [resume_dir] the directory is created if missing, the newest loadable
    shard is restored (damaged shards are skipped in favor of older
    ones), and every subsequent shard boundary is checkpointed there.
    Resuming a directory whose shards belong to a different spec raises
    {!Corrupt}.  For a fixed spec, any combination of [jobs], kills and
    resumes yields the identical aggregate (see
    {!Wsc_fleet.Campaign.run}).  [max_shards] bounds how many shards this
    invocation processes — the deterministic stand-in for a mid-campaign
    kill. *)

type info = {
  kind : string;  (** ["machine"], ["driver"], ["fleet"] or ["campaign"]. *)
  note : string;  (** Free-form note passed at save time. *)
  sim_now_ns : float;  (** Simulated clock at snapshot time. *)
  jobs : (string * int) list;
      (** Per job: profile name and simulated resident bytes. *)
  file_bytes : int;
}

val info : path:string -> info
(** Read and verify the header and summary sections without
    deserializing the state graph (the state payload is still CRC
    checked). *)

(** {1 Checkpoint-aware running} *)

val run_machine :
  ?checkpoint_every_ns:float ->
  ?checkpoint_path:string ->
  Wsc_fleet.Machine.t ->
  until_ns:float ->
  epoch_ns:float ->
  unit
(** Advance the machine to absolute simulated time [until_ns] exactly as
    [Machine.run] would, snapshotting to [checkpoint_path] every
    [checkpoint_every_ns] of simulated time and once more on completion.
    Taking [until_ns] as an {e absolute} time is what makes segmented
    runs bit-identical to uninterrupted ones: the epoch sequence is a
    function of the clock position and [until_ns] alone, so resuming at
    an epoch boundary reproduces the same [dt] sequence the
    uninterrupted run saw.  Without [checkpoint_path] no snapshot is
    written. *)
