(** Durable warm-state snapshots: checkpoint a simulation to disk and
    resume it bit-identically later (same binary).

    The paper's span telemetry spans two weeks of production time; every
    experiment in this reproduction previously had to start from a cold
    heap, capping windows at minutes (EXPERIMENTS.md gaps 3/6).  A
    snapshot captures the {e entire} simulator warm state — every
    allocator tier (per-CPU caches, transfer caches, central free lists
    and their spans, the pageheap with its hugepage filler/region/cache,
    the page map, sampler, telemetry, span telemetry), the OS layer
    underneath (VM mappings and accounting, the vCPU table, rseq state,
    scheduler, fault streams, every RNG cursor), and the workload side
    (driver event heaps, live-object tables, thread pools, the shared
    clock with its background tickers) — so a resumed run continues with
    the same heap stats, telemetry and audit reports as one that never
    stopped.

    On disk a snapshot is a versioned container in the style of the
    binary trace format: a 16-byte header (magic + format version), then
    named length-prefixed sections, each protected by the trace codec's
    CRC-32 ({!Wsc_trace.Crc32}), ending with an ["end"] marker section.
    The ["meta"] and ["manifest"] sections are closure-free summaries
    readable by {!info}; the ["state"] section is the full object graph
    ([Marshal] with closures, so it is only readable by the binary that
    wrote it — the embedded code checksum turns cross-binary loads into
    {!Corrupt} rather than undefined behavior).  After restoring, the
    manifest is recomputed from the live state and compared field by
    field, so silent deserialization drift fails loudly.

    Format v2 appends a self-verifying {e trailer}: a directory of every
    section (offset, length, CRC) plus full redundant copies of the meta
    and manifest payloads, located via a fixed-size suffix at EOF.  The
    loaders degrade gracefully: a section whose sequential copy is
    damaged is recovered through the trailer (re-located by offset if its
    bytes are intact, or from the redundant copy for the summaries), and
    only damage to the un-duplicated state payload — or to both copies —
    raises {!Corrupt}.  {!audit} reports per-section integrity without
    deserializing anything, {!repair} rebuilds a pristine container from
    every recoverable section (bit-identical when all three payloads are
    recovered), and {!scrub_campaign_dir} applies the same treatment to a
    whole campaign resume directory, quarantining what cannot be saved. *)

exception Corrupt of { section : string; reason : string }
(** Raised by every loader on damage: a bad or wrong-version header
    (section ["header"]), a truncated or checksum-failing section (named
    by the section), an unreadable payload, or restored state that
    disagrees with the stored manifest (section ["manifest"]).  A printer
    is registered. *)

val format_version : int
(** Version byte written after the magic; bumped on layout changes. *)

(** {1 Saving and loading}

    Every save is an atomic write-then-rename, hardened against crashes:
    any stale [*.tmp] from a previous crash is removed first, the
    temporary file is fsynced before the rename and the directory after
    it, so a killed writer can never leave a half-written file under the
    final name nor lose a published snapshot to a power cut.  The
    optional [storage] shim threads every byte (and the rename) through
    {!Wsc_os.Storage} fault injection — the reproducible-corruption
    source the salvage tests and benches are built on. *)

val save_machine :
  ?storage:Wsc_os.Storage.t -> ?note:string -> Wsc_fleet.Machine.t ->
  path:string -> unit
(** Snapshot one machine (all co-located jobs plus their shared clock). *)

val load_machine : path:string -> Wsc_fleet.Machine.t
(** @raise Corrupt on unrecoverable damage (see the trailer-recovery rules
    above) or manifest disagreement. *)

val save_driver :
  ?storage:Wsc_os.Storage.t -> ?note:string -> Wsc_workload.Driver.t ->
  path:string -> unit
(** Snapshot a standalone driver (solo-process experiments). *)

val load_driver : path:string -> Wsc_workload.Driver.t

val save_fleet :
  ?storage:Wsc_os.Storage.t -> ?note:string -> Wsc_fleet.Fleet.t ->
  path:string -> unit
(** Snapshot a whole fleet; {!load_fleet} + [Fleet.run] is bit-identical
    for any [?jobs] parallelism, machines being independent tasks. *)

val load_fleet : path:string -> Wsc_fleet.Fleet.t

(** {1 Campaign shards}

    A {!Wsc_fleet.Campaign} checkpoints its streaming state at shard
    boundaries into numbered files [campaign-NNNN.wsnap] inside a resume
    directory.  Unlike machine/fleet snapshots, campaign checkpoints are
    closure-free, so they survive across binaries. *)

val save_campaign :
  ?storage:Wsc_os.Storage.t -> ?note:string -> Wsc_fleet.Campaign.checkpoint ->
  path:string -> unit
(** Atomic write-then-rename of one campaign checkpoint (kind
    ["campaign"]); a kill mid-write leaves the previous shard intact. *)

val load_campaign : path:string -> Wsc_fleet.Campaign.checkpoint
(** @raise Corrupt on damage, wrong kind, or a checkpoint whose restored
    simulated clock disagrees with the stored manifest. *)

val campaign_shard_path : dir:string -> int -> string
(** [campaign_shard_path ~dir n] is [dir/campaign-NNNN.wsnap]. *)

(** {1 Generic blobs}

    Kind-tagged opaque payloads in the same snapshot container: atomic
    write-then-rename, CRC'd sections, self-verifying trailer, and the
    {!info}/{!audit}/{!repair} tooling all apply.  Used by subsystems with
    their own closure-free state encodings (e.g. the tune search
    checkpoints, kind ["tune"]). *)

val save_blob :
  ?storage:Wsc_os.Storage.t ->
  ?note:string ->
  kind:string ->
  progress:float ->
  string ->
  path:string ->
  unit
(** Persist an opaque payload under [kind].  [progress] is stored in the
    manifest's clock slot and surfaces as {!info}'s [sim_now_ns] — a
    cheap "how far along" readable without touching the payload. *)

val load_blob : kind:string -> path:string -> string * float
(** Recover the payload and its [progress].
    @raise Corrupt on damage or a snapshot of a different kind. *)

val run_campaign :
  ?jobs:int ->
  ?storage:Wsc_os.Storage.t ->
  ?resume_dir:string ->
  ?max_shards:int ->
  Wsc_fleet.Campaign.spec ->
  Wsc_fleet.Campaign.result
(** Run (or resume) a campaign with durable shard checkpoints.  With
    [resume_dir] the directory is created if missing, the newest loadable
    shard is restored (damaged shards are skipped in favor of older
    ones), and every subsequent shard boundary is checkpointed there.
    Resuming a directory whose shards belong to a different spec raises
    {!Corrupt}.  For a fixed spec, any combination of [jobs], kills and
    resumes yields the identical aggregate (see
    {!Wsc_fleet.Campaign.run}).  [max_shards] bounds how many shards this
    invocation processes — the deterministic stand-in for a mid-campaign
    kill. *)

type info = {
  kind : string;  (** ["machine"], ["driver"], ["fleet"] or ["campaign"]. *)
  note : string;  (** Free-form note passed at save time. *)
  sim_now_ns : float;  (** Simulated clock at snapshot time. *)
  jobs : (string * int) list;
      (** Per job: profile name and simulated resident bytes. *)
  file_bytes : int;
}

val info : path:string -> info
(** Summarize a snapshot from the meta/manifest sections and section CRCs
    only — the closure-bearing state payload is checked for usability but
    {e never} deserialized, so [info] on an untrusted or damaged snapshot
    is always safe.  Succeeds exactly when a load would get usable
    sections (degraded reads via the trailer included).
    @raise Corrupt when any required section is unrecoverable. *)

(** {1 Integrity audit, repair and scrub} *)

type section_status = {
  s_name : string;
  s_bytes : int;  (** Payload bytes, [-1] when unknown. *)
  s_intact : bool;  (** Sequential copy parsed and CRC-valid. *)
  s_recovered : bool;
      (** Usable through the trailer although the sequential copy is
          damaged. *)
  s_reason : string option;  (** Why the sequential copy is unusable. *)
}

type audit = {
  a_bytes : int;
  a_sections : section_status list;  (** meta, manifest, state. *)
  a_trailer_intact : bool;
  a_end_seen : bool;
  a_structural : (string * string) option;
      (** Where the sequential walk broke (section attribution, reason). *)
  a_intact : bool;  (** Every byte verifies: sections, end marker, trailer. *)
  a_salvageable : bool;  (** Every required section is usable: loads work. *)
}

val audit : path:string -> audit
(** Structural integrity report.  Never deserializes any payload; raises
    {!Corrupt} only for an unusable 16-byte header (wrong magic/version),
    which is beyond salvage. *)

val audit_notes : audit -> string list
(** Human-readable damage notes, empty when [a_intact]. *)

val repair : ?storage:Wsc_os.Storage.t -> src:string -> dst:string -> unit -> audit
(** Rebuild a pristine, fully redundant snapshot at [dst] from every
    recoverable section of [src], returning [src]'s audit.  When all
    three payloads are recovered — e.g. the only damage is to the primary
    manifest, or to the trailer — [dst] is byte-identical to the original
    undamaged file.
    @raise Corrupt when a required section is unrecoverable. *)

type shard_status =
  | Shard_intact
  | Shard_salvaged of string list  (** Loadable via trailer recovery. *)
  | Shard_unrecoverable of string

type scrub_entry = {
  sc_shard : int;
  sc_path : string;
  sc_status : shard_status;
  sc_machines : int;  (** Campaign coverage ([checkpoint_next_index]). *)
}

type scrub_report = {
  sr_dir : string;
  sr_entries : scrub_entry list;  (** Ascending shard order. *)
  sr_quarantined : (string * string) list;  (** (old, quarantine) paths. *)
  sr_stale_tmp : (string * string) list;
      (** Leftover [*.tmp] files from crashed writers, quarantined. *)
  sr_best : (int * int) option;
      (** Newest surviving (shard, machines covered) a resume will use. *)
}

val scrub_campaign_dir : dir:string -> scrub_report
(** Validate every shard of a campaign resume directory.  Unrecoverable
    shards and stale tmp files are quarantined — renamed with a
    [.quarantined] suffix, never deleted — so {!run_campaign} resume
    proceeds from the best surviving checkpoint.
    @raise Invalid_argument if [dir] is not a directory. *)

(** {1 Checkpoint-aware running} *)

val run_machine :
  ?checkpoint_every_ns:float ->
  ?checkpoint_path:string ->
  Wsc_fleet.Machine.t ->
  until_ns:float ->
  epoch_ns:float ->
  unit
(** Advance the machine to absolute simulated time [until_ns] exactly as
    [Machine.run] would, snapshotting to [checkpoint_path] every
    [checkpoint_every_ns] of simulated time and once more on completion.
    Taking [until_ns] as an {e absolute} time is what makes segmented
    runs bit-identical to uninterrupted ones: the epoch sequence is a
    function of the clock position and [until_ns] alone, so resuming at
    an epoch boundary reproduces the same [dt] sequence the
    uninterrupted run saw.  Without [checkpoint_path] no snapshot is
    written. *)
