(** A binary min-heap keyed by float priority.

    The workload driver keeps every pending [free] as a future event ordered
    by its deallocation timestamp; peak heaps reach millions of entries, so
    the implementation is an array-backed d=2 heap with O(log n) operations
    and no per-element allocation beyond the payload pair. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push t key v] inserts [v] with priority [key]. *)

val peek : 'a t -> (float * 'a) option
(** Minimum-key entry without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key entry. *)

val pop_until : 'a t -> float -> (float * 'a) list
(** [pop_until t key] removes every entry with priority [<= key], in
    ascending order. *)

val clear : 'a t -> unit

val iter : 'a t -> (float -> 'a -> unit) -> unit
(** Iterate in unspecified order (heap order, not sorted). *)
