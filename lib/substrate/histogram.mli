(** Log-binned histograms and CDF extraction.

    The paper's figures bin object sizes and lifetimes on logarithmic axes
    (e.g. Fig. 7 sizes from 32 B to 1 TiB, Fig. 8 lifetimes from under 1 us
    to over 7 days).  A histogram here maps positive values to power-law bins
    [base^k] and supports weighted counts so the same structure serves both
    "number of objects" and "bytes of memory" views. *)

type t

val create : ?base:float -> ?lo:float -> ?hi:float -> unit -> t
(** [create ~base ~lo ~hi ()] covers [\[lo, hi\]] with bins at powers of
    [base] (default [base = 2.0], [lo = 1.0], [hi = 2^50]).  Values outside
    the range clamp into the edge bins. *)

val add : t -> ?weight:float -> float -> unit
(** Record one observation with the given weight (default 1.0). *)

val bin_index : t -> float -> int
(** The bin {!add} would place the value in. *)

val add_at : t -> int -> weight:float -> unit
(** Record one observation directly into a precomputed bin.  Callers feeding
    several same-geometry histograms from one value (e.g. an object-count and
    a byte-weighted view of the same sizes) can pay for the logarithm in
    {!bin_index} once. *)

val total_weight : t -> float
val count : t -> int

val bins : t -> (float * float) array
(** [(lower_bound, weight)] for each non-empty bin, ascending. *)

val cdf : t -> (float * float) array
(** [(upper_bound, cumulative_fraction)] per non-empty bin; the final
    fraction is 1.0 (empty histogram yields [||]). *)

val fraction_below : t -> float -> float
(** Fraction of total weight in bins whose upper bound is <= the argument. *)

val fraction_above : t -> float -> float
(** [1 - fraction_below]. *)

val quantile : t -> float -> float
(** Approximate value at the given cumulative fraction (bin lower bound). *)

val merge : t -> t -> t
(** Sum of two histograms with identical geometry.
    @raise Invalid_argument on mismatched geometry. *)
