(* Array-backed binary min-heap, float key + three unboxed int payload
   slots in parallel arrays.  The sift logic mirrors {!Binheap} (strict [<]
   comparisons) so replacing a [Binheap] of records with this heap preserves
   the pop order of equal-key entries exactly. *)

type t = {
  mutable keys : float array;
  mutable a : int array;
  mutable b : int array;
  mutable c : int array;
  mutable len : int;
}

let create ?(initial_capacity = 16) () =
  let cap = max 1 initial_capacity in
  {
    keys = Array.make cap 0.0;
    a = Array.make cap 0;
    b = Array.make cap 0;
    c = Array.make cap 0;
    len = 0;
  }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let capacity = Array.length t.keys in
  if t.len = capacity then begin
    let bigger src zero =
      let dst = Array.make (2 * capacity) zero in
      Array.blit src 0 dst 0 t.len;
      dst
    in
    t.keys <- bigger t.keys 0.0;
    t.a <- bigger t.a 0;
    t.b <- bigger t.b 0;
    t.c <- bigger t.c 0
  end

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let v = t.a.(i) in
  t.a.(i) <- t.a.(j);
  t.a.(j) <- v;
  let v = t.b.(i) in
  t.b.(i) <- t.b.(j);
  t.b.(j) <- v;
  let v = t.c.(i) in
  t.c.(i) <- t.c.(j);
  t.c.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(i) < t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.len && t.keys.(left) < t.keys.(!smallest) then smallest := left;
  if right < t.len && t.keys.(right) < t.keys.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key ~a ~b ~c =
  grow t;
  let i = t.len in
  t.keys.(i) <- key;
  t.a.(i) <- a;
  t.b.(i) <- b;
  t.c.(i) <- c;
  t.len <- t.len + 1;
  sift_up t i

let min_key t = if t.len = 0 then nan else t.keys.(0)

let remove_min t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.keys.(0) <- t.keys.(t.len);
    t.a.(0) <- t.a.(t.len);
    t.b.(0) <- t.b.(t.len);
    t.c.(0) <- t.c.(t.len);
    sift_down t 0
  end

let drain_until t bound f =
  while t.len > 0 && t.keys.(0) <= bound do
    let key = t.keys.(0) and a = t.a.(0) and b = t.b.(0) and c = t.c.(0) in
    remove_min t;
    f ~key ~a ~b ~c
  done

let clear t = t.len <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f ~key:t.keys.(i) ~a:t.a.(i) ~b:t.b.(i) ~c:t.c.(i)
  done
