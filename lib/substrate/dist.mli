(** Probability distributions for workload synthesis.

    Application profiles (object sizes, lifetimes, request inter-arrival
    times, thread counts) are expressed as samplers over these distributions.
    Every sampler draws from an {!Rng.t} so simulations stay deterministic. *)

type t
(** A real-valued distribution. *)

val constant : float -> t
(** Point mass at the given value. *)

val uniform : lo:float -> hi:float -> t
(** Continuous uniform on [\[lo, hi)]. *)

val exponential : mean:float -> t
(** Exponential with the given mean (rate [1/mean]). *)

val lognormal : mu:float -> sigma:float -> t
(** Log-normal: [exp(N(mu, sigma^2))]. *)

val pareto : scale:float -> shape:float -> t
(** Pareto (type I) with minimum [scale] and tail index [shape]. *)

val mixture : (float * t) list -> t
(** Weighted mixture; weights are normalized and must sum to a positive
    value.  @raise Invalid_argument on an empty list or nonpositive total. *)

val empirical : (float * float) list -> t
(** [empirical points] interpolates an inverse-CDF from [(quantile, value)]
    pairs with quantiles in [\[0, 1\]]; pairs are sorted internally.  Sampling
    inverts a uniform draw through piecewise log-linear interpolation on the
    values (values must be positive).
    @raise Invalid_argument on fewer than two points. *)

val shifted : float -> t -> t
(** [shifted delta d] adds [delta] to every sample. *)

val scaled : float -> t -> t
(** [scaled factor d] multiplies every sample by [factor > 0]. *)

val clamped : lo:float -> hi:float -> t -> t
(** Clamp samples into [\[lo, hi\]]. *)

val sample : t -> Rng.t -> float
(** Draw one sample. *)

val mean_estimate : t -> Rng.t -> n:int -> float
(** Monte-Carlo mean of [n] samples (used by tests). *)

(** {2 Discrete helpers} *)

type discrete
(** A precomputed O(1) sampler over ranks [\[0, n)]: cumulative weights plus
    a guide table, owned by the caller — no global memo, no lock.  The
    uniform-draw [->] rank mapping is the inverse-CDF search (smallest rank
    whose cumulative weight reaches the draw), identical to the historical
    cumulative binary search, so seeded streams are preserved. *)

val discrete_of_weights : float array -> discrete
(** Build a sampler from a (cumulative-normalized) weight vector.
    @raise Invalid_argument on an empty array. *)

val zipf_sampler : n:int -> s:float -> discrete
(** Precomputed Zipf(s) sampler over ranks [\[0, n)]; rank 0 is the most
    popular. *)

val discrete_sample : discrete -> Rng.t -> int
(** One draw: one uniform variate, one guide lookup, no allocation. *)

val zipf : Rng.t -> n:int -> s:float -> int
(** One Zipf(s) draw over ranks [\[0, n)]; convenience wrapper that builds
    the table per call — hot paths should hold a {!zipf_sampler}. *)

val zipf_weights : n:int -> s:float -> float array
(** Normalized Zipf(s) probability vector of length [n]. *)

val categorical : Rng.t -> float array -> int
(** Draw an index proportionally to the (non-negative) weights. *)

val table_builds : unit -> int
(** Process-wide count of guide-table constructions (every {!empirical},
    {!mixture}, {!discrete_of_weights} and {!zipf_sampler} builds one).
    Sampling never increments it.  Regression tests pin the delta across a
    fan-out to catch per-arm rebuilds of hoistable setup — e.g. a
    multi-config trace replay must build zero tables and an N-machine
    campaign exactly one (its binary-popularity Zipf sampler). *)
