type t = { mutable data : int array; mutable len : int }

let create ?(initial_capacity = 8) () =
  { data = Array.make (max 1 initial_capacity) 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let push t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Int_stack.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let pop_opt t = if t.len = 0 then None else Some (pop t)
let peek_opt t = if t.len = 0 then None else Some t.data.(t.len - 1)

let peek_up_to t n =
  let k = min n t.len in
  List.init k (fun i -> t.data.(t.len - 1 - i))

let pop_into t buf ~pos ~n =
  let k = min n t.len in
  for i = 0 to k - 1 do
    t.len <- t.len - 1;
    buf.(pos + i) <- t.data.(t.len)
  done;
  k

let pop_up_to t n =
  let k = min n t.len in
  let rec take acc i = if i = k then List.rev acc else take (pop t :: acc) (i + 1) in
  take [] 0

let iter t f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Int_stack.get: out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Int_stack.set: out of bounds";
  t.data.(i) <- v

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Int_stack.truncate: bad length";
  t.len <- n

let clear t = t.len <- 0
