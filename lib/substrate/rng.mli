(** Deterministic pseudo-random number generation.

    The simulator must be reproducible: the fleet A/B experiment framework
    relies on running the control and experiment arms from identical seeds.
    This module provides a small, fast, splittable PRNG (a SplitMix-style
    mixer seeding a xoshiro-style generator, both on native 63-bit int
    arithmetic so drawing allocates nothing) so that independent subsystems
    (machines, processes, threads) can draw from statistically independent
    streams derived from a single root seed. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of [t]'s
    future output.  Advances [t]. *)

val copy : t -> t
(** Snapshot the state; the copy evolves independently. *)

val bits : t -> int
(** Next raw 63 random bits (allocation-free). *)

val bits64 : t -> int64
(** {!bits} boxed as an [int64] (compatibility shim for tests). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
