(** Open-addressing int -> int hash table backed by unboxed Bigarray
    storage: no allocation on [mem]/[find]/[set]/[remove] (resizes aside),
    and the GC never scans the slots.  Used for the event-loop hot tables
    (freed-address set, sampler tracking, recorder id map).

    Keys must be greater than [min_int + 1]; the two smallest ints are
    reserved as internal slot markers. *)

type t

val create : ?initial_capacity:int -> unit -> t
val length : t -> int

val mem : t -> int -> bool

val find : t -> int -> default:int -> int
(** [find t key ~default] is the value bound to [key], or [default]. *)

val set : t -> int -> int -> unit
(** Insert or replace.  @raise Invalid_argument on a reserved key. *)

val remove : t -> int -> unit
(** No-op when the key is absent. *)

val clear : t -> unit
val iter : t -> (int -> int -> unit) -> unit
val fold : t -> 'a -> ('a -> int -> int -> 'a) -> 'a
