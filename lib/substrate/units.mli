(** Byte and time unit constants and pretty-printers used across the
    simulator.  All sizes are in bytes and all times in nanoseconds unless a
    suffix says otherwise. *)

val kib : int
(** 1024 bytes. *)

val mib : int
(** 1024 KiB. *)

val gib : int
(** 1024 MiB. *)

val tcmalloc_page_size : int
(** The TCMalloc page: 8 KiB (two native x86 pages, per the paper Sec. 2.1). *)

val hugepage_size : int
(** x86 transparent hugepage: 2 MiB. *)

val pages_per_hugepage : int
(** [hugepage_size / tcmalloc_page_size] = 256. *)

val ns : float
(** One nanosecond, expressed in nanoseconds (identity; for readability). *)

val us : float
(** One microsecond in nanoseconds. *)

val ms : float
(** One millisecond in nanoseconds. *)

val sec : float
(** One second in nanoseconds. *)

val minute : float
(** One minute in nanoseconds. *)

val hour : float
(** One hour in nanoseconds. *)

val day : float
(** One day in nanoseconds. *)

val pp_bytes : Format.formatter -> int -> unit
(** Render a byte count with a binary-unit suffix, e.g. ["1.5 MiB"]. *)

val pp_duration : Format.formatter -> float -> unit
(** Render a duration in ns with an adaptive unit, e.g. ["3.1 ns"], ["2 d"]. *)

val bytes_to_string : int -> string
(** [Format.asprintf "%a" pp_bytes]. *)

val duration_to_string : float -> string
(** [Format.asprintf "%a" pp_duration]. *)
