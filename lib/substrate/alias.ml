(* Walker/Vose alias tables: O(1) draws from an arbitrary discrete
   distribution after O(n) setup.

   One uniform draw is split into a column index (high part) and a biased
   coin (fractional part); the coin picks between the column's own outcome
   and its alias.  This is the textbook structure for O(1) categorical
   sampling and is what new distributions should use.

   Note on streams: the alias decomposition maps a uniform [u] to an
   outcome through a {e different} function than inverse-CDF search does,
   so swapping it under an existing seeded sampler changes the draw
   sequence (not the distribution).  The legacy samplers in {!Dist} keep
   their inverse-CDF mapping bit-for-bit (accelerated with guide tables);
   [Alias] is for call sites without a pinned stream. *)

type t = {
  prob : float array;   (* acceptance threshold per column, scaled by n *)
  alias : int array;    (* fallback outcome per column *)
}

let create weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Alias.create: empty weights";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if not (total > 0.0) then invalid_arg "Alias.create: nonpositive total weight";
  Array.iter
    (fun w -> if not (w >= 0.0) then invalid_arg "Alias.create: negative weight")
    weights;
  let nf = float_of_int n in
  (* Scaled probabilities: mean 1.0 by construction. *)
  let p = Array.map (fun w -> w *. nf /. total) weights in
  let prob = Array.make n 1.0 in
  let alias = Array.init n (fun i -> i) in
  let small = Stack.create () and large = Stack.create () in
  Array.iteri
    (fun i pi -> if pi < 1.0 then Stack.push i small else Stack.push i large)
    p;
  while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- p.(s);
    alias.(s) <- l;
    (* The large column donates mass to top the small one up to 1. *)
    p.(l) <- p.(l) +. p.(s) -. 1.0;
    if p.(l) < 1.0 then Stack.push l small else Stack.push l large
  done;
  (* Leftovers are 1.0 up to rounding; their alias stays self. *)
  Stack.iter (fun i -> prob.(i) <- 1.0) small;
  Stack.iter (fun i -> prob.(i) <- 1.0) large;
  { prob; alias }

let length t = Array.length t.prob

let[@inline] sample t rng =
  let n = Array.length t.prob in
  let scaled = Rng.unit_float rng *. float_of_int n in
  let i = int_of_float scaled in
  (* u < 1 so i <= n-1; guard anyway against FP edge rounding. *)
  let i = if i >= n then n - 1 else i in
  if scaled -. float_of_int i < Array.unsafe_get t.prob i then i
  else Array.unsafe_get t.alias i
