(** A growable array of unboxed floats.

    Telemetry time series (thread counts, rseq restarts) append one sample
    per control-plane tick for the whole simulation; a float-array vector
    keeps that O(1) amortized with zero per-sample boxing, where the
    previous [(float * int) list] accumulators allocated a tuple and a cons
    cell each ({!Int_stack} is the int-payload counterpart). *)

type t

val create : ?initial_capacity:int -> unit -> t
val length : t -> int
val push : t -> float -> unit
val get : t -> int -> float
val set : t -> int -> float -> unit

val truncate : t -> int -> unit
(** [truncate t n] keeps the first [n] elements (used by series
    downsampling). *)

val clear : t -> unit
val iter : t -> (float -> unit) -> unit
val to_list : t -> float list
