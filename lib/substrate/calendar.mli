(** Hierarchical timing-wheel event queue ("calendar queue") with float
    nanosecond keys bucketed on integer ticks: O(1) amortized push and pop
    against the O(log n) sifts of {!Event_heap}, which remains the
    differential-testing reference for this module.

    Keys must be finite and non-negative.  The top wheel spans past any
    representable tick, so far-future sentinels (e.g. 1e18 ns) need no
    overflow path.

    Ordering contract: [drain_until] delivers events in nondecreasing key
    order; events with equal keys are delivered in push (FIFO) order.

    The drain callback must not push events into the queue being drained
    (the driver's free events satisfy this); pushes between drains are
    unrestricted. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** [initial_capacity] is accepted for {!Event_heap} interface parity and
    ignored; buckets size themselves on demand. *)

val length : t -> int
val is_empty : t -> bool

val push : t -> float -> a:int -> b:int -> c:int -> unit
(** Insert an event with three unboxed int payload slots.
    @raise Invalid_argument if the key is negative or NaN. *)

val drain_until : t -> float -> (key:float -> a:int -> b:int -> c:int -> unit) -> unit
(** Pop every event with [key <= bound] in (key, insertion) order. *)

val drain_payloads : t -> float -> (a:int -> b:int -> c:int -> unit) -> unit
(** {!drain_until} without the key in the callback.  Passing a float to a
    non-inlined closure boxes it, so key-oblivious consumers (the workload
    driver's free events) save two minor words per event here. *)

val clear : t -> unit

val iter : t -> (key:float -> a:int -> b:int -> c:int -> unit) -> unit
(** Visit pending events in unspecified order. *)
