(** Plain-text table rendering for the bench harness.

    Every reproduced table/figure is printed as an aligned ASCII table so the
    bench output can be diffed against EXPERIMENTS.md. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells and long rows
    truncated to the column count. *)

val render : t -> string
(** The full table, including title, header rule and rows. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a blank line. *)

(** {2 Cell formatting helpers} *)

val cell_f : ?decimals:int -> float -> string
(** Fixed-point float cell (default 2 decimals). *)

val cell_pct : ?decimals:int -> float -> string
(** Percentage cell with a [%] suffix, e.g. ["1.40%"]. *)

val cell_signed_pct : ?decimals:int -> float -> string
(** Percentage with an explicit sign, e.g. ["+1.40%"], ["-0.82%"]. *)

val cell_bytes : int -> string
(** Binary-unit byte cell via {!Units.pp_bytes}. *)

val cell_duration : float -> string
(** Adaptive time cell via {!Units.pp_duration}. *)
