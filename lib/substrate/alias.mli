(** Walker/Vose alias-table sampling: O(1) draws from a discrete
    distribution after O(n) construction.

    Swapping an inverse-CDF sampler for an alias table changes the
    uniform-draw-to-outcome mapping (the distribution is identical, the
    seeded stream is not), so use this for call sites without a pinned RNG
    stream; {!Dist}'s legacy samplers keep their exact inverse-CDF mapping
    via guide tables instead. *)

type t

val create : float array -> t
(** Build the table from non-negative weights (normalized internally).
    @raise Invalid_argument on an empty array or nonpositive total. *)

val length : t -> int
(** Number of outcomes. *)

val sample : t -> Rng.t -> int
(** One draw: a single uniform variate, two array reads, no allocation. *)
