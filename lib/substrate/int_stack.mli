(** A growable stack of unboxed ints.

    The allocator front-end stores object addresses in per-(vCPU, size-class)
    stacks that are pushed/popped on every simulated malloc/free; an
    int-array stack avoids list cells on that hot path. *)

type t

val create : ?initial_capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> int -> unit

val pop : t -> int
(** @raise Invalid_argument when empty. *)

val pop_opt : t -> int option
val peek_opt : t -> int option

val peek_up_to : t -> int -> int list
(** [peek_up_to t n] is the list {!pop_up_to} would return (at most [n]
    elements, most-recent first) without removing anything — the staging
    half of a restartable flush. *)

val pop_up_to : t -> int -> int list
(** [pop_up_to t n] removes at most [n] elements, most-recent first. *)

val pop_into : t -> int array -> pos:int -> n:int -> int
(** [pop_into t buf ~pos ~n] is {!pop_up_to} without the list: at most [n]
    elements move into [buf.(pos) ..], most-recent first, returning how
    many.  The allocation-free batch-transfer primitive. *)

val iter : t -> (int -> unit) -> unit
(** Bottom-to-top iteration. *)

val get : t -> int -> int
(** [get t i] is the [i]-th element from the bottom. *)

val set : t -> int -> int -> unit

val truncate : t -> int -> unit
(** [truncate t n] keeps the bottom [n] elements (series downsampling). *)

val clear : t -> unit
