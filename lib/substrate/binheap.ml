type 'a t = {
  mutable keys : float array;
  mutable values : 'a array;
  mutable len : int;
}

let create () = { keys = Array.make 16 0.0; values = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let grow t v =
  let capacity = Array.length t.keys in
  if t.len = capacity then begin
    let keys = Array.make (2 * capacity) 0.0 in
    Array.blit t.keys 0 keys 0 t.len;
    t.keys <- keys;
    let values = Array.make (2 * capacity) v in
    Array.blit t.values 0 values 0 t.len;
    t.values <- values
  end
  else if Array.length t.values = 0 then t.values <- Array.make capacity v

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let v = t.values.(i) in
  t.values.(i) <- t.values.(j);
  t.values.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(i) < t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.len && t.keys.(left) < t.keys.(!smallest) then smallest := left;
  if right < t.len && t.keys.(right) < t.keys.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key v =
  grow t v;
  t.keys.(t.len) <- key;
  t.values.(t.len) <- v;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some (t.keys.(0), t.values.(0))

let pop t =
  if t.len = 0 then None
  else begin
    let key = t.keys.(0) and v = t.values.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.keys.(0) <- t.keys.(t.len);
      t.values.(0) <- t.values.(t.len);
      sift_down t 0
    end;
    Some (key, v)
  end

let pop_until t bound =
  let rec loop acc =
    match peek t with
    | Some (key, _) when key <= bound ->
      (match pop t with Some entry -> loop (entry :: acc) | None -> acc)
    | Some _ | None -> acc
  in
  List.rev (loop [])

let clear t = t.len <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f t.keys.(i) t.values.(i)
  done
