type t = { mutable data : float array; mutable len : int }

let create ?(initial_capacity = 16) () =
  { data = Array.make (max 1 initial_capacity) 0.0; len = 0 }

let length t = t.len

let push t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Fvec.get: out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Fvec.set: out of bounds";
  t.data.(i) <- v

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Fvec.truncate: bad length";
  t.len <- n

let clear t = t.len <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_list t = List.init t.len (fun i -> t.data.(i))
