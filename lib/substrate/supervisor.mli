(** Supervised execution of restartable tasks.

    A warehouse-scale campaign runs thousands of independent simulated
    machines; some of them crash, straggle past their deadline, or return
    damaged results.  The supervisor turns one fallible task into a
    bounded retry loop with seeded exponential backoff charged to
    {e simulated} time, and quarantines tasks that exhaust their budget so
    the campaign degrades to partial coverage instead of aborting.

    Determinism contract: everything the supervisor decides — the backoff
    schedule, the failure classification, the final verdict — is a pure
    function of the policy, the task index, and the task's own behavior.
    No wall clock, no shared state: supervised tasks can run on any domain
    in any order and the per-task outcome is identical. *)

type policy = {
  max_attempts : int;  (** Total attempts (first try + retries), >= 1. *)
  base_backoff_ns : float;  (** Simulated delay before the first retry. *)
  backoff_multiplier : float;  (** Growth per consecutive failure, >= 1. *)
  max_backoff_ns : float;  (** Ceiling on any single backoff delay. *)
  jitter : float;
      (** Seeded jitter fraction in [0, 1): each delay is scaled by a
          deterministic draw from [1 - jitter, 1 + jitter). *)
  seed : int;  (** Root seed of the jitter streams. *)
}

val default_policy : policy
(** 4 attempts, 100 ms base, x2 growth, 10 s ceiling, 0.25 jitter. *)

val validate_policy : policy -> unit
(** @raise Invalid_argument on a nonsensical policy. *)

val backoff_ns : policy -> task:int -> failures:int -> float
(** Simulated delay charged before the retry that follows the [failures]-th
    consecutive failure (1-based).  Pure: same policy, task and failure
    ordinal always yield the same delay. *)

type failure =
  | Crash of string  (** The task raised mid-run. *)
  | Straggler of { deadline_ns : float; observed_ns : float }
      (** The task's simulated clock passed its deadline (hang). *)
  | Corrupt of string  (** The task returned, but validation rejected it. *)

val describe_failure : failure -> string

exception Failed of failure
(** Tasks raise this to report a classified failure; any other exception
    is recorded as a {!Crash} of its printed form. *)

type 'a verdict =
  | Completed of 'a
  | Quarantined  (** Every attempt failed; the task is excluded. *)

type 'a outcome = {
  verdict : 'a verdict;
  attempts : int;  (** Attempts actually made, in [1, max_attempts]. *)
  backoff_ns : float;  (** Total simulated backoff charged to this task. *)
  failures : failure list;  (** Oldest first; length = failed attempts. *)
}

val run :
  policy -> task:int -> ?validate:('a -> (unit, string) result) ->
  (attempt:int -> 'a) -> 'a outcome
(** Run [f ~attempt:1], retrying with backoff on failure until success or
    [max_attempts].  [validate] (default: accept) screens returned values;
    a rejection counts as a {!Corrupt} failure and is retried like any
    other.  Backoff is charged after every failure except the last attempt
    of a quarantined task (there is no retry to wait for). *)
