(** Simulated time.

    A clock is a monotone nanosecond counter advanced explicitly by the
    driver.  Periodic activities (the per-CPU cache resizer, transfer-cache
    release, pageheap release, telemetry snapshots) register as tickers and
    fire when the clock crosses their next deadline. *)

type t

val create : unit -> t
(** A clock at t = 0 ns. *)

val now : t -> float
(** Current simulated time, nanoseconds. *)

val advance : t -> float -> unit
(** [advance t dt] moves time forward by [dt >= 0] ns and fires any due
    tickers in deadline order. *)

val advance_to : t -> float -> unit
(** Move to an absolute time (no-op if in the past). *)

type ticker

val every : t -> period:float -> (float -> unit) -> ticker
(** [every t ~period f] calls [f now] each time [period] ns elapse.  The
    first firing is one period from registration time. *)

val cancel : t -> ticker -> unit
(** Stop a ticker; idempotent. *)
