(* A fixed-size domain pool with chunked index claiming.

   Tasks are published as a [run : int -> unit] closure plus an index range;
   workers (and the calling domain) claim indices under the pool mutex and
   execute outside it.  The closure writes into a caller-owned results
   array, so the typed plumbing lives entirely in [map]; completion is
   detected when every index is claimed and no claimer is still running.
   The final handshake through the mutex is also what makes every task's
   writes visible to the caller (release/acquire on the lock). *)

type pool = {
  n_workers : int;
  m : Mutex.t;
  cv : Condition.t;  (* work available / slot freed / batch finished *)
  mutable run : int -> unit;  (* current batch task body *)
  mutable next : int;  (* next unclaimed index *)
  mutable limit : int;  (* one past the last index *)
  mutable width : int;  (* max concurrent claimers for this batch *)
  mutable active : int;  (* claimers currently executing a task *)
  mutable domains : unit Domain.t list;
}

let env_jobs () =
  match Sys.getenv_opt "WSC_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let override = Atomic.make 0 (* 0 = unset *)

let set_default_jobs n =
  if n < 1 then invalid_arg "Parallel.set_default_jobs: jobs must be >= 1";
  Atomic.set override n

let default_jobs () =
  match Atomic.get override with
  | n when n >= 1 -> n
  | _ -> (
    match env_jobs () with
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count ()))

(* Physical parallelism actually available, independent of the [--jobs] /
   [WSC_DOMAINS] request.  On a single-core host, extra domains only add
   scheduling churn and minor-heap pressure — [map] bypasses the pool
   there, which keeps results identical (the map contract is
   order-deterministic) while reporting the truth via {!host_cores}. *)
let host_cores () = max 1 (Domain.recommended_domain_count ())

(* One batch at a time may drive the pool; a [map] issued from inside a
   task (nested parallelism) falls back to sequential execution. *)
let busy = Atomic.make false

let no_work = fun (_ : int) -> ()

(* Claim-and-run until the batch has no claimable index left.  Used by both
   worker domains and the calling domain; the caller additionally knows the
   batch is over when [next = limit && active = 0].  Runs with [m] held,
   releasing it around each task. *)
let claim_loop pool ~until_done =
  let rec loop () =
    if pool.next < pool.limit && pool.active < pool.width then begin
      let i = pool.next in
      pool.next <- i + 1;
      pool.active <- pool.active + 1;
      let run = pool.run in
      Mutex.unlock pool.m;
      run i;
      Mutex.lock pool.m;
      pool.active <- pool.active - 1;
      (* A slot freed and possibly the batch finished: wake claimers and
         the caller alike. *)
      Condition.broadcast pool.cv;
      loop ()
    end
    else if until_done && not (pool.next >= pool.limit && pool.active = 0) then begin
      Condition.wait pool.cv pool.m;
      loop ()
    end
    else if not until_done then begin
      Condition.wait pool.cv pool.m;
      loop ()
    end
  in
  loop ()

let worker pool () =
  Mutex.lock pool.m;
  (* Workers never return; they block between batches. *)
  claim_loop pool ~until_done:false

(* The pool lives for the whole process; workers block on the condition
   variable between batches.  Sized once, at first parallel use, to the
   largest job count the process default allows (narrower batches are
   throttled by [width]). *)
let the_pool : pool option Atomic.t = Atomic.make None

let get_pool ~jobs =
  match Atomic.get the_pool with
  | Some p -> p
  | None ->
    let n_workers = max 1 (max jobs (default_jobs ()) - 1) in
    let p =
      {
        n_workers;
        m = Mutex.create ();
        cv = Condition.create ();
        run = no_work;
        next = 0;
        limit = 0;
        width = 0;
        active = 0;
        domains = [];
      }
    in
    p.domains <- List.init n_workers (fun _ -> Domain.spawn (worker p));
    Atomic.set the_pool (Some p);
    p

let pool_size () =
  match Atomic.get the_pool with None -> 0 | Some p -> p.n_workers

(* Drive one batch: publish [run] over [0, n), participate in claiming, and
   return once the last claimed task has finished. *)
let run_batch pool ~jobs ~n run =
  Mutex.lock pool.m;
  pool.run <- run;
  pool.next <- 0;
  pool.limit <- n;
  pool.width <- jobs;
  pool.active <- 0;
  Condition.broadcast pool.cv;
  claim_loop pool ~until_done:true;
  pool.run <- no_work;
  pool.limit <- 0;
  Mutex.unlock pool.m

let map ?jobs f inputs =
  let n = Array.length inputs in
  let jobs = match jobs with Some j when j >= 1 -> j | Some _ | None -> default_jobs () in
  let jobs = min jobs n in
  if n = 0 then [||]
  else if jobs <= 1 || host_cores () = 1 || not (Atomic.compare_and_set busy false true)
  then
    (* Reference mode, tiny batch, or nested call: caller's domain only. *)
    Array.map f inputs
  else begin
    let results : 'b option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let run i =
      match f inputs.(i) with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e
    in
    let pool = get_pool ~jobs in
    Fun.protect
      ~finally:(fun () -> Atomic.set busy false)
      (fun () -> run_batch pool ~jobs:(min jobs (pool.n_workers + 1)) ~n run);
    (* Index-ordered reduction: surface the first failure by task index,
       else materialize results in input order. *)
    Array.iter (function Some exn -> raise exn | None -> ()) errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?jobs f inputs = Array.to_list (map ?jobs f (Array.of_list inputs))
