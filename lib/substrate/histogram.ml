type t = {
  base : float;
  log_base : float;
  lo : float;
  n_bins : int;
  weights : float array;
  mutable count : int;
  (* one-slot accumulator: float-array stores stay unboxed, a mutable float
     field in this mixed record would box on every add *)
  total : float array;
}

let create ?(base = 2.0) ?(lo = 1.0) ?(hi = 1.125899906842624e15 (* 2^50 *)) () =
  if base <= 1.0 then invalid_arg "Histogram.create: base must exceed 1";
  if lo <= 0.0 || hi <= lo then invalid_arg "Histogram.create: need 0 < lo < hi";
  let log_base = log base in
  let n_bins = 1 + int_of_float (ceil (log (hi /. lo) /. log_base)) in
  {
    base;
    log_base;
    lo;
    n_bins;
    weights = Array.make n_bins 0.0;
    count = 0;
    total = Array.make 1 0.0;
  }

let[@inline] bin_index t v =
  if v <= t.lo then 0
  else begin
    let idx = int_of_float (Float.floor (log (v /. t.lo) /. t.log_base)) in
    if idx < 0 then 0 else if idx >= t.n_bins then t.n_bins - 1 else idx
  end

let bin_lower t i = t.lo *. (t.base ** float_of_int i)
let bin_upper t i = bin_lower t (i + 1)

let[@inline] add_at t idx ~weight =
  t.weights.(idx) <- t.weights.(idx) +. weight;
  t.count <- t.count + 1;
  t.total.(0) <- t.total.(0) +. weight

let add t ?(weight = 1.0) v = add_at t (bin_index t v) ~weight
let total_weight t = t.total.(0)
let count t = t.count

let bins t =
  let acc = ref [] in
  for i = t.n_bins - 1 downto 0 do
    if t.weights.(i) > 0.0 then acc := (bin_lower t i, t.weights.(i)) :: !acc
  done;
  Array.of_list !acc

let cdf t =
  if t.total.(0) <= 0.0 then [||]
  else begin
    let acc = ref 0.0 in
    let out = ref [] in
    for i = 0 to t.n_bins - 1 do
      if t.weights.(i) > 0.0 then begin
        acc := !acc +. t.weights.(i);
        out := (bin_upper t i, !acc /. t.total.(0)) :: !out
      end
    done;
    Array.of_list (List.rev !out)
  end

let fraction_below t v =
  if t.total.(0) <= 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to t.n_bins - 1 do
      if bin_upper t i <= v then acc := !acc +. t.weights.(i)
    done;
    !acc /. t.total.(0)
  end

let fraction_above t v = 1.0 -. fraction_below t v

let quantile t q =
  if t.total.(0) <= 0.0 then invalid_arg "Histogram.quantile: empty";
  let target = q *. t.total.(0) in
  let acc = ref 0.0 in
  let result = ref (bin_lower t (t.n_bins - 1)) in
  (try
     for i = 0 to t.n_bins - 1 do
       acc := !acc +. t.weights.(i);
       if !acc >= target && t.weights.(i) > 0.0 then begin
         result := bin_lower t i;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let merge a b =
  if a.base <> b.base || a.lo <> b.lo || a.n_bins <> b.n_bins then
    invalid_arg "Histogram.merge: geometry mismatch";
  let merged =
    {
      base = a.base;
      log_base = a.log_base;
      lo = a.lo;
      n_bins = a.n_bins;
      weights = Array.mapi (fun i w -> w +. b.weights.(i)) a.weights;
      count = a.count + b.count;
      total = Array.make 1 (a.total.(0) +. b.total.(0));
    }
  in
  merged
