(** Streaming statistics, quantiles, and rank correlation.

    The telemetry and the bench harness aggregate millions of simulated
    events; the accumulators here are O(1) per observation (Welford) except
    for exact quantiles, which retain samples. *)

(** {1 Streaming moments} *)

module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Unbiased sample variance; 0 for fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** [nan] when empty. *)

  val max : t -> float
  (** [nan] when empty. *)

  val total : t -> float
  val merge : t -> t -> t
  (** Combine two accumulators (parallel Welford merge). *)
end

(** {1 Exact sample quantiles} *)

module Sample : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val quantile : t -> float -> float
  (** [quantile t q] with [q] in [\[0, 1\]], by linear interpolation between
      order statistics.  @raise Invalid_argument when empty. *)

  val mean : t -> float
  val values : t -> float array
  (** Sorted copy of the observations. *)
end

(** {1 Correlation} *)

val spearman : (float * float) list -> float
(** Spearman rank correlation coefficient of paired observations, with
    average ranks for ties.  @raise Invalid_argument on fewer than 2 pairs. *)

val pearson : (float * float) list -> float
(** Pearson linear correlation. @raise Invalid_argument on fewer than 2 pairs. *)

(** {1 Small helpers} *)

val percent_change : before:float -> after:float -> float
(** [(after - before) / before * 100.], or [0.] when [before = 0.]. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values. @raise Invalid_argument when empty. *)
