type policy = {
  max_attempts : int;
  base_backoff_ns : float;
  backoff_multiplier : float;
  max_backoff_ns : float;
  jitter : float;
  seed : int;
}

let default_policy =
  {
    max_attempts = 4;
    base_backoff_ns = 100.0 *. Units.ms;
    backoff_multiplier = 2.0;
    max_backoff_ns = 10.0 *. Units.sec;
    jitter = 0.25;
    seed = 1;
  }

let validate_policy p =
  if p.max_attempts < 1 then invalid_arg "Supervisor: max_attempts must be >= 1";
  if p.base_backoff_ns < 0.0 || Float.is_nan p.base_backoff_ns then
    invalid_arg "Supervisor: base_backoff_ns must be >= 0";
  if p.backoff_multiplier < 1.0 then
    invalid_arg "Supervisor: backoff_multiplier must be >= 1";
  if p.max_backoff_ns < p.base_backoff_ns then
    invalid_arg "Supervisor: max_backoff_ns must be >= base_backoff_ns";
  if p.jitter < 0.0 || p.jitter >= 1.0 then
    invalid_arg "Supervisor: jitter must be in [0, 1)"

(* One throwaway generator per (policy seed, task, failure ordinal): the
   delay depends on nothing drawn before it, so retries of task [i] cost
   the same simulated time whether its neighbors failed or not. *)
let backoff_ns p ~task ~failures =
  if failures < 1 then invalid_arg "Supervisor.backoff_ns: failures must be >= 1";
  let raw =
    p.base_backoff_ns *. (p.backoff_multiplier ** float_of_int (failures - 1))
  in
  let capped = Float.min raw p.max_backoff_ns in
  if p.jitter = 0.0 then capped
  else begin
    let rng =
      Rng.create
        (((p.seed * 1_000_003) lxor (task * 2_654_435_761) lxor (failures * 97_001))
        land max_int)
    in
    capped *. (1.0 -. p.jitter +. (2.0 *. p.jitter *. Rng.unit_float rng))
  end

type failure =
  | Crash of string
  | Straggler of { deadline_ns : float; observed_ns : float }
  | Corrupt of string

let describe_failure = function
  | Crash msg -> Printf.sprintf "crash: %s" msg
  | Straggler { deadline_ns; observed_ns } ->
    Printf.sprintf "straggler: %.0f ns past the %.0f ns deadline"
      (observed_ns -. deadline_ns) deadline_ns
  | Corrupt msg -> Printf.sprintf "corrupt result: %s" msg

exception Failed of failure

let () =
  Printexc.register_printer (function
    | Failed f -> Some (Printf.sprintf "Supervisor.Failed(%s)" (describe_failure f))
    | _ -> None)

type 'a verdict = Completed of 'a | Quarantined

type 'a outcome = {
  verdict : 'a verdict;
  attempts : int;
  backoff_ns : float;
  failures : failure list;
}

let run p ~task ?(validate = fun _ -> Ok ()) f =
  validate_policy p;
  let failures = ref [] in
  let backoff = ref 0.0 in
  let rec attempt_from n =
    let result =
      match f ~attempt:n with
      | value -> (
        match validate value with
        | Ok () -> Ok value
        | Error msg -> Error (Corrupt msg))
      | exception Failed failure -> Error failure
      | exception exn -> Error (Crash (Printexc.to_string exn))
    in
    match result with
    | Ok value -> { verdict = Completed value; attempts = n; backoff_ns = !backoff; failures = List.rev !failures }
    | Error failure ->
      failures := failure :: !failures;
      if n >= p.max_attempts then
        { verdict = Quarantined; attempts = n; backoff_ns = !backoff; failures = List.rev !failures }
      else begin
        backoff := !backoff +. backoff_ns p ~task ~failures:n;
        attempt_from (n + 1)
      end
  in
  attempt_from 1
