(* Hierarchical timing-wheel event queue ("calendar queue") keyed by
   float nanosecond timestamps, bucketed on their integer ticks.

   Structure: [levels] wheels of [slots] buckets each.  Level [l] buckets
   are [bucket_ns * slots^l] ns wide, so the top level spans beyond any
   representable tick (2^63 ns ~ 292 years) — no overflow heap is needed;
   the driver's "far future" startup allocations (1e18 ns) land in a top
   wheel.  An event's level is the lowest whose 32-slot window, anchored at
   the current drain position, reaches the event's bucket.  Advancing the
   drain position cascades coarse buckets into finer wheels, so every event
   is touched O(levels) times total and push/pop are O(1) amortized —
   against O(log n) sift cost in {!Event_heap} (the differential-testing
   reference for this module).

   Ordering contract: events are delivered in nondecreasing key order, and
   events with {e equal} keys are delivered in push (FIFO) order — each
   entry carries an insertion sequence number and buckets sort by
   (key, seq) before draining.  The binary heap pops equal keys in
   unspecified structure order instead; equal float keys only arise from
   the driver's shared "far future" constant, whose drain order is
   aggregate-insensitive, so the two queues produce identical simulation
   outcomes (test_substrate pins the full-order equivalence modulo ties).

   Reentrancy: the drain callback must not push events (the driver's free
   events never allocate); pushes between drains are unrestricted. *)

let slot_bits = 5
let slots = 1 lsl slot_bits         (* 32 buckets per wheel *)
let slot_mask = slots - 1
let bucket_bits = 10                (* level-0 buckets are 1024 ns wide *)
let levels = 11                     (* covers deltas up to 2^(10+5*11) > 2^63 *)
let max_tick = max_int / 2

(* Entries in struct-of-arrays form: float keys stay unboxed, payloads are
   plain ints, and [seq] breaks equal-key ties in insertion order. *)
type bucket = {
  mutable keys : float array;
  mutable ticks : int array;
  mutable ea : int array;
  mutable eb : int array;
  mutable ec : int array;
  mutable seq : int array;
  mutable blen : int;
  (* Entries below [sorted] are already in (key, seq) order; repeated
     partial drains of the bucket holding "now" only re-insert appends. *)
  mutable sorted : int;
}

type t = {
  buckets : bucket array;           (* levels * slots, flattened *)
  mutable cur : int;                (* every occupied bucket ends after cur *)
  mutable len : int;
  mutable next_seq : int;
  (* [next_occupied] results, as scratch fields to keep drains
     allocation-free. *)
  mutable no_level : int;
  mutable no_index : int;
  mutable no_start : int;
}

let new_bucket () =
  {
    keys = [||];
    ticks = [||];
    ea = [||];
    eb = [||];
    ec = [||];
    seq = [||];
    blen = 0;
    sorted = 0;
  }

let create ?initial_capacity:_ () =
  {
    buckets = Array.init (levels * slots) (fun _ -> new_bucket ());
    cur = 0;
    len = 0;
    next_seq = 0;
    no_level = 0;
    no_index = 0;
    no_start = 0;
  }

let length t = t.len
let is_empty t = t.len = 0

let[@inline] shift_of_level l = bucket_bits + (slot_bits * l)

let bucket_grow b =
  let cap = Array.length b.keys in
  let ncap = if cap = 0 then 8 else 2 * cap in
  let grow_f src =
    let dst = Array.make ncap 0.0 in
    Array.blit src 0 dst 0 b.blen;
    dst
  in
  let grow_i src =
    let dst = Array.make ncap 0 in
    Array.blit src 0 dst 0 b.blen;
    dst
  in
  b.keys <- grow_f b.keys;
  b.ticks <- grow_i b.ticks;
  b.ea <- grow_i b.ea;
  b.eb <- grow_i b.eb;
  b.ec <- grow_i b.ec;
  b.seq <- grow_i b.seq

(* Big one-shot buckets (a cascaded far-future cohort) should give their
   arrays back once drained. *)
let bucket_release b =
  if Array.length b.keys > 4096 then begin
    b.keys <- [||];
    b.ticks <- [||];
    b.ea <- [||];
    b.eb <- [||];
    b.ec <- [||];
    b.seq <- [||]
  end;
  b.blen <- 0;
  b.sorted <- 0

(* Flat bucket index for a tick: the lowest wheel whose 32-slot window
   anchored at [cur] reaches it.  Int-only signature and a separate
   function on purpose: the backend refuses to inline loop-containing
   functions, and keeping the float key out of this call lets the
   (loop-free, inlinable) [push_tick] below store it without boxing. *)
let bucket_index t tick =
  let l = ref 0 in
  while (tick lsr shift_of_level !l) - (t.cur lsr shift_of_level !l) >= slots do
    incr l
  done;
  let sh = shift_of_level !l in
  (!l lsl slot_bits) lor ((tick lsr sh) land slot_mask)

let[@inline] push_tick t ~tick ~key ~a ~b ~c ~seq =
  let bk = Array.unsafe_get t.buckets (bucket_index t tick) in
  let i = bk.blen in
  if i = Array.length bk.keys then bucket_grow bk;
  Array.unsafe_set bk.keys i key;
  Array.unsafe_set bk.ticks i tick;
  Array.unsafe_set bk.ea i a;
  Array.unsafe_set bk.eb i b;
  Array.unsafe_set bk.ec i c;
  Array.unsafe_set bk.seq i seq;
  bk.blen <- i + 1;
  t.len <- t.len + 1

let[@inline] push t key ~a ~b ~c =
  if not (key >= 0.0) then invalid_arg "Calendar.push: key must be >= 0";
  let tick = if key >= float_of_int max_tick then max_tick else int_of_float key in
  (* Late keys (at or before the drain position) go to the current bucket;
     the (key, seq) sort still delivers them first. *)
  let tick = if tick < t.cur then t.cur else tick in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push_tick t ~tick ~key ~a ~b ~c ~seq

(* Sort bucket entries by (key, seq).  Insertion sort: buckets are small in
   steady state, and cascaded cohorts arrive already ordered (cascades
   preserve order), where insertion sort is O(n). *)
let sort_bucket bk =
  let keys = bk.keys and ticks = bk.ticks in
  let ea = bk.ea and eb = bk.eb and ec = bk.ec and seq = bk.seq in
  for i = max 1 bk.sorted to bk.blen - 1 do
    let k = keys.(i) and tk = ticks.(i) in
    let a = ea.(i) and b = eb.(i) and c = ec.(i) and s = seq.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && (keys.(!j) > k || (keys.(!j) = k && seq.(!j) > s)) do
      let j1 = !j + 1 in
      keys.(j1) <- keys.(!j);
      ticks.(j1) <- ticks.(!j);
      ea.(j1) <- ea.(!j);
      eb.(j1) <- eb.(!j);
      ec.(j1) <- ec.(!j);
      seq.(j1) <- seq.(!j);
      decr j
    done;
    let j1 = !j + 1 in
    keys.(j1) <- k;
    ticks.(j1) <- tk;
    ea.(j1) <- a;
    eb.(j1) <- b;
    ec.(j1) <- c;
    seq.(j1) <- s
  done;
  bk.sorted <- bk.blen

(* The occupied bucket with the smallest start tick, as
   (level, flat index, start); ties prefer the coarser wheel so its
   events cascade down before the finer bucket at the same start drains.
   Returns start > max_tick when the queue is empty. *)
let next_occupied t =
  let best_start = ref max_int and best_l = ref (-1) and best_idx = ref 0 in
  for l = 0 to levels - 1 do
    let sh = shift_of_level l in
    let c = t.cur lsr sh in
    (* Every occupied bucket starts at or after [cur] (drain invariant), so
       the lowest conceivable start on this wheel is the first
       width-aligned boundary at/after [cur]; skip the slot scan when even
       that cannot improve on the best so far.  Ties go to the coarser
       wheel (checked later, compared with <=) so its events cascade down
       before an equal-start fine bucket drains. *)
    let lowest = if c lsl sh < t.cur then (c + 1) lsl sh else c lsl sh in
    if lowest <= !best_start then begin
      let base = l lsl slot_bits in
      let off = ref 0 in
      while
        !off < slots
        && (Array.unsafe_get t.buckets (base lor ((c + !off) land slot_mask))).blen = 0
      do
        incr off
      done;
      if !off < slots then begin
        let start = (c + !off) lsl sh in
        if start <= !best_start then begin
          best_start := start;
          best_l := l;
          best_idx := base lor ((c + !off) land slot_mask)
        end
      end
    end
  done;
  t.no_level <- !best_l;
  t.no_index <- !best_idx;
  t.no_start <- !best_start

let cascade t bk start =
  t.cur <- (if start > t.cur then start else t.cur);
  let n = bk.blen in
  bk.blen <- 0;
  t.len <- t.len - n;
  for i = 0 to n - 1 do
    push_tick t ~tick:bk.ticks.(i) ~key:bk.keys.(i) ~a:bk.ea.(i) ~b:bk.eb.(i)
      ~c:bk.ec.(i) ~seq:bk.seq.(i)
  done;
  bucket_release bk

let drain_until t bound f =
  if t.len > 0 && bound >= 0.0 then begin
    let target =
      if bound >= float_of_int max_tick then max_tick else int_of_float bound
    in
    let continue = ref true in
    while !continue && t.len > 0 do
      next_occupied t;
      let l = t.no_level and idx = t.no_index and start = t.no_start in
      if start > target then begin
        if target + 1 > t.cur then t.cur <- target + 1;
        continue := false
      end
      else if l > 0 then cascade t (Array.unsafe_get t.buckets idx) start
      else begin
        if start > t.cur then t.cur <- start;
        let bk = Array.unsafe_get t.buckets idx in
        sort_bucket bk;
        let bucket_end = start + (1 lsl bucket_bits) in
        if bucket_end <= target then begin
          (* Whole bucket is due: every key < bucket_end <= bound. *)
          let n = bk.blen in
          bk.blen <- 0;
          t.len <- t.len - n;
          for i = 0 to n - 1 do
            f ~key:bk.keys.(i) ~a:bk.ea.(i) ~b:bk.eb.(i) ~c:bk.ec.(i)
          done;
          bucket_release bk;
          t.cur <- bucket_end
        end
        else begin
          (* The bucket containing [bound]: emit the due prefix, retain the
             rest, and stop — no other bucket starts at or before target. *)
          let n = bk.blen in
          let e = ref 0 in
          while !e < n && bk.keys.(!e) <= bound do incr e done;
          let emitted = !e in
          for i = 0 to emitted - 1 do
            f ~key:bk.keys.(i) ~a:bk.ea.(i) ~b:bk.eb.(i) ~c:bk.ec.(i)
          done;
          if emitted > 0 then begin
            let m = n - emitted in
            for i = 0 to m - 1 do
              let src = emitted + i in
              bk.keys.(i) <- bk.keys.(src);
              bk.ticks.(i) <- bk.ticks.(src);
              bk.ea.(i) <- bk.ea.(src);
              bk.eb.(i) <- bk.eb.(src);
              bk.ec.(i) <- bk.ec.(src);
              bk.seq.(i) <- bk.seq.(src)
            done;
            bk.blen <- m;
            bk.sorted <- m;
            t.len <- t.len - emitted;
            if m = 0 then begin
              bucket_release bk;
              if target + 1 > t.cur then t.cur <- target + 1
            end
          end;
          continue := false
        end
      end
    done;
    if t.len = 0 && target + 1 > t.cur then t.cur <- target + 1
  end

(* [drain_until] without the key in the callback: the driver's free events
   ignore their timestamp, and passing a float to a non-inlined closure
   boxes it — two minor words per event on the hottest path. *)
let drain_payloads t bound f =
  if t.len > 0 && bound >= 0.0 then begin
    let target =
      if bound >= float_of_int max_tick then max_tick else int_of_float bound
    in
    let continue = ref true in
    while !continue && t.len > 0 do
      next_occupied t;
      let l = t.no_level and idx = t.no_index and start = t.no_start in
      if start > target then begin
        if target + 1 > t.cur then t.cur <- target + 1;
        continue := false
      end
      else if l > 0 then cascade t (Array.unsafe_get t.buckets idx) start
      else begin
        if start > t.cur then t.cur <- start;
        let bk = Array.unsafe_get t.buckets idx in
        sort_bucket bk;
        let bucket_end = start + (1 lsl bucket_bits) in
        if bucket_end <= target then begin
          let n = bk.blen in
          bk.blen <- 0;
          t.len <- t.len - n;
          for i = 0 to n - 1 do
            f ~a:(Array.unsafe_get bk.ea i) ~b:(Array.unsafe_get bk.eb i)
              ~c:(Array.unsafe_get bk.ec i)
          done;
          bucket_release bk;
          t.cur <- bucket_end
        end
        else begin
          let n = bk.blen in
          let e = ref 0 in
          while !e < n && bk.keys.(!e) <= bound do incr e done;
          let emitted = !e in
          for i = 0 to emitted - 1 do
            f ~a:(Array.unsafe_get bk.ea i) ~b:(Array.unsafe_get bk.eb i)
              ~c:(Array.unsafe_get bk.ec i)
          done;
          if emitted > 0 then begin
            let m = n - emitted in
            for i = 0 to m - 1 do
              let src = emitted + i in
              bk.keys.(i) <- bk.keys.(src);
              bk.ticks.(i) <- bk.ticks.(src);
              bk.ea.(i) <- bk.ea.(src);
              bk.eb.(i) <- bk.eb.(src);
              bk.ec.(i) <- bk.ec.(src);
              bk.seq.(i) <- bk.seq.(src)
            done;
            bk.blen <- m;
            bk.sorted <- m;
            t.len <- t.len - emitted;
            if m = 0 then begin
              bucket_release bk;
              if target + 1 > t.cur then t.cur <- target + 1
            end
          end;
          continue := false
        end
      end
    done;
    if t.len = 0 && target + 1 > t.cur then t.cur <- target + 1
  end

let clear t =
  Array.iter (fun bk -> bucket_release bk) t.buckets;
  t.cur <- 0;
  t.len <- 0;
  t.next_seq <- 0

let iter t f =
  Array.iter
    (fun bk ->
      for i = 0 to bk.blen - 1 do
        f ~key:bk.keys.(i) ~a:bk.ea.(i) ~b:bk.eb.(i) ~c:bk.ec.(i)
      done)
    t.buckets
