type ticker = { id : int; period : float; action : float -> unit; mutable live : bool }

type t = {
  mutable now : float;
  queue : ticker Binheap.t;
  mutable next_id : int;
}

let create () = { now = 0.0; queue = Binheap.create (); next_id = 0 }
let[@inline] now t = t.now

let advance_to t target =
  if target > t.now then begin
    (* Fire tickers in deadline order up to the target, rescheduling each as
       it fires so interleaved periods stay correctly ordered. *)
    let rec drain () =
      match Binheap.peek t.queue with
      | Some (deadline, ticker) when deadline <= target ->
        ignore (Binheap.pop t.queue);
        if ticker.live then begin
          t.now <- Float.max t.now deadline;
          ticker.action t.now;
          Binheap.push t.queue (deadline +. ticker.period) ticker
        end;
        drain ()
      | Some _ | None -> ()
    in
    drain ();
    t.now <- target
  end

let advance t dt =
  if dt < 0.0 then invalid_arg "Clock.advance: negative step";
  advance_to t (t.now +. dt)

let every t ~period action =
  if period <= 0.0 then invalid_arg "Clock.every: period must be positive";
  let ticker = { id = t.next_id; period; action; live = true } in
  t.next_id <- t.next_id + 1;
  Binheap.push t.queue (t.now +. period) ticker;
  ticker

let cancel _t ticker = ticker.live <- false
