(* Open-addressing int -> int hash table over unboxed Bigarray storage.

   The simulator's hottest tables (the allocator's freed-address set, the
   leak sampler's tracked-address set, the trace recorder's addr -> id map)
   are int-keyed, int-valued, and queried on every event.  [Hashtbl] costs
   a bucket-list allocation per [replace] and an option per [find_opt];
   this table allocates nothing on any operation except a (rare) resize.

   Keys live in a [Bigarray.Array1] of native ints, so the GC never scans
   the table and membership probes touch exactly one cache line in the
   common case.  Two key values are reserved as slot markers, so keys must
   be greater than [min_int + 1] (addresses and ids in the simulator are
   non-negative).  Collisions use linear probing with tombstone deletion;
   the load factor, counting tombstones, is kept at or below 1/2. *)

open Bigarray

type slots = (int, int_elt, c_layout) Array1.t

type t = {
  mutable keys : slots;
  mutable vals : slots;
  mutable mask : int;      (* capacity - 1; capacity is a power of two *)
  mutable shift : int;     (* 63 - log2 capacity, for multiplicative hashing *)
  mutable live : int;      (* occupied slots *)
  mutable fill : int;      (* occupied + tombstone slots *)
}

let empty_key = min_int
let tombstone = min_int + 1

let fib = 0x2545F4914F6CDD1D

let[@inline] slot_of_key t key = (key * fib) lsr t.shift

let make_slots cap =
  let a : slots = Array1.create int c_layout cap in
  Array1.fill a empty_key;
  a

let rec ceil_pow2 n k = if k >= n then k else ceil_pow2 n (k * 2)

let log2_exact n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let create ?(initial_capacity = 16) () =
  let cap = ceil_pow2 (max 8 initial_capacity) 8 in
  {
    keys = make_slots cap;
    vals = Array1.create int c_layout cap;
    mask = cap - 1;
    shift = 63 - log2_exact cap;
    live = 0;
    fill = 0;
  }

let length t = t.live

(* Find the slot holding [key], or -1. *)
let[@inline] probe_find t key =
  let keys = t.keys in
  let mask = t.mask in
  let i = ref (slot_of_key t key) in
  let found = ref (-1) in
  let continue = ref true in
  while !continue do
    let k = Array1.unsafe_get keys !i in
    if k = key then begin
      found := !i;
      continue := false
    end
    else if k = empty_key then continue := false
    else i := (!i + 1) land mask
  done;
  !found

let mem t key = probe_find t key >= 0

let find t key ~default =
  let s = probe_find t key in
  if s >= 0 then Array1.unsafe_get t.vals s else default

let rec resize t new_cap =
  let old_keys = t.keys and old_vals = t.vals in
  let old_cap = t.mask + 1 in
  t.keys <- make_slots new_cap;
  t.vals <- Array1.create int c_layout new_cap;
  t.mask <- new_cap - 1;
  t.shift <- 63 - log2_exact new_cap;
  t.live <- 0;
  t.fill <- 0;
  for i = 0 to old_cap - 1 do
    let k = Array1.unsafe_get old_keys i in
    if k <> empty_key && k <> tombstone then
      set t k (Array1.unsafe_get old_vals i)
  done

and set t key value =
  if key = empty_key || key = tombstone then
    invalid_arg "Int_table.set: key out of range";
  (* Keep load factor (incl. tombstones) <= 1/2; if most of the fill is
     tombstones, rehash in place instead of doubling. *)
  if 2 * (t.fill + 1) > t.mask + 1 then
    resize t (if 4 * t.live > t.mask + 1 then 2 * (t.mask + 1) else t.mask + 1);
  let keys = t.keys in
  let mask = t.mask in
  let i = ref (slot_of_key t key) in
  let first_tomb = ref (-1) in
  let continue = ref true in
  while !continue do
    let k = Array1.unsafe_get keys !i in
    if k = key then begin
      Array1.unsafe_set t.vals !i value;
      continue := false
    end
    else if k = empty_key then begin
      let dst = if !first_tomb >= 0 then !first_tomb else !i in
      Array1.unsafe_set keys dst key;
      Array1.unsafe_set t.vals dst value;
      t.live <- t.live + 1;
      if !first_tomb < 0 then t.fill <- t.fill + 1;
      continue := false
    end
    else begin
      if k = tombstone && !first_tomb < 0 then first_tomb := !i;
      i := (!i + 1) land mask
    end
  done

let remove t key =
  let s = probe_find t key in
  if s >= 0 then begin
    Array1.unsafe_set t.keys s tombstone;
    t.live <- t.live - 1
  end

let clear t =
  Array1.fill t.keys empty_key;
  t.live <- 0;
  t.fill <- 0

let iter t f =
  for i = 0 to t.mask do
    let k = Array1.unsafe_get t.keys i in
    if k <> empty_key && k <> tombstone then f k (Array1.unsafe_get t.vals i)
  done

let fold t init f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc
