(** A minimal growable vector (boxed elements).

    Used for unbounded-but-cold accumulators (heap-audit reports) that were
    previously reversed lists; amortized O(1) append, O(1) indexed read,
    and oldest-first iteration without a final [List.rev]. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a

val clear : 'a t -> unit
(** Drops the backing storage (elements become collectable). *)

val iter : 'a t -> ('a -> unit) -> unit
val fold : 'a t -> 'b -> ('b -> 'a -> 'b) -> 'b
val to_list : 'a t -> 'a list
