(** A float-keyed binary min-heap whose payload is three unboxed ints.

    The workload driver's pending-free queue holds millions of
    [(free_time, addr, size, thread)] events and is pushed/popped on every
    simulated allocation; this heap stores the payload in parallel int
    arrays so the hot path allocates nothing — no payload records, no
    [Some] boxes, no cons cells ({!Binheap} costs one record per event plus
    a list per drain).  Equal-key pop order matches {!Binheap} exactly. *)

type t

val create : ?initial_capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> float -> a:int -> b:int -> c:int -> unit

val min_key : t -> float
(** Key of the minimum entry; [nan] when empty. *)

val drain_until : t -> float -> (key:float -> a:int -> b:int -> c:int -> unit) -> unit
(** [drain_until t bound f] removes every entry with key [<= bound] in
    ascending order, calling [f] on each as it is removed, without
    allocating.  [f] must not push entries with keys [<= bound]. *)

val clear : t -> unit

val iter : t -> (key:float -> a:int -> b:int -> c:int -> unit) -> unit
(** Iterate in unspecified (heap) order. *)
