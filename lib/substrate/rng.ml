type t = { mutable s0 : int; mutable s1 : int; mutable s2 : int; mutable s3 : int }

(* The generator is xoshiro-style on native 63-bit lanes: OCaml [int]
   arithmetic wraps mod 2^63 and [lsr]/[lsl] treat the word as unsigned
   63-bit, so rotations and multiplies need no masking — and, unlike the
   Int64 formulation (which boxed ~10 intermediates per draw), drawing
   allocates nothing.  The simulator draws several times per allocation
   event, so this is squarely on the hot path. *)

(* SplitMix-style mixer: used only to expand seeds into generator state. *)
let splitmix_next state =
  state := !state + 0x2545F4914F6CDD1D;
  let z = !state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let of_seed seed =
  let state = ref seed in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  (* The state must not be all-zero; SplitMix output practically never is,
     but guard anyway. *)
  if s0 lor s1 lor s2 lor s3 = 0 then { s0 = 1; s1 = 2; s2 = 3; s3 = 4 }
  else { s0; s1; s2; s3 }

let create seed = of_seed seed

let[@inline] rotl x k = (x lsl k) lor (x lsr (63 - k))

(* xoshiro256starstar update rule on 63-bit lanes. *)
let[@inline] bits t =
  let result = rotl (t.s1 * 5) 7 * 9 in
  let tmp = t.s1 lsl 17 in
  t.s2 <- t.s2 lxor t.s0;
  t.s3 <- t.s3 lxor t.s1;
  t.s1 <- t.s1 lxor t.s2;
  t.s0 <- t.s0 lxor t.s3;
  t.s2 <- t.s2 lxor tmp;
  t.s3 <- rotl t.s3 45;
  result

let bits64 t = Int64.of_int (bits t)
let split t = of_seed (bits t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let[@inline] int t bound =
  assert (bound > 0);
  (* Drop the (sign) top bits so the value is non-negative; modulo bias is
     negligible for simulation bounds. *)
  (bits t lsr 2) mod bound

let[@inline] int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let[@inline] unit_float t =
  (* 53 high bits -> uniform double in [0,1). *)
  float_of_int (bits t lsr 10) *. (1.0 /. 9007199254740992.0)

let[@inline] float t bound = unit_float t *. bound
let[@inline] bool t = bits t land 1 = 1
let[@inline] bernoulli t p = unit_float t < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
