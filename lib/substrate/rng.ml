type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand seeds into xoshiro256starstar state. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed =
  let state = ref seed in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  (* xoshiro state must not be all-zero; SplitMix64 output practically never
     is, but guard anyway. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256starstar *)
let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  assert (bound > 0);
  (* Drop two bits so the value fits OCaml's 63-bit int non-negatively;
     modulo bias is negligible for simulation bounds. *)
  let mask = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  mask mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 high bits -> uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = unit_float t < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
