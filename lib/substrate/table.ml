type t = { title : string; columns : string array; mutable rows : string array list }

let create ~title ~columns = { title; columns = Array.of_list columns; rows = [] }

let add_row t cells =
  let n = Array.length t.columns in
  let row = Array.make n "" in
  List.iteri (fun i cell -> if i < n then row.(i) <- cell) cells;
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let n = Array.length t.columns in
  let widths = Array.map String.length t.columns in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row)
    rows;
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer ("== " ^ t.title ^ " ==\n");
  let pad i s =
    let extra = widths.(i) - String.length s in
    if i = 0 then s ^ String.make extra ' ' else String.make extra ' ' ^ s
  in
  let render_row row =
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_string buffer "  ";
      Buffer.add_string buffer (pad i row.(i))
    done;
    Buffer.add_char buffer '\n'
  in
  render_row t.columns;
  let rule_width = Array.fold_left ( + ) (2 * (n - 1)) widths in
  Buffer.add_string buffer (String.make rule_width '-');
  Buffer.add_char buffer '\n';
  List.iter render_row rows;
  Buffer.contents buffer

let print t =
  print_string (render t);
  print_newline ()

let cell_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_pct ?(decimals = 2) v = Printf.sprintf "%.*f%%" decimals v
let cell_signed_pct ?(decimals = 2) v = Printf.sprintf "%+.*f%%" decimals v
let cell_bytes b = Units.bytes_to_string b
let cell_duration t = Units.duration_to_string t
