(* Guide tables turn the hot inverse-CDF searches into O(1) lookups while
   preserving the exact uniform-draw -> value mapping of the original
   binary/linear searches: a guide cell holds a safe starting index for its
   slice of [0,1), and a short scan (almost always zero or one step)
   finishes the search with the same comparison semantics as before.  This
   keeps every seeded stream bit-identical to the pre-table code, which a
   true Walker/Vose alias decomposition (see {!Alias}) cannot do. *)

type empirical = {
  qs : float array;       (* quantiles, ascending *)
  vs : float array;       (* values, matching *)
  log_vs : float array;   (* precomputed logs for log-linear interpolation *)
  eguide : int array;     (* cell c -> a lower bound for the bracketing index *)
}

type mixture = {
  cum : float array;      (* cumulative weights, ending at 1 *)
  comps : t array;
  mguide : int array;     (* cell c -> a lower bound for the component index *)
}

and t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Lognormal of float * float
  | Pareto of float * float
  | Mixture of mixture
  | Empirical of empirical
  | Shifted of float * t
  | Scaled of float * t
  | Clamped of float * float * t

(* Guide granularity: a few cells per entry makes the residual scan
   almost always empty while the table stays tiny. *)
let guide_cells n = 4 * n

(* Guide-table constructions are counted (atomically: tables may be built
   from worker domains) so regression tests can pin the setup cost of a
   fan-out: a 50-arm replay or a 2000-machine campaign must not rebuild
   per-arm what a caller could build once.  Sampling never touches this. *)
let builds = Atomic.make 0
let table_builds () = Atomic.get builds

(* guide.(c) = the largest i with xs.(i) <= c/k (0 when none): a safe
   starting point for "largest i with xs.(i) <= u" for any u in cell c.
   Float rounding in [u *. k] can land u one cell high, so [find_le]
   re-checks backwards. *)
let make_guide_le xs =
  Atomic.incr builds;
  let n = Array.length xs in
  let k = guide_cells n in
  let kf = float_of_int k in
  let guide = Array.make k 0 in
  let i = ref 0 in
  for c = 0 to k - 1 do
    let boundary = float_of_int c /. kf in
    while !i + 1 < n && xs.(!i + 1) <= boundary do incr i done;
    guide.(c) <- !i
  done;
  guide

(* Largest i with xs.(i) <= u.  Caller guarantees xs.(0) < u. *)
let[@inline] find_le xs guide u =
  let k = Array.length guide in
  let c = int_of_float (u *. float_of_int k) in
  let c = if c >= k then k - 1 else c in
  let i = ref (Array.unsafe_get guide c) in
  while Array.unsafe_get xs !i > u do decr i done;
  let n = Array.length xs in
  while !i + 1 < n && Array.unsafe_get xs (!i + 1) <= u do incr i done;
  !i

(* Smallest i with cum.(i) >= u, capped at n-1 (the old searches fall back
   to the last entry when rounding leaves the total below u). *)
let[@inline] find_ge cum guide u =
  let k = Array.length guide in
  let c = int_of_float (u *. float_of_int k) in
  let c = if c >= k then k - 1 else c in
  let i = ref (Array.unsafe_get guide c) in
  let n = Array.length cum in
  while !i < n - 1 && Array.unsafe_get cum !i < u do incr i done;
  while !i > 0 && Array.unsafe_get cum (!i - 1) >= u do decr i done;
  !i

(* guide.(c) = smallest i with cum.(i) >= c/k, capped at n-1. *)
let make_guide_ge cum =
  Atomic.incr builds;
  let n = Array.length cum in
  let k = guide_cells n in
  let kf = float_of_int k in
  let guide = Array.make k (n - 1) in
  let i = ref 0 in
  for c = 0 to k - 1 do
    let boundary = float_of_int c /. kf in
    while !i < n - 1 && cum.(!i) < boundary do incr i done;
    (* Back off one entry: rounding in the cell computation may place a
       [u] slightly below the boundary. *)
    guide.(c) <- max 0 (!i - 1)
  done;
  guide

let constant v = Constant v
let uniform ~lo ~hi = Uniform (lo, hi)

let exponential ~mean =
  if mean <= 0.0 then invalid_arg "Dist.exponential: mean must be positive";
  Exponential mean

let lognormal ~mu ~sigma = Lognormal (mu, sigma)

let pareto ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then invalid_arg "Dist.pareto: positive params required";
  Pareto (scale, shape)

let mixture parts =
  if parts = [] then invalid_arg "Dist.mixture: empty";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 parts in
  if total <= 0.0 then invalid_arg "Dist.mixture: nonpositive total weight";
  let cumulative = ref 0.0 in
  let arr =
    List.map
      (fun (w, d) ->
        cumulative := !cumulative +. (w /. total);
        (!cumulative, d))
      parts
    |> Array.of_list
  in
  let cum = Array.map fst arr in
  Mixture { cum; comps = Array.map snd arr; mguide = make_guide_ge cum }

let empirical points =
  if List.length points < 2 then invalid_arg "Dist.empirical: need >= 2 points";
  let sorted = List.sort (fun (q1, _) (q2, _) -> compare q1 q2) points in
  List.iter
    (fun (q, v) ->
      if q < 0.0 || q > 1.0 then invalid_arg "Dist.empirical: quantile out of [0,1]";
      if v <= 0.0 then invalid_arg "Dist.empirical: values must be positive")
    sorted;
  let qs = Array.of_list (List.map fst sorted) in
  let vs = Array.of_list (List.map snd sorted) in
  Empirical { qs; vs; log_vs = Array.map log vs; eguide = make_guide_le qs }

let shifted delta d = Shifted (delta, d)

let scaled factor d =
  if factor <= 0.0 then invalid_arg "Dist.scaled: factor must be positive";
  Scaled (factor, d)

let clamped ~lo ~hi d =
  if lo > hi then invalid_arg "Dist.clamped: lo > hi";
  Clamped (lo, hi, d)

(* Box–Muller; one value per call keeps the generator stateless. *)
let standard_normal rng =
  let u1 = 1.0 -. Rng.unit_float rng in
  let u2 = Rng.unit_float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* The hot arms (exponential lifetimes, empirical sizes, one-level
   mixtures) live in non-recursive [@inline] helpers: a self-recursive
   [sample] can never be inlined by the non-flambda backend, which would
   box its float result at every cross-module draw.  [sample] below is a
   non-recursive dispatcher over these helpers, recursing through
   [sample_rec] only for nested composite distributions. *)
let[@inline] sample_exponential mean rng = -.mean *. log (1.0 -. Rng.unit_float rng)

let[@inline] sample_empirical e rng =
  let u = Rng.unit_float rng in
  let qs = e.qs in
  let n = Array.length qs in
  if u <= Array.unsafe_get qs 0 then Array.unsafe_get e.vs 0
  else if u >= Array.unsafe_get qs (n - 1) then Array.unsafe_get e.vs (n - 1)
  else begin
    let lo = find_le qs e.eguide u in
    let q0 = Array.unsafe_get qs lo and q1 = Array.unsafe_get qs (lo + 1) in
    if q1 -. q0 <= 0.0 then Array.unsafe_get e.vs lo
    else begin
      let frac = (u -. q0) /. (q1 -. q0) in
      (* log-linear interpolation suits size/lifetime scales spanning
         many orders of magnitude *)
      let lv0 = Array.unsafe_get e.log_vs lo in
      exp (lv0 +. (frac *. (Array.unsafe_get e.log_vs (lo + 1) -. lv0)))
    end
  end

let[@inline] mixture_pick m rng =
  let u = Rng.unit_float rng in
  Array.unsafe_get m.comps (find_ge m.cum m.mguide u)

let rec sample_rec d rng =
  match d with
  | Constant v -> v
  | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
  | Exponential mean -> sample_exponential mean rng
  | Lognormal (mu, sigma) -> exp (mu +. (sigma *. standard_normal rng))
  | Pareto (scale, shape) ->
    scale /. ((1.0 -. Rng.unit_float rng) ** (1.0 /. shape))
  | Mixture m -> sample_rec (mixture_pick m rng) rng
  | Empirical e -> sample_empirical e rng
  | Shifted (delta, inner) -> delta +. sample_rec inner rng
  | Scaled (factor, inner) -> factor *. sample_rec inner rng
  | Clamped (lo, hi, inner) -> Float.min hi (Float.max lo (sample_rec inner rng))

let[@inline] sample d rng =
  match d with
  | Exponential mean -> sample_exponential mean rng
  | Empirical e -> sample_empirical e rng
  | Mixture m -> (
    (* A mixture of primitive components (every lifetime table row) stays
       box-free; nested composites fall back to the recursive walk. *)
    match mixture_pick m rng with
    | Exponential mean -> sample_exponential mean rng
    | comp -> sample_rec comp rng)
  | d -> sample_rec d rng

let mean_estimate d rng ~n =
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. sample d rng
  done;
  !acc /. float_of_int n

let zipf_weights ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf_weights: n must be positive";
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

(* Discrete samplers carry their own precomputed cumulative + guide table:
   no memo, no lock, nothing shared between domains.  (The previous Zipf
   memo was the sampling path's only global mutable state and took a mutex
   on every draw.)  The u -> rank mapping replicates the old cumulative
   binary search exactly: smallest rank whose cumulative weight reaches u. *)
type discrete = { dcum : float array; dguide : int array }

let discrete_of_weights weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.discrete_of_weights: empty";
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cum.(i) <- !acc)
    weights;
  { dcum = cum; dguide = make_guide_ge cum }

let zipf_sampler ~n ~s = discrete_of_weights (zipf_weights ~n ~s)

let[@inline] discrete_sample d rng = find_ge d.dcum d.dguide (Rng.unit_float rng)

let zipf rng ~n ~s = discrete_sample (zipf_sampler ~n ~s) rng

let categorical rng weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.categorical: empty weights";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Dist.categorical: nonpositive total";
  let u = Rng.float rng total in
  let acc = ref 0.0 in
  let result = ref (n - 1) in
  (try
     for i = 0 to n - 1 do
       acc := !acc +. weights.(i);
       if u < !acc then begin
         result := i;
         raise Exit
       end
     done
   with Exit -> ());
  !result
