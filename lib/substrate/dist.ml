type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Lognormal of float * float
  | Pareto of float * float
  | Mixture of (float * t) array
  (* cumulative weights paired with components *)
  | Empirical of float array * float array * float array
  (* quantiles, values, log values; all sorted ascending.  The logs are
     precomputed so the hot log-linear interpolation in [sample] costs one
     [exp] rather than an [exp] plus two [log]s. *)
  | Shifted of float * t
  | Scaled of float * t
  | Clamped of float * float * t

let constant v = Constant v
let uniform ~lo ~hi = Uniform (lo, hi)

let exponential ~mean =
  if mean <= 0.0 then invalid_arg "Dist.exponential: mean must be positive";
  Exponential mean

let lognormal ~mu ~sigma = Lognormal (mu, sigma)

let pareto ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then invalid_arg "Dist.pareto: positive params required";
  Pareto (scale, shape)

let mixture parts =
  if parts = [] then invalid_arg "Dist.mixture: empty";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 parts in
  if total <= 0.0 then invalid_arg "Dist.mixture: nonpositive total weight";
  let cumulative = ref 0.0 in
  let arr =
    List.map
      (fun (w, d) ->
        cumulative := !cumulative +. (w /. total);
        (!cumulative, d))
      parts
    |> Array.of_list
  in
  Mixture arr

let empirical points =
  if List.length points < 2 then invalid_arg "Dist.empirical: need >= 2 points";
  let sorted = List.sort (fun (q1, _) (q2, _) -> compare q1 q2) points in
  List.iter
    (fun (q, v) ->
      if q < 0.0 || q > 1.0 then invalid_arg "Dist.empirical: quantile out of [0,1]";
      if v <= 0.0 then invalid_arg "Dist.empirical: values must be positive")
    sorted;
  let qs = Array.of_list (List.map fst sorted) in
  let vs = Array.of_list (List.map snd sorted) in
  Empirical (qs, vs, Array.map log vs)

let shifted delta d = Shifted (delta, d)

let scaled factor d =
  if factor <= 0.0 then invalid_arg "Dist.scaled: factor must be positive";
  Scaled (factor, d)

let clamped ~lo ~hi d =
  if lo > hi then invalid_arg "Dist.clamped: lo > hi";
  Clamped (lo, hi, d)

(* Box–Muller; one value per call keeps the generator stateless. *)
let standard_normal rng =
  let u1 = 1.0 -. Rng.unit_float rng in
  let u2 = Rng.unit_float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let rec sample d rng =
  match d with
  | Constant v -> v
  | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
  | Exponential mean -> -.mean *. log (1.0 -. Rng.unit_float rng)
  | Lognormal (mu, sigma) -> exp (mu +. (sigma *. standard_normal rng))
  | Pareto (scale, shape) ->
    scale /. ((1.0 -. Rng.unit_float rng) ** (1.0 /. shape))
  | Mixture parts ->
    let u = Rng.unit_float rng in
    let rec pick i =
      if i = Array.length parts - 1 then snd parts.(i)
      else if u <= fst parts.(i) then snd parts.(i)
      else pick (i + 1)
    in
    sample (pick 0) rng
  | Empirical (qs, vs, log_vs) ->
    let u = Rng.unit_float rng in
    let n = Array.length qs in
    if u <= qs.(0) then vs.(0)
    else if u >= qs.(n - 1) then vs.(n - 1)
    else begin
      (* binary search for the bracketing segment *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if qs.(mid) <= u then lo := mid else hi := mid
      done;
      let q0 = qs.(!lo) and q1 = qs.(!hi) in
      if q1 -. q0 <= 0.0 then vs.(!lo)
      else begin
        let frac = (u -. q0) /. (q1 -. q0) in
        (* log-linear interpolation suits size/lifetime scales spanning
           many orders of magnitude *)
        let lv0 = log_vs.(!lo) in
        exp (lv0 +. (frac *. (log_vs.(!hi) -. lv0)))
      end
    end
  | Shifted (delta, inner) -> delta +. sample inner rng
  | Scaled (factor, inner) -> factor *. sample inner rng
  | Clamped (lo, hi, inner) -> Float.min hi (Float.max lo (sample inner rng))

let mean_estimate d rng ~n =
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. sample d rng
  done;
  !acc /. float_of_int n

let zipf_weights ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf_weights: n must be positive";
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

(* Memoize the cumulative Zipf table per (n, s).  The memo is the only
   global mutable state in the sampling path, so it takes a mutex: samplers
   running on pool domains (Parallel.map tasks) may share it. *)
let zipf_tables : (int * float, float array) Hashtbl.t = Hashtbl.create 8
let zipf_mutex = Mutex.create ()

let zipf_cumulative ~n ~s =
  Mutex.lock zipf_mutex;
  let table =
    match Hashtbl.find_opt zipf_tables (n, s) with
    | Some table -> table
    | None ->
      let weights = zipf_weights ~n ~s in
      let cumulative = Array.make n 0.0 in
      let acc = ref 0.0 in
      Array.iteri
        (fun i w ->
          acc := !acc +. w;
          cumulative.(i) <- !acc)
        weights;
      Hashtbl.replace zipf_tables (n, s) cumulative;
      cumulative
  in
  Mutex.unlock zipf_mutex;
  table

let search_cumulative cumulative u =
  let n = Array.length cumulative in
  if u <= cumulative.(0) then 0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) < u then lo := mid else hi := mid
    done;
    !hi
  end

let zipf rng ~n ~s =
  let cumulative = zipf_cumulative ~n ~s in
  search_cumulative cumulative (Rng.unit_float rng)

let categorical rng weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.categorical: empty weights";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Dist.categorical: nonpositive total";
  let u = Rng.float rng total in
  let acc = ref 0.0 in
  let result = ref (n - 1) in
  (try
     for i = 0 to n - 1 do
       acc := !acc +. weights.(i);
       if u < !acc then begin
         result := i;
         raise Exit
       end
     done
   with Exit -> ());
  !result
