(** Deterministic domain-parallel execution of independent seeded tasks.

    The fleet simulator is embarrassingly parallel at the machine and A/B-arm
    granularity: every task owns its {!Rng}, {!Clock}, and allocator state,
    so tasks may run on any domain in any order as long as results are
    {e reduced in index order}.  This module provides exactly that contract:
    a fixed-size pool of worker domains and a chunked [map] whose output
    array is indexed like its input — a 1-domain run and an N-domain run of
    the same tasks produce bit-identical results.

    {b The ordered-reduction rule} (see DESIGN.md): parallel code in this
    repo must (1) give each task exclusive ownership of all mutable state it
    touches, and (2) merge task results on the calling domain in task-index
    order.  Never fold results in completion order.

    The pool is created lazily on first parallel use and sized by, in
    priority order: the [?jobs] argument, {!set_default_jobs} (the [--jobs]
    CLI flag), the [WSC_DOMAINS] environment variable, and
    [Domain.recommended_domain_count ()].  [jobs = 1] (or singleton inputs)
    bypasses the pool entirely and runs in the calling domain — the
    bit-exact reference mode.  Nested [map] calls from inside a task
    degrade to sequential execution instead of deadlocking. *)

val host_cores : unit -> int
(** Physical parallelism available on this host
    ([Domain.recommended_domain_count], floored at 1).  When this is 1,
    {!map} runs every batch on the calling domain regardless of [?jobs] —
    spawning domains a single core must time-slice only adds overhead, and
    the map contract makes the results identical either way.  Benchmarks
    should report this alongside any speedup claim. *)

val default_jobs : unit -> int
(** The job count a [map] without [?jobs] will use: [--jobs] override if
    set, else [WSC_DOMAINS] if set and positive, else
    [Domain.recommended_domain_count ()].  Always >= 1. *)

val set_default_jobs : int -> unit
(** Install a process-wide override (the [--jobs] flag).  Values < 1 are
    rejected with [Invalid_argument]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f inputs] applies [f] to every element and returns the results in
    input order.  At most [jobs] tasks run concurrently (the calling domain
    participates).  If any task raises, the exception of the
    lowest-indexed failing task is re-raised on the caller after every
    task has finished — partial work is never silently dropped. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val pool_size : unit -> int
(** Number of worker domains currently spawned (0 before first parallel
    use; excludes the calling domain). *)
