module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = nan; max = nan; total = 0.0 }

  (* [@inline]: lets hot callers pass [x] straight from float registers —
     a non-inlined cross-module call would box the argument. *)
  let[@inline] add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.n = 1 then begin
      t.min <- x;
      t.max <- x
    end
    else begin
      if x < t.min then t.min <- x;
      if x > t.max then t.max <- x
    end

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      {
        n;
        mean;
        m2;
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
        total = a.total +. b.total;
      }
    end
end

module Sample = struct
  type t = { mutable data : float array; mutable len : int; mutable sorted : bool }

  let create () = { data = Array.make 64 0.0; len = 0; sorted = true }

  let add t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- false

  let count t = t.len

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.data 0 t.len in
      Array.sort compare live;
      Array.blit live 0 t.data 0 t.len;
      t.sorted <- true
    end

  let quantile t q =
    if t.len = 0 then invalid_arg "Stats.Sample.quantile: empty";
    if q < 0.0 || q > 1.0 then invalid_arg "Stats.Sample.quantile: q out of range";
    ensure_sorted t;
    if t.len = 1 then t.data.(0)
    else begin
      let pos = q *. float_of_int (t.len - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = Stdlib.min (lo + 1) (t.len - 1) in
      let frac = pos -. float_of_int lo in
      t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))
    end

  let mean t =
    if t.len = 0 then nan
    else begin
      let acc = ref 0.0 in
      for i = 0 to t.len - 1 do
        acc := !acc +. t.data.(i)
      done;
      !acc /. float_of_int t.len
    end

  let values t =
    ensure_sorted t;
    Array.sub t.data 0 t.len
end

(* Average ranks with tie correction. *)
let ranks values =
  let n = Array.length values in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare values.(a) values.(b)) order;
  let result = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && values.(order.(!j + 1)) = values.(order.(!i)) do
      incr j
    done;
    let avg_rank = float_of_int (!i + !j) /. 2.0 +. 1.0 in
    for k = !i to !j do
      result.(order.(k)) <- avg_rank
    done;
    i := !j + 1
  done;
  result

let pearson pairs =
  let n = List.length pairs in
  if n < 2 then invalid_arg "Stats.pearson: need >= 2 pairs";
  let nf = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 pairs in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 pairs in
  let mx = sx /. nf and my = sy /. nf in
  let sxy, sxx, syy =
    List.fold_left
      (fun (sxy, sxx, syy) (x, y) ->
        let dx = x -. mx and dy = y -. my in
        (sxy +. (dx *. dy), sxx +. (dx *. dx), syy +. (dy *. dy)))
      (0.0, 0.0, 0.0) pairs
  in
  if sxx = 0.0 || syy = 0.0 then 0.0 else sxy /. sqrt (sxx *. syy)

let spearman pairs =
  let n = List.length pairs in
  if n < 2 then invalid_arg "Stats.spearman: need >= 2 pairs";
  let xs = Array.of_list (List.map fst pairs) in
  let ys = Array.of_list (List.map snd pairs) in
  let rx = ranks xs and ry = ranks ys in
  let rank_pairs = List.init n (fun i -> (rx.(i), ry.(i))) in
  pearson rank_pairs

let percent_change ~before ~after =
  if before = 0.0 then 0.0 else (after -. before) /. before *. 100.0

let geometric_mean values =
  if values = [] then invalid_arg "Stats.geometric_mean: empty";
  let log_sum = List.fold_left (fun acc v -> acc +. log v) 0.0 values in
  exp (log_sum /. float_of_int (List.length values))
