type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let push t v =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let bigger = Array.make (max 8 (2 * cap)) v in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: out of bounds";
  t.data.(i)

let clear t =
  t.data <- [||];
  t.len <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold t init f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))
