let kib = 1024
let mib = 1024 * kib
let gib = 1024 * mib
let tcmalloc_page_size = 8 * kib
let hugepage_size = 2 * mib
let pages_per_hugepage = hugepage_size / tcmalloc_page_size
let ns = 1.0
let us = 1_000.0
let ms = 1_000_000.0
let sec = 1_000_000_000.0
let minute = 60.0 *. sec
let hour = 60.0 *. minute
let day = 24.0 *. hour

let pp_bytes fmt b =
  let fb = float_of_int b in
  let unit_table =
    [ (float_of_int gib, "GiB"); (float_of_int mib, "MiB"); (float_of_int kib, "KiB") ]
  in
  let rec pick = function
    | [] -> Format.fprintf fmt "%d B" b
    | (scale, suffix) :: rest ->
      if fb >= scale then begin
        let v = fb /. scale in
        if Float.abs (Float.round v -. v) < 1e-9 then
          Format.fprintf fmt "%.0f %s" v suffix
        else Format.fprintf fmt "%.2f %s" v suffix
      end
      else pick rest
  in
  pick unit_table

let pp_duration fmt t =
  let abs = Float.abs t in
  if abs >= day then Format.fprintf fmt "%.2f d" (t /. day)
  else if abs >= hour then Format.fprintf fmt "%.2f h" (t /. hour)
  else if abs >= minute then Format.fprintf fmt "%.2f min" (t /. minute)
  else if abs >= sec then Format.fprintf fmt "%.2f s" (t /. sec)
  else if abs >= ms then Format.fprintf fmt "%.2f ms" (t /. ms)
  else if abs >= us then Format.fprintf fmt "%.2f us" (t /. us)
  else Format.fprintf fmt "%.1f ns" t

let bytes_to_string b = Format.asprintf "%a" pp_bytes b
let duration_to_string t = Format.asprintf "%a" pp_duration t
