open Wsc_substrate
module Topology = Wsc_hw.Topology
module Sched = Wsc_os.Sched
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Driver = Wsc_workload.Driver
module Profile = Wsc_workload.Profile
module Threads = Wsc_workload.Threads

module Fault = Wsc_os.Fault
module Vm = Wsc_os.Vm
module Rseq = Wsc_os.Rseq
module Telemetry = Wsc_tcmalloc.Telemetry
module Productivity = Wsc_hw.Productivity

type job = {
  profile : Profile.t;
  driver : Driver.t;
  backend : Backend.t;
  fault : Fault.t option;
}

type t = {
  platform : Topology.t;
  clock : Clock.t;
  jobs : job list;
}

(* CPUs a job can need: its thread ceiling, bounded by the machine. *)
let job_cpus platform profile =
  min (Topology.num_cpus platform) profile.Profile.threads.Threads.max_threads

let create ?(seed = 1) ?(config = Wsc_tcmalloc.Config.baseline) ?soft_limit_bytes
    ?hard_limit_bytes ?faults ?rseq ?audit_interval_ns ~platform ~jobs () =
  let clock = Clock.create () in
  let next_cpu = ref 0 in
  let make index profile =
    let cpus = job_cpus platform profile in
    (* Services whose ceiling exceeds half an LLC domain get spread across
       domains by the scheduler (Sec. 4.2: applications span cache domains
       because they are too large to fit or be scheduled within one). *)
    let domains = max 1 (min 4 (cpus / 4)) in
    let sched =
      if domains > 1 && Topology.num_domains platform > 1 then
        Sched.spread platform ~first_cpu:!next_cpu ~cpus ~domains
      else Sched.slice platform ~first_cpu:!next_cpu ~cpus
    in
    next_cpu := (!next_cpu + cpus) mod Topology.num_cpus platform;
    let rseq = Option.map (fun rc -> Rseq.create ~index rc) rseq in
    let backend = Backend.create ~config ?rseq ~topology:platform ~clock () in
    let vm = Backend.vm backend in
    (match soft_limit_bytes with Some b -> Vm.set_soft_limit vm (Some b) | None -> ());
    (match hard_limit_bytes with Some b -> Vm.set_hard_limit vm (Some b) | None -> ());
    let fault =
      match faults with
      | None -> None
      | Some fault_config ->
        let f = Fault.create ~index ~clock fault_config in
        Fault.install f ~vm;
        Some f
    in
    let driver =
      Driver.create ~seed:(seed + (1000 * index)) ?faults:fault ?audit_interval_ns
        ~profile ~sched ~backend ~clock ()
    in
    { profile; driver; backend; fault }
  in
  { platform; clock; jobs = List.mapi make jobs }

let step t ~dt = List.iter (fun job -> Driver.step job.driver ~dt) t.jobs

let run t ~duration_ns ~epoch_ns =
  let until = Clock.now t.clock +. duration_ns in
  while Clock.now t.clock < until do
    let dt = Float.min epoch_ns (until -. Clock.now t.clock) in
    Clock.advance t.clock dt;
    step t ~dt
  done

let platform t = t.platform
let jobs t = t.jobs
let clock t = t.clock

let total_rss t =
  List.fold_left
    (fun acc job ->
      acc + (Backend.heap_stats job.backend).Malloc.resident_bytes)
    0 t.jobs

(* --- Result summaries -------------------------------------------------- *)

type job_summary = {
  js_profile : string;
  js_requests : float;
  js_allocations : int;
  js_frees : int;
  js_live_objects : int;
  js_heap : Malloc.heap_stats;
  js_malloc_ns : float;
  js_cpu_ns : float;
  js_allocated_bytes : float;
  js_avg_rss_bytes : float;
  js_hugepage_coverage : float;
  js_size_count : Histogram.t;
  js_size_bytes : Histogram.t;
}

type summary = { sm_now_ns : float; sm_jobs : job_summary list; sm_digest : string }

let summary_digest_of ~now_ns jobs =
  (* Closure-free marshal: the digest survives the Persist container and
     stays comparable across processes of the same binary. *)
  Digest.string (Marshal.to_string (now_ns, jobs) [])

let job_summary (job : job) =
  let profile = job.profile in
  let tel = Backend.telemetry job.backend in
  let requests = Driver.requests_completed job.driver in
  let cpi = Productivity.baseline_cpi profile.Profile.productivity in
  {
    js_profile = profile.Profile.name;
    js_requests = requests;
    js_allocations = Telemetry.alloc_count tel;
    js_frees = Telemetry.free_count tel;
    js_live_objects = Driver.live_objects job.driver;
    js_heap = Backend.heap_stats job.backend;
    js_malloc_ns = Driver.measured_malloc_ns job.driver;
    js_cpu_ns =
      requests
      *. profile.Profile.productivity.Productivity.instructions_per_request
      *. cpi /. 3.0;
    js_allocated_bytes = Histogram.total_weight (Telemetry.size_histogram_bytes tel);
    js_avg_rss_bytes = Driver.avg_rss_bytes job.driver;
    js_hugepage_coverage = Driver.avg_hugepage_coverage job.driver;
    js_size_count = Telemetry.size_histogram_count tel;
    js_size_bytes = Telemetry.size_histogram_bytes tel;
  }

let summary t =
  let now_ns = Clock.now t.clock in
  let jobs = List.map job_summary t.jobs in
  { sm_now_ns = now_ns; sm_jobs = jobs; sm_digest = summary_digest_of ~now_ns jobs }

let summary_valid s = s.sm_digest = summary_digest_of ~now_ns:s.sm_now_ns s.sm_jobs

(* --- Warm-state checkpointing ----------------------------------------- *)

(* One Marshal-with-closures blob of the whole machine keeps the sharing
   that matters: all jobs reference the one clock (and their tickers on
   it), so co-located background activity resumes in the same interleaved
   order.  Probes are detached for the duration of the marshal — they may
   hold output channels — and reattached before returning. *)
let checkpoint t =
  let rec detached jobs k =
    match jobs with
    | [] -> k ()
    | job :: rest -> Driver.with_probe_detached job.driver (fun () -> detached rest k)
  in
  detached t.jobs (fun () -> Marshal.to_string t [ Marshal.Closures ])

let resume blob : t = Marshal.from_string blob 0
