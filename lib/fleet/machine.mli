(** A simulated server: one hardware platform running co-located jobs.

    Each job is one process — an allocator instance plus a workload driver —
    confined by the control plane to a slice of the machine's CPUs (Sec. 3:
    "workloads are often co-located, and constrained to run on a subset of
    CPUs").  All processes share the machine's simulated clock, so their
    background allocator activities interleave in time exactly as the
    drivers do. *)

type t

val create :
  ?seed:int ->
  ?config:Wsc_tcmalloc.Config.t ->
  ?soft_limit_bytes:int ->
  ?hard_limit_bytes:int ->
  ?faults:Wsc_os.Fault.config ->
  ?rseq:Wsc_os.Rseq.config ->
  ?audit_interval_ns:float ->
  platform:Wsc_hw.Topology.t ->
  jobs:Wsc_workload.Profile.t list ->
  unit ->
  t
(** Co-locate [jobs] on a machine of the given platform.  CPU slices are
    carved contiguously (and wrap), so co-located jobs overlap on big
    machines only when they need more CPUs than exist.

    [soft_limit_bytes]/[hard_limit_bytes] apply per process: exceeding the
    soft limit triggers each allocator's reclaim cascade; the hard limit
    makes mmap fail (the allocator reclaims and retries before OOM).
    [faults] instantiates one {!Wsc_os.Fault} stream per job (perturbed by
    job index, so co-located processes fail independently while pressure
    spikes stay machine-wide) and installs its hooks into the job's VM.
    [rseq] instantiates one preemption injector per job (likewise
    index-perturbed) and runs that job's allocator fast path under the
    restartable-sequence protocol.
    [audit_interval_ns] enables periodic heap audits in every driver. *)

val run : t -> duration_ns:float -> epoch_ns:float -> unit
(** Advance the machine's clock, stepping every job each epoch. *)

val platform : t -> Wsc_hw.Topology.t

type job = {
  profile : Wsc_workload.Profile.t;
  driver : Wsc_workload.Driver.t;
  backend : Wsc_backend.Backend.t;
  fault : Wsc_os.Fault.t option;  (** Present when the machine injects faults. *)
}

val jobs : t -> job list
val clock : t -> Wsc_substrate.Clock.t

val total_rss : t -> int
(** Sum of simulated RSS across jobs. *)

(** {2 Result summaries}

    A machine's post-run outcome, compacted into a closure-free record a
    campaign can aggregate and checkpoint without holding the machine
    itself alive.  Everything is plain data ([Marshal] without flags), so
    summaries stream through {!Wsc_persist}'s container unchanged. *)

type job_summary = {
  js_profile : string;
  js_requests : float;
  js_allocations : int;
  js_frees : int;
  js_live_objects : int;
  js_heap : Wsc_tcmalloc.Malloc.heap_stats;
  js_malloc_ns : float;  (** Measured allocator ns since the last reset. *)
  js_cpu_ns : float;  (** Modeled request CPU ({!Gwp.job_cpu_ns} formula). *)
  js_allocated_bytes : float;
  js_avg_rss_bytes : float;
  js_hugepage_coverage : float;
  js_size_count : Wsc_substrate.Histogram.t;
  js_size_bytes : Wsc_substrate.Histogram.t;
}

type summary = {
  sm_now_ns : float;  (** The machine clock when the summary was taken. *)
  sm_jobs : job_summary list;  (** Creation order (same as {!jobs}). *)
  sm_digest : string;  (** Integrity digest over the fields above. *)
}

val summary : t -> summary
(** Snapshot the machine's results.  Pure read: the machine can keep
    running afterwards. *)

val summary_valid : summary -> bool
(** Recompute the digest and compare — how a supervisor detects a
    corrupted result before merging it into an aggregate. *)

(** {2 Warm-state checkpointing} *)

val step : t -> dt:float -> unit
(** Step every job for one epoch; the caller must have advanced the
    machine's clock by [dt] first (what {!run} does internally).  Exposed
    so checkpoint-aware run loops ({!Wsc_persist}) can interleave
    snapshots between epochs without perturbing the epoch sequence. *)

val checkpoint : t -> string
(** Serialize the whole machine — every job's driver, allocator, OS
    state, the shared clock and its background tickers — into one blob
    such that [resume] + continue is bit-identical to an uninterrupted
    run.  Driver probes are omitted (they may capture channels).  The
    blob is [Marshal]-based and same-binary only; {!Wsc_persist} wraps it
    in a versioned, checksummed container for on-disk use. *)

val resume : string -> t
(** Inverse of {!checkpoint}. *)
