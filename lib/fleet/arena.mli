(** Cross-allocator arena: every backend runs the same four scenarios and
    the results line up side by side.

    Scenarios per backend:
    - [Zoo] — a co-located machine running workload-zoo profiles (redis +
      bigtable) for a second of simulated time;
    - [Flood] — producer/consumer cross-CPU flood (every object allocated
      on one CPU, freed on another);
    - [Churn] — Fig. 7-leaning size-mix churn around a steady live heap;
    - [Pressure] — allocation against a hard {!Wsc_os.Vm} limit, counting
      OOMs and checking the heap survives intact.

    All counter and byte fields in a {!cell} are bit-deterministic for a
    given seed — scenarios run on the simulated clock or a seeded RNG —
    so CI gates the committed [BENCH_arena.json] by exact match
    ({!check_committed}).  Wall-clock throughput is informational only. *)

type scenario = Zoo | Flood | Churn | Pressure

val scenario_name : scenario -> string
val all_scenarios : scenario list

type cell = {
  cell_backend : Wsc_tcmalloc.Config.backend_kind;
  cell_scenario : scenario;
  allocs : int;  (** deterministic *)
  frees : int;  (** deterministic *)
  ooms : int;  (** deterministic *)
  peak_rss_bytes : int;  (** deterministic (sampled on a fixed op cadence) *)
  final_rss_bytes : int;  (** deterministic (after full free + release) *)
  frag_permille : int;
      (** deterministic: (external + internal fragmentation) ‰ of live
          requested bytes at the scenario's high-water probe *)
  survived : bool;
      (** audit clean, no crash, and (under Pressure) resident stayed
          within the hard limit *)
  wall_s : float;  (** informational: host CPU seconds *)
  throughput_per_sec : float;  (** informational: events / wall_s *)
}

type report = { seed : int; cells : cell list }

val run_cell :
  kind:Wsc_tcmalloc.Config.backend_kind -> seed:int -> scenario -> cell

val run :
  ?backends:Wsc_tcmalloc.Config.backend_kind list -> ?seed:int -> unit -> report
(** Runs {!all_scenarios} for each backend (default
    {!Wsc_tcmalloc.Config.all_backends}). *)

val to_json : report -> string
(** The [BENCH_arena.json] payload: one line per cell, deterministic
    fields first, then the informational wall-clock fields. *)

val check_committed : committed:string -> report -> string list
(** Compares a fresh report against the committed JSON text: each cell's
    deterministic field prefix must appear verbatim in [committed].
    Returns one message per mismatching cell (empty = gate passes). *)

val pp_table : Format.formatter -> report -> unit
