open Wsc_substrate
module Topology = Wsc_hw.Topology
module Fault = Wsc_os.Fault

type spec = {
  seed : int;
  machines : int;
  num_binaries : int;
  jobs_per_machine : int;
  zipf_s : float;
  config : Wsc_tcmalloc.Config.t;
  duration_ns : float;
  epoch_ns : float;
  straggler_factor : float;
  chaos : Fault.chaos;
  policy : Supervisor.policy;
  shard_size : int;
}

let default_spec =
  {
    seed = 7;
    machines = 24;
    num_binaries = 50;
    jobs_per_machine = 2;
    zipf_s = 0.9;
    config = Wsc_tcmalloc.Config.baseline;
    duration_ns = 10.0 *. Units.sec;
    epoch_ns = Units.ms;
    straggler_factor = 4.0;
    chaos = Fault.no_chaos;
    policy = Supervisor.default_policy;
    shard_size = 16;
  }

let validate_spec s =
  if s.machines <= 0 then invalid_arg "Campaign: machines must be positive";
  if s.num_binaries < 5 then invalid_arg "Campaign: num_binaries must be >= 5";
  if s.jobs_per_machine <= 0 then invalid_arg "Campaign: jobs_per_machine must be positive";
  if s.duration_ns <= 0.0 || s.epoch_ns <= 0.0 then
    invalid_arg "Campaign: duration/epoch must be positive";
  if s.straggler_factor <= 1.0 then
    invalid_arg "Campaign: straggler_factor must exceed 1";
  if s.shard_size <= 0 then invalid_arg "Campaign: shard_size must be positive";
  Fault.validate_chaos s.chaos;
  Supervisor.validate_policy s.policy

let spec_digest s =
  Digest.string
    (Marshal.to_string
       ( s.seed, s.machines, s.num_binaries, s.jobs_per_machine, s.zipf_s, s.config,
         s.duration_ns, s.epoch_ns, s.straggler_factor, s.chaos, s.policy, s.shard_size )
       [])

(* --- Streaming aggregate ----------------------------------------------- *)

type aggregate = {
  mutable a_machines : int;
  mutable a_jobs : int;
  mutable a_requests : float;
  mutable a_allocations : int;
  mutable a_frees : int;
  mutable a_live_objects : int;
  mutable a_malloc_ns : float;
  mutable a_cpu_ns : float;
  mutable a_allocated_bytes : float;
  mutable a_avg_rss_bytes : float;
  mutable a_resident_bytes : int;
  mutable a_live_bytes : int;
  mutable a_external_frag_bytes : int;
  mutable a_internal_frag_bytes : int;
  mutable a_hugepage_cov_sum : float;
  mutable a_size_count : Histogram.t option;
  mutable a_size_bytes : Histogram.t option;
  a_binaries : (string, float * float * int) Hashtbl.t;
}

let empty_aggregate () =
  {
    a_machines = 0;
    a_jobs = 0;
    a_requests = 0.0;
    a_allocations = 0;
    a_frees = 0;
    a_live_objects = 0;
    a_malloc_ns = 0.0;
    a_cpu_ns = 0.0;
    a_allocated_bytes = 0.0;
    a_avg_rss_bytes = 0.0;
    a_resident_bytes = 0;
    a_live_bytes = 0;
    a_external_frag_bytes = 0;
    a_internal_frag_bytes = 0;
    a_hugepage_cov_sum = 0.0;
    a_size_count = None;
    a_size_bytes = None;
    a_binaries = Hashtbl.create 64;
  }

let merge_histogram slot h =
  match !slot with None -> slot := Some h | Some acc -> slot := Some (Histogram.merge acc h)

let merge_summary agg (s : Machine.summary) =
  agg.a_machines <- agg.a_machines + 1;
  List.iter
    (fun (js : Machine.job_summary) ->
      agg.a_jobs <- agg.a_jobs + 1;
      agg.a_requests <- agg.a_requests +. js.Machine.js_requests;
      agg.a_allocations <- agg.a_allocations + js.Machine.js_allocations;
      agg.a_frees <- agg.a_frees + js.Machine.js_frees;
      agg.a_live_objects <- agg.a_live_objects + js.Machine.js_live_objects;
      agg.a_malloc_ns <- agg.a_malloc_ns +. js.Machine.js_malloc_ns;
      agg.a_cpu_ns <- agg.a_cpu_ns +. js.Machine.js_cpu_ns;
      agg.a_allocated_bytes <- agg.a_allocated_bytes +. js.Machine.js_allocated_bytes;
      agg.a_avg_rss_bytes <- agg.a_avg_rss_bytes +. js.Machine.js_avg_rss_bytes;
      let heap = js.Machine.js_heap in
      agg.a_resident_bytes <-
        agg.a_resident_bytes + heap.Wsc_tcmalloc.Malloc.resident_bytes;
      agg.a_live_bytes <-
        agg.a_live_bytes + heap.Wsc_tcmalloc.Malloc.live_requested_bytes;
      agg.a_external_frag_bytes <-
        agg.a_external_frag_bytes + heap.Wsc_tcmalloc.Malloc.external_fragmentation_bytes;
      agg.a_internal_frag_bytes <-
        agg.a_internal_frag_bytes + heap.Wsc_tcmalloc.Malloc.internal_fragmentation_bytes;
      agg.a_hugepage_cov_sum <- agg.a_hugepage_cov_sum +. js.Machine.js_hugepage_coverage;
      (let count = ref agg.a_size_count and bytes = ref agg.a_size_bytes in
       merge_histogram count js.Machine.js_size_count;
       merge_histogram bytes js.Machine.js_size_bytes;
       agg.a_size_count <- !count;
       agg.a_size_bytes <- !bytes);
      let prev_ns, prev_bytes, prev_jobs =
        Option.value ~default:(0.0, 0.0, 0) (Hashtbl.find_opt agg.a_binaries js.Machine.js_profile)
      in
      Hashtbl.replace agg.a_binaries js.Machine.js_profile
        ( prev_ns +. js.Machine.js_malloc_ns,
          prev_bytes +. js.Machine.js_allocated_bytes,
          prev_jobs + 1 ))
    s.Machine.sm_jobs

let render_aggregate agg =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "campaign aggregate v1";
  line "  machines            : %d" agg.a_machines;
  line "  jobs                : %d" agg.a_jobs;
  line "  requests            : %.17g" agg.a_requests;
  line "  allocations         : %d" agg.a_allocations;
  line "  frees               : %d" agg.a_frees;
  line "  live objects        : %d" agg.a_live_objects;
  line "  malloc ns           : %.17g" agg.a_malloc_ns;
  line "  request cpu ns      : %.17g" agg.a_cpu_ns;
  line "  allocated bytes     : %.17g" agg.a_allocated_bytes;
  line "  avg rss bytes       : %.17g" agg.a_avg_rss_bytes;
  line "  resident bytes      : %d" agg.a_resident_bytes;
  line "  live bytes          : %d" agg.a_live_bytes;
  line "  external frag bytes : %d" agg.a_external_frag_bytes;
  line "  internal frag bytes : %d" agg.a_internal_frag_bytes;
  line "  hugepage coverage   : %.17g"
    (if agg.a_jobs = 0 then 0.0 else agg.a_hugepage_cov_sum /. float_of_int agg.a_jobs);
  line "  malloc cycle share  : %.17g"
    (if agg.a_cpu_ns <= 0.0 then 0.0 else agg.a_malloc_ns /. agg.a_cpu_ns);
  (match (agg.a_size_count, agg.a_size_bytes) with
  | Some count, Some bytes ->
    line "  size histogram      : %d bins, %.17g objects, %.17g bytes"
      (Array.length (Histogram.bins count))
      (Histogram.total_weight count) (Histogram.total_weight bytes)
  | _ -> line "  size histogram      : empty");
  let binaries =
    Hashtbl.fold (fun name (ns, bytes, jobs) acc -> (name, ns, bytes, jobs) :: acc)
      agg.a_binaries []
    |> List.sort (fun (na, nsa, _, _) (nb, nsb, _, _) ->
           match compare nsb nsa with 0 -> compare na nb | c -> c)
  in
  line "  binaries            : %d" (List.length binaries);
  line "  top binaries by malloc cycles:";
  List.iteri
    (fun i (name, ns, bytes, jobs) ->
      if i < 10 then
        line "    %-20s %.17g ns  %.17g bytes  %d jobs" name ns bytes jobs)
    binaries;
  line "end aggregate";
  Buffer.contents b

(* --- Campaign state ----------------------------------------------------- *)

type quarantine = { q_machine : int; q_attempts : int; q_failure : string }

type stats = {
  mutable st_attempts : int;
  mutable st_crashes : int;
  mutable st_stragglers : int;
  mutable st_corruptions : int;
  mutable st_backoff_ns : float;
  mutable st_sim_ns : float;
}

type checkpoint = {
  ck_digest : string;
  mutable ck_next_index : int;
  ck_aggregate : aggregate;
  mutable ck_quarantined : quarantine list;  (* newest first *)
  ck_stats : stats;
}

let checkpoint_spec_digest ck = ck.ck_digest
let checkpoint_next_index ck = ck.ck_next_index
let checkpoint_sim_ns ck = ck.ck_stats.st_sim_ns

let fresh_state digest =
  {
    ck_digest = digest;
    ck_next_index = 0;
    ck_aggregate = empty_aggregate ();
    ck_quarantined = [];
    ck_stats =
      {
        st_attempts = 0;
        st_crashes = 0;
        st_stragglers = 0;
        st_corruptions = 0;
        st_backoff_ns = 0.0;
        st_sim_ns = 0.0;
      };
  }

type result = {
  r_aggregate : aggregate;
  r_quarantined : quarantine list;
  r_stats : stats;
  r_machines : int;
  r_finished : bool;
}

let coverage r =
  if r.r_machines = 0 then 0.0
  else float_of_int r.r_aggregate.a_machines /. float_of_int r.r_machines

let render_result r =
  let b = Buffer.create 2048 in
  Buffer.add_string b (render_aggregate r.r_aggregate);
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "robustness:";
  line "  coverage            : %d/%d machines (%.1f%%)" r.r_aggregate.a_machines
    r.r_machines (100.0 *. coverage r);
  line "  quarantined         : %d" (List.length r.r_quarantined);
  line "  attempts            : %d (%d retries)" r.r_stats.st_attempts
    (r.r_stats.st_attempts - r.r_aggregate.a_machines - List.length r.r_quarantined);
  line "  crashes             : %d" r.r_stats.st_crashes;
  line "  stragglers          : %d" r.r_stats.st_stragglers;
  line "  corrupt results     : %d" r.r_stats.st_corruptions;
  line "  backoff             : %.3f simulated s" (r.r_stats.st_backoff_ns /. Units.sec);
  line "  simulated time      : %.3f machine-s" (r.r_stats.st_sim_ns /. Units.sec);
  List.iter
    (fun q ->
      line "  machine %-6d quarantined after %d attempts: %s" q.q_machine q.q_attempts
        q.q_failure)
    r.r_quarantined;
  if not r.r_finished then line "  state               : paused (campaign incomplete)";
  Buffer.contents b

(* --- Per-machine execution ---------------------------------------------- *)

(* Machine i's shape is drawn from its own generator — not from a shared
   sequential stream like Fleet.create — so any machine can be (re)built
   in isolation: retries, resumes and shard boundaries never shift what
   machine i is.  The binary-popularity sampler is built once per campaign
   ([popularity], below) and shared read-only across machines, attempts
   and domains: constructing it consumes no RNG draws, so sharing it
   leaves every machine's shape bit-identical. *)
let machine_shape spec binaries zipf index =
  let rng =
    Rng.create (((spec.seed * 1_000_003) lxor (index * 2_654_435_761)) land max_int)
  in
  let platform = Topology.generations.(Dist.categorical rng Fleet.platform_mix) in
  let jobs =
    List.init spec.jobs_per_machine (fun _ ->
        binaries.(Dist.discrete_sample zipf rng))
  in
  (platform, jobs)

let popularity spec binaries =
  Dist.zipf_sampler ~n:(Array.length binaries) ~s:spec.zipf_s

let corrupt_summary (s : Machine.summary) =
  (* Flip a counter but keep the stale digest: Machine.summary_valid now
     rejects the record, exactly like a torn write would be caught. *)
  match s.Machine.sm_jobs with
  | [] -> s
  | (js : Machine.job_summary) :: rest ->
    {
      s with
      Machine.sm_jobs =
        { js with Machine.js_allocations = js.Machine.js_allocations lxor 1 } :: rest;
    }

let run_attempt spec binaries zipf ~index ~attempt ~wasted =
  let platform, jobs = machine_shape spec binaries zipf index in
  let machine =
    Machine.create ~seed:(spec.seed + (7919 * (index + 1))) ~config:spec.config ~platform
      ~jobs ()
  in
  let clock = Machine.clock machine in
  let deadline = spec.straggler_factor *. spec.duration_ns in
  let inject = Fault.chaos_event spec.chaos ~machine:index ~attempt in
  let inject_at, mode =
    match inject with
    | Some (Fault.Chaos_crash { at_fraction }) ->
      (at_fraction *. spec.duration_ns, `Crash)
    | Some (Fault.Chaos_hang { at_fraction; stall_factor }) ->
      (at_fraction *. spec.duration_ns, `Hang (stall_factor *. deadline))
    | Some Fault.Chaos_corrupt | None -> (infinity, `None)
  in
  let injected = ref false in
  (try
     while Clock.now clock < spec.duration_ns do
       let now = Clock.now clock in
       (* Straggler detection: the machine's until_ns deadline. *)
       if now > deadline then
         raise
           (Supervisor.Failed
              (Supervisor.Straggler { deadline_ns = deadline; observed_ns = now }));
       if (not !injected) && now >= inject_at then begin
         injected := true;
         match mode with
         | `Crash -> raise (Supervisor.Failed (Supervisor.Crash "injected machine crash"))
         | `Hang stall_ns ->
           (* The machine wedges: its clock runs past the deadline with no
              progress; the check above trips on the next iteration. *)
           Clock.advance clock stall_ns
         | `None -> ()
       end
       else begin
         let dt = Float.min spec.epoch_ns (spec.duration_ns -. now) in
         Clock.advance clock dt;
         Machine.step machine ~dt
       end
     done;
     (* The loop exits as soon as the clock passes [duration_ns], so an
        injection scheduled inside the final epoch fires here, and a
        stalled clock (which overshoots the loop condition) must have the
        deadline re-checked after the loop. *)
     (if (not !injected) && inject_at < infinity then begin
        injected := true;
        match mode with
        | `Crash -> raise (Supervisor.Failed (Supervisor.Crash "injected machine crash"))
        | `Hang stall_ns -> Clock.advance clock stall_ns
        | `None -> ()
      end);
     let now = Clock.now clock in
     if now > deadline then
       raise
         (Supervisor.Failed
            (Supervisor.Straggler { deadline_ns = deadline; observed_ns = now }))
   with e ->
     (* Charge the simulated time this doomed attempt burned before dying. *)
     wasted := !wasted +. Float.min (Clock.now clock) deadline;
     raise e);
  let s = Machine.summary machine in
  match inject with Some Fault.Chaos_corrupt -> corrupt_summary s | _ -> s

let supervise_machine spec binaries zipf index =
  let wasted = ref 0.0 in
  let outcome =
    Supervisor.run spec.policy ~task:index
      ~validate:(fun s ->
        if Machine.summary_valid s then Ok () else Error "summary digest mismatch")
      (fun ~attempt -> run_attempt spec binaries zipf ~index ~attempt ~wasted)
  in
  (outcome, !wasted)

(* Index-ordered merge of one supervised outcome (on the calling domain). *)
let merge_outcome state spec index ((outcome, wasted) : Machine.summary Supervisor.outcome * float) =
  let stats = state.ck_stats in
  stats.st_attempts <- stats.st_attempts + outcome.Supervisor.attempts;
  stats.st_backoff_ns <- stats.st_backoff_ns +. outcome.Supervisor.backoff_ns;
  let corrupt_attempts = ref 0 in
  List.iter
    (fun (f : Supervisor.failure) ->
      match f with
      | Supervisor.Crash _ -> stats.st_crashes <- stats.st_crashes + 1
      | Supervisor.Straggler _ -> stats.st_stragglers <- stats.st_stragglers + 1
      | Supervisor.Corrupt _ ->
        stats.st_corruptions <- stats.st_corruptions + 1;
        incr corrupt_attempts)
    outcome.Supervisor.failures;
  (* wasted covers crashed/hung attempts; corrupt and completed attempts
     ran their full duration before being judged. *)
  let completed = match outcome.Supervisor.verdict with Supervisor.Completed _ -> 1 | Supervisor.Quarantined -> 0 in
  stats.st_sim_ns <-
    stats.st_sim_ns +. wasted +. outcome.Supervisor.backoff_ns
    +. (float_of_int (!corrupt_attempts + completed) *. spec.duration_ns);
  match outcome.Supervisor.verdict with
  | Supervisor.Completed summary -> merge_summary state.ck_aggregate summary
  | Supervisor.Quarantined ->
    let q_failure =
      match List.rev outcome.Supervisor.failures with
      | last :: _ -> Supervisor.describe_failure last
      | [] -> "no failure recorded"
    in
    state.ck_quarantined <-
      { q_machine = index; q_attempts = outcome.Supervisor.attempts; q_failure }
      :: state.ck_quarantined

(* --- The campaign loop -------------------------------------------------- *)

let run ?jobs ?(on_shard = fun ~shard:_ _ -> ()) ?resume ?max_shards spec =
  validate_spec spec;
  let digest = spec_digest spec in
  let binaries = Fleet.default_population spec.num_binaries in
  let zipf = popularity spec binaries in
  let state =
    match resume with
    | None -> fresh_state digest
    | Some ck ->
      if ck.ck_digest <> digest then
        invalid_arg "Campaign.run: checkpoint belongs to a different campaign spec";
      ck
  in
  let shards_run = ref 0 in
  let stopped = ref false in
  while (not !stopped) && state.ck_next_index < spec.machines do
    let lo = state.ck_next_index in
    let hi = min spec.machines (lo + spec.shard_size) in
    (* One shard of supervised machines in flight at a time: aggregate
       memory is O(shard_size), never O(machines). *)
    let outcomes =
      Parallel.map ?jobs
        (fun i -> supervise_machine spec binaries zipf i)
        (Array.init (hi - lo) (fun k -> lo + k))
    in
    Array.iteri (fun k outcome -> merge_outcome state spec (lo + k) outcome) outcomes;
    state.ck_next_index <- hi;
    on_shard ~shard:(lo / spec.shard_size) state;
    incr shards_run;
    match max_shards with
    | Some m when !shards_run >= m -> stopped := true
    | _ -> ()
  done;
  {
    r_aggregate = state.ck_aggregate;
    r_quarantined =
      List.sort (fun a b -> compare a.q_machine b.q_machine) state.ck_quarantined;
    r_stats = state.ck_stats;
    r_machines = spec.machines;
    r_finished = state.ck_next_index >= spec.machines;
  }
