(** Google-Wide-Profiling-style fleet telemetry aggregation (Sec. 2.2).

    Collects per-job allocator telemetry and aggregates it into the
    fleet-level views behind the characterization figures: malloc CPU cycle
    fractions (Fig. 5a), per-component cycle breakdowns (Fig. 6a),
    fragmentation ratios and breakdowns (Figs. 5b/6b), object-size CDFs
    (Fig. 7), size-conditioned lifetime distributions (Fig. 8), and
    per-binary usage totals (Fig. 3).

    Application CPU time is reconstructed from the productivity model:
    [requests x instructions_per_request x baseline CPI / frequency]. *)

val job_cpu_ns : Machine.job -> float
(** Modeled total CPU time the job consumed, in ns. *)

val malloc_cycle_fraction : Machine.job -> float
(** Fraction of the job's CPU spent in the allocator (Fig. 5a). *)

val fleet_malloc_cycle_fraction : Machine.job list -> float
(** CPU-weighted aggregate across jobs. *)

type cycle_breakdown = {
  cpu_cache : float;
  transfer_cache : float;
  central_free_list : float;
  pageheap : float;  (** Includes mmap system time. *)
  sampled : float;
  prefetch : float;
  other : float;
}
(** Shares of total malloc cycles; sums to 1 (Fig. 6a). *)

val cycle_breakdown : Machine.job list -> cycle_breakdown

type fragmentation_breakdown = {
  fb_cpu_cache : float;
  fb_transfer_cache : float;
  fb_central_free_list : float;
  fb_pageheap : float;
  fb_internal : float;
}
(** Shares of total (external + internal) fragmentation; sums to 1
    (Fig. 6b). *)

val fragmentation_breakdown : Machine.job list -> fragmentation_breakdown

val fragmentation_ratio : Machine.job list -> float * float
(** [(external_ratio, internal_ratio)] relative to live application bytes,
    aggregated across jobs (Fig. 5b). *)

val merged_size_histograms :
  Machine.job list -> Wsc_substrate.Histogram.t * Wsc_substrate.Histogram.t
(** [(by_count, by_bytes)] object-size histograms over all jobs (Fig. 7). *)

val merged_lifetime_bins :
  Machine.job list -> (int * Wsc_substrate.Histogram.t) list
(** Size-binned lifetime histograms over all jobs (Fig. 8). *)

type binary_usage = {
  binary : string;
  malloc_ns : float;
  allocated_bytes : float;
}

val binary_usage : Machine.job list -> binary_usage list
(** Per-binary malloc time and bytes allocated, descending by malloc time
    (Fig. 3); jobs of the same binary are summed. *)
