open Wsc_substrate
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Telemetry = Wsc_tcmalloc.Telemetry
module Driver = Wsc_workload.Driver
module Profile = Wsc_workload.Profile
module Productivity = Wsc_hw.Productivity
module Cost_model = Wsc_hw.Cost_model

let job_cpu_ns (job : Machine.job) =
  let params = job.Machine.profile.Profile.productivity in
  let requests = Driver.requests_completed job.Machine.driver in
  let cpi = Productivity.baseline_cpi params in
  requests *. params.Productivity.instructions_per_request *. cpi /. 3.0

let malloc_cycle_fraction job =
  let cpu = job_cpu_ns job in
  if cpu <= 0.0 then 0.0 else Driver.measured_malloc_ns job.Machine.driver /. cpu

let fleet_malloc_cycle_fraction jobs =
  let cpu = List.fold_left (fun acc j -> acc +. job_cpu_ns j) 0.0 jobs in
  let malloc_ns =
    List.fold_left (fun acc j -> acc +. Driver.measured_malloc_ns j.Machine.driver) 0.0 jobs
  in
  if cpu <= 0.0 then 0.0 else malloc_ns /. cpu

type cycle_breakdown = {
  cpu_cache : float;
  transfer_cache : float;
  central_free_list : float;
  pageheap : float;
  sampled : float;
  prefetch : float;
  other : float;
}

let cycle_breakdown jobs =
  let sum f =
    List.fold_left (fun acc j -> acc +. f (Backend.telemetry j.Machine.backend)) 0.0 jobs
  in
  let cpu_cache = sum (fun t -> Telemetry.tier_ns_since_mark t Cost_model.Per_cpu_cache) in
  let transfer_cache = sum (fun t -> Telemetry.tier_ns_since_mark t Cost_model.Transfer_cache) in
  let central_free_list =
    sum (fun t -> Telemetry.tier_ns_since_mark t Cost_model.Central_free_list)
  in
  let pageheap =
    sum (fun t ->
        Telemetry.tier_ns_since_mark t Cost_model.Pageheap
        +. Telemetry.tier_ns_since_mark t Cost_model.Mmap)
  in
  let sampled = sum Telemetry.sampled_ns_since_mark in
  let prefetch = sum Telemetry.prefetch_ns_since_mark in
  let other = sum Telemetry.other_ns_since_mark in
  let total =
    cpu_cache +. transfer_cache +. central_free_list +. pageheap +. sampled +. prefetch
    +. other
  in
  let norm x = if total <= 0.0 then 0.0 else x /. total in
  {
    cpu_cache = norm cpu_cache;
    transfer_cache = norm transfer_cache;
    central_free_list = norm central_free_list;
    pageheap = norm pageheap;
    sampled = norm sampled;
    prefetch = norm prefetch;
    other = norm other;
  }

type fragmentation_breakdown = {
  fb_cpu_cache : float;
  fb_transfer_cache : float;
  fb_central_free_list : float;
  fb_pageheap : float;
  fb_internal : float;
}

let sum_stats jobs =
  List.fold_left
    (fun (fe, tc, cfl, ph, internal, live) j ->
      let s = Backend.heap_stats j.Machine.backend in
      ( fe + s.Malloc.front_end_cached_bytes,
        tc + s.Malloc.transfer_cached_bytes,
        cfl + s.Malloc.cfl_fragmented_bytes,
        ph + s.Malloc.pageheap_fragmented_bytes,
        internal + s.Malloc.internal_fragmentation_bytes,
        live + s.Malloc.live_requested_bytes ))
    (0, 0, 0, 0, 0, 0) jobs

let fragmentation_breakdown jobs =
  let fe, tc, cfl, ph, internal, _live = sum_stats jobs in
  let total = float_of_int (fe + tc + cfl + ph + internal) in
  let norm x = if total <= 0.0 then 0.0 else float_of_int x /. total in
  {
    fb_cpu_cache = norm fe;
    fb_transfer_cache = norm tc;
    fb_central_free_list = norm cfl;
    fb_pageheap = norm ph;
    fb_internal = norm internal;
  }

let fragmentation_ratio jobs =
  let fe, tc, cfl, ph, internal, live = sum_stats jobs in
  if live <= 0 then (0.0, 0.0)
  else begin
    let live = float_of_int live in
    (float_of_int (fe + tc + cfl + ph) /. live, float_of_int internal /. live)
  end

let merged_size_histograms jobs =
  match jobs with
  | [] -> invalid_arg "Gwp.merged_size_histograms: no jobs"
  | first :: rest ->
    let tel j = Backend.telemetry j.Machine.backend in
    let count = ref (Telemetry.size_histogram_count (tel first)) in
    let bytes = ref (Telemetry.size_histogram_bytes (tel first)) in
    List.iter
      (fun j ->
        count := Histogram.merge !count (Telemetry.size_histogram_count (tel j));
        bytes := Histogram.merge !bytes (Telemetry.size_histogram_bytes (tel j)))
      rest;
    (!count, !bytes)

let merged_lifetime_bins jobs =
  let table : (int, Histogram.t) Hashtbl.t = Hashtbl.create 48 in
  List.iter
    (fun j ->
      List.iter
        (fun (bin, hist) ->
          match Hashtbl.find_opt table bin with
          | Some existing -> Hashtbl.replace table bin (Histogram.merge existing hist)
          | None -> Hashtbl.replace table bin hist)
        (Telemetry.lifetime_bins (Backend.telemetry j.Machine.backend)))
    jobs;
  Hashtbl.fold (fun bin hist acc -> (bin, hist) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type binary_usage = { binary : string; malloc_ns : float; allocated_bytes : float }

let binary_usage jobs =
  let table : (string, float * float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun j ->
      let name = j.Machine.profile.Profile.name in
      let tel = Backend.telemetry j.Machine.backend in
      let ns = Telemetry.total_malloc_ns tel in
      let bytes = Histogram.total_weight (Telemetry.size_histogram_bytes tel) in
      let prev_ns, prev_bytes = Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt table name) in
      Hashtbl.replace table name (prev_ns +. ns, prev_bytes +. bytes))
    jobs;
  Hashtbl.fold
    (fun binary (malloc_ns, allocated_bytes) acc -> { binary; malloc_ns; allocated_bytes } :: acc)
    table []
  |> List.sort (fun a b -> compare b.malloc_ns a.malloc_ns)
