(** Fleet A/B experiments (Sec. 2.2, "Fleet experiment").

    The paper evaluates each allocator design by giving 1% of machines the
    experimental build and comparing against a 1% control group.  The model
    runs the *same* workload seeds under two allocator configs and compares
    job-by-job, which removes sampling noise entirely (the simulated analog
    of a perfectly balanced experiment/control split).

    Throughput and CPI deltas come from the productivity model: the
    experiment arm's measured remote-reuse fraction and hugepage coverage
    are mapped to LLC MPKI and dTLB-walk deltas relative to the control
    arm, and the change in allocator CPU per request is charged on top.
    Memory deltas compare time-averaged simulated RSS. *)

type outcome = {
  app : string;
  throughput_change_pct : float;
  memory_change_pct : float;  (** Negative = the experiment saves RAM. *)
  cpi_change_pct : float;
  mpki_before : float;
  mpki_after : float;
  walk_before_pct : float;  (** dTLB load-walk cycle %, control arm. *)
  walk_after_pct : float;
  coverage_before : float;
  coverage_after : float;
  remote_before : float;  (** Remote object-reuse fraction, control arm. *)
  remote_after : float;
  frag_before : float;  (** Time-averaged fragmentation ratio, control. *)
  frag_after : float;
}

val compare_jobs : control:Machine.job -> experiment:Machine.job -> outcome
(** Both jobs must run the same profile. *)

val run_app :
  ?jobs:int ->
  ?seed:int ->
  ?replicas:int ->
  ?warmup_ns:float ->
  ?duration_ns:float ->
  ?epoch_ns:float ->
  ?platform:Wsc_hw.Topology.t ->
  control:Wsc_tcmalloc.Config.t ->
  experiment:Wsc_tcmalloc.Config.t ->
  Wsc_workload.Profile.t ->
  outcome
(** Dedicated-server A/B for one application (the paper's benchmark
    methodology).  Runs [replicas] (default 3) seed-varied pairs and
    averages, standing in for the fleet's noise suppression.  The
    [2 * replicas] arm machines run on up to [jobs] domains; pairing is by
    task index, so the outcome is bit-identical for any job count. *)

type fleet_outcome = {
  fleet : outcome;  (** CPU-weighted aggregate, app name ["fleet"]. *)
  per_app : outcome list;  (** Aggregated per distinct binary, by name. *)
}

val run_fleet :
  ?jobs:int ->
  ?seed:int ->
  ?num_machines:int ->
  ?warmup_ns:float ->
  ?duration_ns:float ->
  ?epoch_ns:float ->
  control:Wsc_tcmalloc.Config.t ->
  experiment:Wsc_tcmalloc.Config.t ->
  unit ->
  fleet_outcome
