open Wsc_substrate
module Topology = Wsc_hw.Topology
module Profile = Wsc_workload.Profile
module Apps = Wsc_workload.Apps

type t = {
  machines : Machine.t list;
  binaries : Profile.t array;
}

(* Platform mix: newer generations dominate but older ones linger. *)
let platform_weights = [| 0.08; 0.12; 0.20; 0.28; 0.32 |]

let make_binaries n =
  Array.init n (fun rank ->
      match rank with
      | 0 -> Apps.monarch
      | 1 -> Apps.spanner
      | 2 -> Apps.bigtable
      | 3 -> Apps.f1_query
      | 4 -> Apps.disk
      | _ -> Apps.fleet_binary ~rank)

let create ?(seed = 7) ?(num_machines = 24) ?(num_binaries = 50) ?(jobs_per_machine = 2)
    ?(zipf_s = 0.9) ?population ?(config = Wsc_tcmalloc.Config.baseline) () =
  if num_machines <= 0 || num_binaries < 5 || jobs_per_machine <= 0 then
    invalid_arg "Fleet.create: bad shape";
  let rng = Rng.create seed in
  let binaries =
    match population with
    | Some p when Array.length p >= 5 -> p
    | Some _ -> invalid_arg "Fleet.create: population too small"
    | None -> make_binaries num_binaries
  in
  let num_binaries =
    match population with Some p -> Array.length p | None -> num_binaries
  in
  (* One precomputed sampler for the whole fleet draw: same stream as the
     old memoized Dist.zipf, with no global table or lock behind it. *)
  let zipf = Dist.zipf_sampler ~n:num_binaries ~s:zipf_s in
  let machines =
    List.init num_machines (fun i ->
        let platform =
          Topology.generations.(Dist.categorical rng platform_weights)
        in
        let jobs =
          List.init jobs_per_machine (fun _ ->
              binaries.(Dist.discrete_sample zipf rng))
        in
        Machine.create ~seed:(seed + (7919 * (i + 1))) ~config ~platform ~jobs ())
  in
  { machines; binaries }

let run ?jobs t ~duration_ns ~epoch_ns =
  (* Machines are independent tasks: each owns its clock, RNGs, and
     allocator state, so they may run on any domain.  Parallel.map_list
     returns in task-index order, so the summary list is machine-ordered
     and identical for any job count. *)
  Parallel.map_list ?jobs
    (fun m ->
      Machine.run m ~duration_ns ~epoch_ns;
      Machine.summary m)
    t.machines

let machines t = t.machines
let jobs t = List.concat_map Machine.jobs t.machines
let binary_population t = t.binaries
let default_population num_binaries = make_binaries num_binaries
let platform_mix = platform_weights

(* Fleet checkpoints marshal the whole record so the binary population
   array keeps its sharing with the jobs that were drawn from it. *)
let checkpoint t =
  let rec detached jobs k =
    match jobs with
    | [] -> k ()
    | job :: rest ->
      Wsc_workload.Driver.with_probe_detached job.Machine.driver (fun () ->
          detached rest k)
  in
  detached (jobs t) (fun () -> Marshal.to_string t [ Marshal.Closures ])

let resume blob : t = Marshal.from_string blob 0
