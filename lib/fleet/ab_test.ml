open Wsc_substrate
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Telemetry = Wsc_tcmalloc.Telemetry
module Driver = Wsc_workload.Driver
module Profile = Wsc_workload.Profile
module Productivity = Wsc_hw.Productivity
module Tlb_model = Wsc_hw.Tlb_model
module Topology = Wsc_hw.Topology

type outcome = {
  app : string;
  throughput_change_pct : float;
  memory_change_pct : float;
  cpi_change_pct : float;
  mpki_before : float;
  mpki_after : float;
  walk_before_pct : float;
  walk_after_pct : float;
  coverage_before : float;
  coverage_after : float;
  remote_before : float;
  remote_after : float;
  frag_before : float;
  frag_after : float;
}

let malloc_ns_per_request (job : Machine.job) =
  let requests = Driver.requests_completed job.Machine.driver in
  if requests <= 0.0 then 0.0
  else Driver.measured_malloc_ns job.Machine.driver /. requests

let compare_jobs ~control ~experiment =
  let profile = control.Machine.profile in
  if profile.Profile.name <> experiment.Machine.profile.Profile.name then
    invalid_arg "Ab_test.compare_jobs: mismatched profiles";
  let params = profile.Profile.productivity in
  let remote_before =
    Telemetry.remote_reuse_fraction (Backend.telemetry control.Machine.backend)
  in
  let remote_after =
    Telemetry.remote_reuse_fraction (Backend.telemetry experiment.Machine.backend)
  in
  let mpki_before = params.Productivity.llc_mpki in
  let mpki_after =
    if remote_before <= 0.0 then mpki_before
    else
      Productivity.mpki_with_locality params ~remote_fraction:remote_after
        ~baseline_remote_fraction:remote_before
  in
  let coverage_before = Driver.avg_hugepage_coverage control.Machine.driver in
  let coverage_after = Driver.avg_hugepage_coverage experiment.Machine.driver in
  let walk_before = params.Productivity.dtlb_walk_fraction in
  (* Table 2's "Before" walk fraction corresponds to the control arm's
     coverage, so the experiment arm scales by the *relative* miss factor. *)
  let walk_after =
    walk_before
    *. (Tlb_model.relative_misses ~coverage:coverage_after
       /. Tlb_model.relative_misses ~coverage:coverage_before)
  in
  let topology = Backend.topology control.Machine.backend in
  let locality_tlb_change =
    Productivity.throughput_change_pct topology params ~mpki_before
      ~walk_before ~mpki_after ~walk_after
  in
  (* Change in allocator CPU per request, as a share of request CPU.  The
     request CPU is anchored to the control arm's measured allocator time
     via the app's malloc cycle share (Fig. 5a): if malloc is f of the CPU
     and gets r% more expensive per request, throughput loses ~f*r%. *)
  let mn_control = malloc_ns_per_request control in
  let malloc_cpu_change_pct =
    if mn_control <= 0.0 then 0.0
    else
      params.Productivity.malloc_cycle_fraction
      *. (malloc_ns_per_request experiment -. mn_control)
      /. mn_control *. 100.0
  in
  let throughput_change_pct = locality_tlb_change -. malloc_cpu_change_pct in
  let cpi_change_pct =
    Productivity.cpi_change_pct params ~mpki_before ~walk_before ~mpki_after ~walk_after
  in
  let rss_before = Driver.avg_rss_bytes control.Machine.driver in
  let rss_after = Driver.avg_rss_bytes experiment.Machine.driver in
  {
    app = profile.Profile.name;
    throughput_change_pct;
    memory_change_pct = Stats.percent_change ~before:rss_before ~after:rss_after;
    cpi_change_pct;
    mpki_before;
    mpki_after;
    walk_before_pct = 100.0 *. walk_before;
    walk_after_pct = 100.0 *. walk_after;
    coverage_before;
    coverage_after;
    remote_before;
    remote_after;
    frag_before = Driver.avg_fragmentation_ratio control.Machine.driver;
    frag_after = Driver.avg_fragmentation_ratio experiment.Machine.driver;
  }

type fleet_outcome = { fleet : outcome; per_app : outcome list }

(* Weighted mean of a field over paired outcomes. *)
let weighted outcomes weights f =
  let total = List.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then 0.0
  else
    List.fold_left2 (fun acc o w -> acc +. (f o *. w)) 0.0 outcomes weights /. total

let aggregate name outcomes weights =
  let w = weighted outcomes weights in
  {
    app = name;
    throughput_change_pct = w (fun o -> o.throughput_change_pct);
    memory_change_pct = w (fun o -> o.memory_change_pct);
    cpi_change_pct = w (fun o -> o.cpi_change_pct);
    mpki_before = w (fun o -> o.mpki_before);
    mpki_after = w (fun o -> o.mpki_after);
    walk_before_pct = w (fun o -> o.walk_before_pct);
    walk_after_pct = w (fun o -> o.walk_after_pct);
    coverage_before = w (fun o -> o.coverage_before);
    coverage_after = w (fun o -> o.coverage_after);
    remote_before = w (fun o -> o.remote_before);
    remote_after = w (fun o -> o.remote_after);
    frag_before = w (fun o -> o.frag_before);
    frag_after = w (fun o -> o.frag_after);
  }

let run_app ?jobs ?(seed = 11) ?(replicas = 3) ?(warmup_ns = 30.0 *. Units.sec)
    ?(duration_ns = 60.0 *. Units.sec) ?(epoch_ns = Units.ms)
    ?(platform = Topology.default) ~control ~experiment profile =
  let make seed config =
    let machine = Machine.create ~seed ~config ~platform ~jobs:[ profile ] () in
    Machine.run machine ~duration_ns:warmup_ns ~epoch_ns;
    List.iter (fun j -> Driver.reset_measurements j.Machine.driver) (Machine.jobs machine);
    Machine.run machine ~duration_ns ~epoch_ns;
    List.hd (Machine.jobs machine)
  in
  (* Each (replica, arm) machine is an independent task; arms of replica
     [i] sit at indices [2i] and [2i+1], so pairing the result array in
     index order reproduces the sequential control-then-experiment run
     exactly, for any job count. *)
  let arms =
    Array.init (2 * replicas) (fun i ->
        let seed = seed + (101 * (i / 2)) in
        if i land 1 = 0 then (seed, control) else (seed, experiment))
  in
  let arm_jobs = Parallel.map ?jobs (fun (s, config) -> make s config) arms in
  (* Averaging independent replicas stands in for the noise suppression the
     paper gets from thousands of machines per experiment arm. *)
  let outcomes =
    List.init replicas (fun i ->
        compare_jobs ~control:arm_jobs.(2 * i) ~experiment:arm_jobs.((2 * i) + 1))
  in
  aggregate profile.Profile.name outcomes (List.map (fun _ -> 1.0) outcomes)

let run_fleet ?jobs ?(seed = 11) ?(num_machines = 12) ?(warmup_ns = 20.0 *. Units.sec)
    ?(duration_ns = 40.0 *. Units.sec) ?(epoch_ns = Units.ms) ~control ~experiment () =
  let build config =
    let fleet = Fleet.create ~seed ~num_machines ~config () in
    (* The warmup's summaries describe transient heap build-up; only the
       measured window below feeds the comparison. *)
    let (_ : Machine.summary list) =
      Fleet.run ?jobs fleet ~duration_ns:warmup_ns ~epoch_ns
    in
    List.iter (fun j -> Driver.reset_measurements j.Machine.driver) (Fleet.jobs fleet);
    let summaries = Fleet.run ?jobs fleet ~duration_ns ~epoch_ns in
    (Fleet.jobs fleet, summaries)
  in
  let control_jobs, control_summaries = build control in
  let experiment_jobs, _ = build experiment in
  (* Weights come from the measured-run summaries (machine order matches
     Fleet.jobs: machines in order, jobs in creation order within each). *)
  let weights =
    List.concat_map
      (fun (s : Machine.summary) ->
        List.map (fun (js : Machine.job_summary) -> js.Machine.js_cpu_ns) s.Machine.sm_jobs)
      control_summaries
  in
  let all =
    List.map2 (fun c e -> compare_jobs ~control:c ~experiment:e) control_jobs
      experiment_jobs
  in
  let outcomes = List.combine all weights in
  let fleet = aggregate "fleet" all weights in
  let names = List.sort_uniq compare (List.map (fun o -> o.app) all) in
  let per_app =
    List.map
      (fun name ->
        let subset = List.filter (fun (o, _) -> o.app = name) outcomes in
        aggregate name (List.map fst subset) (List.map snd subset))
      names
  in
  { fleet; per_app }
