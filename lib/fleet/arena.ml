(* Cross-allocator arena: the same workloads run against every backend,
   reported side by side.

   Four scenarios per backend:

   - [Zoo]      — a co-located machine running workload-zoo profiles
                  (redis + bigtable) for one second of simulated time:
                  the "realistic" cell, throughput in requests.
   - [Flood]    — producer/consumer cross-CPU flood: every object is
                  allocated on one CPU and freed on another, the traffic
                  pattern that separates deferred-free designs (rpmalloc),
                  arena-bound tcaches (jemalloc) and the transfer cache
                  (tcmalloc).
   - [Churn]    — Fig. 7-leaning size-mix churn around a steady live heap,
                  the fragmentation stressor.
   - [Pressure] — allocation against a hard memory limit: the survival
                  cell (reclaim-retry must absorb the limit; OOMs are
                  counted, crashes are a failure).

   Every scenario is driven either by the simulated clock or by a seeded
   RNG, so all counters and byte totals in a [cell] are bit-deterministic
   for a given seed — which is what lets CI gate the committed
   BENCH_arena.json by exact match ({!check_committed}).  Wall-clock
   throughput is measured too, but is informational only (it depends on
   the host). *)

open Wsc_substrate
module Config = Wsc_tcmalloc.Config
module Malloc = Wsc_tcmalloc.Malloc
module Telemetry = Wsc_tcmalloc.Telemetry
module Audit = Wsc_tcmalloc.Audit
module Backend = Wsc_backend.Backend
module Topology = Wsc_hw.Topology
module Vm = Wsc_os.Vm
module Apps = Wsc_workload.Apps
module Driver = Wsc_workload.Driver

type scenario = Zoo | Flood | Churn | Pressure

let scenario_name = function
  | Zoo -> "zoo"
  | Flood -> "flood"
  | Churn -> "churn"
  | Pressure -> "pressure"

let all_scenarios = [ Zoo; Flood; Churn; Pressure ]

type cell = {
  cell_backend : Config.backend_kind;
  cell_scenario : scenario;
  (* Deterministic fields — gated by exact match against the committed
     BENCH_arena.json. *)
  allocs : int;
  frees : int;
  ooms : int;
  peak_rss_bytes : int;
  final_rss_bytes : int;
  frag_permille : int;
  survived : bool;
  (* Informational fields — host-dependent, never gated. *)
  wall_s : float;
  throughput_per_sec : float;
}

type report = { seed : int; cells : cell list }

(* external + internal fragmentation per mille of live requested bytes,
   computed on integers so the committed value matches on any host. *)
let frag_permille_of (s : Malloc.heap_stats) =
  if s.Malloc.live_requested_bytes = 0 then 0
  else
    (s.Malloc.external_fragmentation_bytes + s.Malloc.internal_fragmentation_bytes)
    * 1000
    / s.Malloc.live_requested_bytes

let fresh_backend ~kind =
  let clock = Clock.create () in
  Backend.create
    ~config:(Config.with_backend kind Config.baseline)
    ~topology:Topology.default ~clock ()

(* --- Zoo: co-located workload-zoo profiles on one machine ------------- *)

let run_zoo ~kind ~seed =
  let config = Config.with_backend kind Config.baseline in
  let machine =
    Machine.create ~seed ~config ~platform:Topology.default
      ~jobs:[ Apps.redis; Apps.bigtable ] ()
  in
  Machine.run machine ~duration_ns:(1.0 *. Units.sec) ~epoch_ns:Units.ms;
  let jobs = Machine.jobs machine in
  let allocs, frees, requests, peak =
    List.fold_left
      (fun (a, f, r, p) (j : Machine.job) ->
        let tel = Backend.telemetry j.Machine.backend in
        ( a + Telemetry.alloc_count tel,
          f + Telemetry.free_count tel,
          r +. Driver.requests_completed j.Machine.driver,
          p + Driver.peak_rss_bytes j.Machine.driver ))
      (0, 0, 0.0, 0) jobs
  in
  let stats =
    List.fold_left
      (fun acc (j : Machine.job) ->
        let s = Backend.heap_stats j.Machine.backend in
        {
          s with
          Malloc.live_requested_bytes =
            acc.Malloc.live_requested_bytes + s.Malloc.live_requested_bytes;
          external_fragmentation_bytes =
            acc.Malloc.external_fragmentation_bytes
            + s.Malloc.external_fragmentation_bytes;
          internal_fragmentation_bytes =
            acc.Malloc.internal_fragmentation_bytes
            + s.Malloc.internal_fragmentation_bytes;
        })
      (Backend.heap_stats (List.hd jobs).Machine.backend |> fun s ->
       { s with Malloc.live_requested_bytes = 0; external_fragmentation_bytes = 0;
         internal_fragmentation_bytes = 0 })
      jobs
  in
  let survived =
    List.for_all
      (fun (j : Machine.job) -> Audit.is_clean (Backend.audit j.Machine.backend))
      jobs
  in
  (allocs, frees, 0, peak, Machine.total_rss machine, frag_permille_of stats, survived, requests)

(* --- Flood: cross-CPU producer/consumer ------------------------------- *)

let flood_sizes = [| 64; 128; 256; 384; 512; 1024; 2048; 8192 |]
let flood_rounds = 6_000
let flood_batch = 8
let flood_lag = 64 (* batches in flight before the consumer starts freeing *)

let run_flood ~kind ~seed:_ =
  let backend = fresh_backend ~kind in
  let q = Queue.create () in
  let allocs = ref 0 and frees = ref 0 and peak = ref 0 in
  for round = 0 to flood_rounds - 1 do
    let producer = round mod 4 in
    let batch =
      List.init flood_batch (fun i ->
          let size = flood_sizes.((round + i) mod Array.length flood_sizes) in
          let addr = Backend.malloc backend ~cpu:producer ~size in
          incr allocs;
          (addr, size))
    in
    Queue.push (batch, 4 + producer) q;
    if Queue.length q > flood_lag then begin
      let batch, consumer = Queue.pop q in
      List.iter
        (fun (addr, size) ->
          Backend.free backend ~cpu:consumer addr ~size;
          incr frees)
        batch
    end;
    if round mod 256 = 0 then begin
      let rss = Backend.resident_bytes backend in
      if rss > !peak then peak := rss
    end
  done;
  let frag = frag_permille_of (Backend.heap_stats backend) in
  Queue.iter
    (fun (batch, consumer) ->
      List.iter
        (fun (addr, size) ->
          Backend.free backend ~cpu:consumer addr ~size;
          incr frees)
        batch)
    q;
  ignore (Backend.release_memory backend ~target_bytes:max_int);
  let survived = Audit.is_clean (Backend.audit backend) in
  (!allocs, !frees, 0, !peak, Backend.resident_bytes backend, frag, survived,
   float_of_int (!allocs + !frees))

(* --- Churn: Fig. 7 size-mix around a steady live heap ------------------ *)

let churn_ops = 60_000

let churn_size rng =
  (* The Fig. 7 lean: mostly small, a tail through large spans. *)
  match Rng.int rng 100 with
  | n when n < 55 -> Rng.int_in rng 8 256
  | n when n < 82 -> Rng.int_in rng 257 4096
  | n when n < 94 -> Rng.int_in rng 4097 (64 * 1024)
  | n when n < 99 -> Rng.int_in rng (64 * 1024) (512 * 1024)
  | _ -> Rng.int_in rng (512 * 1024) (2 * 1024 * 1024)

let run_churn ~kind ~seed =
  let backend = fresh_backend ~kind in
  let rng = Rng.create (0xa17e4a + (seed * 31)) in
  let live = ref [] and n_live = ref 0 in
  let allocs = ref 0 and frees = ref 0 and peak = ref 0 in
  for op = 0 to churn_ops - 1 do
    let want_alloc = !n_live < 2000 || Rng.int rng 100 < 48 in
    if want_alloc then begin
      let cpu = Rng.int rng 8 in
      let size = churn_size rng in
      let addr = Backend.malloc backend ~cpu ~size in
      incr allocs;
      incr n_live;
      live := (addr, size) :: !live
    end
    else begin
      match !live with
      | (addr, size) :: rest ->
        Backend.free backend ~cpu:(Rng.int rng 8) addr ~size;
        incr frees;
        decr n_live;
        live := rest
      | [] -> ()
    end;
    if op mod 500 = 499 then Backend.cpu_idle backend ~cpu:(Rng.int rng 8);
    if op mod 512 = 0 then begin
      let rss = Backend.resident_bytes backend in
      if rss > !peak then peak := rss
    end
  done;
  let frag = frag_permille_of (Backend.heap_stats backend) in
  List.iter
    (fun (addr, size) ->
      Backend.free backend ~cpu:0 addr ~size;
      incr frees)
    !live;
  ignore (Backend.release_memory backend ~target_bytes:max_int);
  let survived = Audit.is_clean (Backend.audit backend) in
  (!allocs, !frees, 0, !peak, Backend.resident_bytes backend, frag, survived,
   float_of_int (!allocs + !frees))

(* --- Pressure: survival against a hard limit --------------------------- *)

let pressure_limit = 48 * 1024 * 1024
let pressure_ops = 20_000

let run_pressure ~kind ~seed =
  let backend = fresh_backend ~kind in
  Vm.set_hard_limit (Backend.vm backend) (Some pressure_limit);
  Vm.set_soft_limit (Backend.vm backend) (Some (pressure_limit * 85 / 100));
  let rng = Rng.create (0x9e55 + (seed * 17)) in
  let live = ref [] and n_live = ref 0 in
  let allocs = ref 0 and frees = ref 0 and ooms = ref 0 and peak = ref 0 in
  let crashed = ref false in
  (try
     for op = 0 to pressure_ops - 1 do
       let cpu = Rng.int rng 4 in
       if Rng.int rng 100 < 60 then begin
         let size = 4096 + Rng.int rng (28 * 1024) in
         match Backend.malloc backend ~cpu ~size with
         | addr ->
           incr allocs;
           incr n_live;
           live := (addr, size) :: !live
         | exception Stdlib.Out_of_memory -> (
           incr ooms;
           (* Survive the OOM the way a real server would: shed load. *)
           match !live with
           | (addr, size) :: rest ->
             Backend.free backend ~cpu addr ~size;
             incr frees;
             decr n_live;
             live := rest
           | [] -> ())
       end
       else begin
         match !live with
         | (addr, size) :: rest ->
           Backend.free backend ~cpu addr ~size;
           incr frees;
           decr n_live;
           live := rest
         | [] -> ()
       end;
       if op mod 256 = 0 then begin
         let rss = Backend.resident_bytes backend in
         if rss > !peak then peak := rss
       end
     done
   with exn ->
     crashed := true;
     ignore exn);
  let under_limit = Backend.resident_bytes backend <= pressure_limit in
  List.iter
    (fun (addr, size) ->
      Backend.free backend ~cpu:0 addr ~size;
      incr frees)
    !live;
  ignore (Backend.release_memory backend ~target_bytes:max_int);
  let survived =
    (not !crashed) && under_limit && Audit.is_clean (Backend.audit backend)
  in
  (!allocs, !frees, !ooms, !peak, Backend.resident_bytes backend, 0, survived,
   float_of_int (!allocs + !frees))

(* --- Harness ----------------------------------------------------------- *)

let run_cell ~kind ~seed scenario =
  let t0 = Sys.time () in
  let allocs, frees, ooms, peak, final, frag, survived, events =
    match scenario with
    | Zoo -> run_zoo ~kind ~seed
    | Flood -> run_flood ~kind ~seed
    | Churn -> run_churn ~kind ~seed
    | Pressure -> run_pressure ~kind ~seed
  in
  let wall = Sys.time () -. t0 in
  {
    cell_backend = kind;
    cell_scenario = scenario;
    allocs;
    frees;
    ooms;
    peak_rss_bytes = peak;
    final_rss_bytes = final;
    frag_permille = frag;
    survived;
    wall_s = wall;
    throughput_per_sec = (if wall > 0.0 then events /. wall else 0.0);
  }

let run ?(backends = Config.all_backends) ?(seed = 42) () =
  {
    seed;
    cells =
      List.concat_map
        (fun kind -> List.map (run_cell ~kind ~seed) all_scenarios)
        backends;
  }

(* --- Reporting --------------------------------------------------------- *)

(* The deterministic prefix of a cell's JSON line: what {!check_committed}
   matches byte-for-byte against the committed file. *)
let cell_key c =
  Printf.sprintf
    "\"backend\":\"%s\",\"scenario\":\"%s\",\"allocs\":%d,\"frees\":%d,\"ooms\":%d,\"peak_rss_bytes\":%d,\"final_rss_bytes\":%d,\"frag_permille\":%d,\"survived\":%b"
    (Config.backend_name c.cell_backend)
    (scenario_name c.cell_scenario)
    c.allocs c.frees c.ooms c.peak_rss_bytes c.final_rss_bytes c.frag_permille
    c.survived

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"benchmark\": \"arena\",\n";
  Printf.bprintf b "  \"seed\": %d,\n" r.seed;
  Buffer.add_string b "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      Printf.bprintf b "    {%s,\"wall_s\":%.3f,\"throughput_per_sec\":%.0f}%s\n"
        (cell_key c) c.wall_s c.throughput_per_sec
        (if i = List.length r.cells - 1 then "" else ","))
    r.cells;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let check_committed ~committed r =
  List.filter_map
    (fun c ->
      let key = cell_key c in
      let klen = String.length key and len = String.length committed in
      let rec found i =
        if i + klen > len then false
        else String.sub committed i klen = key || found (i + 1)
      in
      if found 0 then None
      else
        Some
          (Printf.sprintf "%s/%s: deterministic metrics differ from committed (%s)"
             (Config.backend_name c.cell_backend)
             (scenario_name c.cell_scenario)
             key))
    r.cells

let pp_table ppf r =
  Format.fprintf ppf "%-9s %-9s %10s %10s %5s %12s %12s %6s %5s %12s@."
    "backend" "scenario" "allocs" "frees" "ooms" "peak_rss" "final_rss" "frag"
    "ok" "events/s";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-9s %-9s %10d %10d %5d %12d %12d %5.1f%% %5s %12.0f@."
        (Config.backend_name c.cell_backend)
        (scenario_name c.cell_scenario)
        c.allocs c.frees c.ooms c.peak_rss_bytes c.final_rss_bytes
        (float_of_int c.frag_permille /. 10.0)
        (if c.survived then "yes" else "NO")
        c.throughput_per_sec)
    r.cells
