(** A simulated fleet (Sec. 2.2/2.3).

    Machines draw their platform from the generation mix (newer chiplet
    platforms dominate), and their co-located jobs from a Zipf-popular
    binary population: the first five binaries are the named production
    workloads with the highest malloc usage, the long tail is synthetic
    fleet-profile variants — which is what makes the top-50 binaries cover
    only ~50% of malloc cycles and ~65% of allocated memory (Fig. 3). *)

type t

val create :
  ?seed:int ->
  ?num_machines:int ->
  ?num_binaries:int ->
  ?jobs_per_machine:int ->
  ?zipf_s:float ->
  ?population:Wsc_workload.Profile.t array ->
  ?config:Wsc_tcmalloc.Config.t ->
  unit ->
  t
(** Defaults: 24 machines, 50 binaries, 2 jobs per machine, Zipf(0.9)
    binary popularity.  [population] overrides the default binary
    population (top-5 production workloads + synthetic tail) entirely;
    it must be ordered most-popular first and have >= 5 entries. *)

val run : ?jobs:int -> t -> duration_ns:float -> epoch_ns:float -> Machine.summary list
(** Run every machine for the given simulated duration and return their
    post-run summaries in machine order.  Machines advance on up to [jobs]
    domains (default {!Wsc_substrate.Parallel.default_jobs}); results —
    including the summary list — are identical for any job count because
    every machine owns all state it touches and the merge is index-ordered. *)

val machines : t -> Machine.t list

val jobs : t -> Machine.job list
(** All jobs across all machines. *)

val binary_population : t -> Wsc_workload.Profile.t array
(** The binaries jobs were drawn from, most popular first. *)

val default_population : int -> Wsc_workload.Profile.t array
(** The population {!create} builds without [?population]: the top-5 named
    production workloads followed by synthetic fleet-profile variants.
    Exposed so {!Campaign} draws from the same binary universe. *)

val platform_mix : float array
(** Categorical weights over {!Wsc_hw.Topology.generations} used when
    drawing machine platforms (newer generations dominate). *)

val checkpoint : t -> string
(** Serialize every machine plus the binary population into one blob;
    {!resume} + {!run} is bit-identical to an uninterrupted run for any
    [?jobs] level (machines are independent tasks).  Same-binary only —
    see {!Wsc_persist} for the durable container. *)

val resume : string -> t
(** Inverse of {!checkpoint}. *)
