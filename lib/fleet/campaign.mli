(** Crash-tolerant fleet campaigns: supervised, sharded, streaming.

    A campaign runs [machines] independent simulated machines — each built
    deterministically from (campaign seed, machine index) — under a
    {!Wsc_substrate.Supervisor} retry policy with
    {!Wsc_os.Fault.chaos}-scheduled failure injection, and folds each
    machine's {!Machine.summary} into one constant-size streaming
    {!aggregate}.  Machines are processed in fixed-size shards; after each
    shard the campaign state can be checkpointed (see
    {!Wsc_persist.Persist.save_campaign}) so a killed campaign resumes
    machine-by-machine instead of restarting.

    {b Ordered-merge determinism rule.}  Each machine is an isolated task
    (own clock, RNGs, allocator) whose outcome is a pure function of the
    spec and its index — including its injected failures and retries.
    Summaries are merged into the aggregate strictly in machine-index
    order on the calling domain.  Consequently an N-domain, crash-riddled,
    killed-and-resumed campaign produces aggregates {e bit-identical} to a
    1-domain fault-free run of the same spec (provided no machine is
    quarantined — quarantined machines are excluded from the aggregate and
    reported as lost coverage instead).

    Memory stays O(shard): at most one shard of machine summaries is alive
    at a time, and no per-machine result list is ever built. *)

type spec = {
  seed : int;
  machines : int;
  num_binaries : int;  (** Size of the Zipf binary population (>= 5). *)
  jobs_per_machine : int;
  zipf_s : float;
  config : Wsc_tcmalloc.Config.t;
  duration_ns : float;  (** Simulated run length per machine. *)
  epoch_ns : float;
  straggler_factor : float;
      (** Per-machine deadline = factor x duration; a machine whose clock
          passes it (e.g. under an injected hang) is a straggler (> 1). *)
  chaos : Wsc_os.Fault.chaos;
  policy : Wsc_substrate.Supervisor.policy;
  shard_size : int;  (** Machines per shard / checkpoint granularity. *)
}

val default_spec : spec
(** 24 machines, 50 binaries, 2 jobs/machine, Zipf(0.9), baseline config,
    10 s runs at 1 ms epochs, deadline 4x, no chaos,
    {!Wsc_substrate.Supervisor.default_policy}, shard 16. *)

val validate_spec : spec -> unit
(** @raise Invalid_argument on a malformed spec. *)

val spec_digest : spec -> string
(** Digest of every behavior-shaping field; checkpoints carry it so a
    resume against a different spec is rejected instead of merging
    incompatible aggregates. *)

(** {2 Streaming aggregate} *)

type aggregate = {
  mutable a_machines : int;  (** Machines completed (not quarantined). *)
  mutable a_jobs : int;
  mutable a_requests : float;
  mutable a_allocations : int;
  mutable a_frees : int;
  mutable a_live_objects : int;
  mutable a_malloc_ns : float;
  mutable a_cpu_ns : float;
  mutable a_allocated_bytes : float;
  mutable a_avg_rss_bytes : float;  (** Sum of per-job time-averaged RSS. *)
  mutable a_resident_bytes : int;
  mutable a_live_bytes : int;
  mutable a_external_frag_bytes : int;
  mutable a_internal_frag_bytes : int;
  mutable a_hugepage_cov_sum : float;  (** Sum over jobs; mean = /a_jobs. *)
  mutable a_size_count : Wsc_substrate.Histogram.t option;
  mutable a_size_bytes : Wsc_substrate.Histogram.t option;
  a_binaries : (string, float * float * int) Hashtbl.t;
      (** binary -> (malloc_ns, allocated_bytes, jobs); bounded by the
          binary population, not the machine count. *)
}

val render_aggregate : aggregate -> string
(** Deterministic textual form (floats printed with full precision):
    bit-identical aggregates render byte-identically, so CI can [diff] a
    resumed chaos campaign against an uninterrupted reference. *)

(** {2 Outcomes} *)

type quarantine = {
  q_machine : int;
  q_attempts : int;
  q_failure : string;  (** The last failure, described. *)
}

type stats = {
  mutable st_attempts : int;  (** Machine run attempts, incl. retries. *)
  mutable st_crashes : int;
  mutable st_stragglers : int;
  mutable st_corruptions : int;
  mutable st_backoff_ns : float;  (** Simulated backoff charged. *)
  mutable st_sim_ns : float;  (** Simulated machine-time, incl. wasted attempts. *)
}

type checkpoint
(** Campaign state at a shard boundary: spec digest, next machine index,
    the aggregate so far, quarantine list and stats.  Closure-free
    ([Marshal] without flags), so {!Wsc_persist} can CRC and store it. *)

val checkpoint_spec_digest : checkpoint -> string
val checkpoint_next_index : checkpoint -> int
val checkpoint_sim_ns : checkpoint -> float

type result = {
  r_aggregate : aggregate;
  r_quarantined : quarantine list;  (** Ascending machine index. *)
  r_stats : stats;
  r_machines : int;  (** Campaign width (the spec's [machines]). *)
  r_finished : bool;  (** [false] when stopped early via [max_shards]. *)
}

val coverage : result -> float
(** Completed machines / campaign width, in [0, 1]. *)

val render_result : result -> string
(** {!render_aggregate} plus a robustness block (attempts, failure counts,
    backoff, quarantine list, coverage).  Only the aggregate block is part
    of the bit-identity contract: retry accounting legitimately differs
    between a chaos run and its fault-free reference. *)

val run :
  ?jobs:int ->
  ?on_shard:(shard:int -> checkpoint -> unit) ->
  ?resume:checkpoint ->
  ?max_shards:int ->
  spec ->
  result
(** Run the campaign.  [on_shard] fires after each shard's index-ordered
    merge with the 0-based shard ordinal and the live campaign state —
    serialize it immediately (it keeps mutating afterwards).  [resume]
    continues from a checkpoint of the {e same} spec
    (@raise Invalid_argument on a digest mismatch).  [max_shards] stops
    cleanly after that many shards this invocation (the kill-and-resume
    path made deterministic); the result then has [r_finished = false].
    Machines run on up to [jobs] domains; any job count, chaos schedule,
    and kill/resume point yields the identical aggregate. *)
