(** dTLB behaviour as a function of hugepage coverage (Sec. 4.4, Fig. 17).

    An intact, aligned 2 MiB hugepage occupies a single dTLB entry, so
    raising the fraction of heap bytes backed by hugepages shrinks the page
    walk rate.  The paper measures coverage rising 54.4% -> 56.2% while
    relative dTLB misses fall to 0.839 (Fig. 17b); we calibrate an
    exponential sensitivity so that the +1.8pp coverage gain reproduces the
    0.839 relative-miss point, and expose walk-cycle fractions derived from
    per-application baselines (Table 2 "Before" column). *)

val reference_coverage : float
(** 0.544 — fleet hugepage coverage under the baseline filler. *)

val miss_sensitivity : float
(** Exponent k in [relative_misses = exp (-k * (coverage - reference))]. *)

val relative_misses : coverage:float -> float
(** Relative dTLB miss rate vs the reference coverage (1.0 at reference). *)

val walk_fraction : base_walk_fraction:float -> coverage:float -> float
(** Fraction of cycles spent in page walks at the given coverage, when the
    application spends [base_walk_fraction] at the reference coverage. *)

val walk_cycle_penalty : float
(** Average cycles consumed by one dTLB load walk (used by the productivity
    model to convert walk-rate deltas into CPI deltas). *)
