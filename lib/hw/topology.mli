(** Server platform topology.

    The paper's fleet is heterogeneous: five platform generations whose
    hyperthread counts grew ~4x, with recent chiplet-based parts exposing
    multiple last-level-cache (NUCA) domains per socket (Sec. 4.2).  A
    topology describes sockets, LLC domains, physical cores and SMT threads,
    and maps logical CPU ids to domains/sockets.  Logical CPUs are numbered
    densely: all SMT siblings of a core are adjacent, cores of a domain are
    adjacent, domains of a socket are adjacent. *)

type t = {
  name : string;  (** Marketing-free platform label, e.g. ["gen4-chiplet"]. *)
  generation : int;  (** 1 (oldest) .. 5 (newest). *)
  sockets : int;
  domains_per_socket : int;  (** LLC (NUCA) domains per socket. *)
  cores_per_domain : int;  (** Physical cores per LLC domain. *)
  smt : int;  (** Hyperthreads per physical core. *)
  frequency_ghz : float;
}

val num_cpus : t -> int
(** Total logical CPUs. *)

val num_domains : t -> int
(** Total LLC domains across sockets. *)

val domain_of_cpu : t -> int -> int
(** LLC-domain index (fleet-global within the machine) of a logical CPU. *)

val socket_of_cpu : t -> int -> int
val cpus_of_domain : t -> int -> int list
(** Logical CPUs belonging to a domain, ascending. *)

val cycles_of_ns : t -> float -> float
(** Convert nanoseconds to cycles at this platform's frequency. *)

val ns_of_cycles : t -> float -> float

val generations : t array
(** The five fleet platform generations, oldest first.  Hyperthread counts
    grow ~4x from first to last, matching the paper's observation; the last
    two generations are chiplet designs with multiple LLC domains. *)

val default : t
(** The newest chiplet platform ([generations.(4)]); used by single-machine
    benchmarks ("dedicated server" in the paper). *)

val uniprocessor : t
(** A 1-socket, 1-domain, small platform for unit tests. *)

val pp : Format.formatter -> t -> unit
