(** Application productivity model (Sec. 2.2).

    The paper's headline metrics are *productivity* changes — application
    throughput (e.g. RPCs/s) and RAM usage — rather than malloc CPU time.
    This model converts the three hardware channels an allocator influences
    into cycles per instruction and throughput:

    - data locality: LLC load misses per kilo-instruction (MPKI), partially
      attributable to allocator placement (remote object reuse, Table 1);
    - TLB efficiency: fraction of cycles in dTLB page walks, a function of
      hugepage coverage (Table 2, Fig. 17);
    - allocator CPU: fraction of cycles spent inside malloc/free (Fig. 5a).

    [cpi = (base_cpi + mpki/1000 * llc_miss_penalty + walk_fraction *
    Tlb_model.walk_cycle_penalty / avg_walks... ] — concretely, walks are
    modelled as a multiplicative stall fraction: total cycles =
    compute_cycles / (1 - walk_fraction). *)

type params = {
  base_cpi : float;
      (** CPI with a perfect dTLB and the baseline allocator placement. *)
  llc_mpki : float;  (** Baseline LLC load MPKI (Table 1 "Before"). *)
  llc_miss_penalty : float;  (** Stall cycles per LLC load miss. *)
  alloc_locality_share : float;
      (** Fraction of LLC misses attributable to allocator placement, i.e.
          the slice NUCA-aware transfer caches can act on. *)
  dtlb_walk_fraction : float;
      (** Fraction of cycles in dTLB walks at {!Tlb_model.reference_coverage}
          (Table 2 "Before"). *)
  instructions_per_request : float;
      (** Retired instructions per unit of application work (one RPC, one
          query, one image...). *)
  malloc_cycle_fraction : float;  (** Fig. 5a share of cycles in malloc. *)
}

val mpki_with_locality : params -> remote_fraction:float -> baseline_remote_fraction:float -> float
(** LLC MPKI when the fraction of allocations reusing objects freed on a
    remote LLC domain changes from [baseline_remote_fraction] to
    [remote_fraction].  The allocator-attributable component scales linearly
    with the remote fraction; the rest of the MPKI is unaffected. *)

val cpi : params -> mpki:float -> walk_fraction:float -> float
(** Effective cycles per instruction. *)

val baseline_cpi : params -> float
(** [cpi] at the baseline MPKI and walk fraction. *)

val throughput_per_core : Topology.t -> params -> mpki:float -> walk_fraction:float -> float
(** Requests per second per core. *)

val throughput_sensitivity : float
(** Fraction of a CPI improvement that shows up as application throughput
    (WSC services are not purely CPU-bound; the paper's Tables 1/2 show
    throughput gains of roughly a third to a half of the CPI gains). *)

val throughput_change_pct :
  Topology.t ->
  params ->
  mpki_before:float ->
  walk_before:float ->
  mpki_after:float ->
  walk_after:float ->
  float
(** Percent throughput change between two operating points. *)

val cpi_change_pct :
  params -> mpki_before:float -> walk_before:float -> mpki_after:float -> walk_after:float -> float
