(** Core-to-core data transfer latency model (Fig. 11).

    On chiplet platforms, a cache line owned by a core in another LLC domain
    costs ~2.07x the intra-domain transfer latency to acquire (measured with
    Intel MLC in the paper).  Cross-socket transfers cost more still.  The
    transfer-cache telemetry uses this model to price object reuse across
    domains. *)

type locality =
  | Same_core  (** Data still resident in the requesting core's caches. *)
  | Intra_domain  (** Producer shares the LLC domain. *)
  | Inter_domain  (** Producer is on another LLC domain, same socket. *)
  | Inter_socket  (** Producer is on the other socket. *)

val classify : Topology.t -> src_cpu:int -> dst_cpu:int -> locality
(** Locality of moving data produced on [src_cpu] to [dst_cpu]. *)

val transfer_ns : locality -> float
(** Cache-to-cache transfer latency in ns.  Calibrated constants:
    [Same_core] 0, [Intra_domain] 40.0, [Inter_domain] 82.8 (2.07x),
    [Inter_socket] 135.0. *)

val transfer_between : Topology.t -> src_cpu:int -> dst_cpu:int -> float
(** [transfer_ns (classify ...)]. *)

val intra_domain_ns : float
val inter_domain_ns : float
val inter_socket_ns : float
