(** Allocator operation cost model, calibrated to the paper's Fig. 4.

    Latencies are for a *hit* at the given tier; a miss at tier k pays tier
    k's cost plus the refill path below it.  The mmap figure is the syscall
    cost of requesting a zero-initialized 2 MiB hugepage from the kernel and
    dominates everything else, which is the paper's argument for userspace
    caching.

    The transfer-cache and central-free-list bar labels are illegible in the
    paper scan; the values here interpolate between the adjacent tiers and
    are flagged as assumptions in EXPERIMENTS.md. *)

val per_cpu_cache_ns : float
(** 3.1 ns — the rseq fast path (~40 hand-coded x86 instructions). *)

val transfer_cache_ns : float
(** 25.0 ns — mutex-protected flat-array batch move. *)

val central_free_list_ns : float
(** 81.3 ns — mutex + linked-list span extraction. *)

val pageheap_ns : float
(** 137.0 ns — hugepage-aware span carving. *)

val mmap_ns : float
(** 12916.7 ns — kernel hugepage request, measured with strace. *)

val prefetch_ns : float
(** Cost of the next-object prefetch issued on every size-class allocation
    (16% of fleet malloc cycles, Fig. 6a). *)

val sampling_ns : float
(** Extra cost of recording a stack trace on a sampled allocation. *)

type tier = Per_cpu_cache | Transfer_cache | Central_free_list | Pageheap | Mmap

val tier_hit_ns : tier -> float
(** Hit latency for one tier (not cumulative). *)

val tier_name : tier -> string

val all_tiers : tier list
(** Fastest first. *)
