let reference_coverage = 0.544

(* Fig. 17: coverage 0.544 -> 0.562 yields relative misses 0.839.
   k = -ln 0.839 / 0.018. *)
let miss_sensitivity = -.log 0.839 /. 0.018

let relative_misses ~coverage =
  exp (-.miss_sensitivity *. (coverage -. reference_coverage))

let walk_fraction ~base_walk_fraction ~coverage =
  base_walk_fraction *. relative_misses ~coverage

let walk_cycle_penalty = 35.0
