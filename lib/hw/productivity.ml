type params = {
  base_cpi : float;
  llc_mpki : float;
  llc_miss_penalty : float;
  alloc_locality_share : float;
  dtlb_walk_fraction : float;
  instructions_per_request : float;
  malloc_cycle_fraction : float;
}

let mpki_with_locality params ~remote_fraction ~baseline_remote_fraction =
  if baseline_remote_fraction <= 0.0 then params.llc_mpki
  else begin
    let alloc_component = params.llc_mpki *. params.alloc_locality_share in
    let fixed_component = params.llc_mpki -. alloc_component in
    fixed_component +. (alloc_component *. (remote_fraction /. baseline_remote_fraction))
  end

let cpi params ~mpki ~walk_fraction =
  let compute = params.base_cpi +. (mpki /. 1000.0 *. params.llc_miss_penalty) in
  let walk_fraction = Float.min 0.95 (Float.max 0.0 walk_fraction) in
  compute /. (1.0 -. walk_fraction)

let baseline_cpi params =
  cpi params ~mpki:params.llc_mpki ~walk_fraction:params.dtlb_walk_fraction

let throughput_per_core topology params ~mpki ~walk_fraction =
  let hz = topology.Topology.frequency_ghz *. 1e9 in
  hz /. (params.instructions_per_request *. cpi params ~mpki ~walk_fraction)

let throughput_sensitivity = 0.5

let throughput_change_pct topology params ~mpki_before ~walk_before ~mpki_after ~walk_after =
  let before =
    throughput_per_core topology params ~mpki:mpki_before ~walk_fraction:walk_before
  in
  let after =
    throughput_per_core topology params ~mpki:mpki_after ~walk_fraction:walk_after
  in
  throughput_sensitivity *. Wsc_substrate.Stats.percent_change ~before ~after

let cpi_change_pct params ~mpki_before ~walk_before ~mpki_after ~walk_after =
  let before = cpi params ~mpki:mpki_before ~walk_fraction:walk_before in
  let after = cpi params ~mpki:mpki_after ~walk_fraction:walk_after in
  Wsc_substrate.Stats.percent_change ~before ~after
