type t = {
  name : string;
  generation : int;
  sockets : int;
  domains_per_socket : int;
  cores_per_domain : int;
  smt : int;
  frequency_ghz : float;
}

let cpus_per_domain t = t.cores_per_domain * t.smt
let num_domains t = t.sockets * t.domains_per_socket
let num_cpus t = num_domains t * cpus_per_domain t

let domain_of_cpu t cpu =
  assert (cpu >= 0 && cpu < num_cpus t);
  cpu / cpus_per_domain t

let socket_of_cpu t cpu = domain_of_cpu t cpu / t.domains_per_socket

let cpus_of_domain t domain =
  assert (domain >= 0 && domain < num_domains t);
  let first = domain * cpus_per_domain t in
  List.init (cpus_per_domain t) (fun i -> first + i)

let cycles_of_ns t ns = ns *. t.frequency_ghz
let ns_of_cycles t cycles = cycles /. t.frequency_ghz

let generations =
  [|
    {
      name = "gen1-monolithic";
      generation = 1;
      sockets = 2;
      domains_per_socket = 1;
      cores_per_domain = 18;
      smt = 2;
      frequency_ghz = 2.3;
    };
    {
      name = "gen2-monolithic";
      generation = 2;
      sockets = 2;
      domains_per_socket = 1;
      cores_per_domain = 28;
      smt = 2;
      frequency_ghz = 2.5;
    };
    {
      name = "gen3-monolithic";
      generation = 3;
      sockets = 2;
      domains_per_socket = 1;
      cores_per_domain = 32;
      smt = 2;
      frequency_ghz = 2.8;
    };
    {
      name = "gen4-chiplet";
      generation = 4;
      sockets = 2;
      domains_per_socket = 4;
      cores_per_domain = 16;
      smt = 2;
      frequency_ghz = 3.0;
    };
    {
      name = "gen5-chiplet";
      generation = 5;
      sockets = 2;
      domains_per_socket = 8;
      cores_per_domain = 9;
      smt = 2;
      frequency_ghz = 3.0;
    };
  |]

let default = generations.(4)

let uniprocessor =
  {
    name = "test-uniprocessor";
    generation = 0;
    sockets = 1;
    domains_per_socket = 1;
    cores_per_domain = 4;
    smt = 1;
    frequency_ghz = 3.0;
  }

let pp fmt t =
  Format.fprintf fmt "%s: %d sockets x %d domains x %d cores x %d SMT = %d CPUs @ %.1f GHz"
    t.name t.sockets t.domains_per_socket t.cores_per_domain t.smt (num_cpus t)
    t.frequency_ghz
