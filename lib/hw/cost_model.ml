let per_cpu_cache_ns = 3.1
let transfer_cache_ns = 25.0
let central_free_list_ns = 81.3
let pageheap_ns = 137.0
let mmap_ns = 12916.7
let prefetch_ns = 0.9
let sampling_ns = 220.0

type tier = Per_cpu_cache | Transfer_cache | Central_free_list | Pageheap | Mmap

let tier_hit_ns = function
  | Per_cpu_cache -> per_cpu_cache_ns
  | Transfer_cache -> transfer_cache_ns
  | Central_free_list -> central_free_list_ns
  | Pageheap -> pageheap_ns
  | Mmap -> mmap_ns

let tier_name = function
  | Per_cpu_cache -> "CPUCache"
  | Transfer_cache -> "TransferCache"
  | Central_free_list -> "CentralFreeList"
  | Pageheap -> "PageHeap"
  | Mmap -> "mmap"

let all_tiers = [ Per_cpu_cache; Transfer_cache; Central_free_list; Pageheap; Mmap ]
