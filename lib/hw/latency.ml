type locality = Same_core | Intra_domain | Inter_domain | Inter_socket

let intra_domain_ns = 40.0
let inter_domain_ns = 82.8 (* 2.07x intra, Fig. 11 *)
let inter_socket_ns = 135.0

let classify topology ~src_cpu ~dst_cpu =
  if src_cpu = dst_cpu then Same_core
  else begin
    let src_domain = Topology.domain_of_cpu topology src_cpu in
    let dst_domain = Topology.domain_of_cpu topology dst_cpu in
    if src_domain = dst_domain then Intra_domain
    else if
      Topology.socket_of_cpu topology src_cpu = Topology.socket_of_cpu topology dst_cpu
    then Inter_domain
    else Inter_socket
  end

let transfer_ns = function
  | Same_core -> 0.0
  | Intra_domain -> intra_domain_ns
  | Inter_domain -> inter_domain_ns
  | Inter_socket -> inter_socket_ns

let transfer_between topology ~src_cpu ~dst_cpu =
  transfer_ns (classify topology ~src_cpu ~dst_cpu)
