(* wscalloc — command-line front-end to the warehouse-scale allocator study.

     wscalloc list-apps
     wscalloc simulate --app monarch --duration 30 [--optimized]
     wscalloc ab --app monarch --experiment lifetime-filler
     wscalloc fleet --machines 10 --duration 20 *)

open Core
open Cmdliner
module Units = Substrate.Units
module Config = Tcmalloc.Config
module Malloc = Tcmalloc.Malloc
module Telemetry = Tcmalloc.Telemetry
module Arena = Fleet_sim.Arena
module Apps = Workload.Apps
module Profile = Workload.Profile
module Driver = Workload.Driver
module Machine = Fleet_sim.Machine
module Gwp = Fleet_sim.Gwp
module Ab = Fleet_sim.Ab_test
module Topology = Hw.Topology

let experiments =
  [
    ("dynamic-cpu-caches", Config.with_dynamic_per_cpu true Config.baseline);
    ("nuca-transfer-cache", Config.with_nuca_transfer_cache true Config.baseline);
    ("span-prioritization", Config.with_span_prioritization true Config.baseline);
    ("lifetime-filler", Config.with_lifetime_aware_filler true Config.baseline);
    ("all", Config.all_optimizations);
    (* Cross-allocator arms: the experiment swaps the whole backend, so
       `wscalloc ab -e rpmalloc` is a tcmalloc-vs-rpmalloc A/B and
       `trace replay --configs baseline,rpmalloc,jemalloc` replays one
       stream under all three allocators. *)
    ("rpmalloc", Config.rpmalloc);
    ("jemalloc", Config.jemalloc);
  ]

let backend_arg =
  let parse name =
    match Config.backend_of_name name with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown backend %S (known: %s)" name
             (String.concat ", " (List.map Config.backend_name Config.all_backends))))
  in
  let print fmt k = Format.pp_print_string fmt (Config.backend_name k) in
  Arg.conv (parse, print)

let backend_term =
  Arg.(
    value
    & opt (some backend_arg) None
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Allocator backend to run on: $(b,tcmalloc) (default), $(b,rpmalloc), or \
           $(b,jemalloc).")

let app_arg =
  let parse name =
    match Apps.by_name name with
    | p -> Ok p
    | exception Not_found ->
      Error
        (`Msg
          (Printf.sprintf "unknown application %S; try `wscalloc list-apps'" name))
  in
  let print fmt p = Format.pp_print_string fmt p.Profile.name in
  Arg.conv (parse, print)

let app_term =
  Arg.(
    required
    & opt (some app_arg) None
    & info [ "app"; "a" ] ~docv:"APP" ~doc:"Application profile to run.")

let duration_term =
  Arg.(
    value & opt float 30.0
    & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc:"Simulated duration in seconds.")

let seed_term =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Root random seed.")

let jobs_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Number of domains for parallel execution (default: $(b,WSC_DOMAINS) if set, \
           else the machine's core count).  $(b,--jobs 1) is the sequential bit-exact \
           reference mode; any job count produces identical results.")

let apply_jobs = function
  | None -> ()
  | Some n when n >= 1 -> Substrate.Parallel.set_default_jobs n
  | Some _ ->
    Printf.eprintf "wscalloc: --jobs must be >= 1\n";
    exit 124

(* list-apps *)

let list_apps () =
  List.iter
    (fun p ->
      Printf.printf "%-22s %5.1f allocs/request, %.0f requests/s/thread\n"
        p.Profile.name p.Profile.allocs_per_request p.Profile.requests_per_thread_per_sec)
    Apps.all

let list_apps_cmd =
  Cmd.v (Cmd.info "list-apps" ~doc:"List available application profiles.")
    Term.(const list_apps $ const ())

(* simulate *)

(* One corrupt-artifact handler for every subcommand: damage in any
   on-disk artifact — a trace block or a snapshot section — prints one
   uniform diagnostic and exits 65 (EX_DATAERR).  Salvage-mode commands
   that recover with loss instead warn on stderr and exit 0. *)
let corrupt_guard f =
  try f () with
  | Trace_stream.Reader.Corrupt { block; reason } ->
    Printf.eprintf "wscalloc: corrupt: trace block %d: %s\n" block reason;
    exit 65
  | Persist.Corrupt { section; reason } ->
    Printf.eprintf "wscalloc: corrupt: snapshot section %s: %s\n" section reason;
    exit 65
  | Invalid_argument msg ->
    Printf.eprintf "wscalloc: corrupt: invalid data: %s\n" msg;
    exit 65

let simulate app duration optimized backend seed memory_limit_mib fault_rate rseq_on
    preempt_prob audit jobs checkpoint checkpoint_every resume_from =
  corrupt_guard @@ fun () ->
  apply_jobs jobs;
  let config = if optimized then Config.all_optimizations else Config.baseline in
  let config =
    match backend with None -> config | Some k -> Config.with_backend k config
  in
  if preempt_prob <> None && not rseq_on then begin
    Printf.eprintf "wscalloc: --preempt-prob requires --rseq\n";
    exit 124
  end;
  if rseq_on && config.Config.backend <> Config.Tcmalloc then begin
    Printf.eprintf "wscalloc: --rseq requires the tcmalloc backend\n";
    exit 124
  end;
  if checkpoint_every <> None && checkpoint = None then begin
    Printf.eprintf "wscalloc: --checkpoint-every requires --checkpoint\n";
    exit 124
  end;
  let until_ns = duration *. Units.sec in
  let machine =
    match resume_from with
    | Some path ->
      (* Every knob that shapes the simulation — config, seed, limits,
         faults, rseq, audits — is baked into the warm state; only the
         target duration and checkpoint cadence come from this
         invocation. *)
      let machine = Persist.load_machine ~path in
      let job = List.hd (Machine.jobs machine) in
      let name = (Driver.profile job.Machine.driver).Profile.name in
      (match app with
      | Some a when a.Profile.name <> name ->
        Printf.eprintf "wscalloc: snapshot holds %S, but --app %S was given\n" name
          a.Profile.name;
        exit 124
      | Some _ | None -> ());
      Printf.printf "resuming %s at %.1fs, continuing to %.0fs (%s)...\n%!" name
        (Substrate.Clock.now (Machine.clock machine) /. Units.sec)
        duration
        (Config.describe (Backend.config job.Machine.backend));
      machine
    | None ->
      let app =
        match app with
        | Some app -> app
        | None ->
          Printf.eprintf "wscalloc: --app is required (unless resuming a snapshot)\n";
          exit 124
      in
      Printf.printf "simulating %s for %.0fs (%s)...\n%!" app.Profile.name duration
        (Config.describe config);
      (* Hard limit at the requested size; soft limit at 85% of it so the
         reclaim cascade engages before mmap starts failing. *)
      let hard_limit_bytes = Option.map (fun mib -> int_of_float (mib *. 1024.0 *. 1024.0)) memory_limit_mib in
      let soft_limit_bytes = Option.map (fun b -> b * 85 / 100) hard_limit_bytes in
      let faults =
        match fault_rate with
        | None -> None
        | Some rate ->
          Some
            {
              Os.Fault.seed;
              mmap_failure_rate = rate;
              mmap_failure_burst = 2;
              pressure_period_ns = 5.0 *. Units.sec;
              pressure_duration_ns = Units.sec;
              pressure_bytes = 64 * 1024 * 1024;
              cpu_churn_period_ns = 3.0 *. Units.sec;
            }
      in
      let rseq =
        if rseq_on then
          Some
            {
              Os.Rseq.seed;
              preempt_prob = Option.value preempt_prob ~default:Os.Rseq.default_preempt_prob;
              max_restarts = config.Config.rseq_max_restarts;
            }
        else None
      in
      let audit_interval_ns = if audit then Some Units.sec else None in
      (try
         Machine.create ~seed ~config ?soft_limit_bytes ?hard_limit_bytes ?faults ?rseq
           ?audit_interval_ns ~platform:Topology.default ~jobs:[ app ] ()
       with Invalid_argument msg ->
         (* Bad --memory-limit / --faults values are rejected by the layer
            that owns the constraint; surface them as a usage error. *)
         Printf.eprintf "wscalloc: %s\n" msg;
         exit 124)
  in
  (try
     Persist.run_machine machine ~until_ns ~epoch_ns:Units.ms
       ?checkpoint_every_ns:(Option.map (fun s -> s *. Units.sec) checkpoint_every)
       ?checkpoint_path:checkpoint
   with Stdlib.Out_of_memory ->
     (* The allocator exhausted its reclaim-and-retry budget: the job
        would be OOM-killed.  Report it as an outcome, not a crash. *)
     Printf.eprintf
       "job killed: out of memory under the configured limit/fault schedule\n";
     exit 2);
  let job = List.hd (Machine.jobs machine) in
  let m = job.Machine.backend in
  let stats = Backend.heap_stats m in
  let tel = Backend.telemetry m in
  Printf.printf "requests completed : %.0f\n" (Driver.requests_completed job.Machine.driver);
  Printf.printf "allocations        : %d (%d frees)\n" (Telemetry.alloc_count tel)
    (Telemetry.free_count tel);
  Printf.printf "live               : %s\n"
    (Units.bytes_to_string stats.Malloc.live_requested_bytes);
  Printf.printf "simulated RSS      : %s\n"
    (Units.bytes_to_string stats.Malloc.resident_bytes);
  Printf.printf "fragmentation      : %.1f%% (ext %s, int %s)\n"
    (100.0 *. Backend.fragmentation_ratio stats)
    (Units.bytes_to_string stats.Malloc.external_fragmentation_bytes)
    (Units.bytes_to_string stats.Malloc.internal_fragmentation_bytes);
  Printf.printf "hugepage coverage  : %.1f%%\n" (100.0 *. Backend.hugepage_coverage m);
  Printf.printf "malloc cycle share : %.2f%%\n" (100.0 *. Gwp.malloc_cycle_fraction job);
  List.iter
    (fun tier ->
      Printf.printf "  %-16s %d hits\n" (Hw.Cost_model.tier_name tier)
        (Telemetry.hits tel tier))
    Hw.Cost_model.all_tiers;
  (* GWP-style sampled heap profile (Sec. 3, "Sampled"); TCMalloc only —
     the rival backends have no sampler. *)
  (match Backend.sampler m with
  | None -> ()
  | Some sampler ->
    Printf.printf "sampled live heap  : ~%s across size bins:\n"
      (Units.bytes_to_string (Tcmalloc.Sampler.live_heap_estimate_bytes sampler));
    List.iter
      (fun (bin, n) ->
        Printf.printf "  >= %-10s %d samples\n" (Units.bytes_to_string bin) n)
      (Tcmalloc.Sampler.live_profile sampler));
  (* Memory-pressure block: only interesting when limits or faults are on. *)
  let vm = Backend.vm m in
  if memory_limit_mib <> None || fault_rate <> None then begin
    Printf.printf "memory pressure:\n";
    (match Os.Vm.hard_limit vm with
    | Some b -> Printf.printf "  hard limit       : %s\n" (Units.bytes_to_string b)
    | None -> ());
    Printf.printf "  mmap failures    : %d (%d transient, %d limit)\n"
      (Os.Vm.mmap_failures vm)
      (Os.Vm.transient_mmap_failures vm)
      (Os.Vm.limit_mmap_failures vm);
    Printf.printf "  reclaim events   : %d (%d retry-after-reclaim, %d OOM)\n"
      (Telemetry.reclaim_events tel) (Telemetry.reclaim_retries tel)
      (Telemetry.oom_events tel);
    List.iter
      (fun tier ->
        Printf.printf "  reclaimed %-7s: %s\n"
          (Telemetry.reclaim_tier_name tier)
          (Units.bytes_to_string (Telemetry.reclaimed_bytes tel tier)))
      Telemetry.all_reclaim_tiers
  end;
  (* Restartable-sequence block: restart overhead (Fig. 4 cost model — each
     restart re-runs the 3.1 ns fast path) and stranded-cache reclaim. *)
  (match Backend.rseq m with
  | None -> ()
  | Some r ->
    let s = Os.Rseq.stats r in
    Printf.printf "restartable sequences (%s):\n"
      (Os.Rseq.describe (Os.Rseq.config r));
    Printf.printf "  fast-path ops    : %d (%d committed, %d fell back)\n"
      s.Os.Rseq.ops s.Os.Rseq.committed s.Os.Rseq.fallbacks;
    Printf.printf "  restarts         : %d (%d forced by migration)\n"
      s.Os.Rseq.restarts s.Os.Rseq.forced_aborts;
    Printf.printf "  restart overhead : %.0f ns\n"
      (float_of_int s.Os.Rseq.restarts
      *. Hw.Cost_model.tier_hit_ns Hw.Cost_model.Per_cpu_cache);
    Printf.printf "  stranded reclaim : %s in %d passes\n"
      (Units.bytes_to_string (Telemetry.stranded_reclaim_bytes tel))
      (Telemetry.stranded_reclaim_events tel));
  (* The audit block prints for --audit, and also on --resume when the
     restored machine was created with auditing (the flag itself is not a
     resume option: the warm state already carries the audit ticker). *)
  let audit_reports = Driver.audit_reports job.Machine.driver in
  if audit || audit_reports <> [] then begin
    let reports = audit_reports in
    let violations = Driver.audit_violations job.Machine.driver in
    Printf.printf "heap audit: %d audits, %d violation(s)\n" (List.length reports)
      violations;
    if violations > 0 then begin
      List.iter
        (fun r -> if not (Tcmalloc.Audit.is_clean r) then print_endline (Tcmalloc.Audit.to_string r))
        reports;
      exit 1
    end
  end

let simulate_cmd =
  let optimized =
    Arg.(value & flag & info [ "optimized" ] ~doc:"Enable all four optimizations.")
  in
  let memory_limit =
    Arg.(
      value
      & opt (some float) None
      & info [ "memory-limit" ] ~docv:"MIB"
          ~doc:
            "Hard per-process memory limit in MiB (mmap fails above it; the allocator \
             reclaims and retries).  The soft limit is set to 85% of it.")
  in
  let faults =
    Arg.(
      value
      & opt (some float) None
      & info [ "faults" ] ~docv:"RATE"
          ~doc:
            "Enable deterministic fault injection: transient mmap failures at the given \
             per-call rate (bursts of 2), plus periodic co-located pressure spikes and \
             CPU-churn bursts.")
  in
  let rseq =
    Arg.(
      value & flag
      & info [ "rseq" ]
          ~doc:
            "Run the per-CPU fast path under the restartable-sequence protocol: a \
             seeded injector preempts operations mid-sequence, forcing \
             abort-and-restart (bounded, then transfer-cache fallback).  Restart \
             counts and overhead are reported.")
  in
  let preempt_prob =
    Arg.(
      value
      & opt (some float) None
      & info [ "preempt-prob" ] ~docv:"P"
          ~doc:
            "Per-step preemption probability in [0, 1) for --rseq (default 0.001).  \
             Requires --rseq.")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Run the heap auditor every simulated second; print a summary and exit \
             nonzero on any invariant violation.")
  in
  let app_opt =
    Arg.(
      value
      & opt (some app_arg) None
      & info [ "app"; "a" ] ~docv:"APP"
          ~doc:"Application profile to run.  Not needed with $(b,--resume).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a warm-state snapshot to $(docv) (atomically, replacing any \
             previous one) at every $(b,--checkpoint-every) interval and once at the \
             end of the run.  Resuming it continues bit-identically.")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some float) None
      & info [ "checkpoint-every" ] ~docv:"SECS"
          ~doc:
            "Simulated seconds between checkpoints (requires $(b,--checkpoint); \
             without it, only the end-of-run snapshot is written).")
  in
  let resume =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a snapshot written by $(b,--checkpoint) instead of starting \
             cold.  $(b,--duration) is the absolute target time: resuming a 3 s \
             snapshot with --duration 6 simulates 3 more seconds and prints stats \
             byte-identical to an uninterrupted 6 s run.  Simulation-shaping flags \
             (config, seed, limits, faults, rseq) are carried by the snapshot and \
             ignored here.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one application on a dedicated simulated server.")
    Term.(
      const simulate $ app_opt $ duration_term $ optimized $ backend_term $ seed_term
      $ memory_limit $ faults $ rseq $ preempt_prob $ audit $ jobs_term $ checkpoint
      $ checkpoint_every $ resume)

(* ab *)

let ab app experiment_name backend duration seed jobs =
  apply_jobs jobs;
  match List.assoc_opt experiment_name experiments with
  | None ->
    Printf.eprintf "unknown experiment %S; known: %s\n" experiment_name
      (String.concat ", " (List.map fst experiments));
    exit 1
  | Some experiment ->
    (* --backend pins BOTH arms to one allocator (optimization A/Bs on a
       rival); without it the control is tcmalloc baseline and a backend
       experiment (rpmalloc/jemalloc) makes it a cross-allocator A/B. *)
    let control, experiment =
      match backend with
      | None -> (Config.baseline, experiment)
      | Some k -> (Config.with_backend k Config.baseline, Config.with_backend k experiment)
    in
    Printf.printf "A/B %s: %s vs %s...\n%!" app.Profile.name
      (Config.backend_name control.Config.backend ^ " baseline")
      experiment_name;
    let o =
      Ab.run_app ~seed ~duration_ns:(duration *. Units.sec) ~control ~experiment app
    in
    Printf.printf "throughput : %+.2f%%\n" o.Ab.throughput_change_pct;
    Printf.printf "memory     : %+.2f%%\n" o.Ab.memory_change_pct;
    Printf.printf "CPI        : %+.2f%%\n" o.Ab.cpi_change_pct;
    Printf.printf "LLC MPKI   : %.2f -> %.2f\n" o.Ab.mpki_before o.Ab.mpki_after;
    Printf.printf "dTLB walk  : %.2f%% -> %.2f%%\n" o.Ab.walk_before_pct o.Ab.walk_after_pct;
    Printf.printf "coverage   : %.1f%% -> %.1f%%\n" (100.0 *. o.Ab.coverage_before)
      (100.0 *. o.Ab.coverage_after)

let ab_cmd =
  let experiment =
    Arg.(
      required
      & opt (some string) None
      & info [ "experiment"; "e" ] ~docv:"EXPERIMENT"
          ~doc:
            "One of dynamic-cpu-caches, nuca-transfer-cache, span-prioritization, \
             lifetime-filler, all, rpmalloc, jemalloc (the last two swap the whole \
             allocator backend in the experiment arm).")
  in
  Cmd.v
    (Cmd.info "ab" ~doc:"Run a baseline-vs-optimization A/B experiment for one app.")
    Term.(
      const ab $ app_term $ experiment $ backend_term $ duration_term $ seed_term
      $ jobs_term)

(* fleet *)

module Campaign = Fleet_sim.Campaign
module Sup = Substrate.Supervisor

(* --chaos "crash=P,hang=P,corrupt=P[,seed=N]" *)
let chaos_arg =
  let parse s =
    let parts = List.map String.trim (String.split_on_char ',' s) in
    let rec build (c : Os.Fault.chaos) = function
      | [] -> Ok c
      | part :: rest -> (
        match String.split_on_char '=' part with
        | [ key; v ] -> (
          match (key, float_of_string_opt v) with
          | "crash", Some p -> build { c with Os.Fault.crash_prob = p } rest
          | "hang", Some p -> build { c with Os.Fault.hang_prob = p } rest
          | "corrupt", Some p -> build { c with Os.Fault.corrupt_prob = p } rest
          | "seed", Some _ -> (
            match int_of_string_opt v with
            | Some n -> build { c with Os.Fault.chaos_seed = n } rest
            | None -> Error (`Msg (Printf.sprintf "bad chaos seed %S" v)))
          | _ -> Error (`Msg (Printf.sprintf "bad chaos component %S" part)))
        | _ -> Error (`Msg (Printf.sprintf "bad chaos component %S (want key=value)" part)))
    in
    match build { Os.Fault.no_chaos with Os.Fault.chaos_seed = 1 } parts with
    | Ok c -> (
      match Os.Fault.validate_chaos c with
      | () -> Ok c
      | exception Invalid_argument msg -> Error (`Msg msg))
    | Error _ as e -> e
  in
  let print fmt c = Format.pp_print_string fmt (Os.Fault.describe_chaos c) in
  Arg.conv (parse, print)

let fleet machines duration backend seed jobs chaos retries shard_every resume_dir
    stop_after aggregate_out =
  apply_jobs jobs;
  if machines <= 0 then begin
    Printf.eprintf "wscalloc: --machines must be positive\n";
    exit 124
  end;
  if duration <= 0.0 then begin
    Printf.eprintf "wscalloc: --duration must be positive\n";
    exit 124
  end;
  let campaign_mode =
    chaos <> None || retries <> None || shard_every <> None || resume_dir <> None
    || stop_after <> None || aggregate_out <> None
  in
  let config =
    match backend with
    | None -> Config.baseline
    | Some k -> Config.with_backend k Config.baseline
  in
  if not campaign_mode then begin
    Printf.printf "running a %d-machine fleet for %.0fs (%s)...\n%!" machines duration
      (Config.backend_name config.Config.backend);
    let fleet = Fleet_sim.Fleet.create ~seed ~num_machines:machines ~config () in
    let (_ : Machine.summary list) =
      Fleet_sim.Fleet.run fleet ~duration_ns:(duration *. Units.sec) ~epoch_ns:Units.ms
    in
    let jobs = Fleet_sim.Fleet.jobs fleet in
    Printf.printf "fleet malloc cycle share: %.2f%%\n"
      (100.0 *. Gwp.fleet_malloc_cycle_fraction jobs);
    let ext, internal = Gwp.fragmentation_ratio jobs in
    Printf.printf "fleet fragmentation: %.1f%% external + %.1f%% internal\n" (100.0 *. ext)
      (100.0 *. internal);
    let usage = Gwp.binary_usage jobs in
    Printf.printf "top binaries by malloc cycles:\n";
    List.iteri
      (fun i u -> if i < 10 then Printf.printf "  %-16s %.0f us\n" u.Gwp.binary (u.Gwp.malloc_ns /. 1e3))
      usage
  end
  else
    corrupt_guard @@ fun () ->
    let chaos = Option.value chaos ~default:Os.Fault.no_chaos in
    let policy =
      match retries with
      | None -> Sup.default_policy
      | Some k -> { Sup.default_policy with Sup.max_attempts = k + 1 }
    in
    let spec =
      {
        Campaign.default_spec with
        Campaign.seed;
        machines;
        duration_ns = duration *. Units.sec;
        config;
        chaos;
        policy;
        shard_size =
          Option.value shard_every ~default:Campaign.default_spec.Campaign.shard_size;
      }
    in
    (try Campaign.validate_spec spec
     with Invalid_argument msg ->
       Printf.eprintf "wscalloc: %s\n" msg;
       exit 124);
    Printf.printf "campaign: %d machines x %.0fs, %s, %d attempts max, shard %d%s\n%!"
      machines duration
      (Os.Fault.describe_chaos chaos)
      policy.Sup.max_attempts spec.Campaign.shard_size
      (match resume_dir with
      | Some dir -> Printf.sprintf ", resume dir %s" dir
      | None -> "");
    let result =
      Persist.run_campaign ?resume_dir ?max_shards:stop_after spec
    in
    print_string (Campaign.render_result result);
    (match aggregate_out with
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Campaign.render_aggregate result.Campaign.r_aggregate));
      Printf.printf "wrote aggregate to %s\n" path
    | None -> ());
    if not result.Campaign.r_finished then exit 3

(* fleet scrub: validate every shard of a resume directory, quarantine
   (never delete) what a resume could not use. *)
let fleet_scrub dir =
  let r =
    try Persist.scrub_campaign_dir ~dir
    with Invalid_argument msg ->
      Printf.eprintf "wscalloc: %s\n" msg;
      exit 124
  in
  Printf.printf "scrub %s: %d shard(s)\n" dir (List.length r.Persist.sr_entries);
  List.iter
    (fun e ->
      match e.Persist.sc_status with
      | Persist.Shard_intact ->
        Printf.printf "  shard %04d: intact (%d machines)\n" e.Persist.sc_shard
          e.Persist.sc_machines
      | Persist.Shard_salvaged notes ->
        Printf.printf "  shard %04d: damaged but loadable (%d machines; %s)\n"
          e.Persist.sc_shard e.Persist.sc_machines
          (String.concat "; " notes)
      | Persist.Shard_unrecoverable reason ->
        Printf.printf "  shard %04d: unrecoverable (%s) -- quarantined\n"
          e.Persist.sc_shard reason)
    r.Persist.sr_entries;
  List.iter
    (fun (old_path, q) ->
      Printf.printf "  quarantined stale tmp %s -> %s\n" old_path (Filename.basename q))
    r.Persist.sr_stale_tmp;
  List.iter
    (fun (old_path, q) ->
      Printf.printf "  quarantined %s -> %s\n" old_path (Filename.basename q))
    r.Persist.sr_quarantined;
  match r.Persist.sr_best with
  | Some (shard, machines) ->
    Printf.printf "resume will continue from shard %04d (%d machines covered)\n" shard
      machines
  | None ->
    Printf.printf "no usable checkpoint: a resume will restart from scratch\n"

let fleet_cmd =
  let machines =
    Arg.(value & opt int 10 & info [ "machines"; "m" ] ~docv:"N" ~doc:"Fleet size.")
  in
  let chaos =
    Arg.(
      value
      & opt (some chaos_arg) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Campaign mode: deterministic per-attempt machine failure injection, e.g. \
             $(b,crash=0.2,hang=0.1,corrupt=0.1,seed=1).  The schedule is a pure \
             function of (seed, machine, attempt), so retries and resumes replay \
             the same failures.")
  in
  let retries =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Campaign mode: retry each failed machine up to $(docv) times (with \
             seeded exponential backoff charged to simulated time) before \
             quarantining it.")
  in
  let shard_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-every" ] ~docv:"M"
          ~doc:
            "Campaign mode: checkpoint granularity — machines per shard (default \
             16).  Supervisor memory is O(shard), not O(machines).")
  in
  let resume_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume-dir" ] ~docv:"DIR"
          ~doc:
            "Campaign mode: write a durable campaign-NNNN.wsnap checkpoint into \
             $(docv) after every shard, and resume from the newest loadable one if \
             the directory already holds shards of this campaign.  A killed \
             campaign rerun with the same flags continues instead of restarting; \
             exits 65 if the directory holds shards of a different spec.")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after" ] ~docv:"SHARDS"
          ~doc:
            "Campaign mode: stop cleanly after $(docv) shards this invocation \
             (deterministic stand-in for a mid-campaign kill; exits 3 when the \
             campaign is left incomplete).")
  in
  let aggregate_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "aggregate-out" ] ~docv:"FILE"
          ~doc:
            "Campaign mode: also write the deterministic aggregate block to \
             $(docv) — byte-identical across job counts, chaos schedules and \
             kill/resume points, so CI can diff runs.")
  in
  let scrub_cmd =
    let dir =
      Arg.(
        required
        & opt (some string) None
        & info [ "resume-dir" ] ~docv:"DIR"
            ~doc:"Campaign resume directory to scrub.")
    in
    Cmd.v
      (Cmd.info "scrub"
         ~doc:
           "Validate every campaign checkpoint shard in a resume directory: report \
            per-shard integrity and salvageable coverage, and quarantine (rename, \
            never delete) unrecoverable shards and stale tmp files so a subsequent \
            resume proceeds from the best surviving checkpoint.")
      Term.(const fleet_scrub $ dir)
  in
  Cmd.group
    ~default:
      Term.(
        const fleet $ machines $ duration_term $ backend_term $ seed_term $ jobs_term
        $ chaos $ retries $ shard_every $ resume_dir $ stop_after $ aggregate_out)
    (Cmd.info "fleet"
       ~doc:
         "Run a heterogeneous fleet and print a GWP-style profile; campaign flags \
          switch to supervised crash-tolerant execution with streaming aggregation, \
          and $(b,fleet scrub) audits a campaign resume directory.")
    [ scrub_cmd ]

(* trace record|replay|stat|verify|convert *)

module Writer = Trace_stream.Writer
module Reader = Trace_stream.Reader
module Recorder = Trace_stream.Recorder
module Analyzer = Trace_stream.Analyzer
module Replay = Trace_stream.Replay
module Salvage = Trace_stream.Salvage

let named_configs = ("baseline", Config.baseline) :: experiments

let in_term =
  Arg.(
    required
    & opt (some file) None
    & info [ "in"; "i" ] ~docv:"FILE" ~doc:"Trace file to read.")

let out_term =
  Arg.(
    required
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Trace file to write.")

let trace_record app duration seed synthesize out =
  let duration_ns = duration *. Units.sec in
  let w = Writer.to_file out in
  (if synthesize then
     (* Generator-only stream: the driver's event generator without an
        allocator behind it (the legacy trace-record behavior), streamed
        straight into the writer — no in-memory event list. *)
     Workload.Trace.synthesize_into ~seed ~profile:app ~duration_ns (Writer.add w)
   else
     (* Record an actual solo-machine driver run through the probe. *)
     ignore (Recorder.record_app ~seed ~duration_ns ~writer:w app));
  let events = Writer.events_written w and blocks = Writer.blocks_written w in
  Writer.close w;
  Printf.printf "recorded %d events (%s run) from %s into %s (%d blocks)\n" events
    (if synthesize then "synthesized" else "driver")
    app.Profile.name out blocks

let trace_record_cmd =
  let synthesize =
    Arg.(
      value & flag
      & info [ "synthesize" ]
          ~doc:
            "Emit the profile's synthetic event stream instead of recording a real \
             driver run.")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record an allocation trace from a profile run.")
    Term.(const trace_record $ app_term $ duration_term $ seed_term $ synthesize $ out_term)

let config_list =
  let parse s =
    let names = String.split_on_char ',' (String.trim s) in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
        let name = String.trim name in
        match List.assoc_opt name named_configs with
        | Some config -> resolve ((name, config) :: acc) rest
        | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown config %S (known: %s)" name
                 (String.concat ", " (List.map fst named_configs)))))
    in
    resolve [] names
  in
  let print fmt configs =
    Format.pp_print_string fmt (String.concat "," (List.map fst configs))
  in
  Arg.conv (parse, print)

let trace_replay file configs backend jobs salvage =
  apply_jobs jobs;
  (* --backend rebases every selected config arm onto the given allocator
     model, so `replay --backend rpmalloc` is the cross-allocator twin of
     the default baseline replay. *)
  let configs =
    match backend with
    | None -> configs
    | Some kind ->
      List.map
        (fun (name, config) ->
          let name =
            if name = "baseline" then Config.backend_name kind
            else name ^ "+" ^ Config.backend_name kind
          in
          (name, Config.with_backend kind config))
        configs
  in
  Printf.printf "replaying %s under %d config(s)%s...\n%!" file (List.length configs)
    (if salvage then " in salvage mode" else "");
  let results, salvage_report =
    if salvage then begin
      (* Degraded mode: each arm replays the salvage scan of the damaged
         trace; the loss report is identical across arms. *)
      let report = ref None in
      let results =
        List.map
          (fun (name, config) ->
            let r, rep = Replay.run_salvage ~config file in
            report := Some rep;
            (name, r))
          configs
      in
      (results, !report)
    end
    else (Replay.run_configs ~configs file, None)
  in
  let t =
    Substrate.Table.create ~title:"Trace replay"
      ~columns:[ "config"; "allocs"; "frees"; "peak RSS"; "final live"; "malloc us" ]
  in
  List.iter
    (fun (name, r) ->
      Substrate.Table.add_row t
        [
          name;
          string_of_int r.Replay.allocations;
          string_of_int r.Replay.frees;
          Units.bytes_to_string r.Replay.peak_rss_bytes;
          Units.bytes_to_string r.Replay.final_stats.Malloc.live_requested_bytes;
          Printf.sprintf "%.0f" (r.Replay.malloc_ns /. 1e3);
        ])
    results;
  Substrate.Table.print t;
  match salvage_report with
  | Some rep when not (Salvage.clean rep) ->
    Printf.eprintf "wscalloc: warning: %s\n" (Salvage.describe rep)
  | Some _ | None -> ()

let salvage_term =
  Arg.(
    value & flag
    & info [ "salvage" ]
        ~doc:
          "Degraded mode: read through damage by resynchronizing on the next \
           valid block instead of failing on the first checksum error.  Exits 0 \
           with a loss warning on stderr when events were lost; only damage \
           beyond salvage exits 65.")

let trace_replay_cmd =
  let configs =
    Arg.(
      value
      & opt config_list [ ("baseline", Config.baseline) ]
      & info [ "configs"; "c" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated allocator configs to replay under (e.g. \
             $(b,baseline,all)); every config sees the identical event stream.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a trace against one or more allocator configs, in parallel.")
    Term.(
      const (fun f c b j s -> corrupt_guard (fun () -> trace_replay f c b j s))
      $ in_term $ configs $ backend_term $ jobs_term $ salvage_term)

let trace_stat file =
  print_string (Analyzer.render (Analyzer.scan_file file))

let trace_stat_cmd =
  Cmd.v
    (Cmd.info "stat"
       ~doc:"Streaming trace analysis: size/lifetime CDFs, rates, live curve.")
    Term.(const (fun f -> corrupt_guard (fun () -> trace_stat f)) $ in_term)

let trace_verify file salvage =
  if salvage then begin
    let events = ref 0 in
    let rep = Salvage.scan ~on_event:(fun _ -> incr events) file in
    Printf.printf "%s: %s\n" file (Salvage.describe rep);
    if Salvage.clean rep then Printf.printf "OK\n"
    else
      Printf.eprintf
        "wscalloc: warning: trace is damaged but salvageable (run `trace repair')\n"
  end
  else begin
    let s = Reader.verify file in
    Printf.printf "%s: %s, %d events in %d blocks: %d allocs, %d frees, %d retires, %s simulated, %d live at end\n"
      file
      (match s.Reader.summary_format with `Binary -> "binary v2" | `Text_v1 -> "text v1")
      s.Reader.events s.Reader.blocks s.Reader.allocations s.Reader.frees s.Reader.retires
      (Units.duration_to_string s.Reader.duration_ns)
      s.Reader.live_at_end;
    Printf.printf "OK\n"
  end

let trace_verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
        "Stream a trace end to end, checking structure, checksums and semantic \
         validity; exits 65 on damage ($(b,--salvage): report recoverable \
         content instead).")
    Term.(const (fun f s -> corrupt_guard (fun () -> trace_verify f s)) $ in_term $ salvage_term)

let trace_repair src dst =
  let rep = Salvage.repair ~src ~dst () in
  Printf.printf "%s -> %s: %s\n" src dst (Salvage.describe rep);
  Printf.printf "recovered %d events into %s\n" rep.Salvage.events_recovered dst;
  if not (Salvage.clean rep) then
    Printf.eprintf "wscalloc: warning: repaired with loss (see report above)\n"

let trace_repair_cmd =
  let src =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"IN" ~doc:"Damaged trace to salvage.")
  in
  let dst =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT" ~doc:"Repaired binary trace to write.")
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
        "Salvage a damaged trace into a fresh, fully valid binary trace: \
         resynchronize past damaged blocks, drop events unresolvable after the \
         gap, and report exactly what was lost.  A clean input round-trips \
         byte-identically.")
    Term.(const (fun s d -> corrupt_guard (fun () -> trace_repair s d)) $ src $ dst)

let trace_convert file out to_text =
  let copied =
    Reader.with_file file (fun r ->
        if to_text then begin
          let oc = open_out out in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc "# wsc-alloc trace v1\n";
              let n = ref 0 in
              Reader.iter r (fun ev ->
                  incr n;
                  output_string oc (Workload.Trace.line_of_event ev);
                  output_char oc '\n');
              !n)
        end
        else Writer.with_file out (fun w -> Reader.copy_into r w))
  in
  Printf.printf "converted %d events: %s -> %s (%s)\n" copied file out
    (if to_text then "text v1" else "binary v2")

let trace_convert_cmd =
  let to_text =
    Arg.(
      value & flag
      & info [ "to-text" ]
          ~doc:"Convert to the text v1 format instead of binary v2.")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert between text v1 and binary v2 trace formats, streaming.")
    Term.(const (fun f o t -> corrupt_guard (fun () -> trace_convert f o t)) $ in_term $ out_term $ to_text)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Record, replay, analyze, convert and repair allocation traces.")
    [
      trace_record_cmd; trace_replay_cmd; trace_stat_cmd; trace_verify_cmd;
      trace_convert_cmd; trace_repair_cmd;
    ]

(* snapshot info *)

let snapshot_info file =
  corrupt_guard @@ fun () ->
  let i = Persist.info ~path:file in
  Printf.printf "%s: %s snapshot (%s), %s simulated%s\n" file i.Persist.kind
    (Units.bytes_to_string i.Persist.file_bytes)
    (Units.duration_to_string i.Persist.sim_now_ns)
    (if i.Persist.note = "" then "" else Printf.sprintf " (%s)" i.Persist.note);
  List.iter
    (fun (name, rss) ->
      Printf.printf "  %-22s rss %s\n" name (Units.bytes_to_string rss))
    i.Persist.jobs;
  Printf.printf "OK\n"

let snapshot_verify file =
  corrupt_guard @@ fun () ->
  let a = Persist.audit ~path:file in
  Printf.printf "%s: %d bytes, trailer %s, end marker %s\n" file a.Persist.a_bytes
    (if a.Persist.a_trailer_intact then "intact" else "damaged")
    (if a.Persist.a_end_seen then "present" else "missing");
  List.iter
    (fun s ->
      Printf.printf "  %-10s %s%s\n" s.Persist.s_name
        (if s.Persist.s_intact then
           Printf.sprintf "intact (%s)" (Units.bytes_to_string s.Persist.s_bytes)
         else if s.Persist.s_recovered then "recovered via trailer"
         else "unrecoverable")
        (match s.Persist.s_reason with
        | None -> ""
        | Some r -> Printf.sprintf " -- %s" r))
    a.Persist.a_sections;
  if a.Persist.a_intact then Printf.printf "OK\n"
  else if a.Persist.a_salvageable then
    Printf.eprintf
      "wscalloc: warning: snapshot is damaged but salvageable (run `snapshot repair')\n"
  else begin
    let section, reason =
      match
        List.find_opt
          (fun s -> not (s.Persist.s_intact || s.Persist.s_recovered))
          a.Persist.a_sections
      with
      | Some s -> (s.Persist.s_name, Option.value s.Persist.s_reason ~default:"damaged")
      | None -> ("container", "unrecoverable")
    in
    Printf.eprintf "wscalloc: corrupt: snapshot section %s: %s\n" section reason;
    exit 65
  end

let snapshot_repair src dst =
  corrupt_guard @@ fun () ->
  let a = Persist.repair ~src ~dst () in
  List.iter (fun n -> Printf.printf "  %s\n" n) (Persist.audit_notes a);
  Printf.printf "rebuilt %s -> %s (%s)\n" src dst
    (if a.Persist.a_intact then "input was intact: byte-identical rebuild"
     else "every recoverable section restored");
  if not a.Persist.a_intact then
    Printf.eprintf "wscalloc: warning: input was damaged; repaired from redundancy\n"

let snapshot_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Snapshot file to inspect.")
  in
  let repair_src =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"IN" ~doc:"Damaged snapshot to salvage.")
  in
  let repair_dst =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT" ~doc:"Repaired snapshot to write.")
  in
  Cmd.group
    (Cmd.info "snapshot" ~doc:"Inspect, verify and repair warm-state snapshots.")
    [
      Cmd.v
        (Cmd.info "info"
           ~doc:
             "Verify a snapshot's header and checksums and print its summary \
              (kind, simulated time, per-job RSS); exits 65 on damage.  Reads \
              only the closure-free summary sections -- the state payload is \
              integrity-checked but never deserialized, so info on an untrusted \
              snapshot is always safe.")
        Term.(const snapshot_info $ file);
      Cmd.v
        (Cmd.info "verify"
           ~doc:
             "Audit a snapshot's structure byte by byte without deserializing \
              anything: per-section integrity, trailer and end-marker status.  \
              Exits 0 when intact, 0 with a warning when damaged but \
              salvageable, 65 when a required section is beyond recovery.")
        Term.(const snapshot_verify $ file);
      Cmd.v
        (Cmd.info "repair"
           ~doc:
             "Rebuild a pristine snapshot from every recoverable section of a \
              damaged one, using the v2 trailer redundancy.  When the damage is \
              confined to duplicated data (summary sections or the trailer \
              itself), the output is byte-identical to the original undamaged \
              file.")
        Term.(const snapshot_repair $ repair_src $ repair_dst);
    ]

(* arena: cross-allocator shoot-out *)

let backend_list_arg =
  let parse s =
    let names = List.map String.trim (String.split_on_char ',' s) in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
        match Config.backend_of_name name with
        | Some k -> resolve (k :: acc) rest
        | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown backend %S (known: %s)" name
                 (String.concat ", " (List.map Config.backend_name Config.all_backends)))))
    in
    resolve [] names
  in
  let print fmt ks =
    Format.pp_print_string fmt (String.concat "," (List.map Config.backend_name ks))
  in
  Arg.conv (parse, print)

let arena backends seed jobs smoke committed json_out =
  apply_jobs jobs;
  Printf.printf "arena: %s, seed %d...\n%!"
    (String.concat " vs " (List.map Config.backend_name backends))
    seed;
  let report = Arena.run ~backends ~seed () in
  Arena.pp_table Format.std_formatter report;
  Format.pp_print_flush Format.std_formatter ();
  (match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Arena.to_json report));
    Printf.printf "wrote %s\n" path);
  let dead =
    List.filter (fun c -> not c.Arena.survived) report.Arena.cells
  in
  List.iter
    (fun (c : Arena.cell) ->
      Printf.eprintf "wscalloc: arena: %s/%s did not survive (audit or limit failure)\n"
        (Config.backend_name c.Arena.cell_backend)
        (Arena.scenario_name c.Arena.cell_scenario))
    dead;
  if smoke then begin
    let committed_text =
      match open_in_bin committed with
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      | exception Sys_error msg ->
        Printf.eprintf "wscalloc: arena: cannot read committed baseline: %s\n" msg;
        exit 1
    in
    match Arena.check_committed ~committed:committed_text report with
    | [] -> Printf.printf "arena smoke: all deterministic cells match %s\n" committed
    | msgs ->
      List.iter (fun m -> Printf.eprintf "wscalloc: arena: %s\n" m) msgs;
      exit 1
  end;
  if dead <> [] then exit 1

let arena_cmd =
  let backends =
    Arg.(
      value
      & opt backend_list_arg Config.all_backends
      & info [ "backends" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated backends to race (default all: \
             $(b,tcmalloc,rpmalloc,jemalloc)).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Gate mode: re-run the pinned arena workloads and require every \
             deterministic cell metric to match the committed baseline exactly; \
             exit 1 on any drift.")
  in
  let committed =
    Arg.(
      value
      & opt string "BENCH_arena.json"
      & info [ "committed" ] ~docv:"FILE"
          ~doc:"Committed baseline JSON for $(b,--smoke) (default BENCH_arena.json).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the full report as JSON to $(docv).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Arena seed (default 42, the committed-baseline seed: $(b,--smoke) \
             only matches BENCH_arena.json at the seed it was generated with).")
  in
  Cmd.v
    (Cmd.info "arena"
       ~doc:
         "Race the allocator backends through the cross-allocator arena: a \
          workload-zoo machine, a cross-CPU producer/consumer flood, Fig. 7 \
          size-mix churn, and memory-pressure survival, reporting per-backend \
          RSS, throughput and fragmentation.")
    Term.(const arena $ backends $ seed $ jobs_term $ smoke $ committed $ json_out)

(* tune: deterministic config search over trace replay *)

module Tuner = Tune.Tune
module Tspace = Tune.Space

let synth_events app duration seed =
  let acc = ref [] in
  Workload.Trace.synthesize_into ~seed ~profile:app
    ~duration_ns:(duration *. Units.sec)
    (fun ev -> acc := ev :: !acc);
  Array.of_list (List.rev !acc)

let tune trace_file app duration strategy_name budget batch backend seed jobs
    checkpoint resume stop_after json_out =
  corrupt_guard @@ fun () ->
  apply_jobs jobs;
  let strategy =
    match Tuner.strategy_of_name strategy_name with
    | Some s -> s
    | None ->
      Printf.eprintf "wscalloc: unknown strategy %S (known: sweep, hillclimb, evolve)\n"
        strategy_name;
      exit 124
  in
  let spec =
    {
      Tuner.sp_seed = seed;
      sp_budget = budget;
      sp_batch = batch;
      sp_strategy = strategy;
      sp_backend = Option.value backend ~default:Config.Tcmalloc;
    }
  in
  (try Tuner.validate_spec spec
   with Invalid_argument msg ->
     Printf.eprintf "wscalloc: %s\n" msg;
     exit 124);
  let events =
    match (trace_file, app) with
    | Some path, None ->
      Printf.printf "tuning against trace %s...\n%!" path;
      Replay.preload path
    | None, Some app ->
      Printf.printf "tuning against a synthesized %.0fs %s stream...\n%!" duration
        app.Profile.name;
      synth_events app duration seed
    | Some _, Some _ ->
      Printf.eprintf "wscalloc: --trace and --app are mutually exclusive\n";
      exit 124
    | None, None ->
      Printf.eprintf "wscalloc: tune needs a workload: --trace FILE or --app APP\n";
      exit 124
  in
  let resume_state =
    match resume with
    | None -> None
    | Some path ->
      let st = Tuner.load_checkpoint ~path in
      Printf.printf "resuming search at %d evaluations (%d generations)...\n%!"
        (Tuner.evaluations st) (Tuner.generations st);
      Some st
  in
  let on_generation ~generation st =
    match checkpoint with
    | None -> ()
    | Some path ->
      Tuner.save_checkpoint st ~path
        ~note:(Printf.sprintf "generation %d" generation)
  in
  let t0 = Unix.gettimeofday () in
  let report =
    try
      Tuner.run ~on_generation ?resume:resume_state
        ?max_generations:stop_after ~events spec
    with Invalid_argument msg ->
      Printf.eprintf "wscalloc: %s\n" msg;
      exit 124
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Tuner.pp_front Format.std_formatter report;
  Format.pp_print_flush Format.std_formatter ();
  (match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Tuner.to_json ~wall_s report));
    Printf.printf "wrote %s\n" path);
  if not report.Tuner.rp_finished then exit 3

let tune_cmd =
  let trace_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace"; "t" ] ~docv:"FILE"
          ~doc:"Recorded .wtrace to tune against (decoded once, shared by every arm).")
  in
  let app_opt =
    Arg.(
      value
      & opt (some app_arg) None
      & info [ "app"; "a" ] ~docv:"APP"
          ~doc:
            "Tune against a synthesized event stream of this profile instead of a \
             recorded trace ($(b,--duration) seconds).")
  in
  let strategy =
    Arg.(
      value & opt string "evolve"
      & info [ "strategy"; "s" ] ~docv:"NAME"
          ~doc:
            "Search strategy: $(b,sweep) (random search), $(b,hillclimb) (sweep \
             opening then one-step neighborhood descent), or $(b,evolve) \
             (tournament-selection GA, the default).")
  in
  let budget =
    Arg.(
      value & opt int Tuner.default_spec.Tuner.sp_budget
      & info [ "budget" ] ~docv:"N"
          ~doc:"Total replay evaluations (default 120).")
  in
  let batch =
    Arg.(
      value & opt int Tuner.default_spec.Tuner.sp_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Evaluations per generation — the parallel fan-out width (default 24).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Search seed (default 42).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a search checkpoint to $(docv) (atomically, replacing any previous \
             one) after every generation; resuming it continues bit-identically.")
  in
  let resume =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume a search from a checkpoint written by $(b,--checkpoint).  The \
             spec flags and workload must match the checkpointed search; exits 65 \
             on damage, 124 on mismatch.")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after" ] ~docv:"GENS"
          ~doc:
            "Stop cleanly after $(docv) generations this invocation (deterministic \
             stand-in for a mid-search kill; exits 3 when the budget is left \
             unfinished).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report (BENCH_tune.json format) to $(docv).")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Search the allocator config space against a recorded trace: seeded, \
          fully deterministic (same seed => identical Pareto front at any \
          $(b,--jobs)), reporting peak-RSS vs allocator-CPU trade-offs against \
          the paper-default config.")
    Term.(
      const tune $ trace_file $ app_opt $ duration_term $ strategy $ budget $ batch
      $ backend_term $ seed $ jobs_term $ checkpoint $ resume $ stop_after $ json_out)

let () =
  let info =
    Cmd.info "wscalloc" ~version:"1.0.0"
      ~doc:"Warehouse-scale memory allocator characterization simulator."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_apps_cmd; simulate_cmd; ab_cmd; fleet_cmd; arena_cmd; trace_cmd;
            snapshot_cmd; tune_cmd;
          ]))
