(* Test entry point: aggregates every library's suites under one alcotest
   runner so `dune runtest` exercises the whole stack. *)

let () =
  Alcotest.run "wsc_alloc"
    (List.concat
       [
         Test_substrate.suite;
         Test_hw.suite;
         Test_os.suite;
         Test_tcmalloc_units.suite;
         Test_tcmalloc_alloc.suite;
         Test_workload.suite;
         Test_fleet.suite;
         Test_integration.suite;
         Test_trace.suite;
         Test_trace_stream.suite;
         Test_persist.suite;
         Test_properties.suite;
         Test_robustness.suite;
         Test_rseq.suite;
         Test_parallel.suite;
         Test_campaign.suite;
         Test_salvage.suite;
         Test_eventloop.suite;
         Test_backend.suite;
         Test_tune.suite;
       ])
