(* Backend conformance and rival-model tests.

   The qcheck properties drive [Wsc_backend.Conformance] scripts — random
   alloc/free/churn/pressure sequences with invariants checked at every
   [Check] — against all three backends, with and without a hard memory
   limit.  The unit tests pin down the rival models' size-class algebra
   and the dispatcher's contract (rseq rejection, snapshot round-trips,
   cross-CPU free draining). *)

module Backend = Wsc_backend.Backend
module Conformance = Wsc_backend.Conformance
module Rp = Wsc_backend.Rpmalloc_model
module Je = Wsc_backend.Jemalloc_model
module Clock = Wsc_substrate.Clock
module Topology = Wsc_hw.Topology
module Config = Wsc_tcmalloc.Config
module Malloc = Wsc_tcmalloc.Malloc
module Telemetry = Wsc_tcmalloc.Telemetry
module Audit = Wsc_tcmalloc.Audit
module Vm = Wsc_os.Vm
module Rseq = Wsc_os.Rseq
module Units = Wsc_substrate.Units
module Driver = Wsc_workload.Driver
module Machine = Wsc_fleet.Machine
module Fleet = Wsc_fleet.Fleet

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qcheck t = QCheck_alcotest.to_alcotest t

let config_of kind = Config.with_backend kind Config.baseline

let fresh_backend kind =
  Backend.create ~config:(config_of kind) ~topology:Topology.default
    ~clock:(Clock.create ()) ()

let report_failures result =
  String.concat "; " (List.map Conformance.describe_failure result.Conformance.failures)

(* {1 Conformance properties} *)

let conformance_property kind =
  QCheck.Test.make
    ~name:(Printf.sprintf "conformance_%s" (Config.backend_name kind))
    ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let script = Conformance.script ~seed ~length:400 in
      let result = Conformance.run ~config:(config_of kind) ~script () in
      if not (Conformance.passed result) then
        QCheck.Test.fail_report (report_failures result);
      result.Conformance.checks > 0)

let conformance_under_limit_property kind =
  QCheck.Test.make
    ~name:(Printf.sprintf "conformance_%s_hard_limit" (Config.backend_name kind))
    ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      (* A tight limit forces the reclaim-retry path and legal OOMs. *)
      let script = Conformance.script ~seed ~length:300 in
      let result =
        Conformance.run ~config:(config_of kind)
          ~hard_limit_bytes:(48 * 1024 * 1024) ~script ()
      in
      if not (Conformance.passed result) then
        QCheck.Test.fail_report (report_failures result);
      true)

(* {1 Fleet determinism per backend} *)

let fleet_fingerprint fleet =
  List.map
    (fun (j : Machine.job) ->
      let tel = Backend.telemetry j.Machine.backend in
      ( Telemetry.alloc_count tel,
        Telemetry.free_count tel,
        Telemetry.live_requested_bytes tel,
        (Backend.heap_stats j.Machine.backend).Malloc.resident_bytes,
        Driver.requests_completed j.Machine.driver ))
    (Fleet.jobs fleet)

let fleet_determinism_property kind =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "fleet_%s_jobs4_eq_jobs1" (Config.backend_name kind))
    ~count:2
    QCheck.(int_range 0 1000)
    (fun seed ->
      let run jobs =
        let fleet =
          Fleet.create ~seed ~num_machines:3 ~config:(config_of kind) ()
        in
        let summaries =
          Fleet.run ~jobs fleet ~duration_ns:(1.0 *. Units.sec) ~epoch_ns:Units.ms
        in
        (summaries, fleet_fingerprint fleet)
      in
      run 1 = run 4)

(* {1 rpmalloc model} *)

let test_rp_class_math () =
  check_int "16B granularity below small_max" 16 (Rp.class_size (Rp.class_of_size 1));
  for size = 1 to Rp.medium_max do
    let cls = Rp.class_of_size size in
    let rounded = Rp.class_size cls in
    if rounded < size then
      Alcotest.failf "class_size %d = %d below request %d" cls rounded size;
    if size <= Rp.small_max && rounded - size >= 16 then
      Alcotest.failf "small class slack %d for request %d" (rounded - size) size
  done;
  check_int "class count" Rp.class_count
    (Rp.class_of_size Rp.medium_max + 1)

let test_rp_roundtrip () =
  let backend = fresh_backend Config.Rpmalloc in
  let live = ref [] in
  for i = 0 to 999 do
    let size = 16 + (i * 37 mod 4000) in
    let cpu = i mod 8 in
    let addr = Backend.malloc_th backend ~thread:(-1) ~cpu ~size in
    live := (addr, size, cpu) :: !live
  done;
  let tel = Backend.telemetry backend in
  check_int "alloc count" 1000 (Telemetry.alloc_count tel);
  List.iter (fun (addr, size, cpu) -> Backend.free_th backend ~thread:(-1) ~cpu addr ~size)
    !live;
  check_int "free count" 1000 (Telemetry.free_count tel);
  check_int "live bytes" 0 (Telemetry.live_requested_bytes tel);
  check_bool "audit clean" true (Audit.is_clean (Backend.audit backend))

let test_rp_cross_cpu_free () =
  let backend = fresh_backend Config.Rpmalloc in
  (* Producer on CPU 0, consumer on CPU 5: every free is remote and lands
     on the span's deferred list until CPU 0 allocates again. *)
  let addrs =
    List.init 256 (fun _ -> Backend.malloc_th backend ~thread:(-1) ~cpu:0 ~size:128)
  in
  List.iter (fun a -> Backend.free_th backend ~thread:(-1) ~cpu:5 a ~size:128) addrs;
  check_bool "audit clean after remote frees" true
    (Audit.is_clean (Backend.audit backend));
  (* The owner drains its deferred lists on its next allocations. *)
  let again =
    List.init 256 (fun _ -> Backend.malloc_th backend ~thread:(-1) ~cpu:0 ~size:128)
  in
  List.iter (fun a -> Backend.free_th backend ~thread:(-1) ~cpu:0 a ~size:128) again;
  check_bool "audit clean after drain" true (Audit.is_clean (Backend.audit backend));
  check_int "all frees recorded" 512
    (Telemetry.free_count (Backend.telemetry backend))

let test_rp_release_memory () =
  let backend = fresh_backend Config.Rpmalloc in
  let addrs =
    List.init 512 (fun i ->
        let size = 64 + (i mod 7) * 512 in
        (Backend.malloc_th backend ~thread:(-1) ~cpu:(i mod 4) ~size, size, i mod 4))
  in
  List.iter (fun (a, size, cpu) -> Backend.free_th backend ~thread:(-1) ~cpu a ~size) addrs;
  let before = Backend.resident_bytes backend in
  let outcome = Backend.release_memory backend ~target_bytes:before in
  let after = Backend.resident_bytes backend in
  check_bool "released something" true
    Malloc.(
      outcome.transfer_bytes + outcome.cfl_span_bytes + outcome.os_released_bytes > 0);
  check_bool "resident dropped to zero" true (after = 0);
  check_bool "audit clean after release" true (Audit.is_clean (Backend.audit backend))

(* {1 jemalloc model} *)

let test_je_class_math () =
  (* 25% spacing: four classes per doubling above 128 B. *)
  for size = 1 to Je.small_max do
    let cls = Je.class_of_size size in
    let rounded = Je.class_size cls in
    if rounded < size then
      Alcotest.failf "class_size %d = %d below request %d" cls rounded size;
    if size > 128 && float_of_int rounded > 1.25 *. float_of_int size +. 1.0 then
      Alcotest.failf "class spacing above 25%%: request %d rounded %d" size rounded
  done;
  check_int "class count" Je.class_count (Je.class_of_size Je.small_max + 1);
  (* Every slab holds at least four objects. *)
  for cls = 0 to Je.class_count - 1 do
    let pages = Je.slab_pages_of cls in
    if pages * Je.page_size / Je.class_size cls < 4 then
      Alcotest.failf "slab of class %d holds fewer than 4 objects" cls
  done

let test_je_arena_binding () =
  let backend = fresh_backend Config.Jemalloc in
  (* Allocations from CPUs 0..7 exercise all [num_arenas] arenas
     round-robin; frees from a different CPU land in that CPU's tcache of
     the same arena-bound slab. *)
  let addrs =
    List.init 512 (fun i ->
        (Backend.malloc_th backend ~thread:(-1) ~cpu:(i mod 8) ~size:192, (i + 3) mod 8))
  in
  List.iter (fun (a, cpu) -> Backend.free_th backend ~thread:(-1) ~cpu a ~size:192) addrs;
  check_bool "audit clean" true (Audit.is_clean (Backend.audit backend));
  (* Flushing every CPU returns tcache objects to their slabs. *)
  for cpu = 0 to 7 do
    Backend.cpu_idle ~flush:true backend ~cpu
  done;
  let s = Backend.heap_stats backend in
  check_int "tcaches empty after flush" 0 s.Malloc.front_end_cached_bytes;
  check_bool "audit clean after flush" true (Audit.is_clean (Backend.audit backend))

let test_je_extent_coalescing () =
  let backend = fresh_backend Config.Jemalloc in
  (* Large allocations carve extents; freeing everything must coalesce
     back to whole chunks and unmap them. *)
  let addrs =
    List.init 64 (fun i ->
        let size = (1 + (i mod 5)) * 64 * 1024 in
        (Backend.malloc_th backend ~thread:(-1) ~cpu:0 ~size, size))
  in
  List.iter (fun (a, size) -> Backend.free_th backend ~thread:(-1) ~cpu:0 a ~size) addrs;
  ignore (Backend.release_memory backend ~target_bytes:max_int);
  check_int "all chunks unmapped" 0 (Backend.resident_bytes backend);
  check_bool "audit clean" true (Audit.is_clean (Backend.audit backend))

(* {1 Pressure survival} *)

let test_pressure_survival kind () =
  let backend = fresh_backend kind in
  let limit = 32 * 1024 * 1024 in
  Vm.set_hard_limit (Backend.vm backend) (Some limit);
  let live = ref [] in
  let ooms = ref 0 in
  (* Push well past the limit; the backend must either satisfy each
     allocation within the limit or raise Out_of_memory — never crash,
     never exceed resident > limit. *)
  for i = 0 to 4095 do
    let size = 16 * 1024 in
    match Backend.malloc_th backend ~thread:(-1) ~cpu:(i mod 4) ~size with
    | addr ->
      live := (addr, size, i mod 4) :: !live;
      if List.length !live > 1024 then begin
        match !live with
        | (a, s, c) :: rest ->
          Backend.free_th backend ~thread:(-1) ~cpu:c a ~size:s;
          live := rest
        | [] -> ()
      end
    | exception Stdlib.Out_of_memory ->
      incr ooms;
      (match !live with
      | (a, s, c) :: rest ->
        Backend.free_th backend ~thread:(-1) ~cpu:c a ~size:s;
        live := rest
      | [] -> ())
  done;
  check_bool "stayed under hard limit" true (Backend.resident_bytes backend <= limit);
  check_bool "audit clean under pressure" true (Audit.is_clean (Backend.audit backend));
  List.iter (fun (a, s, c) -> Backend.free_th backend ~thread:(-1) ~cpu:c a ~size:s) !live;
  ignore (Backend.release_memory backend ~target_bytes:max_int);
  check_bool "audit clean after recovery" true (Audit.is_clean (Backend.audit backend))

(* {1 Dispatcher contract} *)

let test_rseq_rejected () =
  let rseq =
    Rseq.create { Rseq.seed = 1; preempt_prob = 0.0; max_restarts = 3 }
  in
  List.iter
    (fun kind ->
      match
        Backend.create ~config:(config_of kind) ~rseq ~topology:Topology.default
          ~clock:(Clock.create ()) ()
      with
      | exception Invalid_argument _ -> ()
      | (_ : Backend.t) ->
        Alcotest.failf "rseq accepted by %s backend" (Config.backend_name kind))
    [ Config.Rpmalloc; Config.Jemalloc ];
  (* ... and accepted by tcmalloc. *)
  let backend =
    Backend.create ~config:Config.baseline ~rseq ~topology:Topology.default
      ~clock:(Clock.create ()) ()
  in
  check_bool "tcmalloc keeps its rseq" true (Backend.rseq backend <> None)

let test_snapshot_roundtrip kind () =
  let backend = fresh_backend kind in
  let addrs =
    List.init 200 (fun i ->
        let size = 32 + (i mod 9) * 100 in
        (Backend.malloc_th backend ~thread:(-1) ~cpu:(i mod 4) ~size, size, i mod 4))
  in
  let blob = Backend.snapshot backend in
  let restored = Backend.restore ~kind blob in
  check_bool "same stats after restore" true
    (Backend.heap_stats restored = Backend.heap_stats backend);
  (* The restored heap keeps working: free everything that was live. *)
  List.iter (fun (a, s, c) -> Backend.free_th restored ~thread:(-1) ~cpu:c a ~size:s) addrs;
  check_bool "restored audit clean" true (Audit.is_clean (Backend.audit restored))

let test_kind_names () =
  List.iter
    (fun kind ->
      check_bool "name round-trips" true
        (Config.backend_of_name (Config.backend_name kind) = Some kind))
    Config.all_backends;
  check_bool "unknown rejected" true (Config.backend_of_name "hoard" = None)

let suite =
  [
    ( "backend",
      List.map conformance_property Config.all_backends
      @ List.map conformance_under_limit_property Config.all_backends
      @ List.map fleet_determinism_property Config.all_backends
      |> List.map qcheck )
    ;
    ( "backend_models",
      [
        Alcotest.test_case "rp_class_math" `Quick test_rp_class_math;
        Alcotest.test_case "rp_roundtrip" `Quick test_rp_roundtrip;
        Alcotest.test_case "rp_cross_cpu_free" `Quick test_rp_cross_cpu_free;
        Alcotest.test_case "rp_release_memory" `Quick test_rp_release_memory;
        Alcotest.test_case "je_class_math" `Quick test_je_class_math;
        Alcotest.test_case "je_arena_binding" `Quick test_je_arena_binding;
        Alcotest.test_case "je_extent_coalescing" `Quick test_je_extent_coalescing;
        Alcotest.test_case "rp_pressure_survival" `Quick
          (test_pressure_survival Config.Rpmalloc);
        Alcotest.test_case "je_pressure_survival" `Quick
          (test_pressure_survival Config.Jemalloc);
        Alcotest.test_case "tc_pressure_survival" `Quick
          (test_pressure_survival Config.Tcmalloc);
        Alcotest.test_case "rseq_rejected_by_rivals" `Quick test_rseq_rejected;
        Alcotest.test_case "rp_snapshot_roundtrip" `Quick
          (test_snapshot_roundtrip Config.Rpmalloc);
        Alcotest.test_case "je_snapshot_roundtrip" `Quick
          (test_snapshot_roundtrip Config.Jemalloc);
        Alcotest.test_case "kind_names" `Quick test_kind_names;
      ] );
  ]
