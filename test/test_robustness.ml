(* Robustness tests: memory limits, the reclaim cascade, fault injection,
   free-path hardening, heap audits, and fault-schedule determinism. *)

open Wsc_substrate
module Topology = Wsc_hw.Topology
module Vm = Wsc_os.Vm
module Fault = Wsc_os.Fault
module Config = Wsc_tcmalloc.Config
module Size_class = Wsc_tcmalloc.Size_class
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Telemetry = Wsc_tcmalloc.Telemetry
module Audit = Wsc_tcmalloc.Audit
module Per_cpu_cache = Wsc_tcmalloc.Per_cpu_cache
module Apps = Wsc_workload.Apps
module Driver = Wsc_workload.Driver
module Machine = Wsc_fleet.Machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mib = 1024 * 1024

let make_malloc () =
  let clock = Clock.create () in
  let m = Malloc.create ~topology:Topology.uniprocessor ~clock () in
  (clock, m)

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

(* Run [f], expecting an [Invalid_argument] whose message mentions every
   given fragment (messages embed addresses, so exact matching is out). *)
let expect_free_error fragments f =
  match f () with
  | () ->
    Alcotest.failf "expected Invalid_argument mentioning %s"
      (String.concat ", " fragments)
  | exception Invalid_argument msg ->
    List.iter
      (fun frag ->
        check_bool (Printf.sprintf "%S in %S" frag msg) true (contains msg frag))
      fragments

(* {1 Hardened free error paths} *)

let test_double_free_cached_tier () =
  let _, m = make_malloc () in
  let a = Malloc.malloc m ~cpu:0 ~size:128 in
  Malloc.free m ~cpu:0 a ~size:128;
  (* The object sits in the per-CPU cache: the span still counts it
     outstanding, so only the in-flight set can catch this. *)
  expect_free_error [ "double free"; "tier=front-end"; Printf.sprintf "addr=0x%x" a ]
    (fun () -> Malloc.free m ~cpu:0 a ~size:128)

let test_double_free_span_tier () =
  let _, m = make_malloc () in
  let keep = Malloc.malloc m ~cpu:0 ~size:128 in
  let a = Malloc.malloc m ~cpu:0 ~size:128 in
  Malloc.free m ~cpu:0 a ~size:128;
  (* Drain the caches so the object returns to its span ([keep] pins the
     span in the central free list), then free it again. *)
  ignore (Malloc.release_memory m ~target_bytes:(64 * mib));
  expect_free_error [ "double free"; "tier=central-free-list" ] (fun () ->
      Malloc.free m ~cpu:0 a ~size:128);
  Malloc.free m ~cpu:0 keep ~size:128

let test_wrong_class_free () =
  let _, m = make_malloc () in
  let a = Malloc.malloc m ~cpu:0 ~size:128 in
  expect_free_error [ "size mismatch"; "tier=central-free-list" ] (fun () ->
      Malloc.free m ~cpu:0 a ~size:4096)

let test_misaligned_free () =
  let _, m = make_malloc () in
  let a = Malloc.malloc m ~cpu:0 ~size:128 in
  expect_free_error [ "misaligned free"; Printf.sprintf "addr=0x%x" (a + 1) ] (fun () ->
      Malloc.free m ~cpu:0 (a + 1) ~size:128)

let test_small_free_of_large_alloc () =
  let _, m = make_malloc () in
  let a = Malloc.malloc m ~cpu:0 ~size:mib in
  expect_free_error [ "size mismatch"; "large" ] (fun () ->
      Malloc.free m ~cpu:0 a ~size:128)

let test_large_free_errors () =
  let _, m = make_malloc () in
  let a = Malloc.malloc m ~cpu:0 ~size:mib in
  expect_free_error [ "size mismatch"; "page count" ] (fun () ->
      Malloc.free m ~cpu:0 a ~size:(2 * mib));
  expect_free_error [ "misaligned free"; "interior" ] (fun () ->
      Malloc.free m ~cpu:0 (a + Units.tcmalloc_page_size) ~size:mib);
  Malloc.free m ~cpu:0 a ~size:mib;
  (* The span left the page map when it was freed: a second free of the
     same region is indistinguishable from a wild pointer. *)
  expect_free_error [ "wild pointer" ] (fun () -> Malloc.free m ~cpu:0 a ~size:mib)

let prop_double_free_detected =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"double_free_always_detected" ~count:40
       QCheck.(triple (int_range 1 40) (int_range 8 4096) bool)
       (fun (n, size, drain_first) ->
         let _, m = make_malloc () in
         let addrs = List.init n (fun _ -> Malloc.malloc m ~cpu:0 ~size) in
         List.iter (fun a -> Malloc.free m ~cpu:0 a ~size) addrs;
         (* Optionally push everything back through the cascade so the
            second frees hit span/pageheap tiers instead of the caches. *)
         if drain_first then ignore (Malloc.release_memory m ~target_bytes:(256 * mib));
         List.for_all
           (fun a ->
             match Malloc.free m ~cpu:0 a ~size with
             | () -> false
             | exception Invalid_argument _ -> true)
           addrs))

let prop_wrong_size_free_detected =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"wrong_size_free_detected" ~count:60
       QCheck.(pair (int_range 8 300_000) (int_range 8 300_000))
       (fun (s1, s2) ->
         (* Only pairs that round to different size classes are erroneous. *)
         if Size_class.of_size s1 = Size_class.of_size s2 then true
         else begin
           let _, m = make_malloc () in
           let a = Malloc.malloc m ~cpu:0 ~size:s1 in
           match Malloc.free m ~cpu:0 a ~size:s2 with
           | () -> false
           | exception Invalid_argument _ -> true
         end))

(* {1 Reclaim cascade} *)

let test_release_memory_cascade () =
  let _, m = make_malloc () in
  (* Several spans' worth of small objects; free most, keep a few live so
     the backing hugepage stays partially used (subrelease, not unmap). *)
  let addrs = List.init 400 (fun _ -> Malloc.malloc m ~cpu:0 ~size:128) in
  let live = List.filteri (fun i _ -> i < 40) addrs in
  let dead = List.filteri (fun i _ -> i >= 40) addrs in
  List.iter (fun a -> Malloc.free m ~cpu:0 a ~size:128) dead;
  let tel = Malloc.telemetry m in
  let resident_before = (Malloc.heap_stats m).Malloc.resident_bytes in
  let o = Malloc.release_memory m ~target_bytes:(64 * mib) in
  check_bool "front-end drained" true (o.Malloc.front_end_bytes > 0);
  check_bool "transfer drained" true (o.Malloc.transfer_bytes > 0);
  check_bool "idle spans returned" true (o.Malloc.cfl_span_bytes > 0);
  check_bool "bytes released to OS" true (o.Malloc.os_released_bytes > 0);
  check_int "front-end empty after drain" 0
    (Per_cpu_cache.cached_bytes (Malloc.per_cpu_caches m));
  check_bool "resident shrank" true
    ((Malloc.heap_stats m).Malloc.resident_bytes < resident_before);
  (* Telemetry mirrors the outcome. *)
  check_int "tier telemetry: front-end" o.Malloc.front_end_bytes
    (Telemetry.reclaimed_bytes tel Telemetry.Front_end);
  check_int "tier telemetry: transfer" o.Malloc.transfer_bytes
    (Telemetry.reclaimed_bytes tel Telemetry.Transfer);
  check_int "tier telemetry: cfl" o.Malloc.cfl_span_bytes
    (Telemetry.reclaimed_bytes tel Telemetry.Cfl_spans);
  check_int "tier telemetry: os" o.Malloc.os_released_bytes
    (Telemetry.reclaimed_bytes tel Telemetry.Os_release);
  check_int "one reclaim event" 1 (Telemetry.reclaim_events tel);
  (* A non-positive target is a recorded no-op. *)
  let z = Malloc.release_memory m ~target_bytes:0 in
  check_int "zero target reclaims nothing" 0
    (z.Malloc.front_end_bytes + z.Malloc.transfer_bytes + z.Malloc.cfl_span_bytes
   + z.Malloc.os_released_bytes);
  check_int "zero target records no event" 1 (Telemetry.reclaim_events tel);
  List.iter (fun a -> Malloc.free m ~cpu:0 a ~size:128) live

let test_release_skips_drains_when_backlog_suffices () =
  let _, m = make_malloc () in
  (* Populate the per-CPU cache... *)
  let small = List.init 50 (fun _ -> Malloc.malloc m ~cpu:0 ~size:256) in
  List.iter (fun a -> Malloc.free m ~cpu:0 a ~size:256) small;
  let cached_before = Per_cpu_cache.cached_bytes (Malloc.per_cpu_caches m) in
  check_bool "cache populated" true (cached_before > 0);
  (* ...and give the pageheap a large releasable backlog. *)
  let big = Malloc.malloc m ~cpu:0 ~size:(4 * mib) in
  Malloc.free m ~cpu:0 big ~size:(4 * mib);
  let o = Malloc.release_memory m ~target_bytes:mib in
  check_int "front-end untouched" 0 o.Malloc.front_end_bytes;
  check_int "transfer untouched" 0 o.Malloc.transfer_bytes;
  check_int "hot caches preserved" cached_before
    (Per_cpu_cache.cached_bytes (Malloc.per_cpu_caches m))

let test_oom_after_exhausted_retries () =
  let _, m = make_malloc () in
  let vm = Malloc.vm m in
  Vm.set_hard_limit vm (Some Units.hugepage_size);
  (* A 4 MiB span needs two hugepages: no amount of reclaim helps. *)
  check_bool "OOM surfaces" true
    (try
       ignore (Malloc.malloc m ~cpu:0 ~size:(4 * mib));
       false
     with Stdlib.Out_of_memory -> true);
  let tel = Malloc.telemetry m in
  let retries = (Malloc.config m).Config.reclaim_retries in
  check_int "every retry consumed" retries (Telemetry.reclaim_retries tel);
  check_int "one OOM recorded" 1 (Telemetry.oom_events tel);
  check_bool "limit failures counted" true (Vm.limit_mmap_failures vm > retries)

let test_transient_burst_survival () =
  let _, m = make_malloc () in
  let vm = Malloc.vm m in
  let remaining = ref 2 in
  Vm.set_fault_hook vm
    (Some
       (fun ~bytes:_ ->
         if !remaining > 0 then begin
           decr remaining;
           true
         end
         else false));
  (* Two consecutive mmap refusals stay within the retry budget. *)
  let a = Malloc.malloc m ~cpu:0 ~size:mib in
  check_bool "allocation survived the burst" true (a > 0);
  let tel = Malloc.telemetry m in
  check_int "two retries" 2 (Telemetry.reclaim_retries tel);
  check_int "no OOM" 0 (Telemetry.oom_events tel);
  check_int "failures recorded" 2 (Vm.transient_mmap_failures vm)

let test_soft_limit_watchdog () =
  let clock, m = make_malloc () in
  let addrs = List.init 300 (fun _ -> Malloc.malloc m ~cpu:0 ~size:512) in
  List.iter (fun a -> Malloc.free m ~cpu:0 a ~size:512) addrs;
  Vm.set_soft_limit (Malloc.vm m) (Some 1);
  let tel = Malloc.telemetry m in
  check_int "no reclaim yet" 0 (Telemetry.reclaim_events tel);
  Clock.advance clock (2.0 *. (Malloc.config m).Config.soft_limit_check_interval_ns);
  check_bool "watchdog ran the cascade" true (Telemetry.reclaim_events tel > 0);
  check_int "caches drained" 0 (Per_cpu_cache.cached_bytes (Malloc.per_cpu_caches m))

(* {1 Heap auditor} *)

let test_audit_clean () =
  let _, m = make_malloc () in
  check_bool "empty heap is clean" true (Audit.is_clean (Audit.run m));
  let addrs = List.init 200 (fun i -> Malloc.malloc m ~cpu:0 ~size:(64 + (i mod 7 * 512))) in
  let big = Malloc.malloc m ~cpu:0 ~size:(3 * mib) in
  let r = Audit.run m in
  check_bool "live heap is clean" true (Audit.is_clean r);
  check_bool "spans walked" true (r.Audit.spans_walked > 0);
  check_bool "hugepages walked" true (r.Audit.hugepages_walked > 0);
  List.iteri (fun i a -> Malloc.free m ~cpu:0 a ~size:(64 + (i mod 7 * 512))) addrs;
  Malloc.free m ~cpu:0 big ~size:(3 * mib);
  ignore (Malloc.release_memory m ~target_bytes:(256 * mib));
  check_bool "clean after full reclaim" true (Audit.is_clean (Audit.run m))

let test_audit_reports_hard_limit_breach () =
  let _, m = make_malloc () in
  ignore (Malloc.malloc m ~cpu:0 ~size:mib);
  (* Install a limit below current residency: the auditor must report it
     as a structured violation, not assert. *)
  Vm.set_hard_limit (Malloc.vm m) (Some 1);
  let r = Audit.run m in
  check_bool "violation reported" false (Audit.is_clean r);
  check_bool "named check" true
    (List.exists (fun v -> v.Audit.check = "hard-limit") r.Audit.violations);
  check_bool "printable" true (contains (Audit.to_string r) "hard-limit")

(* {1 Integration: survival under limits and faults} *)

let pressure_fault_config =
  {
    Fault.seed = 5;
    mmap_failure_rate = 0.02;
    mmap_failure_burst = 2;
    pressure_period_ns = 1.5 *. Units.sec;
    pressure_duration_ns = 0.4 *. Units.sec;
    pressure_bytes = 16 * mib;
    cpu_churn_period_ns = Units.sec;
  }

let test_memory_pressure_survival () =
  let hard = 512 * mib in
  let machine =
    Machine.create ~seed:7 ~soft_limit_bytes:(64 * mib) ~hard_limit_bytes:hard
      ~faults:pressure_fault_config ~audit_interval_ns:(0.5 *. Units.sec)
      ~platform:Topology.default
      ~jobs:[ Apps.by_name "redis" ]
      ()
  in
  Machine.run machine ~duration_ns:(3.0 *. Units.sec) ~epoch_ns:Units.ms;
  let job = List.hd (Machine.jobs machine) in
  let tel = Backend.telemetry job.Machine.backend in
  let vm = Backend.vm job.Machine.backend in
  (* The run completed: transient faults were absorbed, no OOM. *)
  check_bool "made progress" true (Driver.allocations job.Machine.driver > 10_000);
  check_bool "faults were injected" true (Vm.transient_mmap_failures vm > 0);
  check_int "no OOM" 0 (Telemetry.oom_events tel);
  (* The tight soft limit forced the cascade through every tier. *)
  check_bool "reclaim ran" true (Telemetry.reclaim_events tel > 0);
  List.iter
    (fun tier ->
      check_bool
        (Printf.sprintf "tier %s reclaimed bytes" (Telemetry.reclaim_tier_name tier))
        true
        (Telemetry.reclaimed_bytes tel tier > 0))
    Telemetry.all_reclaim_tiers;
  (* Residency stayed under the hard limit throughout. *)
  check_bool "peak RSS under hard limit" true
    (Driver.peak_rss_bytes job.Machine.driver <= hard);
  (* The heap stayed structurally consistent at every audit point. *)
  check_bool "audits taken" true (Driver.audit_reports job.Machine.driver <> []);
  check_int "zero audit violations" 0 (Driver.audit_violations job.Machine.driver)

(* {1 Determinism under a fault schedule} *)

type signature = {
  stats : Malloc.heap_stats;
  allocs : int;
  frees : int;
  requests : float;
  mmap_failures : int;
  transient : int;
  limit : int;
  reclaim_events : int;
  reclaim_retries : int;
  oom : int;
  reclaimed : int list;
  injected : int;
  audits : int;
  violations : int;
}

let run_signature () =
  let machine =
    Machine.create ~seed:11 ~soft_limit_bytes:(96 * mib) ~hard_limit_bytes:(512 * mib)
      ~faults:pressure_fault_config ~audit_interval_ns:Units.sec
      ~platform:Topology.default
      ~jobs:[ Apps.by_name "redis" ]
      ()
  in
  Machine.run machine ~duration_ns:(2.0 *. Units.sec) ~epoch_ns:Units.ms;
  let job = List.hd (Machine.jobs machine) in
  let tel = Backend.telemetry job.Machine.backend in
  let vm = Backend.vm job.Machine.backend in
  {
    stats = Backend.heap_stats job.Machine.backend;
    allocs = Telemetry.alloc_count tel;
    frees = Telemetry.free_count tel;
    requests = Driver.requests_completed job.Machine.driver;
    mmap_failures = Vm.mmap_failures vm;
    transient = Vm.transient_mmap_failures vm;
    limit = Vm.limit_mmap_failures vm;
    reclaim_events = Telemetry.reclaim_events tel;
    reclaim_retries = Telemetry.reclaim_retries tel;
    oom = Telemetry.oom_events tel;
    reclaimed =
      List.map (Telemetry.reclaimed_bytes tel) Telemetry.all_reclaim_tiers;
    injected = (match job.Machine.fault with Some f -> Fault.injected_failures f | None -> -1);
    audits = List.length (Driver.audit_reports job.Machine.driver);
    violations = Driver.audit_violations job.Machine.driver;
  }

let test_fault_schedule_determinism () =
  let a = run_signature () in
  let b = run_signature () in
  check_bool "faults actually fired" true (a.injected > 0);
  check_bool "reclaim actually ran" true (a.reclaim_events > 0);
  check_bool "bit-identical heap stats and telemetry" true (a = b)

let suite =
  [
    ( "free_hardening",
      [
        Alcotest.test_case "double free in cache tier" `Quick test_double_free_cached_tier;
        Alcotest.test_case "double free in span tier" `Quick test_double_free_span_tier;
        Alcotest.test_case "wrong class" `Quick test_wrong_class_free;
        Alcotest.test_case "misaligned" `Quick test_misaligned_free;
        Alcotest.test_case "small free of large alloc" `Quick test_small_free_of_large_alloc;
        Alcotest.test_case "large free errors" `Quick test_large_free_errors;
        prop_double_free_detected;
        prop_wrong_size_free_detected;
      ] );
    ( "reclaim",
      [
        Alcotest.test_case "cascade drains every tier" `Quick test_release_memory_cascade;
        Alcotest.test_case "backlog skips cache drains" `Quick
          test_release_skips_drains_when_backlog_suffices;
        Alcotest.test_case "oom after exhausted retries" `Quick
          test_oom_after_exhausted_retries;
        Alcotest.test_case "transient burst survival" `Quick test_transient_burst_survival;
        Alcotest.test_case "soft limit watchdog" `Quick test_soft_limit_watchdog;
      ] );
    ( "audit",
      [
        Alcotest.test_case "clean heaps stay clean" `Quick test_audit_clean;
        Alcotest.test_case "hard limit breach reported" `Quick
          test_audit_reports_hard_limit_breach;
      ] );
    ( "pressure_integration",
      [
        Alcotest.test_case "survival under limits and faults" `Slow
          test_memory_pressure_survival;
        Alcotest.test_case "fault schedule determinism" `Slow
          test_fault_schedule_determinism;
      ] );
  ]
