(* Tests for the streaming trace pipeline (wsc_trace): codec round-trips,
   corruption detection, text-v1 conversion, live recording, and streaming
   replay equivalence. *)

open Wsc_substrate
open Wsc_workload
open Wsc_trace
module Config = Wsc_tcmalloc.Config
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Machine = Wsc_fleet.Machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qcheck t = QCheck_alcotest.to_alcotest t

let with_temp f =
  let path = Filename.temp_file "wsc_trace_stream" ".wtrace" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let write_events path events =
  Writer.with_file path (fun w -> List.iter (Writer.add w) events)

let read_events path =
  Reader.with_file path (fun r -> List.rev (Reader.fold r [] (fun acc ev -> ev :: acc)))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* {1 CRC32} *)

let test_crc32_vector () =
  check_int "IEEE 802.3 check value" 0xCBF43926 (Crc32.string "123456789");
  let b = Bytes.of_string "123456789" in
  let piecewise = Crc32.update (Crc32.update 0 b ~pos:0 ~len:4) b ~pos:4 ~len:5 in
  check_int "incremental = one-shot" (Crc32.bytes b) piecewise;
  check_int "empty" 0 (Crc32.string "")

(* {1 Live_index} *)

(* Encoder and decoder indexes stay in lockstep: ranks produced by one are
   resolved to the same ids by the other, under random alloc/free mixes. *)
let test_live_index_lockstep =
  qcheck
    (QCheck.Test.make ~name:"live_index_rank_select_lockstep" ~count:100
       QCheck.(list_of_size (QCheck.Gen.int_range 1 400) (QCheck.int_range 0 99))
       (fun ops ->
         let enc = Live_index.create () and dec = Live_index.create () in
         let live = ref [] and next = ref 0 in
         List.for_all
           (fun op ->
             if op < 55 || !live = [] then begin
               let id = !next in
               incr next;
               Live_index.append enc id;
               Live_index.append dec id;
               live := id :: !live;
               true
             end
             else begin
               let id = List.nth !live (op mod List.length !live) in
               live := List.filter (fun x -> x <> id) !live;
               let rank = Live_index.remove_rank enc id in
               rank >= 0 && Live_index.remove_select dec rank = id
             end)
           ops))

let test_live_index_compaction () =
  (* Push far past the initial capacity with a bounded live set: memory
     must stay bounded (capacity tracks the live set, not history). *)
  let t = Live_index.create () in
  for i = 0 to 99_999 do
    Live_index.append t i;
    if i >= 64 then ignore (Live_index.remove_rank t (i - 64))
  done;
  check_int "live window" 64 (Live_index.length t);
  check_bool "old id gone" false (Live_index.mem t 0);
  check_bool "recent id live" true (Live_index.mem t 99_999)

(* {1 Codec round-trip} *)

let pp_event = function
  | Trace.Alloc { id; size; cpu } -> Printf.sprintf "a %d %d %d" id size cpu
  | Trace.Free { id; cpu } -> Printf.sprintf "f %d %d" id cpu
  | Trace.Advance { dt_ns } -> Printf.sprintf "t %.17g" dt_ns
  | Trace.Retire { cpu; flush } -> Printf.sprintf "r %d %b" cpu flush

let pp_events evs = String.concat "\n" (List.map pp_event evs)

(* Random semantically valid event streams exercising the codec's edge
   paths: sequential and far-jumping ids, reallocation of freed ids
   (negative deltas), sizes from 1 B to tens of TiB, repeated and extreme
   dts, cpus beyond the 6-bit inline range. *)
let gen_events rand =
  let n = Random.State.int rand 400 in
  let live = ref [] and freed = ref [] and next = ref 0 and dts = [| 0.0; 1e6; 0.25; 1e18 |] in
  let evs = ref [] in
  let gen_cpu () =
    match Random.State.int rand 10 with
    | 0 -> 62 + Random.State.int rand 4 (* straddle the escape boundary *)
    | 1 -> Random.State.int rand 1_000_000
    | _ -> Random.State.int rand 8
  in
  for _ = 1 to n do
    match Random.State.int rand 100 with
    | r when r < 45 || !live = [] ->
      let id =
        match Random.State.int rand 10 with
        | 0 | 1 when !freed <> [] ->
          let id = List.hd !freed in
          freed := List.tl !freed;
          id
        | 2 -> !next + Random.State.int rand 1_000_000
        | 3 -> !next + (1 lsl (40 + Random.State.int rand 15))
        | _ -> !next
      in
      next := max !next (id + 1);
      let size =
        match Random.State.int rand 10 with
        | 0 -> 1 lsl (30 + Random.State.int rand 15)
        | _ -> 1 + Random.State.int rand 4096
      in
      live := id :: !live;
      evs := Trace.Alloc { id; size; cpu = gen_cpu () } :: !evs
    | r when r < 80 ->
      let k = Random.State.int rand (List.length !live) in
      let id = List.nth !live k in
      live := List.filter (fun x -> x <> id) !live;
      freed := id :: !freed;
      evs := Trace.Free { id; cpu = gen_cpu () } :: !evs
    | r when r < 93 ->
      evs := Trace.Advance { dt_ns = dts.(Random.State.int rand 4) } :: !evs
    | _ ->
      evs :=
        Trace.Retire { cpu = gen_cpu (); flush = Random.State.bool rand } :: !evs
  done;
  List.rev !evs

let events_arbitrary = QCheck.make ~print:pp_events gen_events

let test_codec_roundtrip =
  qcheck
    (QCheck.Test.make ~name:"binary_roundtrip_identical" ~count:100 events_arbitrary
       (fun events ->
         with_temp (fun path ->
             write_events path events;
             read_events path = events)))

let test_codec_roundtrip_extremes () =
  (* Deterministic extremes on top of the random ones. *)
  let events =
    [
      Trace.Alloc { id = 0; size = 1; cpu = 0 };
      Trace.Alloc { id = max_int / 2; size = max_int; cpu = 1_000_000 };
      Trace.Advance { dt_ns = 0.0 };
      Trace.Advance { dt_ns = 0.0 };
      Trace.Advance { dt_ns = Float.max_float };
      Trace.Free { id = max_int / 2; cpu = 63 };
      Trace.Alloc { id = 1; size = 7; cpu = 62 };
      Trace.Retire { cpu = 1_000_000; flush = true };
      Trace.Free { id = 0; cpu = 0 };
      Trace.Free { id = 1; cpu = 0 };
    ]
  in
  with_temp (fun path ->
      write_events path events;
      check_bool "extreme events roundtrip" true (read_events path = events))

let test_writer_rejects_invalid () =
  with_temp (fun path ->
      let w = Writer.to_file path in
      Fun.protect
        ~finally:(fun () -> Writer.close w)
        (fun () ->
          Writer.add w (Trace.Alloc { id = 1; size = 8; cpu = 0 });
          check_bool "double alloc rejected" true
            (try
               Writer.add w (Trace.Alloc { id = 1; size = 8; cpu = 0 });
               false
             with Invalid_argument _ -> true);
          check_bool "unknown free rejected" true
            (try
               Writer.add w (Trace.Free { id = 99; cpu = 0 });
               false
             with Invalid_argument _ -> true)))

(* {1 Corruption detection} *)

let is_corrupt f =
  try
    f ();
    false
  with Reader.Corrupt _ -> true

let test_truncation_detected =
  qcheck
    (QCheck.Test.make ~name:"truncated_trace_rejected" ~count:60
       QCheck.(pair events_arbitrary (QCheck.float_bound_inclusive 1.0))
       (fun (events, frac) ->
         with_temp (fun path ->
             write_events path events;
             let full = read_file path in
             let len = String.length full in
             (* Cut anywhere from "just the header" to "one byte short". *)
             let cut = 16 + int_of_float (frac *. float_of_int (len - 17)) in
             with_temp (fun path' ->
                 write_file path' (String.sub full 0 cut);
                 is_corrupt (fun () ->
                     Reader.with_file path' (fun r -> Reader.iter r ignore))))))

let test_bitflip_detected =
  qcheck
    (QCheck.Test.make ~name:"bitflipped_trace_rejected" ~count:100
       QCheck.(triple events_arbitrary (QCheck.int_range 0 1_000_000) (QCheck.int_range 0 7))
       (fun (events, posr, bit) ->
         with_temp (fun path ->
             (* Ensure at least one block exists so there is something to
                flip besides the end-of-stream marker. *)
             let events =
               if events = [] then [ Trace.Advance { dt_ns = 1.0 } ] else events
             in
             write_events path events;
             let full = Bytes.of_string (read_file path) in
             let len = Bytes.length full in
             let pos = 16 + (posr mod (len - 16)) in
             Bytes.set full pos
               (Char.chr (Char.code (Bytes.get full pos) lxor (1 lsl bit)));
             with_temp (fun path' ->
                 write_file path' (Bytes.to_string full);
                 is_corrupt (fun () ->
                     Reader.with_file path' (fun r -> Reader.iter r ignore))))))

(* A varint reader over raw bytes, to locate block boundaries in the file
   and pin corruption reports to the right block index. *)
let parse_uvarint s pos =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let b = Char.code s.[!pos] in
    incr pos;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then continue := false
  done;
  !v

let test_corrupt_error_names_block () =
  with_temp (fun path ->
      (* Two full blocks plus a partial third. *)
      Writer.with_file path (fun w ->
          for i = 0 to (2 * Codec.block_flush_events) + 100 do
            Writer.add w (Trace.Alloc { id = i; size = 64; cpu = i mod 8 })
          done);
      let full = read_file path in
      (* Walk the frames to find block 1's payload. *)
      let pos = ref Codec.header_len in
      let len0 = parse_uvarint full pos in
      let _count0 = parse_uvarint full pos in
      pos := !pos + 4 + len0;
      let len1 = parse_uvarint full pos in
      let _count1 = parse_uvarint full pos in
      pos := !pos + 4;
      check_bool "fixture has a second block" true (len1 > 0);
      let corrupted = Bytes.of_string full in
      let target = !pos + (len1 / 2) in
      Bytes.set corrupted target
        (Char.chr (Char.code (Bytes.get corrupted target) lxor 0x10));
      with_temp (fun path' ->
          write_file path' (Bytes.to_string corrupted);
          match Reader.with_file path' (fun r -> Reader.iter r ignore) with
          | () -> Alcotest.fail "corruption not detected"
          | exception Reader.Corrupt { block; reason } ->
            check_int "error names the damaged block" 1 block;
            check_bool "reason mentions CRC" true
              (String.length reason >= 3 && String.sub reason 0 3 = "CRC")))

let test_missing_eos_detected () =
  with_temp (fun path ->
      write_events path [ Trace.Alloc { id = 0; size = 32; cpu = 0 } ];
      let full = read_file path in
      (* The end-of-stream marker is the last 6 bytes (0 len, 0 count,
         zero checksum). *)
      with_temp (fun path' ->
          write_file path' (String.sub full 0 (String.length full - 6));
          match Reader.with_file path' (fun r -> Reader.iter r ignore) with
          | () -> Alcotest.fail "missing end-of-stream not detected"
          | exception Reader.Corrupt { block; reason } ->
            check_int "block index" 1 block;
            check_bool "reason mentions end-of-stream" true
              (String.length reason > 0
              && String.exists (fun _ -> true) reason
              &&
              let re = "end-of-stream" in
              let n = String.length re and m = String.length reason in
              let rec scan i = i + n <= m && (String.sub reason i n = re || scan (i + 1)) in
              scan 0)))

let test_unsupported_version_rejected () =
  with_temp (fun path ->
      write_events path [ Trace.Advance { dt_ns = 1.0 } ];
      let full = Bytes.of_string (read_file path) in
      Bytes.set full 8 '\007';
      with_temp (fun path' ->
          write_file path' (Bytes.to_string full);
          check_bool "future version rejected" true
            (try
               ignore (Reader.open_file path');
               false
             with Reader.Corrupt { block = 0; _ } -> true)))

(* {1 Text v1 interop} *)

let test_text_convert_equivalence =
  qcheck
    (QCheck.Test.make ~name:"text_v1_convert_equivalence" ~count:15
       QCheck.(int_range 1 500)
       (fun seed ->
         let events = ref [] in
         Trace.synthesize_into ~seed ~profile:Apps.redis
           ~duration_ns:(0.2 *. Units.sec)
           (fun ev -> events := ev :: !events);
         let events = List.rev !events in
         with_temp (fun text_path ->
             with_temp (fun bin_path ->
                 (* Write the text v1 form a line at a time. *)
                 let oc = open_out text_path in
                 output_string oc "# wsc-alloc trace v1\n";
                 List.iter
                   (fun ev ->
                     output_string oc (Trace.line_of_event ev);
                     output_char oc '\n')
                   events;
                 close_out oc;
                 (* Streaming-convert text -> binary. *)
                 let copied =
                   Reader.with_file text_path (fun r ->
                       Writer.with_file bin_path (fun w -> Reader.copy_into r w))
                 in
                 copied = List.length events
                 && read_events bin_path = events
                 &&
                 let s_text = Reader.verify text_path
                 and s_bin = Reader.verify bin_path in
                 s_text.Reader.summary_format = `Text_v1
                 && s_bin.Reader.summary_format = `Binary
                 && s_text.Reader.allocations = s_bin.Reader.allocations
                 && s_text.Reader.frees = s_bin.Reader.frees
                 && s_text.Reader.duration_ns = s_bin.Reader.duration_ns))))

let test_text_errors_name_line () =
  with_temp (fun path ->
      write_file path "# wsc-alloc trace v1\na 1 100 0\nf 2 0\n";
      check_bool "semantic error carries line number" true
        (try
           ignore (Reader.verify path);
           false
         with Invalid_argument msg ->
           msg = "Wsc_trace.Reader: line 3: free of unknown id 2"))

(* {1 Streaming scale} *)

let test_million_event_stream () =
  (* A 1M-event trace generated straight into the writer (never
     materialized), streamed back with constant-memory verification.
     The live window stays small, so codec state stays small too. *)
  let n = 500_000 and window = 500 in
  with_temp (fun path ->
      let w = Writer.to_file path in
      for i = 0 to n - 1 do
        Writer.add w (Trace.Alloc { id = i; size = 1 + (i mod 1000); cpu = i mod 64 });
        if i >= window then Writer.add w (Trace.Free { id = i - window; cpu = i mod 64 });
        if i mod 100 = 0 then Writer.add w (Trace.Advance { dt_ns = 1e6 })
      done;
      Writer.close w;
      let expected = n + (n - window) + ((n + 99) / 100) in
      check_bool "over a million events" true (expected >= 1_000_000);
      let s = Reader.verify path in
      check_int "events" expected s.Reader.events;
      check_int "allocations" n s.Reader.allocations;
      check_int "live at end" window s.Reader.live_at_end;
      check_bool "many blocks" true (s.Reader.blocks > 100))

(* {1 Recording and replay equivalence} *)

let profile = Apps.redis
let duration_ns = 0.4 *. Units.sec
let epoch_ns = Units.ms

let direct_run ~seed ~config =
  let machine =
    Machine.create ~seed ~config ~platform:Wsc_hw.Topology.default
      ~jobs:[ profile ] ()
  in
  Machine.run machine ~duration_ns ~epoch_ns;
  match Machine.jobs machine with
  | [ job ] -> (Driver.allocations job.Machine.driver, Backend.heap_stats job.Machine.backend)
  | _ -> Alcotest.fail "expected one job"

let test_record_replay_bit_identical () =
  let seed = 42 in
  with_temp (fun path ->
      (* Record a real driver run (threads, retirement churn and all). *)
      let w = Writer.to_file path in
      let driver =
        Recorder.record_app ~seed ~config:Config.baseline ~epoch_ns ~duration_ns
          ~writer:w profile
      in
      let recorded_allocs = Driver.allocations driver in
      let recorded_stats = Backend.heap_stats (Driver.backend driver) in
      Writer.close w;
      (* The probe is passive: the recorded run equals the direct run. *)
      let direct_allocs, direct_stats = direct_run ~seed ~config:Config.baseline in
      check_int "recording does not perturb the run" direct_allocs recorded_allocs;
      check_bool "recorded heap state = direct heap state" true
        (recorded_stats = direct_stats);
      (* Streaming replay reproduces the allocator state bit-for-bit. *)
      let r = Replay.run_file ~config:Config.baseline path in
      check_int "replay alloc count" recorded_allocs r.Replay.allocations;
      check_bool "replayed heap state = recorded heap state" true
        (r.Replay.final_stats = recorded_stats))

let test_multi_config_replay_deterministic () =
  with_temp (fun path ->
      Writer.with_file path (fun w ->
          ignore
            (Recorder.record_app ~seed:7 ~epoch_ns ~duration_ns:(0.2 *. Units.sec)
               ~writer:w profile));
      let configs =
        [ ("baseline", Config.baseline); ("all_opts", Config.all_optimizations) ]
      in
      let serial = Replay.run_configs ~jobs:1 ~configs path in
      let parallel = Replay.run_configs ~jobs:4 ~configs path in
      check_bool "jobs=4 bit-identical to jobs=1" true (serial = parallel);
      check_bool "arms see the identical workload" true
        ((List.assoc "baseline" serial).Replay.allocations
        = (List.assoc "all_opts" serial).Replay.allocations))

(* {1 Analyzer} *)

let test_analyzer_streaming () =
  with_temp (fun path ->
      Writer.with_file path (fun w ->
          ignore
            (Recorder.record_app ~seed:3 ~epoch_ns ~duration_ns:(0.2 *. Units.sec)
               ~writer:w profile));
      let s = Reader.verify path in
      let r = Analyzer.scan_file path in
      check_int "allocations agree with verify" s.Reader.allocations r.Analyzer.allocations;
      check_int "frees agree with verify" s.Reader.frees r.Analyzer.frees;
      check_int "live at end agrees" s.Reader.live_at_end r.Analyzer.live_objects_at_end;
      check_bool "duration accumulated" true (r.Analyzer.duration_ns > 0.0);
      check_bool "peak >= final live" true
        (r.Analyzer.peak_live_bytes >= r.Analyzer.live_bytes_at_end);
      check_bool "size histogram populated" true
        (Histogram.count r.Analyzer.size_count = r.Analyzer.allocations);
      check_bool "lifetime histogram counts frees" true
        (Histogram.count r.Analyzer.lifetime_count = r.Analyzer.frees);
      check_bool "live curve bounded" true (List.length r.Analyzer.live_curve <= 512);
      check_bool "render produces tables" true
        (String.length (Analyzer.render r) > 200))

let suite =
  [
    ( "trace_stream_codec",
      [
        Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
        test_live_index_lockstep;
        Alcotest.test_case "live index compaction" `Quick test_live_index_compaction;
        test_codec_roundtrip;
        Alcotest.test_case "extreme values roundtrip" `Quick test_codec_roundtrip_extremes;
        Alcotest.test_case "writer rejects invalid" `Quick test_writer_rejects_invalid;
      ] );
    ( "trace_stream_integrity",
      [
        test_truncation_detected;
        test_bitflip_detected;
        Alcotest.test_case "error names block" `Quick test_corrupt_error_names_block;
        Alcotest.test_case "missing EOS detected" `Quick test_missing_eos_detected;
        Alcotest.test_case "future version rejected" `Quick test_unsupported_version_rejected;
        test_text_convert_equivalence;
        Alcotest.test_case "text error lines" `Quick test_text_errors_name_line;
      ] );
    ( "trace_stream_replay",
      [
        Alcotest.test_case "million events stream" `Quick test_million_event_stream;
        Alcotest.test_case "record/replay bit-identical" `Quick
          test_record_replay_bit_identical;
        Alcotest.test_case "multi-config deterministic" `Quick
          test_multi_config_replay_deterministic;
        Alcotest.test_case "analyzer one-pass" `Quick test_analyzer_streaming;
      ] );
  ]
