(* Tests for the config autotuner: genome totality (arbitrary bytes decode
   to configs every backend accepts), Pareto-archive invariants, search
   determinism (seed, jobs, kill/resume), the guide-table build-count
   regression, and golden checks of the committed BENCH artifacts. *)

open Wsc_substrate
module Config = Wsc_tcmalloc.Config
module Backend = Wsc_backend.Backend
module Space = Wsc_tune.Space
module Pareto = Wsc_tune.Pareto
module Tuner = Wsc_tune.Tune
module Replay = Wsc_trace.Replay
module Campaign = Wsc_fleet.Campaign
module Arena = Wsc_fleet.Arena

let qcheck t = QCheck_alcotest.to_alcotest t
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let backend_of_int i =
  List.nth Config.all_backends (abs i mod List.length Config.all_backends)

(* A small shared event stream: enough traffic to separate configs, cheap
   enough to replay a few dozen times. *)
let events =
  lazy
    (let acc = ref [] in
     Wsc_workload.Trace.synthesize_into ~seed:3 ~profile:Wsc_workload.Apps.redis
       ~duration_ns:(0.2 *. Units.sec) (fun ev -> acc := ev :: !acc);
     Array.of_list (List.rev !acc))

(* {1 Genome space} *)

(* Any byte string decodes, via clamp, to a genome whose config every
   backend constructs without complaint — the fuzz-safety contract. *)
let bytes_decode_total =
  QCheck.Test.make ~name:"space_of_bytes_always_yields_accepted_config" ~count:200
    QCheck.(pair small_int string)
    (fun (bk, s) ->
      let backend = backend_of_int bk in
      let g = Space.of_bytes ~backend s in
      Array.length g = Space.num_genes
      && Array.for_all (fun v -> v >= 0) g
      &&
      let config = Space.decode ~backend g in
      let b =
        Backend.create ~config ~topology:Wsc_hw.Topology.default
          ~clock:(Clock.create ()) ()
      in
      let a = Backend.malloc b ~cpu:0 ~size:64 in
      Backend.free b ~cpu:0 a ~size:64;
      true)

(* clamp is total on arbitrary int arrays (any length, any sign) and
   idempotent; inactive genes are frozen at baseline. *)
let clamp_total_idempotent =
  QCheck.Test.make ~name:"space_clamp_total_and_idempotent" ~count:200
    QCheck.(pair small_int (list int))
    (fun (bk, raw) ->
      let backend = backend_of_int bk in
      let g = Space.clamp ~backend (Array.of_list raw) in
      Array.length g = Space.num_genes
      && g = Space.clamp ~backend g
      && Array.for_all
           (fun i ->
             (g.(i) >= 0 && g.(i) < Space.cardinality i)
             && (Space.active backend i || g.(i) = Space.baseline.(i)))
           (Array.init Space.num_genes Fun.id))

let test_baseline_decodes_to_paper_default () =
  List.iter
    (fun backend ->
      let cfg = Space.decode ~backend Space.baseline in
      check_string
        ("baseline genome is the paper default under "
        ^ Config.backend_name backend)
        (Config.describe (Config.with_backend backend Config.baseline))
        (Config.describe cfg))
    Config.all_backends;
  check_string "baseline describes as paper-default" "paper-default"
    (Space.describe Space.baseline)

(* The rival backends only feel the shared reclaim knobs: every
   tcmalloc-specific gene must be inactive under them. *)
let test_rival_gating () =
  List.iter
    (fun backend ->
      let active =
        List.filter (Space.active backend)
          (List.init Space.num_genes Fun.id)
      in
      check_int
        (Config.backend_name backend ^ " searches only the shared knobs")
        2 (List.length active);
      List.iter
        (fun i ->
          check_bool (Space.gene_name i ^ " is shared") true
            (List.mem (Space.gene_name i)
               [ "reclaim_retries"; "reclaim_min_target" ]))
        active)
    [ Config.Rpmalloc; Config.Jemalloc ]

let mutate_moves =
  QCheck.Test.make ~name:"space_mutate_always_changes_an_active_gene" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let g = Space.random ~backend:Config.Tcmalloc rng in
      Space.mutate ~backend:Config.Tcmalloc rng g <> g)

(* {1 Pareto archive} *)

let entry_gen =
  QCheck.Gen.(
    map2
      (fun rss ns ->
        { Pareto.e_genome = [| rss mod 7; ns mod 5 |];
          e_rss = 1 + (rss mod 1_000_000);
          e_ns = float_of_int (1 + (ns mod 1000)) *. 10.0;
        })
      nat nat)

let entries_arb = QCheck.make QCheck.Gen.(list_size (int_range 1 120) entry_gen)

let front_never_dominated =
  QCheck.Test.make ~name:"pareto_front_retains_no_dominated_member" ~count:200
    entries_arb
    (fun es ->
      let t = Pareto.create () in
      List.iter (Pareto.insert t) es;
      let front = Pareto.front t in
      List.for_all
        (fun e ->
          List.for_all (fun o -> o == e || not (Pareto.dominates o e)) front)
        front
      && List.length front > 0)

let insertion_order_independent =
  QCheck.Test.make ~name:"pareto_archive_is_insertion_order_independent" ~count:200
    QCheck.(pair small_int entries_arb)
    (fun (seed, es) ->
      let a = Pareto.create () in
      List.iter (Pareto.insert a) es;
      let b = Pareto.create () in
      let shuffled =
        let rng = Rng.create seed in
        let arr = Array.of_list es in
        for i = Array.length arr - 1 downto 1 do
          let j = Rng.int rng (i + 1) in
          let tmp = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- tmp
        done;
        Array.to_list arr
      in
      List.iter (Pareto.insert b) shuffled;
      Pareto.entries a = Pareto.entries b && Pareto.front a = Pareto.front b)

let insert_idempotent =
  QCheck.Test.make ~name:"pareto_insert_is_idempotent" ~count:100 entries_arb
    (fun es ->
      let a = Pareto.create () in
      List.iter (Pareto.insert a) es;
      let before = Pareto.entries a in
      List.iter (Pareto.insert a) es;
      before = Pareto.entries a)

(* {1 Search determinism} *)

let small_spec strategy =
  {
    Tuner.sp_seed = 9;
    sp_budget = 18;
    sp_batch = 6;
    sp_strategy = strategy;
    sp_backend = Config.Tcmalloc;
  }

let front_fingerprint report =
  String.concat "\n"
    (List.map
       (fun (e : Pareto.entry) ->
         Printf.sprintf "%s %d %.6f" (Space.key e.Pareto.e_genome)
           e.Pareto.e_rss e.Pareto.e_ns)
       report.Tuner.rp_front)

let test_same_seed_same_front () =
  let ev = Lazy.force events in
  List.iter
    (fun strategy ->
      let r1 = Tuner.run ~jobs:1 ~events:ev (small_spec strategy) in
      let r2 = Tuner.run ~jobs:1 ~events:ev (small_spec strategy) in
      check_string
        (Tuner.strategy_name strategy ^ ": same seed, same front")
        (front_fingerprint r1) (front_fingerprint r2);
      check_bool "budget exhausted" true r1.Tuner.rp_finished;
      check_int "evals = budget" 18 r1.Tuner.rp_evals)
    [ Tuner.Sweep; Tuner.Hillclimb; Tuner.Evolve ]

let test_jobs_invariance () =
  let ev = Lazy.force events in
  let r1 = Tuner.run ~jobs:1 ~events:ev (small_spec Tuner.Evolve) in
  let r4 = Tuner.run ~jobs:4 ~events:ev (small_spec Tuner.Evolve) in
  check_string "jobs 4 = jobs 1" (Tuner.to_json r1) (Tuner.to_json r4)

let test_kill_and_resume_equals_uninterrupted () =
  let ev = Lazy.force events in
  let spec = small_spec Tuner.Evolve in
  let straight = Tuner.run ~jobs:2 ~events:ev spec in
  (* Cut after one generation, checkpoint through the persist layer (the
     Marshal round-trip), then resume to budget exhaustion. *)
  let path = Filename.temp_file "tune" ".wsnap" in
  let partial = Tuner.run ~jobs:2 ~max_generations:1 ~events:ev spec in
  check_bool "partial run is unfinished" false partial.Tuner.rp_finished;
  let saved = ref false in
  let (_ : Tuner.report) =
    Tuner.run ~jobs:2 ~max_generations:1
      ~on_generation:(fun ~generation:_ st ->
        Tuner.save_checkpoint st ~path;
        saved := true)
      ~events:ev spec
  in
  check_bool "checkpoint hook fired" true !saved;
  let st = Tuner.load_checkpoint ~path in
  check_int "checkpoint holds one generation" 1 (Tuner.generations st);
  let resumed = Tuner.run ~jobs:2 ~resume:st ~events:ev spec in
  Sys.remove path;
  check_string "kill + resume = uninterrupted"
    (Tuner.to_json straight) (Tuner.to_json resumed);
  (* Resuming against a different spec or trace must be rejected. *)
  (try
     ignore
       (Tuner.run ~jobs:1 ~resume:st ~events:ev
          { spec with Tuner.sp_seed = spec.Tuner.sp_seed + 1 });
     Alcotest.fail "resume against a different spec was accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Tuner.run ~jobs:1 ~resume:st
         ~events:(Array.sub ev 0 (Array.length ev / 2))
         spec);
    Alcotest.fail "resume against a different trace was accepted"
  with Invalid_argument _ -> ()

let test_best_member_comes_from_front () =
  let ev = Lazy.force events in
  let r = Tuner.run ~jobs:2 ~events:ev (small_spec Tuner.Evolve) in
  check_bool "best is a front member" true
    (List.exists (fun e -> e = r.Tuner.rp_best) r.Tuner.rp_front);
  if r.Tuner.rp_dominates then begin
    check_bool "dominating best beats baseline RSS" true
      (r.Tuner.rp_best.Pareto.e_rss < r.Tuner.rp_baseline.Pareto.e_rss);
    check_bool "dominating best is no slower" true
      (r.Tuner.rp_best.Pareto.e_ns <= r.Tuner.rp_baseline.Pareto.e_ns)
  end

(* {1 Guide-table construction hoisting} *)

(* The replay fan-out shares one preloaded event array and builds no Dist
   guide tables at all; a campaign builds exactly one Zipf popularity
   sampler per run, however many machines it spins up. *)
let test_replay_fanout_builds_no_tables () =
  let ev = Lazy.force events in
  let configs =
    [ ("baseline", Config.baseline);
      ("small-cache", { Config.baseline with Config.per_cpu_cache_bytes = Units.mib });
    ]
  in
  let before = Dist.table_builds () in
  let results = Replay.run_configs_preloaded ~jobs:2 ~configs ev in
  check_int "replay fan-out builds zero guide tables" 0
    (Dist.table_builds () - before);
  check_int "both arms replayed" 2 (List.length results)

let campaign_build_delta machines =
  let spec =
    {
      Campaign.default_spec with
      Campaign.seed = 5;
      machines;
      duration_ns = 0.05 *. Units.sec;
      shard_size = 4;
    }
  in
  let before = Dist.table_builds () in
  let (_ : Campaign.result) = Campaign.run ~jobs:2 spec in
  Dist.table_builds () - before

let test_campaign_builds_one_sampler () =
  let d3 = campaign_build_delta 3 in
  let d6 = campaign_build_delta 6 in
  check_int "guide-table builds independent of machine count" d3 d6;
  check_int "campaign builds exactly one popularity sampler" 1 d3

(* {1 Golden checks against the committed artifacts} *)

(* `dune runtest` runs in _build/default/test with the committed files
   declared as deps one directory up; a hand launch from the repo root
   finds them in place. *)
let repo_file name =
  List.find_opt Sys.file_exists [ Filename.concat ".." name; name ]

let committed name =
  match repo_file name with
  | None -> None
  | Some path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* Recompute two arena cells from a fresh process: their deterministic
   field prefixes must appear verbatim in the committed BENCH_arena.json. *)
let test_arena_cells_match_committed () =
  match committed "BENCH_arena.json" with
  | None -> Alcotest.skip ()
  | Some text ->
    let cells =
      [
        Arena.run_cell ~kind:Config.Tcmalloc ~seed:42 Arena.Churn;
        Arena.run_cell ~kind:Config.Rpmalloc ~seed:42 Arena.Flood;
      ]
    in
    (match Arena.check_committed ~committed:text { Arena.seed = 42; cells } with
    | [] -> ()
    | msgs -> Alcotest.fail (String.concat "; " msgs))

(* Replaying the pinned trace under the paper default must reproduce the
   baseline objectives recorded in the committed BENCH_tune.json. *)
let test_tune_baseline_matches_committed () =
  match committed "BENCH_tune.json" with
  | None -> Alcotest.skip ()
  | Some text ->
    let trace =
      match repo_file "bench/tune_pinned.wtrace" with
      | Some p -> p
      | None -> Alcotest.fail "pinned trace bench/tune_pinned.wtrace not found"
    in
    let ev = Replay.preload trace in
    let r = Replay.run_preloaded ~config:Config.baseline ev in
    let line =
      Printf.sprintf "\"rss_bytes\":%d,\"malloc_ms\":%.6f"
        r.Replay.peak_rss_bytes
        (r.Replay.malloc_ns /. 1e6)
    in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check_bool
      ("committed BENCH_tune.json carries the recomputed baseline " ^ line)
      true (contains text line)

let suite =
  [
    ( "tune.space",
      [
        qcheck bytes_decode_total;
        qcheck clamp_total_idempotent;
        qcheck mutate_moves;
        Alcotest.test_case "baseline_decodes_to_paper_default" `Quick
          test_baseline_decodes_to_paper_default;
        Alcotest.test_case "rival_backends_gate_to_shared_knobs" `Quick
          test_rival_gating;
      ] );
    ( "tune.pareto",
      [
        qcheck front_never_dominated;
        qcheck insertion_order_independent;
        qcheck insert_idempotent;
      ] );
    ( "tune.search",
      [
        Alcotest.test_case "same_seed_same_front" `Quick test_same_seed_same_front;
        Alcotest.test_case "jobs4_equals_jobs1" `Quick test_jobs_invariance;
        Alcotest.test_case "kill_and_resume_equals_uninterrupted" `Quick
          test_kill_and_resume_equals_uninterrupted;
        Alcotest.test_case "best_comes_from_front" `Quick
          test_best_member_comes_from_front;
      ] );
    ( "tune.dist-hoisting",
      [
        Alcotest.test_case "replay_fanout_builds_no_tables" `Quick
          test_replay_fanout_builds_no_tables;
        Alcotest.test_case "campaign_builds_one_sampler" `Quick
          test_campaign_builds_one_sampler;
      ] );
    ( "tune.golden",
      [
        Alcotest.test_case "arena_cells_match_committed" `Quick
          test_arena_cells_match_committed;
        Alcotest.test_case "tune_baseline_matches_committed" `Quick
          test_tune_baseline_matches_committed;
      ] );
  ]
