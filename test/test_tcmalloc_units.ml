(* Unit tests for the structural pieces of wsc_tcmalloc: size classes,
   spans, the page map, the pageheap components, the sampler and telemetry. *)

open Wsc_tcmalloc
open Wsc_substrate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual
let page = Units.tcmalloc_page_size
let hugepage = Units.hugepage_size

(* {1 Size_class} *)

let test_size_class_count () =
  (* Paper Sec. 2.1: 80-90 size classes. *)
  check_bool "80-90 classes" true (Size_class.count >= 80 && Size_class.count <= 90)

let test_size_class_bounds () =
  check_int "smallest" 8 (Size_class.size 0);
  check_int "largest" (256 * 1024) (Size_class.size (Size_class.count - 1));
  check_int "max_size" (256 * 1024) Size_class.max_size

let test_size_class_monotone () =
  for i = 1 to Size_class.count - 1 do
    if Size_class.size i <= Size_class.size (i - 1) then
      Alcotest.failf "class sizes not strictly increasing at %d" i
  done

let test_size_class_of_size () =
  Alcotest.(check (option int)) "size 1 -> class 0" (Some 0) (Size_class.of_size 1);
  Alcotest.(check (option int)) "size 8 -> class 0" (Some 0) (Size_class.of_size 8);
  Alcotest.(check (option int)) "size 9 -> class 1" (Some 1) (Size_class.of_size 9);
  Alcotest.(check (option int)) "over max -> None" None
    (Size_class.of_size (Size_class.max_size + 1))

let test_size_class_of_size_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"of_size_returns_smallest_fitting_class" ~count:500
       QCheck.(int_range 1 (256 * 1024))
       (fun n ->
         match Size_class.of_size n with
         | None -> false
         | Some cls ->
           Size_class.size cls >= n && (cls = 0 || Size_class.size (cls - 1) < n)))

let test_size_class_capacity () =
  Array.iter
    (fun info ->
      let expected = info.Size_class.pages * page / info.Size_class.size in
      if info.Size_class.capacity <> expected then
        Alcotest.failf "capacity mismatch for size %d" info.Size_class.size;
      if info.Size_class.capacity < 1 then Alcotest.fail "empty span")
    Size_class.all

let test_size_class_waste_bound () =
  Array.iter
    (fun info ->
      let span_bytes = info.Size_class.pages * page in
      let waste = span_bytes - (info.Size_class.capacity * info.Size_class.size) in
      if float_of_int waste /. float_of_int span_bytes > 0.125 then
        Alcotest.failf "tail waste > 12.5%% for size %d" info.Size_class.size)
    Size_class.all

let test_size_class_batch () =
  Array.iter
    (fun info ->
      if info.Size_class.batch < 2 || info.Size_class.batch > 32 then
        Alcotest.failf "batch out of [2,32] for size %d" info.Size_class.size)
    Size_class.all;
  check_int "8B moves 32" 32 (Size_class.batch 0)

let test_size_class_internal_slack () =
  check_int "exact fit" 0 (Size_class.internal_slack ~requested:8);
  check_int "9 -> 16" 7 (Size_class.internal_slack ~requested:9);
  check_int "large has no class slack" 0
    (Size_class.internal_slack ~requested:(1024 * 1024))

(* {1 Span} *)

let make_span ?(cls = 0) () = Span.create_small ~id:1 ~base:0 ~size_class:cls ~birth_time:0.0

let test_span_fresh () =
  let s = make_span () in
  check_int "fully free" (Size_class.capacity 0) (Span.free_objects s);
  check_bool "idle" true (Span.is_idle s);
  check_bool "not exhausted" false (Span.is_exhausted s)

let test_span_pop_push_roundtrip () =
  let s = make_span () in
  let a = Span.pop_object s in
  check_bool "address in span" true (Span.contains s a);
  check_int "one outstanding" 1 s.Span.outstanding;
  Span.push_object s a;
  check_bool "idle again" true (Span.is_idle s)

let test_span_addresses_distinct () =
  let s = make_span ~cls:3 () in
  let n = Size_class.capacity 3 in
  let addrs = Span.pop_objects s ~n in
  check_int "all popped" n (List.length addrs);
  check_int "distinct" n (List.length (List.sort_uniq compare addrs));
  check_bool "exhausted" true (Span.is_exhausted s);
  List.iter
    (fun a ->
      if (a - s.Span.base) mod Size_class.size 3 <> 0 then
        Alcotest.fail "misaligned object")
    addrs

let test_span_double_free () =
  let s = make_span () in
  let a = Span.pop_object s in
  Span.push_object s a;
  Alcotest.check_raises "double free" (Invalid_argument "Span.push_object: double free")
    (fun () -> Span.push_object s a)

let test_span_wild_free () =
  let s = make_span () in
  Alcotest.check_raises "outside span"
    (Invalid_argument "Span.push_object: address outside span") (fun () ->
      Span.push_object s 123_456_789)

let test_span_misaligned_free () =
  let s = make_span ~cls:2 () in
  let a = Span.pop_object s in
  Alcotest.check_raises "misaligned"
    (Invalid_argument "Span.push_object: misaligned object") (fun () ->
      Span.push_object s (a + 1))

let test_span_large () =
  let s = Span.create_large ~id:2 ~base:hugepage ~pages:300 ~birth_time:0.0 in
  check_bool "large" true (Span.is_large s);
  check_int "bytes" (300 * page) (Span.span_bytes s);
  let a = Span.pop_object s in
  check_int "base address" hugepage a;
  check_bool "not idle" false (Span.is_idle s);
  Span.push_object s a;
  check_bool "idle" true (Span.is_idle s)

let test_span_fragmented_bytes () =
  let s = make_span ~cls:5 () in
  let size = Size_class.size 5 in
  let cap = Size_class.capacity 5 in
  check_int "all free" (cap * size) (Span.fragmented_bytes s);
  ignore (Span.pop_objects s ~n:3);
  check_int "after 3 pops" ((cap - 3) * size) (Span.fragmented_bytes s)

let test_span_invariant_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"span_outstanding_plus_free_equals_capacity" ~count:200
       QCheck.(list (int_range 0 50))
       (fun ops ->
         let s = Span.create_small ~id:9 ~base:0 ~size_class:10 ~birth_time:0.0 in
         let held = ref [] in
         List.iter
           (fun op ->
             if op mod 2 = 0 && not (Span.is_exhausted s) then
               held := Span.pop_object s :: !held
             else begin
               match !held with
               | a :: rest ->
                 Span.push_object s a;
                 held := rest
               | [] -> ()
             end)
           ops;
         Span.free_objects s + s.Span.outstanding = s.Span.capacity
         && List.length !held = s.Span.outstanding))

(* {1 Page_map} *)

let test_page_map_register_lookup () =
  let pm = Page_map.create () in
  let s = Span.create_small ~id:1 ~base:(10 * page) ~size_class:20 ~birth_time:0.0 in
  Page_map.register pm s;
  (match Page_map.lookup pm (10 * page) with
  | Some found -> check_int "same span" 1 found.Span.id
  | None -> Alcotest.fail "lookup failed");
  (* Any address inside the span resolves. *)
  (match Page_map.lookup pm ((10 * page) + 100) with
  | Some found -> check_int "mid-span" 1 found.Span.id
  | None -> Alcotest.fail "mid-span lookup failed");
  Alcotest.(check bool) "outside is None" true (Page_map.lookup pm 0 = None)

let test_page_map_overlap_rejected () =
  let pm = Page_map.create () in
  let s1 = Span.create_small ~id:1 ~base:0 ~size_class:20 ~birth_time:0.0 in
  Page_map.register pm s1;
  let s2 = Span.create_small ~id:2 ~base:0 ~size_class:20 ~birth_time:0.0 in
  Alcotest.check_raises "overlap" (Invalid_argument "Page_map.register: page already owned")
    (fun () -> Page_map.register pm s2)

let test_page_map_unregister () =
  let pm = Page_map.create () in
  let s = Span.create_small ~id:1 ~base:0 ~size_class:20 ~birth_time:0.0 in
  Page_map.register pm s;
  check_int "one span" 1 (Page_map.span_count pm);
  Page_map.unregister pm s;
  check_int "zero spans" 0 (Page_map.span_count pm);
  Alcotest.(check bool) "gone" true (Page_map.lookup pm 0 = None)

(* {1 Hugepage_filler} *)

let test_filler_allocates_from_added () =
  let f = Hugepage_filler.create () in
  Alcotest.(check bool) "empty filler" true
    (Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:4 = None);
  Hugepage_filler.add_hugepage f ~base:0 ~kind:Hugepage_filler.Long_lived ~donated:false
    ~t_used:0;
  (match Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:4 with
  | Some a -> check_int "first run at base" 0 a
  | None -> Alcotest.fail "allocation failed");
  check_int "used" 4 (Hugepage_filler.used_pages f);
  check_int "free" 252 (Hugepage_filler.free_pages f)

let test_filler_densest_first () =
  let f = Hugepage_filler.create () in
  Hugepage_filler.add_hugepage f ~base:0 ~kind:Hugepage_filler.Long_lived ~donated:false
    ~t_used:0;
  Hugepage_filler.add_hugepage f ~base:hugepage ~kind:Hugepage_filler.Long_lived
    ~donated:false ~t_used:0;
  (* Fill hugepage 0 more densely. *)
  let a1 = Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:200 in
  check_bool "first alloc" true (a1 <> None);
  let a2 = Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:10 in
  check_bool "second alloc" true (a2 <> None);
  (* The 10-page run must land in the denser hugepage (same as the 200). *)
  (match (a1, a2) with
  | Some x, Some y ->
    check_int "same hugepage" (x / hugepage) (y / hugepage)
  | _ -> Alcotest.fail "allocations failed")

let test_filler_set_isolation () =
  let f = Hugepage_filler.create () in
  Hugepage_filler.add_hugepage f ~base:0 ~kind:Hugepage_filler.Short_lived ~donated:false
    ~t_used:0;
  (* A long-lived request cannot be served from the short-lived set. *)
  Alcotest.(check bool) "set isolation" true
    (Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:1 = None);
  Alcotest.(check bool) "short works" true
    (Hugepage_filler.allocate f ~kind:Hugepage_filler.Short_lived ~pages:1 <> None)

let test_filler_free_and_empty () =
  let f = Hugepage_filler.create () in
  Hugepage_filler.add_hugepage f ~base:0 ~kind:Hugepage_filler.Long_lived ~donated:false
    ~t_used:0;
  let a = Option.get (Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:8) in
  (match Hugepage_filler.free f a ~pages:8 with
  | Hugepage_filler.Hugepage_empty base ->
    check_int "empty hugepage returned" 0 base;
    check_int "untracked" 0 (Hugepage_filler.tracked_hugepages f)
  | Hugepage_filler.Still_tracked -> Alcotest.fail "expected empty hugepage")

let test_filler_partial_free () =
  let f = Hugepage_filler.create () in
  Hugepage_filler.add_hugepage f ~base:0 ~kind:Hugepage_filler.Long_lived ~donated:false
    ~t_used:0;
  let a = Option.get (Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:8) in
  let b = Option.get (Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:8) in
  (match Hugepage_filler.free f a ~pages:8 with
  | Hugepage_filler.Still_tracked -> ()
  | Hugepage_filler.Hugepage_empty _ -> Alcotest.fail "should still be tracked");
  check_int "8 used" 8 (Hugepage_filler.used_pages f);
  (match Hugepage_filler.free f b ~pages:8 with
  | Hugepage_filler.Hugepage_empty _ -> ()
  | Hugepage_filler.Still_tracked -> Alcotest.fail "should now be empty")

let test_filler_double_free () =
  let f = Hugepage_filler.create () in
  Hugepage_filler.add_hugepage f ~base:0 ~kind:Hugepage_filler.Long_lived ~donated:false
    ~t_used:0;
  let a = Option.get (Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:4) in
  (* Keep a second run live so the hugepage stays tracked after the first
     free; the second free of [a] must then be detected as a double free. *)
  let _b = Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:4 in
  ignore (Hugepage_filler.free f a ~pages:4);
  Alcotest.check_raises "double free" (Invalid_argument "Hugepage_filler.free: page not in use")
    (fun () -> ignore (Hugepage_filler.free f a ~pages:4))

let test_filler_donated_tail () =
  let f = Hugepage_filler.create () in
  Hugepage_filler.add_hugepage f ~base:0 ~kind:Hugepage_filler.Long_lived ~donated:true
    ~t_used:64;
  check_int "tail used" 64 (Hugepage_filler.used_pages f);
  check_int "slack free" 192 (Hugepage_filler.free_pages f);
  (* Slack is allocatable. *)
  (match Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:100 with
  | Some a -> check_int "slack run after tail" (64 * page) a
  | None -> Alcotest.fail "slack not allocatable")

let test_filler_subrelease () =
  let vm = Wsc_os.Vm.create () in
  let base = Wsc_os.Vm.mmap vm ~hugepages:1 in
  let f = Hugepage_filler.create () in
  Hugepage_filler.add_hugepage f ~base ~kind:Hugepage_filler.Long_lived ~donated:false
    ~t_used:0;
  ignore (Option.get (Hugepage_filler.allocate f ~kind:Hugepage_filler.Long_lived ~pages:16));
  let released = Hugepage_filler.subrelease f vm ~max_pages:100 in
  check_int "released 100" 100 released;
  check_int "released accounted" 100 (Hugepage_filler.released_pages f);
  check_int "free shrank" (256 - 16 - 100) (Hugepage_filler.free_pages f);
  Alcotest.(check bool) "THP broken" false (Wsc_os.Vm.is_huge_backed vm base)

(* {1 Hugepage_region} *)

let test_region_allocate_free () =
  let vm = Wsc_os.Vm.create () in
  let r = Hugepage_region.create vm ~hugepages_per_region:4 in
  let a = Hugepage_region.allocate r ~pages:300 in
  check_int "one region" 1 (Hugepage_region.regions r);
  check_int "used" 300 (Hugepage_region.used_pages r);
  let b = Hugepage_region.allocate r ~pages:300 in
  check_int "packs same region" 1 (Hugepage_region.regions r);
  check_bool "disjoint" true (b >= a + (300 * page) || a >= b + (300 * page));
  Hugepage_region.free r a ~pages:300;
  Hugepage_region.free r b ~pages:300;
  check_int "empty region unmapped" 0 (Hugepage_region.regions r);
  check_int "vm clean" 0 (Wsc_os.Vm.mapped_bytes vm)

let test_region_overflow_to_new_region () =
  let vm = Wsc_os.Vm.create () in
  let r = Hugepage_region.create vm ~hugepages_per_region:2 in
  ignore (Hugepage_region.allocate r ~pages:400);
  ignore (Hugepage_region.allocate r ~pages:400);
  check_int "second region created" 2 (Hugepage_region.regions r)

let test_region_bad_free () =
  let vm = Wsc_os.Vm.create () in
  let r = Hugepage_region.create vm ~hugepages_per_region:2 in
  let a = Hugepage_region.allocate r ~pages:10 in
  Alcotest.check_raises "free of free pages"
    (Invalid_argument "Hugepage_region.free: page not in use") (fun () ->
      Hugepage_region.free r (a + (10 * page)) ~pages:10)

(* {1 Hugepage_cache} *)

let test_cache_reuse () =
  let vm = Wsc_os.Vm.create () in
  let c = Hugepage_cache.create vm in
  let g1 = Hugepage_cache.allocate c ~hugepages:4 in
  check_bool "first is fresh" true g1.Hugepage_cache.fresh;
  Hugepage_cache.free c g1.Hugepage_cache.base ~hugepages:4;
  check_int "cached" 4 (Hugepage_cache.cached_hugepages c);
  let g2 = Hugepage_cache.allocate c ~hugepages:2 in
  check_bool "reused" false g2.Hugepage_cache.fresh;
  check_int "remaining cached" 2 (Hugepage_cache.cached_hugepages c)

let test_cache_split () =
  let vm = Wsc_os.Vm.create () in
  let c = Hugepage_cache.create vm in
  let g = Hugepage_cache.allocate c ~hugepages:4 in
  Hugepage_cache.free c g.Hugepage_cache.base ~hugepages:4;
  let g1 = Hugepage_cache.allocate c ~hugepages:1 in
  let g2 = Hugepage_cache.allocate c ~hugepages:3 in
  check_bool "both reused" true
    ((not g1.Hugepage_cache.fresh) && not g2.Hugepage_cache.fresh);
  check_int "drained" 0 (Hugepage_cache.cached_hugepages c)

let test_cache_release () =
  let vm = Wsc_os.Vm.create () in
  let c = Hugepage_cache.create vm in
  let g = Hugepage_cache.allocate c ~hugepages:8 in
  Hugepage_cache.free c g.Hugepage_cache.base ~hugepages:8;
  (* The first release only establishes the low watermark (demand-based
     release: nothing is provably surplus yet). *)
  let released = Hugepage_cache.release c ~max_hugepages:8 in
  check_int "first release arms the watermark" 0 released;
  (* Runs are released whole; an 8-run exceeds a budget of 5. *)
  let released = Hugepage_cache.release c ~max_hugepages:5 in
  check_int "whole runs only" 0 released;
  let released = Hugepage_cache.release c ~max_hugepages:8 in
  check_int "released all" 8 released;
  check_int "vm unmapped" 0 (Wsc_os.Vm.mapped_bytes vm)

(* {1 Sampler} *)

let test_sampler_period () =
  let s = Sampler.create ~period_bytes:1000 in
  let sampled = ref 0 in
  for i = 1 to 100 do
    if Sampler.on_alloc s i ~size:100 ~now:0.0 then incr sampled
  done;
  (* 100 allocs x 100 B = 10_000 B -> exactly 10 samples. *)
  check_int "one sample per period" 10 !sampled

let test_sampler_lifetime () =
  let s = Sampler.create ~period_bytes:100 in
  check_bool "sampled" true (Sampler.on_alloc s 42 ~size:150 ~now:10.0);
  (match Sampler.on_free s 42 ~now:35.0 with
  | Some (size, lifetime) ->
    check_int "size" 150 size;
    check_close "lifetime" 1e-9 25.0 lifetime
  | None -> Alcotest.fail "expected sample");
  Alcotest.(check bool) "second free not tracked" true (Sampler.on_free s 42 ~now:40.0 = None)

let test_sampler_untracked_free () =
  let s = Sampler.create ~period_bytes:1_000_000 in
  Alcotest.(check bool) "not sampled" true (Sampler.on_free s 7 ~now:0.0 = None)

let test_sampler_huge_alloc () =
  let s = Sampler.create ~period_bytes:1000 in
  check_bool "giant alloc sampled" true (Sampler.on_alloc s 1 ~size:1_000_000 ~now:0.0);
  (* Counter must stay sane afterwards. *)
  let sampled = ref 0 in
  for i = 2 to 101 do
    if Sampler.on_alloc s i ~size:100 ~now:0.0 then incr sampled
  done;
  check_bool "subsequent sampling plausible" true (!sampled >= 8 && !sampled <= 12)

(* {1 Telemetry} *)

let test_telemetry_charges () =
  let t = Telemetry.create () in
  Telemetry.charge_tier t Wsc_hw.Cost_model.Per_cpu_cache 3.1;
  Telemetry.charge_tier t Wsc_hw.Cost_model.Per_cpu_cache 3.1;
  Telemetry.charge_prefetch t 0.9;
  check_close "tier ns" 1e-9 6.2 (Telemetry.tier_ns t Wsc_hw.Cost_model.Per_cpu_cache);
  check_close "total" 1e-9 7.1 (Telemetry.total_malloc_ns t)

let test_telemetry_live_bytes () =
  let t = Telemetry.create () in
  Telemetry.record_alloc t ~requested:100 ~rounded:112;
  Telemetry.record_alloc t ~requested:50 ~rounded:56;
  check_int "live requested" 150 (Telemetry.live_requested_bytes t);
  check_int "internal frag" 18 (Telemetry.internal_fragmentation_bytes t);
  Telemetry.record_free t ~requested:100 ~rounded:112;
  check_int "after free" 50 (Telemetry.live_requested_bytes t);
  check_int "counts" 2 (Telemetry.alloc_count t);
  check_int "frees" 1 (Telemetry.free_count t)

let test_telemetry_lifetime_fractions () =
  let t = Telemetry.create () in
  (* 512 B objects: 3 short-lived, 1 long-lived. *)
  Telemetry.record_lifetime t ~size:512 ~lifetime_ns:1e4;
  Telemetry.record_lifetime t ~size:512 ~lifetime_ns:1e5;
  Telemetry.record_lifetime t ~size:512 ~lifetime_ns:1e4;
  Telemetry.record_lifetime t ~size:512 ~lifetime_ns:1e12;
  check_close "3/4 under 1ms" 1e-9 0.75
    (Telemetry.lifetime_fraction t ~size_min:1 ~size_max:1024 ~lifetime_below_ns:1e6);
  check_close "none in other range" 1e-9 0.0
    (Telemetry.lifetime_fraction t ~size_min:1_000_000 ~size_max:2_000_000
       ~lifetime_below_ns:1e6)

let test_telemetry_vcpu_misses () =
  let t = Telemetry.create () in
  Telemetry.record_front_end_miss t ~vcpu:0;
  Telemetry.record_front_end_miss t ~vcpu:0;
  Telemetry.record_front_end_miss t ~vcpu:19;
  let misses = Telemetry.front_end_misses t in
  check_int "vcpu0" 2 misses.(0);
  check_int "vcpu19" 1 misses.(19)

let test_telemetry_reuse () =
  let t = Telemetry.create () in
  Telemetry.record_object_reuse t ~remote:true;
  Telemetry.record_object_reuse t ~remote:false;
  Telemetry.record_object_reuse t ~remote:false;
  Telemetry.record_object_reuse t ~remote:false;
  check_close "remote fraction" 1e-9 0.25 (Telemetry.remote_reuse_fraction t)

let suite =
  [
    ( "size_class",
      [
        Alcotest.test_case "count in 80-90" `Quick test_size_class_count;
        Alcotest.test_case "bounds" `Quick test_size_class_bounds;
        Alcotest.test_case "monotone" `Quick test_size_class_monotone;
        Alcotest.test_case "of_size" `Quick test_size_class_of_size;
        test_size_class_of_size_roundtrip;
        Alcotest.test_case "capacity" `Quick test_size_class_capacity;
        Alcotest.test_case "waste bound" `Quick test_size_class_waste_bound;
        Alcotest.test_case "batch" `Quick test_size_class_batch;
        Alcotest.test_case "internal slack" `Quick test_size_class_internal_slack;
      ] );
    ( "span",
      [
        Alcotest.test_case "fresh" `Quick test_span_fresh;
        Alcotest.test_case "pop/push roundtrip" `Quick test_span_pop_push_roundtrip;
        Alcotest.test_case "distinct addresses" `Quick test_span_addresses_distinct;
        Alcotest.test_case "double free" `Quick test_span_double_free;
        Alcotest.test_case "wild free" `Quick test_span_wild_free;
        Alcotest.test_case "misaligned free" `Quick test_span_misaligned_free;
        Alcotest.test_case "large span" `Quick test_span_large;
        Alcotest.test_case "fragmented bytes" `Quick test_span_fragmented_bytes;
        test_span_invariant_property;
      ] );
    ( "page_map",
      [
        Alcotest.test_case "register/lookup" `Quick test_page_map_register_lookup;
        Alcotest.test_case "overlap rejected" `Quick test_page_map_overlap_rejected;
        Alcotest.test_case "unregister" `Quick test_page_map_unregister;
      ] );
    ( "hugepage_filler",
      [
        Alcotest.test_case "allocate from added" `Quick test_filler_allocates_from_added;
        Alcotest.test_case "densest first" `Quick test_filler_densest_first;
        Alcotest.test_case "set isolation" `Quick test_filler_set_isolation;
        Alcotest.test_case "free to empty" `Quick test_filler_free_and_empty;
        Alcotest.test_case "partial free" `Quick test_filler_partial_free;
        Alcotest.test_case "double free" `Quick test_filler_double_free;
        Alcotest.test_case "donated tail" `Quick test_filler_donated_tail;
        Alcotest.test_case "subrelease" `Quick test_filler_subrelease;
      ] );
    ( "hugepage_region",
      [
        Alcotest.test_case "allocate/free" `Quick test_region_allocate_free;
        Alcotest.test_case "overflow to new region" `Quick test_region_overflow_to_new_region;
        Alcotest.test_case "bad free" `Quick test_region_bad_free;
      ] );
    ( "hugepage_cache",
      [
        Alcotest.test_case "reuse" `Quick test_cache_reuse;
        Alcotest.test_case "split" `Quick test_cache_split;
        Alcotest.test_case "release" `Quick test_cache_release;
      ] );
    ( "sampler",
      [
        Alcotest.test_case "period" `Quick test_sampler_period;
        Alcotest.test_case "lifetime" `Quick test_sampler_lifetime;
        Alcotest.test_case "untracked free" `Quick test_sampler_untracked_free;
        Alcotest.test_case "huge alloc" `Quick test_sampler_huge_alloc;
      ] );
    ( "telemetry",
      [
        Alcotest.test_case "charges" `Quick test_telemetry_charges;
        Alcotest.test_case "live bytes" `Quick test_telemetry_live_bytes;
        Alcotest.test_case "lifetime fractions" `Quick test_telemetry_lifetime_fractions;
        Alcotest.test_case "vcpu misses" `Quick test_telemetry_vcpu_misses;
        Alcotest.test_case "reuse" `Quick test_telemetry_reuse;
      ] );
  ]
