(* Tests for the allocation path of wsc_tcmalloc: per-CPU caches, transfer
   caches (legacy + NUCA), central free lists (baseline + prioritized), the
   pageheap facade and the Malloc integration. *)

open Wsc_tcmalloc
open Wsc_substrate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let topo_uni = Wsc_hw.Topology.uniprocessor
let topo_chiplet = Wsc_hw.Topology.default

(* {1 Per_cpu_cache} *)

let test_pcc_miss_then_hit () =
  let pcc = Per_cpu_cache.create () in
  check_int "empty misses" (-1) (Per_cpu_cache.alloc pcc ~vcpu:0 ~cls:0);
  check_bool "dealloc caches object" true (Per_cpu_cache.dealloc pcc ~vcpu:0 ~cls:0 4096);
  check_int "hit returns it" 4096 (Per_cpu_cache.alloc pcc ~vcpu:0 ~cls:0);
  let misses = Per_cpu_cache.misses_per_vcpu pcc in
  check_int "one miss recorded" 1 misses.(0)

let test_pcc_isolation_between_vcpus () =
  let pcc = Per_cpu_cache.create () in
  ignore (Per_cpu_cache.dealloc pcc ~vcpu:0 ~cls:0 1);
  check_int "vcpu1 cannot see vcpu0 objects" (-1) (Per_cpu_cache.alloc pcc ~vcpu:1 ~cls:0)

let test_pcc_capacity_bound () =
  (* Per-class cap: with a 1024 B budget, one class may hold at most half
     the budget: 64 eight-byte objects. *)
  let config = { Config.baseline with Config.per_cpu_cache_bytes = 1024 } in
  let pcc = Per_cpu_cache.create ~config () in
  for i = 1 to 64 do
    if not (Per_cpu_cache.dealloc pcc ~vcpu:0 ~cls:0 i) then
      Alcotest.failf "dealloc %d rejected below the class cap" i
  done;
  check_bool "65th rejected by class cap" false (Per_cpu_cache.dealloc pcc ~vcpu:0 ~cls:0 65);
  check_int "class holds half the budget" 512 (Per_cpu_cache.used_bytes pcc ~vcpu:0);
  (* Byte budget: a second class can fill the rest, then overflows. *)
  for i = 1 to 32 do
    if not (Per_cpu_cache.dealloc pcc ~vcpu:0 ~cls:1 (1000 + i)) then
      Alcotest.failf "class-1 dealloc %d rejected below budget" i
  done;
  check_bool "byte budget binds across classes" false
    (Per_cpu_cache.dealloc pcc ~vcpu:0 ~cls:1 2000);
  check_int "used bytes at capacity" 1024 (Per_cpu_cache.used_bytes pcc ~vcpu:0)

let test_pcc_fill_and_flush () =
  let pcc = Per_cpu_cache.create () in
  let rejected = Per_cpu_cache.fill pcc ~vcpu:0 ~cls:0 ~addrs:[ 1; 2; 3; 4 ] in
  check_int "all fit" 0 (List.length rejected);
  let batch = Per_cpu_cache.flush_batch pcc ~vcpu:0 ~cls:0 ~n:3 in
  check_int "flushed three" 3 (List.length batch);
  check_int "one left" 8 (Per_cpu_cache.used_bytes pcc ~vcpu:0)

let test_pcc_resize_moves_capacity () =
  let config =
    {
      (Config.with_dynamic_per_cpu true Config.baseline) with
      Config.resize_step_bytes = 256 * 1024;
      (* Only the single hottest cache grows, so the other can be a victim. *)
      Config.resize_grow_candidates = 1;
    }
  in
  let pcc = Per_cpu_cache.create ~config () in
  (* Populate vcpus 0 and 1; make vcpu0 miss a lot. *)
  ignore (Per_cpu_cache.alloc pcc ~vcpu:1 ~cls:0);
  for _ = 1 to 100 do
    ignore (Per_cpu_cache.alloc pcc ~vcpu:0 ~cls:0)
  done;
  let cap0_before = Per_cpu_cache.capacity_bytes pcc ~vcpu:0 in
  let cap1_before = Per_cpu_cache.capacity_bytes pcc ~vcpu:1 in
  let evicted = ref [] in
  Per_cpu_cache.resize pcc ~evict:(fun ~vcpu:_ ~cls:_ ~addrs -> evicted := addrs @ !evicted);
  check_int "vcpu0 grew" (cap0_before + (256 * 1024)) (Per_cpu_cache.capacity_bytes pcc ~vcpu:0);
  check_int "vcpu1 shrank" (cap1_before - (256 * 1024))
    (Per_cpu_cache.capacity_bytes pcc ~vcpu:1);
  check_int "total conserved" (cap0_before + cap1_before)
    (Per_cpu_cache.capacity_bytes pcc ~vcpu:0 + Per_cpu_cache.capacity_bytes pcc ~vcpu:1)

let test_pcc_resize_evicts_large_classes_first () =
  let config =
    {
      (Config.with_dynamic_per_cpu true Config.baseline) with
      Config.per_cpu_cache_bytes = 512 * 1024;
      Config.resize_step_bytes = 256 * 1024;
      Config.resize_grow_candidates = 1;
    }
  in
  let pcc = Per_cpu_cache.create ~config () in
  (* vcpu1 holds one big object and some small ones; shrinking must evict
     the big class first. *)
  let big_cls = Size_class.count - 1 in
  ignore (Per_cpu_cache.fill pcc ~vcpu:1 ~cls:big_cls ~addrs:[ 1000 ]);
  ignore (Per_cpu_cache.fill pcc ~vcpu:1 ~cls:0 ~addrs:[ 1; 2; 3 ]);
  for _ = 1 to 10 do
    ignore (Per_cpu_cache.alloc pcc ~vcpu:0 ~cls:0)
  done;
  let evicted_classes = ref [] in
  Per_cpu_cache.resize pcc ~evict:(fun ~vcpu:_ ~cls ~addrs:_ ->
      evicted_classes := cls :: !evicted_classes);
  check_bool "evicted from the largest class" true (List.mem big_cls !evicted_classes);
  check_bool "small class untouched" true (not (List.mem 0 !evicted_classes))

let test_pcc_static_resize_noop () =
  let pcc = Per_cpu_cache.create ~config:Config.baseline () in
  ignore (Per_cpu_cache.alloc pcc ~vcpu:0 ~cls:0);
  let cap = Per_cpu_cache.capacity_bytes pcc ~vcpu:0 in
  Per_cpu_cache.resize pcc ~evict:(fun ~vcpu:_ ~cls:_ ~addrs:_ -> Alcotest.fail "no eviction");
  check_int "capacity unchanged" cap (Per_cpu_cache.capacity_bytes pcc ~vcpu:0)

(* {1 Helpers for middle/back-end tests} *)

let make_stack ?(config = Config.baseline) ?span_stats () =
  let vm = Wsc_os.Vm.create () in
  let ph = Pageheap.create ~config vm in
  let cfl = Central_free_list.create ~config ?span_stats ph in
  (vm, ph, cfl)

(* {1 Central_free_list} *)

let test_cfl_remove_return_roundtrip () =
  let _, ph, cfl = make_stack () in
  let addrs, _ = Central_free_list.remove_objects cfl ~cls:0 ~n:100 ~now:0.0 in
  check_int "got 100" 100 (List.length addrs);
  check_int "distinct" 100 (List.length (List.sort_uniq compare addrs));
  check_bool "spans held" true (Central_free_list.span_count cfl ~cls:0 >= 1);
  Central_free_list.return_objects cfl ~cls:0 ~addrs ~now:1.0;
  check_int "all spans released" 0 (Central_free_list.span_count cfl ~cls:0);
  check_int "pageheap has no spans" 0 (Pageheap.spans_outstanding ph)

let test_cfl_fragmentation_accounting () =
  let _, _, cfl = make_stack () in
  let addrs, _ = Central_free_list.remove_objects cfl ~cls:0 ~n:10 ~now:0.0 in
  (* One 8 KiB span of 8 B objects = 1024 objects; 10 outstanding. *)
  check_int "frag = free objects x size" ((1024 - 10) * 8)
    (Central_free_list.fragmented_bytes cfl);
  Central_free_list.return_objects cfl ~cls:0 ~addrs:[ List.hd addrs ] ~now:0.0;
  check_int "frag grows on return" ((1024 - 9) * 8) (Central_free_list.fragmented_bytes cfl)

let test_cfl_wild_return () =
  let _, _, cfl = make_stack () in
  Alcotest.check_raises "wild pointer"
    (Invalid_argument "Central_free_list.return_objects: wild pointer") (fun () ->
      Central_free_list.return_objects cfl ~cls:0 ~addrs:[ 424242 ] ~now:0.0)

let test_cfl_class_mismatch () =
  let _, _, cfl = make_stack () in
  let addrs, _ = Central_free_list.remove_objects cfl ~cls:0 ~n:1 ~now:0.0 in
  Alcotest.check_raises "class mismatch"
    (Invalid_argument "Central_free_list.return_objects: class mismatch") (fun () ->
      Central_free_list.return_objects cfl ~cls:5 ~addrs ~now:0.0)

let test_cfl_prioritization_packs_densely () =
  (* With span prioritization, allocations concentrate on full spans, so
     after churning, fewer spans should be live than in baseline. *)
  let run config =
    let _, _, cfl = make_stack ~config () in
    let rng = Rng.create 42 in
    let live = ref [] in
    (* Allocate 2000, free random 1500, allocate 1000, count spans. *)
    let addrs, _ = Central_free_list.remove_objects cfl ~cls:0 ~n:2000 ~now:0.0 in
    live := addrs;
    let arr = Array.of_list !live in
    Rng.shuffle rng arr;
    let to_free = Array.sub arr 0 1500 in
    let kept = Array.sub arr 1500 (Array.length arr - 1500) in
    Central_free_list.return_objects cfl ~cls:0 ~addrs:(Array.to_list to_free) ~now:1.0;
    let more, _ = Central_free_list.remove_objects cfl ~cls:0 ~n:1000 ~now:2.0 in
    ignore kept;
    ignore more;
    Central_free_list.span_count cfl ~cls:0
  in
  let baseline_spans = run Config.baseline in
  let prioritized_spans = run (Config.with_span_prioritization true Config.baseline) in
  check_bool "prioritized never uses more spans" true (prioritized_spans <= baseline_spans)

let test_cfl_span_stats_events () =
  let stats = Span_stats.create () in
  let _, _, cfl = make_stack ~span_stats:stats () in
  let addrs, _ = Central_free_list.remove_objects cfl ~cls:3 ~n:50 ~now:0.0 in
  Central_free_list.snapshot cfl ~now:1.0;
  Central_free_list.return_objects cfl ~cls:3 ~addrs ~now:2.0;
  check_bool "created recorded" true (Span_stats.spans_created stats ~cls:3 >= 1);
  check_bool "released recorded" true (Span_stats.spans_released stats ~cls:3 >= 1);
  check_bool "observations recorded" true (Span_stats.observation_count stats >= 1);
  let rates = Span_stats.return_rate_by_live_allocations stats ~cls:3 ~window_ns:10.0 ~bucket:8 in
  check_bool "rate rows exist" true (rates <> [])

(* {1 Transfer_cache} *)

let test_tc_insert_remove_legacy () =
  let _, _, cfl = make_stack () in
  let tc = Transfer_cache.create ~topology:topo_uni cfl in
  check_int "no overflow" 0 (Transfer_cache.insert tc ~cls:0 ~addrs:[ 11; 22 ] ~domain:0 ~now:0.0);
  let r = Transfer_cache.remove tc ~cls:0 ~n:2 ~domain:0 ~now:0.0 in
  check_int "both from tc" 2 (List.length r.Transfer_cache.addrs);
  check_int "no cfl" 0 r.Transfer_cache.from_cfl;
  check_int "local (same domain)" 2 r.Transfer_cache.local_reuse

let test_tc_falls_through_to_cfl () =
  let _, _, cfl = make_stack () in
  let tc = Transfer_cache.create ~topology:topo_uni cfl in
  let r = Transfer_cache.remove tc ~cls:0 ~n:5 ~domain:0 ~now:0.0 in
  check_int "all from cfl" 5 r.Transfer_cache.from_cfl;
  check_int "five objects" 5 (List.length r.Transfer_cache.addrs)

let test_tc_legacy_cross_domain_is_remote () =
  let _, _, cfl = make_stack () in
  let tc = Transfer_cache.create ~topology:topo_chiplet cfl in
  ignore (Transfer_cache.insert tc ~cls:0 ~addrs:[ 1; 2; 3 ] ~domain:0 ~now:0.0);
  let r = Transfer_cache.remove tc ~cls:0 ~n:3 ~domain:5 ~now:0.0 in
  check_int "remote reuse seen" 3 r.Transfer_cache.remote_reuse;
  check_int "no local" 0 r.Transfer_cache.local_reuse

let nuca_config = Config.with_nuca_transfer_cache true Config.baseline

let test_tc_nuca_prefers_local () =
  let _, _, cfl = make_stack ~config:nuca_config () in
  let tc = Transfer_cache.create ~config:nuca_config ~topology:topo_chiplet cfl in
  check_int "16 shards" 16 (Transfer_cache.shard_count tc);
  ignore (Transfer_cache.insert tc ~cls:0 ~addrs:[ 1; 2 ] ~domain:3 ~now:0.0);
  ignore (Transfer_cache.insert tc ~cls:0 ~addrs:[ 3; 4 ] ~domain:7 ~now:0.0);
  let r = Transfer_cache.remove tc ~cls:0 ~n:2 ~domain:3 ~now:0.0 in
  check_int "local reuse" 2 r.Transfer_cache.local_reuse;
  check_int "no remote" 0 r.Transfer_cache.remote_reuse

let test_tc_nuca_release_tick_moves_to_central () =
  let _, _, cfl = make_stack ~config:nuca_config () in
  let tc = Transfer_cache.create ~config:nuca_config ~topology:topo_chiplet cfl in
  ignore (Transfer_cache.insert tc ~cls:0 ~addrs:[ 1; 2; 3; 4 ] ~domain:2 ~now:0.0);
  (* First tick only establishes the low watermark; the second drains half
     of the untouched surplus to the central cache. *)
  Transfer_cache.release_tick tc ~now:1.0;
  Transfer_cache.release_tick tc ~now:2.0;
  (* A consumer in another domain now sees drained objects as remote
     (instead of falling to the CFL). *)
  let r = Transfer_cache.remove tc ~cls:0 ~n:2 ~domain:9 ~now:2.0 in
  check_int "remote from central" 2 r.Transfer_cache.remote_reuse;
  check_int "nothing from cfl" 0 r.Transfer_cache.from_cfl

let test_tc_overflow_to_cfl () =
  let small_tc_config = { Config.baseline with Config.transfer_cache_bytes_per_class = 1 } in
  let _, _, cfl = make_stack ~config:small_tc_config () in
  let tc = Transfer_cache.create ~config:small_tc_config ~topology:topo_uni cfl in
  (* Capacity floor is 2*batch = 64 for class 0; push 100 objects that
     actually belong to CFL spans. *)
  let addrs, _ = Central_free_list.remove_objects cfl ~cls:0 ~n:100 ~now:0.0 in
  let overflow = Transfer_cache.insert tc ~cls:0 ~addrs ~domain:0 ~now:0.0 in
  check_int "overflowed the rest" (100 - 64) overflow;
  check_int "cached 64" 64 (Transfer_cache.cached_objects tc ~cls:0)

let test_tc_cached_bytes () =
  let _, _, cfl = make_stack () in
  let tc = Transfer_cache.create ~topology:topo_uni cfl in
  ignore (Transfer_cache.insert tc ~cls:0 ~addrs:[ 1; 2; 3 ] ~domain:0 ~now:0.0);
  check_int "3 x 8 B" 24 (Transfer_cache.cached_bytes tc)

(* {1 Pageheap} *)

let test_pageheap_small_span () =
  let vm = Wsc_os.Vm.create () in
  let ph = Pageheap.create vm in
  let span, mmaps = Pageheap.new_small_span ph ~size_class:0 ~now:0.0 in
  check_int "one mmap for first span" 1 mmaps;
  check_bool "registered" true (Pageheap.span_of_addr ph span.Span.base <> None);
  let span2, mmaps2 = Pageheap.new_small_span ph ~size_class:0 ~now:0.0 in
  check_int "second span reuses hugepage" 0 mmaps2;
  ignore span2;
  check_int "two spans" 2 (Pageheap.spans_outstanding ph)

let test_pageheap_free_span_unregisters () =
  let vm = Wsc_os.Vm.create () in
  let ph = Pageheap.create vm in
  let span, _ = Pageheap.new_small_span ph ~size_class:0 ~now:0.0 in
  Pageheap.free_span ph span;
  check_bool "unregistered" true (Pageheap.span_of_addr ph span.Span.base = None);
  check_int "no spans" 0 (Pageheap.spans_outstanding ph)

let test_pageheap_free_busy_span_rejected () =
  let vm = Wsc_os.Vm.create () in
  let ph = Pageheap.create vm in
  let span, _ = Pageheap.new_small_span ph ~size_class:0 ~now:0.0 in
  ignore (Span.pop_object span);
  Alcotest.check_raises "busy span" (Invalid_argument "Pageheap.free_span: span not idle")
    (fun () -> Pageheap.free_span ph span)

let test_pageheap_large_routing () =
  let vm = Wsc_os.Vm.create () in
  let ph = Pageheap.create vm in
  (* < 1 hugepage -> filler *)
  let s1, _ = Pageheap.new_large_span ph ~pages:100 ~now:0.0 in
  check_bool "filler used" true ((Pageheap.filler_stats ph).Pageheap.in_use_bytes > 0);
  (* slightly over a hugepage (2.1 MiB ~ 269 pages) -> region *)
  let s2, _ = Pageheap.new_large_span ph ~pages:269 ~now:0.0 in
  check_bool "region used" true ((Pageheap.region_stats ph).Pageheap.in_use_bytes > 0);
  (* 4.5 MiB = 576 pages -> cache + donated tail *)
  let s3, _ = Pageheap.new_large_span ph ~pages:576 ~now:0.0 in
  check_bool "cache used" true ((Pageheap.cache_stats ph).Pageheap.in_use_bytes > 0);
  List.iter (Pageheap.free_span ph) [ s1; s2; s3 ];
  check_int "all gone" 0 (Pageheap.spans_outstanding ph)

let test_pageheap_donated_slack_reusable () =
  let vm = Wsc_os.Vm.create () in
  let ph = Pageheap.create vm in
  (* 576 pages = 2 full hugepages + 64-page tail; slack = 192 pages. *)
  let _s, _ = Pageheap.new_large_span ph ~pages:576 ~now:0.0 in
  let mmaps_before = Wsc_os.Vm.mmap_calls vm in
  (* A small span should fit in the donated slack without a new mmap. *)
  let _small, mmaps = Pageheap.new_small_span ph ~size_class:0 ~now:0.0 in
  check_int "no new mmap" 0 mmaps;
  check_int "vm mmaps unchanged" mmaps_before (Wsc_os.Vm.mmap_calls vm)

let test_pageheap_coverage_starts_full () =
  let vm = Wsc_os.Vm.create () in
  let ph = Pageheap.create vm in
  let _span, _ = Pageheap.new_small_span ph ~size_class:0 ~now:0.0 in
  Alcotest.(check (float 1e-9)) "fresh hugepages intact" 1.0 (Pageheap.hugepage_coverage ph)

let test_pageheap_subrelease_lowers_coverage () =
  let vm = Wsc_os.Vm.create () in
  let ph = Pageheap.create vm in
  let _span, _ = Pageheap.new_small_span ph ~size_class:0 ~now:0.0 in
  let released = Pageheap.release_memory ph ~max_bytes:(100 * Units.tcmalloc_page_size) in
  check_bool "released something" true (released > 0);
  check_bool "coverage dropped" true (Pageheap.hugepage_coverage ph < 1.0)

let test_pageheap_release_prefers_cache () =
  let vm = Wsc_os.Vm.create () in
  let ph = Pageheap.create vm in
  (* Free a whole-hugepage span so it sits in the cache. *)
  let s, _ = Pageheap.new_large_span ph ~pages:512 ~now:0.0 in
  Pageheap.free_span ph s;
  check_int "cached" (4 * Units.mib) (Pageheap.cache_stats ph).Pageheap.fragmented_bytes;
  (* First release only arms the cache's demand watermark. *)
  ignore (Pageheap.release_memory ph ~max_bytes:(4 * Units.mib));
  let released = Pageheap.release_memory ph ~max_bytes:(4 * Units.mib) in
  check_int "released intact hugepages" (4 * Units.mib) released;
  check_int "cache empty" 0 (Pageheap.cache_stats ph).Pageheap.fragmented_bytes;
  check_int "no subrelease needed" 0 (Wsc_os.Vm.subrelease_calls vm)

(* {1 Malloc integration} *)

let make_malloc ?(config = Config.baseline) ?(topology = topo_uni) () =
  let clock = Clock.create () in
  let m = Malloc.create ~config ~topology ~clock () in
  (clock, m)

let test_malloc_roundtrip () =
  let _, m = make_malloc () in
  let a = Malloc.malloc m ~cpu:0 ~size:100 in
  let stats = Malloc.heap_stats m in
  check_int "live requested" 100 stats.Malloc.live_requested_bytes;
  Malloc.free m ~cpu:0 a ~size:100;
  let stats = Malloc.heap_stats m in
  check_int "live zero" 0 stats.Malloc.live_requested_bytes

let test_malloc_distinct_addresses () =
  let _, m = make_malloc () in
  let addrs = List.init 1000 (fun _ -> Malloc.malloc m ~cpu:0 ~size:64) in
  check_int "distinct" 1000 (List.length (List.sort_uniq compare addrs))

let test_malloc_fast_path_after_free () =
  let _, m = make_malloc () in
  let a = Malloc.malloc m ~cpu:0 ~size:64 in
  Malloc.free m ~cpu:0 a ~size:64;
  let b = Malloc.malloc m ~cpu:0 ~size:64 in
  check_int "reuses the cached object" a b;
  let tel = Malloc.telemetry m in
  check_int "second alloc hit per-CPU cache" 1
    (Telemetry.hits tel Wsc_hw.Cost_model.Per_cpu_cache)

let test_malloc_large_object () =
  let _, m = make_malloc () in
  let size = 5 * Units.mib in
  let a = Malloc.malloc m ~cpu:0 ~size in
  let stats = Malloc.heap_stats m in
  check_int "live" size stats.Malloc.live_requested_bytes;
  Malloc.free m ~cpu:0 a ~size;
  check_int "freed" 0 (Malloc.heap_stats m).Malloc.live_requested_bytes;
  let tel = Malloc.telemetry m in
  check_bool "mmap hit recorded" true (Telemetry.hits tel Wsc_hw.Cost_model.Mmap >= 1)

let test_malloc_wild_free_rejected () =
  let _, m = make_malloc () in
  Alcotest.check_raises "wild large free"
    (Invalid_argument
       "Malloc.free: wild pointer (addr=0x3b9ac9ff, size=1048576, tier=page-map)")
    (fun () -> Malloc.free m ~cpu:0 999_999_999 ~size:(1024 * 1024))

let test_malloc_cross_cpu_free () =
  let _, m = make_malloc () in
  (* Allocate on cpu0, free on cpu1: objects flow via the transfer cache. *)
  let addrs = List.init 200 (fun _ -> Malloc.malloc m ~cpu:0 ~size:128) in
  List.iter (fun a -> Malloc.free m ~cpu:1 a ~size:128) addrs;
  let stats = Malloc.heap_stats m in
  check_int "nothing live" 0 stats.Malloc.live_requested_bytes;
  check_bool "front-end caches hold the freed objects" true
    (stats.Malloc.front_end_cached_bytes > 0 || stats.Malloc.transfer_cached_bytes > 0)

let test_malloc_internal_fragmentation () =
  let _, m = make_malloc () in
  let _a = Malloc.malloc m ~cpu:0 ~size:9 (* rounds to 16 *) in
  let stats = Malloc.heap_stats m in
  check_int "slack 7" 7 stats.Malloc.internal_fragmentation_bytes

let test_malloc_conservation_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"malloc_free_conserves_all_accounting" ~count:20
       QCheck.(pair small_int (list_of_size (Gen.int_range 50 200) (int_range 1 4096)))
       (fun (seed, sizes) ->
         let rng = Rng.create seed in
         let _, m = make_malloc ~topology:topo_uni () in
         let live = ref [] in
         List.iter
           (fun size ->
             let size = max 1 size in
             let cpu = Rng.int rng 4 in
             if Rng.bool rng || !live = [] then
               live := (Malloc.malloc m ~cpu ~size, size) :: !live
             else begin
               match !live with
               | (a, s) :: rest ->
                 Malloc.free m ~cpu a ~size:s;
                 live := rest
               | [] -> ()
             end)
           sizes;
         List.iter (fun (a, s) -> Malloc.free m ~cpu:0 a ~size:s) !live;
         let stats = Malloc.heap_stats m in
         stats.Malloc.live_requested_bytes = 0
         && stats.Malloc.internal_fragmentation_bytes = 0
         && Telemetry.alloc_count (Malloc.telemetry m)
            = Telemetry.free_count (Malloc.telemetry m)))

let test_malloc_vcpu_mapping () =
  let _, m = make_malloc () in
  ignore (Malloc.malloc m ~cpu:3 ~size:64);
  ignore (Malloc.malloc m ~cpu:1 ~size:64);
  check_int "two vcpus populated" 2 (Wsc_os.Vcpu.active_count (Malloc.vcpus m));
  Malloc.cpu_idle m ~cpu:3;
  check_int "one active after idle" 1 (Wsc_os.Vcpu.active_count (Malloc.vcpus m))

let test_malloc_dynamic_resize_ticker () =
  let config = Config.with_dynamic_per_cpu true Config.baseline in
  let clock, m = make_malloc ~config () in
  (* Generate misses on vcpu 0, then advance past the resize interval. *)
  for _ = 1 to 500 do
    let a = Malloc.malloc m ~cpu:0 ~size:64 in
    Malloc.free m ~cpu:1 a ~size:64
  done;
  Clock.advance clock (6.0 *. Units.sec);
  (* No assertion beyond "it runs and stays consistent". *)
  let stats = Malloc.heap_stats m in
  check_int "nothing live" 0 stats.Malloc.live_requested_bytes

let test_malloc_fragmentation_breakdown_consistency () =
  let _, m = make_malloc () in
  let addrs = List.init 500 (fun i -> Malloc.malloc m ~cpu:0 ~size:(32 + (i mod 64))) in
  List.iteri (fun i a -> if i mod 2 = 0 then Malloc.free m ~cpu:0 a ~size:(32 + (i mod 64))) addrs;
  let stats = Malloc.heap_stats m in
  check_int "external = sum of tiers"
    (stats.Malloc.front_end_cached_bytes + stats.Malloc.transfer_cached_bytes
    + stats.Malloc.cfl_fragmented_bytes + stats.Malloc.pageheap_fragmented_bytes)
    stats.Malloc.external_fragmentation_bytes;
  check_bool "fragmentation ratio positive" true (Malloc.fragmentation_ratio stats > 0.0)

let test_malloc_nuca_reduces_remote_reuse () =
  (* Producer-consumer across domains: with NUCA-aware transfer caches the
     remote-reuse fraction must drop. *)
  let run config =
    let clock = Clock.create () in
    let m = Malloc.create ~config ~topology:topo_chiplet ~clock () in
    let cpu_a = 0 (* domain 0 *) and cpu_b = 20 (* domain 1 *) in
    for _ = 1 to 2000 do
      (* Each domain allocates and frees its own objects, with occasional
         bursts pushing objects through the transfer cache. *)
      let a = Malloc.malloc m ~cpu:cpu_a ~size:64 in
      let b = Malloc.malloc m ~cpu:cpu_b ~size:64 in
      Malloc.free m ~cpu:cpu_a a ~size:64;
      Malloc.free m ~cpu:cpu_b b ~size:64
    done;
    (* Force spills: allocate a burst on each side. *)
    let burst_a = List.init 3000 (fun _ -> Malloc.malloc m ~cpu:cpu_a ~size:64) in
    List.iter (fun x -> Malloc.free m ~cpu:cpu_a x ~size:64) burst_a;
    let burst_b = List.init 3000 (fun _ -> Malloc.malloc m ~cpu:cpu_b ~size:64) in
    List.iter (fun x -> Malloc.free m ~cpu:cpu_b x ~size:64) burst_b;
    Telemetry.remote_reuse_fraction (Malloc.telemetry m)
  in
  let legacy = run Config.baseline in
  let nuca = run (Config.with_nuca_transfer_cache true Config.baseline) in
  check_bool "nuca never worse" true (nuca <= legacy)

let suite =
  [
    ( "per_cpu_cache",
      [
        Alcotest.test_case "miss then hit" `Quick test_pcc_miss_then_hit;
        Alcotest.test_case "vcpu isolation" `Quick test_pcc_isolation_between_vcpus;
        Alcotest.test_case "capacity bound" `Quick test_pcc_capacity_bound;
        Alcotest.test_case "fill and flush" `Quick test_pcc_fill_and_flush;
        Alcotest.test_case "resize moves capacity" `Quick test_pcc_resize_moves_capacity;
        Alcotest.test_case "resize evicts large classes" `Quick
          test_pcc_resize_evicts_large_classes_first;
        Alcotest.test_case "static resize noop" `Quick test_pcc_static_resize_noop;
      ] );
    ( "central_free_list",
      [
        Alcotest.test_case "remove/return roundtrip" `Quick test_cfl_remove_return_roundtrip;
        Alcotest.test_case "fragmentation accounting" `Quick test_cfl_fragmentation_accounting;
        Alcotest.test_case "wild return" `Quick test_cfl_wild_return;
        Alcotest.test_case "class mismatch" `Quick test_cfl_class_mismatch;
        Alcotest.test_case "prioritization packs densely" `Quick
          test_cfl_prioritization_packs_densely;
        Alcotest.test_case "span stats events" `Quick test_cfl_span_stats_events;
      ] );
    ( "transfer_cache",
      [
        Alcotest.test_case "insert/remove legacy" `Quick test_tc_insert_remove_legacy;
        Alcotest.test_case "falls through to cfl" `Quick test_tc_falls_through_to_cfl;
        Alcotest.test_case "legacy cross-domain remote" `Quick
          test_tc_legacy_cross_domain_is_remote;
        Alcotest.test_case "nuca prefers local" `Quick test_tc_nuca_prefers_local;
        Alcotest.test_case "nuca release tick" `Quick test_tc_nuca_release_tick_moves_to_central;
        Alcotest.test_case "overflow to cfl" `Quick test_tc_overflow_to_cfl;
        Alcotest.test_case "cached bytes" `Quick test_tc_cached_bytes;
      ] );
    ( "pageheap",
      [
        Alcotest.test_case "small span" `Quick test_pageheap_small_span;
        Alcotest.test_case "free unregisters" `Quick test_pageheap_free_span_unregisters;
        Alcotest.test_case "busy span rejected" `Quick test_pageheap_free_busy_span_rejected;
        Alcotest.test_case "large routing" `Quick test_pageheap_large_routing;
        Alcotest.test_case "donated slack reusable" `Quick test_pageheap_donated_slack_reusable;
        Alcotest.test_case "coverage starts full" `Quick test_pageheap_coverage_starts_full;
        Alcotest.test_case "subrelease lowers coverage" `Quick
          test_pageheap_subrelease_lowers_coverage;
        Alcotest.test_case "release prefers cache" `Quick test_pageheap_release_prefers_cache;
      ] );
    ( "malloc",
      [
        Alcotest.test_case "roundtrip" `Quick test_malloc_roundtrip;
        Alcotest.test_case "distinct addresses" `Quick test_malloc_distinct_addresses;
        Alcotest.test_case "fast path after free" `Quick test_malloc_fast_path_after_free;
        Alcotest.test_case "large object" `Quick test_malloc_large_object;
        Alcotest.test_case "wild free rejected" `Quick test_malloc_wild_free_rejected;
        Alcotest.test_case "cross-cpu free" `Quick test_malloc_cross_cpu_free;
        Alcotest.test_case "internal fragmentation" `Quick test_malloc_internal_fragmentation;
        test_malloc_conservation_property;
        Alcotest.test_case "vcpu mapping" `Quick test_malloc_vcpu_mapping;
        Alcotest.test_case "dynamic resize ticker" `Quick test_malloc_dynamic_resize_ticker;
        Alcotest.test_case "fragmentation breakdown" `Quick
          test_malloc_fragmentation_breakdown_consistency;
        Alcotest.test_case "nuca reduces remote reuse" `Slow test_malloc_nuca_reduces_remote_reuse;
      ] );
  ]
