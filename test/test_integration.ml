(* Cross-cutting integration and property tests: whole-allocator invariants
   under realistic mixed workloads, optimization-flag interplay, and
   conservation laws that hold across every tier. *)

open Wsc_substrate
open Wsc_tcmalloc
module Topology = Wsc_hw.Topology
module Vm = Wsc_os.Vm
module Apps = Wsc_workload.Apps
module Driver = Wsc_workload.Driver
module Profile = Wsc_workload.Profile
module Machine = Wsc_fleet.Machine
module Backend = Wsc_backend.Backend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qcheck t = QCheck_alcotest.to_alcotest t

(* {1 Config} *)

let test_config_flags () =
  let c = Config.all_optimizations in
  check_bool "dynamic" true c.Config.dynamic_per_cpu_caches;
  check_bool "nuca" true c.Config.nuca_aware_transfer_cache;
  check_bool "span prio" true c.Config.span_prioritization;
  check_bool "lifetime filler" true c.Config.lifetime_aware_filler;
  check_int "dynamic halves the budget" (3 * Units.mib / 2) c.Config.per_cpu_cache_bytes;
  check_bool "baseline has none" false
    (Config.baseline.Config.dynamic_per_cpu_caches
    || Config.baseline.Config.nuca_aware_transfer_cache
    || Config.baseline.Config.span_prioritization
    || Config.baseline.Config.lifetime_aware_filler)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  at 0

let test_config_describe () =
  let s = Config.describe Config.all_optimizations in
  check_bool "mentions all four" true
    (List.for_all (contains s)
       [ "dynamic-cpu-caches"; "nuca-transfer-cache"; "span-prioritization"; "lifetime-filler" ]);
  check_bool "baseline negates them" true
    (contains (Config.describe Config.baseline) "no-span-prioritization")

(* {1 Whole-allocator invariants under churn} *)

let churn ~config ~seed ~ops =
  let clock = Clock.create () in
  let topology = Topology.default in
  let malloc = Malloc.create ~config ~topology ~clock () in
  let rng = Rng.create seed in
  let live = ref [] in
  let n_live = ref 0 in
  for i = 1 to ops do
    if i mod 50 = 0 then Clock.advance clock (10.0 *. Units.ms);
    let cpu = Rng.int rng 64 in
    if (Rng.int rng 100 < 55 || !n_live = 0) && !n_live < 20_000 then begin
      let size =
        match Rng.int rng 20 with
        | 0 -> 1 + Rng.int rng 64
        | 1 | 2 -> 1 + Rng.int rng 4096
        | 19 -> 262145 + Rng.int rng (4 * Units.mib) (* large path *)
        | _ -> 1 + Rng.int rng 1024
      in
      let a = Malloc.malloc malloc ~cpu ~size in
      live := (a, size) :: !live;
      incr n_live
    end
    else begin
      match !live with
      | (a, size) :: rest ->
        Malloc.free malloc ~cpu a ~size;
        live := rest;
        decr n_live
      | [] -> ()
    end
  done;
  (malloc, !live)

let assert_invariants name malloc live =
  let stats = Malloc.heap_stats malloc in
  let tel = Malloc.telemetry malloc in
  let expected_live = List.fold_left (fun acc (_, s) -> acc + s) 0 live in
  if stats.Malloc.live_requested_bytes <> expected_live then
    Alcotest.failf "%s: live bytes drifted (%d vs %d)" name
      stats.Malloc.live_requested_bytes expected_live;
  if Telemetry.alloc_count tel - Telemetry.free_count tel <> List.length live then
    Alcotest.failf "%s: alloc/free count mismatch" name;
  (* Every byte the app holds must be resident. *)
  if stats.Malloc.resident_bytes < stats.Malloc.live_rounded_bytes then
    Alcotest.failf "%s: resident < live" name;
  (* External fragmentation components are all non-negative. *)
  if
    stats.Malloc.front_end_cached_bytes < 0
    || stats.Malloc.transfer_cached_bytes < 0
    || stats.Malloc.cfl_fragmented_bytes < 0
    || stats.Malloc.pageheap_fragmented_bytes < 0
  then Alcotest.failf "%s: negative fragmentation component" name;
  let coverage = Malloc.hugepage_coverage malloc in
  if coverage < 0.0 || coverage > 1.0 then Alcotest.failf "%s: coverage out of range" name

let test_churn_invariants_per_config () =
  List.iter
    (fun (name, config) ->
      let malloc, live = churn ~config ~seed:21 ~ops:30_000 in
      assert_invariants name malloc live;
      (* Free everything: the allocator must come back to zero. *)
      List.iter (fun (a, size) -> Malloc.free malloc ~cpu:0 a ~size) live;
      let stats = Malloc.heap_stats malloc in
      check_int (name ^ ": empty after full free") 0 stats.Malloc.live_requested_bytes)
    [
      ("baseline", Config.baseline);
      ("dynamic", Config.with_dynamic_per_cpu true Config.baseline);
      ("nuca", Config.with_nuca_transfer_cache true Config.baseline);
      ("span-prio", Config.with_span_prioritization true Config.baseline);
      ("lt-filler", Config.with_lifetime_aware_filler true Config.baseline);
      ("all", Config.all_optimizations);
    ]

let test_churn_property =
  qcheck
    (QCheck.Test.make ~name:"churn_invariants_random_seeds" ~count:8
       QCheck.(int_range 1 1000)
       (fun seed ->
         let malloc, live = churn ~config:Config.all_optimizations ~seed ~ops:8_000 in
         let stats = Malloc.heap_stats malloc in
         let expected = List.fold_left (fun acc (_, s) -> acc + s) 0 live in
         stats.Malloc.live_requested_bytes = expected
         && stats.Malloc.resident_bytes >= stats.Malloc.live_rounded_bytes))

let test_background_release_returns_memory () =
  let clock = Clock.create () in
  let malloc = Malloc.create ~topology:Topology.default ~clock () in
  (* Build a big heap, free it all, then let the release tickers run. *)
  let addrs = List.init 40_000 (fun i -> (Malloc.malloc malloc ~cpu:0 ~size:512, i)) in
  List.iter (fun (a, _) -> Malloc.free malloc ~cpu:0 a ~size:512) addrs;
  let before = (Malloc.heap_stats malloc).Malloc.resident_bytes in
  Clock.advance clock (30.0 *. Units.sec);
  let after = (Malloc.heap_stats malloc).Malloc.resident_bytes in
  check_bool "gradual release shrank RSS" true (after < before)

let test_tier_hits_sum_to_allocs () =
  let malloc, _live = churn ~config:Config.baseline ~seed:5 ~ops:20_000 in
  let tel = Malloc.telemetry malloc in
  let hit_total =
    List.fold_left (fun acc t -> acc + Telemetry.hits tel t) 0 Wsc_hw.Cost_model.all_tiers
  in
  check_int "every allocation hit exactly one deepest tier"
    (Telemetry.alloc_count tel) hit_total

let test_nuca_shards_match_domains () =
  let clock = Clock.create () in
  let config = Config.with_nuca_transfer_cache true Config.baseline in
  let malloc = Malloc.create ~config ~topology:Topology.default ~clock () in
  check_int "one shard per LLC domain" (Topology.num_domains Topology.default)
    (Transfer_cache.shard_count (Malloc.transfer_cache malloc));
  let baseline_malloc = Malloc.create ~topology:Topology.default ~clock () in
  check_int "legacy has no shards" 0
    (Transfer_cache.shard_count (Malloc.transfer_cache baseline_malloc))

(* {1 Determinism} *)

let run_machine seed =
  let machine =
    Machine.create ~seed ~platform:Topology.default ~jobs:[ Apps.bigtable ] ()
  in
  Machine.run machine ~duration_ns:(2.0 *. Units.sec) ~epoch_ns:Units.ms;
  let job = List.hd (Machine.jobs machine) in
  ( Driver.allocations job.Machine.driver,
    (Backend.heap_stats job.Machine.backend).Malloc.resident_bytes )

let test_machine_determinism () =
  let a1, r1 = run_machine 33 and a2, r2 = run_machine 33 in
  check_int "allocations reproducible" a1 a2;
  check_int "rss reproducible" r1 r2

(* {1 vCPU / scheduling interplay} *)

let test_vcpu_bounded_by_quota () =
  let machine =
    Machine.create ~seed:3 ~platform:Topology.default ~jobs:[ Apps.monarch ] ()
  in
  Machine.run machine ~duration_ns:(3.0 *. Units.sec) ~epoch_ns:Units.ms;
  let job = List.hd (Machine.jobs machine) in
  let hwm = Wsc_os.Vcpu.high_water_mark (Backend.vcpus job.Machine.backend) in
  check_bool "vCPU ids stay within the thread ceiling" true
    (hwm <= Apps.monarch.Profile.threads.Wsc_workload.Threads.max_threads)

(* {1 Pageheap conservation under random span traffic} *)

let test_pageheap_conservation_property =
  qcheck
    (QCheck.Test.make ~name:"pageheap_vm_clean_after_all_spans_freed" ~count:20
       QCheck.(pair (int_range 1 100) (list_of_size (Gen.int_range 1 40) (int_range 1 600)))
       (fun (seed, page_counts) ->
         let vm = Vm.create () in
         let ph = Pageheap.create vm in
         let rng = Rng.create seed in
         let spans =
           List.map
             (fun pages ->
               if pages * Units.tcmalloc_page_size <= Size_class.max_size then
                 fst (Pageheap.new_small_span ph ~size_class:(Rng.int rng Size_class.count) ~now:0.0)
               else fst (Pageheap.new_large_span ph ~pages ~now:0.0))
             page_counts
         in
         List.iter (fun span -> Pageheap.free_span ph span) spans;
         (* Everything freed: repeated demand-based release must drain the
            heap completely. *)
         for _ = 1 to 10 do
           ignore (Pageheap.release_memory ph ~max_bytes:max_int)
         done;
         Pageheap.spans_outstanding ph = 0 && Vm.mapped_bytes vm = 0))

(* {1 Span statistics} *)

let test_span_stats_synthetic_correlation () =
  (* Feed a synthetic history where low-capacity classes return and
     high-capacity ones do not; the Spearman estimate must be negative. *)
  let stats = Span_stats.create () in
  let small_cls = 0 (* 8 B, capacity 1024 *) in
  let large_cls = Size_class.count - 1 (* 256 KiB, capacity 1 *) in
  for i = 1 to 50 do
    Span_stats.note_created stats ~span_id:i ~cls:small_cls ~now:0.0;
    Span_stats.note_created stats ~span_id:(1000 + i) ~cls:large_cls ~now:0.0;
    Span_stats.note_released stats ~span_id:(1000 + i) ~cls:large_cls ~now:1.0
  done;
  check_bool "negative capacity/return correlation" true
    (Span_stats.capacity_return_correlation stats < 0.0)

let suite =
  [
    ( "config",
      [
        Alcotest.test_case "flags" `Quick test_config_flags;
        Alcotest.test_case "describe" `Quick test_config_describe;
      ] );
    ( "integration",
      [
        Alcotest.test_case "churn invariants x configs" `Slow test_churn_invariants_per_config;
        test_churn_property;
        Alcotest.test_case "background release" `Quick test_background_release_returns_memory;
        Alcotest.test_case "tier hits sum" `Quick test_tier_hits_sum_to_allocs;
        Alcotest.test_case "nuca shard count" `Quick test_nuca_shards_match_domains;
        Alcotest.test_case "machine determinism" `Quick test_machine_determinism;
        Alcotest.test_case "vcpu bounded by quota" `Quick test_vcpu_bounded_by_quota;
        test_pageheap_conservation_property;
        Alcotest.test_case "span stats correlation" `Quick test_span_stats_synthetic_correlation;
      ] );
  ]
