(* Tests for wsc_substrate: PRNG, distributions, statistics, histograms,
   the event heap, the simulated clock, stacks and formatting. *)

open Wsc_substrate

let check_float = Alcotest.(check (float 1e-9))
let check_close msg tolerance expected actual = Alcotest.(check (float tolerance)) msg expected actual
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qcheck t = QCheck_alcotest.to_alcotest t

(* {1 Units} *)

let test_units_constants () =
  check_int "tcmalloc page" 8192 Units.tcmalloc_page_size;
  check_int "hugepage" (2 * 1024 * 1024) Units.hugepage_size;
  check_int "pages per hugepage" 256 Units.pages_per_hugepage;
  check_float "one second" 1e9 Units.sec;
  check_float "one day" (86400.0 *. 1e9) Units.day

let test_units_pp_bytes () =
  Alcotest.(check string) "bytes" "512 B" (Units.bytes_to_string 512);
  Alcotest.(check string) "kib" "2 KiB" (Units.bytes_to_string 2048);
  Alcotest.(check string) "mib" "3 MiB" (Units.bytes_to_string (3 * 1024 * 1024));
  Alcotest.(check string) "frac" "1.50 KiB" (Units.bytes_to_string 1536)

let test_units_pp_duration () =
  Alcotest.(check string) "ns" "3.1 ns" (Units.duration_to_string 3.1);
  Alcotest.(check string) "us" "12.92 us" (Units.duration_to_string 12916.7);
  Alcotest.(check string) "ms" "5.00 ms" (Units.duration_to_string 5e6);
  Alcotest.(check string) "day" "2.00 d" (Units.duration_to_string (2.0 *. Units.day))

(* {1 Rng} *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let xs = List.init 32 (fun _ -> Rng.bits64 parent) in
  let ys = List.init 32 (fun _ -> Rng.bits64 child) in
  check_bool "split stream differs" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create 99 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds =
  qcheck
    (QCheck.Test.make ~name:"rng_int_in_bounds" ~count:500
       QCheck.(pair small_int (int_range 1 10_000))
       (fun (seed, bound) ->
         let rng = Rng.create seed in
         let v = Rng.int rng bound in
         v >= 0 && v < bound))

let test_rng_unit_float_bounds =
  qcheck
    (QCheck.Test.make ~name:"rng_unit_float_bounds" ~count:500 QCheck.small_int
       (fun seed ->
         let rng = Rng.create seed in
         let v = Rng.unit_float rng in
         v >= 0.0 && v < 1.0))

let test_rng_uniformity () =
  let rng = Rng.create 5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i count ->
      let expected = n / 10 in
      if abs (count - expected) > expected / 10 then
        Alcotest.failf "bucket %d skewed: %d vs %d" i count expected)
    buckets

let test_rng_bernoulli () =
  let rng = Rng.create 11 in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_close "bernoulli 0.3" 0.01 0.3 (float_of_int !hits /. 100_000.0)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* {1 Dist} *)

let mc d seed n =
  let rng = Rng.create seed in
  Dist.mean_estimate d rng ~n

let test_dist_constant () = check_float "constant" 5.0 (mc (Dist.constant 5.0) 1 100)

let test_dist_uniform_mean () =
  check_close "uniform mean" 0.05 5.0 (mc (Dist.uniform ~lo:0.0 ~hi:10.0) 2 200_000)

let test_dist_exponential_mean () =
  check_close "exp mean" 0.05 3.0 (mc (Dist.exponential ~mean:3.0) 3 500_000)

let test_dist_lognormal_median () =
  (* median of lognormal = e^mu *)
  let d = Dist.lognormal ~mu:2.0 ~sigma:1.0 in
  let rng = Rng.create 4 in
  let samples = Stats.Sample.create () in
  for _ = 1 to 100_000 do
    Stats.Sample.add samples (Dist.sample d rng)
  done;
  check_close "lognormal median" 0.3 (exp 2.0) (Stats.Sample.quantile samples 0.5)

let test_dist_pareto_minimum =
  qcheck
    (QCheck.Test.make ~name:"pareto_above_scale" ~count:300 QCheck.small_int
       (fun seed ->
         let rng = Rng.create seed in
         let d = Dist.pareto ~scale:2.0 ~shape:1.5 in
         Dist.sample d rng >= 2.0))

let test_dist_mixture_weights () =
  let d = Dist.mixture [ (0.9, Dist.constant 1.0); (0.1, Dist.constant 100.0) ] in
  check_close "mixture mean" 0.5 10.9 (mc d 6 200_000)

let test_dist_mixture_empty () =
  Alcotest.check_raises "empty mixture" (Invalid_argument "Dist.mixture: empty")
    (fun () -> ignore (Dist.mixture []))

let test_dist_empirical_interpolation () =
  let d = Dist.empirical [ (0.0, 10.0); (1.0, 1000.0) ] in
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let v = Dist.sample d rng in
    if v < 10.0 || v > 1000.0 then Alcotest.failf "empirical out of range: %f" v
  done

let test_dist_clamped =
  qcheck
    (QCheck.Test.make ~name:"clamped_within_bounds" ~count:300 QCheck.small_int
       (fun seed ->
         let rng = Rng.create seed in
         let d = Dist.clamped ~lo:1.0 ~hi:2.0 (Dist.exponential ~mean:5.0) in
         let v = Dist.sample d rng in
         v >= 1.0 && v <= 2.0))

let test_dist_shifted () =
  check_close "shifted mean" 0.05 13.0
    (mc (Dist.shifted 10.0 (Dist.exponential ~mean:3.0)) 9 500_000)

let test_zipf_weights () =
  let w = Dist.zipf_weights ~n:3 ~s:1.0 in
  let total = Array.fold_left ( +. ) 0.0 w in
  check_close "normalized" 1e-9 1.0 total;
  check_bool "rank order" true (w.(0) > w.(1) && w.(1) > w.(2));
  check_close "harmonic ratio" 1e-9 2.0 (w.(0) /. w.(1))

let test_zipf_sampling () =
  let rng = Rng.create 10 in
  let counts = Array.make 20 0 in
  for _ = 1 to 50_000 do
    let r = Dist.zipf rng ~n:20 ~s:1.2 in
    counts.(r) <- counts.(r) + 1
  done;
  check_bool "rank 0 most popular" true (counts.(0) > counts.(5));
  check_bool "rank tail smaller" true (counts.(5) > counts.(19))

let test_categorical () =
  let rng = Rng.create 12 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Dist.categorical rng [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_close "weight 0.7" 0.02 0.7 (float_of_int counts.(2) /. 30_000.0)

(* {1 Stats} *)

let test_running_moments () =
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.Running.count r);
  check_float "mean" 5.0 (Stats.Running.mean r);
  check_close "variance" 1e-9 (32.0 /. 7.0) (Stats.Running.variance r);
  check_float "min" 2.0 (Stats.Running.min r);
  check_float "max" 9.0 (Stats.Running.max r);
  check_float "total" 40.0 (Stats.Running.total r)

let test_running_merge =
  qcheck
    (QCheck.Test.make ~name:"running_merge_equals_sequential" ~count:200
       QCheck.(pair (list (float_bound_exclusive 100.0)) (list (float_bound_exclusive 100.0)))
       (fun (xs, ys) ->
         QCheck.assume (xs <> [] && ys <> []);
         let a = Stats.Running.create () and b = Stats.Running.create () in
         let all = Stats.Running.create () in
         List.iter
           (fun x ->
             Stats.Running.add a x;
             Stats.Running.add all x)
           xs;
         List.iter
           (fun y ->
             Stats.Running.add b y;
             Stats.Running.add all y)
           ys;
         let merged = Stats.Running.merge a b in
         let close u v = Float.abs (u -. v) < 1e-6 *. (1.0 +. Float.abs u) in
         Stats.Running.count merged = Stats.Running.count all
         && close (Stats.Running.mean merged) (Stats.Running.mean all)
         && close (Stats.Running.variance merged) (Stats.Running.variance all)))

let test_sample_quantiles () =
  let s = Stats.Sample.create () in
  for i = 1 to 101 do
    Stats.Sample.add s (float_of_int i)
  done;
  check_float "median" 51.0 (Stats.Sample.quantile s 0.5);
  check_float "p0" 1.0 (Stats.Sample.quantile s 0.0);
  check_float "p100" 101.0 (Stats.Sample.quantile s 1.0);
  check_float "p25" 26.0 (Stats.Sample.quantile s 0.25)

let test_sample_quantile_empty () =
  let s = Stats.Sample.create () in
  Alcotest.check_raises "empty quantile" (Invalid_argument "Stats.Sample.quantile: empty")
    (fun () -> ignore (Stats.Sample.quantile s 0.5))

let test_spearman_perfect () =
  let pairs = List.init 20 (fun i -> (float_of_int i, float_of_int (i * i))) in
  check_close "monotone -> 1" 1e-9 1.0 (Stats.spearman pairs)

let test_spearman_inverse () =
  let pairs = List.init 20 (fun i -> (float_of_int i, float_of_int (100 - i))) in
  check_close "anti-monotone -> -1" 1e-9 (-1.0) (Stats.spearman pairs)

let test_spearman_ties () =
  let pairs = [ (1.0, 1.0); (1.0, 2.0); (2.0, 3.0); (3.0, 3.0) ] in
  let rho = Stats.spearman pairs in
  check_bool "ties handled, in range" true (rho > 0.0 && rho <= 1.0)

let test_pearson_linear () =
  let pairs = List.init 10 (fun i -> (float_of_int i, (2.0 *. float_of_int i) +. 1.0)) in
  check_close "linear -> 1" 1e-9 1.0 (Stats.pearson pairs)

let test_percent_change () =
  check_float "increase" 10.0 (Stats.percent_change ~before:100.0 ~after:110.0);
  check_float "decrease" (-25.0) (Stats.percent_change ~before:4.0 ~after:3.0);
  check_float "zero before" 0.0 (Stats.percent_change ~before:0.0 ~after:5.0)

let test_geometric_mean () =
  check_close "gm" 1e-9 4.0 (Stats.geometric_mean [ 2.0; 8.0 ])

(* {1 Histogram} *)

let test_histogram_binning () =
  let h = Histogram.create ~base:2.0 ~lo:1.0 ~hi:1024.0 () in
  Histogram.add h 1.0;
  Histogram.add h 3.0;
  Histogram.add h 1000.0;
  check_int "count" 3 (Histogram.count h);
  check_float "total weight" 3.0 (Histogram.total_weight h)

let test_histogram_cdf_monotone =
  qcheck
    (QCheck.Test.make ~name:"histogram_cdf_monotone" ~count:100
       QCheck.(list_of_size (Gen.int_range 1 200) (float_range 1.0 1e6))
       (fun values ->
         let h = Histogram.create () in
         List.iter (Histogram.add h) values;
         let cdf = Histogram.cdf h in
         let ok = ref true in
         Array.iteri
           (fun i (_, f) ->
             if i > 0 then begin
               let _, prev = cdf.(i - 1) in
               if f < prev then ok := false
             end)
           cdf;
         let _, last = cdf.(Array.length cdf - 1) in
         !ok && Float.abs (last -. 1.0) < 1e-9))

let test_histogram_fraction_below () =
  let h = Histogram.create ~base:2.0 ~lo:1.0 ~hi:1024.0 () in
  for _ = 1 to 90 do
    Histogram.add h 2.5 (* bin [2,4) *)
  done;
  for _ = 1 to 10 do
    Histogram.add h 100.0 (* bin [64,128) *)
  done;
  check_close "below 4" 1e-9 0.9 (Histogram.fraction_below h 4.0);
  check_close "above 4" 1e-9 0.1 (Histogram.fraction_above h 4.0);
  check_close "below all" 1e-9 1.0 (Histogram.fraction_below h 2048.0)

let test_histogram_weighted () =
  let h = Histogram.create () in
  Histogram.add h ~weight:100.0 10.0;
  Histogram.add h ~weight:900.0 1000.0;
  check_close "weighted below" 1e-9 0.1 (Histogram.fraction_below h 16.0)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 5.0;
  Histogram.add b 50.0;
  let m = Histogram.merge a b in
  check_int "merged count" 2 (Histogram.count m);
  check_float "merged weight" 2.0 (Histogram.total_weight m)

let test_histogram_merge_mismatch () =
  let a = Histogram.create ~base:2.0 () and b = Histogram.create ~base:10.0 () in
  Alcotest.check_raises "geometry mismatch"
    (Invalid_argument "Histogram.merge: geometry mismatch") (fun () ->
      ignore (Histogram.merge a b))

let test_histogram_quantile () =
  let h = Histogram.create ~base:2.0 ~lo:1.0 ~hi:(2.0 ** 20.0) () in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i)
  done;
  let median = Histogram.quantile h 0.5 in
  check_bool "median in range" true (median >= 32.0 && median <= 64.0)

(* {1 Binheap} *)

let test_binheap_ordering () =
  let h = Binheap.create () in
  List.iter (fun k -> Binheap.push h k (int_of_float k)) [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let order = List.init 5 (fun _ -> match Binheap.pop h with Some (k, _) -> k | None -> nan) in
  Alcotest.(check (list (float 0.0))) "sorted pops" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order

let test_binheap_pop_until () =
  let h = Binheap.create () in
  List.iter (fun k -> Binheap.push h k ()) [ 10.0; 1.0; 5.0; 7.0; 2.0 ];
  let popped = Binheap.pop_until h 5.0 in
  check_int "popped three" 3 (List.length popped);
  check_int "two remain" 2 (Binheap.length h)

let test_binheap_property =
  qcheck
    (QCheck.Test.make ~name:"binheap_pops_sorted" ~count:200
       QCheck.(list (float_bound_exclusive 1000.0))
       (fun keys ->
         let h = Binheap.create () in
         List.iter (fun k -> Binheap.push h k ()) keys;
         let rec drain acc =
           match Binheap.pop h with Some (k, ()) -> drain (k :: acc) | None -> List.rev acc
         in
         let popped = drain [] in
         popped = List.sort compare keys))

let test_binheap_peek () =
  let h = Binheap.create () in
  Alcotest.(check bool) "empty peek" true (Binheap.peek h = None);
  Binheap.push h 3.0 "x";
  Binheap.push h 1.0 "y";
  (match Binheap.peek h with
  | Some (k, v) ->
    check_float "peek min key" 1.0 k;
    Alcotest.(check string) "peek min value" "y" v
  | None -> Alcotest.fail "expected peek");
  check_int "peek does not remove" 2 (Binheap.length h)

(* {1 Clock} *)

let test_clock_advance () =
  let c = Clock.create () in
  check_float "starts at zero" 0.0 (Clock.now c);
  Clock.advance c 100.0;
  check_float "advanced" 100.0 (Clock.now c);
  Clock.advance_to c 50.0;
  check_float "no going back" 100.0 (Clock.now c)

let test_clock_ticker_fires () =
  let c = Clock.create () in
  let fired = ref [] in
  ignore (Clock.every c ~period:10.0 (fun now -> fired := now :: !fired));
  Clock.advance c 35.0;
  Alcotest.(check (list (float 0.0))) "fired at periods" [ 30.0; 20.0; 10.0 ] !fired

let test_clock_ticker_cancel () =
  let c = Clock.create () in
  let count = ref 0 in
  let ticker = Clock.every c ~period:10.0 (fun _ -> incr count) in
  Clock.advance c 25.0;
  Clock.cancel c ticker;
  Clock.advance c 100.0;
  check_int "no fires after cancel" 2 !count

let test_clock_interleaved_tickers () =
  let c = Clock.create () in
  let log = ref [] in
  ignore (Clock.every c ~period:3.0 (fun _ -> log := `A :: !log));
  ignore (Clock.every c ~period:5.0 (fun _ -> log := `B :: !log));
  Clock.advance c 10.0;
  (* A at 3,6,9; B at 5,10 *)
  check_int "total fires" 5 (List.length !log)

(* {1 Int_stack} *)

let test_int_stack_lifo () =
  let s = Int_stack.create () in
  Int_stack.push s 1;
  Int_stack.push s 2;
  Int_stack.push s 3;
  check_int "pop 3" 3 (Int_stack.pop s);
  check_int "pop 2" 2 (Int_stack.pop s);
  check_int "length" 1 (Int_stack.length s)

let test_int_stack_pop_up_to () =
  let s = Int_stack.create () in
  List.iter (Int_stack.push s) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "pop 3 most recent" [ 5; 4; 3 ] (Int_stack.pop_up_to s 3);
  Alcotest.(check (list int)) "pop beyond size" [ 2; 1 ] (Int_stack.pop_up_to s 10)

let test_int_stack_growth =
  qcheck
    (QCheck.Test.make ~name:"int_stack_push_pop_roundtrip" ~count:100
       QCheck.(list int)
       (fun xs ->
         let s = Int_stack.create ~initial_capacity:1 () in
         List.iter (Int_stack.push s) xs;
         let popped = List.init (Int_stack.length s) (fun _ -> Int_stack.pop s) in
         popped = List.rev xs))

(* {1 Table} *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  check_bool "has title" true
    (String.length rendered > 0
    && String.sub rendered 0 11 = "== demo ==\n");
  check_bool "contains row" true
    (String.length rendered > 0
    &&
    let lines = String.split_on_char '\n' rendered in
    List.exists (fun l -> String.trim l <> "" && String.length l >= 5 && String.sub l 0 5 = "alpha") lines)

let test_table_cells () =
  Alcotest.(check string) "pct" "1.40%" (Table.cell_pct 1.4);
  Alcotest.(check string) "signed pct" "+1.40%" (Table.cell_signed_pct 1.4);
  Alcotest.(check string) "signed neg" "-0.82%" (Table.cell_signed_pct (-0.82));
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159)

let suite =
  [
    ( "units",
      [
        Alcotest.test_case "constants" `Quick test_units_constants;
        Alcotest.test_case "pp_bytes" `Quick test_units_pp_bytes;
        Alcotest.test_case "pp_duration" `Quick test_units_pp_duration;
      ] );
    ( "rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_rng_different_seeds;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "copy replays" `Quick test_rng_copy;
        test_rng_int_bounds;
        test_rng_unit_float_bounds;
        Alcotest.test_case "uniformity" `Slow test_rng_uniformity;
        Alcotest.test_case "bernoulli" `Slow test_rng_bernoulli;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
      ] );
    ( "dist",
      [
        Alcotest.test_case "constant" `Quick test_dist_constant;
        Alcotest.test_case "uniform mean" `Slow test_dist_uniform_mean;
        Alcotest.test_case "exponential mean" `Slow test_dist_exponential_mean;
        Alcotest.test_case "lognormal median" `Slow test_dist_lognormal_median;
        test_dist_pareto_minimum;
        Alcotest.test_case "mixture weights" `Slow test_dist_mixture_weights;
        Alcotest.test_case "mixture empty" `Quick test_dist_mixture_empty;
        Alcotest.test_case "empirical range" `Quick test_dist_empirical_interpolation;
        test_dist_clamped;
        Alcotest.test_case "shifted" `Slow test_dist_shifted;
        Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
        Alcotest.test_case "zipf sampling" `Slow test_zipf_sampling;
        Alcotest.test_case "categorical" `Slow test_categorical;
      ] );
    ( "stats",
      [
        Alcotest.test_case "running moments" `Quick test_running_moments;
        test_running_merge;
        Alcotest.test_case "sample quantiles" `Quick test_sample_quantiles;
        Alcotest.test_case "quantile empty raises" `Quick test_sample_quantile_empty;
        Alcotest.test_case "spearman monotone" `Quick test_spearman_perfect;
        Alcotest.test_case "spearman inverse" `Quick test_spearman_inverse;
        Alcotest.test_case "spearman ties" `Quick test_spearman_ties;
        Alcotest.test_case "pearson linear" `Quick test_pearson_linear;
        Alcotest.test_case "percent change" `Quick test_percent_change;
        Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
      ] );
    ( "histogram",
      [
        Alcotest.test_case "binning" `Quick test_histogram_binning;
        test_histogram_cdf_monotone;
        Alcotest.test_case "fraction below" `Quick test_histogram_fraction_below;
        Alcotest.test_case "weighted" `Quick test_histogram_weighted;
        Alcotest.test_case "merge" `Quick test_histogram_merge;
        Alcotest.test_case "merge mismatch" `Quick test_histogram_merge_mismatch;
        Alcotest.test_case "quantile" `Quick test_histogram_quantile;
      ] );
    ( "binheap",
      [
        Alcotest.test_case "ordering" `Quick test_binheap_ordering;
        Alcotest.test_case "pop_until" `Quick test_binheap_pop_until;
        test_binheap_property;
        Alcotest.test_case "peek" `Quick test_binheap_peek;
      ] );
    ( "clock",
      [
        Alcotest.test_case "advance" `Quick test_clock_advance;
        Alcotest.test_case "ticker fires" `Quick test_clock_ticker_fires;
        Alcotest.test_case "ticker cancel" `Quick test_clock_ticker_cancel;
        Alcotest.test_case "interleaved tickers" `Quick test_clock_interleaved_tickers;
      ] );
    ( "int_stack",
      [
        Alcotest.test_case "lifo" `Quick test_int_stack_lifo;
        Alcotest.test_case "pop_up_to" `Quick test_int_stack_pop_up_to;
        test_int_stack_growth;
      ] );
    ( "table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "cells" `Quick test_table_cells;
      ] );
  ]
